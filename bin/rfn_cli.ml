(* rfn — command-line front end: verify unreachability properties or
   run coverage analysis on netlist files. Netlists load through
   [Netlist_io]: ".aig" is binary AIGER, ".aag" ascii AIGER, anything
   else ISCAS ".bench". *)

open Cmdliner
open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Coverage = Rfn_core.Coverage
module Telemetry = Rfn_obs.Telemetry
module Lint = Rfn_lint.Lint
module Analysis = Rfn_analysis.Analysis

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let load path =
  try Ok (Netlist_io.load path) with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg

let config_of ~max_seconds ~node_limit ~max_iterations ~engines ~analyze
    ~inject ~race ~checkpoint ~resume =
  let proc =
    if race then { (Rfn_proc.Proc.policy_of_env ()) with Rfn_proc.Proc.enabled = true }
    else Rfn_proc.Proc.policy_of_env ()
  in
  {
    Rfn.default_config with
    Rfn.max_seconds;
    node_limit;
    max_iterations;
    engines;
    analyze;
    inject;
    proc;
    checkpoint;
    resume;
  }

(* Engine selection for the falsification phases; the default defers to
   the RFN_ENGINE environment variable (and then to ATPG). *)
let engines_arg =
  Cmdliner.Arg.(
    value
    & opt
        (enum
           [
             ("atpg", Rfn.Atpg_only);
             ("sat", Rfn.Sat_only);
             ("portfolio", Rfn.Portfolio);
           ])
        (Rfn.engines_of_env ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Concretization/re-check engine(s): $(b,atpg) (the paper's guided \
           sequential ATPG), $(b,sat) (incremental SAT bounded model \
           checking) or $(b,portfolio) (ATPG first, SAT as a supervisor \
           fallback rung).")

(* Shared telemetry flags: --metrics-out streams JSONL events,
   --trace-out writes a Chrome trace-event file, --profile prints a
   wall-time/counter report when the run ends. *)

let metrics_out_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Stream telemetry events (CEGAR-phase spans, engine metrics) to \
           $(docv) as JSON Lines.")

let trace_out_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event file to $(docv): one complete event \
           per CEGAR-phase span plus instant and counter events. Load it in \
           Perfetto (ui.perfetto.dev) or chrome://tracing.")

let profile_arg =
  Cmdliner.Arg.(
    value
    & flag
    & info [ "profile" ]
        ~doc:
          "Record telemetry and print an end-of-run report: per-phase wall \
           time, engine counters, BDD cache hit rate.")

let setup_telemetry ?(trace_out = None) ~metrics_out ~profile () =
  match
    (match metrics_out with
    | Some file -> Telemetry.attach_jsonl file
    | None -> ());
    match trace_out with
    | Some file -> Telemetry.attach_trace file
    | None -> ()
  with
  | () ->
    if profile then Telemetry.enable ();
    Ok ()
  | exception Sys_error msg -> Error ("cannot open telemetry sink: " ^ msg)

let teardown_telemetry ~profile =
  if profile then Format.printf "%a" Telemetry.pp_report ();
  Telemetry.detach ()

(* Run [f] with the teardown guaranteed, so --metrics-out / --trace-out
   files are flushed and well-formed even when the engine aborts by
   exception. *)
let with_telemetry ~profile f =
  Fun.protect ~finally:(fun () -> teardown_telemetry ~profile) f

(* --analyze pre-flight shared by verify, bmc and serve: infer and
   inductively prove netlist invariants, then feed them to every
   engine. *)
let analyze_arg =
  Cmdliner.Arg.(
    value
    & flag
    & info [ "analyze" ]
        ~doc:
          "Run the static invariant-inference pre-flight (abstract \
           interpretation + SAT sweeping, every invariant inductively \
           proved) and feed the proven invariants to the engines: a care \
           set for the abstract fixpoint, persistent clauses for the SAT \
           unrollings, a don't-care filter for guided ATPG.")

(* --lint pre-flight shared by verify and bmc: refuse to start an
   engine on a design the linter rejects. *)
let lint_arg =
  Cmdliner.Arg.(
    value
    & flag
    & info [ "lint" ]
        ~doc:
          "Run the static lint passes on the design and property first; \
           refuse to verify when any $(b,error)-severity finding is \
           reported.")

let preflight ~enabled circuit props =
  if not enabled then true
  else begin
    let report = Lint.run ~props circuit in
    if Lint.errors report > 0 then begin
      Format.eprintf "%a" Lint.pp_report report;
      Format.eprintf "lint: refusing to run (error findings above)@.";
      false
    end
    else true
  end

(* ---- rfn verify ---------------------------------------------------- *)

let verify_cmd =
  let netlist =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST")
  in
  let prop =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUTPUT" ~doc:"Output signal acting as the bad-state indicator.")
  in
  let seconds =
    Arg.(value & opt (some float) None & info [ "time-limit" ] ~docv:"S")
  in
  let nodes =
    Arg.(value & opt int 2_000_000 & info [ "node-limit" ] ~docv:"N")
  in
  let iters = Arg.(value & opt int 64 & info [ "max-iterations" ] ~docv:"N") in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the error trace (if any) to $(docv).")
  in
  let baseline = Arg.(value & flag & info [ "baseline" ]
                        ~doc:"Also run plain COI model checking.") in
  let race =
    Arg.(
      value & flag
      & info [ "race" ]
          ~doc:
            "Run concretization and the refinement re-check as races over \
             process-isolated engine workers (first conclusive answer wins, \
             losers are cancelled). Equivalent to $(b,RFN_RACE=1); worker \
             knobs come from the $(b,RFN_PROC_*) environment variables.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Persist the CEGAR loop state to $(docv) at every iteration \
             boundary (atomic writes, keyed by a netlist digest). The file \
             is removed on a conclusive verdict and kept on abort.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the $(b,--checkpoint) file if it exists and \
             matches this design and property; otherwise warn and start \
             fresh.")
  in
  (* Hidden chaos-testing knob: force one fault per listed supervisor
     site and watch the retry/fallback ladders recover. *)
  let inject_faults =
    Arg.(
      value
      & opt ~vopt:(Some "all") (some string) None
      & info [ "inject-faults" ] ~docv:"SITES" ~docs:Cmdliner.Manpage.s_none)
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ]) in
  let run netlist prop seconds nodes iters engines analyze trace_out baseline
      race checkpoint resume inject_faults lint metrics_out chrome_trace
      profile verbose =
    setup_logs verbose;
    match load netlist with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok circuit -> (
      match Property.of_output circuit prop with
      | exception Invalid_argument _ ->
        Format.eprintf "error: no output named %S@." prop;
        1
      | property when not (preflight ~enabled:lint circuit [ property ]) -> 1
      | property -> (
        match
          match inject_faults with
          | None -> Ok None
          | Some spec -> (
            (* "off" parses to no hook; still pass an inert one so the
               environment variable cannot re-enable injection *)
            try
              Ok
                (Some
                   (match Rfn_core.Supervisor.inject_of_spec spec with
                   | Some hook -> hook
                   | None -> fun _ -> None))
            with Invalid_argument msg -> Error msg)
        with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
        | Ok inject -> (
        match
          setup_telemetry ~trace_out:chrome_trace ~metrics_out ~profile ()
        with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
        | Ok () ->
        with_telemetry ~profile @@ fun () ->
        let config =
          config_of ~max_seconds:seconds ~node_limit:nodes
            ~max_iterations:iters ~engines ~analyze ~inject ~race ~checkpoint
            ~resume
        in
        let outcome, stats = Rfn.verify ~config circuit property in
        Format.printf
          "COI: %d registers, %d gates; %d iteration(s); final abstract \
           model: %d registers; %.2fs@."
          stats.Rfn.coi_regs stats.Rfn.coi_gates
          (List.length stats.Rfn.iterations)
          stats.Rfn.final_abstract_regs stats.Rfn.seconds;
        if stats.Rfn.resumed_iterations > 0 then
          Format.printf "resumed past %d checkpointed iteration(s)@."
            stats.Rfn.resumed_iterations;
        if baseline then begin
          let verdict, secs =
            Rfn.check_coi_model_checking ?max_seconds:seconds circuit property
          in
          Format.printf "COI model checking baseline: %s (%.2fs)@."
            (match verdict with
            | `Proved -> "True"
            | `Reached k -> Printf.sprintf "False at depth %d" k
            | `Aborted r -> "fails — " ^ Rfn_failure.resource_to_string r)
            secs
        end;
        match outcome with
        | Rfn.Proved ->
          Format.printf "RESULT: True (bad states unreachable)@.";
          0
        | Rfn.Falsified trace ->
          Format.printf "RESULT: False — %d-cycle error trace@."
            (Trace.length trace - 1);
          (match trace_out with
          | Some file ->
            let oc = open_out file in
            let ppf = Format.formatter_of_out_channel oc in
            Format.fprintf ppf "%a@."
              (Trace.pp ~names:(Circuit.name circuit))
              trace;
            close_out oc
          | None ->
            Format.printf "%a@." (Trace.pp ~names:(Circuit.name circuit)) trace);
          2
        | Rfn.Aborted why ->
          Format.printf "RESULT: inconclusive (%s)@."
            (Rfn_failure.to_string why);
          3)))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify that an output signal can never be driven to 1.")
    Term.(
      const run $ netlist $ prop $ seconds $ nodes $ iters $ engines_arg
      $ analyze_arg $ trace_out $ baseline $ race $ checkpoint $ resume
      $ inject_faults $ lint_arg $ metrics_out_arg $ trace_out_arg
      $ profile_arg $ verbose)

(* ---- rfn coverage --------------------------------------------------- *)

let coverage_cmd =
  let netlist =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST")
  in
  let signals =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"REGISTER" ~doc:"Coverage signals (register names).")
  in
  let budget = Arg.(value & opt float 60.0 & info [ "budget" ] ~docv:"S") in
  let bfs = Arg.(value & flag & info [ "bfs" ] ~doc:"Use the BFS baseline.") in
  let bfs_k = Arg.(value & opt int 60 & info [ "bfs-k" ] ~docv:"N") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ]) in
  let run netlist signals budget bfs bfs_k metrics_out profile verbose =
    setup_logs verbose;
    match load netlist with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok circuit -> (
      match List.map (Circuit.find circuit) signals with
      | exception Not_found ->
        Format.eprintf "error: unknown coverage signal@.";
        1
      | coverage -> (
        match setup_telemetry ~metrics_out ~profile () with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
        | Ok () ->
        with_telemetry ~profile @@ fun () ->
        let report =
          if bfs then
            Coverage.bfs_analysis ~k:bfs_k ~max_seconds:budget circuit
              ~coverage
          else
            Coverage.rfn_analysis
              ~config:
                {
                  Rfn.default_config with
                  Rfn.max_seconds = Some budget;
                  max_iterations = 1_000;
                }
              circuit ~coverage
        in
        Format.printf
          "%d coverage states: %d unreachable, %d proven reachable, %d \
           unknown (%.2fs; abstract model %d registers)@."
          report.Coverage.total report.Coverage.unreachable
          report.Coverage.reachable report.Coverage.unknown
          report.Coverage.seconds report.Coverage.abstract_regs;
        0))
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Identify unreachable coverage states over a register set.")
    Term.(
      const run $ netlist $ signals $ budget $ bfs $ bfs_k $ metrics_out_arg
      $ profile_arg $ verbose)

(* ---- rfn bmc --------------------------------------------------------- *)

let bmc_cmd =
  let netlist =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST")
  in
  let prop =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT")
  in
  let depth = Arg.(value & opt int 50 & info [ "depth" ] ~docv:"N") in
  let backtracks =
    Arg.(value & opt int 200_000 & info [ "max-backtracks" ] ~docv:"N")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("atpg", `Atpg); ("sat", `Sat) ]) `Atpg
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Search engine: $(b,atpg) (sequential ATPG per depth) or \
             $(b,sat) (one incremental CNF instance across depths; \
             --max-backtracks bounds conflicts).")
  in
  let run netlist prop depth backtracks engine analyze lint =
    match load netlist with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok circuit -> (
      match Circuit.output circuit prop with
      | exception Invalid_argument _ ->
        Format.eprintf "error: no output named %S@." prop;
        1
      | bad
        when not
               (preflight ~enabled:lint circuit
                  [ Property.make ~name:prop ~bad ]) ->
        1
      | bad -> (
        let limits =
          { Rfn_atpg.Atpg.max_backtracks = backtracks; max_seconds = None }
        in
        (* --analyze: the SAT engine consumes the proven invariants as
           persistent clauses; plain per-depth ATPG has no clause
           database, so there the pre-flight only reports. *)
        let analysis =
          if not analyze then None
          else begin
            let a = Analysis.run circuit in
            Format.eprintf
              "analysis: %d invariant(s) proved (%d candidate(s), %.2fs)@."
              a.Analysis.stats.Analysis.proved
              a.Analysis.stats.Analysis.candidates a.Analysis.seconds;
            Some a
          end
        in
        let outcome, describe =
          match engine with
          | `Atpg ->
            let outcome, stats =
              Rfn_core.Bmc.falsify ~limits circuit ~bad ~max_depth:depth
            in
            ( outcome,
              fun () ->
                Printf.sprintf "%d decisions, %d backtracks"
                  stats.Rfn_atpg.Atpg.decisions
                  stats.Rfn_atpg.Atpg.backtracks )
          | `Sat ->
            let outcome, stats =
              Rfn_core.Sat_bmc.falsify ~limits ?analysis circuit ~bad
                ~max_depth:depth
            in
            ( outcome,
              fun () ->
                Printf.sprintf "%d decisions, %d conflicts, %d propagations"
                  stats.Rfn_sat.Solver.decisions stats.Rfn_sat.Solver.conflicts
                  stats.Rfn_sat.Solver.propagations )
        in
        match outcome with
        | Rfn_core.Bmc.Found trace ->
          Format.printf "violated at depth %d (%s)@.%a@."
            (Trace.length trace - 1)
            (describe ())
            (Trace.pp ~names:(Circuit.name circuit))
            trace;
          2
        | Rfn_core.Bmc.Exhausted ->
          Format.printf "no violation within %d cycles@." depth;
          0
        | Rfn_core.Bmc.Gave_up d ->
          Format.printf "gave up at depth %d (resource limit)@." d;
          3))
  in
  Cmd.v
    (Cmd.info "bmc"
       ~doc:
         "Bounded falsification without abstraction or guidance, by plain \
          sequential ATPG or incremental SAT — the baselines RFN's guided \
          search improves on.")
    Term.(
      const run $ netlist $ prop $ depth $ backtracks $ engine $ analyze_arg
      $ lint_arg)

(* ---- rfn lint --------------------------------------------------------- *)

let lint_cmd =
  let netlist =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST")
  in
  let props =
    Arg.(
      value
      & pos_right 0 string []
      & info [] ~docv:"OUTPUT"
          ~doc:
            "Output signals to lint as properties (bad-state indicators). \
             Defaults to every declared output.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the findings as a JSON object.")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"PASSES"
          ~doc:"Comma-separated pass names to run (default: all).")
  in
  let run netlist prop_names json only metrics_out profile =
    match load netlist with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok circuit -> (
      let names =
        match prop_names with
        | [] -> List.map fst circuit.Circuit.outputs
        | names -> names
      in
      match List.map (Property.of_output circuit) names with
      | exception Invalid_argument _ ->
        Format.eprintf "error: unknown output among %s@."
          (String.concat ", " names);
        1
      | props -> (
        match setup_telemetry ~metrics_out ~profile () with
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
        | Ok () -> (
          with_telemetry ~profile @@ fun () ->
          let only = Option.map (String.split_on_char ',') only in
          match Lint.run ?only ~props circuit with
          | exception Invalid_argument msg ->
            Format.eprintf "error: %s@." msg;
            1
          | report ->
            if json then
              print_endline
                (Rfn_obs.Json.to_string (Lint.report_to_json circuit report))
            else Format.printf "%a" Lint.pp_report report;
            if Lint.errors report > 0 then 1 else 0)))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes (design and property lints) and \
          report structured findings; exits 1 when any error-severity \
          finding is reported.")
    Term.(
      const run $ netlist $ props $ json $ only $ metrics_out_arg $ profile_arg)

(* ---- rfn analyze ------------------------------------------------------ *)

let analyze_cmd =
  let netlist =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the proven invariants and statistics as a JSON object \
             (signal ids, machine-readable).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Use the reduced mining/proving budget the lint passes use \
             (fewer simulation patterns, a smaller conflict limit).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Seed for the candidate-mining simulation. Only the candidate \
             set depends on it — everything reported is still inductively \
             proved.")
  in
  let merge =
    Arg.(
      value
      & opt (some string) None
      & info [ "merge" ] ~docv:"FILE"
          ~doc:
            "Apply the proven equivalences to the netlist — every redundant \
             signal rewired to its surviving representative \
             ($(b,Opt.merge_equivalences)) — and write the merged design to \
             $(docv) (extension picks the format, as in $(b,simplify -o)).")
  in
  let run netlist json quick seed merge metrics_out profile =
    match load netlist with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok circuit -> (
      match setup_telemetry ~metrics_out ~profile () with
      | Error msg ->
        Format.eprintf "error: %s@." msg;
        1
      | Ok () ->
        with_telemetry ~profile @@ fun () ->
        let config =
          {
            (if quick then Analysis.quick_config else Analysis.default_config)
            with
            Analysis.seed;
          }
        in
        let a = Analysis.run ~config circuit in
        if json then
          print_endline (Rfn_obs.Json.to_string (Analysis.to_json a))
        else begin
          List.iter
            (fun inv ->
              Format.printf "  %s@." (Analysis.describe circuit inv))
            a.Analysis.invariants;
          Format.printf
            "%d candidate(s): %d proved, %d refuted, %d unknown (%.2fs)@."
            a.Analysis.stats.Analysis.candidates
            a.Analysis.stats.Analysis.proved a.Analysis.stats.Analysis.refuted
            a.Analysis.stats.Analysis.unknown a.Analysis.seconds
        end;
        (match merge with
        | None -> ()
        | Some file ->
          let merged, _, applied =
            Opt.merge_equivalences circuit (Analysis.equiv_pairs a)
          in
          Telemetry.add (Telemetry.counter "analysis.merged_gates") applied;
          Format.eprintf "merged %d equivalent signal(s): %d -> %d signals@."
            applied
            (Circuit.num_signals circuit)
            (Circuit.num_signals merged);
          Netlist_io.save
            ~bads:(List.map fst merged.Circuit.outputs)
            file merged);
        0)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Infer netlist invariants by abstract interpretation over packed \
          ternary simulation (constant registers, implication pairs, \
          one-hot/mutex register groups) and SAT sweeping (equivalent \
          signals), prove each candidate by induction, and report only the \
          proven ones. The same invariants feed the verification engines \
          under $(b,verify --analyze).")
    Term.(
      const run $ netlist $ json $ quick $ seed $ merge $ metrics_out_arg
      $ profile_arg)

(* ---- rfn simplify ----------------------------------------------------- *)

let simplify_cmd =
  let netlist =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run netlist out =
    match load netlist with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok circuit ->
      let circuit', _, report = Opt.simplify circuit in
      Format.eprintf
        "gates: %d -> %d; registers: %d -> %d; %d constants folded@."
        report.Opt.gates_before report.Opt.gates_after
        report.Opt.registers_before report.Opt.registers_after
        report.Opt.constants_folded;
      (match out with
      | Some file ->
        (* the extension picks the writer, so `simplify -o x.aig`
           converts between front-end formats as a side effect *)
        Netlist_io.save ~bads:(List.map fst circuit'.Circuit.outputs) file
          circuit'
      | None -> print_string (Bench_io.to_string circuit'));
      0
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:
         "Constant propagation, structural rewriting and dead-logic \
          sweeping; writes the simplified netlist.")
    Term.(const run $ netlist $ out)

(* ---- rfn serve ------------------------------------------------------ *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) (connections served \
             sequentially; the warm-session pool persists across them) \
             instead of speaking JSONL over stdin/stdout.")
  in
  let max_sessions =
    Arg.(
      value & opt int 4
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Warm-session LRU capacity: at most $(docv) designs keep their \
             symbolic state resident; the least-recently used is evicted \
             beyond that.")
  in
  let max_nodes =
    Arg.(
      value & opt int 8_000_000
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:
            "Pool-wide live BDD node cap: after each job, least-recently \
             used sessions are evicted until the total drops under $(docv) \
             (the session just used is never evicted).")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Checkpoint every job's loop state to \
             $(docv)/<digest>-<property>-<job>.json, keyed by job id, and \
             resume from it when present — a restarted server continues \
             killed jobs at their last completed refinement.")
  in
  let race =
    Arg.(
      value & flag
      & info [ "race" ]
          ~doc:
            "Run each job's concretization and refinement re-check as races \
             over process-isolated engine workers, as in $(b,verify --race).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ]) in
  let run socket max_sessions max_nodes checkpoint_dir engines analyze race
      metrics_out chrome_trace profile verbose =
    setup_logs verbose;
    match setup_telemetry ~trace_out:chrome_trace ~metrics_out ~profile () with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok () ->
      with_telemetry ~profile @@ fun () ->
      let config =
        config_of
          ~max_seconds:Rfn.default_config.Rfn.max_seconds
          ~node_limit:Rfn.default_config.Rfn.node_limit
          ~max_iterations:Rfn.default_config.Rfn.max_iterations ~engines
          ~analyze ~inject:None ~race ~checkpoint:None ~resume:false
      in
      let limits =
        { Rfn_serve.Server.max_sessions = max 1 max_sessions; max_nodes }
      in
      let jobs =
        match socket with
        | None ->
          Rfn_serve.Server.run ~limits ~config ?checkpoint_dir
            ~input:Unix.stdin ~output:stdout ()
        | Some path ->
          Rfn_serve.Server.serve_socket ~limits ~config ?checkpoint_dir ~path
            ()
      in
      Format.eprintf "served %d job(s)@." jobs;
      0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running verification service: accept (design, property, \
          budget) jobs as JSON Lines over stdio or a Unix socket, group \
          properties sharing a cone of influence onto warm sessions, and \
          answer one result line per job (verdict, trace or structured \
          failure, per-job counters and provenance).")
    Term.(
      const run $ socket $ max_sessions $ max_nodes $ checkpoint_dir
      $ engines_arg $ analyze_arg $ race $ metrics_out_arg $ trace_out_arg
      $ profile_arg $ verbose)

(* ---- rfn explain ---------------------------------------------------- *)

let explain_cmd =
  let metrics =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"METRICS"
          ~doc:
            "JSON Lines telemetry file written by a $(b,verify \
             --metrics-out) run.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the provenance records as a JSON array instead of prose.")
  in
  let run metrics json =
    let module Json = Rfn_obs.Json in
    let module Provenance = Rfn_obs.Provenance in
    (* A file from a crashed or killed run commonly ends in a torn
       line (a partial JSON object, or half a UTF-8 sequence). Every
       malformed line — torn tail or mid-file corruption — is skipped
       with a warning and counted; whatever parsed is still replayed,
       with a recovery summary so a partial story is never mistaken
       for a complete one. *)
    match
      let ic = open_in metrics in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let records = ref [] in
          let skipped = ref 0 in
          let lineno = ref 0 in
          (try
             while true do
               incr lineno;
               let line = input_line ic in
               if String.trim line <> "" then
                 match Json.of_string line with
                 | exception Failure msg ->
                   incr skipped;
                   Format.eprintf "warning: %s:%d: skipping: %s@." metrics
                     !lineno msg
                 | j -> (
                   match Json.member "ev" j with
                   | Some (Json.Str "rfn.iteration") -> (
                     match Provenance.of_json j with
                     | Ok p ->
                       (* server streams stamp each event with its job
                          id; a single-run file has no "job" field and
                          groups under "" *)
                       let job =
                         match
                           Option.bind (Json.member "job" j) Json.to_str
                         with
                         | Some id -> id
                         | None -> ""
                       in
                       records := (job, p) :: !records
                     | Error field ->
                       incr skipped;
                       Format.eprintf
                         "warning: %s:%d: skipping bad rfn.iteration record \
                          (%s)@."
                         metrics !lineno field)
                   | _ -> ())
             done
           with End_of_file -> ());
          (List.rev !records, !skipped))
    with
    | exception Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | [], skipped ->
      Format.eprintf
        "error: no rfn.iteration records in %s%s (was the run made with \
         --metrics-out?)@."
        metrics
        (if skipped > 0 then
           Printf.sprintf " after skipping %d malformed line(s)" skipped
         else "");
      1
    | records, skipped ->
      (* De-interleave a multi-job server stream: group by job id in
         first-appearance order, each group narrated on its own. A
         single-run file (no job ids) keeps the original output. *)
      let groups =
        let order = ref [] in
        let tbl = Hashtbl.create 7 in
        List.iter
          (fun (job, p) ->
            match Hashtbl.find_opt tbl job with
            | Some ps -> ps := p :: !ps
            | None ->
              Hashtbl.add tbl job (ref [ p ]);
              order := job :: !order)
          records;
        List.rev_map
          (fun job -> (job, List.rev !(Hashtbl.find tbl job)))
          !order
      in
      (match groups with
      | [ (_, ps) ] ->
        if json then
          print_endline
            (Json.to_string (Json.List (List.map Provenance.to_json ps)))
        else Format.printf "%a" Provenance.pp_story ps
      | groups ->
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  (List.map
                     (fun (job, ps) ->
                       (job, Json.List (List.map Provenance.to_json ps)))
                     groups)))
        else
          List.iter
            (fun (job, ps) ->
              Format.printf "== job %s ==@.%a"
                (if job = "" then "<unscoped>" else job)
                Provenance.pp_story ps)
            groups);
      if skipped > 0 then
        Format.eprintf
          "warning: recovered %d record(s); skipped %d malformed line(s) — \
           the story above may be incomplete@."
          (List.length records) skipped;
      0
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Replay the refinement story of a previous run from its \
          --metrics-out file: per-iteration engine choices, abstraction \
          growth, concretization outcomes and resource use. A multi-job \
          $(b,serve) stream is split by job id (one story per job; with \
          $(b,--json), an object keyed by job id) instead of interleaving \
          iterations from different jobs.")
    Term.(const run $ metrics $ json)

(* ---- rfn stats ------------------------------------------------------ *)

let stats_cmd =
  let netlist =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST")
  in
  let roots =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"SIGNAL"
           ~doc:"Optional root signals for a COI report.")
  in
  let run netlist roots =
    match load netlist with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok circuit ->
      Format.printf "%a@." Circuit.pp_stats circuit;
      (match roots with
      | [] -> ()
      | names -> (
        match List.map (Circuit.find circuit) names with
        | exception Not_found -> Format.eprintf "warning: unknown root@."
        | roots ->
          let coi = Coi.compute circuit ~roots in
          Format.printf "COI of %s: %d registers, %d gates@."
            (String.concat ", " names) (Coi.num_regs coi) (Coi.num_gates coi)));
      0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print design statistics and optional COI sizes.")
    Term.(const run $ netlist $ roots)

let () =
  let doc = "formal property verification by abstraction refinement" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "rfn" ~version:"1.0.0" ~doc)
          [
            verify_cmd;
            coverage_cmd;
            bmc_cmd;
            lint_cmd;
            analyze_cmd;
            simplify_cmd;
            serve_cmd;
            explain_cmd;
            stats_cmd;
          ]))
