(* Prints design sizes and property COIs — used to calibrate the
   generator parameters against the paper's Table 1/2 profiles. *)
open Rfn_circuit

let coi_line c name bad =
  let coi = Coi.compute c ~roots:[ bad ] in
  Printf.printf "  %-12s COI: %5d regs %7d gates\n%!" name (Coi.num_regs coi)
    (Coi.num_gates coi)

let () =
  let fifo = Rfn_designs.Fifo.make () in
  Printf.printf "fifo: %s\n%!"
    (Format.asprintf "%a" Circuit.pp_stats fifo.Rfn_designs.Fifo.circuit);
  coi_line fifo.circuit "psh_hf" fifo.psh_hf.Property.bad;
  coi_line fifo.circuit "psh_af" fifo.psh_af.Property.bad;
  coi_line fifo.circuit "psh_full" fifo.psh_full.Property.bad;
  let t0 = Sys.time () in
  let proc = Rfn_designs.Processor.make () in
  Printf.printf "processor (built in %.1fs): %s\n%!" (Sys.time () -. t0)
    (Format.asprintf "%a" Circuit.pp_stats proc.Rfn_designs.Processor.circuit);
  coi_line proc.circuit "mutex" proc.mutex.Property.bad;
  coi_line proc.circuit "error_flag" proc.error_flag.Property.bad;
  let iu = Rfn_designs.Picojava_iu.make () in
  Printf.printf "picojava_iu: %s\n%!"
    (Format.asprintf "%a" Circuit.pp_stats iu.Rfn_designs.Picojava_iu.circuit);
  List.iter
    (fun (name, set) ->
      let coi = Coi.compute iu.circuit ~roots:set in
      Printf.printf "  %-12s COI: %5d regs %7d gates\n%!" name
        (Coi.num_regs coi) (Coi.num_gates coi))
    iu.coverage_sets;
  let usb = Rfn_designs.Usb.make () in
  Printf.printf "usb: %s\n%!"
    (Format.asprintf "%a" Circuit.pp_stats usb.Rfn_designs.Usb.circuit);
  List.iter
    (fun (name, set) ->
      let coi = Coi.compute usb.circuit ~roots:set in
      Printf.printf "  %-12s COI: %5d regs %7d gates\n%!" name
        (Coi.num_regs coi) (Coi.num_gates coi))
    usb.coverage_sets
