(* Reproduces Table 1 of the paper (see Rfn_experiments.Table1).
   Flags: --small (scaled-down designs), --baseline (run the COI
   model-checking comparison the paper's footnote describes). *)

let () =
  let small = Array.exists (( = ) "--small") Sys.argv in
  let baseline = Array.exists (( = ) "--baseline") Sys.argv in
  Rfn_experiments.Experiments.Table1.(
    print Format.std_formatter (run ~small ~baseline ()))
