(* Reproduces Table 2 of the paper (see Rfn_experiments.Table2).
   Flags: --small, --budget S (RFN time budget per coverage set; the
   paper used 1,800 s), --bfs-k N (BFS model size; the paper used 60). *)

let arg_value name default =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then float_of_string Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let () =
  let small = Array.exists (( = ) "--small") Sys.argv in
  let budget = arg_value "--budget" 20.0 in
  let bfs_k = int_of_float (arg_value "--bfs-k" 60.0) in
  Rfn_experiments.Experiments.Table2.(
    print Format.std_formatter (run ~small ~budget ~bfs_k ()))
