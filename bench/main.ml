(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus the ablations, and runs Bechamel microbenchmarks of
   the engine primitives.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe table1          # one target
     dune exec bench/main.exe table1 --baseline
     dune exec bench/main.exe table2 --budget 1800   # the paper's budget
     dune exec bench/main.exe -- --small      # scaled-down designs
     BENCH_QUICK=1 dune exec bench/main.exe   # CI smoke: JSON summary only
     dune exec bench/main.exe -- check --baseline BENCH_baseline.json
                                              # perf gate vs a committed baseline

   Every run (and the `json` target alone) also writes BENCH_rfn.json:
   a machine-readable per-design summary (seconds, iterations, peak BDD
   nodes, ATPG backtracks) so the perf trajectory accumulates across
   changes. BENCH_QUICK=1 (or --quick) verifies only the brute-forceable
   FIFO instance, exercising the emission path in seconds.

   Targets: table1 table2 figure1 guidance subsetting refine micro json
   check all *)

open Rfn_circuit
module E = Rfn_experiments.Experiments
module Rfn = Rfn_core.Rfn
module Atpg = Rfn_atpg.Atpg
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Sim3v = Rfn_sim3v.Sim3v
module Mincut = Rfn_mincut.Mincut
module Telemetry = Rfn_obs.Telemetry
module Json = Rfn_obs.Json
module Lint = Rfn_lint.Lint
module Analysis = Rfn_analysis.Analysis

let has flag = Array.exists (( = ) flag) Sys.argv

let float_arg name default =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then float_of_string Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let string_arg name default =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let section title =
  Format.printf "@.=== %s ===@.@." title

(* ---- microbenchmarks (Bechamel) ------------------------------------ *)

let micro () =
  let open Bechamel in
  section "Microbenchmarks (engine primitives)";
  (* shared workloads *)
  let fifo = Rfn_designs.Fifo.make () in
  let fifo_c = fifo.Rfn_designs.Fifo.circuit in
  let proc = Rfn_designs.Processor.(make ~params:small ()) in
  let proc_c = proc.Rfn_designs.Processor.circuit in
  let big_proc = lazy (Rfn_designs.Processor.make ()) in

  let bdd_image_step () =
    (* one post-image on the FIFO property's refined abstraction *)
    let abs =
      Abstraction.with_regs fifo_c
        ~roots:[ fifo.psh_hf.Property.bad ]
        ~regs:
          (List.filter_map
             (fun n ->
               match Circuit.find fifo_c n with
               | s -> Some s
               | exception Not_found -> None)
             [ "count_0"; "count_1"; "count_2"; "count_3"; "count_4"; "hf_flag" ])
    in
    let vm = Varmap.make abs.Abstraction.view in
    let img = Image.make vm in
    let init = Symbolic.initial_states vm in
    ignore (Image.post img (Image.post img init))
  in
  let atpg_trace_check () =
    (* sequential ATPG over 8 frames of the small processor *)
    let view = Sview.whole proc_c ~roots:[ proc.error_flag.Property.bad ] in
    ignore
      (Atpg.solve view ~frames:8
         ~pins:[ (7, proc.error_flag.Property.bad, true) ]
         ())
  in
  let sim_step () =
    let view = Sview.whole fifo_c ~roots:[] in
    let state = ref (fun _ -> Sim3v.V0) in
    for _ = 1 to 10 do
      let _, next =
        Sim3v.step view ~free:(fun _ -> Sim3v.VX) ~state:!state
      in
      state := next
    done
  in
  let mincut_bench () =
    let abs =
      Abstraction.initial proc_c ~roots:[ proc.error_flag.Property.bad ]
    in
    ignore (Mincut.compute abs.Abstraction.view)
  in
  let force_bench () =
    let abs =
      Abstraction.initial fifo_c ~roots:[ fifo.psh_hf.Property.bad ]
    in
    ignore (Varmap.make abs.Abstraction.view)
  in
  let fifo_verify () =
    ignore (Rfn.verify fifo_c fifo.psh_full)
  in
  let coi_big () =
    let p = Lazy.force big_proc in
    ignore
      (Coi.compute p.Rfn_designs.Processor.circuit
         ~roots:[ p.mutex.Property.bad ])
  in
  let tests =
    Test.make_grouped ~name:"rfn" ~fmt:"%s/%s"
      [
        Test.make ~name:"bdd-image-step" (Staged.stage bdd_image_step);
        Test.make ~name:"atpg-8-frames" (Staged.stage atpg_trace_check);
        Test.make ~name:"sim3v-10-cycles" (Staged.stage sim_step);
        Test.make ~name:"mincut-abstract-model" (Staged.stage mincut_bench);
        Test.make ~name:"force-varmap" (Staged.stage force_bench);
        Test.make ~name:"rfn-verify-fifo-full" (Staged.stage fifo_verify);
        Test.make ~name:"coi-5000-regs" (Staged.stage coi_big);
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second 1.0)
      ~kde:None ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name res acc -> (name, res) :: acc) results []
    |> List.sort compare
  in
  Format.printf "%-28s %14s@." "benchmark" "time/run";
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some (t :: _) ->
        let pretty =
          if t > 1e9 then Printf.sprintf "%8.2f s " (t /. 1e9)
          else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
          else Printf.sprintf "%8.2f ns" t
        in
        Format.printf "%-28s %14s@." name pretty
      | _ -> Format.printf "%-28s %14s@." name "n/a")
    rows

(* ---- machine-readable summary (BENCH_rfn.json) ---------------------- *)

(* Replay the same workloads as one JSONL batch through the real server
   ({!Rfn_serve.Server.run} over temp files) so BENCH_rfn.json records
   what warm-session reuse buys over the per-property cold runs: the
   serve.* counters genuinely bump, and every verdict must agree with
   the cold phase. [cold] carries (name, result, cones_recompiled,
   seconds) per cold run. *)
let serve_batch ~workloads ~cold () =
  let module Protocol = Rfn_serve.Protocol in
  let module Server = Rfn_serve.Server in
  Telemetry.reset ();
  Telemetry.enable ();
  let infile = Filename.temp_file "rfn_serve" ".in.jsonl" in
  let outfile = Filename.temp_file "rfn_serve" ".out.jsonl" in
  let oc = open_out infile in
  List.iter
    (fun (name, circuit, prop) ->
      let submit =
        {
          Protocol.id = name;
          design = Protocol.Netlist (Bench_io.to_string circuit);
          property = prop.Property.name;
          budget = Protocol.no_budget;
        }
      in
      output_string oc (Json.to_string (Protocol.submit_to_json submit));
      output_char oc '\n')
    workloads;
  output_string oc {|{"op":"shutdown"}|};
  output_char oc '\n';
  close_out oc;
  let input = Unix.openfile infile [ Unix.O_RDONLY ] 0 in
  let output = open_out outfile in
  let config = { Rfn.default_config with Rfn.check_invariants = true } in
  let t0 = Unix.gettimeofday () in
  let completed =
    Fun.protect
      ~finally:(fun () ->
        Unix.close input;
        close_out_noerr output)
      (fun () -> Server.run ~config ~input ~output ())
  in
  let seconds_batch = Unix.gettimeofday () -. t0 in
  let verdicts =
    let ic = open_in outfile in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> (
            match Json.of_string line with
            | exception Failure _ -> go acc
            | j -> (
              match Json.member "ev" j with
              | Some (Json.Str "result") -> (
                let get k = Option.bind (Json.member k j) Json.to_str in
                match (get "id", get "verdict") with
                | Some id, Some v -> go ((id, v) :: acc)
                | _ -> go acc)
              | _ -> go acc))
        in
        go [])
  in
  Sys.remove infile;
  Sys.remove outfile;
  let agrees cold_result verdict =
    match cold_result with
    | "T" -> verdict = "proved"
    | "F" -> verdict = "falsified"
    | _ -> verdict = "aborted"
  in
  let verdicts_match =
    List.length verdicts = List.length cold
    && List.for_all
         (fun (name, result, _, _) ->
           match List.assoc_opt name verdicts with
           | Some v -> agrees result v
           | None -> false)
         cold
  in
  let count name = Telemetry.counter_value (Telemetry.counter name) in
  let cones_recompiled_cold =
    List.fold_left (fun acc (_, _, n, _) -> acc + n) 0 cold
  in
  let seconds_cold =
    List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0.0 cold
  in
  Format.printf
    "  serve batch: %d job(s), %d warm reuse(s), cones recompiled %d (cold \
     %d), %.2fs (cold %.2fs)@."
    completed
    (count "serve.sessions_reused")
    (count "session.cones_recompiled")
    cones_recompiled_cold seconds_batch seconds_cold;
  Json.Obj
    [
      ("jobs_completed", Json.Int completed);
      ("sessions_created", Json.Int (count "serve.sessions_created"));
      ("sessions_reused", Json.Int (count "serve.sessions_reused"));
      ("cones_recompiled_cold", Json.Int cones_recompiled_cold);
      ("cones_recompiled_batch", Json.Int (count "session.cones_recompiled"));
      ("cones_reused_batch", Json.Int (count "session.cones_reused"));
      ("seconds_cold", Json.Float seconds_cold);
      ("seconds_batch", Json.Float seconds_batch);
      ("verdicts_match", Json.Bool verdicts_match);
    ]

(* Scalar-vs-packed ternary simulation on the largest workload of the
   run: the same pseudo-random pattern set simulated once through the
   scalar evaluator (one pattern at a time) and once through
   [Sim3v.Packed] ([lanes] patterns per word), with a lane-0
   agreement audit. The perf gate enforces the speedup whenever the
   baseline records this phase. *)
let sim_phase ~quick ~workloads () =
  let name, circuit, _ =
    List.fold_left
      (fun ((_, bc, _) as best) ((_, c, _) as w) ->
        if Circuit.num_signals c > Circuit.num_signals bc then w else best)
      (List.hd workloads) (List.tl workloads)
  in
  let view =
    Sview.whole circuit ~roots:(List.map snd circuit.Circuit.outputs)
  in
  let lanes = Sim3v.Packed.lanes in
  let runs = if quick then 4 else 8 in
  let cycles = if quick then 16 else 32 in
  let patterns = runs * lanes in
  let tern h =
    match h mod 3 with 0 -> Sim3v.V0 | 1 -> Sim3v.V1 | _ -> Sim3v.VX
  in
  let init_at p r = tern (Hashtbl.hash (p, 'r', r)) in
  let input_at p cycle s = tern (Hashtbl.hash (p, cycle, s)) in
  let c_words = Telemetry.counter "sim.packed_words" in
  let w0 = Telemetry.counter_value c_words in
  let t0 = Unix.gettimeofday () in
  let pvecs =
    Array.init runs (fun run ->
        Sim3v.Packed.run view
          ~init:(fun r ->
            Sim3v.Packed.of_fun (fun lane -> init_at ((run * lanes) + lane) r))
          ~inputs:(fun ~cycle s ->
            Sim3v.Packed.of_fun (fun lane ->
                input_at ((run * lanes) + lane) cycle s))
          ~cycles)
  in
  let seconds_packed = Unix.gettimeofday () -. t0 in
  let packed_words = Telemetry.counter_value c_words - w0 in
  let sample = ref [||] in
  let t1 = Unix.gettimeofday () in
  for p = 0 to patterns - 1 do
    let frames =
      Sim3v.run view ~init:(init_at p)
        ~inputs:(fun ~cycle s -> input_at p cycle s)
        ~cycles
    in
    if p = 0 then sample := frames
  done;
  let seconds_scalar = Unix.gettimeofday () -. t1 in
  let agree = ref true in
  Array.iteri
    (fun cyc frame ->
      Array.iteri
        (fun s v ->
          if Sim3v.Packed.read_lane pvecs.(0).(cyc) s ~lane:0 <> v then
            agree := false)
        frame)
    !sample;
  let speedup =
    if seconds_packed > 0.0 then seconds_scalar /. seconds_packed
    else float_of_int patterns
  in
  Format.printf
    "  sim phase (%s): %d pattern(s) x %d cycle(s) — scalar %.3fs, packed \
     %.3fs (%.1fx, agree %b)@."
    name patterns cycles seconds_scalar seconds_packed speedup !agree;
  Json.Obj
    [
      ("design", Json.Str name);
      ("patterns", Json.Int patterns);
      ("cycles", Json.Int cycles);
      ("seconds_scalar", Json.Float seconds_scalar);
      ("seconds_packed", Json.Float seconds_packed);
      ("speedup", Json.Float speedup);
      ("packed_words", Json.Int packed_words);
      ("agree", Json.Bool !agree);
    ]

(* ---- static-analysis phase (invariant inference) -------------------- *)

(* The [--analyze] differential: the same property verified with the
   invariant pre-flight off and on. Verdicts must agree (the pre-flight
   only consumes proven facts); the constant-chain design is the
   committed witness that the care set actually buys something — the
   fixpoint closes without any refinement, so the analyzed run takes
   strictly fewer CEGAR iterations. The perf gate enforces [improved]
   whenever the baseline records this phase. *)
let analysis_phase () =
  let chain =
    let module B = Circuit.Builder in
    let b = B.create () in
    let go = B.input b "go" in
    let k = 6 in
    let regs =
      Array.init k (fun i -> B.reg b ~init:`Zero (Printf.sprintf "r%d" i))
    in
    for i = 0 to k - 2 do
      B.connect b regs.(i) regs.(i + 1)
    done;
    B.connect b regs.(k - 1) (B.const b false);
    B.output b "bad" (B.and2 b regs.(0) go);
    B.finalize b
  in
  let prop = Property.of_output chain "bad" in
  let g_nodes = Telemetry.gauge "bdd.live_nodes" in
  let run analyze =
    Telemetry.reset ();
    Telemetry.enable ();
    let config = { Rfn.default_config with Rfn.analyze } in
    let outcome, stats = Rfn.verify ~config chain prop in
    let result =
      match outcome with
      | Rfn.Proved -> "T"
      | Rfn.Falsified _ -> "F"
      | Rfn.Aborted why -> "abort: " ^ Rfn_failure.to_string why
    in
    (result, List.length stats.Rfn.iterations, Telemetry.gauge_peak g_nodes)
  in
  let r_off, it_off, nodes_off = run false in
  let r_on, it_on, nodes_on = run true in
  let improved =
    r_off = r_on && (it_on < it_off || nodes_on < nodes_off)
  in
  Format.printf
    "  analysis differential (const_chain6): off %s in %d iteration(s) \
     (peak %d nodes), on %s in %d iteration(s) (peak %d nodes) — improved \
     %b@."
    r_off it_off nodes_off r_on it_on nodes_on improved;
  Json.Obj
    [
      ("design", Json.Str "const_chain6");
      ("result_off", Json.Str r_off);
      ("result_on", Json.Str r_on);
      ("iterations_off", Json.Int it_off);
      ("iterations_on", Json.Int it_on);
      ("peak_bdd_nodes_off", Json.Int nodes_off);
      ("peak_bdd_nodes_on", Json.Int nodes_on);
      ("improved", Json.Bool improved);
    ]

let bench_json ~quick () =
  section "JSON summary (BENCH_rfn.json)";
  let workloads =
    if quick then begin
      let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
      let c = fifo.Rfn_designs.Fifo.circuit in
      [
        ("fifo_small/psh_hf", c, fifo.psh_hf);
        ("fifo_small/psh_full", c, fifo.psh_full);
      ]
    end
    else begin
      let fifo = Rfn_designs.Fifo.make () in
      let fc = fifo.Rfn_designs.Fifo.circuit in
      let proc = Rfn_designs.Processor.(make ~params:small ()) in
      let pc = proc.Rfn_designs.Processor.circuit in
      [
        ("fifo/psh_hf", fc, fifo.psh_hf);
        ("fifo/psh_af", fc, fifo.psh_af);
        ("fifo/psh_full", fc, fifo.psh_full);
        ("processor_small/mutex", pc, proc.mutex);
        ("processor_small/error_flag", pc, proc.error_flag);
      ]
    end
  in
  let g_nodes = Telemetry.gauge "bdd.live_nodes" in
  let c_backtracks = Telemetry.counter "atpg.backtracks" in
  let c_packed_words = Telemetry.counter "sim.packed_words" in
  let atpg_counters =
    List.map
      (fun name -> (name, Telemetry.counter ("atpg." ^ name)))
      [ "scoap_cache_hits"; "scoap_cache_misses"; "random_sat";
        "random_rounds" ]
  in
  let h_image = Telemetry.histogram "mc.image_seconds" in
  let sat_counters =
    List.map
      (fun name -> (name, Telemetry.counter ("sat." ^ name)))
      [ "conflicts"; "propagations"; "learned"; "restarts"; "frames_reused" ]
  in
  (* A shallow SAT-vs-ATPG BMC cross-check per design: keeps the sat.*
     counters live in every row and records whether the two engine
     families agree at the shared depth. *)
  let sat_cross_check circuit (prop : Property.t) =
    let limits = { Atpg.max_backtracks = 50_000; max_seconds = Some 5.0 } in
    let bad = prop.Property.bad in
    let depth = 5 in
    let a, _ = Rfn_core.Bmc.falsify ~limits circuit ~bad ~max_depth:depth in
    let s, _ = Rfn_core.Sat_bmc.falsify ~limits circuit ~bad ~max_depth:depth in
    match (a, s) with
    | Rfn_core.Bmc.Found ta, Rfn_core.Bmc.Found ts ->
      Trace.length ta = Trace.length ts
    | Rfn_core.Bmc.Exhausted, Rfn_core.Bmc.Exhausted -> true
    | Rfn_core.Bmc.Gave_up _, _ | _, Rfn_core.Bmc.Gave_up _ -> true
    | _ -> false
  in
  let c_retries = Telemetry.counter "supervisor.retries" in
  let c_fallbacks = Telemetry.counter "supervisor.fallbacks" in
  let c_escalations = Telemetry.counter "supervisor.escalations" in
  let session_counter name = Telemetry.counter ("session." ^ name) in
  let session_counters =
    List.map
      (fun name -> (name, session_counter name))
      [
        "cones_reused"; "cones_recompiled"; "clusters_reused";
        "clusters_rebuilt"; "grow_in_place"; "grow_sifted"; "grow_rebuilds";
        "resets";
      ]
  in
  let g_carried = Telemetry.gauge "session.nodes_carried" in
  let was_enabled = Telemetry.enabled () in
  (* one inference run per distinct design (fifo carries three
     properties); invariants are facts about the design, not the
     property, mirroring the warm-session cache *)
  let analysis_memo = ref [] in
  let analysis_of circuit =
    match List.assq_opt circuit !analysis_memo with
    | Some a -> a
    | None ->
      let a = Analysis.run circuit in
      analysis_memo := (circuit, a) :: !analysis_memo;
      a
  in
  let cold = ref [] in
  let rows =
    List.map
      (fun (name, circuit, prop) ->
        Telemetry.reset ();
        Telemetry.enable ();
        let lint_report = Lint.run ~props:[ prop ] circuit in
        (* verify with phase-boundary invariant checks on, so every row
           also records how many artifact audits the run survived *)
        let config =
          { Rfn.default_config with Rfn.check_invariants = true }
        in
        let outcome, stats = Rfn.verify ~config circuit prop in
        let sat_agrees = sat_cross_check circuit prop in
        let analysis = analysis_of circuit in
        let result =
          match outcome with
          | Rfn.Proved -> "T"
          | Rfn.Falsified _ -> "F"
          | Rfn.Aborted why -> "abort: " ^ Rfn_failure.to_string why
        in
        Format.printf "  %-28s %-6s %6.2fs  %d iteration(s)@." name result
          stats.Rfn.seconds
          (List.length stats.Rfn.iterations);
        cold :=
          ( name,
            result,
            Telemetry.counter_value (session_counter "cones_recompiled"),
            stats.Rfn.seconds )
          :: !cold;
        Json.Obj
          [
            ("name", Json.Str name);
            ("result", Json.Str result);
            ("seconds", Json.Float stats.Rfn.seconds);
            ("iterations", Json.Int (List.length stats.Rfn.iterations));
            ("coi_regs", Json.Int stats.Rfn.coi_regs);
            ("abstract_regs", Json.Int stats.Rfn.final_abstract_regs);
            ("peak_bdd_nodes", Json.Int (Telemetry.gauge_peak g_nodes));
            ( "atpg_backtracks",
              Json.Int (Telemetry.counter_value c_backtracks) );
            ( "sim",
              Json.Obj
                [
                  ( "packed_words",
                    Json.Int (Telemetry.counter_value c_packed_words) );
                ] );
            ( "atpg",
              Json.Obj
                (List.map
                   (fun (n, c) -> (n, Json.Int (Telemetry.counter_value c)))
                   atpg_counters) );
            ("provenance", Json.Int (List.length stats.Rfn.provenance));
            ( "hist",
              Json.Obj
                [
                  ( "image_steps",
                    Json.Int (Telemetry.histogram_count h_image) );
                  ( "image_step_p50",
                    Json.Float (Telemetry.histogram_quantile h_image 0.5) );
                  ( "image_step_p90",
                    Json.Float (Telemetry.histogram_quantile h_image 0.9) );
                  ( "image_step_max",
                    Json.Float (Telemetry.histogram_max h_image) );
                ] );
            ( "sat",
              Json.Obj
                (("bmc_cross_check", Json.Bool sat_agrees)
                :: List.map
                     (fun (n, c) -> (n, Json.Int (Telemetry.counter_value c)))
                     sat_counters) );
            ( "analysis",
              Json.Obj
                [
                  ( "candidates",
                    Json.Int analysis.Analysis.stats.Analysis.candidates );
                  ("proved", Json.Int analysis.Analysis.stats.Analysis.proved);
                  ( "refuted",
                    Json.Int analysis.Analysis.stats.Analysis.refuted );
                  ( "unknown",
                    Json.Int analysis.Analysis.stats.Analysis.unknown );
                  ("seconds", Json.Float analysis.Analysis.seconds);
                ] );
            ( "lint",
              Json.Obj
                [
                  ( "findings",
                    Json.Int (List.length lint_report.Lint.findings) );
                  ("errors", Json.Int (Lint.errors lint_report));
                  ("warnings", Json.Int (Lint.warnings lint_report));
                ] );
            ( "check",
              Json.Obj
                [
                  ( "invariant_passes",
                    Json.Int
                      (Telemetry.counter_value
                         (Telemetry.counter "check.invariant_passes")) );
                  ( "invariant_failures",
                    Json.Int
                      (Telemetry.counter_value
                         (Telemetry.counter "check.invariant_failures")) );
                ] );
            ("retries", Json.Int (Telemetry.counter_value c_retries));
            ("fallbacks", Json.Int (Telemetry.counter_value c_fallbacks));
            ("escalations", Json.Int (Telemetry.counter_value c_escalations));
            ( "proc",
              Json.Obj
                (List.map
                   (fun n ->
                     ( n,
                       Json.Int
                         (Telemetry.counter_value
                            (Telemetry.counter ("proc." ^ n))) ))
                   [ "workers_spawned"; "worker_failures" ]) );
            ( "race",
              Json.Obj
                (List.map
                   (fun n ->
                     ( n,
                       Json.Int
                         (Telemetry.counter_value
                            (Telemetry.counter ("race." ^ n))) ))
                   [ "runs"; "wins" ]) );
            ( "session",
              Json.Obj
                (List.map
                   (fun (name, c) ->
                     (name, Json.Int (Telemetry.counter_value c)))
                   session_counters
                @ [
                    ( "peak_nodes_carried",
                      Json.Int (Telemetry.gauge_peak g_carried) );
                  ]) );
          ])
      workloads
  in
  let serve = serve_batch ~workloads ~cold:(List.rev !cold) () in
  let sim = sim_phase ~quick ~workloads () in
  let analysis_diff = analysis_phase () in
  if not was_enabled then Telemetry.disable ();
  let summary =
    Json.Obj
      [
        ("bench", Json.Str "rfn");
        ("quick", Json.Bool quick);
        ("designs", Json.List rows);
        ("serve", serve);
        ("sim", sim);
        ("analysis", analysis_diff);
      ]
  in
  let oc = open_out "BENCH_rfn.json" in
  Json.to_channel oc summary;
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote BENCH_rfn.json@."

(* ---- perf gate (bench check) ---------------------------------------- *)

(* Compare the current BENCH_rfn.json against a committed baseline with
   per-metric tolerance bands, and exit non-zero on any regression. The
   bands are deliberately generous — they catch order-of-magnitude
   slips (a broken cache, a lost reuse path, an accidental O(n^2)), not
   CI-runner jitter:

     result            must match exactly
     iterations        <= baseline * 1.5 + 2
     peak_bdd_nodes    <= max(baseline * 3,  20_000)
     atpg_backtracks   <= max(baseline * 5,  10_000)
     seconds           <= max(baseline * 25, 2.0)

   When the baseline records a packed-simulation phase (a top-level
   "sim" object), the current run must keep the bit-parallel win:
   speedup >= 8x over the scalar evaluator, with the lane-0 agreement
   audit green — that one is a hard floor, not a band, because losing
   it means the packed evaluator stopped paying for itself.

   plus an internal-consistency check that every iteration produced a
   provenance record. Regenerates a quick BENCH_rfn.json when none is
   present, so `bench check --baseline BENCH_baseline.json` works as a
   single command. *)
let perf_check ~baseline_file () =
  section (Printf.sprintf "Perf gate (vs %s)" baseline_file);
  let load file =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Json.of_string (really_input_string ic (in_channel_length ic)))
  in
  if not (Sys.file_exists "BENCH_rfn.json") then bench_json ~quick:true ();
  match (load baseline_file, load "BENCH_rfn.json") with
  | exception Sys_error msg ->
    Format.eprintf "bench check: %s@." msg;
    exit 1
  | exception Failure msg ->
    Format.eprintf "bench check: malformed JSON: %s@." msg;
    exit 1
  | base, cur ->
    let designs j =
      match Json.member "designs" j with
      | Some (Json.List l) ->
        List.filter_map
          (fun r ->
            match Json.member "name" r with
            | Some (Json.Str n) -> Some (n, r)
            | _ -> None)
          l
      | _ ->
        Format.eprintf "bench check: no designs array@.";
        exit 1
    in
    let str k r = Option.bind (Json.member k r) Json.to_str in
    let num k r = Option.bind (Json.member k r) Json.to_float in
    let violations = ref [] in
    let fail fmt =
      Printf.ksprintf (fun m -> violations := m :: !violations) fmt
    in
    let band ~name ~metric ~ratio ~floor b c =
      match (num metric b, num metric c) with
      | Some bv, Some cv ->
        let allowed = Float.max (ratio *. bv) floor in
        if cv > allowed then
          fail "%s: %s %.6g exceeds allowed %.6g (baseline %.6g)" name metric
            cv allowed bv
      | None, _ -> fail "%s: baseline lacks %s" name metric
      | _, None -> fail "%s: current run lacks %s" name metric
    in
    let current = designs cur in
    let baseline = designs base in
    List.iter
      (fun (name, b) ->
        match List.assoc_opt name current with
        | None -> fail "%s: missing from current BENCH_rfn.json" name
        | Some c ->
          (match (str "result" b, str "result" c) with
          | Some rb, Some rc when rb <> rc ->
            fail "%s: result %S differs from baseline %S" name rc rb
          | Some _, Some _ -> ()
          | _ -> fail "%s: missing result field" name);
          (match (num "iterations" b, num "iterations" c) with
          | Some bi, Some ci ->
            if ci > (bi *. 1.5) +. 2.0 then
              fail "%s: iterations %g exceeds baseline %g (band 1.5x + 2)"
                name ci bi
          | _ -> fail "%s: missing iterations field" name);
          band ~name ~metric:"peak_bdd_nodes" ~ratio:3.0 ~floor:20_000.0 b c;
          band ~name ~metric:"atpg_backtracks" ~ratio:5.0 ~floor:10_000.0 b c;
          band ~name ~metric:"seconds" ~ratio:25.0 ~floor:2.0 b c;
          match (num "provenance" c, num "iterations" c) with
          | Some p, Some i when p < i ->
            fail "%s: %g provenance record(s) for %g iteration(s)" name p i
          | None, _ -> fail "%s: current run lacks provenance count" name
          | _ -> ())
      baseline;
    (match (Json.member "analysis" base, Json.member "analysis" cur) with
    | Some _, None ->
      fail "analysis: phase missing from current BENCH_rfn.json"
    | Some _, Some a ->
      (match (str "result_off" a, str "result_on" a) with
      | Some off, Some on when off <> on ->
        fail "analysis: --analyze changed the verdict (%S vs %S)" off on
      | Some _, Some _ -> ()
      | _ -> fail "analysis: current run lacks result fields");
      (match Json.member "improved" a with
      | Some (Json.Bool true) -> ()
      | _ ->
        fail
          "analysis: the invariant care set no longer reduces iterations or \
           peak nodes on the differential design")
    | None, _ -> ());
    (match (Json.member "sim" base, Json.member "sim" cur) with
    | Some _, None -> fail "sim: phase missing from current BENCH_rfn.json"
    | Some _, Some s ->
      (match Option.bind (Json.member "speedup" s) Json.to_float with
      | Some sp when sp < 8.0 ->
        fail "sim: packed speedup %.2fx below the required 8x" sp
      | Some _ -> ()
      | None -> fail "sim: current run lacks speedup");
      (match Json.member "agree" s with
      | Some (Json.Bool true) -> ()
      | _ -> fail "sim: packed and scalar evaluators disagree")
    | None, _ -> ());
    (match List.rev !violations with
    | [] ->
      Format.printf "perf gate: OK — %d design(s) within tolerance@."
        (List.length baseline)
    | vs ->
      List.iter (fun v -> Format.printf "perf gate: FAIL — %s@." v) vs;
      exit 1)

(* ---- drivers -------------------------------------------------------- *)

let () =
  let small = has "--small" in
  let baseline = has "--baseline" in
  let quick = has "--quick" || Sys.getenv_opt "BENCH_QUICK" <> None in
  let budget = float_arg "--budget" 20.0 in
  let bfs_k = int_of_float (float_arg "--bfs-k" 60.0) in
  let explicit =
    List.filter
      (fun a ->
        List.mem a
          [ "table1"; "table2"; "figure1"; "guidance"; "subsetting"; "refine";
            "micro"; "json"; "all" ])
      (Array.to_list Sys.argv)
  in
  let want t = explicit = [] || List.mem t explicit || List.mem "all" explicit in
  (* a full harness run includes the paper's COI-MC baseline footnote *)
  let baseline = baseline || explicit = [] || List.mem "all" explicit in
  if has "check" then
    perf_check ~baseline_file:(string_arg "--baseline" "BENCH_baseline.json") ()
  else if quick then bench_json ~quick:true ()
  else begin
  if want "table1" then begin
    section "Table 1 (property verification)";
    E.Table1.(print Format.std_formatter (run ~small ~baseline ()))
  end;
  if want "table2" then begin
    section
      (Printf.sprintf "Table 2 (coverage analysis; RFN budget %.0fs, BFS k=%d)"
         budget bfs_k);
    E.Table2.(print Format.std_formatter (run ~small ~budget ~bfs_k ()))
  end;
  if want "figure1" then begin
    section "Figure 1 (min-cut / hybrid-engine structure)";
    E.Figure1.(print Format.std_formatter (run ~small ()))
  end;
  if want "guidance" then begin
    section "Ablation: error-trace guidance for sequential ATPG (Sec. 2.3)";
    E.Guidance.(print Format.std_formatter (run ~small ()))
  end;
  if want "subsetting" then begin
    section "Ablation: BDD subsetting as pre-image fallback (Sec. 2.2)";
    E.Subsetting.(print Format.std_formatter (run ~small ()))
  end;
  if want "refine" then begin
    section "Ablation: greedy crucial-register minimization (Sec. 2.4)";
    E.Refinement.(print Format.std_formatter (run ~small ()))
  end;
  if want "micro" then micro ();
  if want "json" then bench_json ~quick:false ()
  end
