open Rfn_circuit
module B = Circuit.Builder
module Telemetry = Rfn_obs.Telemetry
module Atpg = Rfn_atpg.Atpg
module Sim3v = Rfn_sim3v.Sim3v
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic

(* ---- combinational: ATPG verdict vs BDD satisfiability ------------ *)

(* For a random circuit and a random pinned signal/value, ATPG's
   SAT/UNSAT must agree with the BDD of the signal (with registers
   free, i.e. treated as inputs). *)
let comb_vs_bdd =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"combinational ATPG agrees with BDDs"
       (QCheck.pair
          (Helpers.arbitrary_circuit ~nins:4 ~nregs:3 ~ngates:14)
          QCheck.bool)
       (fun (rc, want) ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let vm = Varmap.make view in
         let fn = Symbolic.functions vm in
         let f = fn rc.Helpers.out in
         let f = if want then f else Bdd.dnot (Varmap.man vm) f in
         (* free_init so frame-0 registers are decision variables, like
            the BDD's current-state variables *)
         let answer, _ =
           Atpg.solve ~free_init:true view ~frames:1
             ~pins:[ (0, rc.Helpers.out, want) ]
             ()
         in
         match answer with
         | Atpg.Sat trace ->
           (not (Bdd.is_zero f))
           && (* the witness must actually drive the signal *)
           (let assign s =
              match
                Cube.value (Trace.state trace 0) s
              with
              | Some b -> b
              | None -> (
                match Cube.value (Trace.input trace 0) s with
                | Some b -> b
                | None -> false)
            in
            let values =
              Circuit.eval c ~input:(fun s -> assign s) ~state:(fun r -> assign r)
            in
            values.(rc.Helpers.out) = want)
         | Atpg.Unsat -> Bdd.is_zero f
         | Atpg.Abort _ -> QCheck.assume_fail ()))

(* ---- sequential: verdict vs explicit-state reachability ------------ *)

let seq_vs_explicit =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"sequential ATPG vs explicit search"
       (QCheck.pair
          (Helpers.arbitrary_circuit ~nins:2 ~nregs:3 ~ngates:10)
          (QCheck.int_range 1 5))
       (fun (rc, depth) ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let answer, _ =
           Atpg.solve view ~frames:depth ~pins:[ (depth - 1, rc.Helpers.out, true) ] ()
         in
         (* explicit bounded search from the initial state *)
         let inputs = c.Circuit.inputs in
         let nins = Array.length inputs in
         let idx arr x =
           let rec go i = if arr.(i) = x then i else go (i + 1) in
           go 0
         in
         (* The ATPG query asks for the objective at exactly frame
            depth-1 (state after depth-1 transitions, with that frame's
            input vector free). *)
         let rec exact st transitions_left =
           let found = ref false in
           for iv = 0 to (1 lsl nins) - 1 do
             if not !found then begin
               let input s = iv land (1 lsl idx inputs s) <> 0 in
               if transitions_left = 0 then begin
                 let values = Circuit.eval c ~input ~state:st in
                 if values.(rc.Helpers.out) then found := true
               end
               else begin
                 let _, next = Circuit.step c ~input ~state:st in
                 if exact (fun r -> next r) (transitions_left - 1) then
                   found := true
               end
             end
           done;
           !found
         in
         let init r = Circuit.initial_state c ~free:(fun _ -> false) r in
         (* free-init registers are rare in the generator; restrict to
            concrete-init circuits to keep the reference simple *)
         QCheck.assume
           (Array.for_all
              (fun r ->
                match Circuit.node c r with
                | Circuit.Reg { init = `Free; _ } -> false
                | _ -> true)
              c.Circuit.registers);
         match answer with
         | Atpg.Sat t ->
           Trace.length t = depth
           && Sim3v.replay_concrete c t ~bad:rc.Helpers.out
         | Atpg.Unsat -> not (exact init (depth - 1))
         | Atpg.Abort _ -> QCheck.assume_fail ()))

(* ---- pins and constraints ----------------------------------------- *)

let test_pin_on_free_input () =
  let c = Helpers.counter_design ~width:2 ~limit:3 in
  let bad = Circuit.output c "at_limit" in
  let en = Circuit.find c "enable" in
  let view = Sview.whole c ~roots:[ bad ] in
  (* with enable pinned low at every cycle the limit is unreachable *)
  let pins =
    (3, bad, true) :: List.init 4 (fun f -> (f, en, false))
  in
  let answer, _ = Atpg.solve view ~frames:4 ~pins () in
  Alcotest.(check bool) "unsat under hostile pins" true (answer = Atpg.Unsat);
  (* without the hostile pins it is satisfiable at depth 4 *)
  let answer, _ = Atpg.solve view ~frames:4 ~pins:[ (3, bad, true) ] () in
  match answer with
  | Atpg.Sat t ->
    Alcotest.(check bool) "replays" true (Sim3v.replay_concrete c t ~bad)
  | _ -> Alcotest.fail "expected Sat"

let test_contradictory_root_pins () =
  let c = Helpers.counter_design ~width:2 ~limit:3 in
  let bad = Circuit.output c "at_limit" in
  let en = Circuit.find c "enable" in
  let view = Sview.whole c ~roots:[ bad ] in
  let answer, _ =
    Atpg.solve view ~frames:2 ~pins:[ (0, en, true); (0, en, false) ] ()
  in
  Alcotest.(check bool) "contradiction is Unsat" true (answer = Atpg.Unsat)

let test_objective_on_initial_state () =
  let c = Helpers.counter_design ~width:2 ~limit:0 in
  let bad = Circuit.output c "at_limit" in
  let view = Sview.whole c ~roots:[ bad ] in
  (* counter starts at 0, so at_limit(=0) holds in frame 0 *)
  let answer, _ = Atpg.solve view ~frames:1 ~pins:[ (0, bad, true) ] () in
  Alcotest.(check bool) "initial state satisfies" true
    (match answer with Atpg.Sat _ -> true | _ -> false);
  let answer, _ = Atpg.solve view ~frames:1 ~pins:[ (0, bad, false) ] () in
  Alcotest.(check bool) "cannot falsify frame 0 value" true
    (answer = Atpg.Unsat)

let test_backtrack_limit_aborts () =
  (* an unsatisfiable parity problem with a tiny budget *)
  let b = Circuit.Builder.create () in
  let module B = Circuit.Builder in
  let ins = Array.init 16 (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let x = B.gate b Gate.Xor ins in
  let y = B.gate b Gate.Xnor ins in
  let both = B.and2 b x y in
  B.output b "both" both;
  let c = B.finalize b in
  let view = Sview.whole c ~roots:[ both ] in
  let answer, stats =
    Atpg.solve
      ~limits:{ Atpg.max_backtracks = 3; max_seconds = None }
      view ~frames:1
      ~pins:[ (0, both, true) ]
      ()
  in
  Alcotest.(check bool) "aborts at limit" true
    (match answer with Atpg.Abort _ -> true | _ -> false);
  Alcotest.(check bool) "counted backtracks" true (stats.Atpg.backtracks >= 3)

let test_frames_validation () =
  let c = Helpers.arbiter_design () in
  let bad = Circuit.output c "bad" in
  let view = Sview.whole c ~roots:[ bad ] in
  (try
     ignore (Atpg.solve view ~frames:0 ~pins:[] ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Atpg.solve view ~frames:2 ~pins:[ (5, bad, true) ] ());
    Alcotest.fail "expected frame range error"
  with Invalid_argument _ -> ()

let test_free_init_explores_states () =
  (* at_limit is reachable in one frame iff the initial state is free *)
  let c = Helpers.counter_design ~width:3 ~limit:5 in
  let bad = Circuit.output c "at_limit" in
  let view = Sview.whole c ~roots:[ bad ] in
  let strict, _ = Atpg.solve view ~frames:1 ~pins:[ (0, bad, true) ] () in
  Alcotest.(check bool) "unreachable from reset" true (strict = Atpg.Unsat);
  let relaxed, _ =
    Atpg.solve ~free_init:true view ~frames:1 ~pins:[ (0, bad, true) ] ()
  in
  match relaxed with
  | Atpg.Sat t ->
    (* the witness state must set the counter to 5 *)
    let st = Trace.state t 0 in
    let cnt_val =
      List.fold_left
        (fun acc i ->
          match Cube.value st (Circuit.find c (Printf.sprintf "cnt_%d" i)) with
          | Some true -> acc lor (1 lsl i)
          | _ -> acc)
        0 [ 0; 1; 2 ]
    in
    Alcotest.(check int) "counter justified to 5" 5 cnt_val
  | _ -> Alcotest.fail "expected Sat with free initial state"

(* ---- SCOAP controllability cache ----------------------------------- *)

let test_scoap_cache () =
  let c = Helpers.counter_design ~width:4 ~limit:9 in
  let bad = Circuit.output c "at_limit" in
  let view = Sview.whole c ~roots:[ bad ] in
  let hits = Telemetry.counter "atpg.scoap_cache_hits" in
  let misses = Telemetry.counter "atpg.scoap_cache_misses" in
  let h0 = Telemetry.counter_value hits
  and m0 = Telemetry.counter_value misses in
  ignore (Atpg.solve view ~frames:2 ~pins:[ (1, bad, true) ] ());
  let m1 = Telemetry.counter_value misses in
  Alcotest.(check bool) "first solve misses the cache" true (m1 > m0);
  ignore (Atpg.solve view ~frames:3 ~pins:[ (2, bad, true) ] ());
  Alcotest.(check bool)
    "same-shape view hits the cache" true
    (Telemetry.counter_value hits > h0);
  Alcotest.(check int)
    "no extra miss for a cached shape" m1
    (Telemetry.counter_value misses)

(* ---- random-pattern pre-pass ---------------------------------------- *)

let test_random_phase () =
  (* bad = i0 OR i1: a random lane almost surely satisfies it, so the
     pre-pass answers without a single branch decision *)
  let b = B.create () in
  let i0 = B.input b "i0" and i1 = B.input b "i1" in
  B.output b "bad" (B.or2 b i0 i1);
  let c = B.finalize b in
  let bad = Circuit.output c "bad" in
  let view = Sview.whole c ~roots:[ bad ] in
  let c_rsat = Telemetry.counter "atpg.random_sat" in
  let r0 = Telemetry.counter_value c_rsat in
  (match Atpg.solve view ~frames:1 ~pins:[ (0, bad, true) ] () with
  | Atpg.Sat t, stats ->
    Alcotest.(check int) "no decisions needed" 0 stats.Atpg.decisions;
    Alcotest.(check bool)
      "found by the random phase" true
      (Telemetry.counter_value c_rsat > r0);
    (* the packed lane is a genuine witness *)
    let assign s = Cube.value (Trace.input t 0) s = Some true in
    let values = Circuit.eval c ~input:assign ~state:assign in
    Alcotest.(check bool) "witness drives bad" true values.(bad)
  | (Atpg.Unsat | Atpg.Abort _), _ ->
    Alcotest.fail "or-of-inputs should be satisfiable");
  (* with the pre-pass off the search must still conclude, and Unsat
     objectives are never misreported by random lanes *)
  (match Atpg.solve ~random_phase:false view ~frames:1 ~pins:[ (0, bad, true) ] () with
  | Atpg.Sat _, _ -> ()
  | _ -> Alcotest.fail "search alone should also satisfy");
  match
    Atpg.solve view ~frames:1 ~pins:[ (0, i0, true); (0, bad, false) ] ()
  with
  | Atpg.Unsat, _ -> ()
  | _ -> Alcotest.fail "pinned-true input forces bad: must be Unsat"

let tests =
  [
    comb_vs_bdd;
    seq_vs_explicit;
    Alcotest.test_case "scoap cache" `Quick test_scoap_cache;
    Alcotest.test_case "random-pattern phase" `Quick test_random_phase;
    Alcotest.test_case "pins on free inputs" `Quick test_pin_on_free_input;
    Alcotest.test_case "contradictory pins" `Quick test_contradictory_root_pins;
    Alcotest.test_case "frame-0 objectives" `Quick
      test_objective_on_initial_state;
    Alcotest.test_case "backtrack limit" `Quick test_backtrack_limit_aborts;
    Alcotest.test_case "argument validation" `Quick test_frames_validation;
    Alcotest.test_case "free initial state" `Quick test_free_init_explores_states;
  ]

let () = Alcotest.run "atpg" [ ("atpg", tests) ]
