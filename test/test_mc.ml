(* The symbolic model checker: variable maps, cone construction, image
   computation and reachability, validated against brute force. *)

open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Reach = Rfn_mc.Reach
module Force = Rfn_bdd.Force

let test_varmap_roles () =
  let c = Helpers.arbiter_design () in
  let bad = Circuit.output c "bad" in
  let view = Sview.whole c ~roots:[ bad ] in
  let vm = Varmap.make view in
  Array.iter
    (fun r ->
      let cv = Varmap.cur_var vm r and nv = Varmap.nxt_var vm r in
      Alcotest.(check bool) "next directly below current" true (nv = cv + 1);
      (match Varmap.role vm cv with
      | Varmap.Cur s -> Alcotest.(check int) "cur role" r s
      | _ -> Alcotest.fail "expected Cur");
      match Varmap.role vm nv with
      | Varmap.Nxt s -> Alcotest.(check int) "nxt role" r s
      | _ -> Alcotest.fail "expected Nxt")
    view.Sview.regs;
  Array.iter
    (fun i ->
      match Varmap.role vm (Varmap.inp_var vm i) with
      | Varmap.Inp s -> Alcotest.(check int) "inp role" i s
      | _ -> Alcotest.fail "expected Inp")
    view.Sview.free_inputs;
  Alcotest.(check int) "cur count" (Sview.num_regs view)
    (List.length (Varmap.cur_vars vm));
  Alcotest.(check int) "inp count"
    (Sview.num_free_inputs view)
    (List.length (Varmap.inp_vars vm))

let test_varmap_miss_diagnostics () =
  (* A role the signal does not carry must raise [Invalid_argument]
     naming the accessor and the signal — not a bare [Not_found] from
     deep inside a fixpoint. *)
  let c = Helpers.arbiter_design () in
  let bad = Circuit.output c "bad" in
  let view = Sview.whole c ~roots:[ bad ] in
  let vm = Varmap.make view in
  let input = view.Sview.free_inputs.(0) in
  let reg = view.Sview.regs.(0) in
  let contains msg fragment =
    let n = String.length msg and m = String.length fragment in
    let rec go i = i + m <= n && (String.sub msg i m = fragment || go (i + 1)) in
    go 0
  in
  let expect_invalid_arg label fragments f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument msg ->
      List.iter
        (fun fragment ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: message %S mentions %S" label msg fragment)
            true (contains msg fragment))
        fragments
  in
  expect_invalid_arg "cur_var on an input"
    [ "cur_var"; string_of_int input; Circuit.name c input ]
    (fun () -> Varmap.cur_var vm input);
  expect_invalid_arg "nxt_var on an input" [ "nxt_var" ] (fun () ->
      Varmap.nxt_var vm input);
  expect_invalid_arg "inp_var on a register"
    [ "inp_var"; Circuit.name c reg ]
    (fun () -> Varmap.inp_var vm reg);
  expect_invalid_arg "role of an unallocated variable" [ "role"; "9999" ]
    (fun () -> ignore (Varmap.role vm 9999));
  (* the option probes stay silent *)
  Alcotest.(check (option int)) "cur_var_opt misses" None
    (Varmap.cur_var_opt vm input);
  Alcotest.(check bool) "cur_var_opt hits" true
    (Varmap.cur_var_opt vm reg = Some (Varmap.cur_var vm reg));
  Alcotest.(check (option int)) "inp_var_opt misses" None
    (Varmap.inp_var_opt vm reg);
  Alcotest.(check (option int)) "nxt_var_opt misses" None
    (Varmap.nxt_var_opt vm input);
  (* Symbolic's cube builder wraps the miss with its own context *)
  expect_invalid_arg "state_cube over a non-register"
    [ "state_cube"; Circuit.name c input ]
    (fun () ->
      ignore (Symbolic.state_cube vm (Cube.of_list [ (input, true) ])))

let test_add_input_vars () =
  let c = Helpers.arbiter_design () in
  let bad = Circuit.output c "bad" in
  let vm = Varmap.make (Sview.whole c ~roots:[ bad ]) in
  let internal = Circuit.find c "g0_reg" in
  Alcotest.(check bool) "no var yet" false (Varmap.has_inp_var vm bad);
  Varmap.add_input_vars vm [ bad ];
  Alcotest.(check bool) "var added" true (Varmap.has_inp_var vm bad);
  let v = Varmap.inp_var vm bad in
  Varmap.add_input_vars vm [ bad ];
  Alcotest.(check int) "idempotent" v (Varmap.inp_var vm bad);
  ignore internal

(* Cone functions agree with direct evaluation. *)
let cones_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"symbolic cones match evaluation"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:3 ~ngates:12)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let vm = Varmap.make view in
         let man = Varmap.man vm in
         let fn = Symbolic.functions vm in
         let ok = ref true in
         for iv = 0 to 7 do
           for sv = 0 to 7 do
             let idx arr x =
               let rec go i = if arr.(i) = x then i else go (i + 1) in
               go 0
             in
             let input s = iv land (1 lsl idx c.Circuit.inputs s) <> 0 in
             let state r = sv land (1 lsl idx c.Circuit.registers r) <> 0 in
             let values = Circuit.eval c ~input ~state in
             let env v =
               match Varmap.role vm v with
               | Varmap.Cur r -> state r
               | Varmap.Inp i -> input i
               | Varmap.Nxt _ -> false
             in
             if Bdd.eval man (fn rc.Helpers.out) env <> values.(rc.Helpers.out)
             then ok := false
           done
         done;
         !ok))

(* Post-image equals one explicit transition step. *)
let image_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"post-image = explicit step"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:3 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let vm = Varmap.make view in
         let man = Varmap.man vm in
         let img = Image.make vm in
         let regs = c.Circuit.registers and inputs = c.Circuit.inputs in
         let idx arr x =
           let rec go i = if arr.(i) = x then i else go (i + 1) in
           go 0
         in
         (* random source set: states whose code is even *)
         let source_codes =
           List.filter (fun v -> v mod 2 = 0) (List.init 8 (fun i -> i))
         in
         let cube_of code =
           Bdd.cube man
             (Array.to_list regs
             |> List.map (fun r ->
                    (Varmap.cur_var vm r, code land (1 lsl idx regs r) <> 0)))
         in
         let source =
           List.fold_left
             (fun acc code -> Bdd.dor man acc (cube_of code))
             (Bdd.zero man) source_codes
         in
         let post = Image.post img source in
         (* explicit: all successors of the even-coded states *)
         let expected = Hashtbl.create 16 in
         List.iter
           (fun code ->
             for iv = 0 to 7 do
               let input s = iv land (1 lsl idx inputs s) <> 0 in
               let state r = code land (1 lsl idx regs r) <> 0 in
               let _, next = Circuit.step c ~input ~state in
               let code' =
                 Array.fold_left
                   (fun acc r ->
                     if next r then acc lor (1 lsl idx regs r) else acc)
                   0 regs
               in
               Hashtbl.replace expected code' ()
             done)
           source_codes;
         let ok = ref true in
         for code = 0 to 7 do
           let env v =
             match Varmap.role vm v with
             | Varmap.Cur r -> code land (1 lsl idx regs r) <> 0
             | _ -> false
           in
           if Bdd.eval man post env <> Hashtbl.mem expected code then
             ok := false
         done;
         !ok))

(* Pre-image by compose: x is in pre(T) iff some input leads x to T. *)
let preimage_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"pre-image by compose = explicit"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:3 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let vm = Varmap.make view in
         let man = Varmap.man vm in
         let fn = Symbolic.functions vm in
         let regs = c.Circuit.registers and inputs = c.Circuit.inputs in
         let idx arr x =
           let rec go i = if arr.(i) = x then i else go (i + 1) in
           go 0
         in
         (* target: states with register 0 set *)
         let target = Bdd.var man (Varmap.cur_var vm regs.(0)) in
         let pre = Image.pre_via_compose vm ~fn target in
         (* pre is over cur vars and input vars; quantify inputs for a
            state-level check *)
         let pre_states = Bdd.exists man (Varmap.inp_vars vm) pre in
         let ok = ref true in
         for code = 0 to 7 do
           let state r = code land (1 lsl idx regs r) <> 0 in
           let expected = ref false in
           for iv = 0 to 7 do
             let input s = iv land (1 lsl idx inputs s) <> 0 in
             let _, next = Circuit.step c ~input ~state in
             if next regs.(0) then expected := true
           done;
           let env v =
             match Varmap.role vm v with
             | Varmap.Cur r -> state r
             | _ -> false
           in
           if Bdd.eval man pre_states env <> !expected then ok := false
         done;
         !ok))

(* Full reachability vs explicit-state search, including bad-state
   detection at the right step. *)
let reach_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"reachability = explicit search"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:12)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let vm = Varmap.make view in
         let man = Varmap.man vm in
         let fn = Symbolic.functions vm in
         let img = Image.make vm in
         let init = Symbolic.initial_states vm in
         let bad_states = Reach.bad_predicate vm ~fn ~bad:rc.Helpers.out in
         let res = Reach.run ~max_steps:64 img ~vm ~init ~bad_states in
         let expected = Helpers.explicit_violates c ~bad:rc.Helpers.out in
         match res.Reach.outcome with
         | Reach.Proved ->
           (not expected)
           &&
           (* the reached set must cover exactly the explicit one *)
           let explicit = Helpers.explicit_reachable c in
           let regs = c.Circuit.registers in
           let idx x =
             let rec go i = if regs.(i) = x then i else go (i + 1) in
             go 0
           in
           let ok = ref true in
           for code = 0 to (1 lsl Array.length regs) - 1 do
             let env v =
               match Varmap.role vm v with
               | Varmap.Cur r -> code land (1 lsl idx r) <> 0
               | _ -> false
             in
             if Bdd.eval man res.Reach.reached env <> Hashtbl.mem explicit code
             then ok := false
           done;
           !ok
         | Reach.Reached _ -> expected
         | Reach.Closed _ | Reach.Aborted _ -> QCheck.assume_fail ()))

(* Rings are disjoint and their union is the reached set. *)
let rings_partition =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"rings partition the reached set"
       (Helpers.arbitrary_circuit ~nins:2 ~nregs:4 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let vm = Varmap.make view in
         let man = Varmap.man vm in
         let img = Image.make vm in
         let init = Symbolic.initial_states vm in
         let res =
           Reach.run ~max_steps:64 img ~vm ~init ~bad_states:(Bdd.zero man)
         in
         let union =
           Array.fold_left (Bdd.dor man) (Bdd.zero man) res.Reach.rings
         in
         let disjoint = ref true in
         Array.iteri
           (fun i ri ->
             Array.iteri
               (fun j rj ->
                 if i < j && not (Bdd.is_zero (Bdd.dand man ri rj)) then
                   disjoint := false)
               res.Reach.rings)
           res.Reach.rings;
         !disjoint && Bdd.equal union res.Reach.reached))

let test_limits_abort () =
  let c = Helpers.deep_bug_design ~width:4 in
  let bad = Circuit.output c "bad" in
  let view = Sview.whole c ~roots:[ bad ] in
  let vm = Varmap.make ~node_limit:60 view in
  (match
     let fn = Symbolic.functions vm in
     let img = Image.make vm in
     let init = Symbolic.initial_states vm in
     let bad_states = Reach.bad_predicate vm ~fn ~bad in
     (Reach.run img ~vm ~init ~bad_states).Reach.outcome
   with
  | Reach.Aborted _ -> ()
  | exception Bdd.Limit_exceeded -> ()
  | _ -> Alcotest.fail "expected a node-limit abort");
  (* step limit *)
  let vm = Varmap.make view in
  let fn = Symbolic.functions vm in
  let img = Image.make vm in
  let init = Symbolic.initial_states vm in
  let bad_states = Reach.bad_predicate vm ~fn ~bad in
  match (Reach.run ~max_steps:2 img ~vm ~init ~bad_states).Reach.outcome with
  | Reach.Aborted Rfn_failure.Steps -> ()
  | _ -> Alcotest.fail "expected step-limit abort"

let test_stop_at_bad_false_closes () =
  (* 2-bit counter, always enabled via constant: state 3 reached at
     step 3, fixpoint closes at 4 states *)
  let b = Circuit.Builder.create () in
  let module B = Circuit.Builder in
  let en = B.const b true in
  let q = Rtl.counter b ~name:"q" ~width:2 ~enable:en () in
  let top = B.and2 b q.(0) q.(1) in
  B.output b "top" top;
  let c = B.finalize b in
  let view = Sview.whole c ~roots:[ top ] in
  let vm = Varmap.make view in
  let fn = Symbolic.functions vm in
  let img = Image.make vm in
  let init = Symbolic.initial_states vm in
  let bad_states = Reach.bad_predicate vm ~fn ~bad:top in
  let res = Reach.run ~stop_at_bad:false img ~vm ~init ~bad_states in
  (match res.Reach.outcome with
  | Reach.Closed 3 -> ()
  | Reach.Closed k -> Alcotest.failf "closed at %d, expected 3" k
  | _ -> Alcotest.fail "expected Closed");
  Alcotest.(check int) "four rings" 4 (Array.length res.Reach.rings);
  (* with the default stop_at_bad the run stops at the hit *)
  let res = Reach.run img ~vm ~init ~bad_states in
  match res.Reach.outcome with
  | Reach.Reached 3 -> ()
  | _ -> Alcotest.fail "expected Reached 3"

let test_force_reduces_span () =
  (* a chain hypergraph scrambled: FORCE should bring the span down to
     near-minimal *)
  let nvars = 16 in
  let edges = List.init (nvars - 1) (fun i -> [ i; (i + 7) mod nvars ]) in
  let identity = Array.init nvars (fun i -> i) in
  let before = Force.span ~pos:identity ~edges in
  let pos = Force.order ~nvars ~edges () in
  let after = Force.span ~pos ~edges in
  Alcotest.(check bool) "span not worse" true (after <= before);
  (* result is a permutation *)
  let seen = Array.make nvars false in
  Array.iter (fun p -> seen.(p) <- true) pos;
  Alcotest.(check bool) "permutation" true (Array.for_all (fun x -> x) seen)

let tests =
  [
    Alcotest.test_case "varmap roles and interleaving" `Quick test_varmap_roles;
    Alcotest.test_case "varmap miss diagnostics" `Quick
      test_varmap_miss_diagnostics;
    Alcotest.test_case "add_input_vars" `Quick test_add_input_vars;
    cones_agree;
    image_agrees;
    preimage_agrees;
    reach_agrees;
    rings_partition;
    Alcotest.test_case "resource limits abort" `Quick test_limits_abort;
    Alcotest.test_case "stop_at_bad:false closes" `Quick
      test_stop_at_bad_false_closes;
    Alcotest.test_case "FORCE reduces span" `Quick test_force_reduces_span;
  ]

let () = Alcotest.run "mc" [ ("mc", tests) ]
