(* The netlist optimizer, the BMC baseline, and reordering-by-rebuild. *)

open Rfn_circuit
module Bmc = Rfn_core.Bmc
module Bdd = Rfn_bdd.Bdd
module Reorder = Rfn_bdd.Reorder
module Sim3v = Rfn_sim3v.Sim3v
module B = Circuit.Builder

(* ---- Opt.simplify --------------------------------------------------- *)

(* behavioural equivalence under a few cycles of deterministic stimulus *)
let equivalent c1 c2 ~out1 ~out2 ~cycles =
  let run c out =
    let st =
      ref (fun r ->
          Sim3v.of_bool (Circuit.initial_state c ~free:(fun _ -> false) r))
    in
    let acc = ref [] in
    let view = Sview.whole c ~roots:[ out ] in
    for cycle = 0 to cycles - 1 do
      let free s =
        Sim3v.of_bool (Hashtbl.hash (Circuit.name c s, cycle) land 1 = 1)
      in
      let values, next = Sim3v.step view ~free ~state:!st in
      acc := values.(out) :: !acc;
      st := next
    done;
    List.rev !acc
  in
  run c1 out1 = run c2 out2

let opt_preserves_behaviour =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"simplify preserves behaviour"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:14)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let c', lookup, report = Opt.simplify c in
         let out' =
           match lookup rc.Helpers.out with
           | Some s -> s
           | None -> QCheck.Test.fail_report "output swept"
         in
         report.Opt.gates_after <= report.Opt.gates_before
         && report.Opt.registers_after <= report.Opt.registers_before
         && equivalent c c' ~out1:rc.Helpers.out ~out2:out' ~cycles:8))

let test_opt_folds_constants () =
  let b = B.create () in
  let x = B.input b "x" in
  let t = B.const b true and f = B.const b false in
  let g1 = B.gate b Gate.And [| x; t |] in
  (* = x *)
  let g2 = B.gate b Gate.Or [| g1; f |] in
  (* = x *)
  let g3 = B.gate b Gate.Xor [| g2; g2; x |] in
  (* = x *)
  let g4 = B.gate b Gate.Mux [| f; g3; t |] in
  (* = g3 = x *)
  B.output b "y" g4;
  let c = B.finalize b in
  let c', lookup, _ = Opt.simplify c in
  Alcotest.(check int) "everything folds to the input" 0
    (Circuit.num_gates c');
  let y = Circuit.output c' "y" in
  Alcotest.(check bool) "output is the input" true (Circuit.is_input c' y);
  Alcotest.(check (option int)) "map tracks the fold" (Some y)
    (lookup g4)

let test_opt_stuck_register () =
  let b = B.create () in
  let x = B.input b "x" in
  (* r holds 0 forever: r' = r & x *)
  let r = B.reg b "r" in
  B.connect b r (B.and2 b r x);
  (* s toggles: genuinely alive *)
  let s = B.reg b "s" in
  B.connect b s (B.not_ b s);
  B.output b "both" (B.or2 b r s);
  let c = B.finalize b in
  let c', _, report = Opt.simplify c in
  Alcotest.(check int) "stuck register removed" 1
    (Circuit.num_registers c');
  Alcotest.(check bool) "fold counted" true (report.Opt.constants_folded >= 1);
  Alcotest.(check bool) "behaviour: both = s" true
    (equivalent c c' ~out1:(Circuit.output c "both")
       ~out2:(Circuit.output c' "both") ~cycles:6)

let test_opt_sweeps_dead_logic () =
  let b = B.create () in
  let x = B.input b "x" in
  let dead = B.reg_of b "dead" (B.not_ b x) in
  ignore dead;
  B.output b "y" (B.not_ b x);
  let c = B.finalize b in
  let c', _, _ = Opt.simplify c in
  Alcotest.(check int) "unobservable register swept" 0
    (Circuit.num_registers c')

let test_opt_verification_agrees () =
  (* RFN verdicts must be identical on the design and its simplified
     form *)
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let c = fifo.Rfn_designs.Fifo.circuit in
  let c', lookup, _ = Opt.simplify c in
  let bad = Option.get (lookup fifo.psh_full.Property.bad) in
  match
    Rfn_core.Rfn.verify c' (Property.make ~name:"psh_full" ~bad)
  with
  | Rfn_core.Rfn.Proved, _ -> ()
  | _ -> Alcotest.fail "psh_full no longer proved after simplify"

(* ---- Bmc ------------------------------------------------------------ *)

let test_bmc_finds_shallow_bug () =
  let c = Helpers.counter_design ~width:3 ~limit:4 in
  let bad = Circuit.output c "at_limit" in
  match Bmc.falsify c ~bad ~max_depth:10 with
  | Bmc.Found t, _ ->
    Alcotest.(check int) "shortest counterexample" 5 (Trace.length t);
    Alcotest.(check bool) "replays" true (Sim3v.replay_concrete c t ~bad)
  | _ -> Alcotest.fail "expected Found"

let test_bmc_exhausts () =
  let c = Helpers.arbiter_design () in
  let bad = Circuit.output c "bad" in
  match Bmc.falsify c ~bad ~max_depth:6 with
  | Bmc.Exhausted, _ -> ()
  | _ -> Alcotest.fail "expected Exhausted"

let bmc_agrees_with_rfn =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"bmc within bound agrees with rfn"
       (Helpers.arbitrary_circuit ~nins:2 ~nregs:3 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let bad = rc.Helpers.out in
         let bmc, _ = Bmc.falsify c ~bad ~max_depth:10 in
         match (bmc, Rfn_core.Rfn.verify c (Property.make ~name:"p" ~bad)) with
         | Bmc.Found _, (Rfn_core.Rfn.Falsified _, _) -> true
         | Bmc.Exhausted, (Rfn_core.Rfn.Proved, _) -> true
         (* deep bugs beyond the BMC bound, or aborts: no claim *)
         | Bmc.Exhausted, (Rfn_core.Rfn.Falsified t, _) ->
           Trace.length t > 10
         | Bmc.Gave_up _, _ | _, (Rfn_core.Rfn.Aborted _, _) ->
           QCheck.assume_fail ()
         | Bmc.Found _, (Rfn_core.Rfn.Proved, _) -> false))

(* ---- Reorder -------------------------------------------------------- *)

let reorder_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"reorder preserves semantics"
       (Helpers.arbitrary_circuit ~nins:4 ~nregs:2 ~ngates:14)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let vm = Rfn_mc.Varmap.make view in
         let man = Rfn_mc.Varmap.man vm in
         let f = (Rfn_mc.Symbolic.functions vm) rc.Helpers.out in
         let g = Bdd.dnot man f in
         let dst, roots', map = Reorder.improve man ~roots:[ f; g ] in
         match roots' with
         | [ f'; g' ] ->
           let ok = ref true in
           for v = 0 to (1 lsl min 6 (Bdd.nvars man)) - 1 do
             let env_old i = v land (1 lsl i) <> 0 in
             let env_new i =
               (* variable i in dst corresponds to old variable with
                  map(old) = i *)
               let rec find o =
                 if o >= Bdd.nvars man then false
                 else if map o = i then env_old o
                 else find (o + 1)
               in
               find 0
             in
             if Bdd.eval dst f' env_new <> Bdd.eval man f env_old then
               ok := false;
             if Bdd.eval dst g' env_new <> Bdd.eval man g env_old then
               ok := false
           done;
           !ok
         | _ -> false))

let test_sift_shrinks_bad_order () =
  (* f = (x0 & x6) | (x1 & x7) | ... — exponential under the identity
     order, linear once the pairs sit together; greedy sifting finds
     the interleaving *)
  let n = 12 in
  let man = Bdd.create ~nvars:n () in
  let f =
    List.fold_left
      (fun acc i ->
        Bdd.dor man acc
          (Bdd.dand man (Bdd.var man i) (Bdd.var man (i + (n / 2)))))
      (Bdd.zero man)
      (List.init (n / 2) (fun i -> i))
  in
  let before = Reorder.total_size man [ f ] in
  let dst, roots', map = Reorder.sift ~max_passes:12 man ~roots:[ f ] in
  let after = Reorder.total_size dst roots' in
  Alcotest.(check bool)
    (Printf.sprintf "size improved a lot (%d -> %d)" before after)
    true
    (after * 2 < before);
  (* and semantics held *)
  match roots' with
  | [ f' ] ->
    for v = 0 to 255 do
      let env_old i = v land (1 lsl (i mod 8)) <> 0 in
      let env_new lvl =
        let rec find o =
          if o >= n then false else if map o = lvl then env_old o else find (o + 1)
        in
        find 0
      in
      Alcotest.(check bool) "same function" (Bdd.eval man f env_old)
        (Bdd.eval dst f' env_new)
    done
  | _ -> Alcotest.fail "one root expected"

let tests =
  [
    opt_preserves_behaviour;
    Alcotest.test_case "constants fold through" `Quick test_opt_folds_constants;
    Alcotest.test_case "stuck registers removed" `Quick test_opt_stuck_register;
    Alcotest.test_case "dead logic swept" `Quick test_opt_sweeps_dead_logic;
    Alcotest.test_case "verification agrees after simplify" `Quick
      test_opt_verification_agrees;
    Alcotest.test_case "bmc finds a shallow bug" `Quick
      test_bmc_finds_shallow_bug;
    Alcotest.test_case "bmc exhausts clean designs" `Quick test_bmc_exhausts;
    bmc_agrees_with_rfn;
    reorder_preserves_semantics;
    Alcotest.test_case "sifting shrinks a bad order" `Quick
      test_sift_shrinks_bad_order;
  ]

let () = Alcotest.run "opt-bmc-reorder" [ ("opt-bmc-reorder", tests) ]
