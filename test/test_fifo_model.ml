(* Model-based testing of the FIFO design: thousands of random
   push/pop cycles simulated concretely and checked, cycle by cycle,
   against an OCaml queue reference model — occupancy, flags, pointers
   and data contents all have to agree. This validates the design the
   Table 1 properties run on, independently of the verification
   engines. *)

open Rfn_circuit
module Sim3v = Rfn_sim3v.Sim3v

type harness = {
  circuit : Circuit.t;
  view : Sview.t;
  push : int;
  pop : int;
  din : int array;
  count : int array;
  head : int array;
  tail : int array;
  hf : int;
  af : int;
  full : int;
  empty : int;
  data : int array array;
  valid : int array;
  bads : int list;
  depth : int;
  width : int;
  af_slack : int;
}

let make_harness params =
  let fifo = Rfn_designs.Fifo.(make ~params ()) in
  let c = fifo.Rfn_designs.Fifo.circuit in
  let f = Circuit.find c in
  let word name w = Array.init w (fun i -> f (Printf.sprintf "%s_%d" name i)) in
  let depth = 1 lsl params.Rfn_designs.Fifo.depth_log2 in
  {
    circuit = c;
    view = Sview.whole c ~roots:[];
    push = f "push";
    pop = f "pop";
    din = word "din" params.Rfn_designs.Fifo.data_width;
    count = word "count" (params.Rfn_designs.Fifo.depth_log2 + 1);
    head = word "head" params.Rfn_designs.Fifo.depth_log2;
    tail = word "tail" params.Rfn_designs.Fifo.depth_log2;
    hf = f "hf_flag";
    af = f "af_flag";
    full = f "full_flag";
    empty = f "empty_flag";
    data =
      Array.init depth (fun i ->
          word (Printf.sprintf "data_%d" i) params.Rfn_designs.Fifo.data_width);
    valid = Array.init depth (fun i -> f (Printf.sprintf "valid_%d" i));
    bads =
      [
        fifo.psh_hf.Property.bad;
        fifo.psh_af.Property.bad;
        fifo.psh_full.Property.bad;
      ];
    depth;
    width = params.Rfn_designs.Fifo.data_width;
    af_slack = params.Rfn_designs.Fifo.almost_full_slack;
  }

let decode st word =
  Array.to_list word
  |> List.mapi (fun i s -> match st s with Sim3v.V1 -> 1 lsl i | _ -> 0)
  |> List.fold_left ( + ) 0

let run_against_model params ~cycles ~seed =
  let h = make_harness params in
  let rng = ref seed in
  let rand bound =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 16) mod bound
  in
  let state =
    ref (fun r ->
        Sim3v.of_bool (Circuit.initial_state h.circuit ~free:(fun _ -> false) r))
  in
  (* the reference model *)
  let q : int Queue.t = Queue.create () in
  for cycle = 1 to cycles do
    let push_v = rand 2 = 1 and pop_v = rand 2 = 1 in
    let din_v = rand (1 lsl h.width) in
    let free s =
      if s = h.push then Sim3v.of_bool push_v
      else if s = h.pop then Sim3v.of_bool pop_v
      else
        (* din bit *)
        let rec bit i =
          if i >= h.width then Sim3v.V0
          else if h.din.(i) = s then Sim3v.of_bool (din_v land (1 lsl i) <> 0)
          else bit (i + 1)
        in
        bit 0
    in
    let values, next = Sim3v.step h.view ~free ~state:!state in
    List.iter
      (fun bad ->
        if values.(bad) = Sim3v.V1 then
          Alcotest.failf "watchdog fired at cycle %d" cycle)
      h.bads;
    (* model transition *)
    let accept_push = push_v && Queue.length q < h.depth in
    let accept_pop = pop_v && Queue.length q > 0 in
    let popped = if accept_pop then Some (Queue.pop q) else None in
    ignore popped;
    if accept_push then Queue.add din_v q;
    state := next;
    let st = !state in
    (* occupancy, flags *)
    let len = Queue.length q in
    Alcotest.(check int)
      (Printf.sprintf "count at cycle %d" cycle)
      len (decode st h.count);
    let flag s = st s = Sim3v.V1 in
    Alcotest.(check bool) "hf flag" (len >= h.depth / 2) (flag h.hf);
    Alcotest.(check bool) "af flag" (len >= h.depth - h.af_slack) (flag h.af);
    Alcotest.(check bool) "full flag" (len = h.depth) (flag h.full);
    Alcotest.(check bool) "empty flag" (len = 0) (flag h.empty);
    (* pointer distance equals occupancy *)
    let head_v = decode st h.head and tail_v = decode st h.tail in
    Alcotest.(check int) "tail - head = count (mod depth)"
      (len mod h.depth)
      ((tail_v - head_v + h.depth) mod h.depth);
    (* queue contents match the data store from head onward *)
    List.iteri
      (fun offset expected ->
        let slot = (head_v + offset) mod h.depth in
        Alcotest.(check bool)
          (Printf.sprintf "slot %d valid" slot)
          true
          (st h.valid.(slot) = Sim3v.V1);
        Alcotest.(check int)
          (Printf.sprintf "slot %d data" slot)
          expected
          (decode st h.data.(slot)))
      (List.of_seq (Queue.to_seq q))
  done

let test_default_params () =
  run_against_model Rfn_designs.Fifo.default ~cycles:2000 ~seed:1234

let test_small_params () =
  run_against_model Rfn_designs.Fifo.small ~cycles:2000 ~seed:99

let test_adversarial_full_pressure () =
  (* always push, never pop: must saturate cleanly at depth *)
  let params = Rfn_designs.Fifo.default in
  let h = make_harness params in
  let state =
    ref (fun r ->
        Sim3v.of_bool (Circuit.initial_state h.circuit ~free:(fun _ -> false) r))
  in
  for _ = 1 to 2 * h.depth do
    let free s =
      if s = h.push then Sim3v.V1
      else if s = h.pop then Sim3v.V0
      else Sim3v.V1 (* din all ones *)
    in
    let values, next = Sim3v.step h.view ~free ~state:!state in
    List.iter
      (fun bad ->
        if values.(bad) = Sim3v.V1 then Alcotest.fail "watchdog fired")
      h.bads;
    state := next
  done;
  let st = !state in
  Alcotest.(check int) "saturated" h.depth (decode st h.count);
  Alcotest.(check bool) "full flag" true (st h.full = Sim3v.V1);
  Alcotest.(check bool) "af flag" true (st h.af = Sim3v.V1);
  Alcotest.(check bool) "hf flag" true (st h.hf = Sim3v.V1)

let test_drain_to_empty () =
  let params = Rfn_designs.Fifo.default in
  let h = make_harness params in
  let state =
    ref (fun r ->
        Sim3v.of_bool (Circuit.initial_state h.circuit ~free:(fun _ -> false) r))
  in
  let step push_v pop_v =
    let free s =
      if s = h.push then Sim3v.of_bool push_v
      else if s = h.pop then Sim3v.of_bool pop_v
      else Sim3v.V0
    in
    let _, next = Sim3v.step h.view ~free ~state:!state in
    state := next
  in
  for _ = 1 to 5 do
    step true false
  done;
  for _ = 1 to 10 do
    step false true
  done;
  let st = !state in
  Alcotest.(check int) "drained" 0 (decode st h.count);
  Alcotest.(check bool) "empty flag" true (st h.empty = Sim3v.V1)

let tests =
  [
    Alcotest.test_case "2000 random cycles vs queue model (default)" `Quick
      test_default_params;
    Alcotest.test_case "2000 random cycles vs queue model (small)" `Quick
      test_small_params;
    Alcotest.test_case "full-pressure saturation" `Quick
      test_adversarial_full_pressure;
    Alcotest.test_case "drain to empty" `Quick test_drain_to_empty;
  ]

let () = Alcotest.run "fifo-model" [ ("fifo-model", tests) ]
