open Rfn_circuit

let test_of_list_sorts_dedups () =
  let c = Cube.of_list [ (5, true); (1, false); (5, true) ] in
  Alcotest.(check (list (pair int bool)))
    "sorted, deduplicated"
    [ (1, false); (5, true) ]
    (Cube.to_list c)

let test_of_list_contradiction () =
  try
    ignore (Cube.of_list [ (3, true); (3, false) ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_value_assign () =
  let c = Cube.of_list [ (2, true) ] in
  Alcotest.(check (option bool)) "present" (Some true) (Cube.value c 2);
  Alcotest.(check (option bool)) "absent" None (Cube.value c 7);
  let c = Cube.assign c 7 false in
  Alcotest.(check (option bool)) "assigned" (Some false) (Cube.value c 7);
  Alcotest.(check int) "size" 2 (Cube.size c);
  (try
     ignore (Cube.assign c 2 false);
     Alcotest.fail "expected contradiction"
   with Invalid_argument _ -> ());
  (* re-assigning the same value is fine *)
  Alcotest.(check int) "idempotent" 2 (Cube.size (Cube.assign c 2 true))

let test_meet () =
  let a = Cube.of_list [ (1, true); (3, false) ] in
  let b = Cube.of_list [ (2, true); (3, false) ] in
  (match Cube.meet a b with
  | Some m ->
    Alcotest.(check (list (pair int bool)))
      "merged"
      [ (1, true); (2, true); (3, false) ]
      (Cube.to_list m)
  | None -> Alcotest.fail "expected compatible");
  let c = Cube.of_list [ (1, false) ] in
  Alcotest.(check bool) "conflicting meet" true (Cube.meet a c = None);
  Alcotest.(check bool) "conflicts" true (Cube.conflicts a c);
  Alcotest.(check bool) "no conflict" false (Cube.conflicts a b)

let test_restrict () =
  let a = Cube.of_list [ (1, true); (2, false); (3, true) ] in
  let r = Cube.restrict a ~keep:(fun s -> s mod 2 = 1) in
  Alcotest.(check (list (pair int bool)))
    "odd signals kept"
    [ (1, true); (3, true) ]
    (Cube.to_list r)

let meet_qcheck =
  let cube_gen =
    QCheck.Gen.(
      list_size (int_bound 8) (pair (int_bound 10) bool) >|= fun l ->
      (* drop contradictions so of_list accepts *)
      let tbl = Hashtbl.create 8 in
      List.iter (fun (s, v) -> if not (Hashtbl.mem tbl s) then Hashtbl.add tbl s v) l;
      Cube.of_list (Hashtbl.fold (fun s v acc -> (s, v) :: acc) tbl []))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"meet is conjunction"
       (QCheck.make (QCheck.Gen.pair cube_gen cube_gen))
       (fun (a, b) ->
         match Cube.meet a b with
         | None ->
           (* some signal with opposite values *)
           List.exists
             (fun (s, v) -> Cube.value b s = Some (not v))
             (Cube.to_list a)
         | Some m ->
           List.for_all (fun (s, v) -> Cube.value m s = Some v) (Cube.to_list a)
           && List.for_all
                (fun (s, v) -> Cube.value m s = Some v)
                (Cube.to_list b)
           && List.for_all
                (fun (s, v) ->
                  Cube.value a s = Some v || Cube.value b s = Some v)
                (Cube.to_list m)))

let test_trace_invariants () =
  let s0 = Cube.of_list [ (0, false) ] and s1 = Cube.of_list [ (0, true) ] in
  let i0 = Cube.of_list [ (1, true) ] in
  let t = Trace.make ~states:[| s0; s1 |] ~inputs:[| i0 |] in
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check (list (pair int bool))) "state 1" [ (0, true) ]
    (Cube.to_list (Trace.state t 1));
  Alcotest.(check (list (pair int bool))) "missing final input is empty" []
    (Cube.to_list (Trace.input t 1));
  (* with a final-cycle witness *)
  let t2 = Trace.make ~states:[| s0; s1 |] ~inputs:[| i0; i0 |] in
  Alcotest.(check (list (pair int bool))) "final witness" [ (1, true) ]
    (Cube.to_list (Trace.input t2 1));
  (try
     ignore (Trace.make ~states:[| s0 |] ~inputs:[| i0; i0 |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Trace.make ~states:[||] ~inputs:[||]);
    Alcotest.fail "empty trace rejected"
  with Invalid_argument _ -> ()

let test_constraint_cubes () =
  let s0 = Cube.of_list [ (0, false) ] and s1 = Cube.of_list [ (0, true) ] in
  let i0 = Cube.of_list [ (1, true) ] in
  let t = Trace.make ~states:[| s0; s1 |] ~inputs:[| i0 |] in
  let cc = Trace.constraint_cubes t in
  Alcotest.(check (list (pair int bool)))
    "state and input merged"
    [ (0, false); (1, true) ]
    (Cube.to_list cc.(0));
  Alcotest.(check (list (pair int bool))) "last is just state" [ (0, true) ]
    (Cube.to_list cc.(1))

let tests =
  [
    Alcotest.test_case "of_list sorts and dedups" `Quick
      test_of_list_sorts_dedups;
    Alcotest.test_case "of_list rejects contradictions" `Quick
      test_of_list_contradiction;
    Alcotest.test_case "value and assign" `Quick test_value_assign;
    Alcotest.test_case "meet" `Quick test_meet;
    Alcotest.test_case "restrict" `Quick test_restrict;
    meet_qcheck;
    Alcotest.test_case "trace length invariants" `Quick test_trace_invariants;
    Alcotest.test_case "constraint cubes" `Quick test_constraint_cubes;
  ]

let () = Alcotest.run "cube-trace" [ ("cube-trace", tests) ]
