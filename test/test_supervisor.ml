(* Chaos tests for the engine supervisor: inject a fault at each
   supervised site and check the retry/fallback ladders recover to the
   same verdict, the deadline budget is honoured within the documented
   grace, and failures that survive are structured. *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Supervisor = Rfn_core.Supervisor
module Atpg = Rfn_atpg.Atpg
module Telemetry = Rfn_obs.Telemetry
module F = Rfn_failure

let quick_config =
  {
    Rfn.default_config with
    Rfn.max_iterations = 32;
    node_limit = 500_000;
    mc_max_steps = 200;
    (* chaos tests control injection themselves — never inherit the
       environment's RFN_INJECT_FAULTS *)
    inject = Some (fun _ -> None);
  }

let all_sites =
  [
    Supervisor.Abstract_mc;
    Supervisor.Hybrid_extract;
    Supervisor.Concretize;
    Supervisor.Refine;
  ]

(* Fault exactly one site, once. *)
let inject_one site =
  let fired = ref false in
  fun s ->
    if s = site && not !fired then begin
      fired := true;
      Some Supervisor.Fail
    end
    else None

let counter_value name = Telemetry.counter_value (Telemetry.counter name)

(* ---- inject_of_spec parsing ------------------------------------------ *)

let test_spec_parsing () =
  Alcotest.(check bool) "empty spec is off" true (Supervisor.inject_of_spec "" = None);
  Alcotest.(check bool) "off is off" true (Supervisor.inject_of_spec "off" = None);
  (match Supervisor.inject_of_spec "all" with
  | None -> Alcotest.fail "all parses to a hook"
  | Some hook ->
    List.iter
      (fun site ->
        Alcotest.(check bool)
          (Supervisor.site_to_string site ^ " faults once")
          true
          (hook site = Some Supervisor.Fail);
        Alcotest.(check bool)
          (Supervisor.site_to_string site ^ " passes after")
          true (hook site = None))
      all_sites);
  (match Supervisor.inject_of_spec "hybrid, refine" with
  | None -> Alcotest.fail "site list parses to a hook"
  | Some hook ->
    Alcotest.(check bool) "unlisted site passes" true
      (hook Supervisor.Abstract_mc = None);
    Alcotest.(check bool) "listed site faults" true
      (hook Supervisor.Hybrid_extract = Some Supervisor.Fail));
  match Supervisor.inject_of_spec "bogus" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown site must be rejected"

(* ---- budgeting and escalation unit tests ----------------------------- *)

let test_clamp_limits () =
  let sup =
    Supervisor.start ~inject:(fun _ -> None) Supervisor.default_policy
      ~max_seconds:(Some 10.0)
  in
  let base = { Atpg.max_backtracks = 1_000; max_seconds = Some 60.0 } in
  let clamped = Supervisor.clamp_limits sup Supervisor.Concretize base in
  (match clamped.Atpg.max_seconds with
  | Some s ->
    Alcotest.(check bool) "clamped to the concretize share" true
      (s <= 10.0 *. Supervisor.default_policy.Supervisor.concretize_share)
  | None -> Alcotest.fail "a global budget must impose a per-engine one");
  Alcotest.(check int) "backtracks untouched" 1_000 clamped.Atpg.max_backtracks;
  (* no global budget: the base limits pass through *)
  let unlimited =
    Supervisor.start ~inject:(fun _ -> None) Supervisor.default_policy
      ~max_seconds:None
  in
  Alcotest.(check bool) "no budget, no clamp" true
    (Supervisor.clamp_limits unlimited Supervisor.Refine base = base)

let test_escalation () =
  let sup =
    Supervisor.start ~inject:(fun _ -> None) Supervisor.default_policy
      ~max_seconds:None
  in
  Alcotest.(check int) "starts at 1" 1 (Supervisor.escalation sup);
  Supervisor.escalate sup;
  Alcotest.(check int) "grows geometrically" 2 (Supervisor.escalation sup);
  for _ = 1 to 10 do
    Supervisor.escalate sup
  done;
  Alcotest.(check int) "capped" Supervisor.default_policy.Supervisor.backtrack_cap
    (Supervisor.escalation sup);
  let base = { Atpg.max_backtracks = 1_000; max_seconds = None } in
  Alcotest.(check int) "concrete limits scale"
    (1_000 * Supervisor.default_policy.Supervisor.backtrack_cap)
    (Supervisor.concrete_limits sup base).Atpg.max_backtracks

let test_ladder_semantics () =
  let sup =
    Supervisor.start ~inject:(fun _ -> None) Supervisor.default_policy
      ~max_seconds:None
  in
  (* retryable failure falls through; the failure record counts rungs *)
  (match
     Supervisor.run sup ~site:Supervisor.Abstract_mc ~engine:F.Bdd_mc
       ~phase:F.Abstract_mc ~iteration:3
       [
         (Supervisor.Primary, "a", fun () -> Error F.Nodes);
         (Supervisor.Retry, "b", fun () -> Ok 42);
       ]
   with
  | Ok n -> Alcotest.(check int) "retry rung answers" 42 n
  | Error _ -> Alcotest.fail "retryable failure must fall through");
  (* terminal failure stops the ladder *)
  (match
     Supervisor.run sup ~site:Supervisor.Abstract_mc ~engine:F.Bdd_mc
       ~phase:F.Abstract_mc ~iteration:3
       [
         (Supervisor.Primary, "a", fun () -> Error F.Time);
         (Supervisor.Retry, "b", fun () -> Ok 42);
       ]
   with
  | Ok _ -> Alcotest.fail "terminal failure must stop the ladder"
  | Error f ->
    Alcotest.(check bool) "resource" true (f.F.resource = F.Time);
    Alcotest.(check int) "iteration" 3 f.F.iteration);
  (* exhaustion returns the last failure with the retry count *)
  match
    Supervisor.run sup ~site:Supervisor.Refine ~engine:F.Seq_atpg
      ~phase:F.Refinement ~iteration:1
      [
        (Supervisor.Primary, "a", fun () -> Error F.No_refinement);
        (Supervisor.Fallback, "b", fun () -> Error F.Backtracks);
      ]
  with
  | Ok _ -> Alcotest.fail "exhausted ladder must fail"
  | Error f ->
    Alcotest.(check bool) "last resource" true (f.F.resource = F.Backtracks);
    Alcotest.(check int) "one recovery attempt" 1 f.F.retries

(* ---- verdict preservation under injection ---------------------------- *)

(* The FIFO safety property exercises every site (it refines at least
   once); the counter design exercises the falsification path. With a
   fault forced at any single site, the supervised run must recover to
   the very same verdict. *)

let verify_fifo inject =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  Rfn.verify
    ~config:{ quick_config with Rfn.inject = Some inject }
    fifo.Rfn_designs.Fifo.circuit fifo.Rfn_designs.Fifo.psh_hf

let verify_counter inject =
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  let prop = Property.of_output c "at_limit" in
  (Rfn.verify ~config:{ quick_config with Rfn.inject = Some inject } c prop, c, prop)

let test_injected_site_keeps_verdict site () =
  Telemetry.reset ();
  (match verify_fifo (inject_one site) with
  | Rfn.Proved, _ -> ()
  | Rfn.Falsified _, _ ->
    Alcotest.fail "fifo: injected fault flipped the verdict to False"
  | Rfn.Aborted why, _ ->
    Alcotest.fail ("fifo: no recovery: " ^ F.to_string why));
  Alcotest.(check bool) "fault was injected" true
    (counter_value "supervisor.injected_faults" >= 1);
  (* every site recovers through a later rung, except concretization,
     whose recovery is the escalate-and-refine path — unless a
     portfolio SAT rung is configured (RFN_ENGINE), which recovers
     in-ladder like the other sites *)
  if site = Supervisor.Concretize then
    Alcotest.(check bool)
      "give-up escalated the backtrack budget (or a SAT rung recovered)" true
      (counter_value "supervisor.escalations" >= 1
      || counter_value "supervisor.recoveries" >= 1)
  else
    Alcotest.(check bool) "a later rung recovered" true
      (counter_value "supervisor.recoveries" >= 1);
  match verify_counter (inject_one site) with
  | (Rfn.Falsified t, _), c, prop ->
    Alcotest.(check bool) "counterexample still replays" true
      (Rfn_sim3v.Sim3v.replay_concrete c t ~bad:prop.Property.bad)
  | (Rfn.Proved, _), _, _ ->
    Alcotest.fail "counter: injected fault flipped the verdict to True"
  | (Rfn.Aborted why, _), _, _ ->
    Alcotest.fail ("counter: no recovery: " ^ F.to_string why)

let test_all_sites_chaos () =
  (* Everything faults once, the run still converges. *)
  Telemetry.reset ();
  let hook () =
    match Supervisor.inject_of_spec "all" with
    | Some h -> h
    | None -> assert false
  in
  (match verify_fifo (hook ()) with
  | Rfn.Proved, _ -> ()
  | Rfn.Falsified _, _ -> Alcotest.fail "fifo: chaos flipped the verdict"
  | Rfn.Aborted why, _ ->
    Alcotest.fail ("fifo: chaos not recovered: " ^ F.to_string why));
  Alcotest.(check bool) "all faults injected" true
    (counter_value "supervisor.injected_faults" >= 4);
  Alcotest.(check bool) "retries counted" true
    (counter_value "supervisor.retries" >= 1);
  Alcotest.(check bool) "fallbacks counted" true
    (counter_value "supervisor.fallbacks" >= 1);
  match verify_counter (hook ()) with
  | (Rfn.Falsified _, _), _, _ -> ()
  | (Rfn.Proved, _), _, _ -> Alcotest.fail "counter: chaos flipped the verdict"
  | (Rfn.Aborted why, _), _, _ ->
    Alcotest.fail ("counter: chaos not recovered: " ^ F.to_string why)

(* ---- span balance under the ladders ---------------------------------- *)

(* Regression: phase spans used to leak when a rung raised through the
   supervisor (the close lives in a [Fun.protect] finally now). With
   telemetry live, every ladder outcome — recovery, escalation,
   all-site chaos — must leave the span stack exactly balanced. *)
let test_span_depth_balanced () =
  Telemetry.detach ();
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
  @@ fun () ->
  List.iter
    (fun site ->
      let tag = Supervisor.site_to_string site in
      ignore (verify_fifo (inject_one site));
      Alcotest.(check int)
        (tag ^ ": balanced after the proving run")
        0
        (Telemetry.current_depth ());
      ignore (verify_counter (inject_one site));
      Alcotest.(check int)
        (tag ^ ": balanced after the falsifying run")
        0
        (Telemetry.current_depth ()))
    all_sites;
  (match Supervisor.inject_of_spec "all" with
  | Some hook -> ignore (verify_fifo hook)
  | None -> Alcotest.fail "inject_of_spec \"all\" must produce a hook");
  Alcotest.(check int) "balanced after all-site chaos" 0
    (Telemetry.current_depth ())

(* ---- deadline grace -------------------------------------------------- *)

let test_budget_grace () =
  (* A slow engine (every primary rung stalls 30s if allowed) must not
     drag a [max_seconds] run past the budget plus the documented
     grace: injected delays are clamped to the remaining budget and the
     supervisor checks the deadline between rungs. *)
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  List.iter
    (fun budget ->
      let config =
        {
          quick_config with
          Rfn.max_seconds = Some budget;
          inject = Some (fun _ -> Some (Supervisor.Delay 30.0));
        }
      in
      let t0 = Telemetry.now () in
      let outcome, stats =
        Rfn.verify ~config fifo.Rfn_designs.Fifo.circuit
          fifo.Rfn_designs.Fifo.psh_hf
      in
      let elapsed = Telemetry.now () -. t0 in
      let grace = Supervisor.default_policy.Supervisor.grace_seconds in
      Alcotest.(check bool)
        (Printf.sprintf "%.1fs budget honoured (took %.2fs)" budget elapsed)
        true
        (elapsed <= budget +. grace);
      Alcotest.(check bool) "stats seconds consistent" true
        (stats.Rfn.seconds <= budget +. grace);
      (* a blown budget must surface as a structured time-out, never a
         wrong verdict *)
      match outcome with
      | Rfn.Aborted f ->
        Alcotest.(check bool) "timed out on the clock" true
          (f.F.resource = F.Time)
      | Rfn.Proved | Rfn.Falsified _ -> ())
    [ 0.3; 0.6 ]

(* ---- structured aborts ----------------------------------------------- *)

let test_aborts_are_structured () =
  (* Iteration exhaustion carries the loop context. *)
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  let prop = Property.of_output c "at_limit" in
  (match
     Rfn.verify ~config:{ quick_config with Rfn.max_iterations = 0 } c prop
   with
  | Rfn.Aborted f, _ ->
    Alcotest.(check bool) "iteration resource" true (f.F.resource = F.Iterations);
    Alcotest.(check bool) "cegar engine" true (f.F.engine = F.Cegar)
  | _ -> Alcotest.fail "zero iterations must abort");
  (* The baseline reports a structured resource too. *)
  match Rfn.check_coi_model_checking ~max_steps:0 c prop with
  | `Aborted F.Steps, _ -> ()
  | `Aborted r, _ ->
    Alcotest.fail ("wrong resource: " ^ F.resource_to_string r)
  | (`Proved | `Reached _), _ -> Alcotest.fail "zero steps must abort"

let site_tests =
  List.map
    (fun site ->
      Alcotest.test_case
        ("fault at " ^ Supervisor.site_to_string site ^ " keeps the verdict")
        `Quick
        (test_injected_site_keeps_verdict site))
    all_sites

let tests =
  [
    Alcotest.test_case "inject spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "deadline clamps engine limits" `Quick test_clamp_limits;
    Alcotest.test_case "backtrack escalation is geometric and capped" `Quick
      test_escalation;
    Alcotest.test_case "ladder retry/terminal semantics" `Quick
      test_ladder_semantics;
  ]
  @ site_tests
  @ [
      Alcotest.test_case "all-site chaos keeps both verdicts" `Quick
        test_all_sites_chaos;
      Alcotest.test_case "span depth balanced under every ladder outcome"
        `Quick test_span_depth_balanced;
      Alcotest.test_case "slow engines respect the budget grace" `Quick
        test_budget_grace;
      Alcotest.test_case "aborts carry structured reasons" `Quick
        test_aborts_are_structured;
    ]

let () = Alcotest.run "supervisor" [ ("supervisor", tests) ]
