(* Step 4: crucial-register identification. *)

open Rfn_circuit
module Refine = Rfn_core.Refine
module Concretize = Rfn_core.Concretize
module B = Circuit.Builder

(* A design where the needed refinement is obvious: bad = watchdog of a
   register chain d2<-d1<-d0<-0; the abstract trace claims d2 can be 1,
   which only d1 (then d0) can refute. *)
let chain_to_zero () =
  let b = B.create () in
  let zero = B.const b false in
  let d0 = B.reg_of b "d0" zero in
  let d1 = B.reg_of b "d1" d0 in
  let d2 = B.reg_of b "d2" d1 in
  B.output b "bad" d2;
  (B.finalize b, d0, d1, d2)

let test_simulation_finds_conflicting_register () =
  let c, d0, d1, d2 = chain_to_zero () in
  let abs = Abstraction.initial c ~roots:[ d2 ] in
  (* fabricated abstract trace: "d1 = 1 at cycle 0 makes d2 = 1 at
     cycle 1" — 3-valued simulation of the design disagrees, because
     d1 is 0 after reset... the conflict appears at cycle 1 where the
     trace pins d1 again. *)
  let trace =
    Trace.make
      ~states:
        [| Cube.of_list [ (d2, false) ]; Cube.of_list [ (d2, true) ] |]
      ~inputs:[| Cube.of_list [ (d1, true) ] |]
  in
  (* note: d1=1 at cycle 0 does not conflict (initial state is imposed),
     but simulating the step gives d2' = d1 = 1 = trace: no conflict on
     d2. Extend the trace so d1 is pinned 1 at cycle 1 while d0 is
     pinned 0 at cycle 0: simulation then computes d1@1 = d0@0 = 0,
     a concrete disagreement, making d1 a conflict candidate; and on
     the refined model (d1 concrete, d0 still a pinned pseudo-input)
     the trace is unsatisfiable. *)
  let trace3 =
    Trace.make
      ~states:
        [|
          Cube.of_list [ (d2, false) ];
          Cube.of_list [ (d2, false) ];
          Cube.of_list [ (d2, true) ];
        |]
      ~inputs:
        [| Cube.of_list [ (d1, false); (d0, false) ]; Cube.of_list [ (d1, true) ] |]
  in
  ignore trace;
  let r = Refine.crucial_registers ~bad:d2 abs ~abstract_trace:trace3 () in
  Alcotest.(check bool) "d1 is a candidate" true
    (List.mem d1 r.Refine.candidates);
  Alcotest.(check bool) "d1 is kept" true (List.mem d1 r.Refine.kept);
  Alcotest.(check bool) "the refined model refutes the trace" true
    r.Refine.invalidated

let test_greedy_drops_redundant_candidates () =
  (* two chains: bad = chain_a watchdog; chain_b is irrelevant. Force
     both chains' registers into the candidate set via a trace that
     conflicts on both; the greedy pass must invalidate using chain_a
     only once it tries it. *)
  let b = B.create () in
  let zero = B.const b false in
  let a0 = B.reg_of b "a0" zero in
  let a1 = B.reg_of b "a1" a0 in
  let x = B.input b "x" in
  let b0 = B.reg_of b "b0" x in
  let b1 = B.reg_of b "b1" b0 in
  ignore b1;
  B.output b "bad" a1;
  let c = B.finalize b in
  let abs = Abstraction.initial c ~roots:[ a1 ] in
  (* trace: a0=1 and b0=1 claimed at cycle 1; simulation gives a0=0
     (conflict -> candidate) and b0=X (no conflict). *)
  let trace =
    Trace.make
      ~states:
        [|
          Cube.of_list [ (a1, false) ];
          Cube.of_list [ (a1, false) ];
          Cube.of_list [ (a1, true) ];
        |]
      ~inputs:
        [|
          Cube.of_list [ (a0, false) ];
          Cube.of_list [ (a0, true); (b0, true) ];
        |]
  in
  let r = Refine.crucial_registers ~bad:a1 abs ~abstract_trace:trace () in
  Alcotest.(check (list int)) "only a0 kept" [ a0 ] r.Refine.kept;
  Alcotest.(check bool) "invalidated" true r.Refine.invalidated

let test_fallback_frequency () =
  (* a trace with no conflicts at all: fall back to the most frequently
     mentioned pseudo-inputs *)
  let b = B.create () in
  let x = B.input b "x" in
  let p = B.reg_of b "p" x in
  let q = B.reg_of b "q" x in
  let w = B.reg_of b "w" (B.and2 b p q) in
  B.output b "bad" w;
  let c = B.finalize b in
  let abs = Abstraction.initial c ~roots:[ w ] in
  (* p mentioned twice, q once; neither conflicts (both driven by x) *)
  let trace =
    Trace.make
      ~states:
        [|
          Cube.of_list [ (w, false) ];
          Cube.of_list [ (w, false) ];
          Cube.of_list [ (w, true) ];
        |]
      ~inputs:
        [|
          Cube.of_list [ (p, true); (x, true) ];
          Cube.of_list [ (p, true); (q, true); (x, true) ];
        |]
  in
  let r =
    Refine.crucial_registers ~max_fallback:1 ~bad:w abs ~abstract_trace:trace ()
  in
  Alcotest.(check (list int)) "most frequent pseudo-input" [ p ]
    r.Refine.candidates

let test_rfn_refinement_converges_on_chain () =
  (* end-to-end: the chain design is proved after refining d1 then d0 *)
  let c, _, _, d2 = chain_to_zero () in
  let prop = Property.make ~name:"chain" ~bad:d2 in
  match Rfn_core.Rfn.verify c prop with
  | Rfn_core.Rfn.Proved, stats ->
    Alcotest.(check bool) "several iterations" true
      (List.length stats.Rfn_core.Rfn.iterations >= 2);
    Alcotest.(check int) "final model has the whole chain" 3
      stats.Rfn_core.Rfn.final_abstract_regs
  | _ -> Alcotest.fail "expected Proved"

let test_concretize_guided_vs_unguided () =
  let c = Helpers.deep_bug_design ~width:3 in
  let bad = Circuit.output c "bad" in
  (* abstract trace from a full-information run (the design is small
     enough to treat the whole design as its own abstraction) *)
  let prop = Property.make ~name:"bug" ~bad in
  match Rfn_core.Rfn.verify c prop with
  | Rfn_core.Rfn.Falsified t, _ ->
    let depth = Trace.length t in
    (* unguided search at the same depth must also find it eventually
       (tiny design), guided search must find it quickly *)
    let guided, gstats =
      Concretize.guided c ~bad ~abstract_trace:t
    in
    (match guided with
    | Concretize.Found _ -> ()
    | _ -> Alcotest.fail "guided search failed");
    let unguided, ustats = Concretize.unguided c ~bad ~depth in
    (match unguided with
    | Concretize.Found _ -> ()
    | _ -> Alcotest.fail "unguided search failed on a tiny design");
    Alcotest.(check bool) "guidance does not increase backtracks" true
      (gstats.Rfn_atpg.Atpg.backtracks <= ustats.Rfn_atpg.Atpg.backtracks)
  | _ -> Alcotest.fail "expected Falsified"

let tests =
  [
    Alcotest.test_case "simulation finds the conflicting register" `Quick
      test_simulation_finds_conflicting_register;
    Alcotest.test_case "greedy drops redundant candidates" `Quick
      test_greedy_drops_redundant_candidates;
    Alcotest.test_case "frequency fallback" `Quick test_fallback_frequency;
    Alcotest.test_case "refinement converges on a chain" `Quick
      test_rfn_refinement_converges_on_chain;
    Alcotest.test_case "guided vs unguided concretization" `Quick
      test_concretize_guided_vs_unguided;
  ]

let () = Alcotest.run "refine" [ ("refine", tests) ]
