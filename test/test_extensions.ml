(* Extensions beyond the paper's core loop: BDD subsetting (evaluated
   and rejected by the paper — reproduced here), multi-trace guidance
   (the paper's future work), and variable-order carry-over between
   refinement iterations. *)

open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Reach = Rfn_mc.Reach
module Hybrid = Rfn_core.Hybrid
module Concretize = Rfn_core.Concretize
module Rfn = Rfn_core.Rfn
module Sim3v = Rfn_sim3v.Sim3v

(* ---- subset_heavy --------------------------------------------------- *)

let subset_implies =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"subset_heavy under-approximates"
       (QCheck.pair
          (Helpers.arbitrary_circuit ~nins:5 ~nregs:2 ~ngates:14)
          (QCheck.int_range 1 12))
       (fun (rc, budget) ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let vm = Varmap.make view in
         let man = Varmap.man vm in
         let f = (Symbolic.functions vm) rc.Helpers.out in
         let s = Bdd.subset_heavy man ~max_size:budget f in
         Bdd.size man s <= max budget 1
         && Bdd.is_one (Bdd.imply man s f)))

let test_subset_keeps_small_bdds () =
  let man = Bdd.create ~nvars:4 () in
  let f = Bdd.dand man (Bdd.var man 0) (Bdd.var man 2) in
  Alcotest.(check bool) "small BDD untouched" true
    (Bdd.equal f (Bdd.subset_heavy man ~max_size:100 f))

let test_subset_is_drastic () =
  (* the paper's observation: aggressive subsetting loses most of the
     state set. A parity function over n variables subsides to a single
     cube — a 2^-(n-1) fraction. *)
  let n = 10 in
  let man = Bdd.create ~nvars:n () in
  let parity =
    List.fold_left
      (fun acc i -> Bdd.dxor man acc (Bdd.var man i))
      (Bdd.zero man)
      (List.init n (fun i -> i))
  in
  let s = Bdd.subset_heavy man ~max_size:(n + 1) parity in
  let kept = Bdd.density man s /. Bdd.density man parity in
  Alcotest.(check bool) "almost everything lost" true (kept < 0.01)

(* ---- multi-trace extraction and guidance ---------------------------- *)

let test_extract_multi_distinct () =
  (* a design with two distinct ways to reach bad in one step *)
  let b = Circuit.Builder.create () in
  let module B = Circuit.Builder in
  let x = B.input b "x" and y = B.input b "y" in
  let rx = B.reg_of b "rx" x in
  let ry = B.reg_of b "ry" y in
  let bad = B.or2 b rx ry in
  B.output b "bad" bad;
  let c = B.finalize b in
  let view = Sview.whole c ~roots:[ bad ] in
  let vm = Varmap.make view in
  let fn = Symbolic.functions vm in
  let img = Image.make vm in
  let init = Symbolic.initial_states vm in
  let bad_states = Reach.bad_predicate vm ~fn ~bad in
  match Reach.run img ~vm ~init ~bad_states with
  | { Reach.outcome = Reach.Reached k; rings; _ } ->
    let results =
      Hybrid.extract_multi ~count:3 vm ~rings ~target:(fn bad) ~k
    in
    Alcotest.(check bool) "more than one trace" true (List.length results >= 2);
    let finals =
      List.map
        (fun r ->
          let t = r.Hybrid.trace in
          Cube.to_list (Trace.state t (Trace.length t - 1)))
        results
    in
    Alcotest.(check int) "final cubes pairwise distinct"
      (List.length finals)
      (List.length (List.sort_uniq compare finals));
    (* each trace replays *)
    List.iter
      (fun r ->
        Alcotest.(check bool) "replays" true
          (Sim3v.replay_concrete c r.Hybrid.trace ~bad))
      results
  | _ -> Alcotest.fail "expected Reached"

let test_guided_any () =
  let c = Helpers.deep_bug_design ~width:2 in
  let bad = Circuit.output c "bad" in
  match Rfn.verify c (Property.make ~name:"bug" ~bad) with
  | Rfn.Falsified t, _ -> (
    (* a bogus trace (wrong length, impossible constraints) followed by
       the real one: guided_any must still find the counterexample *)
    let impossible =
      Trace.make
        ~states:[| Cube.of_list [ (bad, true) ] |]
        ~inputs:[| Cube.empty |]
    in
    match
      Concretize.guided_any c ~bad ~abstract_traces:[ impossible; t ]
    with
    | Concretize.Found t', _ ->
      Alcotest.(check bool) "replays" true (Sim3v.replay_concrete c t' ~bad)
    | _ -> Alcotest.fail "expected Found")
  | _ -> Alcotest.fail "expected Falsified"

let test_multi_trace_config_verifies () =
  (* the full loop with guidance_traces = 3 still gives sound verdicts *)
  let config = { Rfn.default_config with Rfn.guidance_traces = 3 } in
  let c = Helpers.deep_bug_design ~width:3 in
  let bad = Circuit.output c "bad" in
  (match Rfn.verify ~config c (Property.make ~name:"bug" ~bad) with
  | Rfn.Falsified t, _ ->
    Alcotest.(check bool) "replays" true (Sim3v.replay_concrete c t ~bad)
  | _ -> Alcotest.fail "expected Falsified");
  let arb = Helpers.arbiter_design () in
  match Rfn.verify ~config arb (Property.of_output arb "bad") with
  | Rfn.Proved, _ -> ()
  | _ -> Alcotest.fail "expected Proved"

(* ---- order carry-over ----------------------------------------------- *)

let test_varmap_previous_preserves_semantics () =
  let proc = Rfn_designs.Processor.(make ~params:small ()) in
  let c = proc.Rfn_designs.Processor.circuit in
  let bad = proc.mutex.Property.bad in
  let a0 = Abstraction.initial c ~roots:[ bad ] in
  let vm0 = Varmap.make a0.Abstraction.view in
  let a1 =
    Abstraction.refine a0 ~add:[ Circuit.find c "grant_0" ]
  in
  let vm1 = Varmap.make ~previous:vm0 a1.Abstraction.view in
  (* the seeded varmap is fully functional: reach verdicts agree with a
     fresh one *)
  let verdict vm =
    let fn = Symbolic.functions vm in
    let img = Image.make vm in
    let init = Symbolic.initial_states vm in
    let bad_states = Reach.bad_predicate vm ~fn ~bad in
    match (Reach.run ~max_steps:100 img ~vm ~init ~bad_states).Reach.outcome with
    | Reach.Proved -> "proved"
    | Reach.Reached k -> Printf.sprintf "reached %d" k
    | Reach.Closed k -> Printf.sprintf "closed %d" k
    | Reach.Aborted w -> "abort " ^ Rfn_failure.resource_to_string w
  in
  let fresh = Varmap.make a1.Abstraction.view in
  Alcotest.(check string) "same verdict" (verdict fresh) (verdict vm1);
  (* shared signals keep their relative order *)
  let g0 = Circuit.find c "mutex_bad" in
  Alcotest.(check bool) "previous rank is exposed" true
    (Varmap.signal_rank vm0 g0 <> None)

let force_seeding_not_worse =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"seeded FORCE never beats unseeded badly"
       (QCheck.int_range 4 20)
       (fun n ->
         let edges = List.init (n - 1) (fun i -> [ i; i + 1 ]) in
         let unseeded = Rfn_bdd.Force.order ~nvars:n ~edges () in
         let seeded =
           Rfn_bdd.Force.order ~init:unseeded ~nvars:n ~edges ()
         in
         Rfn_bdd.Force.span ~pos:seeded ~edges
         <= Rfn_bdd.Force.span ~pos:unseeded ~edges))

(* ---- GC under pressure ---------------------------------------------- *)

let test_long_fixpoint_survives_tight_budget () =
  (* a 6-bit counter takes 64 fixpoint steps; with a small node budget
     the run only closes because the GC reclaims dead intermediates *)
  let b = Circuit.Builder.create () in
  let module B = Circuit.Builder in
  let en = B.input b "en" in
  let q = Rtl.counter b ~name:"q" ~width:6 ~enable:en () in
  let top = Rtl.eq_const b q 63 in
  B.output b "top" top;
  let c = B.finalize b in
  let view = Sview.whole c ~roots:[ top ] in
  let vm = Varmap.make ~node_limit:4_000 view in
  let fn = Symbolic.functions vm in
  let img = Image.make vm in
  let init = Symbolic.initial_states vm in
  let bad_states = Reach.bad_predicate vm ~fn ~bad:top in
  match Reach.run ~max_steps:200 img ~vm ~init ~bad_states with
  | { Reach.outcome = Reach.Reached 63; _ } -> ()
  | { Reach.outcome = Reach.Aborted why; _ } ->
    Alcotest.fail ("aborted despite gc: " ^ Rfn_failure.resource_to_string why)
  | _ -> Alcotest.fail "unexpected outcome"

let test_gate_name_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (Gate.to_string k) true
        (Gate.of_string (Gate.to_string k) = Some k);
      Alcotest.(check bool) "lowercase too" true
        (Gate.of_string (String.lowercase_ascii (Gate.to_string k)) = Some k))
    [
      Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Not;
      Gate.Buf; Gate.Mux;
    ];
  Alcotest.(check bool) "unknown rejected" true (Gate.of_string "FOO" = None)

let tests =
  [
    subset_implies;
    Alcotest.test_case "long fixpoint under tight node budget" `Quick
      test_long_fixpoint_survives_tight_budget;
    Alcotest.test_case "gate name roundtrip" `Quick test_gate_name_roundtrip;
    Alcotest.test_case "subsetting keeps small BDDs" `Quick
      test_subset_keeps_small_bdds;
    Alcotest.test_case "subsetting is drastic (paper's claim)" `Quick
      test_subset_is_drastic;
    Alcotest.test_case "extract_multi yields distinct traces" `Quick
      test_extract_multi_distinct;
    Alcotest.test_case "guided_any recovers from bad guidance" `Quick
      test_guided_any;
    Alcotest.test_case "multi-trace config stays sound" `Quick
      test_multi_trace_config_verifies;
    Alcotest.test_case "order carry-over preserves semantics" `Quick
      test_varmap_previous_preserves_semantics;
    force_seeding_not_worse;
  ]

let () = Alcotest.run "extensions" [ ("extensions", tests) ]
