(* The SAT backend, three ways:

   - the CDCL solver against a brute-force reference on random CNFs
     (verdicts, model soundness) plus a DRAT-style self-check that
     every learned clause is entailed by the original formula;
   - unit tests of the incremental interface (assumptions, budgets,
     reuse after Unsat-under-assumptions);
   - [Sat_bmc] against [Bmc] on the design zoo (same verdicts, same
     shortest-counterexample depths), and the full CEGAR loop under
     [--engine atpg|sat|portfolio] (same verdicts, validated traces),
     with and without injected faults. *)

open Rfn_circuit
module Solver = Rfn_sat.Solver
module Bmc = Rfn_core.Bmc
module Sat_bmc = Rfn_core.Sat_bmc
module Concretize = Rfn_core.Concretize
module Rfn = Rfn_core.Rfn
module Supervisor = Rfn_core.Supervisor
module Sim3v = Rfn_sim3v.Sim3v
module F = Rfn_failure

(* ------------------------------------------------------------------ *)
(* Random CNFs and a brute-force reference                             *)
(* ------------------------------------------------------------------ *)

(* A clause is a list of (var, sign); a CNF a clause list over
   variables [0, nvars). *)
type cnf = { nvars : int; clauses : (int * bool) list list }

let cnf_gen =
  QCheck.Gen.(
    int_range 1 8 >>= fun nvars ->
    int_range 1 30 >>= fun nclauses ->
    let lit_gen =
      pair (int_bound (nvars - 1)) bool
    in
    let clause_gen = int_range 1 4 >>= fun n -> list_size (return n) lit_gen in
    list_size (return nclauses) clause_gen >>= fun clauses ->
    return { nvars; clauses })

let cnf_print { nvars; clauses } =
  Printf.sprintf "%d vars: %s" nvars
    (String.concat " & "
       (List.map
          (fun cl ->
            "("
            ^ String.concat "|"
                (List.map
                   (fun (v, s) -> (if s then "" else "~") ^ string_of_int v)
                   cl)
            ^ ")")
          clauses))

let arbitrary_cnf = QCheck.make cnf_gen ~print:cnf_print

let model_satisfies m clauses =
  List.for_all
    (List.exists (fun (v, s) -> (m lsr v) land 1 = 1 = s))
    clauses

let brute_force_sat { nvars; clauses } =
  let rec go m =
    if m >= 1 lsl nvars then false
    else model_satisfies m clauses || go (m + 1)
  in
  go 0

let solver_of ?log_learnts { nvars; clauses } =
  let s = Solver.create ?log_learnts () in
  for _ = 1 to nvars do
    ignore (Solver.new_var s)
  done;
  List.iter
    (fun cl -> Solver.add_clause s (List.map (fun (v, b) -> Solver.lit v b) cl))
    clauses;
  s

let test_random_cnf_differential () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"solver agrees with brute force"
       arbitrary_cnf
       (fun cnf ->
         let s = solver_of cnf in
         match Solver.solve s with
         | Solver.Sat ->
           (* the verdict must match AND the reported model must
              actually satisfy every clause *)
           let m = ref 0 in
           for v = 0 to cnf.nvars - 1 do
             if Solver.value s v then m := !m lor (1 lsl v)
           done;
           brute_force_sat cnf && model_satisfies !m cnf.clauses
         | Solver.Unsat -> not (brute_force_sat cnf)
         | Solver.Unknown _ -> false))

let test_learned_clauses_entailed () =
  (* DRAT-in-spirit: every clause the solver learns must be a logical
     consequence of the input formula — checked by brute force: no
     assignment satisfies the formula while falsifying the learned
     clause. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"learned clauses are entailed"
       arbitrary_cnf
       (fun cnf ->
         let s = solver_of ~log_learnts:true cnf in
         ignore (Solver.solve s);
         List.for_all
           (fun learnt ->
             let falsifies m =
               List.for_all
                 (fun l ->
                   (m lsr Solver.var_of l) land 1 = 1 <> Solver.sign_of l)
                 learnt
             in
             let rec counter m =
               if m >= 1 lsl cnf.nvars then false
               else
                 (model_satisfies m cnf.clauses && falsifies m)
                 || counter (m + 1)
             in
             not (counter 0))
           (Solver.learnt_clauses s)))

(* ------------------------------------------------------------------ *)
(* Incremental interface                                               *)
(* ------------------------------------------------------------------ *)

let result_testable =
  Alcotest.testable
    (fun ppf -> function
      | Solver.Sat -> Format.pp_print_string ppf "Sat"
      | Solver.Unsat -> Format.pp_print_string ppf "Unsat"
      | Solver.Unknown r ->
        Format.fprintf ppf "Unknown(%s)" (F.resource_to_string r))
    ( = )

let test_assumptions () =
  let s = Solver.create () in
  let x = Solver.lit (Solver.new_var s) true in
  let y = Solver.lit (Solver.new_var s) true in
  Solver.add_clause s [ x; y ];
  Alcotest.check result_testable "x|y alone is sat" Solver.Sat
    (Solver.solve s);
  Alcotest.check result_testable "unsat under ~x,~y" Solver.Unsat
    (Solver.solve ~assumptions:[ Solver.neg x; Solver.neg y ] s);
  (* assumptions are per-call: the instance is unpoisoned *)
  Alcotest.check result_testable "sat again without assumptions" Solver.Sat
    (Solver.solve s);
  Alcotest.check result_testable "sat under ~x (y must hold)" Solver.Sat
    (Solver.solve ~assumptions:[ Solver.neg x ] s);
  Alcotest.(check bool) "model sets y" true (Solver.value_lit s y);
  (* incremental: strengthen and re-solve on the same instance *)
  Solver.add_clause s [ Solver.neg y ];
  Alcotest.check result_testable "after adding ~y, ~x forces unsat"
    Solver.Unsat
    (Solver.solve ~assumptions:[ Solver.neg x ] s);
  Alcotest.check result_testable "but x|~y still sat" Solver.Sat
    (Solver.solve s)

let test_empty_clause () =
  let s = Solver.create () in
  let x = Solver.lit (Solver.new_var s) true in
  Solver.add_clause s [ x ];
  Solver.add_clause s [ Solver.neg x ];
  Alcotest.check result_testable "contradictory units" Solver.Unsat
    (Solver.solve s)

(* Pigeonhole PHP(n+1, n): n+1 pigeons into n holes — small, provably
   unsatisfiable, and needs real conflict-driven search. *)
let pigeonhole s n =
  let var = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> 0)) in
  for p = 0 to n do
    for h = 0 to n - 1 do
      var.(p).(h) <- Solver.new_var s
    done
  done;
  for p = 0 to n do
    Solver.add_clause s
      (List.init n (fun h -> Solver.lit var.(p).(h) true))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s
          [ Solver.lit var.(p1).(h) false; Solver.lit var.(p2).(h) false ]
      done
    done
  done

let test_conflict_budget () =
  let s = Solver.create () in
  pigeonhole s 5;
  (match
     Solver.solve ~limits:{ Solver.max_conflicts = 1; max_seconds = None } s
   with
  | Solver.Unknown F.Conflicts -> ()
  | r ->
    Alcotest.failf "expected Unknown(Conflicts), got %a"
      (fun ppf -> Alcotest.pp result_testable ppf)
      r);
  (* the budget is per call, so an unlimited re-solve finishes *)
  Alcotest.check result_testable "php(6,5) is unsat" Solver.Unsat
    (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "search had conflicts" true (st.Solver.conflicts > 0);
  Alcotest.(check bool) "search learned clauses" true (st.Solver.learned > 0)

(* ------------------------------------------------------------------ *)
(* Sat_bmc vs Bmc on the zoo                                           *)
(* ------------------------------------------------------------------ *)

let zoo () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let fc = fifo.Rfn_designs.Fifo.circuit in
  [
    ("arbiter/bad", Helpers.arbiter_design (), "bad");
    ("counter3/at_limit", Helpers.counter_design ~width:3 ~limit:7, "at_limit");
    ("deep_bug3/bad", Helpers.deep_bug_design ~width:3, "bad");
    ("fifo_small/psh_hf", fc, fifo.Rfn_designs.Fifo.psh_hf.Property.name);
    ("fifo_small/psh_full", fc, fifo.Rfn_designs.Fifo.psh_full.Property.name);
  ]

let test_bmc_differential () =
  List.iter
    (fun (name, circuit, out) ->
      let bad = Circuit.output circuit out in
      let max_depth = 12 in
      let atpg, _ = Bmc.falsify circuit ~bad ~max_depth in
      let sat, _ = Sat_bmc.falsify circuit ~bad ~max_depth in
      match (atpg, sat) with
      | Bmc.Found ta, Bmc.Found ts ->
        (* both engines promise shortest counterexamples *)
        Alcotest.(check int)
          (name ^ ": same counterexample depth")
          (Trace.length ta) (Trace.length ts);
        Alcotest.(check bool)
          (name ^ ": SAT trace replays concretely")
          true
          (Sim3v.replay_concrete circuit ts ~bad)
      | Bmc.Exhausted, Bmc.Exhausted -> ()
      | Bmc.Gave_up d, Bmc.Found ts ->
        (* ATPG ran out of budget at depth d after exhausting every
           shallower depth — a SAT counterexample below d would mean
           one of the engines is wrong *)
        Alcotest.(check bool)
          (name ^ ": SAT witness not shallower than ATPG's exhausted depths")
          true
          (Trace.length ts >= d);
        Alcotest.(check bool)
          (name ^ ": SAT trace replays concretely")
          true
          (Sim3v.replay_concrete circuit ts ~bad)
      | Bmc.Gave_up _, (Bmc.Exhausted | Bmc.Gave_up _)
      | Bmc.Exhausted, Bmc.Gave_up _ ->
        (* one engine's budget ran out; nothing left to compare *)
        ()
      | _ ->
        let show = function
          | Bmc.Found t -> Printf.sprintf "Found(len %d)" (Trace.length t)
          | Bmc.Exhausted -> "Exhausted"
          | Bmc.Gave_up d -> Printf.sprintf "Gave_up(%d)" d
        in
        Alcotest.failf "%s: engines disagree (atpg %s, sat %s)" name
          (show atpg) (show sat))
    (zoo ())

let test_sat_guided_concretize () =
  (* The guided mode must find a concrete trace when handed the
     concrete witness itself as "abstract" guidance, and report
     Not_found_here for guidance that pins an unreachable cube. *)
  let circuit = Helpers.counter_design ~width:3 ~limit:7 in
  let bad = Circuit.output circuit "at_limit" in
  match Bmc.falsify circuit ~bad ~max_depth:12 with
  | Bmc.Found witness, _ -> (
    (match Sat_bmc.concretize circuit ~bad ~abstract_traces:[ witness ] with
    | Concretize.Found t, _ ->
      Alcotest.(check bool)
        "concretized trace replays" true
        (Sim3v.replay_concrete circuit t ~bad)
    | _ -> Alcotest.fail "guided SAT missed a concrete witness");
    (* pin the final state to "counter still at 0" — contradicts the
       target at every depth, so the guided query is unsat *)
    let regs = circuit.Circuit.registers in
    let zero =
      Cube.of_list (Array.to_list (Array.map (fun r -> (r, false)) regs))
    in
    let states = Array.make (Trace.length witness) (Cube.of_list []) in
    states.(Trace.length witness - 1) <- zero;
    let inputs =
      Array.make (Trace.length witness) (Cube.of_list [])
    in
    let contradiction = Trace.make ~states ~inputs in
    match Sat_bmc.concretize circuit ~bad ~abstract_traces:[ contradiction ]
    with
    | Concretize.Not_found_here, _ -> ()
    | Concretize.Found _, _ ->
      Alcotest.fail "guided SAT satisfied contradictory guidance"
    | Concretize.Gave_up r, _ ->
      Alcotest.failf "guided SAT gave up: %s" (F.resource_to_string r))
  | _ -> Alcotest.fail "Bmc.falsify lost the counter witness"

(* ------------------------------------------------------------------ *)
(* Engine modes through the full CEGAR loop                            *)
(* ------------------------------------------------------------------ *)

let quick_config ?(inject = Some (fun _ -> None)) ~engines () =
  {
    Rfn.default_config with
    Rfn.max_iterations = 32;
    node_limit = 500_000;
    mc_max_steps = 200;
    engines;
    inject;
  }

let check_engine_modes ?spec name circuit prop =
  let verdict engines =
    let inject = Option.map Supervisor.inject_of_spec spec in
    let outcome, _ =
      Rfn.verify ~config:(quick_config ?inject ~engines ()) circuit prop
    in
    (match outcome with
    | Rfn.Falsified t ->
      Alcotest.(check bool)
        (Printf.sprintf "%s(%s): trace replays" name
           (Rfn.engines_to_string engines))
        true
        (Sim3v.replay_concrete circuit t ~bad:prop.Property.bad)
    | _ -> ());
    match outcome with
    | Rfn.Proved -> "proved"
    | Rfn.Falsified _ -> "falsified"
    | Rfn.Aborted f -> "aborted: " ^ F.to_string f
  in
  let reference = verdict Rfn.Atpg_only in
  List.iter
    (fun engines ->
      Alcotest.(check string)
        (Printf.sprintf "%s: %s matches atpg" name
           (Rfn.engines_to_string engines))
        reference (verdict engines))
    [ Rfn.Sat_only; Rfn.Portfolio ]

let test_engine_modes_zoo () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let fc = fifo.Rfn_designs.Fifo.circuit in
  List.iter
    (fun (name, c, prop) -> check_engine_modes name c prop)
    [
      ( "arbiter/bad",
        Helpers.arbiter_design (),
        Property.of_output (Helpers.arbiter_design ()) "bad" );
      ( "counter3/at_limit",
        Helpers.counter_design ~width:3 ~limit:7,
        Property.of_output (Helpers.counter_design ~width:3 ~limit:7)
          "at_limit" );
      ("fifo_small/psh_hf", fc, fifo.Rfn_designs.Fifo.psh_hf);
      ("fifo_small/psh_full", fc, fifo.Rfn_designs.Fifo.psh_full);
    ]

let test_engine_modes_chaos () =
  (* Injected faults at every site: the portfolio's extra rungs must
     absorb them without changing any verdict. *)
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let fc = fifo.Rfn_designs.Fifo.circuit in
  List.iter
    (fun (name, c, prop) -> check_engine_modes ~spec:"all" name c prop)
    [
      ( "arbiter/bad+chaos",
        Helpers.arbiter_design (),
        Property.of_output (Helpers.arbiter_design ()) "bad" );
      ("fifo_small/psh_full+chaos", fc, fifo.Rfn_designs.Fifo.psh_full);
    ]

let test_engines_of_string () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Rfn.engines_to_string e ^ " round-trips")
        true
        (Rfn.engines_of_string (Rfn.engines_to_string e) = e))
    [ Rfn.Atpg_only; Rfn.Sat_only; Rfn.Portfolio ];
  Alcotest.check_raises "unknown engine rejected"
    (Invalid_argument
       "unknown engine selection \"smt\" (expected atpg, sat or portfolio)")
    (fun () -> ignore (Rfn.engines_of_string "smt"))

let () =
  (* keep the differentials deterministic under the chaos CI job *)
  Unix.putenv "RFN_INJECT_FAULTS" "";
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "random CNF differential" `Quick
            test_random_cnf_differential;
          Alcotest.test_case "learned clauses entailed" `Quick
            test_learned_clauses_entailed;
          Alcotest.test_case "assumptions and incrementality" `Quick
            test_assumptions;
          Alcotest.test_case "contradictory units" `Quick test_empty_clause;
          Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
        ] );
      ( "sat-bmc",
        [
          Alcotest.test_case "zoo differential vs ATPG BMC" `Quick
            test_bmc_differential;
          Alcotest.test_case "guided concretization" `Quick
            test_sat_guided_concretize;
        ] );
      ( "engines",
        [
          Alcotest.test_case "zoo verdicts across engine modes" `Quick
            test_engine_modes_zoo;
          Alcotest.test_case "engine modes under chaos" `Quick
            test_engine_modes_chaos;
          Alcotest.test_case "selection parsing" `Quick test_engines_of_string;
        ] );
    ]
