(* AIGER front-end tests: golden parses, latch reset forms, symbol
   naming, line/byte-numbered error messages, ascii <-> binary
   round-trips (textual fixed point and a QCheck semantic
   differential), Netlist_io extension dispatch, and the committed
   example designs driven end to end through verify and lint. *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Lint = Rfn_lint.Lint

(* ---- semantic equivalence oracle ------------------------------------ *)

(* Name-keyed simulation: AIGER serialisation renumbers signals, so two
   circuits are compared by driving equally-named inputs with the same
   pseudo-random values and comparing equally-named outputs, cycle by
   cycle from the declared initial states. *)
let sim_outputs c ~cycles ~seed =
  let state = Hashtbl.create 17 in
  Array.iter
    (fun r ->
      let init =
        match Circuit.node c r with
        | Circuit.Reg { init = `One; _ } -> true
        | _ -> false (* `Zero; `Free defaulted, see callers *)
      in
      Hashtbl.replace state (Circuit.name c r) init)
    c.Circuit.registers;
  let frames = ref [] in
  for cycle = 0 to cycles - 1 do
    let input s = Hashtbl.hash (seed, cycle, Circuit.name c s) land 1 = 1 in
    let st r = Hashtbl.find state (Circuit.name c r) in
    let vals = Circuit.eval c ~input ~state:st in
    frames :=
      List.map (fun (n, s) -> (n, vals.(s))) c.Circuit.outputs :: !frames;
    Array.iter
      (fun r ->
        match Circuit.node c r with
        | Circuit.Reg { next; _ } ->
          Hashtbl.replace state (Circuit.name c r) vals.(next)
        | _ -> assert false)
      c.Circuit.registers
  done;
  List.rev !frames

let check_equiv name c1 c2 =
  let sort = List.sort compare in
  List.iteri
    (fun cycle (f1, f2) ->
      Alcotest.(check (list (pair string bool)))
        (Printf.sprintf "%s: outputs agree at cycle %d" name cycle)
        (sort f1) (sort f2))
    (List.combine
       (sim_outputs c1 ~cycles:6 ~seed:42)
       (sim_outputs c2 ~cycles:6 ~seed:42))

(* ---- golden parse --------------------------------------------------- *)

let token_aag =
  "aag 5 1 2 0 2 1\n2\n4 8\n6 4\n10\n8 2 5\n10 4 6\ni0 req\nl0 q0\nl1 q1\n\
   b0 both_high\nc\ncomment text\n"

let test_parse_ascii () =
  let c = Aiger_io.parse token_aag in
  Alcotest.(check int) "inputs" 1 (Array.length c.Circuit.inputs);
  Alcotest.(check int) "registers" 2 (Array.length c.Circuit.registers);
  Alcotest.(check string)
    "input named from symbol table" "req"
    (Circuit.name c c.Circuit.inputs.(0));
  Alcotest.(check string)
    "latch named from symbol table" "q0"
    (Circuit.name c c.Circuit.registers.(0));
  (* the bad-state property is an ordinary named output *)
  Alcotest.(check bool)
    "bad-state property declared as an output" true
    (Circuit.output_opt c "both_high" <> None);
  (* both_high = q0 AND q1 *)
  let q0 = Circuit.find c "q0" and q1 = Circuit.find c "q1" in
  (match Circuit.node c (Circuit.output c "both_high") with
  | Circuit.Gate (Gate.And, fanins) ->
    Alcotest.(check (list int))
      "bad is the conjunction of the latches" [ q0; q1 ]
      (List.sort compare (Array.to_list fanins))
  | _ -> Alcotest.fail "bad output should be an AND gate");
  (* q1 next is q0 *)
  match Circuit.node c q1 with
  | Circuit.Reg { next; _ } ->
    Alcotest.(check int) "q1 shifts q0" q0 next
  | _ -> Alcotest.fail "q1 should be a register"

let test_fallback_names () =
  (* no symbol table: i<k>, l<k>, o<k>, b<k> *)
  let c = Aiger_io.parse "aag 2 1 1 1 0 1\n2\n4 2\n4\n2\n" in
  Alcotest.(check string) "input" "i0" (Circuit.name c c.Circuit.inputs.(0));
  Alcotest.(check string)
    "latch" "l0"
    (Circuit.name c c.Circuit.registers.(0));
  Alcotest.(check (list string))
    "output then bad" [ "b0"; "o0" ]
    (List.sort compare (List.map fst c.Circuit.outputs))

let test_latch_resets () =
  (* omitted, explicit 0, 1, own literal *)
  let c =
    Aiger_io.parse "aag 5 1 4 0 0 0\n2\n4 2\n6 2 0\n8 2 1\n10 2 10\n"
  in
  let init k =
    match Circuit.node c c.Circuit.registers.(k) with
    | Circuit.Reg { init; _ } -> init
    | _ -> assert false
  in
  Alcotest.(check bool) "omitted reset is zero" true (init 0 = `Zero);
  Alcotest.(check bool) "explicit 0 is zero" true (init 1 = `Zero);
  Alcotest.(check bool) "reset 1 is one" true (init 2 = `One);
  Alcotest.(check bool) "own literal is free" true (init 3 = `Free)

let test_constants_and_negation () =
  (* o0 = !i0, o1 = const true, o2 = const false *)
  let c = Aiger_io.parse "aag 1 1 0 3 0\n2\n3\n1\n0\n" in
  let node k = Circuit.node c (Circuit.output c (Printf.sprintf "o%d" k)) in
  (match node 0 with
  | Circuit.Gate (Gate.Not, _) -> ()
  | _ -> Alcotest.fail "negated literal should read back as a NOT");
  (match node 1 with
  | Circuit.Const true -> ()
  | _ -> Alcotest.fail "literal 1 should be constant true");
  match node 2 with
  | Circuit.Const false -> ()
  | _ -> Alcotest.fail "literal 0 should be constant false"

(* ---- golden error messages ------------------------------------------ *)

let check_fails name text expected =
  match Aiger_io.parse text with
  | (_ : Circuit.t) -> Alcotest.fail (name ^ ": expected a parse error")
  | exception Failure msg -> Alcotest.(check string) name expected msg

let test_error_messages () =
  check_fails "bad magic" "bench 1 0 0 0 0\n"
    "Aiger_io: line 1: expected an AIGER header (aag/aig), got \
     \"bench 1 0 0 0 0\"";
  check_fails "short header" "aag 1 0\n"
    "Aiger_io: line 1: header \"aag 1 0\": expected M I L O A [B]";
  check_fails "constraint sections rejected" "aag 1 1 0 0 0 0 1\n2\n"
    "Aiger_io: line 1: invariant constraints, justice and fairness \
     properties are not supported";
  check_fails "M too small" "aag 1 1 1 0 0\n"
    "Aiger_io: line 1: header M = 1 < I + L + A = 2";
  check_fails "binary M must be exact" "aig 3 1 1 0 0\n"
    "Aiger_io: line 1: binary header requires M = I + L + A, got 3 <> 2";
  check_fails "wrong input literal" "aag 1 1 0 0 0\n4\n"
    "Aiger_io: line 2: input 0: expected literal 2, got 4";
  check_fails "bad latch reset" "aag 2 1 1 0 0\n2\n4 2 5\n"
    "Aiger_io: line 3: latch 0: reset must be 0, 1 or the latch literal 4, \
     got 5";
  check_fails "undefined variable" "aag 2 1 0 1 0\n2\n4\n"
    "Aiger_io: line 3: undefined variable 2";
  check_fails "negated AND lhs" "aag 2 1 0 0 1\n2\n5 2 2\n"
    "Aiger_io: line 3: AND 0: left-hand side 5 is negated";
  check_fails "missing section" "aag 2 1 1 0 0\n2\n"
    "Aiger_io: line 2: missing latch line";
  check_fails "not a number" "aag x 0 0 0 0\n"
    "Aiger_io: line 1: expected a natural number, got \"x\""

(* Lowering a malformed unary gate must raise an [Invalid_argument]
   naming the gate (a bare [List.hd] here used to escape as
   [Failure "hd"], telling the user nothing). *)
let test_fanin1_messages () =
  Alcotest.(check int) "well-formed unary gate passes through" 42
    (Aiger_io.fanin1 ~gate:"n1" Gate.Not [ 42 ]);
  (try
     ignore (Aiger_io.fanin1 ~gate:"inv_q" Gate.Not []);
     Alcotest.fail "an empty fanin list must raise"
   with Invalid_argument msg ->
     Alcotest.(check string) "empty fanin list"
       "Aiger_io: NOT gate \"inv_q\" has 0 fanins (expected 1)" msg);
  try
    ignore (Aiger_io.fanin1 ~gate:"buf_x" Gate.Buf [ 1; 2; 3 ]);
    Alcotest.fail "excess fanins must raise"
  with Invalid_argument msg ->
    Alcotest.(check string) "excess fanins"
      "Aiger_io: BUF gate \"buf_x\" has 3 fanins (expected 1)" msg

let test_cycle_error () =
  match Aiger_io.parse "aag 3 1 0 1 2\n2\n6\n4 6 2\n6 4 2\n" with
  | (_ : Circuit.t) -> Alcotest.fail "expected a cycle error"
  | exception Failure msg ->
    let contains needle =
      let nh = String.length needle and mh = String.length msg in
      let rec go i = i + nh <= mh && (String.sub msg i nh = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "cycle path named (%s)" msg)
      true
      (contains "combinational cycle through AND variables:"
      && contains " -> ")

let test_binary_truncated () =
  (* one AND gate, but the delta varint never terminates *)
  let text = "aig 1 0 0 0 1\n\x80" in
  match Aiger_io.parse text with
  | (_ : Circuit.t) -> Alcotest.fail "expected a byte error"
  | exception Failure msg ->
    Alcotest.(check string) "byte-numbered EOF"
      "Aiger_io: byte 15: unexpected end of file in AND section" msg

(* ---- round-trips ---------------------------------------------------- *)

let test_ascii_binary_roundtrip () =
  let c = Aiger_io.parse token_aag in
  (* once lowered to an AIG, write -> parse -> write is a fixed point,
     in both formats, and the two formats describe the same graph *)
  let a1 = Aiger_io.to_string ~bads:[ "both_high" ] c in
  let c2 = Aiger_io.parse a1 in
  let a2 = Aiger_io.to_string ~bads:[ "both_high" ] c2 in
  Alcotest.(check string) "ascii fixed point" a1 a2;
  let b1 = Aiger_io.to_string ~binary:true ~bads:[ "both_high" ] c in
  let c3 = Aiger_io.parse b1 in
  Alcotest.(check string)
    "binary decodes to the same graph" a1
    (Aiger_io.to_string ~bads:[ "both_high" ] c3);
  check_equiv "ascii round-trip" c c2;
  check_equiv "binary round-trip" c c3

let roundtrip_prop binary (rc : Helpers.rand_circuit) =
  let c = rc.Helpers.circuit in
  let text = Aiger_io.to_string ~binary c in
  let c2 = Aiger_io.parse text in
  check_equiv (if binary then "binary" else "ascii") c c2;
  true

let qcheck_roundtrip binary =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:
         (Printf.sprintf "random circuit -> %s AIGER -> parse is equivalent"
            (if binary then "binary" else "ascii"))
       (Helpers.arbitrary_circuit ~nins:4 ~nregs:3 ~ngates:14)
       (roundtrip_prop binary))

let test_write_file_dispatch () =
  let c = Aiger_io.parse token_aag in
  let aig = Filename.temp_file "rfn_aiger" ".aig" in
  let aag = Filename.temp_file "rfn_aiger" ".aag" in
  Aiger_io.write_file aig c;
  Aiger_io.write_file aag c;
  let magic path =
    let ic = open_in_bin path in
    let m = really_input_string ic 3 in
    close_in ic;
    m
  in
  Alcotest.(check string) ".aig writes binary" "aig" (magic aig);
  Alcotest.(check string) ".aag writes ascii" "aag" (magic aag);
  check_equiv "binary file" c (Aiger_io.parse_file aig);
  check_equiv "ascii file" c (Aiger_io.parse_file aag);
  Sys.remove aig;
  Sys.remove aag

(* ---- Netlist_io dispatch -------------------------------------------- *)

let test_netlist_dispatch () =
  let c = Aiger_io.parse token_aag in
  let bench = Filename.temp_file "rfn_netlist" ".bench" in
  let aag = Filename.temp_file "rfn_netlist" ".aag" in
  Netlist_io.save bench c;
  Netlist_io.save ~bads:[ "both_high" ] aag c;
  check_equiv "bench dispatch" c (Netlist_io.load bench);
  check_equiv "aag dispatch" c (Netlist_io.load aag);
  Sys.remove bench;
  Sys.remove aag

(* ---- committed examples end to end ---------------------------------- *)

let quick_config =
  { Rfn.default_config with Rfn.max_iterations = 20; mc_max_steps = 100 }

(* dune runtest runs from _build/default/test; dune exec from the root *)
let example_path name =
  List.find Sys.file_exists [ "../examples/" ^ name; "examples/" ^ name ]

let example_end_to_end name () =
  let c = Netlist_io.load (example_path name) in
  let p = Property.of_output c "both_high" in
  (match Rfn.verify ~config:quick_config c p with
  | Rfn.Proved, _ -> ()
  | _ -> Alcotest.fail (name ^ ": token hand-off should be proved safe"));
  let report = Lint.run ~props:[ p ] c in
  (* the only expected finding: "both_high" is a mutex-violation
     watchdog, and the invariant-inference passes prove the mutex —
     the golden onehot-violation report on a committed design *)
  (match
     List.filter
       (fun f -> f.Lint.severity = Lint.Error)
       report.Lint.findings
   with
  | [ f ] ->
    Alcotest.(check string)
      (name ^ ": the one error is the vacuity finding")
      "onehot-violation" f.Lint.pass;
    Alcotest.(check string)
      (name ^ ": golden vacuity message")
      "property \"both_high\" can only fire by violating a proven \
       register-group invariant (mutex {q0, q1}): no reachable state \
       triggers it"
      f.Lint.message
  | fs ->
    Alcotest.failf "%s: expected exactly the vacuity finding, got %d errors"
      name (List.length fs));
  Alcotest.(check int) (name ^ ": no warnings") 0 (Lint.warnings report)

let tests =
  [
    Alcotest.test_case "golden ascii parse" `Quick test_parse_ascii;
    Alcotest.test_case "fallback symbol names" `Quick test_fallback_names;
    Alcotest.test_case "latch reset forms" `Quick test_latch_resets;
    Alcotest.test_case "constants and negation" `Quick
      test_constants_and_negation;
    Alcotest.test_case "golden error messages" `Quick test_error_messages;
    Alcotest.test_case "fanin1 names the gate" `Quick test_fanin1_messages;
    Alcotest.test_case "combinational cycle error" `Quick test_cycle_error;
    Alcotest.test_case "binary truncation error" `Quick test_binary_truncated;
    Alcotest.test_case "ascii/binary round-trip" `Quick
      test_ascii_binary_roundtrip;
    qcheck_roundtrip false;
    qcheck_roundtrip true;
    Alcotest.test_case "write_file extension dispatch" `Quick
      test_write_file_dispatch;
    Alcotest.test_case "Netlist_io dispatch" `Quick test_netlist_dispatch;
    Alcotest.test_case "example .aag verifies and lints" `Quick
      (example_end_to_end "passing_token.aag");
    Alcotest.test_case "example .aig verifies and lints" `Quick
      (example_end_to_end "passing_token.aig");
  ]

let () = Alcotest.run "aiger_io" [ ("aiger_io", tests) ]
