(* Lint engine and cross-artifact invariant checker tests: golden
   findings over the design zoo and examples/fifo.bench, the QCheck
   "Builder designs never lint as errors" property, and corruption
   detection for the RFN_CHECK artifact checkers. *)

open Rfn_circuit
module B = Circuit.Builder
module Lint = Rfn_lint.Lint
module Check = Rfn_lint.Check
module Varmap = Rfn_mc.Varmap
module Cnf = Rfn_sat.Cnf
module Rfn = Rfn_core.Rfn

let report_lines ?only c props =
  let report = Lint.run ?only ~props c in
  Format.asprintf "%a" Lint.pp_report report

(* The acceptance design: a constant-next-state register, a dead
   input, and a structurally-false property — all three reported, with
   the right severities. *)
let acceptance_design () =
  let b = B.create () in
  let _dead = B.input b "unused" in
  let a = B.input b "a" in
  let stuck = B.reg b "stuck" in
  B.connect b stuck (B.const b false);
  let keep = B.reg_of b "keep" a in
  let bad = B.gate b ~name:"bad" Gate.Or [| keep; B.const b true |] in
  B.output b "bad" bad;
  B.finalize b

let test_acceptance () =
  let c = acceptance_design () in
  let props = [ Property.of_output c "bad" ] in
  let report = Lint.run ~props c in
  let has pass severity =
    List.exists
      (fun f -> f.Lint.pass = pass && f.Lint.severity = severity)
      report.Lint.findings
  in
  Alcotest.(check bool) "prop-const error" true (has "prop-const" Lint.Error);
  Alcotest.(check bool) "const-reg warning" true (has "const-reg" Lint.Warning);
  Alcotest.(check bool)
    "dead-input warning" true
    (has "dead-input" Lint.Warning);
  Alcotest.(check int) "one error" 1 (Lint.errors report);
  (* the register with constant init=0 next-state is named *)
  let const_reg =
    List.find (fun f -> f.Lint.pass = "const-reg") report.Lint.findings
  in
  Alcotest.(check (list string))
    "const-reg names stuck" [ "stuck" ]
    (List.map (Circuit.name c) const_reg.Lint.signals)

let test_vacuous_and_self_loop () =
  let b = B.create () in
  let a = B.input b "a" in
  let self = B.reg b "self" in
  B.connect b self self;
  let keep = B.reg_of b "keep" a in
  let bad = B.gate b ~name:"bad" Gate.And [| keep; B.const b false |] in
  B.output b "bad" bad;
  let c = B.finalize b in
  let report = Lint.run ~props:[ Property.of_output c "bad" ] c in
  let by pass =
    List.filter (fun f -> f.Lint.pass = pass) report.Lint.findings
  in
  Alcotest.(check int) "no errors (vacuous is a warning)" 0
    (Lint.errors report);
  (match by "prop-const" with
  | [ f ] -> Alcotest.(check bool) "vacuous warns" true (f.Lint.severity = Lint.Warning)
  | _ -> Alcotest.fail "expected one prop-const finding");
  match by "self-loop-reg" with
  | [ f ] ->
    Alcotest.(check (list string))
      "self-loop names self" [ "self" ]
      (List.map (Circuit.name c) f.Lint.signals)
  | _ -> Alcotest.fail "expected one self-loop-reg finding"

let test_free_init_and_duplicates () =
  let b = B.create () in
  let a = B.input b "a" in
  let fr = B.reg b ~init:`Free "fr" in
  B.connect b fr a;
  (* two structurally identical named gates: hash-consing merges
     unnamed duplicates, but named definitions keep their own cell *)
  let g1 = B.gate b ~name:"g1" Gate.And [| a; fr |] in
  let g2 = B.gate b ~name:"g2" Gate.And [| a; fr |] in
  let bad = B.gate b ~name:"bad" Gate.Or [| g1; g2 |] in
  B.output b "bad" bad;
  let c = B.finalize b in
  let report = Lint.run ~props:[ Property.of_output c "bad" ] c in
  let has pass = List.exists (fun f -> f.Lint.pass = pass) report.Lint.findings in
  Alcotest.(check bool) "prop-free-init" true (has "prop-free-init");
  Alcotest.(check bool) "duplicate-gate" true (has "duplicate-gate")

(* ---- invariant-backed passes ----------------------------------------- *)

(* A one-hot token ring: "collide" can only fire by violating the
   proven one-hot group (vacuous, Error); "stuck" genuinely depends on
   reachable behaviour and must not be flagged. *)
let test_onehot_violation () =
  let b = B.create () in
  let s0 = B.reg b ~init:`One "s0" in
  let s1 = B.reg b ~init:`Zero "s1" in
  let s2 = B.reg b ~init:`Zero "s2" in
  B.connect b s0 s2;
  B.connect b s1 s0;
  B.connect b s2 s1;
  B.output b "collide"
    (B.gate b ~name:"collide" Gate.Or
       [| B.and2 b s0 s1; B.and2 b s0 s2; B.and2 b s1 s2 |]);
  B.output b "stuck" s1;
  let c = B.finalize b in
  let props =
    [ Property.of_output c "collide"; Property.of_output c "stuck" ]
  in
  let report = Lint.run ~only:[ "onehot-violation" ] ~props c in
  match
    List.filter (fun f -> f.Lint.severity = Lint.Error) report.Lint.findings
  with
  | [ f ] ->
    Alcotest.(check string) "pass name" "onehot-violation" f.Lint.pass;
    Alcotest.(check bool)
      "the vacuous property is the one flagged" true
      (String.length f.Lint.message >= 18
      && String.sub f.Lint.message 0 18 = "property \"collide\"");
    Alcotest.(check bool)
      "the collide signal is implicated" true
      (List.mem (Circuit.output c "collide") f.Lint.signals)
  | fs ->
    Alcotest.failf "expected exactly one onehot-violation error, got %d"
      (List.length fs)

(* Twin registers clocked from the same function: the redundant one is
   reported with its keeper, the keeper itself is not flagged. *)
let test_equiv_reg () =
  let b = B.create () in
  let i0 = B.input b "i0" in
  let ra = B.reg b ~init:`Zero "ra" in
  let rb = B.reg b ~init:`Zero "rb" in
  let nxt = B.xor2 b i0 ra in
  B.connect b ra nxt;
  B.connect b rb nxt;
  B.output b "both" (B.and2 b ra rb);
  let c = B.finalize b in
  let report = Lint.run ~only:[ "equiv-reg" ] c in
  match report.Lint.findings with
  | [ f ] ->
    Alcotest.(check bool) "warning severity" true
      (f.Lint.severity = Lint.Warning);
    Alcotest.(check string) "golden message"
      "register \"rb\" is redundant: in every reachable state it equals \
       \"ra\""
      f.Lint.message
  | fs ->
    Alcotest.failf "expected exactly one equiv-reg warning, got %d"
      (List.length fs)

(* ---- golden reports -------------------------------------------------- *)

let golden name actual expected =
  Alcotest.(check string) name expected actual

let test_golden_arbiter () =
  let c = Helpers.arbiter_design () in
  golden "arbiter findings"
    (report_lines c [ Property.of_output c "bad" ])
    "0 error(s), 0 warning(s), 0 info(s) from 10 pass(es)\n"

(* The zoo counter carries an unused carry chain beyond the comparator:
   or_15..or_18 feed nothing, so the head of that chain floats. *)
let test_golden_counter () =
  let c = Helpers.counter_design ~width:3 ~limit:5 in
  golden "counter findings"
    (report_lines c [ Property.of_output c "at_limit" ])
    "warning: [floating-gate] gate \"or_18\" output is never read\n\
     info: [unreachable-logic] 4 signal(s) outside every output/property \
     cone: or_15, and_16, and_17, or_18\n\
     0 error(s), 1 warning(s), 1 info(s) from 10 pass(es)\n"

let test_golden_deep_bug () =
  let c = Helpers.deep_bug_design ~width:3 in
  golden "deep_bug findings"
    (report_lines c [ Property.of_output c "bad" ])
    "warning: [floating-gate] gate \"or_18\" output is never read\n\
     info: [unreachable-logic] 4 signal(s) outside every output/property \
     cone: or_15, and_16, and_17, or_18\n\
     0 error(s), 1 warning(s), 1 info(s) from 10 pass(es)\n"

(* dune runtest runs from _build/default/test; dune exec from the root *)
let fifo_path () =
  List.find Sys.file_exists
    [ "../examples/fifo.bench"; "examples/fifo.bench" ]

let test_golden_fifo () =
  let c = Bench_io.parse_file (fifo_path ()) in
  let props =
    List.map (fun (n, _) -> Property.of_output c n) c.Circuit.outputs
  in
  golden "fifo findings" (report_lines c props)
    "warning: [equiv-reg] register \"age_0\" is redundant: in every \
     reachable state it equals \"tail_0\"\n\
     warning: [equiv-reg] register \"age_1\" is redundant: in every \
     reachable state it equals \"tail_1\"\n\
     warning: [equiv-reg] register \"age_2\" is redundant: in every \
     reachable state it equals \"tail_2\"\n\
     warning: [floating-gate] gate \"not_8\" output is never read\n\
     warning: [floating-gate] gate \"or_45\" output is never read\n\
     warning: [floating-gate] gate \"or_69\" output is never read\n\
     warning: [floating-gate] gate \"or_103\" output is never read\n\
     warning: [floating-gate] gate \"or_131\" output is never read\n\
     warning: [floating-gate] gate \"or_496\" output is never read\n\
     warning: [floating-gate] gate \"or_518\" output is never read\n\
     info: [unreachable-logic] 28 signal(s) outside every output/property \
     cone: empty_flag, not_8, or_42, and_43, and_44, or_45, or_66, and_67, \
     ... (20 more)\n\
     0 error(s), 10 warning(s), 1 info(s) from 10 pass(es)\n"

let test_only_selects_passes () =
  let c = Helpers.arbiter_design () in
  let report = Lint.run ~only:[ "dead-input"; "const-reg" ] c in
  Alcotest.(check (list string))
    "passes_run" [ "const-reg"; "dead-input" ] report.Lint.passes_run;
  Alcotest.check_raises "unknown pass"
    (Invalid_argument "Lint.run: unknown pass \"nope\"") (fun () ->
      ignore (Lint.run ~only:[ "nope" ] c))

(* design lints never produce Error severity: errors are reserved for
   property violations, and random Builder designs carry no property *)
let qcheck_no_errors =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"lint on a Builder-constructed design never reports Error"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:12)
       (fun rc -> Lint.errors (Lint.run rc.Helpers.circuit) = 0))

(* ---- invariant checkers ---------------------------------------------- *)

let whole_vm () =
  let c = Helpers.counter_design ~width:3 ~limit:5 in
  let view = Sview.whole c ~roots:[ Circuit.output c "at_limit" ] in
  (c, view, Varmap.make view)

let test_varmap_clean () =
  let _, _, vm = whole_vm () in
  Alcotest.(check int) "no findings" 0 (List.length (Check.varmap vm))

let test_varmap_corrupted () =
  let _, _, vm = whole_vm () in
  (* collapse every variable onto level 0: duplicate roles and a role
     table that no longer round-trips *)
  let collapsed = Varmap.remap vm ~man:(Varmap.man vm) ~map:(fun _ -> 0) in
  Alcotest.(check bool)
    "collapsed map caught" true
    (Check.varmap collapsed <> []);
  (* shift every variable outside the manager's allocated range *)
  let shifted = Varmap.remap vm ~man:(Varmap.man vm) ~map:(fun v -> v + 1000) in
  Alcotest.(check bool) "out-of-range map caught" true (Check.varmap shifted <> []);
  (* ensure converts findings into a Violation and counts the failure *)
  let before =
    Rfn_obs.Telemetry.counter_value
      (Rfn_obs.Telemetry.counter "check.invariant_failures")
  in
  (try
     Check.ensure ~what:"test" (Check.varmap collapsed);
     Alcotest.fail "expected Violation"
   with Check.Violation (what, findings) ->
     Alcotest.(check string) "what" "test" what;
     Alcotest.(check bool) "findings kept" true (findings <> []));
  let after =
    Rfn_obs.Telemetry.counter_value
      (Rfn_obs.Telemetry.counter "check.invariant_failures")
  in
  Alcotest.(check bool) "failure counted" true (after > before)

let test_cone_cache () =
  let _, view, vm = whole_vm () in
  let all = Bitset.to_list view.Sview.inside in
  Alcotest.(check int) "complete cache passes" 0
    (List.length (Check.cone_cache vm ~signals:all));
  (match all with
  | s :: rest ->
    Alcotest.(check bool)
      "missing cone caught" true
      (Check.cone_cache vm ~signals:rest <> []
      && List.exists
           (fun f -> f.Lint.signals = [ s ])
           (Check.cone_cache vm ~signals:rest))
  | [] -> Alcotest.fail "empty view");
  Alcotest.(check bool)
    "stale cone caught" true
    (Check.cone_cache vm ~signals:(Circuit.num_signals view.Sview.circuit :: all)
    <> [])

let test_trace_check () =
  let c, view, _ = whole_vm () in
  let r0 = c.Circuit.registers.(0) in
  let i0 = c.Circuit.inputs.(0) in
  let g =
    (* some gate signal: neither register nor input *)
    let rec find s =
      match Circuit.node c s with Circuit.Gate _ -> s | _ -> find (s + 1)
    in
    find 0
  in
  let ok =
    Trace.make
      ~states:[| Cube.of_list [ (r0, false) ]; Cube.of_list [ (r0, true) ] |]
      ~inputs:[| Cube.of_list [ (i0, true) ] |]
  in
  Alcotest.(check int) "well-formed trace" 0
    (List.length (Check.trace view ~depth:2 ok));
  Alcotest.(check bool)
    "depth mismatch caught" true
    (Check.trace view ~depth:3 ok <> []);
  let bad_state =
    Trace.make
      ~states:[| Cube.of_list [ (g, true) ]; Cube.empty |]
      ~inputs:[| Cube.empty |]
  in
  Alcotest.(check bool)
    "gate in state cube caught" true
    (Check.trace view ~depth:2 bad_state <> []);
  let bad_input =
    Trace.make
      ~states:[| Cube.empty; Cube.empty |]
      ~inputs:[| Cube.of_list [ (g, true) ] |]
  in
  Alcotest.(check bool)
    "gate in input cube caught" true
    (Check.trace view ~depth:2 bad_input <> []);
  (* ...unless the caller declares it pinnable (min-cut signals) *)
  Alcotest.(check int) "input_ok override" 0
    (List.length (Check.trace ~input_ok:(fun _ -> true) view ~depth:2 bad_input))

let test_cnf_check () =
  let c = Helpers.deep_bug_design ~width:2 in
  let bad = Circuit.output c "bad" in
  let view = Sview.whole c ~roots:[ bad ] in
  let unr = Cnf.create view in
  Cnf.extend unr ~frames:3;
  Alcotest.(check int) "unrolling is clean" 0 (List.length (Check.cnf unr));
  Alcotest.(check int) "valid pins" 0
    (List.length (Check.pins unr [ (0, bad, true); (2, bad, false) ]));
  Alcotest.(check bool)
    "frame out of range caught" true
    (Check.pins unr [ (3, bad, true) ] <> []);
  Alcotest.(check bool)
    "unencoded signal caught" true
    (Check.pins unr [ (0, Circuit.num_signals c, true) ] <> [])

(* Full CEGAR runs with phase-boundary checks on: outcomes unchanged,
   and the pass counter moves. *)
let test_verify_with_checks () =
  let config = { Rfn.default_config with Rfn.check_invariants = true } in
  let passes () =
    Rfn_obs.Telemetry.counter_value
      (Rfn_obs.Telemetry.counter "check.invariant_passes")
  in
  let before = passes () in
  let arb = Helpers.arbiter_design () in
  (match Rfn.verify ~config arb (Property.of_output arb "bad") with
  | Rfn.Proved, _ -> ()
  | _ -> Alcotest.fail "arbiter should prove with checks on");
  let deep = Helpers.deep_bug_design ~width:2 in
  (match Rfn.verify ~config deep (Property.of_output deep "bad") with
  | Rfn.Falsified _, _ -> ()
  | _ -> Alcotest.fail "deep bug should falsify with checks on");
  Alcotest.(check bool) "invariant checks ran" true (passes () > before)

let tests =
  [
    Alcotest.test_case "acceptance design" `Quick test_acceptance;
    Alcotest.test_case "vacuous + self-loop" `Quick test_vacuous_and_self_loop;
    Alcotest.test_case "free-init + duplicates" `Quick
      test_free_init_and_duplicates;
    Alcotest.test_case "onehot-violation flags vacuity" `Quick
      test_onehot_violation;
    Alcotest.test_case "equiv-reg flags redundant state" `Quick
      test_equiv_reg;
    Alcotest.test_case "golden: arbiter" `Quick test_golden_arbiter;
    Alcotest.test_case "golden: counter" `Quick test_golden_counter;
    Alcotest.test_case "golden: deep bug" `Quick test_golden_deep_bug;
    Alcotest.test_case "golden: fifo.bench" `Quick test_golden_fifo;
    Alcotest.test_case "--only selection" `Quick test_only_selects_passes;
    qcheck_no_errors;
    Alcotest.test_case "varmap: clean" `Quick test_varmap_clean;
    Alcotest.test_case "varmap: corrupted" `Quick test_varmap_corrupted;
    Alcotest.test_case "cone cache" `Quick test_cone_cache;
    Alcotest.test_case "trace shape" `Quick test_trace_check;
    Alcotest.test_case "cnf + pins" `Quick test_cnf_check;
    Alcotest.test_case "verify with RFN_CHECK" `Quick test_verify_with_checks;
  ]

let () = Alcotest.run "lint" [ ("lint", tests) ]
