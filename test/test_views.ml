(* COI computation, subcircuit views and abstract models. *)

open Rfn_circuit
module B = Circuit.Builder

(* d2 <- d1 <- d0 <- input; an independent island feeds only "other". *)
let chain_design () =
  let b = B.create () in
  let x = B.input b "x" in
  let d0 = B.reg_of b "d0" x in
  let d1 = B.reg_of b "d1" d0 in
  let d2 = B.reg_of b "d2" d1 in
  let y = B.input b "y" in
  let island = B.reg_of b "island" y in
  let other = B.gate b ~name:"other" Gate.And [| island; y |] in
  B.output b "d2" d2;
  B.output b "other" other;
  (B.finalize b, d0, d1, d2, island)

let test_coi_follows_registers () =
  let c, d0, d1, d2, island = chain_design () in
  let coi = Coi.compute c ~roots:[ d2 ] in
  Alcotest.(check int) "three registers" 3 (Coi.num_regs coi);
  List.iter
    (fun r ->
      Alcotest.(check bool) "chain member" true (Bitset.mem coi.Coi.regs r))
    [ d0; d1; d2 ];
  Alcotest.(check bool) "island excluded" false
    (Bitset.mem coi.Coi.regs island);
  Alcotest.(check bool) "x is an input of the cone" true
    (Bitset.mem coi.Coi.inputs (Circuit.find c "x"));
  Alcotest.(check bool) "y not in the cone" false
    (Bitset.mem coi.Coi.inputs (Circuit.find c "y"))

let test_coi_restrict_view () =
  let c, _, _, d2, _ = chain_design () in
  let coi = Coi.compute c ~roots:[ d2 ] in
  let view = Coi.restrict_view c coi ~roots:[ d2 ] in
  Alcotest.(check int) "view registers" 3 (Sview.num_regs view);
  Alcotest.(check int) "one free input" 1 (Sview.num_free_inputs view)

let test_whole_view () =
  let c, _, _, d2, _ = chain_design () in
  let v = Sview.whole c ~roots:[ d2 ] in
  Alcotest.(check int) "all registers" (Circuit.num_registers c)
    (Sview.num_regs v);
  Alcotest.(check int) "all inputs free" (Circuit.num_inputs c)
    (Sview.num_free_inputs v);
  Alcotest.(check bool) "inputs are free" true
    (Sview.is_free v (Circuit.find c "x"));
  Alcotest.(check bool) "registers are state" true (Sview.is_state v d2)

let test_sview_validation () =
  let c, _, _, d2, _ = chain_design () in
  let n = Circuit.num_signals c in
  (* a view containing d2 but not its next-state input must be rejected *)
  let inside = Bitset.of_list n [ d2 ] in
  let free = Bitset.create n in
  (try
     ignore (Sview.make c ~inside ~free ~roots:[]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (* fixing it by making nothing a register: d2 free is fine *)
  let free = Bitset.of_list n [ d2 ] in
  let v = Sview.make c ~inside ~free ~roots:[ d2 ] in
  Alcotest.(check int) "no state regs" 0 (Sview.num_regs v)

let test_initial_abstraction () =
  let c, d0, d1, d2, _ = chain_design () in
  let a = Abstraction.initial c ~roots:[ d2 ] in
  (* d2 is named by the property -> concrete; d1 becomes a pseudo-input *)
  Alcotest.(check int) "one register" 1 (Abstraction.num_regs a);
  Alcotest.(check (list int)) "pseudo inputs" [ d1 ] (Abstraction.pseudo_inputs a);
  Alcotest.(check bool) "is_pseudo_input" true (Abstraction.is_pseudo_input a d1);
  Alcotest.(check bool) "d0 outside" false (Sview.mem a.Abstraction.view d0)

let test_refine_grows_cone () =
  let c, d0, d1, d2, _ = chain_design () in
  let a = Abstraction.initial c ~roots:[ d2 ] in
  let a = Abstraction.refine a ~add:[ d1 ] in
  Alcotest.(check int) "two registers" 2 (Abstraction.num_regs a);
  Alcotest.(check (list int)) "d0 now pseudo" [ d0 ]
    (Abstraction.pseudo_inputs a);
  let a = Abstraction.refine a ~add:[ d0 ] in
  Alcotest.(check (list int)) "no pseudo left" []
    (Abstraction.pseudo_inputs a);
  Alcotest.(check bool) "x free input now" true
    (Sview.is_free a.Abstraction.view (Circuit.find c "x"))

let test_with_regs_includes_roots () =
  let c, _, d1, d2, _ = chain_design () in
  let a = Abstraction.with_regs c ~roots:[ d2 ] ~regs:[ d1 ] in
  Alcotest.(check int) "d2 forced in, d1 chosen" 2 (Abstraction.num_regs a)

let test_refine_rejects_non_register () =
  let c, _, _, d2, _ = chain_design () in
  let a = Abstraction.initial c ~roots:[ d2 ] in
  try
    ignore (Abstraction.refine a ~add:[ Circuit.find c "x" ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let abstraction_soundness =
  (* Any property True on the design is True on no abstraction... the
     converse: abstraction over-approximates, so anything unreachable
     on the abstract model is unreachable on the design. We check it
     via brute force on random circuits: if the abstract model (with
     the full register set) equals the design, verdicts coincide; with
     an empty chosen set, the abstract reachable set projected must
     cover the concrete one. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"abstraction view contains the property cone"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let a = Abstraction.initial c ~roots:[ rc.Helpers.out ] in
         let v = a.Abstraction.view in
         Sview.mem v rc.Helpers.out
         && Array.for_all
              (fun r ->
                (* every view register's next cone is inside *)
                match Circuit.node c r with
                | Circuit.Reg { next; _ } -> Sview.mem v next
                | _ -> false)
              v.Sview.regs))

let tests =
  [
    Alcotest.test_case "coi follows registers" `Quick test_coi_follows_registers;
    Alcotest.test_case "coi restrict view" `Quick test_coi_restrict_view;
    Alcotest.test_case "whole view" `Quick test_whole_view;
    Alcotest.test_case "sview validation" `Quick test_sview_validation;
    Alcotest.test_case "initial abstraction" `Quick test_initial_abstraction;
    Alcotest.test_case "refine grows cone" `Quick test_refine_grows_cone;
    Alcotest.test_case "with_regs includes roots" `Quick
      test_with_regs_includes_roots;
    Alcotest.test_case "refine rejects non-register" `Quick
      test_refine_rejects_non_register;
    abstraction_soundness;
  ]

let () = Alcotest.run "views" [ ("views", tests) ]
