(* Invariant inference (Rfn_analysis): mining + inductive-proving
   units, soundness against brute-force reachability, the
   merge-equivalences rewrite, and the end-to-end differential — every
   zoo verdict and counterexample is identical with --analyze on and
   off, across the engine matrix and under chaos. *)

open Rfn_circuit
module B = Circuit.Builder
module Analysis = Rfn_analysis.Analysis
module Rfn = Rfn_core.Rfn
module Concretize = Rfn_core.Concretize
module Sat_bmc = Rfn_core.Sat_bmc
module Bmc = Rfn_core.Bmc
module Supervisor = Rfn_core.Supervisor

(* ------------------------------------------------------------------ *)
(* Hand-built designs                                                  *)
(* ------------------------------------------------------------------ *)

(* Constant chain: r0 <- r1 <- ... <- r_(k-1) <- 0, all init 0. Every
   register is provably stuck at 0; "bad" = r0 & go can never fire. *)
let const_chain_design ~k =
  let b = B.create () in
  let go = B.input b "go" in
  let regs =
    Array.init k (fun i -> B.reg b ~init:`Zero (Printf.sprintf "r%d" i))
  in
  for i = 0 to k - 2 do
    B.connect b regs.(i) regs.(i + 1)
  done;
  B.connect b regs.(k - 1) (B.const b false);
  B.output b "bad" (B.and2 b regs.(0) go);
  B.finalize b

(* Twin registers clocked from the same function: inductively
   equivalent, and rn is their complement. *)
let twin_design () =
  let b = B.create () in
  let i0 = B.input b "i0" in
  let ra = B.reg b ~init:`Zero "ra" in
  let rb = B.reg b ~init:`Zero "rb" in
  let rn = B.reg b ~init:`One "rn" in
  let nxt = B.xor2 b i0 ra in
  B.connect b ra nxt;
  B.connect b rb nxt;
  B.connect b rn (B.not_ b nxt);
  B.output b "both" (B.and2 b ra rb);
  B.output b "neither" (B.and2 b (B.not_ b ra) rn);
  B.finalize b

(* A 3-stage one-hot token ring; "collide" asserts two stages at once
   and is unreachable. *)
let ring_design () =
  let b = B.create () in
  let s0 = B.reg b ~init:`One "s0" in
  let s1 = B.reg b ~init:`Zero "s1" in
  let s2 = B.reg b ~init:`Zero "s2" in
  B.connect b s0 s2;
  B.connect b s1 s0;
  B.connect b s2 s1;
  B.output b "collide"
    (B.or_l b [ B.and2 b s0 s1; B.and2 b s0 s2; B.and2 b s1 s2 ]);
  B.finalize b

(* ------------------------------------------------------------------ *)
(* Mining + proving units                                              *)
(* ------------------------------------------------------------------ *)

let has_const a r v =
  List.exists
    (function
      | Analysis.Const_reg { reg; value } -> reg = r && value = v
      | _ -> false)
    a.Analysis.invariants

let test_const_chain () =
  let c = const_chain_design ~k:4 in
  let a = Analysis.run c in
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s proved stuck at 0" (Circuit.name c r))
        true (has_const a r false))
    c.Circuit.registers;
  Alcotest.(check int)
    "every reported invariant counted as proved"
    (List.length a.Analysis.invariants)
    a.Analysis.stats.Analysis.proved

let test_twin_equiv () =
  let c = twin_design () in
  let a = Analysis.run c in
  let ra = Circuit.find c "ra"
  and rb = Circuit.find c "rb"
  and rn = Circuit.find c "rn" in
  let equiv k d p =
    List.exists
      (function
        | Analysis.Equiv { keep; drop; phase } ->
          keep = k && drop = d && phase = p
        | _ -> false)
      a.Analysis.invariants
  in
  Alcotest.(check bool) "rb equals ra" true (equiv ra rb false);
  Alcotest.(check bool) "rn is the complement of ra" true (equiv ra rn true)

let test_ring_one_hot () =
  let c = ring_design () in
  let a = Analysis.run c in
  let regs = Array.to_list c.Circuit.registers in
  let one_hot =
    List.exists
      (function
        | Analysis.One_hot rs -> List.for_all (fun r -> Array.mem r rs) regs
        | _ -> false)
      a.Analysis.invariants
  in
  Alcotest.(check bool) "the ring is proved one-hot" true one_hot

(* A candidate that simulation proposes but induction cannot prove must
   be dropped: a sticky register is not stuck-at-0 even if short random
   runs never raise it. *)
let test_unproven_dropped () =
  let b = B.create () in
  let i0 = B.input b "i0" in
  let i1 = B.input b "i1" in
  let r0 = B.reg b ~init:`Zero "r0" in
  B.connect b r0 (B.or2 b r0 (B.and2 b i0 i1));
  B.output b "o" r0;
  let c = B.finalize b in
  let a = Analysis.run c in
  Alcotest.(check bool) "sticky r0 not reported constant" false
    (has_const a r0 false);
  Alcotest.(check bool) "r0 certainly not stuck at 1" false
    (has_const a r0 true)

(* refutes_pins: pins contradicting a proven constant are doomed in
   that frame; agreeing pins are not. *)
let test_refutes_pins () =
  let c = const_chain_design ~k:2 in
  let a = Analysis.run c in
  let r0 = Circuit.find c "r0" in
  Alcotest.(check bool)
    "pinning r0=1 contradicts the proven constant" true
    (Analysis.refutes_pins a [ (0, r0, true) ]);
  Alcotest.(check bool)
    "pinning r0=0 is consistent" false
    (Analysis.refutes_pins a [ (0, r0, false) ]);
  Alcotest.(check bool)
    "a later frame still refutes" true
    (Analysis.refutes_pins a [ (3, r0, true); (0, r0, false) ])

(* ------------------------------------------------------------------ *)
(* Soundness: every reported invariant holds in every reachable state  *)
(* ------------------------------------------------------------------ *)

let check_sound name circuit =
  let a = Analysis.run circuit in
  let reachable = Helpers.explicit_reachable circuit in
  let regs = circuit.Circuit.registers in
  let inputs = circuit.Circuit.inputs in
  let nins = Array.length inputs in
  Hashtbl.iter
    (fun code () ->
      let state r =
        let rec idx i = if regs.(i) = r then i else idx (i + 1) in
        code land (1 lsl idx 0) <> 0
      in
      for iv = 0 to (1 lsl nins) - 1 do
        let input s =
          let rec idx i = if inputs.(i) = s then i else idx (i + 1) in
          iv land (1 lsl idx 0) <> 0
        in
        let values = Circuit.eval circuit ~input ~state in
        if not (Analysis.holds a ~state ~values:(fun s -> values.(s))) then
          Alcotest.failf
            "%s: an invariant is violated in reachable state %d (inputs %d)"
            name code iv
      done)
    reachable;
  a

let test_soundness_zoo () =
  List.iter
    (fun (name, c) -> ignore (check_sound name c))
    [
      ("const_chain", const_chain_design ~k:4);
      ("twin", twin_design ());
      ("ring", ring_design ());
      ("arbiter", Helpers.arbiter_design ());
      ("counter3", Helpers.counter_design ~width:3 ~limit:7);
      ("deep_bug2", Helpers.deep_bug_design ~width:2);
    ]

let qcheck_soundness =
  QCheck.Test.make ~count:40
    ~name:"analysis invariants hold on all reachable states"
    (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:10)
    (fun rc ->
      ignore (check_sound "random" rc.Helpers.circuit);
      true)

(* ------------------------------------------------------------------ *)
(* merge_equivalences                                                  *)
(* ------------------------------------------------------------------ *)

(* Drive both circuits from their initial states with the same
   (deterministic pseudo-random) stimuli and compare every declared
   output cycle by cycle. Inputs are matched by name: the merge
   renumbers signals but never deletes a primary input. *)
let outputs_agree c c' ~cycles ~seed =
  let names = List.map fst c.Circuit.outputs in
  let rand = ref (seed lor 1) in
  let next_bit () =
    rand := ((!rand * 1103515245) + 12345) land 0x3FFFFFFF;
    !rand land 0x10000 <> 0
  in
  let state0 circuit r =
    match Circuit.node circuit r with
    | Circuit.Reg { init = `One; _ } -> true
    | _ -> false
  in
  let input_names = Array.map (Circuit.name c) c.Circuit.inputs in
  let rec go cycle st0 st0' =
    if cycle >= cycles then true
    else begin
      let stim = Hashtbl.create 7 in
      Array.iter (fun n -> Hashtbl.replace stim n (next_bit ())) input_names;
      let input circuit s =
        match Hashtbl.find_opt stim (Circuit.name circuit s) with
        | Some v -> v
        | None -> false
      in
      let values, next = Circuit.step c ~input:(input c) ~state:st0 in
      let values', next' = Circuit.step c' ~input:(input c') ~state:st0' in
      List.for_all
        (fun n -> values.(Circuit.output c n) = values'.(Circuit.output c' n))
        names
      && go (cycle + 1) next next'
    end
  in
  go 0 (state0 c) (state0 c')

let qcheck_merge_preserves_outputs =
  QCheck.Test.make ~count:40
    ~name:"merge_equivalences preserves observable behaviour"
    (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:12)
    (fun rc ->
      let c = rc.Helpers.circuit in
      let a = Analysis.run c in
      let c', _, _ = Opt.merge_equivalences c (Analysis.equiv_pairs a) in
      List.for_all (fun seed -> outputs_agree c c' ~cycles:16 ~seed) [ 1; 2; 3 ])

let test_merge_twin () =
  let c = twin_design () in
  let a = Analysis.run c in
  let c', lookup, applied = Opt.merge_equivalences c (Analysis.equiv_pairs a) in
  Alcotest.(check bool) "merged at least rb and rn" true (applied >= 2);
  Alcotest.(check bool)
    "fewer registers after the merge" true
    (Array.length c'.Circuit.registers < Array.length c.Circuit.registers);
  let rb = Circuit.find c "rb" in
  Alcotest.(check bool) "rb is gone from the signal map" true
    (lookup rb = None);
  Alcotest.(check bool)
    "twin outputs agree over 64 random cycles" true
    (outputs_agree c c' ~cycles:64 ~seed:7)

(* ------------------------------------------------------------------ *)
(* Consumers never see refuted candidates                              *)
(* ------------------------------------------------------------------ *)

let test_consumers_see_proved_only () =
  List.iter
    (fun (name, c) ->
      let a = Analysis.run c in
      let proved = a.Analysis.invariants in
      Alcotest.(check int)
        (name ^ ": stats.proved equals the reported invariants")
        (List.length proved) a.Analysis.stats.Analysis.proved;
      Alcotest.(check int)
        (name ^ ": equiv_pairs come from the proved Equivs only")
        (List.length
           (List.filter
              (function Analysis.Equiv _ -> true | _ -> false)
              proved))
        (List.length (Analysis.equiv_pairs a));
      List.iter
        (fun inv ->
          Alcotest.(check bool)
            (name ^ ": clause literals stay within the invariant's signals")
            true
            (List.for_all
               (fun cls ->
                 cls <> []
                 && List.for_all
                      (fun (s, _) -> List.mem s (Analysis.signals_of inv))
                      cls)
               (Analysis.clauses_of inv)))
        proved)
    [
      ("counter", Helpers.counter_design ~width:3 ~limit:7);
      ("arbiter", Helpers.arbiter_design ());
      ( "fifo",
        (Rfn_designs.Fifo.(make ~params:small ())).Rfn_designs.Fifo.circuit );
    ]

(* A hand-forged report with a *wrong* invariant would prune a
   genuinely reachable pin — exactly what must never happen, and what
   [run]'s output (validated wholesale by the soundness suite above)
   is guaranteed not to do. *)
let test_wrong_invariant_would_mislead () =
  let c = Helpers.counter_design ~width:2 ~limit:3 in
  let r0 = c.Circuit.registers.(0) in
  let forged =
    {
      Analysis.invariants = [ Analysis.Const_reg { reg = r0; value = false } ];
      stats = { Analysis.candidates = 1; proved = 1; refuted = 0; unknown = 0 };
      seconds = 0.0;
    }
  in
  Alcotest.(check bool)
    "the forged fact refutes a reachable pin" true
    (Analysis.refutes_pins forged [ (1, r0, true) ]);
  let real = Analysis.run c in
  Alcotest.(check bool)
    "the proved facts keep the reachable pin" false
    (Analysis.refutes_pins real [ (1, r0, true) ])

(* ------------------------------------------------------------------ *)
(* Engine differential: --analyze must not change verdicts or traces   *)
(* ------------------------------------------------------------------ *)

let zoo () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let fc = fifo.Rfn_designs.Fifo.circuit in
  [
    ("const_chain/bad", const_chain_design ~k:6, "bad");
    ("ring/collide", ring_design (), "collide");
    ("arbiter/bad", Helpers.arbiter_design (), "bad");
    ("counter3/at_limit", Helpers.counter_design ~width:3 ~limit:7, "at_limit");
    ("deep_bug3/bad", Helpers.deep_bug_design ~width:3, "bad");
    ("fifo_small/psh_hf", fc, fifo.Rfn_designs.Fifo.psh_hf.Property.name);
    ("fifo_small/psh_full", fc, fifo.Rfn_designs.Fifo.psh_full.Property.name);
  ]

let trace_repr c t = Format.asprintf "%a" (Trace.pp ~names:(Circuit.name c)) t

(* [mk_config] builds a fresh config per run so a chaos injection hook
   (which faults each site once per hook) is not half-consumed by the
   first run. Injection defaults to off, not to RFN_INJECT_FAULTS, so
   the plain differential stays deterministic under the chaos CI job. *)
let check_parity name mk_config circuit prop =
  let run analyze =
    let config = { (mk_config ()) with Rfn.analyze } in
    fst (Rfn.verify ~config circuit prop)
  in
  let off = run false in
  let on = run true in
  match (off, on) with
  | Rfn.Proved, Rfn.Proved -> ()
  | Rfn.Falsified t0, Rfn.Falsified t1 ->
    Alcotest.(check string)
      (name ^ ": identical counterexample")
      (trace_repr circuit t0) (trace_repr circuit t1)
  | Rfn.Aborted _, Rfn.Aborted _ -> ()
  | o0, o1 ->
    let show = function
      | Rfn.Proved -> "Proved"
      | Rfn.Falsified t -> Printf.sprintf "Falsified(len %d)" (Trace.length t)
      | Rfn.Aborted f -> "Aborted: " ^ Rfn_failure.to_string f
    in
    Alcotest.failf "%s: verdicts diverge: off=%s on=%s" name (show o0)
      (show o1)

let base_config ?(inject = Some (fun _ -> None)) ~engines () =
  { Rfn.default_config with Rfn.engines; inject; max_iterations = 32 }

let test_verify_parity_engines () =
  List.iter
    (fun engines ->
      List.iter
        (fun (name, circuit, out) ->
          let prop = Property.of_output circuit out in
          check_parity
            (Printf.sprintf "%s[%s]" name (Rfn.engines_to_string engines))
            (fun () -> base_config ~engines ())
            circuit prop)
        (zoo ()))
    [ Rfn.Atpg_only; Rfn.Sat_only; Rfn.Portfolio ]

let test_verify_parity_chaos () =
  (* all-site fault injection: the supervisor ladders recover and the
     analyze differential still holds *)
  List.iter
    (fun (name, circuit, out) ->
      let prop = Property.of_output circuit out in
      check_parity (name ^ "[chaos]")
        (fun () ->
          base_config
            ~inject:(Supervisor.inject_of_spec "all")
            ~engines:Rfn.Portfolio ())
        circuit prop)
    [
      ("arbiter/bad", Helpers.arbiter_design (), "bad");
      ("deep_bug2/bad", Helpers.deep_bug_design ~width:2, "bad");
    ]

let test_sat_bmc_with_invariants () =
  List.iter
    (fun (name, circuit, out) ->
      let bad = Circuit.output circuit out in
      let a = Analysis.run circuit in
      let plain, _ = Sat_bmc.falsify circuit ~bad ~max_depth:10 in
      let with_inv, _ =
        Sat_bmc.falsify ~analysis:a circuit ~bad ~max_depth:10
      in
      match (plain, with_inv) with
      | Bmc.Found t0, Bmc.Found t1 ->
        Alcotest.(check int)
          (name ^ ": same counterexample depth with invariant clauses")
          (Trace.length t0) (Trace.length t1)
      | Bmc.Exhausted, Bmc.Exhausted -> ()
      | Bmc.Gave_up _, Bmc.Gave_up _ -> ()
      | _ -> Alcotest.failf "%s: Sat_bmc outcome changed under invariants" name)
    (zoo ())

let test_guided_prefilter_short_circuits () =
  let c = const_chain_design ~k:3 in
  let bad = Circuit.output c "bad" in
  let a = Analysis.run c in
  let r0 = Circuit.find c "r0" in
  (* guidance pinning r0=1 contradicts the proven stuck-at-0 *)
  let doomed =
    Trace.make
      ~states:[| Cube.of_list [ (r0, true) ] |]
      ~inputs:[| Cube.empty |]
  in
  (match Concretize.guided ~analysis:a c ~bad ~abstract_trace:doomed with
  | Concretize.Not_found_here, stats ->
    Alcotest.(check int) "no search happened" 0 stats.Rfn_atpg.Atpg.decisions
  | _ -> Alcotest.fail "doomed guidance should answer Not_found_here");
  (* consistent guidance searches normally (and finds nothing: bad
     needs r0=1) *)
  let fine =
    Trace.make
      ~states:[| Cube.of_list [ (r0, false) ] |]
      ~inputs:[| Cube.empty |]
  in
  match Concretize.guided ~analysis:a c ~bad ~abstract_trace:fine with
  | Concretize.Not_found_here, _ -> ()
  | _ -> Alcotest.fail "consistent guidance searches normally"

(* The bench differential's claim, asserted as a test: on the constant
   chain the invariant care set closes the abstract fixpoint without
   any refinement, so --analyze takes strictly fewer CEGAR
   iterations. *)
let test_const_chain_fewer_iterations () =
  let c = const_chain_design ~k:6 in
  let prop = Property.of_output c "bad" in
  let run analyze =
    match
      Rfn.verify
        ~config:{ (base_config ~engines:Rfn.Atpg_only ()) with Rfn.analyze }
        c prop
    with
    | Rfn.Proved, stats -> List.length stats.Rfn.iterations
    | _ -> Alcotest.fail "const chain must prove"
  in
  let off = run false and on = run true in
  Alcotest.(check bool)
    (Printf.sprintf "fewer iterations with analysis (%d < %d)" on off)
    true (on < off)

let tests =
  [
    Alcotest.test_case "constant chain proved" `Quick test_const_chain;
    Alcotest.test_case "twin equivalences proved" `Quick test_twin_equiv;
    Alcotest.test_case "token ring one-hot" `Quick test_ring_one_hot;
    Alcotest.test_case "non-inductive candidate dropped" `Quick
      test_unproven_dropped;
    Alcotest.test_case "refutes_pins" `Quick test_refutes_pins;
    Alcotest.test_case "soundness on the zoo" `Quick test_soundness_zoo;
    QCheck_alcotest.to_alcotest qcheck_soundness;
    QCheck_alcotest.to_alcotest qcheck_merge_preserves_outputs;
    Alcotest.test_case "merge on the twin design" `Quick test_merge_twin;
    Alcotest.test_case "consumers see proved facts only" `Quick
      test_consumers_see_proved_only;
    Alcotest.test_case "a leaked refuted fact would mislead" `Quick
      test_wrong_invariant_would_mislead;
    Alcotest.test_case "verify parity across engines" `Quick
      test_verify_parity_engines;
    Alcotest.test_case "verify parity under chaos" `Quick
      test_verify_parity_chaos;
    Alcotest.test_case "sat-bmc parity with invariant clauses" `Quick
      test_sat_bmc_with_invariants;
    Alcotest.test_case "guided pre-filter short-circuit" `Quick
      test_guided_prefilter_short_circuits;
    Alcotest.test_case "const chain: strictly fewer iterations" `Quick
      test_const_chain_fewer_iterations;
  ]

let () = Alcotest.run "analysis" [ ("analysis", tests) ]
