(* Unreachable-coverage-state analysis vs exact enumeration. *)

open Rfn_circuit
module Coverage = Rfn_core.Coverage
module Rfn = Rfn_core.Rfn
module B = Circuit.Builder

(* Exact coverage-state reachability by explicit search. *)
let exact_reachable_codes circuit coverage =
  let reachable = Helpers.explicit_reachable circuit in
  let regs = circuit.Circuit.registers in
  let idx x =
    let rec go i = if regs.(i) = x then i else go (i + 1) in
    go 0
  in
  let codes = Hashtbl.create 32 in
  Hashtbl.iter
    (fun code () ->
      let value r = code land (1 lsl idx r) <> 0 in
      Hashtbl.replace codes (Coverage.state_code ~coverage value) ())
    reachable;
  codes

(* One-hot ring of 3 registers: of 8 coverage states only 3 reachable. *)
let ring_design () =
  let b = B.create () in
  let advance = B.input b "advance" in
  let r0 = B.reg b ~init:`One "r0" in
  let r1 = B.reg b "r1" in
  let r2 = B.reg b "r2" in
  B.connect b r0 (B.mux b advance r0 r2);
  B.connect b r1 (B.mux b advance r1 r0);
  B.connect b r2 (B.mux b advance r2 r1);
  B.output b "r0" r0;
  (B.finalize b, [ r0; r1; r2 ])

let config budget =
  {
    Rfn.default_config with
    Rfn.max_seconds = Some budget;
    max_iterations = 200;
    node_limit = 500_000;
    mc_max_steps = 500;
  }

let test_ring_exact () =
  let c, coverage = ring_design () in
  let report = Coverage.rfn_analysis ~config:(config 20.0) c ~coverage in
  Alcotest.(check int) "total" 8 report.Coverage.total;
  Alcotest.(check int) "five unreachable" 5 report.Coverage.unreachable;
  Alcotest.(check int) "nothing unknown" 0 report.Coverage.unknown;
  (* the status array matches exact reachability *)
  let exact = exact_reachable_codes c coverage in
  Array.iteri
    (fun code status ->
      match status with
      | Coverage.Unreachable ->
        Alcotest.(check bool)
          (Printf.sprintf "code %d truly unreachable" code)
          false (Hashtbl.mem exact code)
      | Coverage.Reachable ->
        Alcotest.(check bool)
          (Printf.sprintf "code %d truly reachable" code)
          true (Hashtbl.mem exact code)
      | Coverage.Unknown -> ())
    report.Coverage.status

let test_bfs_ring () =
  let c, coverage = ring_design () in
  let report = Coverage.bfs_analysis ~k:3 c ~coverage in
  Alcotest.(check int) "bfs finds the same five" 5 report.Coverage.unreachable

let coverage_sound_random =
  (* soundness on random circuits: states marked Unreachable must not
     be reachable explicitly, Reachable ones must be *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"coverage verdicts sound (random)"
       (Helpers.arbitrary_circuit ~nins:2 ~nregs:4 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let coverage = Array.to_list c.Circuit.registers in
         let coverage = List.filteri (fun i _ -> i < 3) coverage in
         let report = Coverage.rfn_analysis ~config:(config 10.0) c ~coverage in
         let exact = exact_reachable_codes c coverage in
         let ok = ref true in
         Array.iteri
           (fun code status ->
             match status with
             | Coverage.Unreachable ->
               if Hashtbl.mem exact code then ok := false
             | Coverage.Reachable ->
               if not (Hashtbl.mem exact code) then ok := false
             | Coverage.Unknown -> ())
           report.Coverage.status;
         !ok))

let bfs_sound_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"bfs verdicts sound (random)"
       (Helpers.arbitrary_circuit ~nins:2 ~nregs:4 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let coverage = Array.to_list c.Circuit.registers in
         let coverage = List.filteri (fun i _ -> i < 3) coverage in
         let report = Coverage.bfs_analysis ~k:2 c ~coverage in
         let exact = exact_reachable_codes c coverage in
         let ok = ref true in
         Array.iteri
           (fun code status ->
             if status = Coverage.Unreachable && Hashtbl.mem exact code then
               ok := false)
           report.Coverage.status;
         !ok))

let test_rfn_at_least_bfs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"rfn finds at least as many as bfs"
       (Helpers.arbitrary_circuit ~nins:2 ~nregs:4 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let coverage = Array.to_list c.Circuit.registers in
         let coverage = List.filteri (fun i _ -> i < 3) coverage in
         let rfn = Coverage.rfn_analysis ~config:(config 10.0) c ~coverage in
         let bfs = Coverage.bfs_analysis ~k:2 c ~coverage in
         rfn.Coverage.unreachable >= bfs.Coverage.unreachable))

let test_state_code () =
  let code = Coverage.state_code ~coverage:[ 10; 20; 30 ] (fun s -> s = 20) in
  Alcotest.(check int) "bit 1 set" 2 code;
  let code = Coverage.state_code ~coverage:[ 10; 20; 30 ] (fun _ -> true) in
  Alcotest.(check int) "all set" 7 code

let test_validation () =
  let c, coverage = ring_design () in
  (try
     ignore (Coverage.rfn_analysis c ~coverage:[]);
     Alcotest.fail "empty coverage rejected"
   with Invalid_argument _ -> ());
  let inp = Circuit.find c "advance" in
  try
    ignore (Coverage.rfn_analysis c ~coverage:(inp :: coverage));
    Alcotest.fail "non-register coverage rejected"
  with Invalid_argument _ -> ()

let tests =
  [
    Alcotest.test_case "one-hot ring, exact" `Quick test_ring_exact;
    Alcotest.test_case "bfs on the ring" `Quick test_bfs_ring;
    coverage_sound_random;
    bfs_sound_random;
    test_rfn_at_least_bfs;
    Alcotest.test_case "state_code" `Quick test_state_code;
    Alcotest.test_case "argument validation" `Quick test_validation;
  ]

let () = Alcotest.run "coverage" [ ("coverage", tests) ]
