(* Shared test utilities: tiny hand-built designs, random circuit
   generation for property tests, and brute-force reference engines. *)

open Rfn_circuit
module B = Circuit.Builder

(* ------------------------------------------------------------------ *)
(* Reference engines                                                   *)
(* ------------------------------------------------------------------ *)

(* Explicit-state forward reachability by brute force over all input
   valuations; only usable for a handful of registers and inputs. *)
let explicit_reachable circuit =
  let regs = circuit.Circuit.registers in
  let inputs = circuit.Circuit.inputs in
  let nregs = Array.length regs and nins = Array.length inputs in
  assert (nregs <= 16 && nins <= 12);
  let state_bits values =
    let code = ref 0 in
    Array.iteri (fun i r -> if values r then code := !code lor (1 lsl i)) regs;
    !code
  in
  let of_code code r =
    let rec idx i = if regs.(i) = r then i else idx (i + 1) in
    code land (1 lsl idx 0) <> 0
  in
  let initial_codes =
    (* Free-init registers: enumerate both polarities. *)
    let rec expand i acc =
      if i >= nregs then acc
      else
        let vals =
          match Circuit.node circuit regs.(i) with
          | Circuit.Reg { init = `Zero; _ } -> [ false ]
          | Circuit.Reg { init = `One; _ } -> [ true ]
          | Circuit.Reg { init = `Free; _ } -> [ false; true ]
          | _ -> assert false
        in
        expand (i + 1)
          (List.concat_map
             (fun code ->
               List.map
                 (fun v -> if v then code lor (1 lsl i) else code)
                 vals)
             acc)
    in
    expand 0 [ 0 ]
  in
  let seen = Hashtbl.create 997 in
  let q = Queue.create () in
  List.iter
    (fun code ->
      if not (Hashtbl.mem seen code) then begin
        Hashtbl.add seen code ();
        Queue.add code q
      end)
    initial_codes;
  while not (Queue.is_empty q) do
    let code = Queue.pop q in
    for iv = 0 to (1 lsl nins) - 1 do
      let input s =
        let rec idx i = if inputs.(i) = s then i else idx (i + 1) in
        iv land (1 lsl idx 0) <> 0
      in
      let _, next = Circuit.step circuit ~input ~state:(of_code code) in
      let code' = state_bits next in
      if not (Hashtbl.mem seen code') then begin
        Hashtbl.add seen code' ();
        Queue.add code' q
      end
    done
  done;
  seen

(* Is some reachable state/input combination driving [bad] to 1? *)
let explicit_violates circuit ~bad =
  let reachable = explicit_reachable circuit in
  let inputs = circuit.Circuit.inputs in
  let regs = circuit.Circuit.registers in
  let nins = Array.length inputs in
  let hit = ref false in
  Hashtbl.iter
    (fun code () ->
      if not !hit then
        for iv = 0 to (1 lsl nins) - 1 do
          let input s =
            let rec idx i = if inputs.(i) = s then i else idx (i + 1) in
            iv land (1 lsl idx 0) <> 0
          in
          let state r =
            let rec idx i = if regs.(i) = r then i else idx (i + 1) in
            code land (1 lsl idx 0) <> 0
          in
          let values = Circuit.eval circuit ~input ~state in
          if values.(bad) then hit := true
        done)
    reachable;
  !hit

(* ------------------------------------------------------------------ *)
(* Hand-built designs                                                  *)
(* ------------------------------------------------------------------ *)

(* A w-bit counter with enable; outputs "at_limit" asserted when the
   counter equals [limit]. *)
let counter_design ~width ~limit =
  let b = B.create () in
  let enable = B.input b "enable" in
  let count = Rtl.counter b ~name:"cnt" ~width ~enable () in
  let at_limit = Rtl.eq_const b count limit in
  B.output b "at_limit" at_limit;
  B.finalize b

(* Mutual exclusion: a two-client round-robin arbiter; bad asserts when
   both grants are high. The property is True by construction. *)
let arbiter_design () =
  let b = B.create () in
  let req0 = B.input b "req0" and req1 = B.input b "req1" in
  let turn = B.reg b "turn" in
  let gnt0 = B.and2 b req0 (B.or2 b (B.not_ b req1) (B.not_ b turn)) in
  let gnt1 = B.and2 b req1 (B.not_ b gnt0) in
  B.connect b turn (B.mux b (B.or2 b gnt0 gnt1) turn gnt1);
  let g0 = B.reg_of b "g0_reg" gnt0 in
  let g1 = B.reg_of b "g1_reg" gnt1 in
  let bad = B.and2 b g0 g1 in
  B.output b "bad" bad;
  B.output b "g0" g0;
  B.output b "g1" g1;
  B.finalize b

(* A design with a deep bug: bad asserts when an input-controlled
   counter reaches its maximum and a handshake register chain is
   primed. The shortest violation takes 2^width + O(1) cycles... with
   enable forced, exactly reachable. *)
let deep_bug_design ~width =
  let b = B.create () in
  let go = B.input b "go" in
  let cnt = Rtl.counter b ~name:"c" ~width ~enable:go () in
  let full = Rtl.eq_const b cnt ((1 lsl width) - 1) in
  let armed = B.reg b "armed" in
  B.connect b armed (B.or2 b armed (B.and2 b full go)) ;
  let bad = B.reg_of b "bad_reg" (B.and2 b armed full) in
  B.output b "bad" bad;
  B.finalize b

(* ------------------------------------------------------------------ *)
(* Random circuits (for qcheck)                                        *)
(* ------------------------------------------------------------------ *)

type rand_circuit = {
  circuit : Circuit.t;
  out : int;  (* a distinguished output signal *)
}

(* A random sequential circuit with [nins] inputs, [nregs] registers
   and [ngates] random gates; every register and the output are wired
   to random existing signals. *)
let random_circuit_gen ~nins ~nregs ~ngates st =
  let b = B.create () in
  let pool = ref [] in
  let add s = pool := s :: !pool in
  for i = 0 to nins - 1 do
    add (B.input b (Printf.sprintf "i%d" i))
  done;
  let regs = ref [] in
  for i = 0 to nregs - 1 do
    let init =
      match QCheck.Gen.int_bound 2 st with
      | 0 -> `Zero
      | 1 -> `One
      | _ -> `Zero
    in
    let r = B.reg b ~init (Printf.sprintf "r%d" i) in
    regs := r :: !regs;
    add r
  done;
  let pick st =
    let l = !pool in
    List.nth l (QCheck.Gen.int_bound (List.length l - 1) st)
  in
  for _ = 1 to ngates do
    let a = pick st and c = pick st in
    let g =
      match QCheck.Gen.int_bound 6 st with
      | 0 -> B.and2 b a c
      | 1 -> B.or2 b a c
      | 2 -> B.xor2 b a c
      | 3 -> B.not_ b a
      | 4 -> B.gate b Gate.Nand [| a; c |]
      | 5 -> B.gate b Gate.Nor [| a; c |]
      | _ -> B.mux b a c (pick st)
    in
    add g
  done;
  List.iter (fun r -> B.connect b r (pick st)) !regs;
  let out = pick st in
  B.output b "out" out;
  { circuit = B.finalize b; out }

let arbitrary_circuit ~nins ~nregs ~ngates =
  QCheck.make
    (random_circuit_gen ~nins ~nregs ~ngates)
    ~print:(fun rc -> Bench_io.to_string rc.circuit)

(* Evaluate a combinational signal under integer-coded input/state. *)
let eval_with circuit ~ivec ~svec s =
  let inputs = circuit.Circuit.inputs and regs = circuit.Circuit.registers in
  let input x =
    let rec idx i = if inputs.(i) = x then i else idx (i + 1) in
    ivec land (1 lsl idx 0) <> 0
  in
  let state x =
    let rec idx i = if regs.(i) = x then i else idx (i + 1) in
    svec land (1 lsl idx 0) <> 0
  in
  (Circuit.eval circuit ~input ~state).(s)
