(* Process-isolated racing and crash-safe resume.

   Three layers under test: the generic worker pool (fork, JSONL
   protocol, watchdog, fault injection), the checkpoint format, and the
   CEGAR driver's use of both — racing must agree with the sequential
   ladder on verdicts, a murdered worker must degrade to the fallback
   rungs without changing the answer, and a killed run must resume from
   its last completed refinement instead of restarting. *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Supervisor = Rfn_core.Supervisor
module Proc = Rfn_proc.Proc
module Codec = Rfn_proc.Codec
module Checkpoint = Rfn_proc.Checkpoint
module Json = Rfn_obs.Json
module Telemetry = Rfn_obs.Telemetry
module Provenance = Rfn_obs.Provenance
module Sim3v = Rfn_sim3v.Sim3v
module F = Rfn_failure

let counter name = Telemetry.counter_value (Telemetry.counter name)

(* A fast-killing watchdog for the hang test: 20 ms heartbeats, 0.2 s
   of tolerated silence, 0.1 s between SIGTERM and SIGKILL. *)
let quick_policy =
  {
    Proc.default_policy with
    Proc.enabled = true;
    heartbeat_interval = 0.02;
    heartbeat_grace = 0.2;
    kill_grace = 0.1;
  }

(* ------------------------------------------------------------------ *)
(* Wire codecs                                                         *)
(* ------------------------------------------------------------------ *)

let test_cube_roundtrip () =
  let c = Cube.of_list [ (3, true); (7, false); (11, true) ] in
  (match Codec.cube_of_json (Codec.cube_to_json c) with
  | Some c' ->
    Alcotest.(check (list (pair int bool)))
      "cube round-trips" (Cube.to_list c) (Cube.to_list c')
  | None -> Alcotest.fail "cube failed to decode");
  match Codec.cube_of_json (Codec.cube_to_json Cube.empty) with
  | Some c' -> Alcotest.(check bool) "empty cube" true (Cube.is_empty c')
  | None -> Alcotest.fail "empty cube failed to decode"

let test_cube_decoder_total () =
  let bad =
    [
      (* a contradictory cube: signal 3 both true and false *)
      Json.List
        [
          Json.List [ Json.Int 3; Json.Bool true ];
          Json.List [ Json.Int 3; Json.Bool false ];
        ];
      (* wrong arity *)
      Json.List [ Json.List [ Json.Int 3 ] ];
      (* wrong element types *)
      Json.List [ Json.List [ Json.Str "x"; Json.Bool true ] ];
      (* not a list at all *)
      Json.Str "cube";
    ]
  in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        "malformed cube decodes to None" true
        (Codec.cube_of_json j = None))
    bad

let test_trace_roundtrip () =
  let cube l = Cube.of_list l in
  let t =
    Trace.make
      ~states:[| cube [ (1, false) ]; cube [ (1, true); (2, false) ] |]
      ~inputs:[| cube [ (5, true) ] |]
  in
  match Codec.trace_of_json (Codec.trace_to_json t) with
  | Some t' ->
    Alcotest.(check int) "same length" (Trace.length t) (Trace.length t');
    Array.iteri
      (fun i s ->
        Alcotest.(check (list (pair int bool)))
          "state cubes agree" (Cube.to_list s)
          (Cube.to_list t'.Trace.states.(i)))
      t.Trace.states
  | None -> Alcotest.fail "trace failed to decode"

let test_trace_decoder_total () =
  let cube = Codec.cube_to_json (Cube.of_list [ (1, true) ]) in
  let bad =
    [
      (* invariant violation: 1 state needs 0 or 1 input cubes *)
      Json.Obj
        [
          ("states", Json.List [ cube ]);
          ("inputs", Json.List [ cube; cube; cube ]);
        ];
      (* empty trace *)
      Json.Obj [ ("states", Json.List []); ("inputs", Json.List []) ];
      (* missing field *)
      Json.Obj [ ("states", Json.List [ cube ]) ];
    ]
  in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        "malformed trace decodes to None" true
        (Codec.trace_of_json j = None))
    bad

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let sample_provenance =
  {
    Provenance.iter = 1;
    regs_before = 2;
    regs_after = 4;
    model_inputs = 6;
    fixpoint_steps = 5;
    trace_depth = Some 3;
    cut_size = None;
    cubes = 8;
    guidance = 1;
    engine = "atpg";
    concretize = "not-found";
    promoted = [ "r1"; "r2" ];
    candidates = 4;
    retries = 0;
    fallbacks = 0;
    injected = 0;
    worker_failures = 1;
    bdd_nodes = 100;
    bdd_peak = 200;
    sat_learned = 0;
    backtracks = 3;
    seconds = 0.5;
    outcome = "refined";
  }

let temp_checkpoint () =
  let file = Filename.temp_file "rfn_ck" ".json" in
  Sys.remove file;
  file

let test_checkpoint_roundtrip () =
  let file = temp_checkpoint () in
  let ck =
    Checkpoint.make ~netlist_hash:"abc123" ~property:"bad" ~iteration:4
      ~seconds_used:1.25 ~escalation:8
      ~regs:[ "cnt_0"; "cnt_1"; "full" ]
      ~provenance:[ sample_provenance ] ()
  in
  Checkpoint.save file ck;
  (match Checkpoint.load file with
  | Ok ck' ->
    Alcotest.(check bool) "round-trips exactly" true (ck' = ck);
    Alcotest.(check bool)
      "validates against its own run" true
      (Checkpoint.validate ck' ~netlist_hash:"abc123" ~property:"bad" = Ok ())
  | Error e -> Alcotest.fail ("load failed: " ^ e));
  Sys.remove file

let test_checkpoint_validation_rejects () =
  let ck =
    Checkpoint.make ~netlist_hash:"abc123" ~property:"bad" ~iteration:1
      ~seconds_used:0. ~escalation:1 ~regs:[] ~provenance:[] ()
  in
  let rejected = function Error _ -> true | Ok () -> false in
  Alcotest.(check bool)
    "stale netlist rejected" true
    (rejected (Checkpoint.validate ck ~netlist_hash:"other" ~property:"bad"));
  Alcotest.(check bool)
    "wrong property rejected" true
    (rejected (Checkpoint.validate ck ~netlist_hash:"abc123" ~property:"ok"))

let test_checkpoint_load_errors () =
  let fails file =
    match Checkpoint.load file with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool)
    "missing file is an Error" true
    (fails "/nonexistent/rfn_ck.json");
  let file = Filename.temp_file "rfn_ck" ".json" in
  let put s =
    let oc = open_out file in
    output_string oc s;
    close_out oc
  in
  put "{ torn json";
  Alcotest.(check bool) "torn JSON is an Error" true (fails file);
  put "{\"version\": 999}";
  Alcotest.(check bool) "unknown version is an Error" true (fails file);
  Sys.remove file

let test_hash_discriminates () =
  let a = Checkpoint.hash_circuit (Helpers.counter_design ~width:3 ~limit:7) in
  let a' = Checkpoint.hash_circuit (Helpers.counter_design ~width:3 ~limit:7) in
  let b = Checkpoint.hash_circuit (Helpers.counter_design ~width:4 ~limit:7) in
  Alcotest.(check string) "stable across rebuilds" a a';
  Alcotest.(check bool) "differs across designs" true (a <> b)

(* ------------------------------------------------------------------ *)
(* The worker pool                                                     *)
(* ------------------------------------------------------------------ *)

let payload v = Json.Obj [ ("v", Json.Int v) ]
let entrant name v = { Proc.name; run = (fun () -> payload v) }
let classify_all verdict _ = verdict

let test_race_single_winner () =
  let spawned0 = counter "proc.workers_spawned" in
  (match
     Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Win)
       [ entrant "solo" 42 ]
   with
  | Proc.Winner ("solo", p) ->
    Alcotest.(check bool)
      "payload crossed the pipe intact" true
      (Option.bind (Json.member "v" p) Json.to_int = Some 42)
  | _ -> Alcotest.fail "single entrant should win its own race");
  if Proc.available () then
    Alcotest.(check bool)
      "a worker was actually forked" true
      (counter "proc.workers_spawned" > spawned0)

let test_race_hold_is_last_resort () =
  match
    Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Hold)
      [ entrant "a" 1; entrant "b" 2 ]
  with
  | Proc.Held (_, p) ->
    Alcotest.(check bool)
      "held payload is one of the entrants'" true
      (match Option.bind (Json.member "v" p) Json.to_int with
      | Some (1 | 2) -> true
      | _ -> false)
  | Proc.Winner _ -> Alcotest.fail "nobody should win a race of give-ups"
  | Proc.All_failed _ -> Alcotest.fail "give-ups are not failures"

let test_race_reject_is_garbage () =
  match
    Proc.race ~policy:quick_policy
      ~classify:(classify_all (Proc.Reject "not credible"))
      [ entrant "solo" 1 ]
  with
  | Proc.All_failed [ f ] ->
    Alcotest.(check string) "entrant named" "solo" f.Proc.entrant;
    Alcotest.(check bool)
      "rejection counts as protocol garbage" true
      (f.Proc.resource = F.Worker_garbage)
  | _ -> Alcotest.fail "a rejected payload must surface as All_failed"

let test_injected_kill_loses_the_race () =
  let failures0 = counter "proc.worker_failures" in
  (* The survivor answers slowly so the victim's death is observed
     before the race settles — a loser cancelled after the win is not
     a failure, and this test is about the failure accounting. *)
  let slow_survivor =
    {
      Proc.name = "survivor";
      run =
        (fun () ->
          Unix.sleepf 0.3;
          payload 2);
    }
  in
  (match
     Proc.with_injected Proc.Kill (fun () ->
         Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Win)
           [ entrant "victim" 1; slow_survivor ])
   with
  | Proc.Winner ("survivor", _) -> ()
  | Proc.Winner (name, _) ->
    Alcotest.failf "the killed worker %s cannot win" name
  | Proc.Held _ | Proc.All_failed _ ->
    Alcotest.fail "the surviving entrant should still win");
  Alcotest.(check bool)
    "the murder was recorded" true
    (counter "proc.worker_failures" > failures0)

let test_injected_garbage_is_structured () =
  match
    Proc.with_injected Proc.Garbage (fun () ->
        Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Win)
          [ entrant "solo" 1 ])
  with
  | Proc.All_failed [ f ] ->
    Alcotest.(check bool)
      "protocol violation is Worker_garbage" true
      (f.Proc.resource = F.Worker_garbage)
  | _ -> Alcotest.fail "a garbage-emitting worker must fail structurally"

let test_injected_hang_hits_the_watchdog () =
  match
    Proc.with_injected Proc.Hang (fun () ->
        Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Win)
          [ entrant "solo" 1 ])
  with
  | Proc.All_failed [ f ] ->
    (* forked: the watchdog times the silence out; sequential
       fallback: the hang is simulated as the same timeout *)
    Alcotest.(check bool)
      "silence becomes Worker_timeout" true
      (f.Proc.resource = F.Worker_timeout)
  | _ -> Alcotest.fail "a hung worker must fail structurally"

let test_worker_exception_is_crash () =
  match
    Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Win)
      [ { Proc.name = "thrower"; run = (fun () -> failwith "engine bug") } ]
  with
  | Proc.All_failed [ f ] ->
    Alcotest.(check bool)
      "an engine exception is Worker_crashed" true
      (f.Proc.resource = F.Worker_crashed)
  | _ -> Alcotest.fail "a throwing entrant must fail structurally"

let test_race_rejects_empty () =
  match
    Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Win) []
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "an empty race must be rejected"

(* ------------------------------------------------------------------ *)
(* Racing CEGAR vs the sequential ladder                               *)
(* ------------------------------------------------------------------ *)

(* Injection pinned off so the differentials stay meaningful under the
   chaos CI job (which sets RFN_INJECT_FAULTS for the whole suite). *)
let config ?(inject = Some (fun _ -> None)) ?(race = false)
    ?(engines = Rfn.Atpg_only) ?checkpoint ?(resume = false)
    ?(max_iterations = 32) () =
  {
    Rfn.default_config with
    Rfn.max_iterations;
    node_limit = 500_000;
    mc_max_steps = 200;
    inject;
    engines;
    proc = { Proc.default_policy with Proc.enabled = race };
    checkpoint;
    resume;
  }

let zoo () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let fc = fifo.Rfn_designs.Fifo.circuit in
  let of_output name c out = (name, c, Property.of_output c out) in
  [
    of_output "arbiter/bad" (Helpers.arbiter_design ()) "bad";
    of_output "counter3/at_limit"
      (Helpers.counter_design ~width:3 ~limit:7)
      "at_limit";
    of_output "deep_bug3/bad" (Helpers.deep_bug_design ~width:3) "bad";
    ("fifo_small/psh_hf", fc, fifo.Rfn_designs.Fifo.psh_hf);
    ("fifo_small/psh_full", fc, fifo.Rfn_designs.Fifo.psh_full);
  ]

(* Racing introduces scheduling nondeterminism, so the differential
   compares verdicts, not traces: a Falsified trace only has to replay
   on the real design, not equal the sequential one's. *)
let check_verdicts name circuit prop (outcome_race, outcome_seq) =
  match (outcome_race, outcome_seq) with
  | Rfn.Proved, Rfn.Proved -> ()
  | Rfn.Falsified tr, Rfn.Falsified _ ->
    Alcotest.(check bool)
      (name ^ ": racing counterexample replays concretely")
      true
      (Sim3v.replay_concrete circuit tr ~bad:prop.Property.bad)
  | Rfn.Aborted fr, Rfn.Aborted fs ->
    Alcotest.(check string)
      (name ^ ": identical aborts")
      (F.to_string fs) (F.to_string fr)
  | _ ->
    let show = function
      | Rfn.Proved -> "proved"
      | Rfn.Falsified _ -> "falsified"
      | Rfn.Aborted _ -> "aborted"
    in
    Alcotest.failf "%s: verdicts diverge (racing %s, sequential %s)" name
      (show outcome_race) (show outcome_seq)

let test_racing_matches_sequential_zoo () =
  (* Portfolio engines so the races have two genuine entrants, against
     the sequential portfolio ladder of PR 4. *)
  let races0 = counter "race.runs" in
  List.iter
    (fun (name, circuit, prop) ->
      let run ~race =
        fst
          (Rfn.verify
             ~config:(config ~race ~engines:Rfn.Portfolio ())
             circuit prop)
      in
      check_verdicts name circuit prop (run ~race:true, run ~race:false))
    (zoo ());
  Alcotest.(check bool)
    "races actually ran" true
    (counter "race.runs" > races0)

let test_worker_kill_mid_run () =
  (* SIGKILL the first concretization worker: the supervisor must
     absorb the crash (fallback to the in-process rungs or to the
     surviving entrant) and reach the same verdict as an undisturbed
     sequential run — and the provenance must confess the murder. *)
  let name, circuit, prop =
    ("deep_bug3/bad", Helpers.deep_bug_design ~width:3, ())
  in
  ignore prop;
  let prop = Property.of_output circuit "bad" in
  let baseline = fst (Rfn.verify ~config:(config ()) circuit prop) in
  let chaos_inject = Supervisor.inject_of_spec "worker-kill" in
  let outcome, stats =
    Rfn.verify ~config:(config ~inject:chaos_inject ~race:true ()) circuit prop
  in
  check_verdicts name circuit prop (outcome, baseline);
  Alcotest.(check bool)
    "provenance records the worker failure" true
    (List.exists
       (fun p -> p.Provenance.worker_failures > 0)
       stats.Rfn.provenance)

let test_checkpoint_resume_differential () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let circuit = fifo.Rfn_designs.Fifo.circuit in
  let prop = fifo.Rfn_designs.Fifo.psh_hf in
  let file = temp_checkpoint () in
  (* Reference: uninterrupted run. fifo/psh_hf needs >1 iteration, so
     killing after the first leaves real progress behind. *)
  let ref_outcome, ref_stats = Rfn.verify ~config:(config ()) circuit prop in
  let ref_iters = List.length ref_stats.Rfn.iterations in
  Alcotest.(check bool) "reference run refines" true (ref_iters > 1);
  (* "Kill" the run after one iteration: the iteration cap aborts it,
     which keeps the checkpoint on disk. *)
  (match
     Rfn.verify
       ~config:(config ~checkpoint:file ~max_iterations:1 ())
       circuit prop
   with
  | Rfn.Aborted f, _ ->
    Alcotest.(check bool) "killed on the cap" true (f.F.resource = F.Iterations)
  | _ -> Alcotest.fail "one iteration cannot settle fifo/psh_hf");
  Alcotest.(check bool) "abort kept the checkpoint" true (Sys.file_exists file);
  (* Resume: same verdict, iteration numbering continues, and strictly
     fewer iterations run in this process than the reference needed. *)
  let outcome, stats =
    Rfn.verify ~config:(config ~checkpoint:file ~resume:true ()) circuit prop
  in
  (match (outcome, ref_outcome) with
  | Rfn.Proved, Rfn.Proved -> ()
  | _ -> Alcotest.fail "resumed verdict diverges from the reference");
  Alcotest.(check bool)
    "resume skipped completed iterations" true
    (stats.Rfn.resumed_iterations > 0);
  Alcotest.(check bool)
    "strictly fewer iterations than a fresh run" true
    (List.length stats.Rfn.iterations < ref_iters);
  Alcotest.(check bool)
    "provenance still covers the whole run" true
    (List.length stats.Rfn.provenance >= List.length stats.Rfn.iterations);
  Alcotest.(check bool)
    "conclusive verdict retired the checkpoint" false (Sys.file_exists file)

let test_stale_checkpoint_starts_fresh () =
  (* A checkpoint from a different design must be ignored (with a
     warning), not silently re-seed the abstraction. *)
  let file = temp_checkpoint () in
  let ck =
    Checkpoint.make ~netlist_hash:"not-this-design" ~property:"at_limit"
      ~iteration:7 ~seconds_used:0. ~escalation:1
      ~regs:[ "no_such_register" ]
      ~provenance:[] ()
  in
  Checkpoint.save file ck;
  let circuit = Helpers.counter_design ~width:3 ~limit:7 in
  let prop = Property.of_output circuit "at_limit" in
  let outcome, stats =
    Rfn.verify ~config:(config ~checkpoint:file ~resume:true ()) circuit prop
  in
  Alcotest.(check int) "nothing was resumed" 0 stats.Rfn.resumed_iterations;
  (match outcome with
  | Rfn.Falsified _ -> ()
  | _ -> Alcotest.fail "counter3/at_limit should still be falsified");
  if Sys.file_exists file then Sys.remove file

(* ------------------------------------------------------------------ *)
(* Sequential in-process fallback (RFN_NO_FORK)                        *)
(* ------------------------------------------------------------------ *)

(* [Unix.putenv] cannot unset a variable and [available] checks for
   unset, so these run LAST: everything after this point stays in the
   no-fork degraded mode. *)

let test_no_fork_fallback () =
  Unix.putenv "RFN_NO_FORK" "1";
  Alcotest.(check bool) "fork disabled" false (Proc.available ());
  (match
     Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Win)
       [ entrant "solo" 7 ]
   with
  | Proc.Winner ("solo", p) ->
    Alcotest.(check bool)
      "sequential fallback returns the payload" true
      (Option.bind (Json.member "v" p) Json.to_int = Some 7)
  | _ -> Alcotest.fail "sequential fallback should still win");
  (* Injected faults are simulated structurally, so chaos tests mean
     the same thing without fork. *)
  match
    Proc.with_injected Proc.Kill (fun () ->
        Proc.race ~policy:quick_policy ~classify:(classify_all Proc.Win)
          [ entrant "victim" 1; entrant "survivor" 2 ])
  with
  | Proc.Winner ("survivor", _) -> ()
  | _ -> Alcotest.fail "sequential fallback must survive an injected kill"

let test_no_fork_verdict_unchanged () =
  (* A full racing CEGAR run in degraded mode still concludes. *)
  let circuit = Helpers.deep_bug_design ~width:3 in
  let prop = Property.of_output circuit "bad" in
  match Rfn.verify ~config:(config ~race:true ()) circuit prop with
  | Rfn.Falsified t, _ ->
    Alcotest.(check bool)
      "trace replays concretely" true
      (Sim3v.replay_concrete circuit t ~bad:prop.Property.bad)
  | _ -> Alcotest.fail "deep_bug3/bad should be falsified without fork"

(* Regression: the RSS sampler used to let [input_line] exceptions
   escape into the heartbeat (reading a directory raises [Sys_error],
   not [End_of_file]); every degraded path must answer 0 — "RSS
   unknown", disabling the memory cap — and bump [proc.rss_unknown]. *)
let test_rss_degraded_paths () =
  let c_unknown = Telemetry.counter "proc.rss_unknown" in
  let check name path =
    let before = Telemetry.counter_value c_unknown in
    Alcotest.(check int) (name ^ " reads as unknown") 0
      (Proc.rss_mb_of_file path);
    Alcotest.(check int)
      (name ^ " bumps proc.rss_unknown")
      (before + 1)
      (Telemetry.counter_value c_unknown)
  in
  check "missing file" "/nonexistent/statm";
  (* a directory opens fine but raises Sys_error on the first read *)
  check "unreadable stream" (Filename.get_temp_dir_name ());
  let truncated = Filename.temp_file "rfn_statm" ".txt" in
  check "empty file" truncated;
  let oc = open_out truncated in
  output_string oc "12345 not-a-number 7\n";
  close_out oc;
  check "malformed field" truncated;
  Sys.remove truncated;
  (* the real procfs still reads as a sane value *)
  if Sys.file_exists "/proc/self/statm" then begin
    let before = Telemetry.counter_value c_unknown in
    Alcotest.(check bool)
      "live statm parses" true
      (Proc.rss_mb_of_file "/proc/self/statm" >= 0);
    Alcotest.(check int)
      "live statm is not unknown" before
      (Telemetry.counter_value c_unknown)
  end

let tests =
  [
    Alcotest.test_case "RSS sampler never raises" `Quick
      test_rss_degraded_paths;
    Alcotest.test_case "cube codec round-trips" `Quick test_cube_roundtrip;
    Alcotest.test_case "cube decoder is total" `Quick test_cube_decoder_total;
    Alcotest.test_case "trace codec round-trips" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace decoder is total" `Quick test_trace_decoder_total;
    Alcotest.test_case "checkpoint round-trips" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint validation rejects mismatches" `Quick
      test_checkpoint_validation_rejects;
    Alcotest.test_case "checkpoint load never raises" `Quick
      test_checkpoint_load_errors;
    Alcotest.test_case "netlist hash discriminates designs" `Quick
      test_hash_discriminates;
    Alcotest.test_case "a lone entrant wins its race" `Quick
      test_race_single_winner;
    Alcotest.test_case "give-ups are held, not failed" `Quick
      test_race_hold_is_last_resort;
    Alcotest.test_case "rejected payloads are garbage" `Quick
      test_race_reject_is_garbage;
    Alcotest.test_case "a killed worker loses, the race concludes" `Quick
      test_injected_kill_loses_the_race;
    Alcotest.test_case "garbage output fails structurally" `Quick
      test_injected_garbage_is_structured;
    Alcotest.test_case "the watchdog times out a hung worker" `Quick
      test_injected_hang_hits_the_watchdog;
    Alcotest.test_case "an engine exception is a crash" `Quick
      test_worker_exception_is_crash;
    Alcotest.test_case "an empty race is rejected" `Quick
      test_race_rejects_empty;
    Alcotest.test_case "racing matches sequential verdicts on the zoo" `Quick
      test_racing_matches_sequential_zoo;
    Alcotest.test_case "a SIGKILLed worker never changes the verdict" `Quick
      test_worker_kill_mid_run;
    Alcotest.test_case "checkpoint, kill, resume: same verdict, fewer \
                        iterations"
      `Quick test_checkpoint_resume_differential;
    Alcotest.test_case "a stale checkpoint starts fresh" `Quick
      test_stale_checkpoint_starts_fresh;
    (* no-fork tests last: RFN_NO_FORK cannot be unset once set *)
    Alcotest.test_case "sequential fallback without fork" `Quick
      test_no_fork_fallback;
    Alcotest.test_case "degraded mode still concludes" `Quick
      test_no_fork_verdict_unchanged;
  ]

let () = Alcotest.run "proc" [ ("proc", tests) ]
