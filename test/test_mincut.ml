open Rfn_circuit
module Flow = Rfn_mincut.Flow
module Mincut = Rfn_mincut.Mincut

(* ---- max-flow core ------------------------------------------------ *)

let test_flow_simple_path () =
  let g = Flow.create 4 in
  Flow.add_edge g 0 1 3;
  Flow.add_edge g 1 2 2;
  Flow.add_edge g 2 3 5;
  Alcotest.(check int) "bottleneck" 2 (Flow.max_flow g ~source:0 ~sink:3);
  let reach = Flow.min_cut_reachable g ~source:0 in
  Alcotest.(check bool) "source side" true reach.(0);
  Alcotest.(check bool) "sink side" false reach.(3)

let test_flow_parallel_paths () =
  let g = Flow.create 6 in
  Flow.add_edge g 0 1 1;
  Flow.add_edge g 0 2 1;
  Flow.add_edge g 1 3 1;
  Flow.add_edge g 2 4 1;
  Flow.add_edge g 3 5 1;
  Flow.add_edge g 4 5 1;
  Alcotest.(check int) "two disjoint paths" 2 (Flow.max_flow g ~source:0 ~sink:5)

let test_flow_needs_augmenting_path_reversal () =
  (* classic example where a greedy path must be partly undone *)
  let g = Flow.create 4 in
  Flow.add_edge g 0 1 1;
  Flow.add_edge g 0 2 1;
  Flow.add_edge g 1 2 1;
  Flow.add_edge g 1 3 1;
  Flow.add_edge g 2 3 1;
  Alcotest.(check int) "flow 2" 2 (Flow.max_flow g ~source:0 ~sink:3)

let test_flow_disconnected () =
  let g = Flow.create 3 in
  Flow.add_edge g 0 1 5;
  Alcotest.(check int) "no path" 0 (Flow.max_flow g ~source:0 ~sink:2)

(* Brute-force min edge cut on small graphs vs max flow. *)
let flow_mincut_duality =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"max flow = min cut (unit edges)"
       QCheck.(list_of_size (QCheck.Gen.int_range 1 12)
                 (pair (int_bound 5) (int_bound 5)))
       (fun edges ->
         let edges =
           List.filter (fun (u, v) -> u <> v) edges |> List.sort_uniq compare
         in
         QCheck.assume (edges <> []);
         let g = Flow.create 6 in
         List.iter (fun (u, v) -> Flow.add_edge g u v 1) edges;
         let flow = Flow.max_flow g ~source:0 ~sink:5 in
         (* brute force: try all subsets of edges as cuts *)
         let n = List.length edges in
         let arr = Array.of_list edges in
         let connected removed =
           let adj = Array.make 6 [] in
           Array.iteri
             (fun i (u, v) ->
               if not (List.mem i removed) then adj.(u) <- v :: adj.(u))
             arr;
           let seen = Array.make 6 false in
           let rec dfs u =
             if not seen.(u) then begin
               seen.(u) <- true;
               List.iter dfs adj.(u)
             end
           in
           dfs 0;
           seen.(5)
         in
         let best = ref max_int in
         for mask = 0 to (1 lsl n) - 1 do
           let removed = ref [] in
           for i = 0 to n - 1 do
             if mask land (1 lsl i) <> 0 then removed := i :: !removed
           done;
           if (not (connected !removed)) && List.length !removed < !best then
             best := List.length !removed
         done;
         flow = !best))

(* ---- min-cut designs ---------------------------------------------- *)

(* A model where the min cut is obviously 1: wide input logic funnels
   through a single internal signal before reaching the register. *)
let funnel_design width =
  let b = Circuit.Builder.create () in
  let module B = Circuit.Builder in
  let ins = Array.init width (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let funnel = B.gate b ~name:"funnel" Gate.And ins in
  let r = B.reg b "r" in
  B.connect b r (B.xor2 b funnel r);
  B.output b "r" r;
  (B.finalize b, funnel, r)

let test_funnel_cut () =
  let c, funnel, r = funnel_design 8 in
  let view = Sview.whole c ~roots:[ r ] in
  let result = Mincut.compute view in
  Alcotest.(check (list int)) "cut at the funnel" [ funnel ]
    result.Mincut.cut;
  Alcotest.(check int) "mc has one free input" 1
    (Sview.num_free_inputs result.Mincut.mc);
  Alcotest.(check int) "mc keeps the registers" 1
    (Sview.num_regs result.Mincut.mc)

let test_cut_never_exceeds_inputs () =
  let c = Helpers.arbiter_design () in
  let bad = Circuit.output c "bad" in
  let view = Sview.whole c ~roots:[ bad ] in
  let result = Mincut.compute view in
  Alcotest.(check bool) "cut <= free inputs" true
    (List.length result.Mincut.cut <= Sview.num_free_inputs view)

(* Validity on random circuits: the min-cut design is a well-formed
   view (Sview.make validates), contains every register, and its cut
   is no larger than the input count. *)
let mincut_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"min-cut design well-formed and small"
       (Helpers.arbitrary_circuit ~nins:4 ~nregs:4 ~ngates:14)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let result = Mincut.compute view in
         let mc = result.Mincut.mc in
         Sview.num_regs mc = Sview.num_regs view
         && List.length result.Mincut.cut <= Sview.num_free_inputs view
         && List.for_all (fun s -> Sview.is_free mc s) result.Mincut.cut))

(* On abstractions: the paper's headline effect — far fewer inputs. *)
let test_abstraction_cut_shrinks () =
  let proc = Rfn_designs.Processor.(make ~params:small ()) in
  let c = proc.Rfn_designs.Processor.circuit in
  let bad = proc.error_flag.Property.bad in
  let a = Abstraction.initial c ~roots:[ bad ] in
  (* refine a few registers in so the model has real structure *)
  let a =
    Abstraction.refine a
      ~add:
        (List.filter (Circuit.is_reg c)
           [ Circuit.find c "cnt_0"; Circuit.find c "cnt_1"; Circuit.find c "grant_0" ])
  in
  let result = Mincut.compute a.Abstraction.view in
  Alcotest.(check bool) "cut smaller than model inputs" true
    (List.length result.Mincut.cut
    <= Sview.num_free_inputs a.Abstraction.view)

let tests =
  [
    Alcotest.test_case "flow: simple path" `Quick test_flow_simple_path;
    Alcotest.test_case "flow: parallel paths" `Quick test_flow_parallel_paths;
    Alcotest.test_case "flow: reversal needed" `Quick
      test_flow_needs_augmenting_path_reversal;
    Alcotest.test_case "flow: disconnected" `Quick test_flow_disconnected;
    flow_mincut_duality;
    Alcotest.test_case "funnel cuts to one signal" `Quick test_funnel_cut;
    Alcotest.test_case "cut bounded by inputs" `Quick
      test_cut_never_exceeds_inputs;
    mincut_random;
    Alcotest.test_case "abstraction cut shrinks" `Quick
      test_abstraction_cut_shrinks;
  ]

let () = Alcotest.run "mincut" [ ("mincut", tests) ]
