(* Differential tests for the persistent verification session: the
   incremental mode (one BDD manager for the whole CEGAR run, varmap
   grown in place, cones and clusters carried) must be bit-identical
   to the from-scratch reference mode (a fresh empty manager per
   refinement under the identical variable assignment) — same
   verdicts, same per-iteration fixpoint step counts, same traces —
   on every design of the zoo, with and without injected faults. *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Session = Rfn_core.Session
module Supervisor = Rfn_core.Supervisor
module Coverage = Rfn_core.Coverage
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Sim3v = Rfn_sim3v.Sim3v
module Telemetry = Rfn_obs.Telemetry
module F = Rfn_failure

(* Injection defaults to off (not deferred to RFN_INJECT_FAULTS) so
   the plain differential runs stay deterministic under the chaos CI
   job; the chaos variant below injects explicitly. *)
let config ?(inject = Some (fun _ -> None)) ~reuse () =
  {
    Rfn.default_config with
    Rfn.max_iterations = 32;
    node_limit = 500_000;
    mc_max_steps = 200;
    inject;
    session = { Session.default_policy with Session.reuse };
  }

let zoo () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let fc = fifo.Rfn_designs.Fifo.circuit in
  let of_output name c out = (name, c, Property.of_output c out) in
  [
    of_output "arbiter/bad" (Helpers.arbiter_design ()) "bad";
    of_output "counter3/at_limit"
      (Helpers.counter_design ~width:3 ~limit:7)
      "at_limit";
    of_output "deep_bug3/bad" (Helpers.deep_bug_design ~width:3) "bad";
    ("fifo_small/psh_hf", fc, fifo.Rfn_designs.Fifo.psh_hf);
    ("fifo_small/psh_full", fc, fifo.Rfn_designs.Fifo.psh_full);
  ]

let trace_literals t =
  ( Array.map Cube.to_list t.Trace.states,
    Array.map Cube.to_list t.Trace.inputs )

(* Run one property in both modes and compare everything observable.
   [spec] re-creates the fault-injection hook per run: the "all" hook
   is stateful (each site faults once), so each run needs its own. *)
let check_differential ?spec name circuit prop =
  let run ~reuse =
    let inject = Option.map Supervisor.inject_of_spec spec in
    Rfn.verify ~config:(config ?inject ~reuse ()) circuit prop
  in
  let outcome_inc, stats_inc = run ~reuse:true in
  let outcome_ref, stats_ref = run ~reuse:false in
  let steps stats =
    List.map (fun it -> it.Rfn.fixpoint_steps) stats.Rfn.iterations
  in
  Alcotest.(check (list int))
    (name ^ ": per-iteration fixpoint steps")
    (steps stats_ref) (steps stats_inc);
  Alcotest.(check int)
    (name ^ ": final abstract registers")
    stats_ref.Rfn.final_abstract_regs stats_inc.Rfn.final_abstract_regs;
  match (outcome_inc, outcome_ref) with
  | Rfn.Proved, Rfn.Proved -> ()
  | Rfn.Falsified ti, Rfn.Falsified tr ->
    Alcotest.(check bool)
      (name ^ ": identical counterexamples")
      true
      (trace_literals ti = trace_literals tr);
    Alcotest.(check bool)
      (name ^ ": incremental trace replays")
      true
      (Sim3v.replay_concrete circuit ti ~bad:prop.Property.bad)
  | Rfn.Aborted wi, Rfn.Aborted wr ->
    Alcotest.(check string)
      (name ^ ": identical aborts")
      (F.to_string wr) (F.to_string wi)
  | _ ->
    let show = function
      | Rfn.Proved -> "proved"
      | Rfn.Falsified _ -> "falsified"
      | Rfn.Aborted _ -> "aborted"
    in
    Alcotest.failf "%s: verdicts diverge (incremental %s, reference %s)" name
      (show outcome_inc) (show outcome_ref)

let test_differential_zoo () =
  List.iter (fun (name, c, prop) -> check_differential name c prop) (zoo ())

let test_differential_chaos () =
  (* Every supervised site faults once: the abstract-MC retry becomes a
     session reset. Verdicts and step counts must still match between
     the modes, and resets must actually have happened. *)
  let resets () =
    Telemetry.counter_value (Telemetry.counter "session.resets")
  in
  let before = resets () in
  List.iter
    (fun (name, c, prop) ->
      check_differential ~spec:"all" (name ^ "+chaos") c prop)
    (zoo ());
  Alcotest.(check bool)
    "chaos exercised session resets" true
    (resets () > before)

let test_differential_random () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:25 ~name:"session differential on random circuits"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:12)
       (fun rc ->
         let prop = Property.make ~name:"out" ~bad:rc.Helpers.out in
         let run ~reuse =
           Rfn.verify ~config:(config ~reuse ()) rc.Helpers.circuit prop
         in
         let outcome_inc, stats_inc = run ~reuse:true in
         let outcome_ref, stats_ref = run ~reuse:false in
         let steps stats =
           List.map (fun it -> it.Rfn.fixpoint_steps) stats.Rfn.iterations
         in
         (match (outcome_inc, outcome_ref) with
         | Rfn.Proved, Rfn.Proved -> ()
         | Rfn.Falsified a, Rfn.Falsified b ->
           if trace_literals a <> trace_literals b then
             QCheck.Test.fail_report "traces diverge"
         | Rfn.Aborted _, Rfn.Aborted _ -> ()
         | _ -> QCheck.Test.fail_report "verdicts diverge");
         steps stats_inc = steps stats_ref))

(* ------------------------------------------------------------------ *)
(* Unit tests of the delta/grow layers                                 *)
(* ------------------------------------------------------------------ *)

let test_refine_delta_invariants () =
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  let bad = Circuit.output c "at_limit" in
  let a0 = Abstraction.initial c ~roots:[ bad ] in
  (* The property cone reads the counter bits through pseudo-inputs. *)
  let p = List.hd (Abstraction.pseudo_inputs a0) in
  let a1, d = Abstraction.refine_delta a0 ~add:[ p ] in
  Alcotest.(check (list int)) "added" [ p ] d.Abstraction.added;
  Alcotest.(check (list int)) "promoted" [ p ] d.Abstraction.promoted;
  Alcotest.(check (list int)) "fresh" [] d.Abstraction.fresh_regs;
  Alcotest.(check int) "carried = old view size"
    (Bitset.cardinal a0.Abstraction.view.Sview.inside)
    d.Abstraction.carried_signals;
  Alcotest.(check int) "carried + new = new view size"
    (Bitset.cardinal a1.Abstraction.view.Sview.inside)
    (d.Abstraction.carried_signals + d.Abstraction.new_signals);
  List.iter
    (fun s ->
      Alcotest.(check bool) "new free input is free in the new view" true
        (Sview.is_free a1.Abstraction.view s);
      Alcotest.(check bool) "new free input was not free in the old view"
        false
        (Sview.is_free a0.Abstraction.view s))
    d.Abstraction.new_free_inputs

let test_grow_preserves_cones () =
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  let bad = Circuit.output c "at_limit" in
  let a0 = Abstraction.initial c ~roots:[ bad ] in
  let p = List.hd (Abstraction.pseudo_inputs a0) in
  let vm = Varmap.make a0.Abstraction.view in
  let old_inp_var = Varmap.inp_var vm p in
  let memo = Hashtbl.create 97 in
  let compiled0 = Symbolic.compile_view vm a0.Abstraction.view ~memo in
  Alcotest.(check int) "initial compile covers the view"
    (Bitset.cardinal a0.Abstraction.view.Sview.inside)
    compiled0;
  let saved = Hashtbl.fold (fun s f acc -> (s, (f : Bdd.t :> int)) :: acc) memo [] in
  let a1, d = Abstraction.refine_delta a0 ~add:[ p ] in
  let vm = Varmap.grow vm ~view:a1.Abstraction.view d in
  (* The promoted pseudo-input's variable is re-rolled: same index, now
     a current-state variable with a fresh appended next-state one. *)
  Alcotest.(check int) "promoted keeps its variable" old_inp_var
    (Varmap.cur_var vm p);
  Alcotest.(check bool) "promoted's next-state variable is appended" true
    (Varmap.nxt_var vm p > old_inp_var);
  let compiled1 = Symbolic.compile_view vm a1.Abstraction.view ~memo in
  Alcotest.(check int) "incremental compile builds only the delta"
    d.Abstraction.new_signals compiled1;
  List.iter
    (fun (s, f) ->
      Alcotest.(check int) "carried cone BDDs unchanged" f
        ((Hashtbl.find memo s :> int)))
    saved

let test_replica_matches_grow () =
  let c = Helpers.deep_bug_design ~width:3 in
  let bad = Circuit.output c "bad" in
  let a0 = Abstraction.initial c ~roots:[ bad ] in
  let p = List.hd (Abstraction.pseudo_inputs a0) in
  let vm = Varmap.make a0.Abstraction.view in
  let rep = Varmap.replica vm in
  let a1, d = Abstraction.refine_delta a0 ~add:[ p ] in
  let grown = Varmap.grow vm ~view:a1.Abstraction.view d in
  let replicated = Varmap.grow rep ~view:a1.Abstraction.view d in
  Alcotest.(check int) "same variable count"
    (Bdd.nvars (Varmap.man grown))
    (Bdd.nvars (Varmap.man replicated));
  Array.iter
    (fun r ->
      Alcotest.(check int) "cur vars agree" (Varmap.cur_var grown r)
        (Varmap.cur_var replicated r);
      Alcotest.(check int) "nxt vars agree" (Varmap.nxt_var grown r)
        (Varmap.nxt_var replicated r))
    a1.Abstraction.view.Sview.regs;
  Array.iter
    (fun s ->
      Alcotest.(check int) "inp vars agree" (Varmap.inp_var grown s)
        (Varmap.inp_var replicated s))
    a1.Abstraction.view.Sview.free_inputs

let test_session_counters () =
  (* A multi-iteration proof must reuse cones and clusters. *)
  let v name = Telemetry.counter_value (Telemetry.counter name) in
  let reused0 = v "session.cones_reused"
  and clusters0 = v "session.clusters_reused"
  and grow0 = v "session.grow_in_place" in
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  (match
     Rfn.verify
       ~config:(config ~reuse:true ())
       fifo.Rfn_designs.Fifo.circuit fifo.Rfn_designs.Fifo.psh_hf
   with
  | Rfn.Proved, stats ->
    Alcotest.(check bool) "fifo refines at least once" true
      (List.length stats.Rfn.iterations > 1)
  | _ -> Alcotest.fail "fifo psh_hf should be proved");
  Alcotest.(check bool) "cones were reused" true
    (v "session.cones_reused" > reused0);
  Alcotest.(check bool) "clusters were reused" true
    (v "session.clusters_reused" > clusters0);
  Alcotest.(check bool) "growth happened in place" true
    (v "session.grow_in_place" > grow0)

let test_blowup_policy_recovers () =
  (* An absurdly tight blow-up threshold forces the sift-then-rebuild
     path on every refinement; the verdict must survive it. *)
  let rebuilds0 =
    Telemetry.counter_value (Telemetry.counter "session.grow_rebuilds")
  in
  let cfg =
    {
      (config ~reuse:true ()) with
      Rfn.session =
        {
          Session.default_policy with
          Session.grow_blowup = 0.01;
          min_nodes = 1;
        };
    }
  in
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  (match
     Rfn.verify ~config:cfg fifo.Rfn_designs.Fifo.circuit
       fifo.Rfn_designs.Fifo.psh_hf
   with
  | Rfn.Proved, _ -> ()
  | _ -> Alcotest.fail "fifo psh_hf should be proved under forced rebuilds");
  Alcotest.(check bool) "threshold forced rebuilds" true
    (Telemetry.counter_value (Telemetry.counter "session.grow_rebuilds")
    > rebuilds0)

(* ------------------------------------------------------------------ *)
(* Failure-surfacing regressions                                       *)
(* ------------------------------------------------------------------ *)

let test_bfs_failure_surfaced () =
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  let coverage = Array.to_list c.Circuit.registers in
  (* Step budget 0: the fixpoint aborts before closing — previously
     swallowed, now a structured failure in the report. *)
  (match Coverage.bfs_analysis ~max_steps:0 c ~coverage with
  | { Coverage.failure = Some f; unreachable; _ } ->
    Alcotest.(check bool) "aborted on steps" true (f.F.resource = F.Steps);
    Alcotest.(check int) "no unreachability conclusions" 0 unreachable
  | { Coverage.failure = None; _ } ->
    Alcotest.fail "step-bounded bfs_analysis must surface a failure");
  (* Node budget too small even for the initial cones. *)
  match Coverage.bfs_analysis ~node_limit:4 c ~coverage with
  | { Coverage.failure = Some f; _ } ->
    Alcotest.(check bool) "aborted on nodes" true (f.F.resource = F.Nodes)
  | { Coverage.failure = None; _ } ->
    Alcotest.fail "node-starved bfs_analysis must surface a failure"

let test_bfs_success_has_no_failure () =
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  let coverage = Array.to_list c.Circuit.registers in
  match Coverage.bfs_analysis c ~coverage with
  | { Coverage.failure = None; _ } -> ()
  | { Coverage.failure = Some f; _ } ->
    Alcotest.fail ("unexpected failure: " ^ F.to_string f)

let test_check_coi_node_exhaustion () =
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  let prop = Property.of_output c "at_limit" in
  match Rfn.check_coi_model_checking ~node_limit:4 c prop with
  | `Aborted r, _ -> Alcotest.(check bool) "maps to Nodes" true (r = F.Nodes)
  | (`Proved | `Reached _), _ ->
    Alcotest.fail "a 4-node budget cannot model-check the counter"

(* A root missing from the sift translation table must raise an
   [Invalid_argument] naming the structure (a bare [Hashtbl.find] here
   used to escape as an anonymous [Not_found]). *)
let test_translate_root_message () =
  let man = Bdd.create ~nvars:2 () in
  let v0 = Bdd.var man 0 and v1 = Bdd.var man 1 in
  let tr = Hashtbl.create 7 in
  Hashtbl.replace tr v0 v1;
  Alcotest.(check bool) "a mapped root translates" true
    (Session.translate_root tr ~what:"cone cache" v0 == v1);
  try
    ignore (Session.translate_root tr ~what:"cone cache" v1);
    Alcotest.fail "a missing root must raise"
  with Invalid_argument msg ->
    Alcotest.(check string) "missing root names the structure"
      "Session.adopt_sifted: cone cache missing from the sift translation"
      msg

let tests =
  [
    Alcotest.test_case "incremental vs from-scratch on the zoo" `Quick
      test_differential_zoo;
    Alcotest.test_case "differential holds under all-site chaos" `Quick
      test_differential_chaos;
    Alcotest.test_case "differential holds on random circuits" `Quick
      test_differential_random;
    Alcotest.test_case "refine_delta reports exact deltas" `Quick
      test_refine_delta_invariants;
    Alcotest.test_case "grow preserves carried cones" `Quick
      test_grow_preserves_cones;
    Alcotest.test_case "replica+grow matches in-place grow" `Quick
      test_replica_matches_grow;
    Alcotest.test_case "session telemetry proves reuse" `Quick
      test_session_counters;
    Alcotest.test_case "blow-up policy recovers the verdict" `Quick
      test_blowup_policy_recovers;
    Alcotest.test_case "bfs_analysis surfaces engine failures" `Quick
      test_bfs_failure_surfaced;
    Alcotest.test_case "clean bfs_analysis reports no failure" `Quick
      test_bfs_success_has_no_failure;
    Alcotest.test_case "check_coi maps node exhaustion" `Quick
      test_check_coi_node_exhaustion;
    Alcotest.test_case "translate_root names the structure" `Quick
      test_translate_root_message;
  ]

let () = Alcotest.run "session" [ ("session", tests) ]
