(* The design zoo: structural profiles (COI sizes matching Table 1/2)
   and functional sanity on small instances. *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Sim3v = Rfn_sim3v.Sim3v

let quick_config =
  {
    Rfn.default_config with
    Rfn.max_iterations = 40;
    node_limit = 500_000;
    mc_max_steps = 300;
  }

(* ---- FIFO ---------------------------------------------------------- *)

let test_fifo_coi_profile () =
  let fifo = Rfn_designs.Fifo.make () in
  let c = fifo.Rfn_designs.Fifo.circuit in
  List.iter
    (fun (p : Property.t) ->
      let coi = Coi.compute c ~roots:(Property.roots p) in
      Alcotest.(check int)
        (p.Property.name ^ " COI regs (paper: 135)")
        135 (Coi.num_regs coi))
    [ fifo.psh_hf; fifo.psh_af; fifo.psh_full ]

let test_fifo_properties_hold_small () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let c = fifo.Rfn_designs.Fifo.circuit in
  List.iter
    (fun (p : Property.t) ->
      match Rfn.verify ~config:quick_config c p with
      | Rfn.Proved, _ -> ()
      | Rfn.Falsified _, _ -> Alcotest.fail (p.Property.name ^ " falsified!")
      | Rfn.Aborted why, _ ->
        Alcotest.fail
          (p.Property.name ^ " aborted: " ^ Rfn_failure.to_string why))
    [ fifo.psh_hf; fifo.psh_af; fifo.psh_full ]

let test_fifo_random_simulation_no_violation () =
  (* 2,000 random cycles never assert a watchdog on the full design *)
  let fifo = Rfn_designs.Fifo.make () in
  let c = fifo.Rfn_designs.Fifo.circuit in
  let view = Sview.whole c ~roots:[] in
  let seed = ref 42 in
  let rand () =
    seed := (!seed * 1103515245) + 12345;
    !seed lsr 16 land 1 = 1
  in
  let state = ref (fun r ->
      Sim3v.of_bool (Circuit.initial_state c ~free:(fun _ -> false) r))
  in
  let bads =
    List.map
      (fun (p : Property.t) -> p.Property.bad)
      [ fifo.psh_hf; fifo.psh_af; fifo.psh_full ]
  in
  for _ = 1 to 2000 do
    let values, next =
      Sim3v.step view ~free:(fun _ -> Sim3v.of_bool (rand ())) ~state:!state
    in
    List.iter
      (fun bad ->
        if values.(bad) = Sim3v.V1 then Alcotest.fail "watchdog fired")
      bads;
    state := next
  done

(* ---- processor ------------------------------------------------------ *)

let test_processor_coi_profile () =
  let proc = Rfn_designs.Processor.make () in
  let c = proc.Rfn_designs.Processor.circuit in
  let coi_m = Coi.compute c ~roots:(Property.roots proc.mutex) in
  let coi_e = Coi.compute c ~roots:(Property.roots proc.error_flag) in
  Alcotest.(check int) "mutex COI regs (paper: 4,982)" 4982
    (Coi.num_regs coi_m);
  Alcotest.(check int) "error_flag COI regs (paper: 4,986)" 4986
    (Coi.num_regs coi_e);
  Alcotest.(check bool) "COI gates within 10% of paper's 111,151" true
    (let g = Coi.num_gates coi_m in
     g > 100_000 && g < 122_000)

let test_processor_small_verdicts () =
  let proc = Rfn_designs.Processor.(make ~params:small ()) in
  let c = proc.Rfn_designs.Processor.circuit in
  (match Rfn.verify ~config:quick_config c proc.mutex with
  | Rfn.Proved, stats ->
    Alcotest.(check bool) "small abstract model" true
      (stats.Rfn.final_abstract_regs < 30)
  | _ -> Alcotest.fail "mutex should be proved");
  match Rfn.verify ~config:quick_config c proc.error_flag with
  | Rfn.Falsified t, _ ->
    Alcotest.(check bool) "trace validates" true
      (Sim3v.replay_concrete c t ~bad:proc.error_flag.Property.bad)
  | _ -> Alcotest.fail "error_flag should be falsified"

let test_processor_bug_depth () =
  (* the planted bug needs at least bug_threshold+4 cycles: 3 retries,
     one arming flush, threshold+1 grants *)
  let params =
    { Rfn_designs.Processor.small with Rfn_designs.Processor.bug_threshold = 2 }
  in
  let proc = Rfn_designs.Processor.(make ~params ()) in
  match Rfn.verify ~config:quick_config proc.circuit proc.error_flag with
  | Rfn.Falsified t, _ ->
    Alcotest.(check bool) "trace at least threshold+4 cycles" true
      (Rfn_circuit.Trace.length t - 1 >= 2 + 4)
  | _ -> Alcotest.fail "expected Falsified"

(* ---- picoJava IU / USB --------------------------------------------- *)

let test_iu_coverage_sets_well_formed () =
  let iu = Rfn_designs.Picojava_iu.make () in
  let c = iu.Rfn_designs.Picojava_iu.circuit in
  Alcotest.(check int) "five sets" 5 (List.length iu.coverage_sets);
  List.iter
    (fun (name, set) ->
      Alcotest.(check int) (name ^ " has ten signals") 10 (List.length set);
      Alcotest.(check int)
        (name ^ " signals distinct")
        10
        (List.length (List.sort_uniq compare set));
      List.iter
        (fun s ->
          Alcotest.(check bool) (name ^ " signal is a register") true
            (Circuit.is_reg c s))
        set)
    iu.coverage_sets

let test_iu_cois_coincide () =
  (* the paper's observation: all five sets share one COI *)
  let iu = Rfn_designs.Picojava_iu.make () in
  let c = iu.Rfn_designs.Picojava_iu.circuit in
  let sizes =
    List.map
      (fun (_, set) ->
        let coi = Coi.compute c ~roots:set in
        (Coi.num_regs coi, Coi.num_gates coi))
      iu.coverage_sets
  in
  match sizes with
  | first :: rest ->
    List.iter
      (fun s -> Alcotest.(check (pair int int)) "identical COI" first s)
      rest
  | [] -> Alcotest.fail "no sets"

let test_usb_sets () =
  let usb = Rfn_designs.Usb.make () in
  let c = usb.Rfn_designs.Usb.circuit in
  let s1 = List.assoc "USB1" usb.coverage_sets in
  let s2 = List.assoc "USB2" usb.coverage_sets in
  Alcotest.(check int) "USB1 six signals" 6 (List.length s1);
  Alcotest.(check int) "USB2 twenty-one signals" 21 (List.length s2);
  List.iter
    (fun s -> Alcotest.(check bool) "register" true (Circuit.is_reg c s))
    (s1 @ s2)

let test_usb_one_hot_invariant () =
  (* random simulation: the receive FSM stays one-hot *)
  let usb = Rfn_designs.Usb.make () in
  let c = usb.Rfn_designs.Usb.circuit in
  let fsm = List.assoc "USB1" usb.coverage_sets in
  let view = Sview.whole c ~roots:[] in
  let seed = ref 7 in
  let rand () =
    seed := (!seed * 1103515245) + 12345;
    !seed lsr 16 land 3 = 1
  in
  let state =
    ref (fun r ->
        Sim3v.of_bool (Circuit.initial_state c ~free:(fun _ -> false) r))
  in
  for _ = 1 to 500 do
    let _, next =
      Sim3v.step view ~free:(fun _ -> Sim3v.of_bool (rand ())) ~state:!state
    in
    state := next;
    let ones =
      List.fold_left
        (fun acc s -> if !state s = Sim3v.V1 then acc + 1 else acc)
        0 fsm
    in
    Alcotest.(check bool) "at most one FSM bit of the six" true (ones <= 1)
  done

let test_small_designs_brute_force_mutex () =
  (* tiniest processor instance has too many registers for brute force,
     but the arbiter invariant can be cross-checked by random simulation:
     grants stay one-hot over thousands of cycles *)
  let proc = Rfn_designs.Processor.(make ~params:small ()) in
  let c = proc.Rfn_designs.Processor.circuit in
  let bad = proc.mutex.Property.bad in
  let view = Sview.whole c ~roots:[ bad ] in
  let seed = ref 99 in
  let rand () =
    seed := (!seed * 1103515245) + 12345;
    !seed lsr 16 land 1 = 1
  in
  let state =
    ref (fun r ->
        Sim3v.of_bool (Circuit.initial_state c ~free:(fun _ -> false) r))
  in
  for _ = 1 to 3000 do
    let values, next =
      Sim3v.step view ~free:(fun _ -> Sim3v.of_bool (rand ())) ~state:!state
    in
    if values.(bad) = Sim3v.V1 then Alcotest.fail "mutex violated in simulation";
    state := next
  done

let tests =
  [
    Alcotest.test_case "fifo COI profile" `Quick test_fifo_coi_profile;
    Alcotest.test_case "fifo properties hold (small)" `Quick
      test_fifo_properties_hold_small;
    Alcotest.test_case "fifo random simulation clean" `Quick
      test_fifo_random_simulation_no_violation;
    Alcotest.test_case "processor COI profile" `Quick test_processor_coi_profile;
    Alcotest.test_case "processor verdicts (small)" `Quick
      test_processor_small_verdicts;
    Alcotest.test_case "processor bug depth" `Quick test_processor_bug_depth;
    Alcotest.test_case "IU coverage sets" `Quick test_iu_coverage_sets_well_formed;
    Alcotest.test_case "IU COIs coincide" `Quick test_iu_cois_coincide;
    Alcotest.test_case "USB coverage sets" `Quick test_usb_sets;
    Alcotest.test_case "USB FSM one-hot" `Quick test_usb_one_hot_invariant;
    Alcotest.test_case "processor mutex in simulation" `Quick
      test_small_designs_brute_force_mutex;
  ]

let () = Alcotest.run "designs" [ ("designs", tests) ]
