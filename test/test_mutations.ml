(* Mutation testing of the verifier: planting specific bugs into the
   zoo designs must flip the verdicts. This guards against vacuous
   proofs — a checker that proves everything would sail through the
   positive tests. *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Sim3v = Rfn_sim3v.Sim3v
module B = Circuit.Builder

let quick_config =
  {
    Rfn.default_config with
    Rfn.max_iterations = 40;
    node_limit = 500_000;
    mc_max_steps = 300;
  }

let expect_falsified name circuit (prop : Property.t) =
  match Rfn.verify ~config:quick_config circuit prop with
  | Rfn.Falsified t, _ ->
    Alcotest.(check bool) (name ^ ": trace replays") true
      (Sim3v.replay_concrete circuit t ~bad:prop.Property.bad)
  | Rfn.Proved, _ -> Alcotest.fail (name ^ ": mutant survived (proved)")
  | Rfn.Aborted why, _ ->
    Alcotest.fail (name ^ ": aborted: " ^ Rfn_failure.to_string why)

(* A FIFO whose half-full flag is computed against the wrong threshold:
   psh_hf must become falsifiable. Rebuilt from scratch rather than
   mutated in place (circuits are immutable), with the single
   constant changed. *)
let broken_fifo_flag () =
  let depth_log2 = 2 in
  let depth = 1 lsl depth_log2 in
  let cnt_w = depth_log2 + 1 in
  let b = B.create () in
  let push = B.input b "push" and pop = B.input b "pop" in
  let head = Rtl.regs b "head" depth_log2 in
  let tail = Rtl.regs b "tail" depth_log2 in
  let count = Rtl.regs b "count" cnt_w in
  let full_now = Rtl.eq_const b count depth in
  let empty_now = Rtl.is_zero b count in
  let accept_push = B.and2 b push (B.not_ b full_now) in
  let accept_pop = B.and2 b pop (B.not_ b empty_now) in
  let count' =
    let inc = B.and2 b accept_push (B.not_ b accept_pop) in
    let dec = B.and2 b accept_pop (B.not_ b accept_push) in
    Rtl.mux b dec (Rtl.mux b inc count (Rtl.incr b count)) (Rtl.decr b count)
  in
  Rtl.connect b count count';
  Rtl.connect b head (Rtl.mux b accept_pop head (Rtl.incr b head));
  Rtl.connect b tail (Rtl.mux b accept_push tail (Rtl.incr b tail));
  (* BUG: the flag register tracks count >= half+1 while the watchdog
     checks against half *)
  let hf_flag =
    B.reg_of b "hf_flag" (Rtl.ge_const b count' ((depth / 2) + 1))
  in
  let violation =
    B.and_l b [ accept_push; Rtl.ge_const b count (depth / 2); B.not_ b hf_flag ]
  in
  let wd = B.reg_of b "psh_hf" violation in
  B.output b "psh_hf" wd;
  B.finalize b

let test_fifo_wrong_threshold () =
  let c = broken_fifo_flag () in
  expect_falsified "wrong hf threshold" c (Property.of_output c "psh_hf")

(* An arbiter whose pointer initializes to two-hot: the one-hot
   invariant RFN needs is broken from reset, so mutex must fail. *)
let broken_arbiter () =
  let b = B.create () in
  let n = 3 in
  let reqs = Array.init n (fun i -> B.input b (Printf.sprintf "req_%d" i)) in
  let ptr =
    Array.init n (fun i ->
        (* BUG: positions 0 and 1 both start high *)
        B.reg b ~init:(if i <= 1 then `One else `Zero) (Printf.sprintf "p_%d" i))
  in
  let grants =
    Array.init n (fun i ->
        let blockers =
          List.init n (fun j ->
              if j = i then B.const b true
              else B.not_ b (B.and2 b ptr.(j) reqs.(j)))
        in
        ignore blockers;
        B.and2 b reqs.(i) ptr.(i))
  in
  let any = B.or_l b (Array.to_list grants) in
  let rotated = Array.init n (fun i -> ptr.((i + n - 1) mod n)) in
  Array.iteri (fun i p -> B.connect b p (B.mux b any p rotated.(i))) ptr;
  let g =
    Array.mapi (fun i gnt -> B.reg_of b (Printf.sprintf "g%d" i) gnt) grants
  in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pairs := B.and2 b g.(i) g.(j) :: !pairs
    done
  done;
  B.output b "mutex" (B.or_l b !pairs);
  B.finalize b

let test_arbiter_two_hot_reset () =
  let c = broken_arbiter () in
  expect_falsified "two-hot pointer reset" c (Property.of_output c "mutex")

(* The processor with the bug threshold set to 0: the "deep" bug
   becomes shallow but must still be found, and the trace must respect
   the arming sequence (>= 5 cycles even at threshold 0). *)
let test_processor_shallow_bug () =
  let params =
    { Rfn_designs.Processor.small with Rfn_designs.Processor.bug_threshold = 0 }
  in
  let proc = Rfn_designs.Processor.(make ~params ()) in
  match Rfn.verify ~config:quick_config proc.circuit proc.error_flag with
  | Rfn.Falsified t, _ ->
    Alcotest.(check bool) "arming still takes five cycles" true
      (Trace.length t - 1 >= 5)
  | _ -> Alcotest.fail "shallow mutant survived"

(* Tightening a true property until it breaks: push_full with the
   acceptance condition accidentally dropped (push alone writes). *)
let broken_fifo_push_gate () =
  let b = B.create () in
  let push = B.input b "push" and pop = B.input b "pop" in
  let count = Rtl.regs b "count" 3 in
  let _full_now = Rtl.eq_const b count 4 in
  let empty_now = Rtl.is_zero b count in
  (* BUG: push is not gated by ~full *)
  let accept_push = push in
  let accept_pop = B.and2 b pop (B.not_ b empty_now) in
  let count' =
    let inc = B.and2 b accept_push (B.not_ b accept_pop) in
    let dec = B.and2 b accept_pop (B.not_ b accept_push) in
    Rtl.mux b dec (Rtl.mux b inc count (Rtl.incr b count)) (Rtl.decr b count)
  in
  Rtl.connect b count count';
  let full_flag = B.reg_of b "full_flag" (Rtl.eq_const b count' 4) in
  let wd =
    B.reg_of b "psh_full" (B.and_l b [ push; full_flag; accept_push ])
  in
  B.output b "psh_full" wd;
  B.finalize b

let test_fifo_ungated_push () =
  let c = broken_fifo_push_gate () in
  expect_falsified "push not gated by full" c (Property.of_output c "psh_full")

(* Sanity: the *unmutated* small designs still prove — the mutants
   above fail for their bugs, not because the harness broke. *)
let test_unmutated_controls () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  (match Rfn.verify ~config:quick_config fifo.circuit fifo.psh_hf with
  | Rfn.Proved, _ -> ()
  | _ -> Alcotest.fail "control psh_hf");
  let proc = Rfn_designs.Processor.(make ~params:small ()) in
  match Rfn.verify ~config:quick_config proc.circuit proc.mutex with
  | Rfn.Proved, _ -> ()
  | _ -> Alcotest.fail "control mutex"

let tests =
  [
    Alcotest.test_case "fifo: wrong hf threshold caught" `Quick
      test_fifo_wrong_threshold;
    Alcotest.test_case "arbiter: two-hot reset caught" `Quick
      test_arbiter_two_hot_reset;
    Alcotest.test_case "processor: shallow bug caught" `Quick
      test_processor_shallow_bug;
    Alcotest.test_case "fifo: ungated push caught" `Quick
      test_fifo_ungated_push;
    Alcotest.test_case "unmutated controls still prove" `Quick
      test_unmutated_controls;
  ]

let () = Alcotest.run "mutations" [ ("mutations", tests) ]
