(* Tests for the verification service: cone-grouping scheduler
   determinism, warm-session LRU eviction, the wire protocol, the
   job-id checkpoint key, per-job telemetry scoping, and a
   batch-vs-cold differential that drives the real server loop end to
   end over file descriptors. *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Telemetry = Rfn_obs.Telemetry
module Json = Rfn_obs.Json
module Checkpoint = Rfn_proc.Checkpoint
module Codec = Rfn_proc.Codec
module Protocol = Rfn_serve.Protocol
module Scheduler = Rfn_serve.Scheduler
module Pool = Rfn_serve.Pool
module Server = Rfn_serve.Server

(* Injection pinned off (not deferred to RFN_INJECT_FAULTS) so the
   differential comparisons stay deterministic under the chaos CI
   job. *)
let no_inject = Some (fun _ -> None)

let config =
  {
    Rfn.default_config with
    Rfn.max_iterations = 32;
    node_limit = 500_000;
    mc_max_steps = 200;
    inject = no_inject;
  }

(* ---- scheduler ------------------------------------------------------ *)

let bs ids = Bitset.of_list 64 ids

let test_plan_groups () =
  (* a and b share a register, d shares with b (hence transitively
     with a), c is disjoint: one warm group [a;b;d], then [c] *)
  let jobs =
    [
      ("a", "d1", bs [ 1; 2 ]);
      ("b", "d1", bs [ 2; 3 ]);
      ("c", "d1", bs [ 9 ]);
      ("d", "d1", bs [ 3; 4 ]);
    ]
  in
  Alcotest.(check (list string))
    "transitive COI group runs back to back"
    [ "a"; "b"; "d"; "c" ]
    (Scheduler.plan jobs)

let test_plan_digest_buckets () =
  let jobs =
    [
      ("a", "d1", bs [ 1 ]);
      ("x", "d2", bs [ 1 ]);
      ("b", "d1", bs [ 1 ]);
      ("y", "d2", bs [ 9 ]);
    ]
  in
  Alcotest.(check (list string))
    "one bucket per digest, buckets in first-submission order"
    [ "a"; "b"; "x"; "y" ]
    (Scheduler.plan jobs)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map
          (fun p -> x :: p)
          (permutations (List.filter (fun y -> y != x) l)))
      l

let test_plan_permutation_invariant () =
  (* the partition into COI groups is a function of the submitted set,
     not of arrival order: in every permutation a, b, d stay
     contiguous and c runs alone *)
  let base =
    [
      ("a", "d1", bs [ 1; 2 ]);
      ("b", "d1", bs [ 2; 3 ]);
      ("c", "d1", bs [ 9 ]);
      ("d", "d1", bs [ 3; 4 ]);
    ]
  in
  List.iter
    (fun jobs ->
      let plan = Scheduler.plan jobs in
      Alcotest.(check int) "plan is a permutation" 4 (List.length plan);
      let pos x =
        let rec go i = function
          | [] -> Alcotest.fail ("job missing from plan: " ^ x)
          | y :: _ when y = x -> i
          | _ :: tl -> go (i + 1) tl
        in
        go 0 plan
      in
      let group = List.sort compare [ pos "a"; pos "b"; pos "d" ] in
      match group with
      | [ lo; _; hi ] ->
        Alcotest.(check int) "group of a, b, d is contiguous" 2 (hi - lo)
      | _ -> assert false)
    (permutations base)

(* ---- pool ----------------------------------------------------------- *)

let counter_prop () =
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  (c, Property.of_output c "at_limit")

let test_pool_lru () =
  let c, p = counter_prop () in
  let make () = Rfn.prepare ~config c ~roots:(Property.roots p) in
  let pool = Pool.create ~max_sessions:2 () in
  let _, warm = Pool.acquire pool ~digest:"a" ~create:make in
  Alcotest.(check bool) "first acquire is cold" false warm;
  let _, _ = Pool.acquire pool ~digest:"b" ~create:make in
  let _, warm = Pool.acquire pool ~digest:"a" ~create:make in
  Alcotest.(check bool) "hit is warm" true warm;
  (* b is now least recently used; a third digest evicts it *)
  ignore (Pool.acquire pool ~digest:"c" ~create:make);
  Alcotest.(check (list string))
    "LRU evicted, MRU first" [ "c"; "a" ] (Pool.digests pool);
  let _, warm = Pool.acquire pool ~digest:"b" ~create:make in
  Alcotest.(check bool) "evicted entry comes back cold" false warm;
  (* re-admitting b pushed out a, the LRU of the survivors *)
  Alcotest.(check (list string))
    "LRU of the survivors evicted" [ "b"; "c" ] (Pool.digests pool);
  Pool.drop pool ~digest:"b";
  Alcotest.(check int) "drop removes the entry" 1 (Pool.length pool)

let test_pool_trim () =
  (* verified sessions hold live BDD nodes, so a 1-node budget must
     trim every entry except the most recently used *)
  let c, p = counter_prop () in
  let make () = Rfn.prepare ~config c ~roots:(Property.roots p) in
  let pool = Pool.create ~max_sessions:4 ~max_nodes:1 () in
  let run digest =
    let session, _ = Pool.acquire pool ~digest ~create:make in
    ignore (Rfn.verify_in_session ~config session p)
  in
  run "a";
  run "b";
  run "c";
  Pool.trim pool;
  Alcotest.(check (list string))
    "trim keeps only the MRU" [ "c" ] (Pool.digests pool)

(* ---- protocol ------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let submit =
    {
      Protocol.id = "j1";
      design = Protocol.File "x.bench";
      property = "bad";
      budget =
        {
          Protocol.no_budget with
          Protocol.max_iterations = Some 7;
          max_seconds = Some 1.5;
        };
    }
  in
  match Protocol.request_of_json (Protocol.submit_to_json submit) with
  | Ok (Protocol.Submit s) ->
    Alcotest.(check string) "id" "j1" s.Protocol.id;
    Alcotest.(check string) "property" "bad" s.Protocol.property;
    (match s.Protocol.design with
    | Protocol.File f -> Alcotest.(check string) "design path" "x.bench" f
    | Protocol.Netlist _ -> Alcotest.fail "expected File");
    Alcotest.(check (option int))
      "max_iterations" (Some 7) s.Protocol.budget.Protocol.max_iterations;
    Alcotest.(check (option (float 0.0)))
      "max_seconds" (Some 1.5) s.Protocol.budget.Protocol.max_seconds;
    Alcotest.(check bool)
      "unset budget fields stay None" true
      (s.Protocol.budget.Protocol.node_limit = None
      && s.Protocol.budget.Protocol.engines = None)
  | Ok _ -> Alcotest.fail "expected a submit request"
  | Error e -> Alcotest.fail e

let test_protocol_malformed () =
  List.iter
    (fun line ->
      match Protocol.request_of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed request: " ^ line))
    [
      "not json";
      {|{"id":"j1"}|};
      {|{"op":"frobnicate"}|};
      {|{"op":"submit","property":"bad","design":"a.bench"}|};
      {|{"op":"submit","id":"j","property":"bad"}|};
      {|{"op":"submit","id":"j","design":"a","netlist":"b","property":"p"}|};
      {|{"op":"submit","id":"j","design":"a","property":"p","engines":"warp"}|};
      {|{"op":"cancel"}|};
    ]

(* ---- checkpoint job key --------------------------------------------- *)

let test_checkpoint_job_id () =
  let ck =
    Checkpoint.make ~job_id:"j1" ~netlist_hash:"h" ~property:"p" ~iteration:2
      ~seconds_used:0.1 ~escalation:1 ~regs:[ "r" ] ~provenance:[] ()
  in
  (match Checkpoint.validate ~job_id:"j1" ck ~netlist_hash:"h" ~property:"p" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Checkpoint.validate ~job_id:"j2" ck ~netlist_hash:"h" ~property:"p" with
  | Ok () -> Alcotest.fail "a foreign job adopted the checkpoint"
  | Error _ -> ());
  (match Checkpoint.validate ck ~netlist_hash:"h" ~property:"p" with
  | Ok () -> Alcotest.fail "a stand-alone run adopted a job checkpoint"
  | Error _ -> ());
  let file = Filename.temp_file "rfn_serve_ck" ".json" in
  Checkpoint.save file ck;
  (match Checkpoint.load file with
  | Ok ck' ->
    Alcotest.(check string)
      "job_id survives the JSON round-trip" "j1" ck'.Checkpoint.job_id
  | Error e -> Alcotest.fail e);
  Sys.remove file

(* ---- telemetry scoping ---------------------------------------------- *)

let test_scope_delta () =
  Telemetry.reset ();
  let a = Telemetry.counter "scope_test.a" in
  let b = Telemetry.counter "scope_test.b" in
  Telemetry.incr a;
  let scope = Telemetry.scope () in
  Telemetry.incr a;
  Telemetry.incr a;
  Telemetry.incr b;
  let deltas =
    List.filter
      (fun (n, _) -> String.starts_with ~prefix:"scope_test." n)
      (Telemetry.scope_delta scope)
  in
  Alcotest.(check (list (pair string int)))
    "deltas since the scope only, sorted"
    [ ("scope_test.a", 2); ("scope_test.b", 1) ]
    deltas

(* ---- server loop ---------------------------------------------------- *)

(* Feed [lines] to a server over real file descriptors and hand back
   (jobs completed, parsed response events in order). *)
let run_server lines =
  let infile = Filename.temp_file "rfn_serve_in" ".jsonl" in
  let outfile = Filename.temp_file "rfn_serve_out" ".jsonl" in
  let oc = open_out infile in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let input = Unix.openfile infile [ Unix.O_RDONLY ] 0 in
  let output = open_out outfile in
  let completed =
    Fun.protect
      ~finally:(fun () ->
        Unix.close input;
        close_out_noerr output)
      (fun () -> Server.run ~config ~input ~output ())
  in
  let ic = open_in outfile in
  let events =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | l -> go (Json.of_string l :: acc)
        in
        go [])
  in
  Sys.remove infile;
  Sys.remove outfile;
  (completed, events)

let ev j =
  match Json.member "ev" j with
  | Some (Json.Str s) -> s
  | _ -> "?"

let sid j =
  match Json.member "id" j with
  | Some (Json.Str s) -> s
  | _ -> ""

let str k j = Option.bind (Json.member k j) Json.to_str

let submit_line ?(budget = Protocol.no_budget) id circuit property =
  Json.to_string
    (Protocol.submit_to_json
       {
         Protocol.id;
         design = Protocol.Netlist (Bench_io.to_string circuit);
         property;
         budget;
       })

let test_server_batch () =
  let c, _ = counter_prop () in
  let completed, events =
    run_server
      [
        submit_line "j1" c "at_limit";
        submit_line "j1" c "at_limit";
        (* duplicate id *)
        submit_line "j2" c "no_such_output";
        {|{"op":"status"}|};
        {|{"op":"shutdown"}|};
      ]
  in
  Alcotest.(check int) "one job completed" 1 completed;
  let results = List.filter (fun j -> ev j = "result") events in
  Alcotest.(check (list string))
    "exactly one result line, for the accepted id" [ "j1" ]
    (List.map sid results);
  Alcotest.(check int)
    "duplicate id and unknown property are errors" 2
    (List.length (List.filter (fun j -> ev j = "error") events));
  Alcotest.(check int)
    "status answered" 1
    (List.length (List.filter (fun j -> ev j = "status") events));
  match List.rev events with
  | bye :: _ -> Alcotest.(check string) "bye is last" "bye" (ev bye)
  | [] -> Alcotest.fail "no events at all"

let test_server_cancel () =
  let c, _ = counter_prop () in
  let completed, events =
    run_server
      [
        submit_line "j1" c "at_limit";
        submit_line "j2" c "at_limit";
        {|{"op":"cancel","id":"j2"}|};
        {|{"op":"shutdown"}|};
      ]
  in
  (* input drains before any job runs, so the cancel beats the queue *)
  Alcotest.(check int) "only the surviving job completed" 1 completed;
  let results = List.filter (fun j -> ev j = "result") events in
  let verdict_of id =
    match List.find_opt (fun j -> sid j = id) results with
    | Some j -> Option.value ~default:"?" (str "verdict" j)
    | None -> "missing"
  in
  Alcotest.(check string) "cancelled job reports so" "cancelled"
    (verdict_of "j2");
  Alcotest.(check bool)
    "surviving job got a real verdict" true
    (verdict_of "j1" <> "missing" && verdict_of "j1" <> "cancelled")

(* Regression: a status query naming an id the server has never seen
   used to hit a bare [Hashtbl.find] and kill the whole serve loop
   with [Not_found]; it must answer with a protocol error event and
   keep serving. *)
let test_status_unknown_id () =
  let completed, events =
    run_server
      [
        {|{"op":"status","id":"nope"}|};
        submit_line "j1" (fst (counter_prop ())) "at_limit";
        {|{"op":"shutdown"}|};
      ]
  in
  Alcotest.(check int) "the loop survived and ran the later job" 1 completed;
  let errors = List.filter (fun j -> ev j = "error") events in
  Alcotest.(check (list string))
    "unknown id answered with an error event" [ "nope" ]
    (List.map sid errors)

(* AIGER designs through the server: a [File] submission dispatched on
   the extension and an inline netlist sniffed by its magic. *)
let test_server_aiger_design () =
  let path =
    List.find Sys.file_exists
      [ "../examples/passing_token.aag"; "examples/passing_token.aag" ]
  in
  let text =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let submit id design =
    Json.to_string
      (Protocol.submit_to_json
         { Protocol.id; design; property = "both_high";
           budget = Protocol.no_budget })
  in
  let completed, events =
    run_server
      [
        submit "from-file" (Protocol.File path);
        submit "inline" (Protocol.Netlist text);
        {|{"op":"shutdown"}|};
      ]
  in
  Alcotest.(check int) "both AIGER jobs completed" 2 completed;
  let results = List.filter (fun j -> ev j = "result") events in
  List.iter
    (fun id ->
      match List.find_opt (fun j -> sid j = id) results with
      | None -> Alcotest.fail (id ^ ": no result line")
      | Some r ->
        Alcotest.(check string)
          (id ^ ": token hand-off proved")
          "proved"
          (Option.value ~default:"?" (str "verdict" r)))
    [ "from-file"; "inline" ]

(* ---- batch vs cold differential on the zoo -------------------------- *)

let zoo () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let fc = fifo.Rfn_designs.Fifo.circuit in
  [
    ("arbiter/bad", Helpers.arbiter_design (), "bad");
    ( "counter3/at_limit",
      Helpers.counter_design ~width:3 ~limit:7,
      "at_limit" );
    ("deep_bug3/bad", Helpers.deep_bug_design ~width:3, "bad");
    ("fifo_small/psh_hf", fc, "psh_hf");
    ("fifo_small/psh_full", fc, "psh_full");
  ]

let test_batch_matches_cold () =
  (* serialization renumbers signals, so run the cold reference on the
     very circuit the server will parse back — trace literals then
     compare verbatim *)
  let zoo =
    List.map
      (fun (name, c, out) -> (name, Bench_io.parse (Bench_io.to_string c), out))
      (zoo ())
  in
  Telemetry.reset ();
  Telemetry.enable ();
  let c_reused = Telemetry.counter "session.cones_reused" in
  let c_recompiled = Telemetry.counter "session.cones_recompiled" in
  let cold =
    List.map
      (fun (name, c, out) ->
        let outcome, _ = Rfn.verify ~config c (Property.of_output c out) in
        (name, outcome))
      zoo
  in
  let cold_reused = Telemetry.counter_value c_reused in
  let cold_recompiled = Telemetry.counter_value c_recompiled in
  Telemetry.reset ();
  let budget =
    {
      Protocol.no_budget with
      Protocol.max_iterations = Some config.Rfn.max_iterations;
      node_limit = Some config.Rfn.node_limit;
      mc_max_steps = Some config.Rfn.mc_max_steps;
    }
  in
  let completed, events =
    run_server
      (List.map (fun (name, c, out) -> submit_line ~budget name c out) zoo
      @ [ {|{"op":"shutdown"}|} ])
  in
  Alcotest.(check int) "every zoo job completed" (List.length zoo) completed;
  let results = List.filter (fun j -> ev j = "result") events in
  List.iter
    (fun (name, outcome) ->
      match List.find_opt (fun j -> sid j = name) results with
      | None -> Alcotest.fail (name ^ ": no result line")
      | Some r -> (
        let verdict = Option.value ~default:"?" (str "verdict" r) in
        match outcome with
        | Rfn.Proved ->
          Alcotest.(check string) (name ^ ": verdict") "proved" verdict
        | Rfn.Falsified trace ->
          Alcotest.(check string) (name ^ ": verdict") "falsified" verdict;
          let batch_trace =
            match Json.member "trace" r with
            | Some t -> Json.to_string t
            | None -> "missing"
          in
          Alcotest.(check string)
            (name ^ ": identical counterexample")
            (Json.to_string (Codec.trace_to_json trace))
            batch_trace
        | Rfn.Aborted _ ->
          Alcotest.(check string) (name ^ ": verdict") "aborted" verdict))
    cold;
  (* the warm sessions must pay for themselves: strictly more cone
     reuse and strictly fewer recompilations than the cold runs *)
  Alcotest.(check bool)
    "warm sessions reused" true
    (Telemetry.counter_value (Telemetry.counter "serve.sessions_reused") > 0);
  Alcotest.(check bool)
    "batch reuses strictly more cones than cold" true
    (Telemetry.counter_value c_reused > cold_reused);
  Alcotest.(check bool)
    "batch recompiles strictly fewer cones than cold" true
    (Telemetry.counter_value c_recompiled < cold_recompiled);
  Telemetry.disable ()

let () =
  Alcotest.run "serve"
    [
      ( "scheduler",
        [
          Alcotest.test_case "coi-groups" `Quick test_plan_groups;
          Alcotest.test_case "digest-buckets" `Quick test_plan_digest_buckets;
          Alcotest.test_case "permutation-invariant" `Quick
            test_plan_permutation_invariant;
        ] );
      ( "pool",
        [
          Alcotest.test_case "lru-eviction" `Quick test_pool_lru;
          Alcotest.test_case "node-trim" `Quick test_pool_trim;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "malformed" `Quick test_protocol_malformed;
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "job-id-key" `Quick test_checkpoint_job_id ] );
      ( "telemetry",
        [ Alcotest.test_case "scope-delta" `Quick test_scope_delta ] );
      ( "server",
        [
          Alcotest.test_case "batch-loop" `Quick test_server_batch;
          Alcotest.test_case "cancel" `Quick test_server_cancel;
          Alcotest.test_case "status-unknown-id" `Quick test_status_unknown_id;
          Alcotest.test_case "aiger-designs" `Quick test_server_aiger_design;
          Alcotest.test_case "batch-matches-cold" `Slow
            test_batch_matches_cold;
        ] );
    ]
