(* The observability layer: metric registry semantics, span nesting,
   the JSONL sink (round-tripped through the parser), and the
   disabled-registry fast path. *)

module Telemetry = Rfn_obs.Telemetry
module Json = Rfn_obs.Json

let with_clean_registry f =
  Telemetry.detach ();
  Telemetry.disable ();
  Telemetry.reset ();
  Fun.protect ~finally:(fun () ->
      Telemetry.detach ();
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* ---- metrics --------------------------------------------------------- *)

let test_counter_basics () =
  with_clean_registry @@ fun () ->
  let c = Telemetry.counter "test.c" in
  Alcotest.(check int) "fresh counter is zero" 0 (Telemetry.counter_value c);
  Telemetry.incr c;
  Telemetry.add c 41;
  Alcotest.(check int) "incr + add" 42 (Telemetry.counter_value c);
  let c' = Telemetry.counter "test.c" in
  Telemetry.incr c';
  Alcotest.(check int) "same name, same counter" 43
    (Telemetry.counter_value c);
  Telemetry.reset ();
  Alcotest.(check int) "reset zeroes, handle stays valid" 0
    (Telemetry.counter_value c)

let test_gauge_peak () =
  with_clean_registry @@ fun () ->
  let g = Telemetry.gauge "test.g" in
  Telemetry.record g 7;
  Telemetry.record g 99;
  Telemetry.record g 12;
  Alcotest.(check int) "last value" 12 (Telemetry.gauge_value g);
  Alcotest.(check int) "peak sticks" 99 (Telemetry.gauge_peak g)

let test_timer_and_enable_gate () =
  with_clean_registry @@ fun () ->
  let t = Telemetry.timer "test.t" in
  (* disabled: the thunk runs but no time is recorded *)
  Alcotest.(check int) "disabled timer passes value through" 5
    (Telemetry.time t (fun () -> 5));
  Alcotest.(check int) "disabled timer records nothing" 0
    (Telemetry.timer_calls t);
  Telemetry.enable ();
  ignore (Telemetry.time t (fun () -> 5));
  Alcotest.(check int) "enabled timer records a call" 1
    (Telemetry.timer_calls t);
  Alcotest.(check bool) "total is non-negative" true
    (Telemetry.timer_total t >= 0.0)

(* ---- spans ----------------------------------------------------------- *)

let test_span_nesting_aggregates () =
  with_clean_registry @@ fun () ->
  Telemetry.enable ();
  let result =
    Telemetry.with_span "outer" (fun () ->
        Telemetry.with_span "inner" (fun () -> ());
        Telemetry.with_span "inner" (fun () -> ());
        17)
  in
  Alcotest.(check int) "span passes the value through" 17 result;
  (match Telemetry.span_stats "inner" with
  | Some (calls, _) -> Alcotest.(check int) "inner called twice" 2 calls
  | None -> Alcotest.fail "no aggregate for inner");
  (match Telemetry.span_stats "outer" with
  | Some (calls, total) ->
    Alcotest.(check int) "outer called once" 1 calls;
    let _, inner_total = Option.get (Telemetry.span_stats "inner") in
    Alcotest.(check bool) "outer encloses inner time" true
      (total >= inner_total)
  | None -> Alcotest.fail "no aggregate for outer")

let test_span_exception_safety () =
  with_clean_registry @@ fun () ->
  Telemetry.enable ();
  (try Telemetry.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  (match Telemetry.span_stats "boom" with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "span not closed on exception");
  (* depth must have unwound: a fresh span still reports depth 1 *)
  let file = Filename.temp_file "rfn_telemetry" ".jsonl" in
  Telemetry.attach_jsonl file;
  Telemetry.with_span "after" (fun () -> ());
  Telemetry.detach ();
  let lines = In_channel.with_open_text file In_channel.input_lines in
  Sys.remove file;
  let depth_of line =
    Option.get (Json.to_int (Option.get (Json.member "depth" (Json.of_string line))))
  in
  let span_lines =
    List.filter
      (fun l -> Json.member "ev" (Json.of_string l) = Some (Json.Str "span"))
      lines
  in
  Alcotest.(check int) "depth unwound after exception" 1
    (depth_of (List.hd span_lines))

(* ---- JSONL sink ------------------------------------------------------ *)

let test_jsonl_roundtrip () =
  with_clean_registry @@ fun () ->
  let file = Filename.temp_file "rfn_telemetry" ".jsonl" in
  Telemetry.attach_jsonl file;
  let c = Telemetry.counter "test.events" in
  Telemetry.add c 3;
  Telemetry.with_span "phase"
    ~attrs:[ ("iter", Json.Int 4); ("tag", Json.Str "a\"b\\c") ]
    (fun () -> Telemetry.with_span "sub" (fun () -> ()));
  Telemetry.event "custom" [ ("k", Json.Int 1) ];
  Telemetry.detach ();
  let lines = In_channel.with_open_text file In_channel.input_lines in
  Sys.remove file;
  let parsed = List.map Json.of_string lines in
  Alcotest.(check bool) "every line parses" true (List.length parsed >= 4);
  let spans =
    List.filter (fun j -> Json.member "ev" j = Some (Json.Str "span")) parsed
  in
  Alcotest.(check int) "two span events" 2 (List.length spans);
  (* spans close innermost-first *)
  let names = List.filter_map (fun j -> Json.member "name" j) spans in
  Alcotest.(check bool) "sub closes before phase" true
    (names = [ Json.Str "sub"; Json.Str "phase" ]);
  let phase = List.nth spans 1 in
  Alcotest.(check int) "phase depth" 1
    (Option.get (Json.to_int (Option.get (Json.member "depth" phase))));
  let attrs = Option.get (Json.member "attrs" phase) in
  Alcotest.(check bool) "attrs round-trip (escaped string)" true
    (Json.member "tag" attrs = Some (Json.Str "a\"b\\c"));
  Alcotest.(check bool) "span has a finite duration" true
    (match Json.to_float (Option.get (Json.member "dur" phase)) with
    | Some d -> d >= 0.0
    | None -> false);
  (* the final metric snapshot contains the counter *)
  let counter_ev =
    List.find_opt
      (fun j ->
        Json.member "ev" j = Some (Json.Str "counter")
        && Json.member "name" j = Some (Json.Str "test.events"))
      parsed
  in
  (match counter_ev with
  | Some j ->
    Alcotest.(check int) "counter snapshot value" 3
      (Option.get (Json.to_int (Option.get (Json.member "value" j))))
  | None -> Alcotest.fail "no counter snapshot event");
  (* custom events pass through *)
  Alcotest.(check bool) "custom event emitted" true
    (List.exists
       (fun j -> Json.member "ev" j = Some (Json.Str "custom"))
       parsed)

(* ---- disabled fast path ---------------------------------------------- *)

let test_disabled_fast_path () =
  with_clean_registry @@ fun () ->
  Alcotest.(check bool) "registry starts disabled" false (Telemetry.enabled ());
  let v = Telemetry.with_span "ghost" (fun () -> 23) in
  Alcotest.(check int) "disabled span passes value through" 23 v;
  Alcotest.(check bool) "disabled span records nothing" true
    (Telemetry.span_stats "ghost" = None);
  (* counters stay live even when disabled — they are the cheap tier *)
  let c = Telemetry.counter "test.live" in
  Telemetry.incr c;
  Alcotest.(check int) "counters count while disabled" 1
    (Telemetry.counter_value c)

(* ---- Json unit tests ------------------------------------------------- *)

let test_json_parser () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.Str "plain";
      Json.Str "esc \" \\ \n \t \r bytes";
      Json.List [ Json.Int 1; Json.Str "two"; Json.List [] ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      let j' = Json.of_string (Json.to_string j) in
      Alcotest.(check bool)
        (Printf.sprintf "round-trips %s" (Json.to_string j))
        true (j = j'))
    cases;
  (* foreign input: whitespace, \u escapes, float exponents *)
  Alcotest.(check bool) "parses foreign JSON" true
    (Json.of_string " { \"k\" : [ 1e2 , \"\\u0041\" ] } "
    = Json.Obj [ ("k", Json.List [ Json.Float 100.0; Json.Str "A" ]) ]);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail ("accepted malformed input: " ^ bad))
    [ "{"; "[1,]"; "\"unterminated"; "1 2"; "nul" ]

let test_json_unicode_escapes () =
  (* BMP scalars decode to UTF-8 *)
  List.iter
    (fun (escaped, utf8) ->
      Alcotest.(check bool)
        (Printf.sprintf "decodes %s" escaped)
        true
        (Json.of_string (Printf.sprintf "\"%s\"" escaped) = Json.Str utf8))
    [
      ("\\u0041", "A");
      ("\\u00e9", "\xc3\xa9") (* é *);
      ("\\u20ac", "\xe2\x82\xac") (* € *);
      (* a surrogate pair combines into one astral scalar: U+1F600 *)
      ("\\ud83d\\ude00", "\xf0\x9f\x98\x80");
    ];
  (* strictly 4 hex digits: the OCaml int literal syntax that
     [int_of_string "0x…"] accepts must be rejected *)
  List.iter
    (fun bad ->
      match Json.of_string (Printf.sprintf "\"%s\"" bad) with
      | exception Failure _ -> ()
      | j ->
        Alcotest.failf "accepted bad \\u escape %s as %s" bad
          (Json.to_string j))
    [
      "\\u12_3" (* underscore is an OCaml-ism, not hex *);
      "\\u12";
      "\\uX000";
      "\\u-123";
      (* lone surrogate halves must not leak into the output *)
      "\\ud800";
      "\\udc00";
      "\\ud83d";
      "\\ud83dx";
      "\\ud83d\\u0041" (* high half followed by a non-low escape *);
    ];
  (* emitted control characters round-trip through the strict path *)
  let j = Json.Str "ctl \x01\x1f" in
  Alcotest.(check bool) "control chars round-trip" true
    (Json.of_string (Json.to_string j) = j)

let tests =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "gauge tracks peak" `Quick test_gauge_peak;
    Alcotest.test_case "timer gated on enable" `Quick
      test_timer_and_enable_gate;
    Alcotest.test_case "span nesting aggregates" `Quick
      test_span_nesting_aggregates;
    Alcotest.test_case "span closes on exception" `Quick
      test_span_exception_safety;
    Alcotest.test_case "jsonl sink round-trips" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "disabled registry fast path" `Quick
      test_disabled_fast_path;
    Alcotest.test_case "json parser round-trips" `Quick test_json_parser;
    Alcotest.test_case "json unicode escapes" `Quick
      test_json_unicode_escapes;
  ]

let () = Alcotest.run "telemetry" [ ("telemetry", tests) ]
