(* The BDD-ATPG hybrid trace extractor: abstract error traces must be
   genuine traces of the abstract model ending in the target. *)

open Rfn_circuit
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Reach = Rfn_mc.Reach
module Hybrid = Rfn_core.Hybrid
module Sim3v = Rfn_sim3v.Sim3v

(* Replay a (partial) abstract trace on the abstract model itself with
   3-valued simulation: trace values forced, everything else X. If the
   simulated concrete values ever conflict with the trace, the trace is
   bogus. *)
let trace_consistent_on_view view trace =
  let k = Trace.length trace in
  let ok = ref true in
  let state_of j fallback r =
    match Cube.value (Trace.state trace j) r with
    | Some b -> Sim3v.of_bool b
    | None -> fallback r
  in
  let state = ref (state_of 0 (fun _ -> Sim3v.VX)) in
  for j = 0 to k - 2 do
    let free s =
      match Cube.value (Trace.input trace j) s with
      | Some b -> Sim3v.of_bool b
      | None -> Sim3v.VX
    in
    let _, next = Sim3v.step view ~free ~state:!state in
    List.iter
      (fun (r, b) ->
        if Sim3v.conflicts (next r) (Sim3v.of_bool b) then ok := false)
      (Cube.to_list (Trace.state trace (j + 1)));
    state := state_of (j + 1) next
  done;
  !ok

let run_reach_and_extract circuit bad =
  let abs = Abstraction.initial circuit ~roots:[ bad ] in
  (* refine everything in: abstract model = whole design, so the trace
     is exact and fully checkable *)
  let abs =
    Abstraction.refine abs ~add:(Array.to_list circuit.Circuit.registers)
  in
  let view = abs.Abstraction.view in
  let vm = Varmap.make view in
  let fn = Symbolic.functions vm in
  let img = Image.make vm in
  let init = Symbolic.initial_states vm in
  let bad_states = Reach.bad_predicate vm ~fn ~bad in
  let res = Reach.run ~max_steps:200 img ~vm ~init ~bad_states in
  match res.Reach.outcome with
  | Reach.Reached k ->
    Some (view, Hybrid.extract vm ~rings:res.Reach.rings ~target:(fn bad) ~k, k)
  | _ -> None

let test_counter_trace () =
  let c = Helpers.counter_design ~width:3 ~limit:5 in
  let bad = Circuit.output c "at_limit" in
  match run_reach_and_extract c bad with
  | None -> Alcotest.fail "expected the counter to reach its limit"
  | Some (view, result, k) ->
    let t = result.Hybrid.trace in
    Alcotest.(check int) "trace has k+1 states" (k + 1) (Trace.length t);
    Alcotest.(check int) "limit 5 reached at step 5" 5 k;
    Alcotest.(check bool) "consistent on the model" true
      (trace_consistent_on_view view t);
    Alcotest.(check bool) "counts as a concrete counterexample" true
      (Sim3v.replay_concrete c t ~bad);
    Alcotest.(check int) "no-cut + min-cut = steps" k
      (result.Hybrid.no_cut_steps + result.Hybrid.min_cut_steps)

let test_trace_ends_in_target () =
  let c = Helpers.deep_bug_design ~width:2 in
  let bad = Circuit.output c "bad" in
  match run_reach_and_extract c bad with
  | None -> Alcotest.fail "expected the bug to be reachable"
  | Some (_, result, k) ->
    let t = result.Hybrid.trace in
    (* the final state asserts the bad register *)
    Alcotest.(check (option bool)) "bad register set at the end" (Some true)
      (Cube.value (Trace.state t k) (Circuit.find c "bad_reg"));
    Alcotest.(check bool) "replays concretely" true
      (Sim3v.replay_concrete c t ~bad)

let hybrid_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"hybrid traces replay on random circuits"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:12)
       (fun rc ->
         let c = rc.Helpers.circuit in
         match run_reach_and_extract c rc.Helpers.out with
         | None -> QCheck.assume_fail () (* property holds; nothing to do *)
         | Some (view, result, k) ->
           let t = result.Hybrid.trace in
           Trace.length t = k + 1
           && trace_consistent_on_view view t
           && Sim3v.replay_concrete c t ~bad:rc.Helpers.out))

(* On an abstract model with pseudo-inputs: the trace must stay
   consistent on the model (it need not replay on the full design —
   that is exactly what Step 3/4 decide). *)
let test_abstract_model_trace () =
  let proc = Rfn_designs.Processor.(make ~params:small ()) in
  let c = proc.Rfn_designs.Processor.circuit in
  let bad = proc.error_flag.Property.bad in
  let abs = Abstraction.initial c ~roots:[ bad ] in
  let view = abs.Abstraction.view in
  let vm = Varmap.make view in
  let fn = Symbolic.functions vm in
  let img = Image.make vm in
  let init = Symbolic.initial_states vm in
  let bad_states = Reach.bad_predicate vm ~fn ~bad in
  let res = Reach.run ~max_steps:50 img ~vm ~init ~bad_states in
  match res.Reach.outcome with
  | Reach.Reached k ->
    let result = Hybrid.extract vm ~rings:res.Reach.rings ~target:(fn bad) ~k in
    Alcotest.(check bool) "consistent on the abstract model" true
      (trace_consistent_on_view view result.Hybrid.trace);
    Alcotest.(check bool) "cut is not larger than the model inputs" true
      (result.Hybrid.cut_size <= result.Hybrid.model_inputs)
  | _ -> Alcotest.fail "expected the initial abstraction to reach bad"

let tests =
  [
    Alcotest.test_case "counter trace" `Quick test_counter_trace;
    Alcotest.test_case "trace ends in target" `Quick test_trace_ends_in_target;
    hybrid_random;
    Alcotest.test_case "abstract-model trace" `Quick test_abstract_model_trace;
  ]

let () = Alcotest.run "hybrid" [ ("hybrid", tests) ]
