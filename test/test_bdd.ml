(* The BDD package is validated against brute-force truth tables on
   random Boolean expressions, plus targeted tests for quantification,
   composition, renaming, cube extraction, counting, GC and limits. *)

module Bdd = Rfn_bdd.Bdd

(* Random expression trees over [nvars] variables. *)
type expr =
  | Var of int
  | Const of bool
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Ite of expr * expr * expr

let rec eval_expr env = function
  | Var i -> env i
  | Const b -> b
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b
  | Ite (c, t, e) -> if eval_expr env c then eval_expr env t else eval_expr env e

let rec build_bdd man = function
  | Var i -> Bdd.var man i
  | Const true -> Bdd.one man
  | Const false -> Bdd.zero man
  | Not e -> Bdd.dnot man (build_bdd man e)
  | And (a, b) -> Bdd.dand man (build_bdd man a) (build_bdd man b)
  | Or (a, b) -> Bdd.dor man (build_bdd man a) (build_bdd man b)
  | Xor (a, b) -> Bdd.dxor man (build_bdd man a) (build_bdd man b)
  | Ite (c, t, e) ->
    Bdd.ite man (build_bdd man c) (build_bdd man t) (build_bdd man e)

let expr_gen nvars =
  let open QCheck.Gen in
  sized_size (int_bound 20) @@ fix (fun self n ->
      if n <= 0 then
        oneof [ map (fun i -> Var i) (int_bound (nvars - 1)); map (fun b -> Const b) bool ]
      else
        frequency
          [
            (1, map (fun i -> Var i) (int_bound (nvars - 1)));
            (2, map (fun e -> Not e) (self (n - 1)));
            (2, map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Xor (a, b)) (self (n / 2)) (self (n / 2)));
            ( 1,
              map3 (fun a b c -> Ite (a, b, c)) (self (n / 3)) (self (n / 3))
                (self (n / 3)) );
          ])

let rec pp_expr = function
  | Var i -> Printf.sprintf "v%d" i
  | Const b -> string_of_bool b
  | Not e -> Printf.sprintf "~(%s)" (pp_expr e)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (pp_expr a) (pp_expr b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (pp_expr a) (pp_expr b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (pp_expr a) (pp_expr b)
  | Ite (a, b, c) ->
    Printf.sprintf "ite(%s,%s,%s)" (pp_expr a) (pp_expr b) (pp_expr c)

let nvars = 6
let arbitrary_expr = QCheck.make (expr_gen nvars) ~print:pp_expr

let all_envs f =
  let ok = ref true in
  for v = 0 to (1 lsl nvars) - 1 do
    if not (f (fun i -> v land (1 lsl i) <> 0)) then ok := false
  done;
  !ok

let qt name count f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary_expr f)

let semantics_test =
  qt "bdd agrees with direct evaluation" 500 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      all_envs (fun env -> Bdd.eval man f env = eval_expr env e))

let reduction_test =
  qt "equivalent functions share one node" 200 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      (* rebuild the same function through a different expression shape *)
      let g = Bdd.dnot man (Bdd.dnot man f) in
      let h = Bdd.dxor man f (Bdd.zero man) in
      Bdd.equal f g && Bdd.equal f h)

let exists_test =
  qt "existential quantification" 200 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let q = Bdd.exists man [ 0; 3 ] f in
      all_envs (fun env ->
          let expected =
            List.exists
              (fun (v0, v3) ->
                eval_expr
                  (fun i -> if i = 0 then v0 else if i = 3 then v3 else env i)
                  e)
              [ (false, false); (false, true); (true, false); (true, true) ]
          in
          Bdd.eval man q env = expected))

let and_exists_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"and_exists = exists of conjunction"
       (QCheck.pair arbitrary_expr arbitrary_expr)
       (fun (ea, eb) ->
         let man = Bdd.create ~nvars () in
         let a = build_bdd man ea and b = build_bdd man eb in
         let direct = Bdd.exists man [ 1; 2; 5 ] (Bdd.dand man a b) in
         Bdd.equal (Bdd.and_exists man [ 1; 2; 5 ] a b) direct))

let compose_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"vector compose substitutes"
       (QCheck.pair arbitrary_expr arbitrary_expr)
       (fun (ef, eg) ->
         let man = Bdd.create ~nvars () in
         let f = build_bdd man ef and g = build_bdd man eg in
         (* substitute g for variable 0 and ~g for variable 2, simultaneously *)
         let subst v =
           if v = 0 then Some g else if v = 2 then Some (Bdd.dnot man g) else None
         in
         let h = Bdd.vector_compose man subst f in
         all_envs (fun env ->
             let gv = eval_expr env eg in
             let env' i = if i = 0 then gv else if i = 2 then not gv else env i in
             Bdd.eval man h env = eval_expr env' ef)))

let rename_test =
  qt "rename is variable permutation" 200 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      (* rotate all variables by one *)
      let map v = (v + 1) mod nvars in
      let g = Bdd.rename man map f in
      all_envs (fun env ->
          Bdd.eval man g env = eval_expr (fun i -> env (map i)) e))

let rename_monotone_test =
  qt "monotone rename (shift down)" 200 (fun e ->
      let man = Bdd.create ~nvars:(2 * nvars) () in
      let f = build_bdd man e in
      let map v = v + nvars in
      let g = Bdd.rename man map f in
      all_envs (fun env ->
          (* evaluate g under an env reading shifted vars *)
          let ok = ref true in
          for hi = 0 to 0 do
            ignore hi;
            let env2 i = if i >= nvars then env (i - nvars) else false in
            if Bdd.eval man g env2 <> eval_expr env e then ok := false
          done;
          !ok))

let cofactor_test =
  qt "cofactor pins variables" 200 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let g = Bdd.cofactor man f [ (1, true); (4, false) ] in
      all_envs (fun env ->
          let env' i = if i = 1 then true else if i = 4 then false else env i in
          Bdd.eval man g env = eval_expr env' e))

let cube_roundtrip_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"cube/cube_of roundtrip"
       QCheck.(list_of_size (QCheck.Gen.int_bound 5) (pair (int_bound 5) bool))
       (fun lits ->
         let tbl = Hashtbl.create 8 in
         List.iter
           (fun (v, b) -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v b)
           lits;
         let lits = Hashtbl.fold (fun v b acc -> (v, b) :: acc) tbl [] in
         let sorted = List.sort compare lits in
         let man = Bdd.create ~nvars () in
         let c = Bdd.cube man lits in
         List.sort compare (Bdd.cube_of man c) = sorted))

let sat_cubes_test =
  qt "any_sat and fattest_cube satisfy" 300 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      if Bdd.is_zero f then true
      else begin
        let check cube =
          (* every completion of the cube satisfies f; check default-
             false completion *)
          let env i =
            match List.assoc_opt i cube with Some b -> b | None -> false
          in
          Bdd.eval man f env
          &&
          let env1 i =
            match List.assoc_opt i cube with Some b -> b | None -> true
          in
          Bdd.eval man f env1
        in
        check (Bdd.any_sat man f) && check (Bdd.fattest_cube man f)
      end)

let fattest_is_minimal_test =
  qt "fattest cube has minimal literal count" 200 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      if Bdd.is_zero f then true
      else begin
        let fat = List.length (Bdd.fattest_cube man f) in
        (* Any BDD path-cube is at least as long as the fattest one. *)
        let rec min_path f =
          if Bdd.is_one f then 0
          else if Bdd.is_zero f then max_int / 2
          else 1 + min (min_path (Bdd.low man f)) (min_path (Bdd.high man f))
        in
        fat = min_path f
      end)

let density_test =
  qt "density counts minterms" 300 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let count = ref 0 in
      for v = 0 to (1 lsl nvars) - 1 do
        if eval_expr (fun i -> v land (1 lsl i) <> 0) e then incr count
      done;
      let measured = Bdd.count_minterms man ~over:nvars f in
      abs_float (measured -. float_of_int !count) < 1e-6)

let support_test =
  qt "support is sound" 200 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let sup = Bdd.support man f in
      (* flipping a variable outside the support never changes f *)
      all_envs (fun env ->
          List.for_all
            (fun v ->
              List.mem v sup
              || Bdd.eval man f env
                 = Bdd.eval man f (fun i -> if i = v then not (env i) else env i))
            [ 0; 1; 2; 3; 4; 5 ]))

let rebuild_test =
  qt "rebuild into reversed order preserves semantics" 200 (fun e ->
      let src = Bdd.create ~nvars () in
      let f = build_bdd src e in
      let dst = Bdd.create ~nvars () in
      let map v = nvars - 1 - v in
      let g = Bdd.rebuild ~src ~dst ~map f in
      all_envs (fun env -> Bdd.eval dst g (fun i -> env (map i)) = eval_expr env e))

let gc_test =
  qt "gc preserves roots and protected nodes" 100 (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let keep = Bdd.protect man (Bdd.dnot man f) in
      (* garbage *)
      for i = 0 to 50 do
        ignore (Bdd.dand man f (Bdd.var man (i mod nvars)))
      done;
      let before = Bdd.num_nodes man in
      Bdd.gc man ~roots:[ f ];
      let after = Bdd.num_nodes man in
      after <= before
      && all_envs (fun env ->
             Bdd.eval man f env = eval_expr env e
             && Bdd.eval man keep env = not (eval_expr env e)))

let gc_reuse_test () =
  let man = Bdd.create ~nvars () in
  let a = Bdd.dand man (Bdd.var man 0) (Bdd.var man 1) in
  ignore a;
  Bdd.gc man ~roots:[];
  let live = Bdd.num_nodes man in
  (* recreate: slots are recycled, live count unchanged after rebuild *)
  let b = Bdd.dand man (Bdd.var man 0) (Bdd.var man 1) in
  Alcotest.(check bool) "b works" true
    (Bdd.eval man b (fun _ -> true));
  Alcotest.(check bool) "node store reused" true (Bdd.num_nodes man <= live + 3)

let limit_test () =
  let man = Bdd.create ~node_limit:20 ~nvars:16 () in
  (try
     let acc = ref (Bdd.one man) in
     for i = 0 to 15 do
       acc := Bdd.dand man !acc (Bdd.dxor man (Bdd.var man i) (Bdd.one man))
     done;
     Alcotest.fail "expected Limit_exceeded"
   with Bdd.Limit_exceeded -> ());
  (* manager still usable *)
  Alcotest.(check bool) "still usable" true
    (Bdd.eval man (Bdd.var man 0) (fun _ -> true))

let add_vars_test () =
  let man = Bdd.create ~nvars:2 () in
  let f = Bdd.dand man (Bdd.var man 0) (Bdd.var man 1) in
  let v2 = Bdd.add_vars man 1 in
  Alcotest.(check int) "new var index" 2 v2;
  let g = Bdd.dand man f (Bdd.var man v2) in
  Alcotest.(check bool) "works with new var" true
    (Bdd.eval man g (fun _ -> true));
  Alcotest.(check bool) "var order: new var at bottom" true
    (Bdd.topvar man g = 0)

let tests =
  [
    semantics_test;
    reduction_test;
    exists_test;
    and_exists_test;
    compose_test;
    rename_test;
    rename_monotone_test;
    cofactor_test;
    cube_roundtrip_test;
    sat_cubes_test;
    fattest_is_minimal_test;
    density_test;
    support_test;
    rebuild_test;
    gc_test;
    Alcotest.test_case "gc recycles slots" `Quick gc_reuse_test;
    Alcotest.test_case "node limit" `Quick limit_test;
    Alcotest.test_case "add_vars" `Quick add_vars_test;
  ]

let () = Alcotest.run "bdd" [ ("bdd", tests) ]
