(* End-to-end smoke tests for the full RFN pipeline on small designs
   where brute force can confirm the verdict. *)

open Rfn_circuit
module Rfn = Rfn_core.Rfn
module Sim3v = Rfn_sim3v.Sim3v
module Telemetry = Rfn_obs.Telemetry

let quick_config =
  {
    Rfn.default_config with
    Rfn.max_iterations = 32;
    node_limit = 500_000;
    mc_max_steps = 200;
  }

let check_verify name circuit out expected () =
  let prop = Property.of_output circuit out in
  let outcome, stats = Rfn.verify ~config:quick_config circuit prop in
  (match (outcome, expected) with
  | Rfn.Proved, `True -> ()
  | Rfn.Falsified t, `False ->
    Alcotest.(check bool)
      (name ^ ": counterexample replays")
      true
      (Sim3v.replay_concrete circuit t ~bad:prop.Property.bad)
  | Rfn.Proved, `False -> Alcotest.fail (name ^ ": proved a false property")
  | Rfn.Falsified _, `True ->
    Alcotest.fail (name ^ ": falsified a true property")
  | Rfn.Aborted why, _ ->
    Alcotest.fail (name ^ ": aborted: " ^ Rfn_failure.to_string why));
  Alcotest.(check bool) (name ^ ": at least one iteration") true
    (List.length stats.Rfn.iterations >= 1)

let test_arbiter_mutex () =
  let c = Helpers.arbiter_design () in
  check_verify "arbiter" c "bad" `True ()

let test_counter_limit_reachable () =
  (* A 3-bit counter reaches 7 -> property False, trace ~8 cycles. *)
  let c = Helpers.counter_design ~width:3 ~limit:7 in
  check_verify "counter-reach" c "at_limit" `False ()

let test_deep_bug () =
  let c = Helpers.deep_bug_design ~width:3 in
  check_verify "deep-bug" c "bad" `False ()

let test_cegar_phase_spans () =
  (* A full verify on the FIFO must trace every CEGAR phase: abstract
     model checking, hybrid trace extraction, concretization and
     refinement all produce spans. *)
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
  @@ fun () ->
  let outcome, stats =
    Rfn.verify ~config:quick_config fifo.Rfn_designs.Fifo.circuit
      fifo.Rfn_designs.Fifo.psh_hf
  in
  (match outcome with
  | Rfn.Proved -> ()
  | Rfn.Falsified _ -> Alcotest.fail "fifo: psh_hf should be proved"
  | Rfn.Aborted why ->
    Alcotest.fail ("fifo: aborted: " ^ Rfn_failure.to_string why));
  let iterations = List.length stats.Rfn.iterations in
  Alcotest.(check bool) "fifo refines at least once" true (iterations > 1);
  List.iter
    (fun phase ->
      match Telemetry.span_stats phase with
      | Some (calls, _) ->
        Alcotest.(check bool) (phase ^ " spanned") true (calls >= 1)
      | None -> Alcotest.fail ("no span recorded for " ^ phase))
    [ "rfn.abstract_mc"; "rfn.hybrid"; "rfn.concretize"; "rfn.refine" ];
  (* one abstract-MC span per iteration, and the engine counters the
     paper's tables are built from must be live *)
  (match Telemetry.span_stats "rfn.abstract_mc" with
  | Some (calls, _) ->
    Alcotest.(check int) "one abstract-MC span per iteration" iterations calls
  | None -> assert false);
  Alcotest.(check bool) "BDD cache counters live" true
    (Telemetry.counter_value (Telemetry.counter "bdd.cache_misses") > 0);
  Alcotest.(check bool) "ATPG solve counter live" true
    (Telemetry.counter_value (Telemetry.counter "atpg.solves") > 0)

let test_agrees_with_brute_force () =
  (* Random designs: RFN's verdict must match explicit-state search. *)
  let count = ref 0 in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:40 ~name:"rfn agrees with brute force"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:4 ~ngates:12)
       (fun rc ->
         incr count;
         let prop = Property.make ~name:"out" ~bad:rc.Helpers.out in
         let expected =
           Helpers.explicit_violates rc.Helpers.circuit ~bad:rc.Helpers.out
         in
         match Rfn.verify ~config:quick_config rc.Helpers.circuit prop with
         | Rfn.Proved, _ -> not expected
         | Rfn.Falsified t, _ ->
           expected
           && Sim3v.replay_concrete rc.Helpers.circuit t ~bad:rc.Helpers.out
         | Rfn.Aborted why, _ ->
           QCheck.Test.fail_report ("aborted: " ^ Rfn_failure.to_string why)))

let tests =
  [
    Alcotest.test_case "arbiter mutex is proved" `Quick test_arbiter_mutex;
    Alcotest.test_case "counter limit is falsified" `Quick
      test_counter_limit_reachable;
    Alcotest.test_case "deep planted bug is found" `Quick test_deep_bug;
    Alcotest.test_case "all CEGAR phases produce spans" `Quick
      test_cegar_phase_spans;
    Alcotest.test_case "verdicts agree with brute force" `Slow
      test_agrees_with_brute_force;
  ]

let () = Alcotest.run "pipeline" [ ("rfn", tests) ]
