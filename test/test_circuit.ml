(* Builder semantics, topological order, fanouts, evaluation, and the
   word-level Rtl helpers (checked against integer arithmetic). *)

open Rfn_circuit
module B = Circuit.Builder

let test_builder_basics () =
  let b = B.create () in
  let x = B.input b "x" and y = B.input b "y" in
  let g = B.and2 b x y in
  let r = B.reg_of b "r" g in
  B.output b "out" r;
  let c = B.finalize b in
  Alcotest.(check int) "inputs" 2 (Circuit.num_inputs c);
  Alcotest.(check int) "registers" 1 (Circuit.num_registers c);
  Alcotest.(check int) "gates" 1 (Circuit.num_gates c);
  Alcotest.(check int) "find by name" r (Circuit.find c "r");
  Alcotest.(check int) "output lookup" r (Circuit.output c "out");
  Alcotest.(check bool) "is_reg" true (Circuit.is_reg c r);
  Alcotest.(check bool) "is_input" true (Circuit.is_input c x)

let test_hash_consing () =
  let b = B.create () in
  let x = B.input b "x" and y = B.input b "y" in
  let g1 = B.and2 b x y and g2 = B.and2 b x y in
  Alcotest.(check int) "structurally equal gates shared" g1 g2;
  let g3 = B.and2 b y x in
  Alcotest.(check bool) "operand order distinguishes" true (g1 <> g3);
  let n1 = B.not_ b x in
  Alcotest.(check int) "double negation collapses" x (B.not_ b n1);
  let c1 = B.const b true and c2 = B.const b true in
  Alcotest.(check int) "constants interned" c1 c2

let test_simplifications () =
  let b = B.create () in
  let x = B.input b "x" in
  Alcotest.(check int) "unary and collapses" x (B.gate b Gate.And [| x |]);
  Alcotest.(check int) "unary or collapses" x (B.gate b Gate.Or [| x |]);
  Alcotest.(check int) "buf collapses" x (B.gate b Gate.Buf [| x |]);
  let t = B.const b true in
  Alcotest.(check int) "not of const folds" (B.const b false) (B.not_ b t)

let test_duplicate_name_rejected () =
  let b = B.create () in
  ignore (B.input b "x");
  (try
     ignore (B.input b "x");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_unconnected_register_rejected () =
  let b = B.create () in
  ignore (B.reg b "r");
  try
    ignore (B.finalize b);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_combinational_cycle_rejected () =
  let b = B.create () in
  let x = B.input b "x" in
  (* Build a cycle through named gates (hash-consing can't collapse). *)
  let g1 = B.gate b ~name:"g1" Gate.And [| x; x |] in
  let g2 = B.gate b ~name:"g2" Gate.Or [| g1; x |] in
  (* Rewire by constructing a register loop is fine... combinational
     cycles need fanin patching, which the builder API prevents; so we
     check the register path is accepted instead. *)
  let r = B.reg_of b "r" g2 in
  ignore r;
  ignore (B.finalize b)

let test_topological_order () =
  let b = B.create () in
  let x = B.input b "x" in
  let r = B.reg b "r" in
  let g1 = B.xor2 b x r in
  let g2 = B.not_ b g1 in
  B.connect b r g2;
  let c = B.finalize b in
  let pos = Array.make (Circuit.num_signals c) 0 in
  Array.iteri (fun i s -> pos.(s) <- i) c.Circuit.topo;
  Array.iteri
    (fun s node ->
      match node with
      | Circuit.Gate (_, fanins) ->
        Array.iter
          (fun f ->
            Alcotest.(check bool) "fanin before gate" true (pos.(f) < pos.(s)))
          fanins
      | _ -> ())
    c.Circuit.nodes;
  Alcotest.(check int) "level of g2" 2 c.Circuit.level.(g2)

let test_fanouts () =
  let b = B.create () in
  let x = B.input b "x" in
  let g1 = B.not_ b x in
  let g2 = B.gate b ~name:"g2" Gate.And [| x; g1 |] in
  let r = B.reg_of b "r" x in
  ignore g2;
  ignore r;
  let c = B.finalize b in
  let fx = Array.to_list c.Circuit.fanouts.(x) |> List.sort compare in
  Alcotest.(check (list int)) "x read by not, and, reg"
    (List.sort compare [ g1; g2; r ])
    fx

let test_eval_step () =
  let b = B.create () in
  let x = B.input b "x" in
  let r = B.reg b ~init:`One "r" in
  let g = B.xor2 b x r in
  B.connect b r g;
  B.output b "g" g;
  let c = B.finalize b in
  (* r starts 1; x=1 -> g = 0; next r = 0 *)
  let values, next = Circuit.step c ~input:(fun _ -> true) ~state:(fun _ -> true) in
  Alcotest.(check bool) "g = x xor r" false values.(g);
  Alcotest.(check bool) "next r" false (next r);
  Alcotest.(check bool) "initial_state one" true
    (Circuit.initial_state c ~free:(fun _ -> false) r)

let test_all_gate_kinds_eval () =
  let b = B.create () in
  let x = B.input b "x" and y = B.input b "y" and z = B.input b "z" in
  let gates =
    [
      (B.gate b Gate.And [| x; y; z |], fun a bb cc -> a && bb && cc);
      (B.gate b Gate.Or [| x; y; z |], fun a bb cc -> a || bb || cc);
      (B.gate b Gate.Nand [| x; y; z |], fun a bb cc -> not (a && bb && cc));
      (B.gate b Gate.Nor [| x; y; z |], fun a bb cc -> not (a || bb || cc));
      (B.gate b Gate.Xor [| x; y; z |], fun a bb cc -> a <> bb <> cc);
      ( B.gate b Gate.Xnor [| x; y; z |],
        fun a bb cc -> not (a <> bb <> cc) );
      (B.gate b Gate.Mux [| x; y; z |], fun s d0 d1 -> if s then d1 else d0);
    ]
  in
  let c = B.finalize b in
  for v = 0 to 7 do
    let bit i = v land (1 lsl i) <> 0 in
    let input s = if s = x then bit 0 else if s = y then bit 1 else bit 2 in
    let values = Circuit.eval c ~input ~state:(fun _ -> false) in
    List.iter
      (fun (g, expect) ->
        Alcotest.(check bool)
          (Printf.sprintf "gate %d input %d" g v)
          (expect (bit 0) (bit 1) (bit 2))
          values.(g))
      gates
  done

(* ---- Rtl helpers checked against machine integers ----------------- *)

let eval_word values w =
  Array.to_list w
  |> List.mapi (fun i s -> if values.(s) then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let rtl_arith_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"rtl arithmetic matches integers"
       QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
       (fun (av, bv, kv) ->
         let b = B.create () in
         let x = Rtl.input b "x" 8 and y = Rtl.input b "y" 8 in
         let sum = Rtl.add b x y in
         let dif = Rtl.sub b x y in
         let inc = Rtl.incr b x in
         let dec = Rtl.decr b x in
         let eq = Rtl.eq b x y in
         let eqc = Rtl.eq_const b x kv in
         let lt = Rtl.lt b x y in
         let gec = Rtl.ge_const b x kv in
         let zero = Rtl.is_zero b x in
         let anyb = Rtl.any b x and allb = Rtl.all b x in
         let c = B.finalize b in
         let input s =
           match Circuit.node c s with
           | Circuit.Input ->
             let name = Circuit.name c s in
             let idx = int_of_string (String.sub name 2 (String.length name - 2)) in
             if name.[0] = 'x' then av land (1 lsl idx) <> 0
             else bv land (1 lsl idx) <> 0
           | _ -> false
         in
         let values = Circuit.eval c ~input ~state:(fun _ -> false) in
         eval_word values sum = (av + bv) land 255
         && eval_word values dif = (av - bv) land 255
         && eval_word values inc = (av + 1) land 255
         && eval_word values dec = (av - 1) land 255
         && values.(eq) = (av = bv)
         && values.(eqc) = (av = kv)
         && values.(lt) = (av < bv)
         && values.(gec) = (av >= kv)
         && values.(zero) = (av = 0)
         && values.(anyb) = (av <> 0)
         && values.(allb) = (av = 255)))

let test_rtl_counter () =
  let b = B.create () in
  let en = B.input b "en" and clr = B.input b "clr" in
  let q = Rtl.counter b ~clear:clr ~name:"q" ~width:4 ~enable:en () in
  let c = B.finalize b in
  let state = ref (fun _ -> false) in
  let run en_v clr_v =
    let _, next =
      Circuit.step c
        ~input:(fun s -> if s = en then en_v else clr_v)
        ~state:!state
    in
    state := next
  in
  run true false;
  run true false;
  run false false;
  let values = Circuit.eval c ~input:(fun _ -> false) ~state:!state in
  Alcotest.(check int) "counted to 2" 2 (eval_word values q);
  run true true;
  let values = Circuit.eval c ~input:(fun _ -> false) ~state:!state in
  Alcotest.(check int) "clear wins" 0 (eval_word values q)

let test_rtl_shift_reg () =
  let b = B.create () in
  let din = B.input b "din" and en = B.input b "en" in
  let q = Rtl.shift_reg b ~name:"s" ~length:3 ~din ~enable:en () in
  let c = B.finalize b in
  let state = ref (fun _ -> false) in
  let run din_v =
    let _, next =
      Circuit.step c ~input:(fun s -> if s = din then din_v else true)
        ~state:!state
    in
    state := next
  in
  run true;
  run false;
  run true;
  let v = Array.map (fun s -> !state s) q in
  Alcotest.(check (array bool)) "newest first" [| true; false; true |] v

(* Regression: [Circuit.output] on an unknown name used to leak a bare
   [Not_found] from [List.assoc]; it must name the missing output, and
   [output_opt] gives the total variant. *)
let test_output_lookup () =
  let b = B.create () in
  let x = B.input b "x" in
  B.output b "good" x;
  let c = B.finalize b in
  Alcotest.(check int) "known output" x (Circuit.output c "good");
  Alcotest.(check (option int))
    "output_opt on a known name" (Some x)
    (Circuit.output_opt c "good");
  Alcotest.(check (option int))
    "output_opt on an unknown name" None
    (Circuit.output_opt c "nope");
  match Circuit.output c "nope" with
  | (_ : int) -> Alcotest.fail "unknown output should raise"
  | exception Invalid_argument msg ->
    Alcotest.(check string)
      "the error names the output" "Circuit.output: no output \"nope\"" msg

let tests =
  [
    Alcotest.test_case "builder basics" `Quick test_builder_basics;
    Alcotest.test_case "structural hashing" `Quick test_hash_consing;
    Alcotest.test_case "trivial simplifications" `Quick test_simplifications;
    Alcotest.test_case "duplicate names rejected" `Quick
      test_duplicate_name_rejected;
    Alcotest.test_case "unconnected register rejected" `Quick
      test_unconnected_register_rejected;
    Alcotest.test_case "register feedback accepted" `Quick
      test_combinational_cycle_rejected;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "fanout map" `Quick test_fanouts;
    Alcotest.test_case "eval and step" `Quick test_eval_step;
    Alcotest.test_case "output lookup" `Quick test_output_lookup;
    Alcotest.test_case "all gate kinds" `Quick test_all_gate_kinds_eval;
    rtl_arith_test;
    Alcotest.test_case "rtl counter" `Quick test_rtl_counter;
    Alcotest.test_case "rtl shift register" `Quick test_rtl_shift_reg;
  ]

let () = Alcotest.run "circuit" [ ("circuit", tests) ]
