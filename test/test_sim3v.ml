open Rfn_circuit
module Sim3v = Rfn_sim3v.Sim3v
module B = Circuit.Builder

let tv = Alcotest.testable Sim3v.pp ( = )

let test_gate_semantics () =
  let v b = Sim3v.of_bool b in
  let check name kind args expected =
    Alcotest.check tv name expected
      (Sim3v.eval_gate kind
         (fun i -> args.(i))
         (Array.init (Array.length args) (fun i -> i)))
  in
  check "and with a 0 is 0" Gate.And [| Sim3v.VX; v false |] (v false);
  check "and with all 1 is 1" Gate.And [| v true; v true |] (v true);
  check "and with X is X" Gate.And [| v true; Sim3v.VX |] Sim3v.VX;
  check "or with a 1 is 1" Gate.Or [| Sim3v.VX; v true |] (v true);
  check "nor with a 1 is 0" Gate.Nor [| Sim3v.VX; v true |] (v false);
  check "nand with a 0 is 1" Gate.Nand [| v false; Sim3v.VX |] (v true);
  check "xor with X is X" Gate.Xor [| v true; Sim3v.VX |] Sim3v.VX;
  check "xor concrete" Gate.Xor [| v true; v true; v true |] (v true);
  check "xnor concrete" Gate.Xnor [| v true; v false |] (v false);
  check "not X" Gate.Not [| Sim3v.VX |] Sim3v.VX;
  check "buf" Gate.Buf [| v true |] (v true);
  check "mux sel 0" Gate.Mux [| v false; v true; Sim3v.VX |] (v true);
  check "mux sel 1" Gate.Mux [| v true; Sim3v.VX; v false |] (v false);
  check "mux sel X same data" Gate.Mux [| Sim3v.VX; v true; v true |] (v true);
  check "mux sel X diff data" Gate.Mux [| Sim3v.VX; v true; v false |] Sim3v.VX

let test_conflicts () =
  Alcotest.(check bool) "0 vs 1" true (Sim3v.conflicts Sim3v.V0 Sim3v.V1);
  Alcotest.(check bool) "X vs 1" false (Sim3v.conflicts Sim3v.VX Sim3v.V1);
  Alcotest.(check bool) "X vs X" false (Sim3v.conflicts Sim3v.VX Sim3v.VX);
  Alcotest.(check bool) "0 vs 0" false (Sim3v.conflicts Sim3v.V0 Sim3v.V0)

(* Concrete agreement: with fully concrete inputs/state, ternary
   simulation equals Boolean evaluation on every signal. *)
let concrete_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"concrete 3v sim = boolean eval"
       (QCheck.pair
          (Helpers.arbitrary_circuit ~nins:3 ~nregs:3 ~ngates:12)
          (QCheck.pair (QCheck.int_bound 7) (QCheck.int_bound 7)))
       (fun (rc, (iv, sv)) ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let idx arr x =
           let rec go i = if arr.(i) = x then i else go (i + 1) in
           go 0
         in
         let input s = iv land (1 lsl idx c.Circuit.inputs s) <> 0 in
         let state r = sv land (1 lsl idx c.Circuit.registers r) <> 0 in
         let bools = Circuit.eval c ~input ~state in
         let ternary =
           Sim3v.eval view
             ~free:(fun s -> Sim3v.of_bool (input s))
             ~state:(fun r -> Sim3v.of_bool (state r))
         in
         Array.for_all
           (fun s -> ternary.(s) = Sim3v.of_bool bools.(s))
           (Array.init (Circuit.num_signals c) (fun i -> i))))

(* X-monotonicity: making some inputs X can only move outputs toward X,
   never flip a concrete value. *)
let x_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"3v sim is X-monotone"
       (QCheck.triple
          (Helpers.arbitrary_circuit ~nins:4 ~nregs:3 ~ngates:12)
          (QCheck.int_bound 15)
          (QCheck.int_bound 15))
       (fun (rc, iv, mask) ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let idx arr x =
           let rec go i = if arr.(i) = x then i else go (i + 1) in
           go 0
         in
         let concrete s =
           Sim3v.of_bool (iv land (1 lsl idx c.Circuit.inputs s) <> 0)
         in
         let blurred s =
           if mask land (1 lsl idx c.Circuit.inputs s) <> 0 then Sim3v.VX
           else concrete s
         in
         let state _ = Sim3v.V0 in
         let full = Sim3v.eval view ~free:concrete ~state in
         let part = Sim3v.eval view ~free:blurred ~state in
         Array.for_all
           (fun s -> part.(s) = Sim3v.VX || part.(s) = full.(s))
           (Array.init (Circuit.num_signals c) (fun i -> i))))

let test_run_counts_cycles () =
  let b = B.create () in
  let en = B.input b "en" in
  let q = Rtl.counter b ~name:"q" ~width:3 ~enable:en () in
  B.output b "q0" q.(0);
  let c = B.finalize b in
  let view = Sview.whole c ~roots:[ q.(0) ] in
  let frames =
    Sim3v.run view
      ~init:(fun _ -> Sim3v.V0)
      ~inputs:(fun ~cycle:_ _ -> Sim3v.V1)
      ~cycles:3
  in
  Alcotest.(check int) "four frames" 4 (Array.length frames);
  (* q after 3 enabled cycles: frame 3 sees q = 3 -> bit0 = 1, bit1 = 1 *)
  Alcotest.check tv "bit0 at cycle 3" Sim3v.V1 frames.(3).(q.(0));
  Alcotest.check tv "bit1 at cycle 3" Sim3v.V1 frames.(3).(q.(1));
  Alcotest.check tv "bit2 at cycle 3" Sim3v.V0 frames.(3).(q.(2))

let test_replay_concrete () =
  (* counter_design: 3-bit counter reaching 7 with enable *)
  let c = Helpers.counter_design ~width:3 ~limit:2 in
  let bad = Circuit.output c "at_limit" in
  let en = Circuit.find c "enable" in
  let on = Cube.of_list [ (en, true) ] in
  let good_trace =
    Trace.make
      ~states:[| Cube.empty; Cube.empty; Cube.empty |]
      ~inputs:[| on; on |]
  in
  Alcotest.(check bool) "two enables reach limit 2" true
    (Sim3v.replay_concrete c good_trace ~bad);
  let off = Cube.of_list [ (en, false) ] in
  let bad_trace =
    Trace.make
      ~states:[| Cube.empty; Cube.empty; Cube.empty |]
      ~inputs:[| off; off |]
  in
  Alcotest.(check bool) "no enable, no violation" false
    (Sim3v.replay_concrete c bad_trace ~bad)

(* ---- packed (bit-parallel) simulation ------------------------------- *)

module Packed = Sim3v.Packed
module Telemetry = Rfn_obs.Telemetry

let tern h =
  match h mod 3 with 0 -> Sim3v.V0 | 1 -> Sim3v.V1 | _ -> Sim3v.VX

let test_packed_words () =
  (* get/set/splat/of_fun agree and preserve the plane invariant *)
  let w = Packed.of_fun (fun lane -> tern lane) in
  Alcotest.(check int) "planes disjoint" 0 (w.Packed.ones land w.Packed.unks);
  for lane = 0 to Packed.lanes - 1 do
    Alcotest.check tv
      (Printf.sprintf "of_fun lane %d" lane)
      (tern lane) (Packed.get w lane)
  done;
  List.iter
    (fun v ->
      let s = Packed.splat v in
      Alcotest.check tv "splat lane 0" v (Packed.get s 0);
      Alcotest.check tv "splat last lane" v (Packed.get s (Packed.lanes - 1));
      let w' = Packed.set w 7 v in
      Alcotest.check tv "set lane 7" v (Packed.get w' 7);
      Alcotest.check tv "set leaves lane 8" (tern 8) (Packed.get w' 8))
    [ Sim3v.V0; Sim3v.V1; Sim3v.VX ]

(* Lane-wise differential against the scalar evaluator on random
   circuits, every lane carrying an independent random ternary
   assignment. The scalar evaluator is the oracle. *)
let packed_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"packed sim = scalar sim on every lane"
       (QCheck.pair
          (Helpers.arbitrary_circuit ~nins:4 ~nregs:3 ~ngates:14)
          QCheck.small_int)
       (fun (rc, seed) ->
         let c = rc.Helpers.circuit in
         let view = Sview.whole c ~roots:[ rc.Helpers.out ] in
         let free_at lane s = tern (Hashtbl.hash (seed, lane, 'f', s)) in
         let state_at lane r = tern (Hashtbl.hash (seed, lane, 's', r)) in
         let vec =
           Packed.eval view
             ~free:(fun s -> Packed.of_fun (fun lane -> free_at lane s))
             ~state:(fun r -> Packed.of_fun (fun lane -> state_at lane r))
         in
         let ok = ref true in
         for lane = 0 to Packed.lanes - 1 do
           let scalar =
             Sim3v.eval view ~free:(free_at lane) ~state:(state_at lane)
           in
           Array.iteri
             (fun s v ->
               if Packed.read_lane vec s ~lane <> v then ok := false)
             scalar
         done;
         !ok))

(* Multi-cycle differential over the design zoo: packed [run] against
   one scalar [run] per lane, all signals, all cycles. *)
let test_packed_zoo_differential () =
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let designs =
    [
      ("counter3", Helpers.counter_design ~width:3 ~limit:7);
      ("deep_bug3", Helpers.deep_bug_design ~width:3);
      ("fifo_small", fifo.Rfn_designs.Fifo.circuit);
    ]
  in
  let c_words = Telemetry.counter "sim.packed_words" in
  let before = Telemetry.counter_value c_words in
  List.iter
    (fun (name, c) ->
      let view = Sview.whole c ~roots:(List.map snd c.Circuit.outputs) in
      let cycles = 6 in
      let init_at lane r = tern (Hashtbl.hash (name, lane, 'r', r)) in
      let input_at cycle lane s = tern (Hashtbl.hash (name, cycle, lane, s)) in
      let pvecs =
        Packed.run view
          ~init:(fun r -> Packed.of_fun (fun lane -> init_at lane r))
          ~inputs:(fun ~cycle s ->
            Packed.of_fun (fun lane -> input_at cycle lane s))
          ~cycles
      in
      for lane = 0 to Packed.lanes - 1 do
        let svecs =
          Sim3v.run view ~init:(init_at lane)
            ~inputs:(fun ~cycle s -> input_at cycle lane s)
            ~cycles
        in
        Array.iteri
          (fun cyc frame ->
            Array.iteri
              (fun s v ->
                if Packed.read_lane pvecs.(cyc) s ~lane <> v then
                  Alcotest.fail
                    (Printf.sprintf
                       "%s: signal %s diverges at cycle %d lane %d" name
                       (Circuit.name c s) cyc lane))
              frame)
          svecs
      done)
    designs;
  Alcotest.(check bool)
    "packed evaluation is counted in sim.packed_words" true
    (Telemetry.counter_value c_words > before)

let tests =
  [
    Alcotest.test_case "ternary gate semantics" `Quick test_gate_semantics;
    Alcotest.test_case "conflict relation" `Quick test_conflicts;
    concrete_agreement;
    x_monotone;
    Alcotest.test_case "sequential run" `Quick test_run_counts_cycles;
    Alcotest.test_case "concrete trace replay" `Quick test_replay_concrete;
    Alcotest.test_case "packed word operations" `Quick test_packed_words;
    packed_differential;
    Alcotest.test_case "packed zoo differential" `Quick
      test_packed_zoo_differential;
  ]

let () = Alcotest.run "sim3v" [ ("sim3v", tests) ]
