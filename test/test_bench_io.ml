open Rfn_circuit

let sample =
  {|
# a tiny sequential design
INPUT(a)
INPUT(b)
OUTPUT(f)
f = AND(a, nb)
nb = NOT(b)
r = DFF(f)       # register, init 0
r1 = DFF1(r)
rx = DFFX(r1)
k0 = CONST0
g = MUX(a, k0, rx)
OUTPUT(g)
|}

let test_parse_sample () =
  let c = Bench_io.parse sample in
  Alcotest.(check int) "inputs" 2 (Circuit.num_inputs c);
  Alcotest.(check int) "registers" 3 (Circuit.num_registers c);
  let r = Circuit.find c "r" in
  (match Circuit.node c r with
  | Circuit.Reg { init = `Zero; next } ->
    Alcotest.(check int) "r next is f" (Circuit.find c "f") next
  | _ -> Alcotest.fail "r should be a DFF");
  (match Circuit.node c (Circuit.find c "r1") with
  | Circuit.Reg { init = `One; _ } -> ()
  | _ -> Alcotest.fail "r1 should init to 1");
  match Circuit.node c (Circuit.find c "rx") with
  | Circuit.Reg { init = `Free; _ } -> ()
  | _ -> Alcotest.fail "rx should have a free init"

let test_forward_references () =
  (* g uses h before h is defined *)
  let c = Bench_io.parse "INPUT(a)\ng = NOT(h)\nh = NOT(a)\nOUTPUT(g)\n" in
  let values =
    Circuit.eval c ~input:(fun _ -> true) ~state:(fun _ -> false)
  in
  Alcotest.(check bool) "g = not (not a)" true values.(Circuit.find c "g")

let expect_failure name text =
  Alcotest.test_case name `Quick (fun () ->
      try
        ignore (Bench_io.parse text);
        Alcotest.fail "expected parse failure"
      with Failure _ -> ())

let expect_message name text fragments =
  Alcotest.test_case name `Quick (fun () ->
      try
        ignore (Bench_io.parse text);
        Alcotest.fail "expected parse failure"
      with Failure msg ->
        List.iter
          (fun frag ->
            let contains =
              let fl = String.length frag and ml = String.length msg in
              let rec at i =
                i + fl <= ml && (String.sub msg i fl = frag || at (i + 1))
              in
              at 0
            in
            if not contains then
              Alcotest.failf "message %S should mention %S" msg frag)
          fragments)

(* the error names every gate on the cycle, in read order, with the
   line of the cycle's entry point *)
let cycle_3_gates =
  expect_message "3-gate cycle path"
    "g1 = AND(g2, i)\ng2 = OR(g3, i)\ng3 = NOT(g1)\nINPUT(i)\nOUTPUT(g1)\n"
    [ "line 1"; "combinational cycle: g1 -> g2 -> g3 -> g1" ]

let undefined_signal_line =
  expect_message "undefined signal cites referencing line"
    "INPUT(a)\nf = NOT(a)\ng = NOT(zz)\nOUTPUT(g)\n"
    [ "line 3"; "undefined signal \"zz\"" ]

let test_roundtrip () =
  let c = Bench_io.parse sample in
  let printed = Bench_io.to_string c in
  let c2 = Bench_io.parse printed in
  Alcotest.(check int) "same signal count" (Circuit.num_signals c)
    (Circuit.num_signals c2);
  (* behaviour preserved: compare a few steps of simulation *)
  for v = 0 to 3 do
    let input c' s = v land (1 lsl (if Circuit.name c' s = "a" then 0 else 1)) <> 0 in
    let va = Circuit.eval c ~input:(input c) ~state:(fun _ -> false) in
    let vb = Circuit.eval c2 ~input:(input c2) ~state:(fun _ -> false) in
    Alcotest.(check bool) "f agrees"
      va.(Circuit.output c "f")
      vb.(Circuit.output c2 "f")
  done

let roundtrip_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"print/parse roundtrip on random circuits"
       (Helpers.arbitrary_circuit ~nins:3 ~nregs:3 ~ngates:10)
       (fun rc ->
         let c = rc.Helpers.circuit in
         let c2 = Bench_io.parse (Bench_io.to_string c) in
         (* compare reachable behaviour of the distinguished output *)
         let out2 = Circuit.output c2 "out" in
         let steps = 5 in
         let rec sim c' out st cycle acc =
           if cycle >= steps then List.rev acc
           else begin
             let input s =
               (* deterministic pseudo-random input per (name, cycle) *)
               (Hashtbl.hash (Circuit.name c' s, cycle) land 1) = 1
             in
             let values, next = Circuit.step c' ~input ~state:st in
             sim c' out (fun r -> next r) (cycle + 1) (values.(out) :: acc)
           end
         in
         let init c' r =
           match Circuit.node c' r with
           | Circuit.Reg { init = `One; _ } -> true
           | _ -> false
         in
         sim c rc.Helpers.out (init c) 0 []
         = sim c2 out2 (init c2) 0 []))

let tests =
  [
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "forward references" `Quick test_forward_references;
    Alcotest.test_case "roundtrip sample" `Quick test_roundtrip;
    roundtrip_random;
    expect_failure "unknown operator" "INPUT(a)\nf = FROB(a)\n";
    expect_failure "undefined signal" "f = NOT(nonexistent)\nOUTPUT(f)\n";
    expect_failure "redefinition" "INPUT(a)\nf = NOT(a)\nf = BUF(a)\n";
    expect_failure "combinational cycle" "f = NOT(g)\ng = NOT(f)\n";
    cycle_3_gates;
    undefined_signal_line;
    expect_failure "dff arity" "INPUT(a)\nr = DFF(a, a)\n";
    expect_failure "undefined output" "INPUT(a)\nOUTPUT(zz)\n";
    expect_failure "input redefined" "INPUT(a)\na = CONST0\n";
    expect_failure "malformed line" "INPUT(a)\nthis is not a statement\n";
  ]

let () = Alcotest.run "bench_io" [ ("bench_io", tests) ]
