(* The reproduction drivers themselves, exercised on the scaled-down
   designs: verdict shapes must match the paper's (Table 1 results,
   Table 2's "RFN >= BFS", the guidance win) regardless of sizes. *)

module E = Rfn_experiments.Experiments

let find rows property =
  List.find (fun r -> r.E.Table1.property = property) rows

let test_table1_shape () =
  let rows = E.Table1.run ~small:true ~baseline:false () in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun (p, expected) ->
      let r = find rows p in
      Alcotest.(check string) (p ^ " verdict") expected r.E.Table1.result;
      Alcotest.(check bool)
        (p ^ " abstract model smaller than COI")
        true
        (r.E.Table1.abstract_regs < r.E.Table1.coi_regs))
    [
      ("mutex", "T");
      ("error_flag", "F");
      ("psh_hf", "T");
      ("psh_af", "T");
      ("psh_full", "T");
    ];
  let ef = find rows "error_flag" in
  Alcotest.(check bool) "error trace recorded" true
    (ef.E.Table1.trace_cycles <> None)

let test_table2_shape () =
  let rows = E.Table2.run ~small:true ~budget:3.0 ~bfs_k:10 () in
  Alcotest.(check int) "seven rows" 7 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.E.Table2.set ^ ": RFN >= BFS")
        true
        (r.E.Table2.rfn_unreachable >= r.E.Table2.bfs_unreachable))
    rows;
  (* the IU sets share one COI *)
  let iu =
    List.filter (fun r -> String.length r.E.Table2.set >= 2
                          && String.sub r.E.Table2.set 0 2 = "IU") rows
  in
  (match iu with
  | first :: rest ->
    List.iter
      (fun r ->
        Alcotest.(check int) "identical COI regs" first.E.Table2.coi_regs
          r.E.Table2.coi_regs)
      rest
  | [] -> Alcotest.fail "no IU rows")

let test_figure1_shape () =
  let rows = E.Figure1.run ~small:true () in
  Alcotest.(check bool) "rows produced" true (rows <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "cut never exceeds model inputs" true
        (r.E.Figure1.cut_size <= r.E.Figure1.model_inputs);
      Alcotest.(check bool) "some backward steps recorded" true
        (r.E.Figure1.no_cut_steps + r.E.Figure1.min_cut_steps >= 1))
    rows

let test_guidance_shape () =
  let rows = E.Guidance.run ~small:true () in
  (* only error_flag is falsifiable among the five *)
  Alcotest.(check int) "one row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "guided search succeeds" true r.E.Guidance.guided_found;
  Alcotest.(check bool) "guided effort <= unguided effort" true
    (r.E.Guidance.guided_backtracks <= r.E.Guidance.unguided_backtracks)

let test_refinement_shape () =
  let rows = E.Refinement.run ~small:true () in
  Alcotest.(check bool) "rows produced" true (rows <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "kept <= candidates" true
        (r.E.Refinement.added <= r.E.Refinement.candidates);
      Alcotest.(check bool) "kept at least one" true (r.E.Refinement.added >= 1))
    rows

let test_subsetting_shape () =
  let rows = E.Subsetting.run ~small:true () in
  Alcotest.(check bool) "rows produced" true (rows <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "subset within budget" true
        (r.E.Subsetting.subset_size
        <= max 10 (r.E.Subsetting.original_size / 10) + 2);
      Alcotest.(check bool) "retention is a fraction" true
        (r.E.Subsetting.density_retained >= 0.0
        && r.E.Subsetting.density_retained <= 1.0 +. 1e-9))
    rows

let tests =
  [
    Alcotest.test_case "table 1 shape" `Quick test_table1_shape;
    Alcotest.test_case "table 2 shape" `Quick test_table2_shape;
    Alcotest.test_case "figure 1 shape" `Quick test_figure1_shape;
    Alcotest.test_case "guidance ablation shape" `Quick test_guidance_shape;
    Alcotest.test_case "refinement ablation shape" `Quick
      test_refinement_shape;
    Alcotest.test_case "subsetting ablation shape" `Quick
      test_subsetting_shape;
  ]

let () = Alcotest.run "experiments" [ ("experiments", tests) ]
