(* The deep-observability layer: log-bucketed histograms, the Chrome
   trace-event sink, CEGAR provenance round-tripping, the resource
   sampler, and the provenance stream of a real verification run. *)

module Telemetry = Rfn_obs.Telemetry
module Json = Rfn_obs.Json
module Provenance = Rfn_obs.Provenance
module Sampler = Rfn_obs.Sampler
module Rfn = Rfn_core.Rfn

let with_clean_registry f =
  Telemetry.detach ();
  Telemetry.disable ();
  Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.detach ();
      Telemetry.disable ();
      Telemetry.reset ())
    f

let tmp_file suffix = Filename.temp_file "rfn_obs_test" suffix

let read_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_lines file =
  String.split_on_char '\n' (read_file file)
  |> List.filter (fun l -> String.trim l <> "")

(* ---- histograms ------------------------------------------------------ *)

let test_histogram_basics () =
  with_clean_registry @@ fun () ->
  let h = Telemetry.histogram "test.h" in
  Alcotest.(check int) "fresh histogram is empty" 0
    (Telemetry.histogram_count h);
  List.iter (Telemetry.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Telemetry.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Telemetry.histogram_sum h);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Telemetry.histogram_max h);
  let h' = Telemetry.histogram "test.h" in
  Telemetry.observe h' 5.0;
  Alcotest.(check int) "same name, same histogram" 5
    (Telemetry.histogram_count h);
  Telemetry.reset ();
  Alcotest.(check int) "reset empties, handle stays valid" 0
    (Telemetry.histogram_count h)

let test_histogram_quantiles () =
  with_clean_registry @@ fun () ->
  let h = Telemetry.histogram "test.q" in
  (* 90 tiny observations and 10 large ones: p50 lands in the tiny
     bucket, p90 at its edge, and everything is clamped to the true
     observed maximum *)
  for _ = 1 to 90 do
    Telemetry.observe h 1e-6
  done;
  for _ = 1 to 10 do
    Telemetry.observe h 1.0
  done;
  let p50 = Telemetry.histogram_quantile h 0.5 in
  let p99 = Telemetry.histogram_quantile h 0.99 in
  Alcotest.(check bool) "p50 in the small-value range" true
    (p50 >= 1e-7 && p50 <= 1e-5);
  Alcotest.(check bool) "p99 in the large-value range" true (p99 > 0.1);
  Alcotest.(check bool) "quantile clamped to observed max" true
    (p99 <= Telemetry.histogram_max h);
  (* the bucket estimate is an upper bound of the bucket, never below
     the true quantile *)
  Alcotest.(check bool) "p50 upper-bounds the true median" true (p50 >= 1e-6)

let test_histogram_rejects_nonfinite () =
  with_clean_registry @@ fun () ->
  let h = Telemetry.histogram "test.nf" in
  Telemetry.observe h Float.nan;
  Telemetry.observe h Float.infinity;
  Telemetry.observe h Float.neg_infinity;
  Telemetry.observe h (-1.0);
  Alcotest.(check int) "non-finite and negative observations dropped" 0
    (Telemetry.histogram_count h);
  Telemetry.observe h 0.0;
  Alcotest.(check int) "zero lands in the first bucket" 1
    (Telemetry.histogram_count h)

let test_histogram_snapshot_and_events () =
  with_clean_registry @@ fun () ->
  let file = tmp_file ".jsonl" in
  Telemetry.attach_jsonl file;
  let h = Telemetry.histogram "test.snap" in
  Telemetry.observe h 0.5;
  Telemetry.observe h 2.0e9;
  (* the final snapshot (including the large-magnitude observation) is
     written when the sink detaches *)
  Telemetry.detach ();
  let hist_lines =
    List.filter_map
      (fun l ->
        let j = Json.of_string l in
        match (Json.member "ev" j, Json.member "name" j) with
        | Some (Json.Str "histogram"), Some (Json.Str "test.snap") -> Some j
        | _ -> None)
      (read_lines file)
  in
  Sys.remove file;
  match hist_lines with
  | [ j ] ->
    Alcotest.(check (option int))
      "count" (Some 2)
      (Option.bind (Json.member "count" j) Json.to_int);
    let p90 =
      match Option.bind (Json.member "p90" j) Json.to_float with
      | Some f -> f
      | None -> Alcotest.fail "missing p90"
    in
    Alcotest.(check bool) "p90 covers the billion-scale value" true
      (p90 >= 1.0e9)
  | l ->
    Alcotest.failf "expected exactly one histogram event, got %d"
      (List.length l)

(* ---- Chrome trace sink ----------------------------------------------- *)

let test_chrome_trace_file () =
  with_clean_registry @@ fun () ->
  let file = tmp_file ".json" in
  Telemetry.attach_trace file;
  Alcotest.(check bool) "trace attached" true (Telemetry.trace_attached ());
  Telemetry.with_span "outer" (fun () ->
      Telemetry.with_span "inner"
        ~attrs:[ ("k", Json.Int 7) ]
        (fun () -> ());
      Telemetry.event "tick" [ ("n", Json.Int 1) ];
      Telemetry.trace_counter "gauge.x" [ ("value", 3.0) ]);
  Telemetry.detach ();
  let events =
    match Json.of_string (read_file file) with
    | Json.List l -> l
    | _ -> Alcotest.fail "trace file is not a JSON array"
  in
  Sys.remove file;
  let phs name =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "name" e) with
        | Some (Json.Str ph), Some (Json.Str n) when n = name -> Some ph
        | _ -> None)
      events
  in
  Alcotest.(check (list string)) "outer span is a complete event" [ "X" ]
    (phs "outer");
  Alcotest.(check (list string)) "inner span is a complete event" [ "X" ]
    (phs "inner");
  Alcotest.(check (list string)) "event is an instant" [ "i" ] (phs "tick");
  Alcotest.(check (list string)) "counter series" [ "C" ] (phs "gauge.x");
  (* every record carries non-negative microsecond timestamps *)
  List.iter
    (fun e ->
      match Option.bind (Json.member "ts" e) Json.to_float with
      | Some ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
      | None -> ())
    events;
  (* the inner complete event nests within the outer one *)
  let bounds name =
    List.find_map
      (fun e ->
        match (Json.member "name" e, Json.member "ph" e) with
        | Some (Json.Str n), Some (Json.Str "X") when n = name ->
          Some
            ( Option.get (Option.bind (Json.member "ts" e) Json.to_float),
              Option.get (Option.bind (Json.member "dur" e) Json.to_float) )
        | _ -> None)
      events
  in
  match (bounds "outer", bounds "inner") with
  | Some (ots, odur), Some (its, idur) ->
    Alcotest.(check bool) "inner contained in outer" true
      (its >= ots && its +. idur <= ots +. odur +. 1.0)
  | _ -> Alcotest.fail "missing span bounds"

let test_trace_survives_exceptions () =
  with_clean_registry @@ fun () ->
  let file = tmp_file ".json" in
  Telemetry.attach_trace file;
  (try
     Telemetry.with_span "doomed" (fun () -> failwith "engine abort")
   with Failure _ -> ());
  Alcotest.(check int) "span depth balanced after raise" 0
    (Telemetry.current_depth ());
  Telemetry.detach ();
  let events =
    match Json.of_string (read_file file) with
    | Json.List l -> l
    | _ -> Alcotest.fail "trace file is not a JSON array"
  in
  Sys.remove file;
  let doomed =
    List.find_opt
      (fun e -> Json.member "name" e = Some (Json.Str "doomed"))
      events
  in
  match doomed with
  | Some e ->
    let error =
      Option.bind (Json.member "args" e) (fun a -> Json.member "error" a)
    in
    Alcotest.(check bool) "failed span records its error" true (error <> None)
  | None -> Alcotest.fail "span lost on the exception path"

(* ---- provenance records ---------------------------------------------- *)

let sample_record =
  {
    Provenance.iter = 3;
    regs_before = 5;
    regs_after = 7;
    model_inputs = 12;
    fixpoint_steps = 9;
    trace_depth = Some 4;
    cut_size = Some 2;
    cubes = 16;
    guidance = 2;
    engine = "portfolio";
    concretize = "not-found";
    promoted = [ "count_0"; "full_flag" ];
    candidates = 8;
    retries = 1;
    fallbacks = 0;
    injected = 0;
    worker_failures = 0;
    bdd_nodes = 1234;
    bdd_peak = 5678;
    sat_learned = 42;
    backtracks = 17;
    seconds = 0.125;
    outcome = "refined";
  }

let test_provenance_roundtrip () =
  let j = Provenance.to_json sample_record in
  (* through the printer and parser, like a real --metrics-out line *)
  match Provenance.of_json (Json.of_string (Json.to_string j)) with
  | Ok p -> Alcotest.(check bool) "round-trips exactly" true (p = sample_record)
  | Error f -> Alcotest.fail ("round-trip lost field " ^ f)

let test_provenance_roundtrip_edge_values () =
  let edge =
    {
      sample_record with
      Provenance.trace_depth = None;
      cut_size = None;
      promoted = [];
      bdd_nodes = max_int;
      seconds = 1.2345678901234567;
    }
  in
  (match
     Provenance.of_json
       (Json.of_string (Json.to_string (Provenance.to_json edge)))
   with
  | Ok p ->
    Alcotest.(check bool) "options, max_int and 17-digit floats survive" true
      (p = edge)
  | Error f -> Alcotest.fail ("edge round-trip lost field " ^ f));
  (* non-finite floats serialize as null and parse back as 0.0 *)
  let weird = { sample_record with Provenance.seconds = Float.nan } in
  let s = Json.to_string (Provenance.to_json weird) in
  Alcotest.(check bool) "nan rendered as null" true
    (match Json.member "seconds" (Json.of_string s) with
    | Some Json.Null -> true
    | _ -> false);
  match Provenance.of_json (Json.of_string s) with
  | Ok p ->
    Alcotest.(check (float 0.0)) "null parses as 0.0" 0.0
      p.Provenance.seconds
  | Error f -> Alcotest.fail ("nan policy lost field " ^ f)

let test_provenance_tolerates_unknown_and_rejects_missing () =
  let j = Provenance.to_json sample_record in
  let with_extra =
    match j with
    | Json.Obj fields ->
      Json.Obj (("future_field", Json.Str "ignored") :: fields)
    | _ -> Alcotest.fail "provenance json is not an object"
  in
  (match Provenance.of_json with_extra with
  | Ok p ->
    Alcotest.(check bool) "unknown fields ignored" true (p = sample_record)
  | Error f -> Alcotest.fail ("unknown field broke parsing: " ^ f));
  let without_iter =
    match j with
    | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> k <> "iter") fields)
    | _ -> assert false
  in
  match Provenance.of_json without_iter with
  | Ok _ -> Alcotest.fail "missing required field must be rejected"
  | Error f ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) ("error names the field: " ^ f) true
      (contains f "iter")

(* ---- resource sampler ------------------------------------------------ *)

let test_sampler_tick () =
  with_clean_registry @@ fun () ->
  let file = tmp_file ".jsonl" in
  Telemetry.attach_jsonl file;
  Sampler.tick "test.phase";
  Telemetry.detach ();
  let samples =
    List.filter_map
      (fun l ->
        let j = Json.of_string l in
        match Json.member "ev" j with
        | Some (Json.Str "sample") -> Some j
        | _ -> None)
      (read_lines file)
  in
  Sys.remove file;
  match samples with
  | [ j ] ->
    Alcotest.(check (option string))
      "labelled with the phase" (Some "test.phase")
      (Option.bind (Json.member "at" j) Json.to_str);
    let heap =
      match Option.bind (Json.member "gc_heap_words" j) Json.to_int with
      | Some w -> w
      | None -> Alcotest.fail "sample lacks gc_heap_words"
    in
    Alcotest.(check bool) "heap words positive" true (heap > 0)
  | l -> Alcotest.failf "expected exactly one sample, got %d" (List.length l)

let test_sampler_disabled_is_silent () =
  with_clean_registry @@ fun () ->
  (* no sink, telemetry disabled: a tick must be a no-op, not a crash *)
  Sampler.tick "idle";
  Alcotest.(check pass) "tick without telemetry" () ()

(* ---- provenance stream of a real run --------------------------------- *)

let test_verify_emits_provenance () =
  with_clean_registry @@ fun () ->
  let file = tmp_file ".jsonl" in
  Telemetry.attach_jsonl file;
  let fifo = Rfn_designs.Fifo.(make ~params:small ()) in
  let outcome, stats =
    Rfn.verify fifo.Rfn_designs.Fifo.circuit fifo.Rfn_designs.Fifo.psh_hf
  in
  Telemetry.detach ();
  (match outcome with
  | Rfn.Proved -> ()
  | _ -> Alcotest.fail "fifo psh_hf must prove");
  let n_iters = List.length stats.Rfn.iterations in
  Alcotest.(check int) "one provenance record per iteration" n_iters
    (List.length stats.Rfn.provenance);
  let streamed =
    List.filter_map
      (fun l ->
        let j = Json.of_string l in
        match Json.member "ev" j with
        | Some (Json.Str "rfn.iteration") -> (
          match Provenance.of_json j with
          | Ok p -> Some p
          | Error f -> Alcotest.fail ("unparseable rfn.iteration: " ^ f))
        | _ -> None)
      (read_lines file)
  in
  Sys.remove file;
  Alcotest.(check bool) "streamed records equal the in-memory ones" true
    (streamed = stats.Rfn.provenance);
  List.iteri
    (fun i p ->
      Alcotest.(check int) "iterations numbered from 1" (i + 1)
        p.Provenance.iter)
    streamed;
  (match List.rev streamed with
  | last :: _ ->
    Alcotest.(check string) "final record carries the verdict" "proved"
      last.Provenance.outcome
  | [] -> Alcotest.fail "no provenance records");
  (* a proving run refines on every non-final iteration *)
  List.iter
    (fun p ->
      if p.Provenance.outcome = "refined" then begin
        Alcotest.(check bool) "refinement grows the abstraction" true
          (p.Provenance.regs_after > p.Provenance.regs_before);
        Alcotest.(check bool) "promoted names recorded" true
          (p.Provenance.promoted <> [])
      end)
    streamed

let tests =
  [
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram drops non-finite values" `Quick
      test_histogram_rejects_nonfinite;
    Alcotest.test_case "histogram snapshot events" `Quick
      test_histogram_snapshot_and_events;
    Alcotest.test_case "chrome trace file shape" `Quick test_chrome_trace_file;
    Alcotest.test_case "chrome trace survives exceptions" `Quick
      test_trace_survives_exceptions;
    Alcotest.test_case "provenance round-trip" `Quick test_provenance_roundtrip;
    Alcotest.test_case "provenance edge values and nan policy" `Quick
      test_provenance_roundtrip_edge_values;
    Alcotest.test_case "provenance unknown/missing fields" `Quick
      test_provenance_tolerates_unknown_and_rejects_missing;
    Alcotest.test_case "sampler tick emits a sample" `Quick test_sampler_tick;
    Alcotest.test_case "sampler silent when disabled" `Quick
      test_sampler_disabled_is_silent;
    Alcotest.test_case "verify streams one record per iteration" `Quick
      test_verify_emits_provenance;
  ]

let () = Alcotest.run "obs" [ ("obs", tests) ]
