module Bitset = Rfn_circuit.Bitset

let test_empty () =
  let s = Bitset.create 100 in
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [] (Bitset.to_list s);
  for i = 0 to 99 do
    Alcotest.(check bool) "mem" false (Bitset.mem s i)
  done

let test_add_remove () =
  let s = Bitset.create 64 in
  Bitset.add s 0;
  Bitset.add s 7;
  Bitset.add s 8;
  Bitset.add s 63;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 7; 8; 63 ]
    (Bitset.to_list s);
  Bitset.add s 7;
  Alcotest.(check int) "idempotent add" 4 (Bitset.cardinal s);
  Bitset.remove s 7;
  Alcotest.(check bool) "removed" false (Bitset.mem s 7);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal s);
  Bitset.remove s 7;
  Alcotest.(check int) "idempotent remove" 3 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index -1 out of [0,10)")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index 10 out of [0,10)")
    (fun () -> Bitset.add s 10)

let test_copy_independent () =
  let s = Bitset.of_list 32 [ 1; 2; 3 ] in
  let t = Bitset.copy s in
  Bitset.add t 10;
  Alcotest.(check bool) "copy has it" true (Bitset.mem t 10);
  Alcotest.(check bool) "original does not" false (Bitset.mem s 10)

let test_union_subset_equal () =
  let a = Bitset.of_list 20 [ 1; 3; 5 ] in
  let b = Bitset.of_list 20 [ 3; 5; 7 ] in
  Alcotest.(check bool) "not subset" false (Bitset.subset a b);
  Bitset.union_into b a;
  Alcotest.(check (list int)) "union" [ 1; 3; 5; 7 ] (Bitset.to_list b);
  Alcotest.(check bool) "subset after union" true (Bitset.subset a b);
  let c = Bitset.of_list 20 [ 1; 3; 5; 7 ] in
  Alcotest.(check bool) "equal" true (Bitset.equal b c);
  Bitset.remove c 7;
  Alcotest.(check bool) "not equal" false (Bitset.equal b c)

let test_fold_iter_order () =
  let s = Bitset.of_list 256 [ 200; 3; 77 ] in
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "iter ascending" [ 3; 77; 200 ]
    (List.rev !seen);
  Alcotest.(check int) "fold sums" 280 (Bitset.fold (fun i a -> i + a) s 0)

let qcheck_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"bitset agrees with list-set model"
       QCheck.(list (int_bound 127))
       (fun ops ->
         let s = Bitset.create 128 in
         let model = Hashtbl.create 16 in
         List.iter
           (fun i ->
             if i mod 3 = 0 then begin
               Bitset.remove s i;
               Hashtbl.remove model i
             end
             else begin
               Bitset.add s i;
               Hashtbl.replace model i ()
             end)
           ops;
         Bitset.cardinal s = Hashtbl.length model
         && List.for_all (fun i -> Hashtbl.mem model i) (Bitset.to_list s)))

let tests =
  [
    Alcotest.test_case "empty set" `Quick test_empty;
    Alcotest.test_case "add and remove" `Quick test_add_remove;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "union, subset, equal" `Quick test_union_subset_equal;
    Alcotest.test_case "fold and iter order" `Quick test_fold_iter_order;
    qcheck_model;
  ]

let () = Alcotest.run "bitset" [ ("bitset", tests) ]
