(** Textual netlist format (ISCAS89 ".bench" dialect).

    Grammar (one statement per line, [#] starts a comment):
    {v
    INPUT(name)
    OUTPUT(name)
    name = KIND(a, b, ...)        # KIND in AND OR NAND NOR XOR XNOR NOT BUF MUX
    name = DFF(d)                 # register, initial value 0
    name = DFF1(d)                # register, initial value 1
    name = DFFX(d)                # register, free initial value
    name = CONST0                 # likewise CONST1
    v}

    Definitions may appear in any order; forward references are
    resolved after parsing. *)

val parse : string -> Circuit.t
(** Parse from a string. Raises [Failure] with a line-numbered message
    on syntax or consistency errors. *)

val parse_file : string -> Circuit.t

val print : Format.formatter -> Circuit.t -> unit
(** Print in a form [parse] accepts; round-trips the design up to
    signal renumbering. *)

val to_string : Circuit.t -> string
