type init = [ `Zero | `One | `Free ]

type node =
  | Input
  | Const of bool
  | Gate of Gate.kind * int array
  | Reg of { init : init; next : int }

type t = {
  nodes : node array;
  names : string array;
  inputs : int array;
  registers : int array;
  outputs : (string * int) list;
  topo : int array;
  fanouts : int array array;
  level : int array;
}

let num_signals t = Array.length t.nodes

let num_gates t =
  Array.fold_left
    (fun n nd -> match nd with Gate _ -> n + 1 | _ -> n)
    0 t.nodes

let num_registers t = Array.length t.registers
let num_inputs t = Array.length t.inputs
let node t s = t.nodes.(s)
let name t s = t.names.(s)

let find t nm =
  let n = Array.length t.names in
  let rec loop i =
    if i >= n then raise Not_found
    else if String.equal t.names.(i) nm then i
    else loop (i + 1)
  in
  loop 0

let output_opt t nm = List.assoc_opt nm t.outputs

let output t nm =
  match output_opt t nm with
  | Some s -> s
  | None ->
    (* Invalid_argument naming the output, per the Varmap diagnostic
       convention; a bare List.assoc raised an anonymous Not_found that
       crashed callers as far away as the serve loop. *)
    invalid_arg (Printf.sprintf "Circuit.output: no output %S" nm)
let is_reg t s = match t.nodes.(s) with Reg _ -> true | _ -> false
let is_input t s = match t.nodes.(s) with Input -> true | _ -> false

let eval t ~input ~state =
  let values = Array.make (Array.length t.nodes) false in
  let get s = values.(s) in
  Array.iter
    (fun s ->
      values.(s) <-
        (match t.nodes.(s) with
        | Input -> input s
        | Const b -> b
        | Reg _ -> state s
        | Gate (kind, fanins) -> Gate.eval kind get fanins))
    t.topo;
  values

let step t ~input ~state =
  let values = eval t ~input ~state in
  let next r =
    match t.nodes.(r) with
    | Reg { next; _ } -> values.(next)
    | _ -> invalid_arg "Circuit.step: not a register"
  in
  (values, next)

let initial_state t ~free r =
  match t.nodes.(r) with
  | Reg { init = `Zero; _ } -> false
  | Reg { init = `One; _ } -> true
  | Reg { init = `Free; _ } -> free r
  | _ -> invalid_arg "Circuit.initial_state: not a register"

module Builder = struct
  type cell = BInput | BConst of bool | BGate of Gate.kind * int array | BReg of init

  type c = {
    mutable cells : cell array;
    mutable names_ : string array;
    mutable n : int;
    mutable outs : (string * int) list;
    next_of : (int, int) Hashtbl.t;  (* register -> next signal *)
    cons : (Gate.kind * int list, int) Hashtbl.t;  (* structural hashing *)
    consts : (bool, int) Hashtbl.t;
    by_name : (string, int) Hashtbl.t;
    mutable anon : int;
  }

  let create () =
    {
      cells = Array.make 64 BInput;
      names_ = Array.make 64 "";
      n = 0;
      outs = [];
      next_of = Hashtbl.create 97;
      cons = Hashtbl.create 997;
      consts = Hashtbl.create 3;
      by_name = Hashtbl.create 997;
      anon = 0;
    }

  let grow c =
    if c.n >= Array.length c.cells then begin
      let len = 2 * Array.length c.cells in
      let cells = Array.make len BInput in
      Array.blit c.cells 0 cells 0 c.n;
      c.cells <- cells;
      let names = Array.make len "" in
      Array.blit c.names_ 0 names 0 c.n;
      c.names_ <- names
    end

  let fresh_name c prefix =
    c.anon <- c.anon + 1;
    Printf.sprintf "%s_%d" prefix c.anon

  let add c name cell =
    grow c;
    let id = c.n in
    if Hashtbl.mem c.by_name name then
      invalid_arg (Printf.sprintf "Circuit.Builder: duplicate name %S" name);
    Hashtbl.add c.by_name name id;
    c.cells.(id) <- cell;
    c.names_.(id) <- name;
    c.n <- id + 1;
    id

  let input c name = add c name BInput

  let const c b =
    match Hashtbl.find_opt c.consts b with
    | Some id -> id
    | None ->
      let id = add c (if b then "const_1" else "const_0") (BConst b) in
      Hashtbl.add c.consts b id;
      id

  let gate c ?name kind fanins =
    if not (Gate.arity_ok kind (Array.length fanins)) then
      invalid_arg
        (Printf.sprintf "Circuit.Builder: bad arity %d for %s"
           (Array.length fanins) (Gate.to_string kind));
    Array.iter
      (fun s ->
        if s < 0 || s >= c.n then
          invalid_arg "Circuit.Builder: fanin signal out of range")
      fanins;
    (* Cheap structural simplifications that keep generated designs from
       drowning in trivial cells. Named gates are never simplified away
       so that lookups by name stay meaningful. *)
    let simplified =
      if name <> None then None
      else
        match (kind, fanins) with
        | (Gate.And | Gate.Or), [| a |] -> Some a
        | Gate.Buf, [| a |] -> Some a
        | Gate.Not, [| a |] -> (
          match c.cells.(a) with
          | BGate (Gate.Not, inner) -> Some inner.(0)
          | BConst b -> Some (const c (not b))
          | _ -> None)
        | _ -> None
    in
    match simplified with
    | Some s -> s
    | None -> (
      let key = (kind, Array.to_list fanins) in
      match (name, Hashtbl.find_opt c.cons key) with
      | None, Some id -> id
      | _ ->
        let name =
          match name with
          | Some n -> n
          | None -> fresh_name c (String.lowercase_ascii (Gate.to_string kind))
        in
        let id = add c name (BGate (kind, Array.copy fanins)) in
        if not (Hashtbl.mem c.cons key) then Hashtbl.add c.cons key id;
        id)

  let reg c ?(init = `Zero) name = add c name (BReg init)

  let connect c r d =
    (match c.cells.(r) with
    | BReg _ -> ()
    | _ -> invalid_arg "Circuit.Builder.connect: not a register");
    if Hashtbl.mem c.next_of r then
      invalid_arg "Circuit.Builder.connect: register already connected";
    if d < 0 || d >= c.n then
      invalid_arg "Circuit.Builder.connect: signal out of range";
    Hashtbl.add c.next_of r d

  let reg_of c ?init name d =
    let r = reg c ?init name in
    connect c r d;
    r

  let output c name s =
    if s < 0 || s >= c.n then
      invalid_arg "Circuit.Builder.output: signal out of range";
    c.outs <- (name, s) :: c.outs

  let not_ c a = gate c Gate.Not [| a |]
  let and2 c a b = gate c Gate.And [| a; b |]
  let or2 c a b = gate c Gate.Or [| a; b |]
  let xor2 c a b = gate c Gate.Xor [| a; b |]

  let and_l c = function
    | [] -> const c true
    | [ a ] -> a
    | l -> gate c Gate.And (Array.of_list l)

  let or_l c = function
    | [] -> const c false
    | [ a ] -> a
    | l -> gate c Gate.Or (Array.of_list l)

  let mux c sel d0 d1 = gate c Gate.Mux [| sel; d0; d1 |]
  let eq2 c a b = gate c Gate.Xnor [| a; b |]
  let implies c a b = or2 c (not_ c a) b

  let finalize c =
    let n = c.n in
    let nodes =
      Array.init n (fun i ->
          match c.cells.(i) with
          | BInput -> Input
          | BConst b -> Const b
          | BGate (kind, fanins) -> Gate (kind, fanins)
          | BReg init -> (
            match Hashtbl.find_opt c.next_of i with
            | Some next -> Reg { init; next }
            | None ->
              invalid_arg
                (Printf.sprintf
                   "Circuit.Builder.finalize: register %S never connected"
                   c.names_.(i))))
    in
    let names = Array.sub c.names_ 0 n in
    let inputs = ref [] and registers = ref [] in
    Array.iteri
      (fun i nd ->
        match nd with
        | Input -> inputs := i :: !inputs
        | Reg _ -> registers := i :: !registers
        | Const _ | Gate _ -> ())
      nodes;
    (* Topological sort of the combinational graph (registers break
       cycles: a register's output is a source, its next input a sink). *)
    let level = Array.make n 0 in
    let state = Bytes.make n '\000' in
    (* 0 unvisited, 1 on stack, 2 done *)
    let order = ref [] in
    let trail = ref [] in
    (* DFS stack of on-stack signals, most recent first *)
    let rec visit s =
      match Bytes.get state s with
      | '\002' -> ()
      | '\001' ->
        (* the error names the full ordered cycle: each signal reads
           the next, wrapping back to [s] *)
        let rec ancestors acc = function
          | [] -> List.rev acc
          | x :: _ when x = s -> List.rev acc
          | x :: rest -> ancestors (x :: acc) rest
        in
        let path = (s :: List.rev (ancestors [] !trail)) @ [ s ] in
        invalid_arg
          (Printf.sprintf "Circuit.Builder.finalize: combinational cycle: %s"
             (String.concat " -> " (List.map (fun i -> names.(i)) path)))
      | _ ->
        Bytes.set state s '\001';
        trail := s :: !trail;
        (match nodes.(s) with
        | Gate (_, fanins) ->
          Array.iter visit fanins;
          level.(s) <-
            1 + Array.fold_left (fun m f -> max m level.(f)) 0 fanins
        | Input | Const _ | Reg _ -> ());
        trail := List.tl !trail;
        Bytes.set state s '\002';
        order := s :: !order
    in
    for s = 0 to n - 1 do
      visit s
    done;
    let topo = Array.of_list (List.rev !order) in
    (* Fanouts: readers of each signal. *)
    let counts = Array.make n 0 in
    let record s = counts.(s) <- counts.(s) + 1 in
    Array.iteri
      (fun _ nd ->
        match nd with
        | Gate (_, fanins) -> Array.iter record fanins
        | Reg { next; _ } -> record next
        | Input | Const _ -> ())
      nodes;
    let fanouts = Array.init n (fun s -> Array.make counts.(s) 0) in
    let fill = Array.make n 0 in
    Array.iteri
      (fun i nd ->
        let record s =
          fanouts.(s).(fill.(s)) <- i;
          fill.(s) <- fill.(s) + 1
        in
        match nd with
        | Gate (_, fanins) -> Array.iter record fanins
        | Reg { next; _ } -> record next
        | Input | Const _ -> ())
      nodes;
    {
      nodes;
      names;
      inputs = Array.of_list (List.rev !inputs);
      registers = Array.of_list (List.rev !registers);
      outputs = List.rev c.outs;
      topo;
      fanouts;
      level;
    }
end

let pp_stats ppf t =
  Format.fprintf ppf "signals=%d gates=%d registers=%d inputs=%d outputs=%d"
    (num_signals t) (num_gates t) (num_registers t) (num_inputs t)
    (List.length t.outputs)
