(* AIGER reader/writer (ascii [aag] and binary [aig] formats).

   The reader accepts both formats (dispatching on the header magic),
   supports AIGER 1.9 bad-state properties (the [B] section), and maps
   latch resets 0 / 1 / self-literal onto register initial values
   [`Zero] / [`One] / [`Free]. Bad-state properties are declared as
   ordinary circuit outputs (named from the symbol table, else [b<k>])
   so the rest of the system — [Property.of_output], [verify], [lint],
   [serve] — sees them exactly like `.bench` outputs.

   Errors follow the [Bench_io] discipline: [Failure] with a message
   starting ["Aiger_io: line <n>: ..."] (or [byte <n>] inside the
   binary AND section). *)

module B = Circuit.Builder

let syntax_error line msg =
  failwith (Printf.sprintf "Aiger_io: line %d: %s" line msg)

let byte_error pos msg =
  failwith (Printf.sprintf "Aiger_io: byte %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type cursor = { text : string; mutable pos : int; mutable line : int }

let next_line cur =
  if cur.pos >= String.length cur.text then None
  else begin
    let start = cur.pos in
    let stop =
      match String.index_from_opt cur.text start '\n' with
      | Some i -> i
      | None -> String.length cur.text
    in
    cur.pos <- stop + 1;
    cur.line <- cur.line + 1;
    Some (String.sub cur.text start (stop - start))
  end

let require_line cur what =
  match next_line cur with
  | Some l -> l
  | None -> syntax_error cur.line (Printf.sprintf "missing %s line" what)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let nat_of_token cur tok =
  match int_of_string_opt tok with
  | Some n when n >= 0 -> n
  | _ ->
    syntax_error cur.line (Printf.sprintf "expected a natural number, got %S" tok)

let nats_of_line cur line = List.map (nat_of_token cur) (tokens line)

type header = {
  binary : bool;
  m : int;  (** maximum variable index *)
  i : int;  (** inputs *)
  l : int;  (** latches *)
  o : int;  (** outputs *)
  a : int;  (** AND gates *)
  b : int;  (** bad-state properties (AIGER 1.9) *)
}

let parse_header cur =
  let line = require_line cur "header" in
  match tokens line with
  | magic :: rest when magic = "aag" || magic = "aig" ->
    let binary = magic = "aig" in
    let ns = List.map (nat_of_token cur) rest in
    (match ns with
    | m :: i :: l :: o :: a :: opt ->
      let b, rest19 =
        match opt with [] -> (0, []) | b :: tl -> (b, tl)
      in
      if List.exists (fun n -> n <> 0) rest19 then
        syntax_error cur.line
          "invariant constraints, justice and fairness properties are not \
           supported";
      if m < i + l + a then
        syntax_error cur.line
          (Printf.sprintf "header M = %d < I + L + A = %d" m (i + l + a));
      if binary && m <> i + l + a then
        syntax_error cur.line
          (Printf.sprintf "binary header requires M = I + L + A, got %d <> %d"
             m (i + l + a));
      { binary; m; i; l; o; a; b }
    | _ ->
      syntax_error cur.line
        (Printf.sprintf "header %S: expected M I L O A [B]" line))
  | _ ->
    syntax_error cur.line
      (Printf.sprintf "expected an AIGER header (aag/aig), got %S"
         (if String.length line > 40 then String.sub line 0 40 else line))

(* One 7-bit-per-byte little-endian varint (the binary delta code). *)
let read_varint cur =
  let rec go shift acc =
    if cur.pos >= String.length cur.text then
      byte_error cur.pos "unexpected end of file in AND section";
    let byte = Char.code cur.text.[cur.pos] in
    cur.pos <- cur.pos + 1;
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

type latch_decl = { reset : int; next_lit : int; decl_line : int }

let parse (text : string) : Circuit.t =
  let cur = { text; pos = 0; line = 0 } in
  let h = parse_header cur in
  (* Input literals: implicit in binary, checked in ascii. *)
  if not h.binary then
    for k = 0 to h.i - 1 do
      let line = require_line cur "input" in
      match nats_of_line cur line with
      | [ lit ] when lit = 2 * (k + 1) -> ()
      | [ lit ] ->
        syntax_error cur.line
          (Printf.sprintf "input %d: expected literal %d, got %d" k
             (2 * (k + 1))
             lit)
      | _ -> syntax_error cur.line "input line must hold a single literal"
    done;
  (* Latches: [lit next [reset]] in ascii, [next [reset]] in binary. *)
  let latches =
    Array.init h.l (fun k ->
        let lit = 2 * (h.i + k + 1) in
        let line = require_line cur "latch" in
        let ns = nats_of_line cur line in
        let ns =
          if h.binary then ns
          else
            match ns with
            | l0 :: rest when l0 = lit -> rest
            | l0 :: _ ->
              syntax_error cur.line
                (Printf.sprintf "latch %d: expected literal %d, got %d" k lit
                   l0)
            | [] -> syntax_error cur.line "empty latch line"
        in
        match ns with
        | [ next_lit ] -> { reset = 0; next_lit; decl_line = cur.line }
        | [ next_lit; reset ] ->
          if reset <> 0 && reset <> 1 && reset <> lit then
            syntax_error cur.line
              (Printf.sprintf
                 "latch %d: reset must be 0, 1 or the latch literal %d, got %d"
                 k lit reset);
          { reset; next_lit; decl_line = cur.line }
        | _ -> syntax_error cur.line "latch line must hold next [reset]")
  in
  let read_lit_lines what n =
    Array.init n (fun k ->
        let line = require_line cur what in
        match nats_of_line cur line with
        | [ lit ] -> (lit, cur.line)
        | _ ->
          syntax_error cur.line
            (Printf.sprintf "%s %d line must hold a single literal" what k))
  in
  let outputs = read_lit_lines "output" h.o in
  let bads = read_lit_lines "bad" h.b in
  (* AND gates: var -> (rhs0, rhs1, source position). *)
  let ands : (int, int * int * int) Hashtbl.t = Hashtbl.create (2 * h.a + 1) in
  if h.binary then
    for k = 0 to h.a - 1 do
      let v = h.i + h.l + k + 1 in
      let lhs = 2 * v in
      let at = cur.pos in
      let delta0 = read_varint cur in
      let delta1 = read_varint cur in
      let rhs0 = lhs - delta0 in
      let rhs1 = rhs0 - delta1 in
      if rhs1 < 0 then
        byte_error at
          (Printf.sprintf "AND %d: deltas %d %d underflow literal %d" k delta0
             delta1 lhs);
      Hashtbl.replace ands v (rhs0, rhs1, at)
    done
  else
    for k = 0 to h.a - 1 do
      let line = require_line cur "AND" in
      match nats_of_line cur line with
      | [ lhs; rhs0; rhs1 ] ->
        if lhs land 1 = 1 then
          syntax_error cur.line
            (Printf.sprintf "AND %d: left-hand side %d is negated" k lhs);
        let v = lhs / 2 in
        if v <= h.i + h.l || v > h.m then
          syntax_error cur.line
            (Printf.sprintf "AND %d: left-hand side %d is not an AND variable"
               k lhs);
        if Hashtbl.mem ands v then
          syntax_error cur.line
            (Printf.sprintf "AND %d: redefinition of literal %d" k lhs);
        Hashtbl.replace ands v (rhs0, rhs1, cur.line)
      | _ -> syntax_error cur.line "AND line must hold lhs rhs0 rhs1"
    done;
  (* After the binary AND section the cursor sits on a byte boundary;
     resynchronise the line counter for symbol-table errors. *)
  if h.binary then begin
    let n = ref 0 in
    for p = 0 to cur.pos - 1 do
      if text.[p] = '\n' then incr n
    done;
    cur.line <- !n
  end;
  (* Symbol table, terminated by EOF or a comment section. *)
  let symbols : (char * int, string) Hashtbl.t = Hashtbl.create 17 in
  let rec read_symbols () =
    match next_line cur with
    | None -> ()
    | Some "c" -> () (* rest of the file is a comment *)
    | Some "" -> read_symbols ()
    | Some line ->
      let bad () =
        syntax_error cur.line
          (Printf.sprintf "malformed symbol-table entry %S" line)
      in
      (match String.index_opt line ' ' with
      | None -> bad ()
      | Some sp ->
        let tag = String.sub line 0 sp in
        let name = String.sub line (sp + 1) (String.length line - sp - 1) in
        if String.length tag < 2 || name = "" then bad ();
        let kind = tag.[0] in
        if not (List.mem kind [ 'i'; 'l'; 'o'; 'b' ]) then bad ();
        let idx =
          match int_of_string_opt (String.sub tag 1 (String.length tag - 1)) with
          | Some n when n >= 0 -> n
          | _ -> bad ()
        in
        let limit =
          match kind with
          | 'i' -> h.i
          | 'l' -> h.l
          | 'o' -> h.o
          | _ -> h.b
        in
        if idx >= limit then
          syntax_error cur.line
            (Printf.sprintf "symbol %s: index out of range (max %d)" tag
               (limit - 1));
        Hashtbl.replace symbols (kind, idx) name);
      read_symbols ()
  in
  read_symbols ();
  let sym kind idx fallback =
    match Hashtbl.find_opt symbols (kind, idx) with
    | Some n -> n
    | None -> Printf.sprintf "%c%d" fallback idx
  in
  (* Build the circuit. *)
  let b = B.create () in
  let ids = Array.make (h.m + 1) (-1) in
  for k = 0 to h.i - 1 do
    ids.(k + 1) <- B.input b (sym 'i' k 'i')
  done;
  Array.iteri
    (fun k (ld : latch_decl) ->
      let init =
        match ld.reset with
        | 0 -> `Zero
        | 1 -> `One
        | _ -> `Free (* reset = own literal: uninitialised *)
      in
      ids.(h.i + k + 1) <- B.reg b ~init (sym 'l' k 'l'))
    latches;
  (* Resolve AND variables recursively (ascii files may define them in
     any order); the stack detects combinational cycles and names the
     full path, as [Bench_io] does. *)
  let building = ref [] in
  let rec lit_id ~at lit =
    if lit = 0 then B.const b false
    else if lit = 1 then B.const b true
    else begin
      let v = lit lsr 1 in
      if v > h.m then
        syntax_error at
          (Printf.sprintf "literal %d exceeds maximum variable %d" lit h.m);
      let id = var_id ~at v in
      if lit land 1 = 1 then B.not_ b id else id
    end
  and var_id ~at v =
    if ids.(v) >= 0 then ids.(v)
    else begin
      if List.mem v !building then begin
        let rec upto acc = function
          | [] -> List.rev acc
          | x :: _ when x = v -> List.rev acc
          | x :: rest -> upto (x :: acc) rest
        in
        let path = (v :: List.rev (upto [] !building)) @ [ v ] in
        syntax_error at
          (Printf.sprintf "combinational cycle through AND variables: %s"
             (String.concat " -> " (List.map string_of_int path)))
      end;
      match Hashtbl.find_opt ands v with
      | None ->
        syntax_error at (Printf.sprintf "undefined variable %d" v)
      | Some (rhs0, rhs1, pos) ->
        let at = if h.binary then 0 else pos in
        building := v :: !building;
        let a0 = lit_id ~at rhs0 in
        let a1 = lit_id ~at rhs1 in
        building := List.tl !building;
        let id = B.and2 b a0 a1 in
        ids.(v) <- id;
        id
    end
  in
  Array.iteri
    (fun k (ld : latch_decl) ->
      let r = ids.(h.i + k + 1) in
      try B.connect b r (lit_id ~at:ld.decl_line ld.next_lit)
      with Invalid_argument m -> syntax_error ld.decl_line m)
    latches;
  let declare kind fallback arr =
    Array.iteri
      (fun k (lit, line) ->
        B.output b (sym kind k fallback) (lit_id ~at:line lit))
      arr
  in
  declare 'o' 'o' outputs;
  declare 'b' 'b' bads;
  try B.finalize b
  with Invalid_argument m -> failwith (Printf.sprintf "Aiger_io: %s" m)

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

(* Arbitrary gates are lowered to an AND-inverter graph with
   literal-level structural hashing and constant folding. Fresh AND
   variables are allocated past all input/latch variables and past the
   fanin literals they combine, so the binary delta constraint
   [lhs > rhs0 >= rhs1] holds by construction. *)

type aig = {
  mutable next_var : int;
  strash : (int * int, int) Hashtbl.t;
  mutable rev_ands : (int * int * int) list;  (** lhs, rhs0, rhs1 *)
  mutable n_ands : int;
}

let mknot lit = lit lxor 1

let mkand g a b0 =
  let a, b0 = if a >= b0 then (a, b0) else (b0, a) in
  (* a >= b0 *)
  if b0 = 0 then 0
  else if b0 = 1 then a
  else if a = b0 then a
  else if a = mknot b0 then 0
  else
    match Hashtbl.find_opt g.strash (a, b0) with
    | Some lit -> lit
    | None ->
      g.next_var <- g.next_var + 1;
      let lhs = 2 * g.next_var in
      g.rev_ands <- (lhs, a, b0) :: g.rev_ands;
      g.n_ands <- g.n_ands + 1;
      Hashtbl.replace g.strash (a, b0) lhs;
      lhs

let mkor g a b0 = mknot (mkand g (mknot a) (mknot b0))
let mkxor g a b0 = mkor g (mkand g a (mknot b0)) (mkand g (mknot a) b0)
let mkmux g sel d0 d1 = mkor g (mkand g sel d1) (mkand g (mknot sel) d0)

let fanin1 ~gate (kind : Gate.kind) = function
  | [ x ] -> x
  | lits ->
    invalid_arg
      (Printf.sprintf "Aiger_io: %s gate %S has %d fanins (expected 1)"
         (Gate.to_string kind) gate (List.length lits))

let fold1 ~gate kind op g = function
  | [] ->
    invalid_arg
      (Printf.sprintf "Aiger_io: %s gate %S has no fanins"
         (Gate.to_string kind) gate)
  | x :: rest -> List.fold_left (op g) x rest

let lower g ~gate (kind : Gate.kind) lits =
  match kind with
  | Gate.Not -> mknot (fanin1 ~gate kind lits)
  | Gate.Buf -> fanin1 ~gate kind lits
  | Gate.And -> fold1 ~gate kind mkand g lits
  | Gate.Nand -> mknot (fold1 ~gate kind mkand g lits)
  | Gate.Or -> fold1 ~gate kind mkor g lits
  | Gate.Nor -> mknot (fold1 ~gate kind mkor g lits)
  | Gate.Xor -> fold1 ~gate kind mkxor g lits
  | Gate.Xnor -> mknot (fold1 ~gate kind mkxor g lits)
  | Gate.Mux -> (
    match lits with
    | [ sel; d0; d1 ] -> mkmux g sel d0 d1
    | _ ->
      invalid_arg
        (Printf.sprintf "Aiger_io: Mux gate %S has %d fanins (expected 3)"
           gate (List.length lits)))

let encode_varint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let to_string ?(binary = false) ?(bads = []) (c : Circuit.t) =
  let ni = Array.length c.Circuit.inputs in
  let nl = Array.length c.Circuit.registers in
  let lit_of = Array.make (Circuit.num_signals c) (-1) in
  Array.iteri (fun k s -> lit_of.(s) <- 2 * (k + 1)) c.Circuit.inputs;
  Array.iteri (fun k s -> lit_of.(s) <- 2 * (ni + k + 1)) c.Circuit.registers;
  let g =
    { next_var = ni + nl; strash = Hashtbl.create 97; rev_ands = []; n_ands = 0 }
  in
  Array.iter
    (fun s ->
      match Circuit.node c s with
      | Circuit.Input | Circuit.Reg _ -> ()
      | Circuit.Const bv -> lit_of.(s) <- (if bv then 1 else 0)
      | Circuit.Gate (kind, fanins) ->
        let lits =
          Array.to_list (Array.map (fun f -> lit_of.(f)) fanins)
        in
        lit_of.(s) <- lower g ~gate:(Circuit.name c s) kind lits)
    c.Circuit.topo;
  let ands = Array.of_list (List.rev g.rev_ands) in
  let m = ni + nl + g.n_ands in
  let is_bad n = List.mem n bads in
  let outs = List.filter (fun (n, _) -> not (is_bad n)) c.Circuit.outputs in
  let bad_outs = List.filter (fun (n, _) -> is_bad n) c.Circuit.outputs in
  let buf = Buffer.create 4096 in
  let magic = if binary then "aig" else "aag" in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d %d %d %d" magic m ni nl (List.length outs)
       g.n_ands);
  if bad_outs <> [] then
    Buffer.add_string buf (Printf.sprintf " %d" (List.length bad_outs));
  Buffer.add_char buf '\n';
  if not binary then
    Array.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf "%d\n" lit_of.(s)))
      c.Circuit.inputs;
  Array.iteri
    (fun k s ->
      let own = 2 * (ni + k + 1) in
      let init, next =
        match Circuit.node c s with
        | Circuit.Reg { init; next } -> (init, next)
        | _ -> assert false
      in
      if not binary then Buffer.add_string buf (Printf.sprintf "%d " own);
      Buffer.add_string buf (string_of_int lit_of.(next));
      (match init with
      | `Zero -> ()
      | `One -> Buffer.add_string buf " 1"
      | `Free -> Buffer.add_string buf (Printf.sprintf " %d" own));
      Buffer.add_char buf '\n')
    c.Circuit.registers;
  List.iter
    (fun (_, s) -> Buffer.add_string buf (Printf.sprintf "%d\n" lit_of.(s)))
    outs;
  List.iter
    (fun (_, s) -> Buffer.add_string buf (Printf.sprintf "%d\n" lit_of.(s)))
    bad_outs;
  if binary then
    Array.iter
      (fun (lhs, rhs0, rhs1) ->
        encode_varint buf (lhs - rhs0);
        encode_varint buf (rhs0 - rhs1))
      ands
  else
    Array.iter
      (fun (lhs, rhs0, rhs1) ->
        Buffer.add_string buf (Printf.sprintf "%d %d %d\n" lhs rhs0 rhs1))
      ands;
  Array.iteri
    (fun k s ->
      Buffer.add_string buf (Printf.sprintf "i%d %s\n" k (Circuit.name c s)))
    c.Circuit.inputs;
  Array.iteri
    (fun k s ->
      Buffer.add_string buf (Printf.sprintf "l%d %s\n" k (Circuit.name c s)))
    c.Circuit.registers;
  List.iteri
    (fun k (n, _) -> Buffer.add_string buf (Printf.sprintf "o%d %s\n" k n))
    outs;
  List.iteri
    (fun k (n, _) -> Buffer.add_string buf (Printf.sprintf "b%d %s\n" k n))
    bad_outs;
  Buffer.contents buf

let write_file ?binary ?bads path c =
  let binary =
    match binary with
    | Some b -> b
    | None -> Filename.check_suffix path ".aig"
  in
  let oc = open_out_bin path in
  output_string oc (to_string ~binary ?bads c);
  close_out oc
