type t = { states : Cube.t array; inputs : Cube.t array }

let make ~states ~inputs =
  let k = Array.length states and ni = Array.length inputs in
  if k = 0 then invalid_arg "Trace.make: empty trace";
  if ni <> k - 1 && ni <> k then
    invalid_arg "Trace.make: need k-1 or k input cubes for k states";
  { states; inputs }

let length t = Array.length t.states
let state t i = t.states.(i)

let input t i =
  if i < Array.length t.inputs then t.inputs.(i) else Cube.empty

let constraint_cubes t =
  Array.mapi
    (fun i st ->
      match Cube.meet st (input t i) with
      | Some c -> c
      | None -> invalid_arg "Trace.constraint_cubes: state/input conflict")
    t.states

let pp ~names ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i st ->
      Format.fprintf ppf "cycle %d: state %a" i (Cube.pp ~names) st;
      let inp = input t i in
      if not (Cube.is_empty inp) then
        Format.fprintf ppf " input %a" (Cube.pp ~names) inp;
      if i < Array.length t.states - 1 then Format.fprintf ppf "@,")
    t.states;
  Format.fprintf ppf "@]"
