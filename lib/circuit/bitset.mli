(** Dense bitsets over node identifiers.

    Circuits index every cell by a small integer, so sets of signals
    (cones, register subsets, cut sets) are represented as fixed-width
    bitsets rather than balanced trees. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val length : t -> int
(** Universe size the set was created with. *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val copy : t -> t

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst]. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when every member of [a] is in [b]. *)
