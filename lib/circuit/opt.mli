(** Netlist clean-up: constant propagation and structural rewriting.

    Gate-level designs arriving from synthesis or hand-written netlists
    carry constants and redundancies that inflate every downstream
    engine (cones, unrollings, transition relations). [simplify]
    rewrites a design into an equivalent, usually smaller one:

    - constants propagate through gates (an AND with a 0 fanin is 0, a
      MUX with a constant select collapses, XOR drops 0 fanins...),
    - duplicate fanins collapse where idempotence allows (AND/OR),
    - single-fanin AND/OR/BUF chains dissolve,
    - registers whose next-state input is their own output and whose
      initial value is concrete become constants,
    - gates driving nothing observable are dropped.

    Observability is defined by the declared outputs plus all register
    next-state functions of registers in their cone; names of surviving
    signals are preserved. *)

type report = {
  gates_before : int;
  gates_after : int;
  registers_before : int;
  registers_after : int;
  constants_folded : int;
}

val simplify : Circuit.t -> Circuit.t * (int -> int option) * report
(** [simplify c] returns the rewritten design, a map from old signal
    identifiers to surviving new ones ([None] if the signal was swept
    or folded into a constant), and statistics. Declared outputs are
    always preserved (rewired to their simplified drivers). *)
