(** Netlist clean-up: constant propagation and structural rewriting.

    Gate-level designs arriving from synthesis or hand-written netlists
    carry constants and redundancies that inflate every downstream
    engine (cones, unrollings, transition relations). [simplify]
    rewrites a design into an equivalent, usually smaller one:

    - constants propagate through gates (an AND with a 0 fanin is 0, a
      MUX with a constant select collapses, XOR drops 0 fanins...),
    - duplicate fanins collapse where idempotence allows (AND/OR),
    - single-fanin AND/OR/BUF chains dissolve,
    - registers whose next-state input is their own output and whose
      initial value is concrete become constants,
    - gates driving nothing observable are dropped.

    Observability is defined by the declared outputs plus all register
    next-state functions of registers in their cone; names of surviving
    signals are preserved. *)

type report = {
  gates_before : int;
  gates_after : int;
  registers_before : int;
  registers_after : int;
  constants_folded : int;
}

val simplify : Circuit.t -> Circuit.t * (int -> int option) * report
(** [simplify c] returns the rewritten design, a map from old signal
    identifiers to surviving new ones ([None] if the signal was swept
    or folded into a constant), and statistics. Declared outputs are
    always preserved (rewired to their simplified drivers). *)

val merge_equivalences :
  Circuit.t -> (int * int * bool) list -> Circuit.t * (int -> int option) * int
(** [merge_equivalences c pairs] applies proven equivalence directives
    [(keep, drop, phase)] — meaning [drop = keep xor phase] holds in
    every reachable state — by rewiring every reader of [drop] to read
    [keep] (inverted when [phase]) and deleting [drop]'s cell. The
    rewrite preserves the design's observable behaviour from its
    initial states (outputs as functions of the input history), which
    is exactly what the directives assert; it is {e not} a
    combinational equivalence in general.

    Directives are applied left to right; a directive is skipped (not
    an error) when [drop] is a primary input or a constant, [keep] does
    not precede [drop] in topological order, or [drop] was already
    merged. Chains ([b := a], then [c := b]) resolve transitively.
    Returns the rewritten design, the old-to-new signal map ([None] for
    merged or swept signals), and the number of directives applied. *)
