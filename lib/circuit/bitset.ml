type t = { mutable card : int; bits : Bytes.t; len : int }

let create len =
  { card = 0; bits = Bytes.make ((len + 7) / 8) '\000'; len }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.len)

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let bit = 1 lsl (i land 7) in
  if byte land bit = 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte lor bit));
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let bit = 1 lsl (i land 7) in
  if byte land bit <> 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte land lnot bit));
    t.card <- t.card - 1
  end

let copy t = { t with bits = Bytes.copy t.bits }

let cardinal t = t.card

let iter f t =
  for i = 0 to t.len - 1 do
    if Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list len l =
  let t = create len in
  List.iter (add t) l;
  t

let union_into dst src = iter (add dst) src

let equal a b = a.len = b.len && Bytes.equal a.bits b.bits

let subset a b =
  if a.len <> b.len then invalid_arg "Bitset.subset: universes differ";
  let ok = ref true in
  iter (fun i -> if not (mem b i) then ok := false) a;
  !ok
