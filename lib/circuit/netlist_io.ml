(* Extension-dispatched netlist loading/saving: `.aig` (binary AIGER),
   `.aag` (ascii AIGER), anything else `.bench`. *)

let is_aiger path =
  Filename.check_suffix path ".aig" || Filename.check_suffix path ".aag"

let load path =
  if is_aiger path then Aiger_io.parse_file path else Bench_io.parse_file path

let parse_as path text =
  if is_aiger path then Aiger_io.parse text else Bench_io.parse text

let save ?bads path c =
  if is_aiger path then Aiger_io.write_file ?bads path c
  else begin
    let oc = open_out path in
    output_string oc (Bench_io.to_string c);
    close_out oc
  end
