module B = Circuit.Builder

type def =
  | Dgate of Gate.kind * string list
  | Dreg of Circuit.init * string
  | Dconst of bool

let syntax_error line msg =
  failwith (Printf.sprintf "Bench_io: line %d: %s" line msg)

let split_args s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_line lineno line (inputs, outputs, defs) =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then (inputs, outputs, defs)
  else
    let paren_form prefix =
      let plen = String.length prefix in
      if
        String.length line > plen + 1
        && String.uppercase_ascii (String.sub line 0 plen) = prefix
        && line.[plen] = '('
        && line.[String.length line - 1] = ')'
      then Some (String.trim (String.sub line (plen + 1) (String.length line - plen - 2)))
      else None
    in
    match paren_form "INPUT" with
    | Some name -> ((lineno, name) :: inputs, outputs, defs)
    | None -> (
      match paren_form "OUTPUT" with
      | Some name -> (inputs, (lineno, name) :: outputs, defs)
      | None -> (
        match String.index_opt line '=' with
        | None -> syntax_error lineno "expected INPUT, OUTPUT or definition"
        | Some eq ->
          let name = String.trim (String.sub line 0 eq) in
          let rhs =
            String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
          in
          if name = "" then syntax_error lineno "empty signal name";
          let def =
            match String.uppercase_ascii rhs with
            | "CONST0" -> Dconst false
            | "CONST1" -> Dconst true
            | _ -> (
              match (String.index_opt rhs '(', String.rindex_opt rhs ')') with
              | Some op, Some cl when op < cl ->
                let op_name = String.trim (String.sub rhs 0 op) in
                let args = split_args (String.sub rhs (op + 1) (cl - op - 1)) in
                let kind = String.uppercase_ascii op_name in
                let reg init =
                  match args with
                  | [ d ] -> Dreg (init, d)
                  | _ -> syntax_error lineno "DFF takes exactly one fanin"
                in
                if kind = "DFF" then reg `Zero
                else if kind = "DFF1" then reg `One
                else if kind = "DFFX" then reg `Free
                else (
                  match Gate.of_string op_name with
                  | Some k ->
                    if args = [] then syntax_error lineno "gate with no fanins";
                    Dgate (k, args)
                  | None ->
                    syntax_error lineno
                      (Printf.sprintf "unknown operator %S" op_name))
              | _ -> syntax_error lineno "malformed right-hand side")
          in
          (inputs, outputs, (lineno, name, def) :: defs)))

let parse text =
  let lines = String.split_on_char '\n' text in
  let inputs, outputs, defs =
    List.fold_left
      (fun acc (lineno, line) -> parse_line lineno line acc)
      ([], [], [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let inputs = List.rev inputs
  and outputs = List.rev outputs
  and defs = List.rev defs in
  let b = B.create () in
  let table : (string, def) Hashtbl.t = Hashtbl.create 97 in
  let line_of : (string, int) Hashtbl.t = Hashtbl.create 97 in
  List.iter
    (fun (lineno, name, def) ->
      if Hashtbl.mem table name then
        syntax_error lineno (Printf.sprintf "redefinition of %S" name);
      Hashtbl.add table name def;
      Hashtbl.add line_of name lineno)
    defs;
  let ids : (string, int) Hashtbl.t = Hashtbl.create 97 in
  List.iter
    (fun (lineno, name) ->
      if Hashtbl.mem table name || Hashtbl.mem ids name then
        syntax_error lineno (Printf.sprintf "INPUT %S also defined" name);
      Hashtbl.add ids name (B.input b name))
    inputs;
  (* Registers first so that feedback through them is legal. *)
  List.iter
    (fun (_, name, def) ->
      match def with
      | Dreg (init, _) -> Hashtbl.add ids name (B.reg b ~init name)
      | Dgate _ | Dconst _ -> ())
    defs;
  (* [building] is the resolution stack (most recent first): membership
     detects a combinational cycle, and the stack itself names the full
     ordered cycle path in the error. [at] is the line referencing
     [name], used when [name] has no definition of its own. *)
  let building : string list ref = ref [] in
  let rec resolve ~at name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> (
      if List.mem name !building then begin
        let rec ancestors acc = function
          | [] -> List.rev acc
          | x :: _ when x = name -> List.rev acc
          | x :: rest -> ancestors (x :: acc) rest
        in
        let path =
          (name :: List.rev (ancestors [] !building)) @ [ name ]
        in
        syntax_error
          (try Hashtbl.find line_of name with Not_found -> at)
          (Printf.sprintf "combinational cycle: %s"
             (String.concat " -> " path))
      end;
      building := name :: !building;
      let id =
        match Hashtbl.find_opt table name with
        | None ->
          syntax_error at (Printf.sprintf "undefined signal %S" name)
        | Some (Dconst bv) ->
          (* The builder interns constants under fixed names; reuse the
             cell when the netlist uses that very name (as printed
             netlists do) and wrap in a named BUF otherwise. *)
          let cid = B.const b bv in
          if name = (if bv then "const_1" else "const_0") then cid
          else B.gate b ~name Gate.Buf [| cid |]
        | Some (Dgate (kind, args)) ->
          let def_line =
            try Hashtbl.find line_of name with Not_found -> at
          in
          let fanins =
            Array.of_list (List.map (resolve ~at:def_line) args)
          in
          B.gate b ~name kind fanins
        | Some (Dreg _) -> assert false (* created above *)
      in
      building := List.tl !building;
      Hashtbl.add ids name id;
      id)
  in
  List.iter
    (fun (lineno, name, def) ->
      match def with
      | Dreg (_, d) ->
        let r = Hashtbl.find ids name in
        (try B.connect b r (resolve ~at:lineno d)
         with Invalid_argument m -> syntax_error lineno m)
      | Dgate _ | Dconst _ -> ignore (resolve ~at:lineno name))
    defs;
  List.iter
    (fun (lineno, name) ->
      match Hashtbl.find_opt ids name with
      | Some id -> B.output b name id
      | None ->
        syntax_error lineno (Printf.sprintf "OUTPUT %S undefined" name))
    outputs;
  B.finalize b

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let print ppf (c : Circuit.t) =
  let name s = Circuit.name c s in
  Array.iter (fun s -> Format.fprintf ppf "INPUT(%s)@." (name s)) c.inputs;
  List.iter (fun (n, _) -> Format.fprintf ppf "OUTPUT(%s)@." n) c.outputs;
  (* Outputs that rename a signal need a BUF definition line. *)
  List.iter
    (fun (n, s) ->
      if n <> name s then Format.fprintf ppf "%s = BUF(%s)@." n (name s))
    c.outputs;
  Array.iter
    (fun s ->
      match Circuit.node c s with
      | Circuit.Input -> ()
      | Circuit.Const bv ->
        Format.fprintf ppf "%s = CONST%d@." (name s) (if bv then 1 else 0)
      | Circuit.Gate (kind, fanins) ->
        Format.fprintf ppf "%s = %s(%s)@." (name s) (Gate.to_string kind)
          (String.concat ", " (Array.to_list (Array.map name fanins)))
      | Circuit.Reg { init; next } ->
        let kw =
          match init with `Zero -> "DFF" | `One -> "DFF1" | `Free -> "DFFX"
        in
        Format.fprintf ppf "%s = %s(%s)@." (name s) kw (name next))
    c.topo

let to_string c = Format.asprintf "%a" print c
