(** Cone of influence.

    The COI of a set of signals is everything that can affect them,
    crossing registers: when the cone reaches a register output it
    continues through that register's next-state input. The paper's
    Table 1/2 report register and gate counts of property/coverage-set
    COIs, and COI reduction is the preprocessing applied to the
    baseline symbolic model checker. *)

type t = {
  regs : Bitset.t;  (** registers in the cone *)
  gates : Bitset.t;  (** gates in the cone *)
  inputs : Bitset.t;  (** primary inputs read by the cone *)
}

val compute : Circuit.t -> roots:int list -> t

val num_regs : t -> int
val num_gates : t -> int

val restrict_view : Circuit.t -> t -> roots:int list -> Sview.t
(** The COI-reduced design as a view: same behaviour as the original on
    the cone, with everything outside dropped. *)
