(** Subcircuit views.

    Every engine in this system (symbolic model checking, ATPG,
    3-valued simulation, min-cut extraction) runs either on the whole
    design or on a subcircuit of it — an abstract model, a COI
    reduction, a min-cut design. A view describes such a subcircuit
    without re-indexing: signals keep their identifiers in the parent
    circuit, and the view records which signals belong to the model and
    which act as its free inputs.

    A free input is either a primary input of the parent design or a
    cut signal: a register output or internal signal whose driver was
    abstracted away (a pseudo-input in the paper's terminology). *)

type t = {
  circuit : Circuit.t;
  inside : Bitset.t;  (** signals belonging to the view *)
  free : Bitset.t;  (** subset of [inside] acting as free inputs *)
  regs : int array;  (** state-holding registers of the view, sorted *)
  free_inputs : int array;  (** free inputs, sorted *)
  roots : int list;  (** distinguished outputs (e.g. the bad signal) *)
}

val make :
  Circuit.t -> inside:Bitset.t -> free:Bitset.t -> roots:int list -> t
(** Checks well-formedness: free signals are inside; every non-free
    signal inside is a constant, a register whose next-state input is
    inside, or a gate whose fanins are all inside; roots are inside. *)

val whole : Circuit.t -> roots:int list -> t
(** The whole design as a view: free inputs are its primary inputs. *)

val mem : t -> int -> bool
val is_free : t -> int -> bool
val num_regs : t -> int
val num_gates : t -> int
val num_free_inputs : t -> int

val is_state : t -> int -> bool
(** The signal is a register of the view (not abstracted away). *)

val pp_stats : Format.formatter -> t -> unit
