(** Front-end dispatch by file extension: [.aig] is binary AIGER,
    [.aag] ascii AIGER, everything else ISCAS `.bench`. *)

val load : string -> Circuit.t
(** Parse the file at [path] with the front-end its extension names.
    Raises [Failure] with a line-numbered message on syntax errors and
    [Sys_error] on I/O errors, like the underlying readers. *)

val parse_as : string -> string -> Circuit.t
(** [parse_as path text] parses in-memory [text] with the front-end
    [path]'s extension names (the text is not read from [path]). *)

val save : ?bads:string list -> string -> Circuit.t -> unit
(** Write [c] to [path] in the format its extension names. [bads] is
    forwarded to {!Aiger_io.write_file} and ignored for `.bench`. *)
