module B = Circuit.Builder

type word = int array

let width = Array.length

let input b name w =
  Array.init w (fun i -> B.input b (Printf.sprintf "%s_%d" name i))

let regs b ?(init = 0) name w =
  Array.init w (fun i ->
      let bit = if init land (1 lsl i) <> 0 then `One else `Zero in
      B.reg b ~init:bit (Printf.sprintf "%s_%d" name i))

let connect b r d =
  if width r <> width d then invalid_arg "Rtl.connect: width mismatch";
  Array.iteri (fun i ri -> B.connect b ri d.(i)) r

let const b ~width:w v =
  Array.init w (fun i -> B.const b (v land (1 lsl i) <> 0))

let map2 name f a bword =
  if width a <> width bword then
    invalid_arg (Printf.sprintf "Rtl.%s: width mismatch" name);
  Array.init (width a) (fun i -> f a.(i) bword.(i))

let not_ b a = Array.map (B.not_ b) a
let and_ b a c = map2 "and_" (B.and2 b) a c
let or_ b a c = map2 "or_" (B.or2 b) a c
let xor_ b a c = map2 "xor_" (B.xor2 b) a c
let mux b sel d0 d1 = map2 "mux" (fun x y -> B.mux b sel x y) d0 d1

let add b ?cin a c =
  if width a <> width c then invalid_arg "Rtl.add: width mismatch";
  let carry = ref (match cin with Some s -> s | None -> B.const b false) in
  Array.init (width a) (fun i ->
      let x = a.(i) and y = c.(i) and ci = !carry in
      let s = B.xor2 b (B.xor2 b x y) ci in
      carry := B.or2 b (B.and2 b x y) (B.and2 b ci (B.or2 b x y));
      s)

let sub b a c =
  (* a - c = a + ~c + 1 *)
  add b ~cin:(B.const b true) a (not_ b c)

let incr b a = add b ~cin:(B.const b true) a (const b ~width:(width a) 0)
let decr b a = sub b a (const b ~width:(width a) 1)

let eq b a c =
  B.and_l b (Array.to_list (map2 "eq" (B.eq2 b) a c))

let eq_const b a k = eq b a (const b ~width:(width a) k)

let lt b a c =
  if width a <> width c then invalid_arg "Rtl.lt: width mismatch";
  (* From LSB to MSB: lt_i = (~a_i & c_i) | ((a_i == c_i) & lt_{i-1}) *)
  let lt_acc = ref (B.const b false) in
  for i = 0 to width a - 1 do
    let less_here = B.and2 b (B.not_ b a.(i)) c.(i) in
    let same = B.eq2 b a.(i) c.(i) in
    lt_acc := B.or2 b less_here (B.and2 b same !lt_acc)
  done;
  !lt_acc

let ge_const b a k = B.not_ b (lt b a (const b ~width:(width a) k))
let is_zero b a = B.not_ b (B.or_l b (Array.to_list a))
let any b a = B.or_l b (Array.to_list a)
let all b a = B.and_l b (Array.to_list a)

let counter b ?(init = 0) ?clear ~name ~width:w ~enable () =
  let q = regs b ~init name w in
  let bumped = mux b enable q (incr b q) in
  let next =
    match clear with
    | None -> bumped
    | Some clr -> mux b clr bumped (const b ~width:w 0)
  in
  connect b q next;
  q

let shift_reg b ~name ~length ~din ~enable () =
  let q =
    Array.init length (fun i -> B.reg b (Printf.sprintf "%s_%d" name i))
  in
  for i = 0 to length - 1 do
    let shifted_in = if i = 0 then din else q.(i - 1) in
    B.connect b q.(i) (B.mux b enable q.(i) shifted_in)
  done;
  q
