type t = { regs : Bitset.t; gates : Bitset.t; inputs : Bitset.t }

let compute circuit ~roots =
  let n = Circuit.num_signals circuit in
  let regs = Bitset.create n
  and gates = Bitset.create n
  and inputs = Bitset.create n
  and seen = Bitset.create n in
  let stack = ref roots in
  let push s = if not (Bitset.mem seen s) then stack := s :: !stack in
  let rec loop () =
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      if not (Bitset.mem seen s) then begin
        Bitset.add seen s;
        (match Circuit.node circuit s with
        | Circuit.Input -> Bitset.add inputs s
        | Circuit.Const _ -> ()
        | Circuit.Gate (_, fanins) ->
          Bitset.add gates s;
          Array.iter push fanins
        | Circuit.Reg { next; _ } ->
          Bitset.add regs s;
          push next)
      end;
      loop ()
  in
  loop ();
  { regs; gates; inputs }

let num_regs t = Bitset.cardinal t.regs
let num_gates t = Bitset.cardinal t.gates

let restrict_view circuit t ~roots =
  let n = Circuit.num_signals circuit in
  let inside = Bitset.create n in
  Bitset.union_into inside t.regs;
  Bitset.union_into inside t.gates;
  Bitset.union_into inside t.inputs;
  List.iter (Bitset.add inside) roots;
  (* Constants referenced from the cone must be inside too. Snapshot
     the members first: mutating a bitset while iterating it could skip
     indices below the iteration cursor. *)
  let members = Bitset.to_list inside in
  List.iter
    (fun s ->
      let add_const f =
        match Circuit.node circuit f with
        | Circuit.Const _ -> Bitset.add inside f
        | _ -> ()
      in
      match Circuit.node circuit s with
      | Circuit.Gate (_, fanins) -> Array.iter add_const fanins
      | Circuit.Reg { next; _ } -> add_const next
      | Circuit.Input | Circuit.Const _ -> ())
    members;
  let free = Bitset.copy t.inputs in
  Sview.make circuit ~inside ~free ~roots
