(** Abstract models (Step 1 of RFN).

    RFN's abstract models are subcircuits of the original design: a
    chosen set of registers plus the transitive fanins — up to register
    outputs — of the property signals and of the chosen registers'
    next-state inputs. Register outputs that the cone reaches but whose
    register is not in the chosen set become free pseudo-inputs, as do
    the primary inputs of the original design read by the cone.

    In the very first iteration the chosen set contains only the
    registers directly mentioned in the property (the property cone up
    to register outputs); each refinement (Step 4) adds crucial
    registers. *)

type t = {
  circuit : Circuit.t;
  roots : int list;  (** property signals seeding the cone *)
  regs : Bitset.t;  (** chosen (concrete) registers *)
  view : Sview.t;  (** the abstract model as a subcircuit view *)
}

val initial : Circuit.t -> roots:int list -> t
(** First abstract model: the property cone; registers appearing
    directly as property signals are chosen, every other register
    output the cone reaches becomes a pseudo-input. *)

val with_regs : Circuit.t -> roots:int list -> regs:int list -> t
(** Abstract model with an explicit register set (used by tests, the
    BFS baseline and the greedy refinement, which probes many candidate
    sets). Registers mentioned directly in [roots] are always
    included. *)

val refine : t -> add:int list -> t
(** Add registers (and their transitive fanins) to the model. *)

type delta = {
  added : int list;  (** registers newly chosen (deduplicated, sorted) *)
  promoted : int list;
      (** added registers that were pseudo-inputs of the old view: their
          output signal keeps its identity (and, downstream, its BDD
          variable) — only their next-state cone is new *)
  fresh_regs : int list;
      (** added registers that lay entirely outside the old view *)
  new_free_inputs : int list;
      (** signals free in the new view but not in the old one (newly
          exposed pseudo-inputs and primary inputs), sorted *)
  new_signals : int;  (** signals entering the view *)
  carried_signals : int;  (** signals of the old view (all carried) *)
}

val refine_delta : t -> add:int list -> t * delta
(** {!refine} plus an exact report of what changed. Refinement is
    monotone — the old view's signals are all carried over — so the
    delta is what an incremental engine must (re)build: everything else
    can be reused as-is. *)

val num_regs : t -> int

val pseudo_inputs : t -> int list
(** Register outputs of the original design acting as free inputs. *)

val is_pseudo_input : t -> int -> bool
