type t = { name : string; bad : int }

let make ~name ~bad = { name; bad }
let of_output c name = { name; bad = Circuit.output c name }
let roots t = [ t.bad ]
