type t = { name : string; bad : int }

let make ~name ~bad = { name; bad }
let of_output c name = { name; bad = Circuit.output c name }

let of_output_opt c name =
  Option.map (fun bad -> { name; bad }) (Circuit.output_opt c name)
let roots t = [ t.bad ]
