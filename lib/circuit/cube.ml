type t = (int * bool) list

let empty = []

let of_list l =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let rec dedup = function
    | (s1, v1) :: ((s2, v2) :: _ as rest) when s1 = s2 ->
      if v1 = v2 then dedup rest
      else
        invalid_arg
          (Printf.sprintf "Cube.of_list: contradictory literals on signal %d"
             s1)
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  dedup sorted

let to_list t = t
let is_empty t = t = []
let size = List.length

let value t s =
  match List.assoc_opt s t with Some v -> Some v | None -> None

let assign t s v =
  let rec ins = function
    | [] -> [ (s, v) ]
    | (s', v') :: rest when s' = s ->
      if v' = v then (s', v') :: rest
      else
        invalid_arg
          (Printf.sprintf "Cube.assign: contradictory literal on signal %d" s)
    | ((s', _) as hd) :: rest when s' < s -> hd :: ins rest
    | rest -> (s, v) :: rest
  in
  ins t

let meet a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> Some (List.rev_append acc rest)
    | ((sa, va) as ha) :: ta, ((sb, vb) as hb) :: tb ->
      if sa < sb then go ta b (ha :: acc)
      else if sb < sa then go a tb (hb :: acc)
      else if va = vb then go ta tb (ha :: acc)
      else None
  in
  go a b []

let conflicts a b = meet a b = None
let signals t = List.map fst t
let restrict t ~keep = List.filter (fun (s, _) -> keep s) t
let for_all f t = List.for_all (fun (s, v) -> f s v) t

let pp ~names ppf t =
  Format.fprintf ppf "@[<hov 1>{";
  List.iteri
    (fun i (s, v) ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s=%d" (names s) (if v then 1 else 0))
    t;
  Format.fprintf ppf "}@]"
