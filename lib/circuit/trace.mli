(** Error traces.

    A trace of length [k] is a sequence [a1, v1, a2, v2, ..., ak] of
    state cubes [a_i] (assignments to registers, or to registers of an
    abstract model) and input cubes [v_i] (assignments to primary
    inputs — which for abstract models include the pseudo-inputs, i.e.
    register outputs of the original design not present in the
    abstraction).

    States and inputs may be *partial*: an abstract error trace only
    pins the signals the symbolic engines determined; everything else
    is a don't-care. Concrete replay of a trace lives in the simulator
    library ([Sim3v.replay]). *)

type t = { states : Cube.t array; inputs : Cube.t array }
(** Invariant: with [k] states, there are [k - 1] or [k] input cubes.
    The optional [k]-th input cube is the final-cycle input witness,
    needed when the bad indicator depends combinationally on inputs
    (with a registered watchdog, as in the paper's designs, the last
    state alone is the witness and [k - 1] inputs suffice). *)

val make : states:Cube.t array -> inputs:Cube.t array -> t
(** Checks the length invariant. *)

val length : t -> int
(** Number of states [k]; the trace spans [k - 1] clock cycles. *)

val state : t -> int -> Cube.t
(** [state t i] for [i] in [0 .. length-1]. *)

val input : t -> int -> Cube.t
(** [input t i]; empty cube when [i = length - 1] and no final-cycle
    witness was recorded. *)

val constraint_cubes : t -> Cube.t array
(** Per-cycle constraint cubes for guided ATPG: element [i] merges
    [state t i] with [input t i] (the last element is just the final
    state cube). Raises [Invalid_argument] if a state cube conflicts
    with its input cube (cannot happen for traces built by the engines,
    since states constrain registers and inputs constrain inputs). *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
