(** Cubes: partial valuations of signals.

    A cube assigns Boolean values to some signals of a design; signals
    not mentioned are unconstrained. Cubes are kept sorted by signal
    identifier with no duplicates. *)

type t = private (int * bool) list

val empty : t
val of_list : (int * bool) list -> t
(** Sorts and deduplicates. Raises [Invalid_argument] on a
    contradictory pair (same signal, both polarities). *)

val to_list : t -> (int * bool) list
val is_empty : t -> bool
val size : t -> int
(** Number of assigned signals. *)

val value : t -> int -> bool option
(** Value assigned to a signal, if any. *)

val assign : t -> int -> bool -> t
(** Raises [Invalid_argument] on contradiction. *)

val meet : t -> t -> t option
(** Conjunction of two cubes; [None] if they conflict. *)

val conflicts : t -> t -> bool

val signals : t -> int list

val restrict : t -> keep:(int -> bool) -> t
(** Keep only the assignments whose signal satisfies [keep]. *)

val for_all : (int -> bool -> bool) -> t -> bool

val pp : names:(int -> string) -> Format.formatter -> t -> unit
