(** Gate kinds and their Boolean semantics.

    All kinds except [Not], [Buf] and [Mux] are n-ary (n >= 1).
    [Mux] takes exactly three fanins [sel; d0; d1] and selects [d1]
    when [sel] is true. *)

type kind =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Mux

val arity_ok : kind -> int -> bool
(** Whether a gate of this kind may have the given number of fanins. *)

val eval : kind -> (int -> bool) -> int array -> bool
(** [eval kind value fanins] evaluates the gate given the values of its
    fanin signals. *)

val to_string : kind -> string

val of_string : string -> kind option
(** Inverse of {!to_string} (case-insensitive). *)
