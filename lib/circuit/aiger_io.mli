(** AIGER front-end: ascii ([.aag]) and binary ([.aig]) and-inverter
    graphs, read into and written from {!Circuit.t}.

    The reader supports both formats (dispatching on the header magic),
    AIGER 1.9 bad-state properties ([B] section), and the three latch
    reset forms: 0 ([`Zero]), 1 ([`One]) and the latch's own literal
    ([`Free], i.e. uninitialised). Invariant-constraint, justice and
    fairness sections are rejected with an explicit error.

    Bad-state properties become ordinary declared outputs — named from
    the symbol table when present, else [b<k>] — so properties load
    through {!Property.of_output} exactly like `.bench` outputs (plain
    outputs default to [o<k>], inputs to [i<k>], latches to [l<k>]).

    Parse errors raise [Failure] with messages of the form
    ["Aiger_io: line <n>: ..."], or ["Aiger_io: byte <n>: ..."] inside
    a binary AND section — the same discipline as {!Bench_io}. *)

val parse : string -> Circuit.t
(** Parse AIGER text (either format; the header decides). *)

val parse_file : string -> Circuit.t

val to_string : ?binary:bool -> ?bads:string list -> Circuit.t -> string
(** Serialise a circuit as AIGER, lowering arbitrary gates to a
    structurally-hashed and-inverter graph. [bads] names the declared
    outputs to emit as bad-state properties ([B] section); all other
    outputs go to the [O] section. Default ascii, no bad section. *)

val write_file : ?binary:bool -> ?bads:string list -> string -> Circuit.t -> unit
(** [write_file path c] writes [to_string c] to [path]; when [binary]
    is omitted it is inferred from a [.aig] extension. *)

val fanin1 : gate:string -> Gate.kind -> int list -> int
(** The single fanin of a [Not]/[Buf] cell being lowered to AIG
    literals. Any other arity — impossible for {!Circuit.Builder}-built
    designs, but this is the writer's last line of defence — raises
    [Invalid_argument] naming the gate instead of a bare
    [Failure "hd"]. Exposed for the regression suite. *)
