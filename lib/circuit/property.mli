(** Unreachability properties.

    A property specifies a set of target ("bad") states through a
    single indicator signal: the property is True when no reachable
    state/input combination drives [bad] to 1. Safety properties are
    modeled this way by synthesizing a watchdog whose output asserts on
    violation, exactly as in the paper. *)

type t = {
  name : string;
  bad : int;  (** indicator signal: property violated when it is 1 *)
}

val make : name:string -> bad:int -> t

val of_output : Circuit.t -> string -> t
(** Property watching a declared circuit output (by name). Raises
    [Invalid_argument] naming the output when it is not declared. *)

val of_output_opt : Circuit.t -> string -> t option

val roots : t -> int list
(** The signals "mentioned in the property" — seeds of the very first
    abstract model. *)
