type t = {
  circuit : Circuit.t;
  roots : int list;
  regs : Bitset.t;
  view : Sview.t;
}

(* Cone of the roots and of the chosen registers' next-state inputs,
   stopping at register outputs (pseudo-inputs) unless the register is
   chosen, in which case the traversal continues through its next-state
   input. *)
let build circuit ~roots ~regs =
  let n = Circuit.num_signals circuit in
  let inside = Bitset.create n and free = Bitset.create n in
  let seen = Bitset.create n in
  (* Chosen registers are part of the model even when no root cone
     reads their output yet (the refined model is "current model + E +
     transitive fanins of E"). *)
  let stack = ref (roots @ Bitset.to_list regs) in
  let push s = if not (Bitset.mem seen s) then stack := s :: !stack in
  let rec loop () =
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      if not (Bitset.mem seen s) then begin
        Bitset.add seen s;
        Bitset.add inside s;
        (match Circuit.node circuit s with
        | Circuit.Input -> Bitset.add free s
        | Circuit.Const _ -> ()
        | Circuit.Gate (_, fanins) -> Array.iter push fanins
        | Circuit.Reg { next; _ } ->
          if Bitset.mem regs s then push next else Bitset.add free s)
      end;
      loop ()
  in
  loop ();
  Sview.make circuit ~inside ~free ~roots

let with_regs circuit ~roots ~regs =
  let n = Circuit.num_signals circuit in
  let set = Bitset.create n in
  List.iter
    (fun r ->
      if not (Circuit.is_reg circuit r) then
        invalid_arg "Abstraction.with_regs: not a register";
      Bitset.add set r)
    regs;
  (* Registers named directly by the property are always concrete. *)
  List.iter
    (fun s -> if Circuit.is_reg circuit s then Bitset.add set s)
    roots;
  { circuit; roots; regs = set; view = build circuit ~roots ~regs:set }

let initial circuit ~roots = with_regs circuit ~roots ~regs:[]

type delta = {
  added : int list;
  promoted : int list;
  fresh_regs : int list;
  new_free_inputs : int list;
  new_signals : int;
  carried_signals : int;
}

let refine_delta t ~add =
  let added =
    List.sort_uniq compare add
    |> List.filter (fun r ->
           if not (Circuit.is_reg t.circuit r) then
             invalid_arg "Abstraction.refine: not a register";
           not (Bitset.mem t.regs r))
  in
  let regs = Bitset.copy t.regs in
  List.iter (Bitset.add regs) added;
  let t' = { t with regs; view = build t.circuit ~roots:t.roots ~regs } in
  (* A newly chosen register either was a pseudo-input of the old view
     (promoted: its output keeps its variable, only its next-state cone
     is new) or lay entirely outside it (fresh). *)
  let promoted, fresh_regs =
    List.partition (fun r -> Sview.mem t.view r) added
  in
  let new_free_inputs =
    Array.to_list t'.view.Sview.free_inputs
    |> List.filter (fun s -> not (Sview.is_free t.view s))
  in
  let carried_signals = Bitset.cardinal t.view.Sview.inside in
  ( t',
    {
      added;
      promoted;
      fresh_regs;
      new_free_inputs;
      new_signals = Bitset.cardinal t'.view.Sview.inside - carried_signals;
      carried_signals;
    } )

let refine t ~add = fst (refine_delta t ~add)

let num_regs t = Bitset.cardinal t.regs

let pseudo_inputs t =
  Array.to_list t.view.Sview.free_inputs
  |> List.filter (fun s -> Circuit.is_reg t.circuit s)

let is_pseudo_input t s =
  Sview.is_free t.view s && Circuit.is_reg t.circuit s
