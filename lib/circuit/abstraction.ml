type t = {
  circuit : Circuit.t;
  roots : int list;
  regs : Bitset.t;
  view : Sview.t;
}

(* Cone of the roots and of the chosen registers' next-state inputs,
   stopping at register outputs (pseudo-inputs) unless the register is
   chosen, in which case the traversal continues through its next-state
   input. *)
let build circuit ~roots ~regs =
  let n = Circuit.num_signals circuit in
  let inside = Bitset.create n and free = Bitset.create n in
  let seen = Bitset.create n in
  (* Chosen registers are part of the model even when no root cone
     reads their output yet (the refined model is "current model + E +
     transitive fanins of E"). *)
  let stack = ref (roots @ Bitset.to_list regs) in
  let push s = if not (Bitset.mem seen s) then stack := s :: !stack in
  let rec loop () =
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      if not (Bitset.mem seen s) then begin
        Bitset.add seen s;
        Bitset.add inside s;
        (match Circuit.node circuit s with
        | Circuit.Input -> Bitset.add free s
        | Circuit.Const _ -> ()
        | Circuit.Gate (_, fanins) -> Array.iter push fanins
        | Circuit.Reg { next; _ } ->
          if Bitset.mem regs s then push next else Bitset.add free s)
      end;
      loop ()
  in
  loop ();
  Sview.make circuit ~inside ~free ~roots

let with_regs circuit ~roots ~regs =
  let n = Circuit.num_signals circuit in
  let set = Bitset.create n in
  List.iter
    (fun r ->
      if not (Circuit.is_reg circuit r) then
        invalid_arg "Abstraction.with_regs: not a register";
      Bitset.add set r)
    regs;
  (* Registers named directly by the property are always concrete. *)
  List.iter
    (fun s -> if Circuit.is_reg circuit s then Bitset.add set s)
    roots;
  { circuit; roots; regs = set; view = build circuit ~roots ~regs:set }

let initial circuit ~roots = with_regs circuit ~roots ~regs:[]

let refine t ~add =
  let regs = Bitset.copy t.regs in
  List.iter
    (fun r ->
      if not (Circuit.is_reg t.circuit r) then
        invalid_arg "Abstraction.refine: not a register";
      Bitset.add regs r)
    add;
  {
    t with
    regs;
    view = build t.circuit ~roots:t.roots ~regs;
  }

let num_regs t = Bitset.cardinal t.regs

let pseudo_inputs t =
  Array.to_list t.view.Sview.free_inputs
  |> List.filter (fun s -> Circuit.is_reg t.circuit s)

let is_pseudo_input t s =
  Sview.is_free t.view s && Circuit.is_reg t.circuit s
