(** Word-level construction helpers.

    The design generators in the zoo describe datapaths at the word
    level; these helpers lower words to gates through
    {!Circuit.Builder}. A word is an array of signals, least
    significant bit first. All arithmetic is unsigned, modulo 2^w. *)

type word = int array

val width : word -> int

val input : Circuit.Builder.c -> string -> int -> word
(** [input b name w] makes [w] primary inputs [name_0 .. name_{w-1}]. *)

val regs : Circuit.Builder.c -> ?init:int -> string -> int -> word
(** [regs b ~init name w] makes a register word with the given initial
    bit pattern (default 0); next-state inputs are connected later with
    {!connect}. *)

val connect : Circuit.Builder.c -> word -> word -> unit
(** [connect b r d] connects register word [r] to data word [d]. *)

val const : Circuit.Builder.c -> width:int -> int -> word

val not_ : Circuit.Builder.c -> word -> word
val and_ : Circuit.Builder.c -> word -> word -> word
val or_ : Circuit.Builder.c -> word -> word -> word
val xor_ : Circuit.Builder.c -> word -> word -> word

val mux : Circuit.Builder.c -> int -> word -> word -> word
(** [mux b sel d0 d1] selects per-bit. *)

val add : Circuit.Builder.c -> ?cin:int -> word -> word -> word
(** Ripple-carry adder; carry out is dropped. Words must have equal
    width. *)

val sub : Circuit.Builder.c -> word -> word -> word
val incr : Circuit.Builder.c -> word -> word
val decr : Circuit.Builder.c -> word -> word

val eq : Circuit.Builder.c -> word -> word -> int
val eq_const : Circuit.Builder.c -> word -> int -> int
val lt : Circuit.Builder.c -> word -> word -> int
(** Unsigned [a < b]. *)

val ge_const : Circuit.Builder.c -> word -> int -> int
(** Unsigned [a >= k]. *)

val is_zero : Circuit.Builder.c -> word -> int
val any : Circuit.Builder.c -> word -> int
(** OR-reduction. *)

val all : Circuit.Builder.c -> word -> int
(** AND-reduction. *)

val counter :
  Circuit.Builder.c ->
  ?init:int ->
  ?clear:int ->
  name:string ->
  width:int ->
  enable:int ->
  unit ->
  word
(** Wrapping up-counter: increments when [enable], resets to 0 when
    [clear] (clear wins). *)

val shift_reg :
  Circuit.Builder.c ->
  name:string ->
  length:int ->
  din:int ->
  enable:int ->
  unit ->
  int array
(** Shift register of single bits; element 0 is the newest. *)
