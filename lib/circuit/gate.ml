type kind = And | Or | Nand | Nor | Xor | Xnor | Not | Buf | Mux

let arity_ok kind n =
  match kind with
  | Not | Buf -> n = 1
  | Mux -> n = 3
  | And | Or | Nand | Nor | Xor | Xnor -> n >= 1

let eval kind value fanins =
  match kind with
  | Not -> not (value fanins.(0))
  | Buf -> value fanins.(0)
  | Mux -> if value fanins.(0) then value fanins.(2) else value fanins.(1)
  | And | Nand ->
    let v = Array.for_all (fun s -> value s) fanins in
    if kind = And then v else not v
  | Or | Nor ->
    let v = Array.exists (fun s -> value s) fanins in
    if kind = Or then v else not v
  | Xor | Xnor ->
    let parity = Array.fold_left (fun p s -> p <> value s) false fanins in
    if kind = Xor then parity else not parity

let to_string = function
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUF"
  | Mux -> "MUX"

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "OR" -> Some Or
  | "NAND" -> Some Nand
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | "MUX" -> Some Mux
  | _ -> None
