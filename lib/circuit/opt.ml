module B = Circuit.Builder

type report = {
  gates_before : int;
  gates_after : int;
  registers_before : int;
  registers_after : int;
  constants_folded : int;
}

(* Local ternary evaluation (0 / 1 / 2 = unknown); the simulator
   library depends on this one, so the few lines are duplicated rather
   than inverting the dependency. *)
let tnot = function 0 -> 1 | 1 -> 0 | _ -> 2

let teval kind value (fanins : int array) =
  let fold_and () =
    let r = ref 1 in
    Array.iter
      (fun f ->
        match value f with 0 -> r := 0 | 2 -> if !r = 1 then r := 2 | _ -> ())
      fanins;
    !r
  in
  let fold_or () =
    let r = ref 0 in
    Array.iter
      (fun f ->
        match value f with 1 -> r := 1 | 2 -> if !r = 0 then r := 2 | _ -> ())
      fanins;
    !r
  in
  let fold_xor () =
    let r = ref 0 in
    Array.iter
      (fun f ->
        match (value f, !r) with
        | 2, _ -> r := 2
        | _, 2 -> ()
        | 1, p -> r := tnot p
        | _, _ -> ())
      fanins;
    !r
  in
  match kind with
  | Gate.And -> fold_and ()
  | Gate.Nand -> tnot (fold_and ())
  | Gate.Or -> fold_or ()
  | Gate.Nor -> tnot (fold_or ())
  | Gate.Xor -> fold_xor ()
  | Gate.Xnor -> tnot (fold_xor ())
  | Gate.Not -> tnot (value fanins.(0))
  | Gate.Buf -> value fanins.(0)
  | Gate.Mux -> (
    match value fanins.(0) with
    | 0 -> value fanins.(1)
    | 1 -> value fanins.(2)
    | _ ->
      let d0 = value fanins.(1) and d1 = value fanins.(2) in
      if d0 = d1 && d0 <> 2 then d0 else 2)

(* Registers provably stuck at their initial value: start from every
   register with a concrete initial value and iteratively drop any
   whose next-state function, evaluated with candidates at their
   initial values and everything else unknown, is not that same value.
   (Ternary evaluation makes this a sound greatest fixpoint.) *)
let constant_registers c =
  let n = Circuit.num_signals c in
  let candidate = Bitset.create n in
  Array.iter
    (fun r ->
      match Circuit.node c r with
      | Circuit.Reg { init = `Zero | `One; _ } -> Bitset.add candidate r
      | _ -> ())
    c.Circuit.registers;
  let init_value r = Circuit.initial_state c ~free:(fun _ -> false) r in
  let changed = ref true in
  let values = Array.make n 2 in
  while !changed do
    changed := false;
    Array.iter
      (fun s ->
        values.(s) <-
          (match Circuit.node c s with
          | Circuit.Input -> 2
          | Circuit.Const b -> if b then 1 else 0
          | Circuit.Reg _ ->
            if Bitset.mem candidate s then if init_value s then 1 else 0
            else 2
          | Circuit.Gate (kind, fanins) ->
            teval kind (fun x -> values.(x)) fanins))
      c.Circuit.topo;
    Bitset.iter
      (fun r ->
        match Circuit.node c r with
        | Circuit.Reg { next; _ } ->
          let expected = if init_value r then 1 else 0 in
          if values.(next) <> expected then begin
            Bitset.remove candidate r;
            changed := true
          end
        | _ -> ())
      candidate
  done;
  candidate

(* Observable signals: the cones of the declared outputs, crossing
   registers. A design without outputs keeps everything. *)
let observable c =
  match c.Circuit.outputs with
  | [] ->
    let n = Circuit.num_signals c in
    let all = Bitset.create n in
    for s = 0 to n - 1 do
      Bitset.add all s
    done;
    all
  | outs ->
    let coi = Coi.compute c ~roots:(List.map snd outs) in
    let set = Bitset.create (Circuit.num_signals c) in
    Bitset.union_into set coi.Coi.regs;
    Bitset.union_into set coi.Coi.gates;
    Bitset.union_into set coi.Coi.inputs;
    List.iter (fun (_, s) -> Bitset.add set s) outs;
    (* the COI tracks cells with fanins; constants ride along *)
    Array.iteri
      (fun s node ->
        match node with Circuit.Const _ -> Bitset.add set s | _ -> ())
      c.Circuit.nodes;
    set

let simplify c =
  let stuck = constant_registers c in
  let keep = observable c in
  let b = B.create () in
  (* old signal -> simplified signal in the new builder *)
  let map = Array.make (Circuit.num_signals c) (-1) in
  let folded = ref 0 in
  (* registers first, so feedback can resolve *)
  Array.iter
    (fun r ->
      if Bitset.mem keep r then
        match Circuit.node c r with
        | Circuit.Reg { init; _ } ->
          if Bitset.mem stuck r then begin
            incr folded;
            map.(r) <- B.const b (Circuit.initial_state c ~free:(fun _ -> false) r)
          end
          else map.(r) <- B.reg b ~init (Circuit.name c r)
        | _ -> ())
    c.Circuit.registers;
  let resolve s = map.(s) in
  let const_of s =
    match Circuit.node c s with
    | Circuit.Const v -> Some v
    | _ -> (
      (* a signal folded to a builder constant *)
      match map.(s) with
      | -1 -> None
      | ns -> if ns = B.const b false then Some false
              else if ns = B.const b true then Some true
              else None)
  in
  let simplify_gate kind fanins =
    let vals = Array.map const_of fanins in
    let all_const = Array.for_all (fun v -> v <> None) vals in
    if all_const then begin
      incr folded;
      B.const b
        (Gate.eval kind (fun i -> Option.get vals.(i))
           (Array.init (Array.length fanins) (fun i -> i)))
    end
    else
      let arg i = resolve fanins.(i) in
      match kind with
      | Gate.Buf -> arg 0
      | Gate.Not -> B.not_ b (arg 0)
      | Gate.And | Gate.Nand -> (
        let dead = Array.exists (fun v -> v = Some false) vals in
        let live =
          if dead then []
          else
            Array.to_list fanins
            |> List.filteri (fun i _ -> vals.(i) <> Some true)
            |> List.map resolve
            |> List.sort_uniq compare
        in
        match (kind, dead, live) with
        | Gate.And, true, _ -> B.const b false
        | Gate.And, false, l -> B.and_l b l
        | _, true, _ -> B.const b true
        | _, false, [] -> B.const b false
        | _, false, [ x ] -> B.not_ b x
        | _, false, l -> B.gate b Gate.Nand (Array.of_list l))
      | Gate.Or | Gate.Nor -> (
        let sat = Array.exists (fun v -> v = Some true) vals in
        let live =
          if sat then []
          else
            Array.to_list fanins
            |> List.filteri (fun i _ -> vals.(i) <> Some false)
            |> List.map resolve
            |> List.sort_uniq compare
        in
        match (kind, sat, live) with
        | Gate.Or, true, _ -> B.const b true
        | Gate.Or, false, l -> B.or_l b l
        | _, true, _ -> B.const b false
        | _, false, [] -> B.const b true
        | _, false, [ x ] -> B.not_ b x
        | _, false, l -> B.gate b Gate.Nor (Array.of_list l))
      | Gate.Xor | Gate.Xnor ->
        (* drop constant-0 fanins, track constant-1 parity, cancel
           duplicated signals pairwise *)
        let parity = ref (kind = Gate.Xnor) in
        let counts = Hashtbl.create 8 in
        Array.iteri
          (fun i f ->
            match vals.(i) with
            | Some true -> parity := not !parity
            | Some false -> ()
            | None ->
              let ns = resolve f in
              Hashtbl.replace counts ns
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts ns)))
          fanins;
        let live =
          Hashtbl.fold
            (fun ns k acc -> if k mod 2 = 1 then ns :: acc else acc)
            counts []
          |> List.sort compare
        in
        (match (live, !parity) with
        | [], p -> B.const b p
        | [ x ], false -> x
        | [ x ], true -> B.not_ b x
        | l, false -> B.gate b Gate.Xor (Array.of_list l)
        | l, true -> B.gate b Gate.Xnor (Array.of_list l))
      | Gate.Mux -> (
        match vals.(0) with
        | Some false -> arg 1
        | Some true -> arg 2
        | None ->
          let d0 = arg 1 and d1 = arg 2 in
          if d0 = d1 then d0 else B.mux b (arg 0) d0 d1)
  in
  Array.iter
    (fun s ->
      if Bitset.mem keep s && map.(s) = -1 then
        map.(s) <-
          (match Circuit.node c s with
          | Circuit.Input -> B.input b (Circuit.name c s)
          | Circuit.Const v -> B.const b v
          | Circuit.Gate (kind, fanins) -> simplify_gate kind fanins
          | Circuit.Reg _ -> assert false (* created above *)))
    c.Circuit.topo;
  (* connect surviving registers *)
  Array.iter
    (fun r ->
      if Bitset.mem keep r && not (Bitset.mem stuck r) then
        match Circuit.node c r with
        | Circuit.Reg { next; _ } -> B.connect b map.(r) map.(next)
        | _ -> ())
    c.Circuit.registers;
  List.iter (fun (name, s) -> B.output b name map.(s)) c.Circuit.outputs;
  let c' = B.finalize b in
  let lookup s = if s < 0 || s >= Array.length map || map.(s) = -1 then None else Some map.(s) in
  ( c',
    lookup,
    {
      gates_before = Circuit.num_gates c;
      gates_after = Circuit.num_gates c';
      registers_before = Circuit.num_registers c;
      registers_after = Circuit.num_registers c';
      constants_folded = !folded;
    } )

let merge_equivalences c pairs =
  let n = Circuit.num_signals c in
  let pos = Array.make n 0 in
  Array.iteri (fun i s -> pos.(s) <- i) c.Circuit.topo;
  (* drop -> (keep, phase); chains resolve transitively below *)
  let target = Array.make n (-1) in
  let tphase = Array.make n false in
  let applied = ref 0 in
  List.iter
    (fun (keep, drop, phase) ->
      if
        keep >= 0 && keep < n && drop >= 0 && drop < n && keep <> drop
        && pos.(keep) < pos.(drop)
        && target.(drop) = -1
        &&
        match Circuit.node c drop with
        | Circuit.Input | Circuit.Const _ -> false
        | Circuit.Gate _ | Circuit.Reg _ -> true
      then begin
        target.(drop) <- keep;
        tphase.(drop) <- phase;
        incr applied
      end)
    pairs;
  let rec resolve s phase =
    if target.(s) = -1 then (s, phase)
    else resolve target.(s) (phase <> tphase.(s))
  in
  let b = B.create () in
  let map = Array.make n (-1) in
  (* surviving registers first, so feedback can resolve *)
  Array.iter
    (fun r ->
      if target.(r) = -1 then
        match Circuit.node c r with
        | Circuit.Reg { init; _ } -> map.(r) <- B.reg b ~init (Circuit.name c r)
        | _ -> ())
    c.Circuit.registers;
  Array.iter
    (fun s ->
      if map.(s) = -1 then
        if target.(s) <> -1 then begin
          let keep, phase = resolve s false in
          map.(s) <- (if phase then B.not_ b map.(keep) else map.(keep))
        end
        else
          map.(s) <-
            (match Circuit.node c s with
            | Circuit.Input -> B.input b (Circuit.name c s)
            | Circuit.Const v -> B.const b v
            | Circuit.Gate (kind, fanins) ->
              B.gate b kind (Array.map (fun f -> map.(f)) fanins)
            | Circuit.Reg _ -> assert false (* created above *)))
    c.Circuit.topo;
  Array.iter
    (fun r ->
      if target.(r) = -1 then
        match Circuit.node c r with
        | Circuit.Reg { next; _ } -> B.connect b map.(r) map.(next)
        | _ -> ())
    c.Circuit.registers;
  List.iter (fun (name, s) -> B.output b name map.(s)) c.Circuit.outputs;
  let c' = B.finalize b in
  let lookup s =
    if s < 0 || s >= n || map.(s) = -1 || target.(s) <> -1 then None
    else Some map.(s)
  in
  (c', lookup, !applied)
