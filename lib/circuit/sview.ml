type t = {
  circuit : Circuit.t;
  inside : Bitset.t;
  free : Bitset.t;
  regs : int array;
  free_inputs : int array;
  roots : int list;
}

let mem t s = Bitset.mem t.inside s
let is_free t s = Bitset.mem t.free s

let is_state t s =
  mem t s && (not (is_free t s)) && Circuit.is_reg t.circuit s

let make circuit ~inside ~free ~roots =
  let regs = ref [] in
  Bitset.iter
    (fun s ->
      if not (Bitset.mem inside s) then
        invalid_arg "Sview.make: free signal not inside the view")
    free;
  List.iter
    (fun r ->
      if not (Bitset.mem inside r) then
        invalid_arg "Sview.make: root signal not inside the view")
    roots;
  Bitset.iter
    (fun s ->
      if not (Bitset.mem free s) then
        match Circuit.node circuit s with
        | Circuit.Const _ -> ()
        | Circuit.Input ->
          invalid_arg "Sview.make: primary input inside but not free"
        | Circuit.Reg { next; _ } ->
          if not (Bitset.mem inside next) then
            invalid_arg "Sview.make: register next-state input escapes view";
          regs := s :: !regs
        | Circuit.Gate (_, fanins) ->
          Array.iter
            (fun f ->
              if not (Bitset.mem inside f) then
                invalid_arg "Sview.make: gate fanin escapes view")
            fanins)
    inside;
  {
    circuit;
    inside;
    free;
    regs = Array.of_list (List.rev !regs);
    free_inputs = Array.of_list (Bitset.to_list free);
    roots;
  }

let whole circuit ~roots =
  let n = Circuit.num_signals circuit in
  let inside = Bitset.create n in
  for s = 0 to n - 1 do
    Bitset.add inside s
  done;
  let free = Bitset.create n in
  Array.iter (Bitset.add free) circuit.Circuit.inputs;
  make circuit ~inside ~free ~roots

let num_regs t = Array.length t.regs
let num_free_inputs t = Array.length t.free_inputs

let num_gates t =
  Bitset.fold
    (fun s n ->
      match Circuit.node t.circuit s with
      | Circuit.Gate _ when not (Bitset.mem t.free s) -> n + 1
      | _ -> n)
    t.inside 0

let pp_stats ppf t =
  Format.fprintf ppf "regs=%d gates=%d free_inputs=%d" (num_regs t)
    (num_gates t) (num_free_inputs t)
