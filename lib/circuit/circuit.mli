(** Gate-level designs.

    A design is a directed graph of cells indexed by dense integer
    signal identifiers. Each cell has exactly one output, so "signal"
    and "cell" are used interchangeably: the identifier names both the
    cell and the net its output drives. Registers carry an initial
    value ([`Zero], [`One] or [`Free]) and a next-state fanin; the set
    of initial states is the product of the registers' initial values,
    with [`Free] registers unconstrained (this models the paper's set
    [A] of initial states).

    Designs are built through the mutable {!Builder} (which permits
    registers with not-yet-connected next-state inputs, as needed for
    feedback) and frozen by {!Builder.finalize} into an immutable {!t}
    with topological order and fanout maps precomputed. *)

type init = [ `Zero | `One | `Free ]

type node =
  | Input  (** primary input of the design *)
  | Const of bool
  | Gate of Gate.kind * int array  (** kind and fanin signals *)
  | Reg of { init : init; next : int }
      (** register: output is this signal, [next] is sampled each cycle *)

type t = private {
  nodes : node array;
  names : string array;  (** every signal has a (unique) name *)
  inputs : int array;  (** primary inputs, in creation order *)
  registers : int array;  (** registers, in creation order *)
  outputs : (string * int) list;  (** declared outputs *)
  topo : int array;
      (** all signals in combinational topological order: a gate appears
          after all of its fanins; inputs, constants and registers
          appear before any gate that reads them *)
  fanouts : int array array;
      (** [fanouts.(s)] lists the cells reading signal [s] (register
          cells are listed when [s] is their next-state input) *)
  level : int array;
      (** combinational depth: 0 for inputs/constants/registers, else
          1 + max level of fanins *)
}

val num_signals : t -> int
val num_gates : t -> int
val num_registers : t -> int
val num_inputs : t -> int

val node : t -> int -> node
val name : t -> int -> string
val find : t -> string -> int
(** Look up a signal by name. Raises [Not_found]. *)

val output : t -> string -> int
(** Look up a declared output by name. Raises [Invalid_argument]
    naming the output when it is not declared. *)

val output_opt : t -> string -> int option

val is_reg : t -> int -> bool
val is_input : t -> int -> bool

val eval : t -> input:(int -> bool) -> state:(int -> bool) -> bool array
(** Combinational evaluation: value of every signal given values for
    primary inputs and register outputs. *)

val step :
  t -> input:(int -> bool) -> state:(int -> bool) -> bool array * (int -> bool)
(** One clock cycle: returns the combinational values and the next
    state (a function from register signal to its new value). *)

val initial_state : t -> free:(int -> bool) -> int -> bool
(** The initial value of a register, resolving [`Free] registers with
    the supplied valuation. *)

(** Mutable builder for designs. *)
module Builder : sig
  type c

  val create : unit -> c

  val input : c -> string -> int

  val const : c -> bool -> int
  (** Constants are interned: at most one cell per polarity. *)

  val gate : c -> ?name:string -> Gate.kind -> int array -> int
  (** Structurally-identical gates are hash-consed. Unary [And]/[Or]
      collapse to their fanin; [Not (Not x)] collapses to [x]. *)

  val reg : c -> ?init:init -> string -> int
  (** A register whose next-state input is connected later. *)

  val connect : c -> int -> int -> unit
  (** [connect c r d] sets register [r]'s next-state input to [d].
      Raises [Invalid_argument] if [r] is not a register or already
      connected. *)

  val reg_of : c -> ?init:init -> string -> int -> int
  (** [reg_of c name d] is a register already connected to [d]. *)

  val output : c -> string -> int -> unit

  (* Convenience combinators (all hash-consed through {!gate}). *)
  val not_ : c -> int -> int
  val and2 : c -> int -> int -> int
  val or2 : c -> int -> int -> int
  val xor2 : c -> int -> int -> int
  val and_l : c -> int list -> int
  val or_l : c -> int list -> int
  val mux : c -> int -> int -> int -> int
  (** [mux c sel d0 d1]. *)

  val eq2 : c -> int -> int -> int
  val implies : c -> int -> int -> int

  val finalize : c -> t
  (** Freeze the design. Raises [Invalid_argument] if a register is
      left unconnected, a name is duplicated, or the combinational part
      is cyclic. *)
end

val pp_stats : Format.formatter -> t -> unit
