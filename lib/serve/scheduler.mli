(** Cone-grouping job scheduler.

    Properties of the same design whose cones of influence share
    registers profit most from a warm session: their initial abstract
    models overlap, so retargeting carries compiled cone BDDs across.
    [plan] reorders a submission queue so such jobs run back to back:

    - jobs are bucketed by netlist digest (one pool session each),
      buckets ordered by each digest's first submission;
    - within a bucket, jobs are partitioned by the transitive closure
      of "COI register sets intersect" (a union-find), groups ordered
      by each group's first submission, members in submission order.

    The closure makes the partition independent of comparison order,
    so the plan is a deterministic function of the submitted set — the
    determinism the scheduler tests permute against. *)

val plan : ('a * string * Rfn_circuit.Bitset.t) list -> 'a list
(** [plan [(job, digest, coi_regs); ...]] in submission order returns
    the jobs in execution order. *)
