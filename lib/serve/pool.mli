(** LRU pool of warm verification sessions, keyed by netlist digest
    ({!Rfn_proc.Checkpoint.hash_circuit}).

    A hit hands back the design's warm session — its cone memo and
    variable order survive retargeting ({!Rfn_core.Session.retarget}),
    so properties of one design amortize compilation. A miss creates a
    session ({!Rfn_core.Rfn.prepare}) and evicts the least-recently
    used entry beyond [max_sessions]. {!trim} additionally evicts LRU
    entries while the pool's total live BDD node count exceeds
    [max_nodes] — call it after each job; the entry just used is never
    trimmed, so a single over-budget design still keeps its session
    until another design needs the slot.

    Counted as [serve.sessions_created], [serve.sessions_reused] and
    [serve.sessions_evicted]. *)

type t

val create : ?max_sessions:int -> ?max_nodes:int -> unit -> t
(** Defaults: [max_sessions = 4], [max_nodes = 8_000_000]. Caps are
    clamped to at least 1 session. *)

val acquire :
  t ->
  digest:string ->
  create:(unit -> Rfn_core.Session.t) ->
  Rfn_core.Session.t * bool
(** The session for [digest], freshly created when absent; the flag is
    [true] on a hit (warm session reused). Marks the entry
    most-recently used either way. *)

val trim : t -> unit
(** Evict LRU entries while the total live node count exceeds
    [max_nodes], never evicting the most-recently used entry. *)

val drop : t -> digest:string -> unit
(** Remove a digest's entry outright — the server calls this when a
    job died mid-run on an uncaught exception and the session's state
    can no longer be trusted. Counted as an eviction; no-op when
    absent. *)

val length : t -> int

val digests : t -> string list
(** Resident digests, most-recently used first — what the eviction
    tests assert on. *)
