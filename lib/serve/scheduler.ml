module Bitset = Rfn_circuit.Bitset

(* Minimal union-find over array indices, path-halving only: the
   per-bucket job counts are tiny. *)
let find parent i =
  let i = ref i in
  while parent.(!i) <> !i do
    parent.(!i) <- parent.(parent.(!i));
    i := parent.(!i)
  done;
  !i

let union parent i j =
  let ri = find parent i and rj = find parent j in
  (* root at the smaller index, so a group's representative is its
     earliest-submitted member — the group-ordering key *)
  if ri < rj then parent.(rj) <- ri else if rj < ri then parent.(ri) <- rj

let intersects a b =
  (* iterate the smaller set *)
  let a, b = if Bitset.cardinal a <= Bitset.cardinal b then (a, b) else (b, a) in
  List.exists (fun s -> Bitset.mem b s) (Bitset.to_list a)

let plan items =
  let items = Array.of_list items in
  let n = Array.length items in
  let digest_of i = match items.(i) with _, d, _ -> d in
  let regs_of i = match items.(i) with _, _, r -> r in
  let job_of i = match items.(i) with j, _, _ -> j in
  (* digest buckets, in first-submission order *)
  let buckets = ref [] in
  for i = n - 1 downto 0 do
    let d = digest_of i in
    match List.assoc_opt d !buckets with
    | Some members -> members := i :: !members
    | None -> buckets := (d, ref [ i ]) :: !buckets
  done;
  let parent = Array.init n (fun i -> i) in
  List.iter
    (fun (_, members) ->
      let ms = !members in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if i < j && intersects (regs_of i) (regs_of j) then
                union parent i j)
            ms)
        ms)
    !buckets;
  (* within a bucket: stable-sort members by group representative (the
     group's earliest member), ties broken by submission order *)
  List.concat_map
    (fun (_, members) ->
      !members
      |> List.map (fun i -> (find parent i, i))
      |> List.sort compare
      |> List.map (fun (_, i) -> job_of i))
    !buckets
