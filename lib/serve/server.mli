(** The long-running verification service.

    One process, one thread: requests are read as JSON Lines from a
    file descriptor, jobs accumulate in a queue, and whenever the input
    is quiet (nothing buffered and nothing readable right now) the
    server runs the next planned job ({!Scheduler.plan} over the queue)
    on a pooled warm session ({!Pool}) and writes its [result] line.
    Because draining the readable input always precedes running a job,
    a piped batch is fully enqueued before the first verification
    starts — the scheduler sees the whole batch — while an interactive
    client still gets an answer after every line.

    Per job, the server scopes telemetry ({!Rfn_obs.Telemetry.scope})
    so the [counters] object of each result line holds only that job's
    deltas, stamps every telemetry event with the job id
    ([Telemetry.set_context]), wires the job id into the checkpoint key
    and runs {!Rfn_core.Rfn.verify_in_session} under the job's budget.
    End of input (EOF) and the [shutdown] op behave identically: the
    queue is drained — every remaining job still runs and reports —
    then a final [bye] line is written.

    Response lines:
    {v
    {"ev":"ack","id":"j1"}
    {"ev":"error","message":"...","id":"j1"}      (id when known)
    {"ev":"status","jobs":[{"id":"j1","state":"queued"},...]}
    {"ev":"result","id":"j1","verdict":"proved","seconds":0.12,
     "iterations":3,"final_regs":7,"session":{"digest":"...","warm":true},
     "counters":{"session.cones_reused":11,...},"provenance":[...]}
      — plus "trace" (falsified) or "failure" (aborted)
    {"ev":"result","id":"j1","verdict":"cancelled"}
    {"ev":"bye","jobs_completed":2}
    v}

    Counted as [serve.jobs_submitted], [serve.jobs_completed],
    [serve.jobs_cancelled], plus the {!Pool} counters. *)

type limits = {
  max_sessions : int;  (** warm-session LRU capacity ({!Pool}) *)
  max_nodes : int;  (** pool-wide live BDD node cap ({!Pool.trim}) *)
}

val default_limits : limits
(** [{max_sessions = 4; max_nodes = 8_000_000}] *)

val run :
  ?limits:limits ->
  ?config:Rfn_core.Rfn.config ->
  ?checkpoint_dir:string ->
  input:Unix.file_descr ->
  output:out_channel ->
  unit ->
  int
(** Serve [input] until EOF or [shutdown], writing responses (flushed
    per line) to [output]; returns the number of jobs that produced a
    verdict line. [config] is the base every job's budget overrides
    ({!Rfn_core.Rfn.default_config} by default); its [checkpoint] and
    [resume] fields are ignored — with [checkpoint_dir] set, each job
    checkpoints to [dir/<digest>-<property>-<id>.json] keyed by its
    job id, and resumes it if present (crash-safe server restarts). *)

val serve_socket :
  ?limits:limits ->
  ?config:Rfn_core.Rfn.config ->
  ?checkpoint_dir:string ->
  path:string ->
  unit ->
  int
(** Bind a Unix-domain socket at [path] (unlinking a stale one) and
    accept connections sequentially, serving each with {!run}; the
    session pool persists across connections, so a reconnecting client
    finds its designs warm. A [shutdown] op (not a bare disconnect)
    stops the accept loop; returns total jobs completed. *)
