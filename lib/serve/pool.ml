module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Session = Rfn_core.Session
module Telemetry = Rfn_obs.Telemetry

let src = Logs.Src.create "serve.pool" ~doc:"warm-session LRU pool"

module Log = (val Logs.src_log src : Logs.LOG)

let c_created = Telemetry.counter "serve.sessions_created"
let c_reused = Telemetry.counter "serve.sessions_reused"
let c_evicted = Telemetry.counter "serve.sessions_evicted"

type entry = {
  digest : string;
  session : Session.t;
  mutable last_used : int;  (* logical clock, higher = more recent *)
}

type t = {
  max_sessions : int;
  max_nodes : int;
  mutable clock : int;
  mutable entries : entry list;
}

let create ?(max_sessions = 4) ?(max_nodes = 8_000_000) () =
  { max_sessions = max 1 max_sessions; max_nodes; clock = 0; entries = [] }

let nodes_of e =
  match Session.varmap e.session with
  | None -> 0
  | Some vm -> Bdd.num_nodes (Varmap.man vm)

(* Dropping the entry releases the session's whole manager — nothing
   needs unprotecting. *)
let evict t e =
  Telemetry.incr c_evicted;
  Log.info (fun m -> m "evicting session %s (%d nodes)" e.digest (nodes_of e));
  t.entries <- List.filter (fun e' -> e' != e) t.entries

let lru t = function
  | [] -> ()
  | e0 :: rest ->
    let oldest =
      List.fold_left
        (fun a e -> if e.last_used < a.last_used then e else a)
        e0 rest
    in
    evict t oldest

let touch t e =
  t.clock <- t.clock + 1;
  e.last_used <- t.clock

let acquire t ~digest ~create:make =
  match List.find_opt (fun e -> e.digest = digest) t.entries with
  | Some e ->
    Telemetry.incr c_reused;
    touch t e;
    (e.session, true)
  | None ->
    Telemetry.incr c_created;
    let e = { digest; session = make (); last_used = 0 } in
    touch t e;
    t.entries <- e :: t.entries;
    while List.length t.entries > t.max_sessions do
      (* the fresh entry is the most recent, so it is never the LRU *)
      lru t (List.filter (fun e' -> e' != e) t.entries)
    done;
    (e.session, false)

let trim t =
  let total () = List.fold_left (fun acc e -> acc + nodes_of e) 0 t.entries in
  let evictable () =
    match t.entries with
    | [] | [ _ ] -> []
    | _ ->
      let mru =
        List.fold_left
          (fun a e -> if e.last_used > a.last_used then e else a)
          (List.hd t.entries) (List.tl t.entries)
      in
      List.filter (fun e -> e != mru) t.entries
  in
  let rec go () =
    if total () > t.max_nodes then
      match evictable () with
      | [] -> ()
      | candidates ->
        lru t candidates;
        go ()
  in
  go ()

let drop t ~digest =
  match List.find_opt (fun e -> e.digest = digest) t.entries with
  | None -> ()
  | Some e -> evict t e

let length t = List.length t.entries

let digests t =
  List.sort (fun a b -> compare b.last_used a.last_used) t.entries
  |> List.map (fun e -> e.digest)
