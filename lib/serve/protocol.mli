(** Wire protocol of the verification server: JSON Lines, one message
    per line, over stdio or a Unix socket.

    Requests (client → server):
    {v
    {"op":"submit","id":"j1","design":"fifo.bench","property":"psh_hf"}
    {"op":"submit","id":"j2","netlist":"INPUT(a)\n...","property":"bad",
     "max_iterations":32,"node_limit":500000,"mc_max_steps":200,
     "max_seconds":60.0,"engines":"portfolio","analyze":true}
    {"op":"status"}            {"op":"status","id":"j1"}
    {"op":"cancel","id":"j1"}
    {"op":"shutdown"}
    v}

    Responses (server → client) are built by the server; this module
    only fixes the request side and the shared budget record. Every
    submit is answered by an [ack] (or [error]) line immediately and by
    exactly one [result] line later; [shutdown] drains the queue — the
    remaining jobs still run and report — then answers [bye]. *)

type design =
  | File of string  (** path to a [.bench] netlist *)
  | Netlist of string  (** inline netlist text *)

type budget = {
  max_iterations : int option;
  node_limit : int option;
  mc_max_steps : int option;
  max_seconds : float option;
  engines : Rfn_core.Rfn.engines option;
  analyze : bool option;
      (** run the static invariant-inference pre-flight before the
          loop; the warm-session cache means one analysis serves a
          whole batch on the same design *)
}
(** Per-job overrides of the server's base config; [None] fields
    inherit. *)

val no_budget : budget

type submit = {
  id : string;
  design : design;
  property : string;
  budget : budget;
}

type request =
  | Submit of submit
  | Status of string option  (** all jobs, or one *)
  | Cancel of string
  | Shutdown

val request_of_json : Rfn_obs.Json.t -> (request, string) result
(** Total: any shape violation (missing op, unknown op, missing id,
    both or neither of design/netlist, unknown engine name) is an
    [Error] with a message the server echoes back on an [error] line. *)

val request_of_line : string -> (request, string) result
(** [request_of_json] after parsing; malformed JSON is an [Error]. *)

val submit_to_json : submit -> Rfn_obs.Json.t
(** Render a submit request — the client-side encoder the bench batch
    driver and the tests use to feed a server. *)
