module Json = Rfn_obs.Json
module Rfn = Rfn_core.Rfn

type design = File of string | Netlist of string

type budget = {
  max_iterations : int option;
  node_limit : int option;
  mc_max_steps : int option;
  max_seconds : float option;
  engines : Rfn.engines option;
  analyze : bool option;
}

let no_budget =
  {
    max_iterations = None;
    node_limit = None;
    mc_max_steps = None;
    max_seconds = None;
    engines = None;
    analyze = None;
  }

type submit = {
  id : string;
  design : design;
  property : string;
  budget : budget;
}

type request =
  | Submit of submit
  | Status of string option
  | Cancel of string
  | Shutdown

let request_of_json j =
  let ( let* ) = Result.bind in
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name = Option.bind (Json.member name j) Json.to_int in
  let flt name = Option.bind (Json.member name j) Json.to_float in
  let boolean name = Option.bind (Json.member name j) Json.to_bool in
  let required name =
    match str name with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or ill-typed %S field" name)
  in
  match str "op" with
  | None -> Error "missing \"op\" field"
  | Some "shutdown" -> Ok Shutdown
  | Some "status" -> Ok (Status (str "id"))
  | Some "cancel" ->
    let* id = required "id" in
    Ok (Cancel id)
  | Some "submit" ->
    let* id = required "id" in
    let* property = required "property" in
    let* design =
      match (str "design", str "netlist") with
      | Some f, None -> Ok (File f)
      | None, Some n -> Ok (Netlist n)
      | Some _, Some _ -> Error "both \"design\" and \"netlist\" given"
      | None, None -> Error "one of \"design\" or \"netlist\" is required"
    in
    let* engines =
      match str "engines" with
      | None -> Ok None
      | Some s -> (
        match Rfn.engines_of_string s with
        | e -> Ok (Some e)
        | exception Invalid_argument msg -> Error msg)
    in
    Ok
      (Submit
         {
           id;
           design;
           property;
           budget =
             {
               max_iterations = int "max_iterations";
               node_limit = int "node_limit";
               mc_max_steps = int "mc_max_steps";
               max_seconds = flt "max_seconds";
               engines;
               analyze = boolean "analyze";
             };
         })
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_line line =
  match Json.of_string line with
  | exception Failure msg -> Error ("malformed JSON: " ^ msg)
  | j -> request_of_json j

let submit_to_json s =
  let base = [ ("op", Json.Str "submit"); ("id", Json.Str s.id) ] in
  let design =
    match s.design with
    | File f -> ("design", Json.Str f)
    | Netlist n -> ("netlist", Json.Str n)
  in
  let opt name enc = function None -> [] | Some v -> [ (name, enc v) ] in
  Json.Obj
    (base
    @ [ design; ("property", Json.Str s.property) ]
    @ opt "max_iterations" (fun n -> Json.Int n) s.budget.max_iterations
    @ opt "node_limit" (fun n -> Json.Int n) s.budget.node_limit
    @ opt "mc_max_steps" (fun n -> Json.Int n) s.budget.mc_max_steps
    @ opt "max_seconds" (fun f -> Json.Float f) s.budget.max_seconds
    @ opt "engines"
        (fun e -> Json.Str (Rfn.engines_to_string e))
        s.budget.engines
    @ opt "analyze" (fun b -> Json.Bool b) s.budget.analyze)
