open Rfn_circuit
module Json = Rfn_obs.Json
module Telemetry = Rfn_obs.Telemetry
module Provenance = Rfn_obs.Provenance
module Rfn = Rfn_core.Rfn
module Checkpoint = Rfn_proc.Checkpoint
module Codec = Rfn_proc.Codec
module F = Rfn_failure

let src = Logs.Src.create "serve" ~doc:"RFN verification server"

module Log = (val Logs.src_log src : Logs.LOG)

let c_submitted = Telemetry.counter "serve.jobs_submitted"
let c_completed = Telemetry.counter "serve.jobs_completed"
let c_cancelled = Telemetry.counter "serve.jobs_cancelled"

type limits = { max_sessions : int; max_nodes : int }

let default_limits = { max_sessions = 4; max_nodes = 8_000_000 }

(* ---- line-buffered reads over a raw descriptor ----------------------- *)

(* The loop needs two read disciplines over one descriptor: "consume
   everything available right now without blocking" (so a piped batch
   is fully enqueued before the first job runs) and "sleep until the
   client says something" (when the queue is empty). Both live on one
   pending-bytes buffer. *)
type reader = {
  fd : Unix.file_descr;
  chunk : bytes;
  mutable pending : string;
  mutable eof : bool;
}

let reader fd = { fd; chunk = Bytes.create 8192; pending = ""; eof = false }

let pop_line r =
  match String.index_opt r.pending '\n' with
  | None -> None
  | Some i ->
    let line = String.sub r.pending 0 i in
    r.pending <- String.sub r.pending (i + 1) (String.length r.pending - i - 1);
    Some line

let readable fd ~timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* One [read]; marks EOF on 0 bytes. Call only when [readable]. *)
let fill r =
  if not r.eof then
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 -> r.eof <- true
    | n -> r.pending <- r.pending ^ Bytes.sub_string r.chunk 0 n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> r.eof <- true

(* ---- server state ---------------------------------------------------- *)

type job = {
  id : string;
  digest : string;
  circuit : Circuit.t;
  prop_name : string;
  coi_regs : Bitset.t;  (* the scheduler's cone-grouping key *)
  budget : Protocol.budget;
}

type state = {
  pool : Pool.t;
  base : Rfn.config;
  checkpoint_dir : string option;
  output : out_channel;
  mutable queue : job list;  (* submission order *)
  mutable order : string list;  (* every id ever submitted, oldest first *)
  states : (string, string) Hashtbl.t;  (* id -> queued/running/... *)
  circuits : (string, Circuit.t) Hashtbl.t;  (* digest -> parsed design *)
  sources : (string, string) Hashtbl.t;  (* design source key -> digest *)
  mutable shutdown : bool;
  mutable completed : int;
}

let emit st j =
  Json.to_channel st.output j;
  output_char st.output '\n';
  flush st.output

let error_event ?id msg =
  let base = [ ("ev", Json.Str "error"); ("message", Json.Str msg) ] in
  Json.Obj (match id with None -> base | Some i -> base @ [ ("id", Json.Str i) ])

(* ---- submit ---------------------------------------------------------- *)

(* The circuit cache is keyed by digest, and the digest resolved via a
   source-key cache (path, or a hash of the inline text) so a batch
   over one design parses it once. Resolving through the digest also
   guarantees every job of a digest shares ONE [Circuit.t] — signal
   ids in the job's property resolve against the same numbering the
   pooled session was built on. *)
let resolve_design st design =
  let key =
    match design with
    | Protocol.File path -> "file:" ^ path
    | Protocol.Netlist text -> "inline:" ^ Digest.to_hex (Digest.string text)
  in
  let parse () =
    match design with
    | Protocol.File path -> Netlist_io.load path
    | Protocol.Netlist text ->
      (* Inline text carries no extension; sniff the AIGER magic so
         clients can inline `.aag`/`.aig` designs too. *)
      if
        String.length text >= 4
        && (String.sub text 0 4 = "aag " || String.sub text 0 4 = "aig ")
      then Aiger_io.parse text
      else Bench_io.parse text
  in
  match Hashtbl.find_opt st.sources key with
  | Some digest when Hashtbl.mem st.circuits digest ->
    (digest, Hashtbl.find st.circuits digest)
  | stale ->
    (* Cache miss — or a source mapping whose circuit entry is gone
       (a bare Hashtbl.find here used to raise Not_found and kill the
       whole serve loop). Re-parse and self-heal the mapping. *)
    let circuit = parse () in
    let d = Checkpoint.hash_circuit circuit in
    if not (Hashtbl.mem st.circuits d) then Hashtbl.add st.circuits d circuit;
    if stale <> None then Hashtbl.remove st.sources key;
    Hashtbl.add st.sources key d;
    (d, circuit)

let submit st (s : Protocol.submit) =
  if Hashtbl.mem st.states s.id then
    emit st (error_event ~id:s.id (Printf.sprintf "duplicate job id %S" s.id))
  else
    match
      let digest, circuit = resolve_design st s.design in
      let prop = Property.of_output circuit s.property in
      let coi = Coi.compute circuit ~roots:(Property.roots prop) in
      { id = s.id; digest; circuit; prop_name = s.property;
        coi_regs = coi.Coi.regs; budget = s.budget }
    with
    | exception Sys_error msg -> emit st (error_event ~id:s.id msg)
    | exception Failure msg -> emit st (error_event ~id:s.id msg)
    | exception Invalid_argument _ ->
      emit st
        (error_event ~id:s.id
           (Printf.sprintf "no output %S in this design" s.property))
    | job ->
      Telemetry.incr c_submitted;
      st.queue <- st.queue @ [ job ];
      st.order <- st.order @ [ s.id ];
      Hashtbl.replace st.states s.id "queued";
      emit st (Json.Obj [ ("ev", Json.Str "ack"); ("id", Json.Str s.id) ])

(* ---- status / cancel ------------------------------------------------- *)

let status st id =
  (* An unknown id answers with a structured error line instead of an
     empty job list (and [Hashtbl.find_opt] instead of a bare find, so
     a state-table gap can never raise out of the serve loop). *)
  let state_of i =
    Option.value ~default:"unknown" (Hashtbl.find_opt st.states i)
  in
  match id with
  | Some i when not (Hashtbl.mem st.states i) ->
    emit st (error_event ~id:i (Printf.sprintf "unknown job id %S" i))
  | _ ->
    let ids =
      match id with
      | None -> st.order
      | Some i -> List.filter (String.equal i) st.order
    in
    let jobs =
      List.map
        (fun i ->
          Json.Obj
            [ ("id", Json.Str i); ("state", Json.Str (state_of i)) ])
        ids
    in
    emit st (Json.Obj [ ("ev", Json.Str "status"); ("jobs", Json.List jobs) ])

let cancel st id =
  match Hashtbl.find_opt st.states id with
  | Some "queued" ->
    Telemetry.incr c_cancelled;
    st.queue <- List.filter (fun j -> j.id <> id) st.queue;
    Hashtbl.replace st.states id "cancelled";
    emit st
      (Json.Obj
         [ ("ev", Json.Str "result"); ("id", Json.Str id);
           ("verdict", Json.Str "cancelled") ])
  | Some state ->
    emit st (error_event ~id (Printf.sprintf "job is %s, not queued" state))
  | None -> emit st (error_event ~id (Printf.sprintf "unknown job id %S" id))

(* ---- running one job ------------------------------------------------- *)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

let config_of_job st (j : job) =
  let b = j.budget in
  let pick o field = Option.value ~default:field o in
  let checkpoint, resume =
    match st.checkpoint_dir with
    | None -> (None, false)
    | Some dir ->
      let file =
        Filename.concat dir
          (Printf.sprintf "%s-%s-%s.json"
             (String.sub j.digest 0 (min 12 (String.length j.digest)))
             (sanitize j.prop_name) (sanitize j.id))
      in
      (Some file, true)
  in
  {
    st.base with
    Rfn.job_id = j.id;
    max_iterations = pick b.Protocol.max_iterations st.base.Rfn.max_iterations;
    node_limit = pick b.Protocol.node_limit st.base.Rfn.node_limit;
    mc_max_steps = pick b.Protocol.mc_max_steps st.base.Rfn.mc_max_steps;
    max_seconds =
      (match b.Protocol.max_seconds with
      | Some s -> Some s
      | None -> st.base.Rfn.max_seconds);
    engines = pick b.Protocol.engines st.base.Rfn.engines;
    analyze = pick b.Protocol.analyze st.base.Rfn.analyze;
    checkpoint;
    resume;
  }

let run_job st (j : job) =
  Hashtbl.replace st.states j.id "running";
  let config = config_of_job st j in
  let prop = Property.of_output j.circuit j.prop_name in
  let scope = Telemetry.scope () in
  let saved_context = Telemetry.context () in
  Telemetry.set_context (("job", Json.Str j.id) :: saved_context);
  let session, warm =
    Pool.acquire st.pool ~digest:j.digest ~create:(fun () ->
        Rfn.prepare ~config j.circuit ~roots:(Property.roots prop))
  in
  Log.info (fun m ->
      m "job %s: %s on %s session" j.id j.prop_name
        (if warm then "warm" else "cold"));
  let verdict_fields =
    Fun.protect
      ~finally:(fun () -> Telemetry.set_context saved_context)
      (fun () ->
        match Rfn.verify_in_session ~config session prop with
        | Rfn.Proved, stats ->
          [ ("verdict", Json.Str "proved");
            ("seconds", Json.Float stats.Rfn.seconds);
            ("iterations", Json.Int (List.length stats.Rfn.provenance));
            ("final_regs", Json.Int stats.Rfn.final_abstract_regs);
            ( "provenance",
              Json.List (List.map Provenance.to_json stats.Rfn.provenance) ) ]
        | Rfn.Falsified trace, stats ->
          [ ("verdict", Json.Str "falsified");
            ("seconds", Json.Float stats.Rfn.seconds);
            ("iterations", Json.Int (List.length stats.Rfn.provenance));
            ("final_regs", Json.Int stats.Rfn.final_abstract_regs);
            ("trace", Codec.trace_to_json trace);
            ( "provenance",
              Json.List (List.map Provenance.to_json stats.Rfn.provenance) ) ]
        | Rfn.Aborted failure, stats ->
          [ ("verdict", Json.Str "aborted");
            ("seconds", Json.Float stats.Rfn.seconds);
            ("iterations", Json.Int (List.length stats.Rfn.provenance));
            ("final_regs", Json.Int stats.Rfn.final_abstract_regs);
            ("failure", Json.Obj (F.to_attrs failure));
            ( "provenance",
              Json.List (List.map Provenance.to_json stats.Rfn.provenance) ) ]
        | exception e ->
          (* the session's state can no longer be trusted — drop it so
             the next job of this design starts cold instead of weird *)
          Pool.drop st.pool ~digest:j.digest;
          let failure =
            F.make ~iteration:0 ~engine:F.Cegar ~phase:F.Loop
              (F.Invariant ("uncaught exception: " ^ Printexc.to_string e))
          in
          [ ("verdict", Json.Str "aborted");
            ("failure", Json.Obj (F.to_attrs failure)) ])
  in
  let counters =
    List.map (fun (n, d) -> (n, Json.Int d)) (Telemetry.scope_delta scope)
  in
  let verdict =
    match List.assoc_opt "verdict" verdict_fields with
    | Some (Json.Str v) -> v
    | _ -> "aborted"
  in
  Hashtbl.replace st.states j.id ("done:" ^ verdict);
  Telemetry.incr c_completed;
  st.completed <- st.completed + 1;
  emit st
    (Json.Obj
       ([ ("ev", Json.Str "result"); ("id", Json.Str j.id) ]
       @ verdict_fields
       @ [ ( "session",
             Json.Obj
               [ ("digest", Json.Str j.digest); ("warm", Json.Bool warm) ] );
           ("counters", Json.Obj counters) ]));
  Pool.trim st.pool

(* ---- the loop -------------------------------------------------------- *)

let handle_line st line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.request_of_line line with
    | Error msg -> emit st (error_event msg)
    | Ok (Protocol.Submit s) -> submit st s
    | Ok (Protocol.Status id) -> status st id
    | Ok (Protocol.Cancel id) -> cancel st id
    | Ok Protocol.Shutdown -> st.shutdown <- true

let run_next st =
  match Scheduler.plan (List.map (fun j -> (j, j.digest, j.coi_regs)) st.queue)
  with
  | [] -> ()
  | j :: _ ->
    st.queue <- List.filter (fun j' -> j'.id <> j.id) st.queue;
    run_job st j

let serve_state st input =
  let r = reader input in
  (* consume every line already buffered or readable without blocking *)
  let rec drain_ready () =
    match pop_line r with
    | Some line ->
      handle_line st line;
      drain_ready ()
    | None ->
      if (not r.eof) && readable r.fd ~timeout:0.0 then begin
        fill r;
        drain_ready ()
      end
  in
  let rec loop () =
    drain_ready ();
    if st.shutdown || r.eof then
      (* drain: every queued job still runs and reports *)
      while st.queue <> [] do
        run_next st
      done
    else if st.queue <> [] then begin
      run_next st;
      loop ()
    end
    else begin
      (* idle and nothing to do: sleep until the client says something *)
      if readable r.fd ~timeout:(-1.0) then fill r;
      loop ()
    end
  in
  loop ();
  emit st
    (Json.Obj
       [ ("ev", Json.Str "bye"); ("jobs_completed", Json.Int st.completed) ])

let make_state ~pool ~config ~checkpoint_dir ~output =
  {
    pool;
    base = config;
    checkpoint_dir;
    output;
    queue = [];
    order = [];
    states = Hashtbl.create 31;
    circuits = Hashtbl.create 7;
    sources = Hashtbl.create 7;
    shutdown = false;
    completed = 0;
  }

let run ?(limits = default_limits) ?(config = Rfn.default_config)
    ?checkpoint_dir ~input ~output () =
  let pool =
    Pool.create ~max_sessions:limits.max_sessions ~max_nodes:limits.max_nodes
      ()
  in
  let st = make_state ~pool ~config ~checkpoint_dir ~output in
  serve_state st input;
  st.completed

let serve_socket ?(limits = default_limits) ?(config = Rfn.default_config)
    ?checkpoint_dir ~path () =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Log.info (fun m -> m "listening on %s" path);
  let pool =
    Pool.create ~max_sessions:limits.max_sessions ~max_nodes:limits.max_nodes
      ()
  in
  let total = ref 0 in
  let stop = ref false in
  while not !stop do
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
      let output = Unix.out_channel_of_descr fd in
      let st = make_state ~pool ~config ~checkpoint_dir ~output in
      (try serve_state st fd
       with e ->
         Log.warn (fun m ->
             m "connection died: %s" (Printexc.to_string e)));
      total := !total + st.completed;
      if st.shutdown then stop := true;
      (* the channel owns the descriptor: closing it closes the fd *)
      close_out_noerr output
  done;
  Unix.close sock;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  !total
