open Rfn_circuit
module Telemetry = Rfn_obs.Telemetry
module Packed = Rfn_sim3v.Sim3v.Packed

let c_decisions = Telemetry.counter "atpg.decisions"
let c_backtracks = Telemetry.counter "atpg.backtracks"
let c_solves = Telemetry.counter "atpg.solves"
let c_aborts = Telemetry.counter "atpg.aborts"
let c_scoap_hits = Telemetry.counter "atpg.scoap_cache_hits"
let c_scoap_misses = Telemetry.counter "atpg.scoap_cache_misses"
let c_random_sat = Telemetry.counter "atpg.random_sat"
let c_random_rounds = Telemetry.counter "atpg.random_rounds"

type answer = Sat of Trace.t | Unsat | Abort of Rfn_failure.resource
type stats = { decisions : int; backtracks : int }
type limits = { max_backtracks : int; max_seconds : float option }

let default_limits = { max_backtracks = 20_000; max_seconds = None }

(* Ternary values, stored one byte per (frame, signal) cell. *)
let v0 = '\000'
let v1 = '\001'
let vx = '\002'

let of_bool b = if b then v1 else v0

type decision = {
  cell : int;
  mutable value : bool;
  mutable tried_both : bool;
  mark : int;  (* trail height before this decision's assignment *)
}

type solver = {
  view : Sview.t;
  k : int;
  nsig : int;
  values : Bytes.t;
  mutable trail : int array;
  mutable trail_n : int;
  mutable decisions_stack : decision list;
  mutable objectives : (int * bool) list;  (* (cell, required value) *)
  mutable n_decisions : int;
  mutable n_backtracks : int;
  limits : limits;
  started : float;
  free_init : bool;
  cc0 : int array;  (* SCOAP-style 0-controllability per signal *)
  cc1 : int array;
}

(* SCOAP-style controllability: the estimated effort to drive a signal
   to 0 / to 1, used to steer objective backtracing toward the easiest
   justification. Registers and free inputs cost one unit (registers a
   little more, since their value must come through an earlier frame);
   gates combine their fanins' costs per the usual rules. *)
let controllability view =
  let c = view.Sview.circuit in
  let n = Circuit.num_signals c in
  let inf = max_int / 4 in
  let cap x = min x inf in
  let cc0 = Array.make n 1 and cc1 = Array.make n 1 in
  let sum0 fanins = cap (Array.fold_left (fun a f -> a + cc0.(f)) 0 fanins) in
  let sum1 fanins = cap (Array.fold_left (fun a f -> a + cc1.(f)) 0 fanins) in
  let min0 fanins = Array.fold_left (fun a f -> min a cc0.(f)) inf fanins in
  let min1 fanins = Array.fold_left (fun a f -> min a cc1.(f)) inf fanins in
  Array.iter
    (fun s ->
      if Sview.mem view s then
        if Sview.is_free view s then begin
          cc0.(s) <- 1;
          cc1.(s) <- 1
        end
        else
          match Circuit.node c s with
          | Circuit.Const b ->
            cc0.(s) <- (if b then inf else 0);
            cc1.(s) <- (if b then 0 else inf)
          | Circuit.Reg _ ->
            (* controlled through the previous frame *)
            cc0.(s) <- 3;
            cc1.(s) <- 3
          | Circuit.Input -> ()
          | Circuit.Gate (kind, fanins) -> (
            match kind with
            | Gate.Buf ->
              cc0.(s) <- cap (1 + cc0.(fanins.(0)));
              cc1.(s) <- cap (1 + cc1.(fanins.(0)))
            | Gate.Not ->
              cc0.(s) <- cap (1 + cc1.(fanins.(0)));
              cc1.(s) <- cap (1 + cc0.(fanins.(0)))
            | Gate.And ->
              cc0.(s) <- cap (1 + min0 fanins);
              cc1.(s) <- cap (1 + sum1 fanins)
            | Gate.Nand ->
              cc0.(s) <- cap (1 + sum1 fanins);
              cc1.(s) <- cap (1 + min0 fanins)
            | Gate.Or ->
              cc0.(s) <- cap (1 + sum0 fanins);
              cc1.(s) <- cap (1 + min1 fanins)
            | Gate.Nor ->
              cc0.(s) <- cap (1 + min1 fanins);
              cc1.(s) <- cap (1 + sum0 fanins)
            | Gate.Xor | Gate.Xnor ->
              (* approximate: all-zeros vs flip-one-fanin *)
              let base = sum0 fanins in
              let flip =
                Array.fold_left
                  (fun a f -> min a (base - cc0.(f) + cc1.(f)))
                  inf fanins
              in
              let even = cap (1 + base) and odd = cap (1 + cap flip) in
              if kind = Gate.Xor then begin
                cc0.(s) <- even;
                cc1.(s) <- odd
              end
              else begin
                cc0.(s) <- odd;
                cc1.(s) <- even
              end
            | Gate.Mux ->
              let sel = fanins.(0) and d0 = fanins.(1) and d1 = fanins.(2) in
              cc0.(s) <-
                cap (1 + min (cc0.(sel) + cc0.(d0)) (cc1.(sel) + cc0.(d1)));
              cc1.(s) <-
                cap (1 + min (cc0.(sel) + cc1.(d0)) (cc1.(sel) + cc1.(d1)))))
    c.Circuit.topo;
  (cc0, cc1)

(* Controllability depends only on the view's shape — the circuit and
   which signals are inside / free — not on frames or pins, so it is
   cached across [solve] calls. BMC deepening and repeated
   concretisation queries hit the same whole-design view dozens of
   times per run; growing abstractions correctly miss. The cache is a
   small MRU list so at most [scoap_cache_max] circuits are retained. *)
let scoap_cache_max = 8

let scoap_cache : (Sview.t * (int array * int array)) list ref = ref []

let same_shape (a : Sview.t) (b : Sview.t) =
  a.Sview.circuit == b.Sview.circuit
  && Bitset.equal a.Sview.inside b.Sview.inside
  && Bitset.equal a.Sview.free b.Sview.free

let controllability_cached view =
  match List.partition (fun (v, _) -> same_shape v view) !scoap_cache with
  | (_, cc) :: _, others ->
    Telemetry.incr c_scoap_hits;
    scoap_cache := (view, cc) :: others;
    cc
  | [], others ->
    Telemetry.incr c_scoap_misses;
    let cc = controllability view in
    let others =
      if List.length others >= scoap_cache_max then
        List.filteri (fun i _ -> i < scoap_cache_max - 1) others
      else others
    in
    scoap_cache := (view, cc) :: others;
    cc

let cell_of sol f s = (f * sol.nsig) + s
let frame_of sol cell = cell / sol.nsig
let sig_of sol cell = cell mod sol.nsig
let get sol f s = Bytes.get sol.values (cell_of sol f s)

let is_free_cell sol f s =
  Sview.is_free sol.view s
  ||
  match Circuit.node sol.view.Sview.circuit s with
  | Circuit.Reg { init; _ } when f = 0 && not (Sview.is_free sol.view s) ->
    sol.free_init || init = `Free
  | _ -> false

(* 3-valued evaluation of a derived (non-free) cell from the current
   values of its fanin cells. *)
let eval_cell sol f s =
  let tv s' =
    match get sol f s' with
    | c when c = v0 -> Rfn_sim3v.Sim3v.V0
    | c when c = v1 -> Rfn_sim3v.Sim3v.V1
    | _ -> Rfn_sim3v.Sim3v.VX
  in
  match Circuit.node sol.view.Sview.circuit s with
  | Circuit.Const b -> of_bool b
  | Circuit.Gate (kind, fanins) -> (
    match Rfn_sim3v.Sim3v.eval_gate kind tv fanins with
    | Rfn_sim3v.Sim3v.V0 -> v0
    | Rfn_sim3v.Sim3v.V1 -> v1
    | Rfn_sim3v.Sim3v.VX -> vx)
  | Circuit.Reg { init; next } ->
    if f > 0 then get sol (f - 1) next
    else if sol.free_init then vx
    else ( match init with `Zero -> v0 | `One -> v1 | `Free -> vx)
  | Circuit.Input -> assert false (* inputs are free in well-formed views *)

let push_trail sol cell =
  if sol.trail_n >= Array.length sol.trail then begin
    let bigger = Array.make (2 * Array.length sol.trail) 0 in
    Array.blit sol.trail 0 bigger 0 sol.trail_n;
    sol.trail <- bigger
  end;
  sol.trail.(sol.trail_n) <- cell;
  sol.trail_n <- sol.trail_n + 1

let set_cell sol cell v =
  Bytes.set sol.values cell v;
  push_trail sol cell

(* Event-driven forward propagation: re-evaluate the readers of every
   newly concrete cell. Values move X -> concrete only, so evaluation
   order cannot change the fixpoint. *)
let propagate sol seeds =
  let c = sol.view.Sview.circuit in
  let stack = ref seeds in
  let rec go () =
    match !stack with
    | [] -> ()
    | cell :: rest ->
      stack := rest;
      let f = frame_of sol cell and s = sig_of sol cell in
      Array.iter
        (fun reader ->
          if Sview.mem sol.view reader && not (Sview.is_free sol.view reader)
          then
            match Circuit.node c reader with
            | Circuit.Gate _ ->
              let rc = cell_of sol f reader in
              if Bytes.get sol.values rc = vx then begin
                let v = eval_cell sol f reader in
                if v <> vx then begin
                  set_cell sol rc v;
                  stack := rc :: !stack
                end
              end
            | Circuit.Reg _ when f + 1 < sol.k ->
              let rc = cell_of sol (f + 1) reader in
              if Bytes.get sol.values rc = vx then begin
                set_cell sol rc (Bytes.get sol.values cell);
                stack := rc :: !stack
              end
            | _ -> ())
        c.Circuit.fanouts.(s);
      go ()
  in
  go ()

(* Objective scan: first still-unknown objective, or a conflict. *)
type obj_status = All_sat | Pending of int * bool | Conflict

let check_objectives sol =
  let rec scan pending = function
    | [] -> (
      match pending with Some (c, v) -> Pending (c, v) | None -> All_sat)
    | (cell, v) :: rest ->
      let cur = Bytes.get sol.values cell in
      if cur = vx then
        scan (if pending = None then Some (cell, v) else pending) rest
      else if cur = of_bool v then scan pending rest
      else Conflict
  in
  scan None sol.objectives

(* Objective backtracing: follow an X-path from an unjustified
   requirement down to an unassigned free variable, choosing fanins by
   smallest combinational depth. *)
let rec backtrace sol f s v =
  if is_free_cell sol f s then (f, s, v)
  else
    let c = sol.view.Sview.circuit in
    match Circuit.node c s with
    | Circuit.Reg { next; _ } ->
      (* f = 0 with a concrete init would be a concrete cell, caught by
         the objective scan before backtracing. *)
      assert (f > 0);
      backtrace sol (f - 1) next v
    | Circuit.Const _ -> assert false
    | Circuit.Input -> assert false
    | Circuit.Gate (kind, fanins) -> (
      let value i = get sol f fanins.(i) in
      let pick_x desired =
        (* X-valued fanin that is cheapest to drive to the desired
           value, by the SCOAP controllability estimate. *)
        let cost fi = if desired then sol.cc1.(fi) else sol.cc0.(fi) in
        let best = ref (-1) in
        Array.iteri
          (fun i fi ->
            if value i = vx then
              match !best with
              | -1 -> best := i
              | b -> if cost fi < cost fanins.(b) then best := i)
          fanins;
        assert (!best >= 0);
        ignore c;
        backtrace sol f fanins.(!best) desired
      in
      match kind with
      | Gate.Not -> backtrace sol f fanins.(0) (not v)
      | Gate.Buf -> backtrace sol f fanins.(0) v
      | Gate.And -> pick_x v
      | Gate.Nand -> pick_x (not v)
      | Gate.Or -> pick_x v
      | Gate.Nor -> pick_x (not v)
      | Gate.Xor | Gate.Xnor ->
        (* Aim the first X fanin assuming the remaining X fanins end up
           0; later backtraces correct course as values concretize. *)
        let target = if kind = Gate.Xor then v else not v in
        let parity = ref false in
        Array.iteri
          (fun i _ -> if value i = v1 then parity := not !parity)
          fanins;
        pick_x (target <> !parity)
      | Gate.Mux ->
        let sel = value 0 and d0 = value 1 and d1 = value 2 in
        if sel = v0 then backtrace sol f fanins.(1) v
        else if sel = v1 then backtrace sol f fanins.(2) v
        else if d0 = of_bool v then backtrace sol f fanins.(0) false
        else if d1 = of_bool v then backtrace sol f fanins.(0) true
        else if d0 = vx then backtrace sol f fanins.(0) false
        else backtrace sol f fanins.(0) true)

let undo_to sol mark =
  while sol.trail_n > mark do
    sol.trail_n <- sol.trail_n - 1;
    Bytes.set sol.values sol.trail.(sol.trail_n) vx
  done

let extract_trace sol =
  let states =
    Array.init sol.k (fun f ->
        Cube.of_list
          (Array.to_list sol.view.Sview.regs
          |> List.filter_map (fun r ->
                 match get sol f r with
                 | c when c = v0 -> Some (r, false)
                 | c when c = v1 -> Some (r, true)
                 | _ -> None)))
  in
  let inputs =
    Array.init sol.k (fun f ->
        Cube.of_list
          (Array.to_list sol.view.Sview.free_inputs
          |> List.filter_map (fun s ->
                 match get sol f s with
                 | c when c = v0 -> Some (s, false)
                 | c when c = v1 -> Some (s, true)
                 | _ -> None)))
  in
  Trace.make ~states ~inputs

(* Random-pattern phase: before the branch-and-backtrace search, throw
   [Packed.lanes] random concrete patterns per round at the unrolled
   frames with one word-wide simulation pass. Pinned free cells are
   splatted to their pinned value, every other free cell gets an
   independent random bit per lane; a lane satisfying every objective
   yields a Sat trace with zero decisions. The phase can only conclude
   Sat — Unsat/Abort always come from the complete search. *)
let random_rounds = 4

let extract_packed_trace sol vecs ~lane =
  let concrete arr f =
    Cube.of_list
      (Array.to_list arr
      |> List.filter_map (fun s ->
             match Packed.read_lane vecs.(f) s ~lane with
             | Rfn_sim3v.Sim3v.V0 -> Some (s, false)
             | Rfn_sim3v.Sim3v.V1 -> Some (s, true)
             | Rfn_sim3v.Sim3v.VX -> None))
  in
  let states = Array.init sol.k (concrete sol.view.Sview.regs) in
  let inputs = Array.init sol.k (concrete sol.view.Sview.free_inputs) in
  Trace.make ~states ~inputs

let random_patterns sol =
  let view = sol.view in
  let c = view.Sview.circuit in
  (* Deterministic xorshift so solves stay reproducible. *)
  let seed = ref 0x2545f4914f6cdd1d in
  let rand_word () =
    let x = !seed in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    seed := x;
    x
  in
  let splat_cell f s =
    match Bytes.get sol.values (cell_of sol f s) with
    | cv when cv = v0 -> Some (Packed.splat Rfn_sim3v.Sim3v.V0)
    | cv when cv = v1 -> Some (Packed.splat Rfn_sim3v.Sim3v.V1)
    | _ -> None
  in
  let run_round () =
    let init r =
      match splat_cell 0 r with
      | Some w -> w
      | None ->
        if is_free_cell sol 0 r then { Packed.ones = rand_word (); unks = 0 }
        else
          Packed.splat
            (match Circuit.node c r with
            | Circuit.Reg { init = `Zero; _ } -> Rfn_sim3v.Sim3v.V0
            | Circuit.Reg { init = `One; _ } -> Rfn_sim3v.Sim3v.V1
            | _ -> Rfn_sim3v.Sim3v.VX)
    in
    let state = ref init in
    let vecs =
      Array.init sol.k (fun f ->
          let free s =
            match splat_cell f s with
            | Some w -> w
            | None -> { Packed.ones = rand_word (); unks = 0 }
          in
          let vec, next = Packed.step view ~free ~state:!state in
          state := next;
          vec)
    in
    let mask = ref (-1) in
    List.iter
      (fun (cell, v) ->
        if !mask <> 0 then begin
          let f = frame_of sol cell and s = sig_of sol cell in
          let ones = vecs.(f).Packed.vones.(s)
          and unks = vecs.(f).Packed.vunks.(s) in
          let sat = if v then ones else lnot (ones lor unks) in
          mask := !mask land sat
        end)
      sol.objectives;
    if !mask = 0 then None
    else begin
      let rec lsb i m = if m land 1 = 1 then i else lsb (i + 1) (m lsr 1) in
      Some (extract_packed_trace sol vecs ~lane:(lsb 0 !mask))
    end
  in
  let rec go round =
    if round >= random_rounds then None
    else begin
      Telemetry.incr c_random_rounds;
      match run_round () with
      | Some trace ->
        Telemetry.incr c_random_sat;
        Some trace
      | None -> go (round + 1)
    end
  in
  go 0

exception Stop of answer

let time_exceeded sol =
  match sol.limits.max_seconds with
  | None -> false
  | Some budget -> Telemetry.now () -. sol.started > budget

(* Chronological backtracking: flip the deepest unflipped decision,
   discarding fully-explored ones. *)
let backtrack sol =
  let rec pop () =
    match sol.decisions_stack with
    | [] -> raise (Stop Unsat)
    | d :: rest ->
      undo_to sol d.mark;
      if d.tried_both then begin
        sol.decisions_stack <- rest;
        pop ()
      end
      else begin
        d.tried_both <- true;
        d.value <- not d.value;
        sol.n_backtracks <- sol.n_backtracks + 1;
        if sol.n_backtracks > sol.limits.max_backtracks then
          raise (Stop (Abort Rfn_failure.Backtracks));
        if time_exceeded sol then raise (Stop (Abort Rfn_failure.Time));
        set_cell sol d.cell (of_bool d.value);
        propagate sol [ d.cell ]
      end
  in
  pop ()

let search sol =
  try
    let rec loop () =
      match check_objectives sol with
      | Conflict ->
        backtrack sol;
        loop ()
      | All_sat -> Sat (extract_trace sol)
      | Pending (cell, v) ->
        let f = frame_of sol cell and s = sig_of sol cell in
        let fd, sd, vd = backtrace sol f s v in
        let dcell = cell_of sol fd sd in
        assert (Bytes.get sol.values dcell = vx);
        let d =
          { cell = dcell; value = vd; tried_both = false; mark = sol.trail_n }
        in
        sol.decisions_stack <- d :: sol.decisions_stack;
        sol.n_decisions <- sol.n_decisions + 1;
        if time_exceeded sol then raise (Stop (Abort Rfn_failure.Time));
        set_cell sol dcell (of_bool vd);
        propagate sol [ dcell ];
        loop ()
    in
    loop ()
  with Stop a -> a

let solve ?(free_init = false) ?(random_phase = true)
    ?(limits = default_limits) view ~frames ~pins () =
  if frames < 1 then invalid_arg "Atpg.solve: frames < 1";
  let c = view.Sview.circuit in
  let nsig = Circuit.num_signals c in
  let cc0, cc1 = controllability_cached view in
  let sol =
    {
      view;
      k = frames;
      nsig;
      values = Bytes.make (frames * nsig) vx;
      trail = Array.make 1024 0;
      trail_n = 0;
      decisions_stack = [];
      objectives = [];
      n_decisions = 0;
      n_backtracks = 0;
      limits;
      started = Telemetry.now ();
      free_init;
      cc0;
      cc1;
    }
  in
  (* Base pass: concrete constants and initial values propagate through
     each frame in topological order (frame-ascending handles the
     cross-frame register reads). *)
  for f = 0 to frames - 1 do
    Array.iter
      (fun s ->
        if Sview.mem view s && not (Sview.is_free view s) then
          Bytes.set sol.values (cell_of sol f s) (eval_cell sol f s))
      c.Circuit.topo
  done;
  (* Pins: free cells become root assignments, derived cells become
     objectives. *)
  let contradiction = ref false in
  let seeds = ref [] in
  List.iter
    (fun (f, s, v) ->
      if f < 0 || f >= frames then invalid_arg "Atpg.solve: frame out of range";
      if not (Sview.mem view s) then
        invalid_arg "Atpg.solve: pinned signal outside the view";
      let cell = cell_of sol f s in
      if is_free_cell sol f s then begin
        match Bytes.get sol.values cell with
        | cv when cv = vx ->
          set_cell sol cell (of_bool v);
          seeds := cell :: !seeds
        | cv -> if cv <> of_bool v then contradiction := true
      end
      else sol.objectives <- (cell, v) :: sol.objectives)
    pins;
  (* Justify objectives frame-ascending: earlier cycles first. *)
  sol.objectives <-
    List.sort (fun (c1, _) (c2, _) -> compare c1 c2) sol.objectives;
  let answer =
    if !contradiction then Unsat
    else begin
      propagate sol !seeds;
      (* Try cheap word-parallel random patterns before committing to
         the backtracking search; only still-open objectives warrant
         it, and only Sat can come out of it. *)
      match check_objectives sol with
      | Pending _ when random_phase -> (
        match random_patterns sol with
        | Some trace -> Sat trace
        | None -> search sol)
      | Pending _ | All_sat | Conflict -> search sol
    end
  in
  Telemetry.incr c_solves;
  Telemetry.add c_decisions sol.n_decisions;
  Telemetry.add c_backtracks sol.n_backtracks;
  (match answer with Abort _ -> Telemetry.incr c_aborts | _ -> ());
  (answer, { decisions = sol.n_decisions; backtracks = sol.n_backtracks })
