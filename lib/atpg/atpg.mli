(** Structural ATPG engine (combinational and sequential).

    A PODEM-style test generator operating directly on subcircuit
    views: decisions are made only on free variables (primary inputs,
    pseudo-inputs, free-initial registers), values are propagated by
    event-driven 3-valued simulation, and unjustified requirements are
    driven to decisions by objective backtracing. Chronological
    backtracking over the decision stack makes the procedure complete;
    a backtrack budget and an optional wall-clock budget
    ({!Rfn_obs.Telemetry.now}) implement the paper's resource limits.

    Sequential problems are solved by time-frame expansion: [frames]
    copies of the combinational logic with register outputs at frame
    [t > 0] reading the register's next-state input at frame [t - 1],
    and frame-0 registers fixed to their initial values (or left free
    with [~free_init:true], as the hybrid engine's cube-extension
    queries require). A run with [frames = 1] and [~free_init:true] is
    exactly a combinational ATPG run in the paper's sense.

    Requirements are given as pinned values [(frame, signal, value)]:
    a pin on a free variable is applied as a root assignment, a pin on
    any other signal becomes an objective the search must justify.
    This uniformly encodes the paper's uses: an error-trace constraint
    cube pins register and input values cycle by cycle, the target pins
    the bad signal to 1 at the last frame, and a min-cut cube pins
    internal signals of the abstract model. *)

type answer =
  | Sat of Rfn_circuit.Trace.t
      (** A satisfying trace: state cubes read back from the implied
          register values, input cubes from the decided free variables
          (both partial — unassigned means don't-care). The trace has
          [frames] states and [frames] input cubes (the last one is the
          final-cycle witness). *)
  | Unsat  (** The requirements are unsatisfiable — a proof. *)
  | Abort of Rfn_failure.resource
      (** A resource limit was hit first: [Backtracks] (the budget can
          be escalated and the search retried) or [Time] (terminal for
          this run's wall-clock budget). *)

type stats = { decisions : int; backtracks : int }

type limits = { max_backtracks : int; max_seconds : float option }

val default_limits : limits
(** 20,000 backtracks, no time budget. *)

val solve :
  ?free_init:bool ->
  ?random_phase:bool ->
  ?limits:limits ->
  Rfn_circuit.Sview.t ->
  frames:int ->
  pins:(int * int * bool) list ->
  unit ->
  answer * stats
(** [solve view ~frames ~pins ()] searches for an assignment to the
    free variables of the [frames]-fold unrolling of [view] satisfying
    every pin. Raises [Invalid_argument] on an out-of-range frame, a
    pin on a signal outside the view, or [frames < 1].

    [random_phase] (default [true]) first throws
    [Sim3v.Packed.lanes]-wide random concrete patterns at the unrolled
    frames; a lane satisfying every pin answers [Sat] with zero
    decisions. Traces found this way assign {e every} free variable, so
    callers that depend on near-minimal satisfying assignments — the
    hybrid engine's cube-extension queries, whose partial cubes steer
    guided concretization — must pass [~random_phase:false]. Verdicts
    are unaffected either way: the phase can only conclude [Sat], and
    only when a genuine witness exists. *)
