module Json = Rfn_obs.Json
module Cube = Rfn_circuit.Cube
module Trace = Rfn_circuit.Trace

let cube_to_json c =
  Json.List
    (List.map
       (fun (signal, value) -> Json.List [ Json.Int signal; Json.Bool value ])
       (Cube.to_list c))

let cube_of_json = function
  | Json.List pairs -> (
    let decode = function
      | Json.List [ Json.Int signal; Json.Bool value ] -> Some (signal, value)
      | _ -> None
    in
    let decoded = List.filter_map decode pairs in
    if List.length decoded <> List.length pairs then None
    else
      match Cube.of_list decoded with
      | cube -> Some cube
      | exception Invalid_argument _ -> None)
  | _ -> None

let cubes_to_json cubes =
  Json.List (Array.to_list (Array.map cube_to_json cubes))

let cubes_of_json = function
  | Json.List xs ->
    let decoded = List.filter_map cube_of_json xs in
    if List.length decoded <> List.length xs then None
    else Some (Array.of_list decoded)
  | _ -> None

let trace_to_json t =
  Json.Obj
    [
      ("states", cubes_to_json t.Trace.states);
      ("inputs", cubes_to_json t.Trace.inputs);
    ]

let trace_of_json j =
  match
    ( Option.bind (Json.member "states" j) cubes_of_json,
      Option.bind (Json.member "inputs" j) cubes_of_json )
  with
  | Some states, Some inputs -> (
    match Trace.make ~states ~inputs with
    | trace -> Some trace
    | exception Invalid_argument _ -> None)
  | _ -> None
