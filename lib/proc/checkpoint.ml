module Json = Rfn_obs.Json
module Provenance = Rfn_obs.Provenance

type t = {
  version : int;
  netlist_hash : string;
  property : string;
  job_id : string;
      (* server job identifier; "" for stand-alone runs. Part of the
         checkpoint key: two queued jobs on the same (design, property)
         must not adopt each other's loop state. *)
  iteration : int;
  seconds_used : float;
  escalation : int;
  regs : string list;
  provenance : Provenance.t list;
}

let current_version = 1

let hash_circuit circuit =
  Digest.to_hex (Digest.string (Rfn_circuit.Bench_io.to_string circuit))

let make ?(job_id = "") ~netlist_hash ~property ~iteration ~seconds_used
    ~escalation ~regs ~provenance () =
  {
    version = current_version;
    netlist_hash;
    property;
    job_id;
    iteration;
    seconds_used;
    escalation;
    regs;
    provenance;
  }

let to_json t =
  Json.Obj
    [
      ("version", Json.Int t.version);
      ("netlist_hash", Json.Str t.netlist_hash);
      ("property", Json.Str t.property);
      ("job_id", Json.Str t.job_id);
      ("iteration", Json.Int t.iteration);
      ("seconds_used", Json.Float t.seconds_used);
      ("escalation", Json.Int t.escalation);
      ("regs", Json.List (List.map (fun r -> Json.Str r) t.regs));
      ("provenance", Json.List (List.map Provenance.to_json t.provenance));
    ]

let save file t =
  (* temp in the same directory so the rename is same-filesystem and
     therefore atomic: a crash mid-save leaves the old file intact *)
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  let ok =
    match
      Json.to_channel oc (to_json t);
      output_char oc '\n';
      close_out oc
    with
    | () -> true
    | exception Sys_error _ ->
      close_out_noerr oc;
      false
  in
  if ok then Sys.rename tmp file
  else begin
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Sys_error (Printf.sprintf "checkpoint: cannot write %s" file))
  end

let of_json j =
  let ( let* ) = Result.bind in
  let missing name = Error (Printf.sprintf "missing or ill-typed %S" name) in
  let int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some n -> Ok n
    | None -> missing name
  in
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> missing name
  in
  let flt name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some f -> Ok f
    | None -> missing name
  in
  let* version = int "version" in
  if version <> current_version then
    Error
      (Printf.sprintf "unsupported checkpoint version %d (expected %d)"
         version current_version)
  else
    let* netlist_hash = str "netlist_hash" in
    let* property = str "property" in
    (* absent in pre-serve checkpoints of the same version: those were
       all stand-alone runs, whose job id is "" by definition *)
    let job_id =
      match Option.bind (Json.member "job_id" j) Json.to_str with
      | Some s -> s
      | None -> ""
    in
    let* iteration = int "iteration" in
    let* seconds_used = flt "seconds_used" in
    let* escalation = int "escalation" in
    let* regs =
      match Json.member "regs" j with
      | Some (Json.List xs) ->
        let names = List.filter_map Json.to_str xs in
        if List.length names = List.length xs then Ok names
        else missing "regs"
      | Some _ | None -> missing "regs"
    in
    let* provenance =
      match Json.member "provenance" j with
      | Some (Json.List xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* p = Provenance.of_json x in
            Ok (p :: acc))
          (Ok []) xs
        |> Result.map List.rev
      | Some _ | None -> missing "provenance"
    in
    Ok
      {
        version;
        netlist_hash;
        property;
        job_id;
        iteration;
        seconds_used;
        escalation;
        regs;
        provenance;
      }

let load file =
  match open_in file with
  | exception Sys_error msg -> Error msg
  | ic -> (
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in_noerr ic;
    match Json.of_string contents with
    | exception Failure msg -> Error ("malformed checkpoint JSON: " ^ msg)
    | j -> of_json j)

let validate ?(job_id = "") t ~netlist_hash ~property =
  if t.netlist_hash <> netlist_hash then
    Error
      (Printf.sprintf
         "checkpoint was written for a different netlist (hash %s, design \
          hashes %s)"
         t.netlist_hash netlist_hash)
  else if t.property <> property then
    Error
      (Printf.sprintf "checkpoint was written for property %S, not %S"
         t.property property)
  else if t.job_id <> job_id then
    Error
      (Printf.sprintf "checkpoint belongs to job %S, not %S" t.job_id job_id)
  else Ok ()
