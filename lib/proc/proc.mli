(** Process-isolated engine workers: a fork-based pool that runs
    engine queries in child processes and races them under a hard
    watchdog.

    A hung BDD fixpoint, a SAT solver chewing through swap, or a
    segfault in an engine must never take the CEGAR driver down with
    it, and a wall-clock deadline must mean what it says even when the
    engine never polls its budget. The only way to guarantee both is
    process isolation: each query runs in a forked child, the parent
    supervises it over a pipe, and a watchdog enforces deadlines and a
    resident-set cap with an escalating [SIGTERM] -> [SIGKILL] ladder.

    {b Protocol.} The child speaks JSON Lines on its half of a pipe
    (see DESIGN.md §5.14): a [hello] line after the fork, periodic
    [hb] heartbeats carrying resident-set size (driven by
    [ITIMER_REAL]), then exactly one [result] or [error] line before
    [_exit]. The heartbeat timer is quiesced before the result is
    written, so the two writes cannot interleave. The parent treats
    any protocol violation — an unparseable line, an unknown event, a
    payload the caller rejects — as {!Rfn_failure.Worker_garbage}:
    output from a misbehaving worker is never trusted.

    {b Layering.} This library is payload-generic: entrants return
    {!Rfn_obs.Json.t} and the caller's [classify] decides what counts
    as a conclusive answer. Engine-specific encodings live above (the
    driver's racing wrappers), keeping [rfn.proc] free of any
    dependency on the engines it isolates.

    {b Fork safety.} The child immediately calls
    {!Rfn_obs.Telemetry.abandon_sinks} — it shares the parent's file
    descriptors and buffered bytes, so flushing or closing a sink from
    the child would corrupt the parent's telemetry files — and leaves
    via [Unix._exit], never [exit]. Counters bumped inside a child die
    with it; every metric below is counted by the parent. *)

(* ---- policy ----------------------------------------------------------- *)

type policy = {
  enabled : bool;
      (** run queries in isolated racing workers; when [false] callers
          keep everything in-process *)
  heartbeat_interval : float;  (** seconds between child heartbeats *)
  heartbeat_grace : float;
      (** extra heartbeat silence tolerated before the watchdog
          declares the worker hung and kills it *)
  max_rss_mb : int;
      (** resident-set cap per worker, in MiB; heartbeats carry the
          child's RSS and the watchdog kills on breach *)
  kill_grace : float;
      (** seconds between the watchdog's [SIGTERM] and the follow-up
          [SIGKILL] *)
  deadline_slack : float;
      (** scheduling slack added to a query deadline before the
          watchdog fires, so the child's own budget check gets first
          chance to give up cleanly *)
}

val default_policy : policy
(** Disabled, 50 ms heartbeats, 2 s heartbeat grace, 2 GiB RSS cap,
    0.5 s kill grace, 0.25 s deadline slack. *)

val policy_of_env : unit -> policy
(** {!default_policy} overridden from the environment: [RFN_RACE]
    ([1]/[true]/[yes] enables), [RFN_PROC_HB], [RFN_PROC_HB_GRACE],
    [RFN_PROC_RSS_MB], [RFN_PROC_KILL_GRACE], [RFN_PROC_SLACK].
    Malformed values fall back to the default silently. *)

val available : unit -> bool
(** Whether worker processes can actually be forked here: a Unix
    platform and [RFN_NO_FORK] unset. When [false], {!race} degrades
    to running its entrants sequentially in-process — same answers,
    no isolation. *)

val rss_mb_of_file : string -> int
(** Resident-set size in MiB parsed from a [/proc/<pid>/statm]-format
    file. Returns 0 — "RSS unknown" — whenever the file is missing,
    truncated, unreadable mid-line, or malformed, bumping the
    [proc.rss_unknown] counter; the watchdog compares [rss >
    max_rss_mb], so 0 disables the memory cap rather than killing the
    heartbeat that samples it. Exposed (with the path as a parameter)
    so the degraded paths are testable without a broken procfs. *)

(* ---- fault injection --------------------------------------------------- *)

type worker_fault =
  | Kill  (** the worker SIGKILLs itself right after [hello] *)
  | Hang  (** the worker wedges silently: no heartbeats, no result *)
  | Garbage  (** the worker emits a non-protocol line and exits *)

val worker_fault_of_string : string -> worker_fault option
(** ["worker-kill"] / ["worker-hang"] / ["worker-garbage"], as spelled
    in [RFN_INJECT_FAULTS]. *)

val with_injected : worker_fault -> (unit -> 'a) -> 'a
(** [with_injected fault f] arms a one-shot injection slot and runs
    [f]: the next worker spawned (or, without fork, the next
    sequential entrant) inside [f] suffers [fault] instead of running
    its query. The slot is cleared when consumed and on exit from [f]
    (exceptions included). Used by the supervisor's [worker-*]
    injection modes; not thread-safe, like the rest of the driver. *)

(* ---- racing ------------------------------------------------------------ *)

type entrant = {
  name : string;  (** engine label, e.g. ["atpg"]; used in telemetry *)
  run : unit -> Rfn_obs.Json.t;
      (** the query, executed in the child; must encode {e every}
          outcome (including giving up) as a payload — an exception is
          reported as a worker failure, not an answer *)
}

type verdict =
  | Win  (** conclusive: first such payload settles the race *)
  | Hold
      (** valid but inconclusive (an engine gave up); kept as the
          answer of last resort if nobody wins *)
  | Reject of string
      (** not a credible payload (failed decode or re-validation);
          counted as {!Rfn_failure.Worker_garbage} *)

type failure = {
  entrant : string;
  resource : Rfn_failure.resource;  (** always one of the [Worker_*] *)
  detail : string;  (** diagnostic only, e.g. ["signaled -7"] *)
}

type outcome =
  | Winner of string * Rfn_obs.Json.t
      (** [classify] said {!Win}; the losers were cancelled *)
  | Held of string * Rfn_obs.Json.t
      (** every entrant finished, none conclusively; one {!Hold}
          payload (the first received) *)
  | All_failed of failure list
      (** no entrant produced a credible payload; the caller's ladder
          should fall back to its in-process rungs *)

val race :
  ?deadline:float ->
  policy:policy ->
  classify:(Rfn_obs.Json.t -> verdict) ->
  entrant list ->
  outcome
(** Run the entrants concurrently in isolated workers and return the
    first conclusive answer. [deadline] is a per-query wall-clock
    budget in seconds; the watchdog kills workers that outlive it by
    more than [policy.deadline_slack]. One entrant is a degenerate but
    valid race (isolation without competition). When {!available} is
    [false] the entrants run sequentially in-process instead, with
    identical classification semantics (and injected faults simulated
    structurally). @raise Invalid_argument on an empty entrant list.

    Telemetry (parent-side): counters [proc.workers_spawned],
    [proc.worker_failures], [race.runs], [race.wins],
    [race.wins.<entrant>]; a [proc.worker_failure] event per failure;
    and, when a trace sink is attached, one Chrome-trace lane per
    worker (named [worker:<entrant>]) with a slice per query. *)
