module Json = Rfn_obs.Json
module Telemetry = Rfn_obs.Telemetry
module F = Rfn_failure

(* ---- policy ----------------------------------------------------------- *)

type policy = {
  enabled : bool;
  heartbeat_interval : float;
  heartbeat_grace : float;
  max_rss_mb : int;
  kill_grace : float;
  deadline_slack : float;
}

let default_policy =
  {
    enabled = false;
    heartbeat_interval = 0.05;
    heartbeat_grace = 2.0;
    max_rss_mb = 2048;
    kill_grace = 0.5;
    deadline_slack = 0.25;
  }

let env_float name fallback =
  match Sys.getenv_opt name with
  | None -> fallback
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> fallback)

let env_int name fallback =
  match Sys.getenv_opt name with
  | None -> fallback
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> fallback)

let policy_of_env () =
  {
    enabled =
      (match Sys.getenv_opt "RFN_RACE" with
      | Some ("1" | "true" | "yes") -> true
      | Some _ | None -> false);
    heartbeat_interval =
      env_float "RFN_PROC_HB" default_policy.heartbeat_interval;
    heartbeat_grace =
      env_float "RFN_PROC_HB_GRACE" default_policy.heartbeat_grace;
    max_rss_mb = env_int "RFN_PROC_RSS_MB" default_policy.max_rss_mb;
    kill_grace = env_float "RFN_PROC_KILL_GRACE" default_policy.kill_grace;
    deadline_slack = env_float "RFN_PROC_SLACK" default_policy.deadline_slack;
  }

let available () = Sys.unix && Sys.getenv_opt "RFN_NO_FORK" = None

(* ---- fault injection --------------------------------------------------- *)

type worker_fault = Kill | Hang | Garbage

let worker_fault_of_string = function
  | "worker-kill" -> Some Kill
  | "worker-hang" -> Some Hang
  | "worker-garbage" -> Some Garbage
  | _ -> None

let injected : worker_fault option ref = ref None

let take_injected () =
  let f = !injected in
  injected := None;
  f

let with_injected fault f =
  injected := Some fault;
  Fun.protect ~finally:(fun () -> injected := None) f

(* ---- telemetry --------------------------------------------------------- *)

let c_spawned = Telemetry.counter "proc.workers_spawned"
let c_failures = Telemetry.counter "proc.worker_failures"
let c_races = Telemetry.counter "race.runs"
let c_wins = Telemetry.counter "race.wins"

(* Chrome-trace lanes: one per worker, allocated for the whole process
   lifetime so slices of distinct workers never share a lane. Lane 1
   is the main thread. *)
let next_tid =
  let tid = ref 1 in
  fun () ->
    incr tid;
    !tid

(* ---- child side -------------------------------------------------------- *)

(* Resident set in MiB from /proc/self/statm (second field, pages).
   OCaml's Unix has no sysconf; every platform this runs on uses 4 KiB
   pages. Returns 0 whenever /proc is missing, truncated, or
   unreadable — "RSS unknown", counted in [proc.rss_unknown]. The
   watchdog compares [rss > max_rss_mb], so 0 disables the cap: an
   unreadable procfs only loses the OOM guard, never crashes the
   heartbeat that reads it. *)
let c_rss_unknown = Telemetry.counter "proc.rss_unknown"

let rss_mb_of_file path =
  let unknown () =
    Telemetry.incr c_rss_unknown;
    0
  in
  match open_in path with
  | exception Sys_error _ -> unknown ()
  | ic ->
    let rss =
      (* [input_line] itself can raise Sys_error on a procfs read
         error, not just End_of_file — guard both. *)
      match String.split_on_char ' ' (input_line ic) with
      | _ :: resident :: _ ->
        (match int_of_string_opt resident with
        | Some pages -> pages * 4096 / (1024 * 1024)
        | None -> unknown ())
      | _ | (exception End_of_file) | (exception Sys_error _) -> unknown ()
    in
    close_in_noerr ic;
    rss

let rss_mb_self () = rss_mb_of_file "/proc/self/statm"

(* One full line per call. The child owns its pipe end exclusively, so
   partial writes cannot interleave with another process; the only
   concurrent writer is this child's own SIGALRM heartbeat, which is
   quiesced before the result line is written. *)
let write_line fd json =
  let s = Json.to_string json ^ "\n" in
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let quiesce_heartbeat () =
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_interval = 0.0; it_value = 0.0 });
  Sys.set_signal Sys.sigalrm Sys.Signal_ignore

let child_main ~policy ~fd ~inj entrant =
  let hello =
    Json.Obj [ ("ev", Json.Str "hello"); ("pid", Json.Int (Unix.getpid ())) ]
  in
  (match (inj : worker_fault option) with
  | Some Kill ->
    write_line fd hello;
    Unix.kill (Unix.getpid ()) Sys.sigkill
  | Some Hang ->
    write_line fd hello;
    (* a wedged engine: alive but silent — no heartbeats, no result *)
    while true do
      Unix.sleep 3600
    done
  | Some Garbage ->
    write_line fd hello;
    write_line fd (Json.Str "ignored");
    (* bypass the JSON layer: a torn, unparseable line *)
    let garbage = Bytes.of_string "{\"ev\":\"result\",\"payl\xff\n" in
    ignore (Unix.write fd garbage 0 (Bytes.length garbage));
    Unix._exit 0
  | None -> ());
  write_line fd hello;
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         write_line fd
           (Json.Obj
              [ ("ev", Json.Str "hb"); ("rss_mb", Json.Int (rss_mb_self ())) ])));
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       {
         Unix.it_interval = policy.heartbeat_interval;
         it_value = policy.heartbeat_interval;
       });
  let result =
    try Ok (entrant ())
    with e -> Error (Printexc.to_string e)
  in
  quiesce_heartbeat ();
  (match result with
  | Ok payload ->
    write_line fd
      (Json.Obj [ ("ev", Json.Str "result"); ("payload", payload) ]);
    Unix._exit 0
  | Error detail ->
    write_line fd
      (Json.Obj
         [
           ("ev", Json.Str "error");
           ("resource", Json.Str (F.resource_tag F.Worker_crashed));
           ("detail", Json.Str detail);
         ]);
    Unix._exit 1)

(* ---- parent side ------------------------------------------------------- *)

type entrant = { name : string; run : unit -> Json.t }
type verdict = Win | Hold | Reject of string
type failure = { entrant : string; resource : F.resource; detail : string }

type outcome =
  | Winner of string * Json.t
  | Held of string * Json.t
  | All_failed of failure list

type worker = {
  w_name : string;
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  started : float;
  tid : int;
  mutable last_hb : float;
  mutable rss_mb : int;
  mutable term_sent : (float * F.resource * string) option;
      (** the watchdog's SIGTERM, awaiting escalation to SIGKILL *)
  mutable payload : (verdict * Json.t) option;
  mutable failed : failure option;
  mutable eof : bool;
  mutable reaped : bool;
}

let record_failure failures w resource detail =
  let f = { entrant = w.w_name; resource; detail } in
  w.failed <- Some f;
  failures := f :: !failures;
  Telemetry.incr c_failures;
  Telemetry.event "proc.worker_failure"
    [
      ("entrant", Json.Str w.w_name);
      ("resource", Json.Str (F.resource_tag resource));
      ("detail", Json.Str detail);
    ]

let signal_worker w signal =
  try Unix.kill w.pid signal with Unix.Unix_error (Unix.ESRCH, _, _) -> ()

let reap w =
  if not w.reaped then begin
    w.reaped <- true;
    match Unix.waitpid [] w.pid with
    | _, status -> Some status
    | exception Unix.Unix_error (_, _, _) -> None
  end
  else None

let status_detail = function
  | None -> "unknown exit"
  | Some (Unix.WEXITED n) -> Printf.sprintf "exited %d" n
  | Some (Unix.WSIGNALED s) -> Printf.sprintf "signaled %d" s
  | Some (Unix.WSTOPPED s) -> Printf.sprintf "stopped %d" s

let finish_lane w ~outcome =
  let dur = Telemetry.now () -. w.started in
  Telemetry.trace_complete ~tid:w.tid ~name:("worker:" ^ w.w_name)
    ~args:[ ("outcome", Json.Str outcome) ]
    ~start:w.started ~dur ()

let spawn ~policy entrant =
  let inj = take_injected () in
  let r, w = Unix.pipe () in
  (* the child inherits stdio buffers: flush so it cannot re-emit
     bytes the parent already queued *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try
       Telemetry.abandon_sinks ();
       Unix.close r;
       child_main ~policy ~fd:w ~inj entrant.run
     with _ -> ());
    Unix._exit 125
  | pid ->
    Unix.close w;
    Telemetry.incr c_spawned;
    let tid = next_tid () in
    Telemetry.trace_thread_name ~tid ("worker:" ^ entrant.name);
    let now = Telemetry.now () in
    {
      w_name = entrant.name;
      pid;
      fd = r;
      buf = Buffer.create 256;
      started = now;
      tid;
      last_hb = now;
      rss_mb = 0;
      term_sent = None;
      payload = None;
      failed = None;
      eof = false;
      reaped = false;
    }

(* A worker still being supervised: its pipe is open and it has not
   yet been disqualified. *)
let live w = (not w.eof) && w.failed = None

let handle_line ~classify ~failures w line =
  match Json.of_string line with
  | exception Failure _ ->
    record_failure failures w F.Worker_garbage "unparseable protocol line";
    signal_worker w Sys.sigkill
  | j -> (
    match Option.bind (Json.member "ev" j) Json.to_str with
    | Some "hello" -> w.last_hb <- Telemetry.now ()
    | Some "hb" ->
      w.last_hb <- Telemetry.now ();
      (match Option.bind (Json.member "rss_mb" j) Json.to_int with
      | Some rss -> w.rss_mb <- rss
      | None -> ())
    | Some "result" -> (
      match Json.member "payload" j with
      | None ->
        record_failure failures w F.Worker_garbage "result without payload";
        signal_worker w Sys.sigkill
      | Some payload -> (
        match classify payload with
        | Reject why ->
          record_failure failures w F.Worker_garbage
            ("rejected payload: " ^ why);
          signal_worker w Sys.sigkill
        | (Win | Hold) as v -> w.payload <- Some (v, payload)))
    | Some "error" ->
      let resource =
        match
          Option.bind (Json.member "resource" j) (fun v ->
              Option.bind (Json.to_str v) F.resource_of_tag)
        with
        | Some r -> r
        | None -> F.Worker_crashed
      in
      let detail =
        match Option.bind (Json.member "detail" j) Json.to_str with
        | Some d -> d
        | None -> ""
      in
      record_failure failures w resource detail
    | Some _ | None ->
      record_failure failures w F.Worker_garbage "unknown protocol event";
      signal_worker w Sys.sigkill)

(* Drain readable bytes into the worker's line buffer and process every
   complete line. Returns on EOF after reaping and classifying. *)
let handle_readable ~classify ~failures w =
  let chunk = Bytes.create 4096 in
  match Unix.read w.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | 0 ->
    w.eof <- true;
    Unix.close w.fd;
    let status = reap w in
    (match (w.payload, w.failed, w.term_sent) with
    | Some _, _, _ | _, Some _, _ -> ()
    | None, None, Some (_, resource, detail) ->
      record_failure failures w resource detail
    | None, None, None ->
      record_failure failures w F.Worker_crashed (status_detail status))
  | n ->
    Buffer.add_subbytes w.buf chunk 0 n;
    let data = Buffer.contents w.buf in
    Buffer.clear w.buf;
    let rec split from =
      match String.index_from_opt data from '\n' with
      | None -> Buffer.add_substring w.buf data from (String.length data - from)
      | Some nl ->
        if w.failed = None then
          handle_line ~classify ~failures w (String.sub data from (nl - from));
        split (nl + 1)
    in
    split 0

(* The watchdog's kill ladder: SIGTERM now, SIGKILL after the grace
   period (checked on later poll rounds). *)
let request_kill w resource detail =
  if w.term_sent = None && live w then begin
    w.term_sent <- Some (Telemetry.now (), resource, detail);
    signal_worker w Sys.sigterm
  end

let watchdog ~policy ~hard_deadline workers =
  let now = Telemetry.now () in
  let hb_limit = policy.heartbeat_interval +. policy.heartbeat_grace in
  List.iter
    (fun w ->
      if live w then begin
        (match w.term_sent with
        | Some (at, _, _) when now -. at > policy.kill_grace ->
          signal_worker w Sys.sigkill
        | Some _ | None -> ());
        if w.term_sent = None && w.payload = None then begin
          if w.rss_mb > policy.max_rss_mb then
            request_kill w F.Worker_oom
              (Printf.sprintf "rss %d MiB > cap %d MiB" w.rss_mb
                 policy.max_rss_mb)
          else if now -. w.last_hb > hb_limit then
            request_kill w F.Worker_timeout
              (Printf.sprintf "heartbeat silent for %.2fs" (now -. w.last_hb))
          else
            match hard_deadline with
            | Some d when now > d ->
              request_kill w F.Worker_timeout "query deadline exceeded"
            | Some _ | None -> ()
        end
      end)
    workers

let cancel_loser w =
  if not w.eof then begin
    signal_worker w Sys.sigterm;
    signal_worker w Sys.sigkill;
    ignore (reap w);
    Unix.close w.fd;
    w.eof <- true
  end

(* ---- sequential fallback ----------------------------------------------- *)

(* No fork available: run the entrants one after another in-process.
   Classification semantics are identical; injected worker faults are
   simulated structurally (the first entrant is sacrificed) so the
   chaos tests mean the same thing everywhere. *)
let sequential ~classify entrants =
  let failures = ref [] in
  let held = ref None in
  let simulate_fault w_name fault =
    let resource, detail =
      match (fault : worker_fault) with
      | Kill -> (F.Worker_crashed, "injected worker-kill (sequential)")
      | Hang -> (F.Worker_timeout, "injected worker-hang (sequential)")
      | Garbage -> (F.Worker_garbage, "injected worker-garbage (sequential)")
    in
    let f = { entrant = w_name; resource; detail } in
    failures := f :: !failures;
    Telemetry.incr c_failures;
    Telemetry.event "proc.worker_failure"
      [
        ("entrant", Json.Str w_name);
        ("resource", Json.Str (F.resource_tag resource));
        ("detail", Json.Str detail);
      ]
  in
  let rec go = function
    | [] -> (
      match !held with
      | Some (name, payload) -> Held (name, payload)
      | None -> All_failed (List.rev !failures))
    | e :: rest -> (
      match take_injected () with
      | Some fault ->
        simulate_fault e.name fault;
        go rest
      | None -> (
        match e.run () with
        | exception exn ->
          let f =
            {
              entrant = e.name;
              resource = F.Worker_crashed;
              detail = Printexc.to_string exn;
            }
          in
          failures := f :: !failures;
          Telemetry.incr c_failures;
          go rest
        | payload -> (
          match classify payload with
          | Win ->
            Telemetry.incr c_wins;
            Telemetry.incr (Telemetry.counter ("race.wins." ^ e.name));
            Winner (e.name, payload)
          | Hold ->
            if !held = None then held := Some (e.name, payload);
            go rest
          | Reject why ->
            let f =
              {
                entrant = e.name;
                resource = F.Worker_garbage;
                detail = "rejected payload: " ^ why;
              }
            in
            failures := f :: !failures;
            Telemetry.incr c_failures;
            go rest)))
  in
  go entrants

(* ---- the race ---------------------------------------------------------- *)

let race ?deadline ~policy ~classify entrants =
  if entrants = [] then invalid_arg "Proc.race: no entrants";
  Telemetry.incr c_races;
  if not (available ()) then sequential ~classify entrants
  else begin
    let start = Telemetry.now () in
    let hard_deadline =
      Option.map (fun d -> start +. d +. policy.deadline_slack) deadline
    in
    let failures = ref [] in
    let workers = List.map (spawn ~policy) entrants in
    let winner = ref None in
    let find_winner () =
      if !winner = None then
        List.iter
          (fun w ->
            match w.payload with
            | Some (Win, payload) when !winner = None ->
              winner := Some (w, payload)
            | _ -> ())
          workers
    in
    while !winner = None && List.exists (fun w -> not w.eof) workers do
      let fds =
        List.filter_map (fun w -> if w.eof then None else Some w.fd) workers
      in
      let readable =
        match Unix.select fds [] [] 0.05 with
        | ready, _, _ -> ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun w ->
          if (not w.eof) && List.mem w.fd readable then
            handle_readable ~classify ~failures w)
        workers;
      find_winner ();
      if !winner = None then watchdog ~policy ~hard_deadline workers
    done;
    match !winner with
    | Some (w, payload) ->
      finish_lane w ~outcome:"win";
      List.iter
        (fun l ->
          if l.pid <> w.pid then begin
            cancel_loser l;
            finish_lane l
              ~outcome:
                (match (l.payload, l.failed) with
                | Some _, _ -> "held"
                | None, Some f -> F.resource_tag f.resource
                | None, None -> "cancelled")
          end)
        workers;
      (* drain the winner's pipe to EOF so it is reaped, not zombied *)
      if not w.eof then begin
        (try
           while not w.eof do
             handle_readable ~classify ~failures w
           done
         with Unix.Unix_error (_, _, _) -> ());
        if not w.eof then begin
          ignore (reap w);
          (try Unix.close w.fd with Unix.Unix_error (_, _, _) -> ());
          w.eof <- true
        end
      end;
      Telemetry.incr c_wins;
      Telemetry.incr (Telemetry.counter ("race.wins." ^ w.w_name));
      Winner (w.w_name, payload)
    | None -> (
      List.iter
        (fun w ->
          finish_lane w
            ~outcome:
              (match (w.payload, w.failed) with
              | Some _, _ -> "held"
              | None, Some f -> F.resource_tag f.resource
              | None, None -> "lost"))
        workers;
      let held =
        List.find_map
          (fun w ->
            match w.payload with
            | Some ((Win | Hold), payload) -> Some (w.w_name, payload)
            | Some (Reject _, _) | None -> None)
          workers
      in
      match held with
      | Some (name, payload) -> Held (name, payload)
      | None -> All_failed (List.rev !failures))
  end
