(** Crash-safe CEGAR checkpoints.

    The driver serializes its loop state — the abstraction's register
    set, the iteration counter, the wall-clock already spent, the
    provenance tail — at each iteration boundary, so a killed run
    resumes from its last completed refinement instead of restarting.
    A checkpoint never stores the netlist itself, only a digest of it:
    on resume the digest and property name must match the freshly
    loaded design, otherwise the checkpoint is stale and the run
    starts over (registers are stored by name, so a renamed or
    re-synthesized design must not silently re-seed an abstraction).

    Writes are atomic (temp file in the same directory, then [rename])
    so a crash mid-save leaves the previous checkpoint intact, never a
    torn file. *)

type t = {
  version : int;  (** format version; {!current_version} when built here *)
  netlist_hash : string;  (** {!hash_circuit} of the design under proof *)
  property : string;  (** property name the run was verifying *)
  job_id : string;
      (** server job identifier, part of the checkpoint key: two queued
          jobs on the same (design, property) must not adopt each
          other's loop state. [""] for stand-alone runs, and for
          checkpoints written before the field existed. *)
  iteration : int;
      (** 1-based index of the next iteration to run: every iteration
          below it completed before the checkpoint was written *)
  seconds_used : float;  (** wall-clock consumed before the checkpoint *)
  escalation : int;
      (** the supervisor's backtrack-escalation factor at checkpoint
          time, so a resumed run searches as hard as the killed one *)
  regs : string list;
      (** register names of the abstraction, including every
          refinement promoted so far *)
  provenance : Rfn_obs.Provenance.t list;
      (** completed-iteration records, oldest first *)
}

val current_version : int

val hash_circuit : Rfn_circuit.Circuit.t -> string
(** Hex digest of the canonical BENCH rendering: stable across loads
    of the same design, different for any structural change. *)

val make :
  ?job_id:string ->
  netlist_hash:string ->
  property:string ->
  iteration:int ->
  seconds_used:float ->
  escalation:int ->
  regs:string list ->
  provenance:Rfn_obs.Provenance.t list ->
  unit ->
  t
(** A {!current_version} checkpoint. [job_id] defaults to [""]
    (stand-alone run). *)

val save : string -> t -> unit
(** Atomically (write temp + rename) persist to [file].
    @raise Sys_error when the directory is not writable. *)

val load : string -> (t, string) result
(** Read and parse [file]; [Error] describes what is wrong (missing
    file, malformed JSON, missing field, unsupported version) without
    raising. *)

val validate :
  ?job_id:string ->
  t ->
  netlist_hash:string ->
  property:string ->
  (unit, string) result
(** Check a loaded checkpoint against the run about to resume;
    [Error] explains the mismatch (hash, property or job id).
    [job_id] defaults to [""], matching stand-alone checkpoints. *)
