(** Wire encodings for the circuit-level values that cross the worker
    pipe: cubes and error traces. Kept here (not in [rfn.circuit]) so
    the circuit layer stays JSON-free, and kept out of the engines so
    both ends of the protocol share one definition.

    Decoders are total: any shape violation — wrong arity, a
    contradictory cube, a trace breaking the state/input length
    invariant — yields [None], which callers surface as
    {!Rfn_failure.Worker_garbage}. Worker output is validated, never
    trusted. *)

val cube_to_json : Rfn_circuit.Cube.t -> Rfn_obs.Json.t
(** [[[signal, value], ...]] — pairs of signal id and polarity. *)

val cube_of_json : Rfn_obs.Json.t -> Rfn_circuit.Cube.t option

val trace_to_json : Rfn_circuit.Trace.t -> Rfn_obs.Json.t
(** [{"states": [cube, ...], "inputs": [cube, ...]}]. *)

val trace_of_json : Rfn_obs.Json.t -> Rfn_circuit.Trace.t option
