(** CEGAR provenance: one structured record per refinement iteration,
    answering "why did iteration [k] refine these registers?" after the
    run is gone.

    The CEGAR loop builds one record per iteration and (a) appends it
    to the run's stats and (b) emits it as an ["rfn.iteration"]
    telemetry event, so a [--metrics-out] JSONL file carries the full
    audit trail. [rfn explain] re-reads that file and replays the
    refinement story ({!pp}).

    Serialization policy: [to_json]/[of_json] round-trip every field
    exactly, with two documented exceptions — non-finite floats
    serialize as JSON [null] and parse back as [0.0] (the JSON layer
    cannot represent them), and unknown fields are ignored on input so
    old readers survive new writers. *)

type t = {
  iter : int;  (** 1-based iteration number *)
  regs_before : int;  (** abstract-model registers entering the iteration *)
  regs_after : int;  (** registers after this iteration's refinement *)
  model_inputs : int;  (** free inputs of the abstract model *)
  fixpoint_steps : int;  (** abstract-MC image steps *)
  trace_depth : int option;  (** abstract error-trace length, if one was found *)
  cut_size : int option;  (** min-cut width of the extraction, if the hybrid ran *)
  cubes : int;  (** state+input cubes across all guidance traces *)
  guidance : int;  (** abstract guidance traces extracted *)
  engine : string;
      (** concretization engine family ("atpg" / "sat" / "portfolio";
          "" when concretization never ran) *)
  concretize : string;
      (** "found" | "not-found" | "gave-up:<resource>" | "none" *)
  promoted : string list;  (** names of registers/pseudo-inputs promoted *)
  candidates : int;  (** refinement candidates considered *)
  retries : int;  (** supervisor retry rungs executed this iteration *)
  fallbacks : int;  (** supervisor fallback rungs executed this iteration *)
  injected : int;  (** faults injected this iteration *)
  worker_failures : int;
      (** isolated-worker failures (crash / timeout / oom / garbage)
          absorbed by the supervisor this iteration; absent in files
          written before the worker pool existed and parsed as [0] *)
  bdd_nodes : int;  (** live BDD nodes at iteration end *)
  bdd_peak : int;  (** peak live BDD nodes so far *)
  sat_learned : int;  (** SAT learned clauses added this iteration *)
  backtracks : int;  (** concrete ATPG backtracks this iteration *)
  seconds : float;  (** wall-clock seconds spent in the iteration *)
  outcome : string;
      (** "refined" | "proved" | "falsified" | "aborted:<resource>" *)
}

val to_json : t -> Json.t
val to_fields : t -> (string * Json.t) list
(** The same object as an association list, ready for
    {!Telemetry.event}. *)

val of_json : Json.t -> (t, string) result
(** Parse a record emitted by {!to_json} or an ["rfn.iteration"] event
    line (the ["ev"] tag and any unknown fields are ignored). Missing
    or ill-typed required fields yield [Error] with the field name. *)

val pp : Format.formatter -> t -> unit
(** One-paragraph narrative of the iteration, e.g.
    ["iteration 3: model 5 regs / 12 inputs; fixpoint 14 steps; ..."]. *)

val pp_story : Format.formatter -> t list -> unit
(** The whole run: one {!pp} line per record plus a closing verdict
    line derived from the last record's [outcome]. *)
