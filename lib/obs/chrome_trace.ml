type t = { oc : out_channel; mutable first : bool; mutable closed : bool }

let us_of_seconds ts = Float.max 0.0 ts *. 1e6

let emit t fields =
  if not t.closed then begin
    if t.first then t.first <- false else output_string t.oc ",\n";
    Json.to_channel t.oc (Json.Obj fields)
  end

let base ?(tid = 1) ~ph ~name ~ts () =
  [
    ("name", Json.Str name);
    ("ph", Json.Str ph);
    ("ts", Json.Float (us_of_seconds ts));
    ("pid", Json.Int 1);
    ("tid", Json.Int tid);
  ]

let create file =
  let oc = open_out file in
  let t = { oc; first = true; closed = false } in
  output_string oc "[\n";
  emit t
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.Str "rfn") ]);
    ];
  t

let with_args args fields =
  match args with [] -> fields | args -> fields @ [ ("args", Json.Obj args) ]

let complete t ~name ?cat ?tid ~ts ~dur ?(args = []) () =
  let fields = base ?tid ~ph:"X" ~name ~ts () in
  let fields =
    match cat with
    | None -> fields
    | Some c -> fields @ [ ("cat", Json.Str c) ]
  in
  emit t (with_args args (fields @ [ ("dur", Json.Float (dur *. 1e6)) ]))

let instant t ~name ?tid ~ts ?(args = []) () =
  (* "s":"t" scopes the marker to the thread track *)
  emit t (with_args args (base ?tid ~ph:"i" ~name ~ts () @ [ ("s", Json.Str "t") ]))

let counter t ~name ~ts series =
  emit t
    (base ~ph:"C" ~name ~ts ()
    @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) series)) ]
    )

let thread_name t ~tid name =
  emit t
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let close t =
  if not t.closed then begin
    t.closed <- true;
    output_string t.oc "\n]\n";
    close_out t.oc
  end
