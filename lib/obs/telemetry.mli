(** Process-global telemetry: named counters, gauges and timers, plus
    nested spans tracing the CEGAR loop, with an optional JSONL sink.

    The registry has two costs, by design:

    - {b Counters and gauges} are live even when telemetry is disabled —
      an increment is one or two unboxed integer writes, cheap enough
      for the BDD and ATPG hot paths.
    - {b Spans and timers} are gated on {!enabled}: when the registry is
      disabled, {!with_span} is a single flag test plus the call to the
      wrapped function — no clock reads, no allocation. Instrumentation
      that must compute something expensive to record (e.g. a BDD size)
      should itself test {!enabled} first.

    The clock ({!now}) is monotonic-enough wall time
    ([Unix.gettimeofday]), not CPU time: engine budgets and reported
    seconds measure what a user actually waits. *)

(* ---- clock ----------------------------------------------------------- *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]). Use this — never
    [Sys.time], which reports CPU time — for budgets and durations. *)

(* ---- registry control ------------------------------------------------ *)

val enabled : unit -> bool
val enable : unit -> unit
(** Start recording spans and timers (idempotent). *)

val disable : unit -> unit
(** Stop recording spans/timers; counters and gauges keep counting. *)

val reset : unit -> unit
(** Zero every registered metric and clear span aggregates. Handles
    already obtained remain valid (they are zeroed, not dropped). *)

(* ---- metrics --------------------------------------------------------- *)

type counter
type gauge
type timer

val counter : string -> counter
(** Find-or-create: the same name always yields the same counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge

val record : gauge -> int -> unit
(** Set the gauge's current value, tracking the peak. *)

val gauge_value : gauge -> int
val gauge_peak : gauge -> int

val timer : string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating wall time when {!enabled}; when
    disabled it is just the call. Exceptions propagate; the partial
    duration is still accumulated. *)

val timer_calls : timer -> int
val timer_total : timer -> float

(* ---- spans ----------------------------------------------------------- *)

val with_span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span when {!enabled}:
    wall-clock duration and nesting depth aggregate under [name] (see
    {!span_stats}), and if a sink is attached a ["span"] event is
    emitted on exit. Spans nest; exceptions propagate after the span is
    closed (the event carries ["error": true]). When disabled this is
    one flag test. *)

val span_stats : string -> (int * float) option
(** [(calls, total_seconds)] aggregated for a span name, if any span
    with that name has closed since the last {!reset}. *)

(* ---- sink ------------------------------------------------------------ *)

val attach_jsonl : string -> unit
(** Open [file] for writing and stream events to it as JSON Lines;
    implies {!enable}. Any previously attached sink is closed first.

    Event schema (one object per line):
    - [{"ev":"span","name":s,"ts":t0,"dur":d,"depth":n,"attrs":{...}}]
      — emitted when a span closes; [ts] is seconds since the sink was
      attached, [depth] is 1 for top-level spans;
    - [{"ev":"counter","name":s,"value":n}],
      [{"ev":"gauge","name":s,"value":n,"peak":p}],
      [{"ev":"timer","name":s,"calls":n,"seconds":d}] — the final
      metric snapshot written by {!detach}. *)

val detach : unit -> unit
(** Flush the metric snapshot to the sink (if any) and close it. Safe
    to call with no sink attached; does not change {!enabled}. *)

val event : string -> (string * Json.t) list -> unit
(** Emit a custom event line [{"ev":name, ...fields}] to the sink, if
    one is attached. *)

(* ---- reporting ------------------------------------------------------- *)

val snapshot : unit -> Json.t
(** All registered metrics and span aggregates as one JSON object:
    [{"counters":{...},"gauges":{...},"timers":{...},"spans":{...}}].
    Gauges appear as [{"value":v,"peak":p}], timers and spans as
    [{"calls":n,"seconds":d}]. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable end-of-run report: per-span wall time, non-zero
    counters (with a derived BDD cache hit rate when the BDD counters
    are present), and gauge peaks. *)
