(** Process-global telemetry: named counters, gauges and timers, plus
    nested spans tracing the CEGAR loop, with an optional JSONL sink.

    The registry has two costs, by design:

    - {b Counters and gauges} are live even when telemetry is disabled —
      an increment is one or two unboxed integer writes, cheap enough
      for the BDD and ATPG hot paths.
    - {b Spans and timers} are gated on {!enabled}: when the registry is
      disabled, {!with_span} is a single flag test plus the call to the
      wrapped function — no clock reads, no allocation. Instrumentation
      that must compute something expensive to record (e.g. a BDD size)
      should itself test {!enabled} first.

    The clock ({!now}) is monotonic-enough wall time
    ([Unix.gettimeofday]), not CPU time: engine budgets and reported
    seconds measure what a user actually waits. *)

(* ---- clock ----------------------------------------------------------- *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]). Use this — never
    [Sys.time], which reports CPU time — for budgets and durations. *)

(* ---- registry control ------------------------------------------------ *)

val enabled : unit -> bool
val enable : unit -> unit
(** Start recording spans and timers (idempotent). *)

val disable : unit -> unit
(** Stop recording spans/timers; counters and gauges keep counting. *)

val reset : unit -> unit
(** Zero every registered metric (histograms included), clear span
    aggregates and the event context; rewinds the span-depth tracker,
    so it must be called between runs, never inside an open span.
    Handles already obtained remain valid (they are zeroed, not
    dropped). *)

(* ---- job scoping ----------------------------------------------------- *)

type scope
(** A snapshot of the process-global counters, taken when a server job
    starts, so the job's own contribution can be read back as a delta —
    sequential jobs in one process do not bleed into each other and
    nothing needs resetting between them. Taking a scope also
    rebaselines every gauge's peak to its current value, so a job's
    reported peak is its own, not a leftover spike from an earlier job
    on the same warm session. *)

val scope : unit -> scope

val scope_delta : scope -> (string * int) list
(** Counters that moved since the scope was taken, as
    [(name, delta)] pairs sorted by name; counters registered after the
    snapshot count from zero. Zero deltas are omitted. *)

(* ---- event context --------------------------------------------------- *)

val set_context : (string * Json.t) list -> unit
(** Fields appended to every {!event} line until changed — how server
    jobs stamp the shared JSONL stream with their job id so a reader
    ([rfn explain]) can de-interleave it. [set_context []] clears;
    {!reset} clears too. Explicit event fields come first, so a
    same-named field wins for readers taking the first occurrence. *)

val context : unit -> (string * Json.t) list
(** The currently set context fields (for save/restore nesting). *)

(* ---- metrics --------------------------------------------------------- *)

type counter
type gauge
type timer

val counter : string -> counter
(** Find-or-create: the same name always yields the same counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge

val record : gauge -> int -> unit
(** Set the gauge's current value, tracking the peak. *)

val gauge_value : gauge -> int
val gauge_peak : gauge -> int

val timer : string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating wall time when {!enabled}; when
    disabled it is just the call. Exceptions propagate; the partial
    duration is still accumulated. *)

val timer_calls : timer -> int
val timer_total : timer -> float

(* ---- histograms ------------------------------------------------------ *)

type histogram
(** A log-bucketed distribution (factor-2 buckets from 1e-9 up):
    good for durations in seconds and resource counts alike, with
    quantiles accurate to within one bucket (a factor of 2). *)

val histogram : string -> histogram
(** Find-or-create, like {!counter}. *)

val observe : histogram -> float -> unit
(** Record one observation. Always live (like counters — a few integer
    writes); negative and non-finite values are dropped. Call sites
    that must {e compute} the value (a clock read, a BDD size) should
    gate on {!enabled} or use {!time_hist}. *)

val time_hist : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock seconds as one observation
    when {!enabled}; when disabled it is just the call. Exceptions
    propagate; the partial duration is still observed. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_max : histogram -> float

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile ([0 < q <= 1])
    as the upper bound of the bucket holding the rank-[q] observation,
    clamped to the observed maximum; [0.0] with no observations. *)

(* ---- spans ----------------------------------------------------------- *)

val current_depth : unit -> int
(** Number of currently open spans. A balanced instrumentation layer
    returns to 0 after every run, whatever the outcome — the chaos
    tests assert exactly that. *)

val with_span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span when {!enabled}:
    wall-clock duration and nesting depth aggregate under [name] (see
    {!span_stats}), and if a sink is attached a ["span"] event is
    emitted on exit. Spans nest; exceptions propagate after the span is
    closed (the event carries ["error": true]). When disabled this is
    one flag test. *)

val span_stats : string -> (int * float) option
(** [(calls, total_seconds)] aggregated for a span name, if any span
    with that name has closed since the last {!reset}. *)

(* ---- sink ------------------------------------------------------------ *)

val attach_jsonl : string -> unit
(** Open [file] for writing and stream events to it as JSON Lines;
    implies {!enable}. Any previously attached JSONL sink is closed
    first, and a process-exit hook guarantees the file is flushed and
    snapshot-terminated even on abort paths.

    Event schema (one object per line):
    - [{"ev":"span","name":s,"ts":t0,"dur":d,"depth":n,"attrs":{...}}]
      — emitted when a span closes; [ts] is seconds since the sink was
      attached, [depth] is 1 for top-level spans;
    - [{"ev":"counter","name":s,"value":n}],
      [{"ev":"gauge","name":s,"value":n,"peak":p}],
      [{"ev":"timer","name":s,"calls":n,"seconds":d}],
      [{"ev":"histogram","name":s,"count":n,"sum":x,"max":x,"p50":x,
      "p90":x,"buckets":[[i,c],...]}] — the final metric snapshot
      written by {!detach}. *)

val attach_trace : string -> unit
(** Open [file] as a Chrome trace-event sink ({!Chrome_trace}); implies
    {!enable}. Every span close becomes a complete ("X") slice, every
    {!event} an instant marker, and every {!trace_counter} call a
    counter track sample — the result loads directly in Perfetto or
    chrome://tracing. Closed by {!detach} and by the process-exit
    hook, so the trace survives abort paths. *)

val trace_attached : unit -> bool

val detach : unit -> unit
(** Flush the metric snapshot to the JSONL sink, terminate the trace
    file, and close both. Safe to call with no sink attached (and
    called again from the exit hook); does not change {!enabled}. *)

val abandon_sinks : unit -> unit
(** Forget any attached sinks {e without} flushing or closing them.
    For forked worker processes only: a child shares the parent's file
    descriptors and buffered bytes, so flushing or closing from the
    child would corrupt the parent's output. Call immediately after
    [Unix.fork] in the child, before any engine work. *)

val trace_complete :
  ?tid:int ->
  name:string ->
  ?args:(string * Json.t) list ->
  start:float ->
  dur:float ->
  unit ->
  unit
(** Emit a complete ("X") slice directly on the trace sink (no-op
    without one), on lane [tid]: the worker pool draws one lane per
    engine process. [start] is a {!now} timestamp. *)

val trace_thread_name : tid:int -> string -> unit
(** Name a trace lane (no-op without a trace sink). *)

val event : string -> (string * Json.t) list -> unit
(** Emit a custom event line [{"ev":name, ...fields}] to the JSONL
    sink and an instant marker to the trace sink, whichever are
    attached. *)

val trace_counter : string -> (string * float) list -> unit
(** Emit one sample on a named counter track of the trace sink (no-op
    without one): [trace_counter "gc" [("heap_words", w)]]. *)

(* ---- reporting ------------------------------------------------------- *)

val snapshot : unit -> Json.t
(** All registered metrics and span aggregates as one JSON object:
    [{"counters":{...},"gauges":{...},"timers":{...},"hists":{...},
    "spans":{...}}]. Gauges appear as [{"value":v,"peak":p}], timers
    and spans as [{"calls":n,"seconds":d}], histograms as
    [{"count":n,"sum":x,"max":x,"p50":x,"p90":x}]. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable end-of-run report: per-span wall time, histogram
    quantiles, non-zero counters (with a derived BDD cache hit rate
    when the BDD counters are present), and gauge peaks. *)
