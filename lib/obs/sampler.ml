(* Gauges worth sampling on every tick: the hot-path layers keep these
   up to date themselves, the sampler just reads them. Find-or-create
   semantics make the list safe even when a layer never loads. *)
let tracked_gauges =
  [ "bdd.live_nodes"; "sat.clause_db"; "session.nodes_carried" ]

let probes : (string, unit -> int) Hashtbl.t = Hashtbl.create 8
let register name probe = Hashtbl.replace probes name probe
let heap_words = ref 0
let last_heap_words () = !heap_words

let tick label =
  if Telemetry.enabled () then begin
    let gc = Gc.quick_stat () in
    heap_words := gc.Gc.heap_words;
    let allocated_words =
      int_of_float (gc.Gc.minor_words +. gc.Gc.major_words)
    in
    let gc_fields =
      [
        ("gc_heap_words", Json.Int gc.Gc.heap_words);
        ("gc_top_heap_words", Json.Int gc.Gc.top_heap_words);
        ("gc_allocated_words", Json.Int allocated_words);
        ("gc_minor_collections", Json.Int gc.Gc.minor_collections);
        ("gc_major_collections", Json.Int gc.Gc.major_collections);
      ]
    in
    let gauge_fields =
      List.concat_map
        (fun name ->
          let g = Telemetry.gauge name in
          [
            (name, Json.Int (Telemetry.gauge_value g));
            (name ^ ".peak", Json.Int (Telemetry.gauge_peak g));
          ])
        tracked_gauges
    in
    let probe_fields =
      Hashtbl.fold
        (fun name probe acc ->
          match probe () with
          | v -> (name, Json.Int v) :: acc
          | exception _ -> acc)
        probes []
      |> List.sort compare
    in
    Telemetry.event "sample"
      ((("at", Json.Str label) :: gc_fields) @ gauge_fields @ probe_fields);
    if Telemetry.trace_attached () then begin
      Telemetry.trace_counter "gc.heap_words"
        [ ("heap_words", float_of_int gc.Gc.heap_words) ];
      List.iter
        (fun name ->
          let g = Telemetry.gauge name in
          Telemetry.trace_counter name
            [ ("value", float_of_int (Telemetry.gauge_value g)) ])
        tracked_gauges;
      List.iter
        (fun (name, v) ->
          match v with
          | Json.Int v ->
            Telemetry.trace_counter name [ ("value", float_of_int v) ]
          | _ -> ())
        probe_fields
    end
  end
