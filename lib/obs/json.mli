(** Minimal JSON values: just enough to emit and re-read the telemetry
    event stream and the benchmark summaries without external
    dependencies. Integers are kept distinct from floats so counters
    round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering; strings are escaped per RFC 8259.
    Non-finite floats are rendered as [null]. *)

val to_channel : out_channel -> t -> unit

val of_string : string -> t
(** Parse a single JSON value. @raise Failure on malformed input. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to the first [k], if any;
    [None] on non-objects. *)

val to_int : t -> int option
(** [Int n] as [Some n]; anything else (including floats) is [None]. *)

val to_bool : t -> bool option
(** [Bool b] as [Some b]; anything else is [None]. *)

val to_float : t -> float option
(** [Float f] or [Int n] as a float. *)

val to_str : t -> string option
