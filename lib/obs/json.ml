type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission -------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then
      (* shortest representation that still round-trips *)
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* ---- parsing --------------------------------------------------------- *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg st.pos)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          (* Exactly four hex digits — [int_of_string ("0x" ^ hex)]
             would also accept OCaml-isms like "1_23". *)
          let hex4 () =
            if st.pos + 4 > String.length st.src then
              fail st "bad \\u escape: expected 4 hex digits";
            let digit c =
              match c with
              | '0' .. '9' -> Char.code c - Char.code '0'
              | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
              | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
              | _ -> fail st "bad \\u escape: expected 4 hex digits"
            in
            let v = ref 0 in
            for i = 0 to 3 do
              v := (!v lsl 4) lor digit st.src.[st.pos + i]
            done;
            st.pos <- st.pos + 4;
            !v
          in
          let code = hex4 () in
          let code =
            if code >= 0xD800 && code <= 0xDBFF then begin
              (* high surrogate: the matching low half must follow as
                 another \u escape, and the pair combines into one
                 supplementary-plane scalar *)
              if
                st.pos + 2 <= String.length st.src
                && st.src.[st.pos] = '\\'
                && st.src.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail st "unpaired high surrogate in \\u escape";
                0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else fail st "unpaired high surrogate in \\u escape"
            end
            else if code >= 0xDC00 && code <= 0xDFFF then
              fail st "unpaired low surrogate in \\u escape"
            else code
          in
          (* telemetry only ever emits codes < 0x80; decode the rest as
             UTF-8 so foreign input still parses *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else if code < 0x10000 then begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail st "bad escape");
        go ())
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "malformed number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---- accessors ------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
