(** Chrome trace-event writer (the JSON "array format" loadable by
    Perfetto / chrome://tracing / catapult).

    One writer owns one output file. Events are appended as they
    happen; {!close} terminates the array. Timestamps are given in
    seconds relative to the writer's epoch (negative values are clamped
    to zero) and written in microseconds, as the format requires. All
    events carry [pid = 1]; events default to [tid = 1] (the engines are
    single-threaded, so nesting is reconstructed from containment), but
    callers may place a slice on another lane with [?tid] — the worker
    pool uses one lane per racing engine process, named via
    {!thread_name}.

    The array format tolerates a missing trailing "]" (so a crashed
    run's trace still loads), but {!close} always writes it — and is
    idempotent, safe from both [Fun.protect] finalisers and [at_exit]. *)

type t

val create : string -> t
(** Open [file] and write the array opening plus a process-name
    metadata record. @raise Sys_error when the file cannot be opened. *)

val complete :
  t ->
  name:string ->
  ?cat:string ->
  ?tid:int ->
  ts:float ->
  dur:float ->
  ?args:(string * Json.t) list ->
  unit ->
  unit
(** A ["ph":"X"] complete event: a span of [dur] seconds starting [ts]
    seconds after the epoch, on lane [tid] (default 1). *)

val instant :
  t ->
  name:string ->
  ?tid:int ->
  ts:float ->
  ?args:(string * Json.t) list ->
  unit ->
  unit
(** A ["ph":"i"] thread-scoped instant event. *)

val thread_name : t -> tid:int -> string -> unit
(** Emit a thread-name metadata record so the viewer labels lane [tid]
    (e.g. ["worker:atpg"]). Emit once per lane. *)

val counter : t -> name:string -> ts:float -> (string * float) list -> unit
(** A ["ph":"C"] counter event: each [(series, value)] pair becomes a
    stacked series under the counter track [name]. *)

val close : t -> unit
(** Write the closing "]" and close the channel. Idempotent; later
    events on a closed writer are dropped silently. *)
