(** Lightweight resource sampler, ticked at CEGAR phase boundaries.

    Each {!tick} takes one cheap snapshot — [Gc.quick_stat] words and
    collection counts plus the current value/peak of every registered
    probe — and emits it as an ["sample"] telemetry event and as
    Chrome-trace counter-track samples. A tick with the registry
    disabled is a single flag test, so the loop can tick
    unconditionally.

    Probes are named thunks producing an [int]; the BDD, SAT and
    session layers register theirs at module init (live nodes, clause
    DB size, carried nodes) via the {!Telemetry} gauges they already
    maintain — {!tick} reads those gauges directly, so only
    out-of-registry quantities need explicit probes. *)

val register : string -> (unit -> int) -> unit
(** [register name probe] adds (or replaces) a named probe sampled on
    every tick. Probes must be cheap and must not raise; a raising
    probe is dropped from that tick's sample. *)

val tick : string -> unit
(** [tick label] snapshots GC statistics, the tracked gauges and every
    registered probe, tagged with the phase-boundary [label]. No-op
    when the telemetry registry is disabled. *)

val last_heap_words : unit -> int
(** Heap words seen by the most recent {!tick} (0 before any tick) —
    exposed for tests and reports. *)
