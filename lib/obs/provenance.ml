type t = {
  iter : int;
  regs_before : int;
  regs_after : int;
  model_inputs : int;
  fixpoint_steps : int;
  trace_depth : int option;
  cut_size : int option;
  cubes : int;
  guidance : int;
  engine : string;
  concretize : string;
  promoted : string list;
  candidates : int;
  retries : int;
  fallbacks : int;
  injected : int;
  worker_failures : int;
  bdd_nodes : int;
  bdd_peak : int;
  sat_learned : int;
  backtracks : int;
  seconds : float;
  outcome : string;
}

(* ---- serialization --------------------------------------------------- *)

let float_json f = if Float.is_finite f then Json.Float f else Json.Null
let opt_int_json = function None -> Json.Null | Some n -> Json.Int n

let to_fields p =
  [
    ("iter", Json.Int p.iter);
    ("regs_before", Json.Int p.regs_before);
    ("regs_after", Json.Int p.regs_after);
    ("model_inputs", Json.Int p.model_inputs);
    ("fixpoint_steps", Json.Int p.fixpoint_steps);
    ("trace_depth", opt_int_json p.trace_depth);
    ("cut_size", opt_int_json p.cut_size);
    ("cubes", Json.Int p.cubes);
    ("guidance", Json.Int p.guidance);
    ("engine", Json.Str p.engine);
    ("concretize", Json.Str p.concretize);
    ("promoted", Json.List (List.map (fun s -> Json.Str s) p.promoted));
    ("candidates", Json.Int p.candidates);
    ("retries", Json.Int p.retries);
    ("fallbacks", Json.Int p.fallbacks);
    ("injected", Json.Int p.injected);
    ("worker_failures", Json.Int p.worker_failures);
    ("bdd_nodes", Json.Int p.bdd_nodes);
    ("bdd_peak", Json.Int p.bdd_peak);
    ("sat_learned", Json.Int p.sat_learned);
    ("backtracks", Json.Int p.backtracks);
    ("seconds", float_json p.seconds);
    ("outcome", Json.Str p.outcome);
  ]

let to_json p = Json.Obj (to_fields p)

let of_json j =
  let field name = Json.member name j in
  let missing name = Error (Printf.sprintf "missing or ill-typed %S" name) in
  let int name =
    match Option.bind (field name) Json.to_int with
    | Some n -> Ok n
    | None -> missing name
  in
  let opt_int name =
    match field name with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_int v with Some n -> Ok (Some n) | None -> missing name)
  in
  let str name =
    match Option.bind (field name) Json.to_str with
    | Some s -> Ok s
    | None -> missing name
  in
  let flt name =
    match field name with
    | Some Json.Null -> Ok 0.0 (* the nan/inf policy: null reads as 0 *)
    | Some v -> (
      match Json.to_float v with Some f -> Ok f | None -> missing name)
    | None -> missing name
  in
  let str_list name =
    match field name with
    | Some (Json.List xs) -> (
      let strs = List.filter_map Json.to_str xs in
      if List.length strs = List.length xs then Ok strs else missing name)
    | _ -> missing name
  in
  let ( let* ) = Result.bind in
  let* iter = int "iter" in
  let* regs_before = int "regs_before" in
  let* regs_after = int "regs_after" in
  let* model_inputs = int "model_inputs" in
  let* fixpoint_steps = int "fixpoint_steps" in
  let* trace_depth = opt_int "trace_depth" in
  let* cut_size = opt_int "cut_size" in
  let* cubes = int "cubes" in
  let* guidance = int "guidance" in
  let* engine = str "engine" in
  let* concretize = str "concretize" in
  let* promoted = str_list "promoted" in
  let* candidates = int "candidates" in
  let* retries = int "retries" in
  let* fallbacks = int "fallbacks" in
  let* injected = int "injected" in
  (* added after the first release of the record: absent in old files *)
  let* worker_failures =
    match field "worker_failures" with
    | None -> Ok 0
    | Some v -> (
      match Json.to_int v with
      | Some n -> Ok n
      | None -> missing "worker_failures")
  in
  let* bdd_nodes = int "bdd_nodes" in
  let* bdd_peak = int "bdd_peak" in
  let* sat_learned = int "sat_learned" in
  let* backtracks = int "backtracks" in
  let* seconds = flt "seconds" in
  let* outcome = str "outcome" in
  Ok
    {
      iter; regs_before; regs_after; model_inputs; fixpoint_steps;
      trace_depth; cut_size; cubes; guidance; engine; concretize; promoted;
      candidates; retries; fallbacks; injected; worker_failures; bdd_nodes;
      bdd_peak; sat_learned; backtracks; seconds; outcome;
    }

(* ---- narrative ------------------------------------------------------- *)

let pp ppf p =
  Format.fprintf ppf "iteration %d: model %d regs / %d inputs; fixpoint %d \
                      step%s"
    p.iter p.regs_before p.model_inputs p.fixpoint_steps
    (if p.fixpoint_steps = 1 then "" else "s");
  (match p.trace_depth with
  | None -> Format.fprintf ppf "; no abstract trace"
  | Some d ->
    Format.fprintf ppf "; abstract trace depth %d" d;
    (match p.cut_size with
    | Some c -> Format.fprintf ppf " (cut %d, %d cubes)" c p.cubes
    | None -> Format.fprintf ppf " (%d cubes)" p.cubes));
  if p.concretize <> "none" then
    Format.fprintf ppf "; concretize[%s]: %s" p.engine p.concretize;
  (match p.promoted with
  | [] -> ()
  | regs ->
    Format.fprintf ppf "; refined +%d reg%s (%s) of %d candidate%s"
      (List.length regs)
      (if List.length regs = 1 then "" else "s")
      (String.concat ", " regs) p.candidates
      (if p.candidates = 1 then "" else "s"));
  if p.retries > 0 || p.fallbacks > 0 || p.injected > 0 then
    Format.fprintf ppf "; supervisor: %d retr%s, %d fallback%s, %d injected"
      p.retries
      (if p.retries = 1 then "y" else "ies")
      p.fallbacks
      (if p.fallbacks = 1 then "" else "s")
      p.injected;
  if p.worker_failures > 0 then
    Format.fprintf ppf "; %d worker failure%s" p.worker_failures
      (if p.worker_failures = 1 then "" else "s");
  Format.fprintf ppf "; bdd %d live / %d peak nodes" p.bdd_nodes p.bdd_peak;
  if p.sat_learned > 0 then
    Format.fprintf ppf "; sat +%d learned" p.sat_learned;
  if p.backtracks > 0 then
    Format.fprintf ppf "; atpg %d backtracks" p.backtracks;
  Format.fprintf ppf "; %.3fs -> %s" p.seconds p.outcome

let pp_story ppf records =
  match records with
  | [] -> Format.fprintf ppf "no provenance records@."
  | records ->
    List.iter (fun p -> Format.fprintf ppf "%a@." pp p) records;
    let last = List.nth records (List.length records - 1) in
    let total = List.fold_left (fun a p -> a +. p.seconds) 0.0 records in
    Format.fprintf ppf "verdict after %d iteration%s (%.3fs): %s@."
      (List.length records)
      (if List.length records = 1 then "" else "s")
      total last.outcome
