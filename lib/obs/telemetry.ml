let now () = Unix.gettimeofday ()

(* ---- registry -------------------------------------------------------- *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : int; mutable peak : int }

type timer = {
  t_name : string;
  mutable calls : int;
  mutable total : float;
  mutable max_dur : float;
}

(* Registration order is kept so reports are stable. *)
type registry = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  spans : (string, timer) Hashtbl.t;
  mutable order : [ `C of counter | `G of gauge | `T of timer ] list;
}

let reg =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    timers = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    order = [];
  }

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let counter name =
  match Hashtbl.find_opt reg.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.add reg.counters name c;
    reg.order <- `C c :: reg.order;
    c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let gauge name =
  match Hashtbl.find_opt reg.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; value = 0; peak = 0 } in
    Hashtbl.add reg.gauges name g;
    reg.order <- `G g :: reg.order;
    g

let record g v =
  g.value <- v;
  if v > g.peak then g.peak <- v

let gauge_value g = g.value
let gauge_peak g = g.peak

let fresh_timer name = { t_name = name; calls = 0; total = 0.0; max_dur = 0.0 }

let timer name =
  match Hashtbl.find_opt reg.timers name with
  | Some t -> t
  | None ->
    let t = fresh_timer name in
    Hashtbl.add reg.timers name t;
    reg.order <- `T t :: reg.order;
    t

let observe t dur =
  t.calls <- t.calls + 1;
  t.total <- t.total +. dur;
  if dur > t.max_dur then t.max_dur <- dur

let time t f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    match f () with
    | v ->
      observe t (now () -. t0);
      v
    | exception e ->
      observe t (now () -. t0);
      raise e
  end

let timer_calls t = t.calls
let timer_total t = t.total

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) reg.counters;
  Hashtbl.iter
    (fun _ g ->
      g.value <- 0;
      g.peak <- 0)
    reg.gauges;
  Hashtbl.iter
    (fun _ t ->
      t.calls <- 0;
      t.total <- 0.0;
      t.max_dur <- 0.0)
    reg.timers;
  Hashtbl.reset reg.spans

(* ---- sink ------------------------------------------------------------ *)

type sink = { oc : out_channel; epoch : float }

let sink : sink option ref = ref None

let emit_line fields =
  match !sink with
  | None -> ()
  | Some s ->
    Json.to_channel s.oc (Json.Obj fields);
    output_char s.oc '\n'

let event name fields = emit_line (("ev", Json.Str name) :: fields)

let metric_snapshot_events () =
  let evs = ref [] in
  List.iter
    (function
      | `C c ->
        if c.count <> 0 then
          evs :=
            [ ("ev", Json.Str "counter"); ("name", Json.Str c.c_name);
              ("value", Json.Int c.count) ]
            :: !evs
      | `G g ->
        if g.peak <> 0 || g.value <> 0 then
          evs :=
            [ ("ev", Json.Str "gauge"); ("name", Json.Str g.g_name);
              ("value", Json.Int g.value); ("peak", Json.Int g.peak) ]
            :: !evs
      | `T t ->
        if t.calls <> 0 then
          evs :=
            [ ("ev", Json.Str "timer"); ("name", Json.Str t.t_name);
              ("calls", Json.Int t.calls); ("seconds", Json.Float t.total) ]
            :: !evs)
    reg.order;
  Hashtbl.fold
    (fun _ t acc ->
      [ ("ev", Json.Str "timer"); ("name", Json.Str t.t_name);
        ("calls", Json.Int t.calls); ("seconds", Json.Float t.total) ]
      :: acc)
    reg.spans !evs
  |> List.rev

let detach () =
  match !sink with
  | None -> ()
  | Some s ->
    List.iter emit_line (metric_snapshot_events ());
    close_out s.oc;
    sink := None

let attach_jsonl file =
  detach ();
  sink := Some { oc = open_out file; epoch = now () };
  enable ()

(* ---- spans ----------------------------------------------------------- *)

let span_depth = ref 0

let span_agg name =
  match Hashtbl.find_opt reg.spans name with
  | Some t -> t
  | None ->
    let t = fresh_timer name in
    Hashtbl.add reg.spans name t;
    t

let span_stats name =
  match Hashtbl.find_opt reg.spans name with
  | Some t when t.calls > 0 -> Some (t.calls, t.total)
  | _ -> None

let close_span ?(error = false) name attrs t0 =
  let dur = now () -. t0 in
  observe (span_agg name) dur;
  (match !sink with
  | None -> ()
  | Some s ->
    let base =
      [ ("ev", Json.Str "span"); ("name", Json.Str name);
        ("ts", Json.Float (t0 -. s.epoch)); ("dur", Json.Float dur);
        ("depth", Json.Int !span_depth) ]
    in
    let base = if error then base @ [ ("error", Json.Bool true) ] else base in
    let base =
      if attrs = [] then base else base @ [ ("attrs", Json.Obj attrs) ]
    in
    emit_line base);
  decr span_depth

let with_span ?(attrs = []) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    Stdlib.incr span_depth;
    match f () with
    | v ->
      close_span name attrs t0;
      v
    | exception e ->
      close_span ~error:true name attrs t0;
      raise e
  end

(* ---- reporting ------------------------------------------------------- *)

let snapshot () =
  let counters = ref [] and gauges = ref [] and timers = ref [] in
  List.iter
    (function
      | `C c -> counters := (c.c_name, Json.Int c.count) :: !counters
      | `G g ->
        gauges :=
          ( g.g_name,
            Json.Obj [ ("value", Json.Int g.value); ("peak", Json.Int g.peak) ]
          )
          :: !gauges
      | `T t ->
        timers :=
          ( t.t_name,
            Json.Obj
              [ ("calls", Json.Int t.calls); ("seconds", Json.Float t.total) ]
          )
          :: !timers)
    reg.order;
  let spans =
    Hashtbl.fold
      (fun name t acc ->
        ( name,
          Json.Obj
            [ ("calls", Json.Int t.calls); ("seconds", Json.Float t.total) ] )
        :: acc)
      reg.spans []
    |> List.sort compare
  in
  Json.Obj
    [ ("counters", Json.Obj !counters); ("gauges", Json.Obj !gauges);
      ("timers", Json.Obj !timers); ("spans", Json.Obj spans) ]

let pp_report ppf () =
  let spans =
    Hashtbl.fold (fun _ t acc -> t :: acc) reg.spans []
    |> List.filter (fun t -> t.calls > 0)
    |> List.sort (fun a b -> compare b.total a.total)
  in
  Format.fprintf ppf "== telemetry ==========================================@.";
  if spans <> [] then begin
    Format.fprintf ppf "spans (wall time):@.";
    List.iter
      (fun t ->
        Format.fprintf ppf "  %-28s calls=%-6d total=%8.3fs max=%7.3fs@."
          t.t_name t.calls t.total t.max_dur)
      spans
  end;
  let timers =
    Hashtbl.fold (fun _ t acc -> t :: acc) reg.timers []
    |> List.filter (fun t -> t.calls > 0)
    |> List.sort (fun a b -> compare b.total a.total)
  in
  if timers <> [] then begin
    Format.fprintf ppf "timers:@.";
    List.iter
      (fun t ->
        Format.fprintf ppf "  %-28s calls=%-6d total=%8.3fs@." t.t_name
          t.calls t.total)
      timers
  end;
  let counters =
    Hashtbl.fold (fun _ c acc -> c :: acc) reg.counters []
    |> List.filter (fun c -> c.count <> 0)
    |> List.sort (fun a b -> compare a.c_name b.c_name)
  in
  if counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun c -> Format.fprintf ppf "  %-28s %d@." c.c_name c.count)
      counters
  end;
  (* derived: BDD op-cache hit rate, when the BDD layer is registered *)
  (match
     ( Hashtbl.find_opt reg.counters "bdd.cache_hits",
       Hashtbl.find_opt reg.counters "bdd.cache_misses" )
   with
  | Some h, Some m when h.count + m.count > 0 ->
    Format.fprintf ppf "  %-28s %.1f%% (%d/%d)@." "bdd.cache hit rate"
      (100.0 *. float_of_int h.count /. float_of_int (h.count + m.count))
      h.count (h.count + m.count)
  | _ -> ());
  let gauges =
    Hashtbl.fold (fun _ g acc -> g :: acc) reg.gauges []
    |> List.filter (fun g -> g.peak <> 0 || g.value <> 0)
    |> List.sort (fun a b -> compare a.g_name b.g_name)
  in
  if gauges <> [] then begin
    Format.fprintf ppf "gauges (last/peak):@.";
    List.iter
      (fun g ->
        Format.fprintf ppf "  %-28s %d / %d@." g.g_name g.value g.peak)
      gauges
  end;
  Format.fprintf ppf "=======================================================@."
