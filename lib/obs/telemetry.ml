let now () = Unix.gettimeofday ()

(* ---- registry -------------------------------------------------------- *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : int; mutable peak : int }

type timer = {
  t_name : string;
  mutable calls : int;
  mutable total : float;
  mutable max_dur : float;
}

type hist = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
  h_buckets : int array;
}

(* Registration order is kept so reports are stable. *)
type registry = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  spans : (string, timer) Hashtbl.t;
  mutable order :
    [ `C of counter | `G of gauge | `T of timer | `H of hist ] list;
}

let reg =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    timers = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    order = [];
  }

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let counter name =
  match Hashtbl.find_opt reg.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.add reg.counters name c;
    reg.order <- `C c :: reg.order;
    c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let gauge name =
  match Hashtbl.find_opt reg.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; value = 0; peak = 0 } in
    Hashtbl.add reg.gauges name g;
    reg.order <- `G g :: reg.order;
    g

let record g v =
  g.value <- v;
  if v > g.peak then g.peak <- v

let gauge_value g = g.value
let gauge_peak g = g.peak

let fresh_timer name = { t_name = name; calls = 0; total = 0.0; max_dur = 0.0 }

let timer name =
  match Hashtbl.find_opt reg.timers name with
  | Some t -> t
  | None ->
    let t = fresh_timer name in
    Hashtbl.add reg.timers name t;
    reg.order <- `T t :: reg.order;
    t

let timer_observe t dur =
  t.calls <- t.calls + 1;
  t.total <- t.total +. dur;
  if dur > t.max_dur then t.max_dur <- dur

let time t f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    match f () with
    | v ->
      timer_observe t (now () -. t0);
      v
    | exception e ->
      timer_observe t (now () -. t0);
      raise e
  end

let timer_calls t = t.calls
let timer_total t = t.total

(* ---- histograms ------------------------------------------------------- *)

(* Log-bucketed: bucket 0 holds values <= hist_base, bucket i > 0 holds
   (hist_base * 2^(i-1), hist_base * 2^i]. With base 1 ns and 96
   buckets the range covers sub-microsecond image steps and
   hundred-billion-count resources alike. *)
let hist_base = 1e-9
let hist_nbuckets = 96

type histogram = hist

let histogram name =
  match Hashtbl.find_opt reg.hists name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_count = 0;
        h_sum = 0.0;
        h_max = 0.0;
        h_buckets = Array.make hist_nbuckets 0;
      }
    in
    Hashtbl.add reg.hists name h;
    reg.order <- `H h :: reg.order;
    h

let bucket_index v =
  if v <= hist_base then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 (v /. hist_base))) in
    if i < 1 then 1 else if i >= hist_nbuckets then hist_nbuckets - 1 else i

let bucket_upper i = hist_base *. Float.pow 2.0 (float_of_int i)

let observe h v =
  (* non-finite and negative observations are dropped: a histogram of
     durations or resource counts has no meaningful place for them *)
  if Float.is_finite v && v >= 0.0 then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1
  end

let time_hist h f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    match f () with
    | v ->
      observe h (now () -. t0);
      v
    | exception e ->
      observe h (now () -. t0);
      raise e
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_max h = h.h_max

let histogram_quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let est = ref h.h_max in
    let cum = ref 0 in
    (try
       for i = 0 to hist_nbuckets - 1 do
         cum := !cum + h.h_buckets.(i);
         if !cum >= rank then begin
           est := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min !est h.h_max
  end

(* forward reference: [reset] also rewinds the span-depth tracker,
   which is declared with the span machinery below *)
let span_depth = ref 0

(* ---- event context --------------------------------------------------- *)

(* Fields appended to every [event] line while set — how server jobs
   stamp the shared JSONL stream with their job id so a reader (e.g.
   [rfn explain]) can de-interleave it. *)
let context_fields : (string * Json.t) list ref = ref []

let set_context fields = context_fields := fields
let context () = !context_fields

let reset () =
  context_fields := [];
  Hashtbl.iter (fun _ c -> c.count <- 0) reg.counters;
  Hashtbl.iter
    (fun _ g ->
      g.value <- 0;
      g.peak <- 0)
    reg.gauges;
  Hashtbl.iter
    (fun _ t ->
      t.calls <- 0;
      t.total <- 0.0;
      t.max_dur <- 0.0)
    reg.timers;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_max <- 0.0;
      Array.fill h.h_buckets 0 hist_nbuckets 0)
    reg.hists;
  Hashtbl.reset reg.spans;
  (* reset assumes no spans are open (it is called between runs) *)
  span_depth := 0

(* ---- job scoping ----------------------------------------------------- *)

(* The registry is process-global; a long-running server attributes
   counters to individual jobs by delta against a snapshot taken when
   the job starts. Gauge peaks are rebaselined to the current value at
   snapshot time, so a job's reported peak is its own, not a leftover
   spike from an earlier job on the same warm session. *)

type scope = { base : (string, int) Hashtbl.t }

let scope () =
  Hashtbl.iter (fun _ g -> g.peak <- g.value) reg.gauges;
  let base = Hashtbl.create (Hashtbl.length reg.counters) in
  Hashtbl.iter (fun name c -> Hashtbl.replace base name c.count) reg.counters;
  { base }

let scope_delta s =
  Hashtbl.fold
    (fun name c acc ->
      (* a counter registered after the snapshot started from 0 *)
      let b = Option.value ~default:0 (Hashtbl.find_opt s.base name) in
      if c.count <> b then (name, c.count - b) :: acc else acc)
    reg.counters []
  |> List.sort compare

(* ---- sinks ----------------------------------------------------------- *)

type sink = { oc : out_channel; epoch : float }

let sink : sink option ref = ref None

(* The Chrome trace sink mirrors the span/event stream into the
   trace-event format, with its own epoch. *)
let trace : (Chrome_trace.t * float) option ref = ref None

let emit_line fields =
  match !sink with
  | None -> ()
  | Some s ->
    Json.to_channel s.oc (Json.Obj fields);
    output_char s.oc '\n'

let event name fields =
  (* context after the explicit fields: an explicit field of the same
     name wins for readers that take the first occurrence *)
  let fields = fields @ !context_fields in
  emit_line (("ev", Json.Str name) :: fields);
  match !trace with
  | None -> ()
  | Some (w, epoch) ->
    Chrome_trace.instant w ~name ~ts:(now () -. epoch) ~args:fields ()

let trace_counter name series =
  match !trace with
  | None -> ()
  | Some (w, epoch) -> Chrome_trace.counter w ~name ~ts:(now () -. epoch) series

let trace_attached () = !trace <> None

let metric_snapshot_events () =
  let evs = ref [] in
  List.iter
    (function
      | `C c ->
        if c.count <> 0 then
          evs :=
            [ ("ev", Json.Str "counter"); ("name", Json.Str c.c_name);
              ("value", Json.Int c.count) ]
            :: !evs
      | `G g ->
        if g.peak <> 0 || g.value <> 0 then
          evs :=
            [ ("ev", Json.Str "gauge"); ("name", Json.Str g.g_name);
              ("value", Json.Int g.value); ("peak", Json.Int g.peak) ]
            :: !evs
      | `T t ->
        if t.calls <> 0 then
          evs :=
            [ ("ev", Json.Str "timer"); ("name", Json.Str t.t_name);
              ("calls", Json.Int t.calls); ("seconds", Json.Float t.total) ]
            :: !evs
      | `H h ->
        if h.h_count <> 0 then begin
          let buckets = ref [] in
          for i = hist_nbuckets - 1 downto 0 do
            if h.h_buckets.(i) <> 0 then
              buckets :=
                Json.List [ Json.Int i; Json.Int h.h_buckets.(i) ] :: !buckets
          done;
          evs :=
            [ ("ev", Json.Str "histogram"); ("name", Json.Str h.h_name);
              ("count", Json.Int h.h_count); ("sum", Json.Float h.h_sum);
              ("max", Json.Float h.h_max);
              ("p50", Json.Float (histogram_quantile h 0.5));
              ("p90", Json.Float (histogram_quantile h 0.9));
              ("buckets", Json.List !buckets) ]
            :: !evs
        end)
    reg.order;
  Hashtbl.fold
    (fun _ t acc ->
      [ ("ev", Json.Str "timer"); ("name", Json.Str t.t_name);
        ("calls", Json.Int t.calls); ("seconds", Json.Float t.total) ]
      :: acc)
    reg.spans !evs
  |> List.rev

let close_jsonl () =
  match !sink with
  | None -> ()
  | Some s ->
    List.iter emit_line (metric_snapshot_events ());
    close_out s.oc;
    sink := None

let close_trace () =
  match !trace with
  | None -> ()
  | Some (w, _) ->
    Chrome_trace.close w;
    trace := None

let detach () =
  close_jsonl ();
  close_trace ()

(* Forked children inherit the sink channels (same fd, same buffered
   bytes). They must neither flush nor close them — either would
   corrupt the parent's file — so a child simply forgets the sinks.
   The descriptors are reclaimed by the child's [Unix._exit]. *)
let abandon_sinks () =
  sink := None;
  trace := None

let trace_complete ?tid ~name ?(args = []) ~start ~dur () =
  match !trace with
  | None -> ()
  | Some (w, epoch) ->
    Chrome_trace.complete w ~name ~cat:"proc" ?tid ~ts:(start -. epoch) ~dur
      ~args ()

let trace_thread_name ~tid name =
  match !trace with
  | None -> ()
  | Some (w, _) -> Chrome_trace.thread_name w ~tid name

(* A process-exit backstop so --metrics-out / --trace-out files are
   complete (snapshot flushed, trace array terminated) even when the
   run dies on an uncaught exception or a structured abort path that
   skips the normal teardown. Both sinks close idempotently. *)
let exit_hook = ref false

let register_exit_hook () =
  if not !exit_hook then begin
    exit_hook := true;
    at_exit detach
  end

let attach_jsonl file =
  close_jsonl ();
  sink := Some { oc = open_out file; epoch = now () };
  register_exit_hook ();
  enable ()

let attach_trace file =
  close_trace ();
  trace := Some (Chrome_trace.create file, now ());
  register_exit_hook ();
  enable ()

(* ---- spans ----------------------------------------------------------- *)

(* span_depth is declared next to [reset] above *)
let current_depth () = !span_depth

let span_agg name =
  match Hashtbl.find_opt reg.spans name with
  | Some t -> t
  | None ->
    let t = fresh_timer name in
    Hashtbl.add reg.spans name t;
    t

let span_stats name =
  match Hashtbl.find_opt reg.spans name with
  | Some t when t.calls > 0 -> Some (t.calls, t.total)
  | _ -> None

(* The depth decrement is the finaliser: even if a sink write raises
   (disk full, closed channel), the span stack stays balanced — the
   supervisor's retry ladders rely on every rung leaving the depth
   where it found it. *)
let close_span ?(error = false) name attrs t0 =
  Fun.protect
    ~finally:(fun () -> decr span_depth)
    (fun () ->
      let dur = now () -. t0 in
      timer_observe (span_agg name) dur;
      (match !sink with
      | None -> ()
      | Some s ->
        let base =
          [ ("ev", Json.Str "span"); ("name", Json.Str name);
            ("ts", Json.Float (t0 -. s.epoch)); ("dur", Json.Float dur);
            ("depth", Json.Int !span_depth) ]
        in
        let base =
          if error then base @ [ ("error", Json.Bool true) ] else base
        in
        let base =
          if attrs = [] then base else base @ [ ("attrs", Json.Obj attrs) ]
        in
        emit_line base);
      match !trace with
      | None -> ()
      | Some (w, epoch) ->
        let args =
          if error then ("error", Json.Bool true) :: attrs else attrs
        in
        Chrome_trace.complete w ~name ~cat:"cegar" ~ts:(t0 -. epoch) ~dur
          ~args ())

let with_span ?(attrs = []) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    Stdlib.incr span_depth;
    match f () with
    | v ->
      close_span name attrs t0;
      v
    | exception e ->
      close_span ~error:true name attrs t0;
      raise e
  end

(* ---- reporting ------------------------------------------------------- *)

let snapshot () =
  let counters = ref []
  and gauges = ref []
  and timers = ref []
  and hists = ref [] in
  List.iter
    (function
      | `C c -> counters := (c.c_name, Json.Int c.count) :: !counters
      | `G g ->
        gauges :=
          ( g.g_name,
            Json.Obj [ ("value", Json.Int g.value); ("peak", Json.Int g.peak) ]
          )
          :: !gauges
      | `T t ->
        timers :=
          ( t.t_name,
            Json.Obj
              [ ("calls", Json.Int t.calls); ("seconds", Json.Float t.total) ]
          )
          :: !timers
      | `H h ->
        hists :=
          ( h.h_name,
            Json.Obj
              [ ("count", Json.Int h.h_count); ("sum", Json.Float h.h_sum);
                ("max", Json.Float h.h_max);
                ("p50", Json.Float (histogram_quantile h 0.5));
                ("p90", Json.Float (histogram_quantile h 0.9)) ] )
          :: !hists)
    reg.order;
  let spans =
    Hashtbl.fold
      (fun name t acc ->
        ( name,
          Json.Obj
            [ ("calls", Json.Int t.calls); ("seconds", Json.Float t.total) ] )
        :: acc)
      reg.spans []
    |> List.sort compare
  in
  Json.Obj
    [ ("counters", Json.Obj !counters); ("gauges", Json.Obj !gauges);
      ("timers", Json.Obj !timers); ("hists", Json.Obj !hists);
      ("spans", Json.Obj spans) ]

let pp_report ppf () =
  let spans =
    Hashtbl.fold (fun _ t acc -> t :: acc) reg.spans []
    |> List.filter (fun t -> t.calls > 0)
    |> List.sort (fun a b -> compare b.total a.total)
  in
  Format.fprintf ppf "== telemetry ==========================================@.";
  if spans <> [] then begin
    Format.fprintf ppf "spans (wall time):@.";
    List.iter
      (fun t ->
        Format.fprintf ppf "  %-28s calls=%-6d total=%8.3fs max=%7.3fs@."
          t.t_name t.calls t.total t.max_dur)
      spans
  end;
  let timers =
    Hashtbl.fold (fun _ t acc -> t :: acc) reg.timers []
    |> List.filter (fun t -> t.calls > 0)
    |> List.sort (fun a b -> compare b.total a.total)
  in
  if timers <> [] then begin
    Format.fprintf ppf "timers:@.";
    List.iter
      (fun t ->
        Format.fprintf ppf "  %-28s calls=%-6d total=%8.3fs@." t.t_name
          t.calls t.total)
      timers
  end;
  let hists =
    Hashtbl.fold (fun _ h acc -> h :: acc) reg.hists []
    |> List.filter (fun h -> h.h_count > 0)
    |> List.sort (fun a b -> compare a.h_name b.h_name)
  in
  if hists <> [] then begin
    Format.fprintf ppf "histograms (p50/p90/max):@.";
    List.iter
      (fun h ->
        Format.fprintf ppf "  %-28s count=%-6d %8.2g %8.2g %8.2g@." h.h_name
          h.h_count
          (histogram_quantile h 0.5)
          (histogram_quantile h 0.9)
          h.h_max)
      hists
  end;
  let counters =
    Hashtbl.fold (fun _ c acc -> c :: acc) reg.counters []
    |> List.filter (fun c -> c.count <> 0)
    |> List.sort (fun a b -> compare a.c_name b.c_name)
  in
  if counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun c -> Format.fprintf ppf "  %-28s %d@." c.c_name c.count)
      counters
  end;
  (* derived: BDD op-cache hit rate, when the BDD layer is registered *)
  (match
     ( Hashtbl.find_opt reg.counters "bdd.cache_hits",
       Hashtbl.find_opt reg.counters "bdd.cache_misses" )
   with
  | Some h, Some m when h.count + m.count > 0 ->
    Format.fprintf ppf "  %-28s %.1f%% (%d/%d)@." "bdd.cache hit rate"
      (100.0 *. float_of_int h.count /. float_of_int (h.count + m.count))
      h.count (h.count + m.count)
  | _ -> ());
  let gauges =
    Hashtbl.fold (fun _ g acc -> g :: acc) reg.gauges []
    |> List.filter (fun g -> g.peak <> 0 || g.value <> 0)
    |> List.sort (fun a b -> compare a.g_name b.g_name)
  in
  if gauges <> [] then begin
    Format.fprintf ppf "gauges (last/peak):@.";
    List.iter
      (fun g ->
        Format.fprintf ppf "  %-28s %d / %d@." g.g_name g.value g.peak)
      gauges
  end;
  Format.fprintf ppf "=======================================================@."
