open Rfn_circuit

type v = V0 | V1 | VX

let of_bool b = if b then V1 else V0
let to_bool = function V0 -> Some false | V1 -> Some true | VX -> None

let conflicts a b =
  match (a, b) with V0, V1 | V1, V0 -> true | _, _ -> false

let pp ppf = function
  | V0 -> Format.pp_print_char ppf '0'
  | V1 -> Format.pp_print_char ppf '1'
  | VX -> Format.pp_print_char ppf 'X'

let vnot = function V0 -> V1 | V1 -> V0 | VX -> VX

(* n-ary AND over ternary values: 0 dominates, X taints. *)
let vand_fold value fanins =
  let rec go i acc =
    if i >= Array.length fanins then acc
    else
      match value fanins.(i) with
      | V0 -> V0
      | VX -> go (i + 1) VX
      | V1 -> go (i + 1) acc
  in
  go 0 V1

let vor_fold value fanins =
  let rec go i acc =
    if i >= Array.length fanins then acc
    else
      match value fanins.(i) with
      | V1 -> V1
      | VX -> go (i + 1) VX
      | V0 -> go (i + 1) acc
  in
  go 0 V0

let vxor_fold value fanins =
  let rec go i acc =
    if i >= Array.length fanins then acc
    else
      match (value fanins.(i), acc) with
      | VX, _ | _, VX -> VX
      | V1, a -> go (i + 1) (vnot a)
      | V0, a -> go (i + 1) a
  in
  go 0 V0

let eval_gate kind value fanins =
  match kind with
  | Gate.Not -> vnot (value fanins.(0))
  | Gate.Buf -> value fanins.(0)
  | Gate.And -> vand_fold value fanins
  | Gate.Nand -> vnot (vand_fold value fanins)
  | Gate.Or -> vor_fold value fanins
  | Gate.Nor -> vnot (vor_fold value fanins)
  | Gate.Xor -> vxor_fold value fanins
  | Gate.Xnor -> vnot (vxor_fold value fanins)
  | Gate.Mux -> (
    let d0 = value fanins.(1) and d1 = value fanins.(2) in
    match value fanins.(0) with
    | V0 -> d0
    | V1 -> d1
    | VX -> if d0 = d1 && d0 <> VX then d0 else VX)

let eval view ~free ~state =
  let c = view.Sview.circuit in
  let values = Array.make (Circuit.num_signals c) VX in
  let get s = values.(s) in
  Array.iter
    (fun s ->
      if Sview.mem view s then
        values.(s) <-
          (if Sview.is_free view s then free s
           else
             match Circuit.node c s with
             | Circuit.Const b -> of_bool b
             | Circuit.Reg _ -> state s
             | Circuit.Gate (kind, fanins) -> eval_gate kind get fanins
             | Circuit.Input -> assert false (* inputs are free in views *)))
    c.Circuit.topo;
  values

let step view ~free ~state =
  let values = eval view ~free ~state in
  let next r =
    match Circuit.node view.Sview.circuit r with
    | Circuit.Reg { next; _ } -> values.(next)
    | _ -> invalid_arg "Sim3v.step: not a register"
  in
  (values, next)

let run view ~init ~inputs ~cycles =
  let state = ref init in
  let frames = Array.make (cycles + 1) [||] in
  for cycle = 0 to cycles do
    let values, next =
      step view ~free:(fun s -> inputs ~cycle s) ~state:!state
    in
    frames.(cycle) <- values;
    state := next
  done;
  frames

let replay_concrete c trace ~bad =
  let view = Sview.whole c ~roots:[ bad ] in
  let k = Trace.length trace in
  let cube_value cube s ~default =
    match Cube.value cube s with Some b -> of_bool b | None -> default
  in
  let init r =
    match Circuit.node c r with
    | Circuit.Reg { init = `Zero; _ } -> V0
    | Circuit.Reg { init = `One; _ } -> V1
    | Circuit.Reg { init = `Free; _ } ->
      cube_value (Trace.state trace 0) r ~default:V0
    | _ -> VX
  in
  let inputs ~cycle s =
    if cycle < k then cube_value (Trace.input trace cycle) s ~default:V0
    else V0
  in
  let frames = run view ~init ~inputs ~cycles:(k - 1) in
  Array.exists (fun values -> values.(bad) = V1) frames
