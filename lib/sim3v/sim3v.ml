open Rfn_circuit
open Rfn_obs

type v = V0 | V1 | VX

let of_bool b = if b then V1 else V0
let to_bool = function V0 -> Some false | V1 -> Some true | VX -> None

let conflicts a b =
  match (a, b) with V0, V1 | V1, V0 -> true | _, _ -> false

let pp ppf = function
  | V0 -> Format.pp_print_char ppf '0'
  | V1 -> Format.pp_print_char ppf '1'
  | VX -> Format.pp_print_char ppf 'X'

let vnot = function V0 -> V1 | V1 -> V0 | VX -> VX

(* n-ary AND over ternary values: 0 dominates, X taints. *)
let vand_fold value fanins =
  let rec go i acc =
    if i >= Array.length fanins then acc
    else
      match value fanins.(i) with
      | V0 -> V0
      | VX -> go (i + 1) VX
      | V1 -> go (i + 1) acc
  in
  go 0 V1

let vor_fold value fanins =
  let rec go i acc =
    if i >= Array.length fanins then acc
    else
      match value fanins.(i) with
      | V1 -> V1
      | VX -> go (i + 1) VX
      | V0 -> go (i + 1) acc
  in
  go 0 V0

let vxor_fold value fanins =
  let rec go i acc =
    if i >= Array.length fanins then acc
    else
      match (value fanins.(i), acc) with
      | VX, _ | _, VX -> VX
      | V1, a -> go (i + 1) (vnot a)
      | V0, a -> go (i + 1) a
  in
  go 0 V0

let eval_gate kind value fanins =
  match kind with
  | Gate.Not -> vnot (value fanins.(0))
  | Gate.Buf -> value fanins.(0)
  | Gate.And -> vand_fold value fanins
  | Gate.Nand -> vnot (vand_fold value fanins)
  | Gate.Or -> vor_fold value fanins
  | Gate.Nor -> vnot (vor_fold value fanins)
  | Gate.Xor -> vxor_fold value fanins
  | Gate.Xnor -> vnot (vxor_fold value fanins)
  | Gate.Mux -> (
    let d0 = value fanins.(1) and d1 = value fanins.(2) in
    match value fanins.(0) with
    | V0 -> d0
    | V1 -> d1
    | VX -> if d0 = d1 && d0 <> VX then d0 else VX)

let eval view ~free ~state =
  let c = view.Sview.circuit in
  let values = Array.make (Circuit.num_signals c) VX in
  let get s = values.(s) in
  Array.iter
    (fun s ->
      if Sview.mem view s then
        values.(s) <-
          (if Sview.is_free view s then free s
           else
             match Circuit.node c s with
             | Circuit.Const b -> of_bool b
             | Circuit.Reg _ -> state s
             | Circuit.Gate (kind, fanins) -> eval_gate kind get fanins
             | Circuit.Input -> assert false (* inputs are free in views *)))
    c.Circuit.topo;
  values

let step view ~free ~state =
  let values = eval view ~free ~state in
  let next r =
    match Circuit.node view.Sview.circuit r with
    | Circuit.Reg { next; _ } -> values.(next)
    | _ -> invalid_arg "Sim3v.step: not a register"
  in
  (values, next)

let run view ~init ~inputs ~cycles =
  let state = ref init in
  let frames = Array.make (cycles + 1) [||] in
  for cycle = 0 to cycles do
    let values, next =
      step view ~free:(fun s -> inputs ~cycle s) ~state:!state
    in
    frames.(cycle) <- values;
    state := next
  done;
  frames

(* ------------------------------------------------------------------ *)
(* Bit-parallel packed ternary simulation                              *)
(* ------------------------------------------------------------------ *)

module Packed = struct
  (* One ternary value per bit lane, across two planes:
     [ones] has a lane's bit set iff the value is 1, [unks] iff it is
     X, and a lane that is clear in both planes is 0. The invariant
     [ones land unks = 0] holds for every word this module builds.

     Lanes fill the native OCaml int — [Sys.int_size] bits (63 on
     64-bit hosts), so every bit of the word is a usable lane and no
     masking is needed: [-1] is "all lanes". Boxed [Int64] would give
     the headline 64 but costs an allocation per gate per word; the
     unboxed 63-lane representation is strictly faster. *)

  let lanes = Sys.int_size

  type w = { ones : int; unks : int }

  let zero = { ones = 0; unks = 0 }
  let splat = function V0 -> zero | V1 -> { ones = -1; unks = 0 } | VX -> { ones = 0; unks = -1 }

  let get w lane =
    if w.ones land (1 lsl lane) <> 0 then V1
    else if w.unks land (1 lsl lane) <> 0 then VX
    else V0

  let set w lane v =
    let bit = 1 lsl lane in
    match v with
    | V0 -> { ones = w.ones land lnot bit; unks = w.unks land lnot bit }
    | V1 -> { ones = w.ones lor bit; unks = w.unks land lnot bit }
    | VX -> { ones = w.ones land lnot bit; unks = w.unks lor bit }

  let of_fun f =
    let w = ref zero in
    for lane = 0 to lanes - 1 do
      w := set !w lane (f lane)
    done;
    !w

  (* Plane of lanes holding 0. *)
  let zeros_plane ~ones ~unks = lnot (ones lor unks)

  let vnot w = { ones = zeros_plane ~ones:w.ones ~unks:w.unks; unks = w.unks }

  let vand a b =
    let ones = a.ones land b.ones in
    let zero =
      zeros_plane ~ones:a.ones ~unks:a.unks
      lor zeros_plane ~ones:b.ones ~unks:b.unks
    in
    { ones; unks = lnot (ones lor zero) }

  let vor a b =
    let ones = a.ones lor b.ones in
    let zero =
      zeros_plane ~ones:a.ones ~unks:a.unks
      land zeros_plane ~ones:b.ones ~unks:b.unks
    in
    { ones; unks = lnot (ones lor zero) }

  let vxor a b =
    let unks = a.unks lor b.unks in
    { ones = (a.ones lxor b.ones) land lnot unks; unks }

  let vmux sel d0 d1 =
    let s0 = zeros_plane ~ones:sel.ones ~unks:sel.unks in
    let d0z = zeros_plane ~ones:d0.ones ~unks:d0.unks in
    let d1z = zeros_plane ~ones:d1.ones ~unks:d1.unks in
    let ones =
      (s0 land d0.ones) lor (sel.ones land d1.ones)
      lor (sel.unks land d0.ones land d1.ones)
    in
    let zero =
      (s0 land d0z) lor (sel.ones land d1z) lor (sel.unks land d0z land d1z)
    in
    { ones; unks = lnot (ones lor zero) }

  let fold_w op unit_w value fanins =
    let acc = ref unit_w in
    for i = 0 to Array.length fanins - 1 do
      acc := op !acc (value fanins.(i))
    done;
    !acc

  let eval_gate kind value fanins =
    match kind with
    | Gate.Not -> vnot (value fanins.(0))
    | Gate.Buf -> value fanins.(0)
    | Gate.And -> fold_w vand (splat V1) value fanins
    | Gate.Nand -> vnot (fold_w vand (splat V1) value fanins)
    | Gate.Or -> fold_w vor (splat V0) value fanins
    | Gate.Nor -> vnot (fold_w vor (splat V0) value fanins)
    | Gate.Xor -> fold_w vxor (splat V0) value fanins
    | Gate.Xnor -> vnot (fold_w vxor (splat V0) value fanins)
    | Gate.Mux ->
      vmux (value fanins.(0)) (value fanins.(1)) (value fanins.(2))

  (* Per-signal planes for a whole view evaluation. Signals outside
     the view read as X in every lane, matching the scalar [eval]. *)
  type vec = { vones : int array; vunks : int array }

  let read vec s = { ones = vec.vones.(s); unks = vec.vunks.(s) }
  let read_lane vec s ~lane = get (read vec s) lane

  let c_packed_words = Telemetry.counter "sim.packed_words"

  let eval view ~free ~state =
    let c = view.Sview.circuit in
    let n = Circuit.num_signals c in
    let vones = Array.make n 0 and vunks = Array.make n (-1) in
    let store s (w : w) =
      vones.(s) <- w.ones;
      vunks.(s) <- w.unks
    in
    let get s = { ones = vones.(s); unks = vunks.(s) } in
    let words = ref 0 in
    Array.iter
      (fun s ->
        if Sview.mem view s then begin
          incr words;
          store s
            (if Sview.is_free view s then free s
             else
               match Circuit.node c s with
               | Circuit.Const b -> splat (of_bool b)
               | Circuit.Reg _ -> state s
               | Circuit.Gate (kind, fanins) -> eval_gate kind get fanins
               | Circuit.Input -> assert false (* inputs are free in views *))
        end)
      c.Circuit.topo;
    Telemetry.add c_packed_words !words;
    { vones; vunks }

  let step view ~free ~state =
    let vec = eval view ~free ~state in
    let next r =
      match Circuit.node view.Sview.circuit r with
      | Circuit.Reg { next; _ } -> read vec next
      | _ -> invalid_arg "Sim3v.Packed.step: not a register"
    in
    (vec, next)

  let run view ~init ~inputs ~cycles =
    let state = ref init in
    let frames =
      Array.make (cycles + 1) { vones = [||]; vunks = [||] }
    in
    for cycle = 0 to cycles do
      let vec, next =
        step view ~free:(fun s -> inputs ~cycle s) ~state:!state
      in
      frames.(cycle) <- vec;
      state := next
    done;
    frames
end

let replay_concrete c trace ~bad =
  let view = Sview.whole c ~roots:[ bad ] in
  let k = Trace.length trace in
  let cube_value cube s ~default =
    match Cube.value cube s with Some b -> of_bool b | None -> default
  in
  (* Deterministic single-pattern replay, run through the packed
     evaluator (lane 0; all lanes carry the same splatted value). The
     scalar evaluator above is kept byte-for-byte as the differential
     oracle for this path — see test_sim3v. *)
  let init r =
    Packed.splat
      (match Circuit.node c r with
      | Circuit.Reg { init = `Zero; _ } -> V0
      | Circuit.Reg { init = `One; _ } -> V1
      | Circuit.Reg { init = `Free; _ } ->
        cube_value (Trace.state trace 0) r ~default:V0
      | _ -> VX)
  in
  let inputs ~cycle s =
    Packed.splat
      (if cycle < k then cube_value (Trace.input trace cycle) s ~default:V0
       else V0)
  in
  let frames = Packed.run view ~init ~inputs ~cycles:(k - 1) in
  Array.exists
    (fun vec -> Packed.read_lane vec bad ~lane:0 = V1)
    frames
