(** Three-valued (0/1/X) gate-level simulation.

    RFN uses 3-valued simulation in Step 4: the abstract error trace is
    replayed step-by-step on the original design with every signal the
    trace does not pin set to the unknown value X, and registers whose
    simulated value *conflicts* with the trace (concrete 0 vs concrete
    1 — X conflicts with nothing) become crucial-register candidates.

    The same machinery validates concrete counterexamples (replay with
    unassigned inputs defaulted) and backs the ATPG engine's forward
    implication. *)

type v = V0 | V1 | VX

val of_bool : bool -> v
val to_bool : v -> bool option
val conflicts : v -> v -> bool
(** Both concrete and different; X never conflicts. *)

val pp : Format.formatter -> v -> unit

val eval_gate : Rfn_circuit.Gate.kind -> (int -> v) -> int array -> v
(** Ternary gate semantics: the output is concrete whenever it is
    determined by the concrete fanins (e.g. one 0 on an AND). *)

val eval :
  Rfn_circuit.Sview.t -> free:(int -> v) -> state:(int -> v) -> v array
(** Values of all signals of the view (signals outside are reported X).
    [free] values the view's free inputs, [state] its registers. *)

val step :
  Rfn_circuit.Sview.t ->
  free:(int -> v) ->
  state:(int -> v) ->
  v array * (int -> v)
(** One clock cycle: combinational values plus next state. The next
    state of a register is the value of its next-state input. *)

(** Bit-parallel packed ternary simulation: {!Packed.lanes} independent
    ternary patterns per word, in two planes ([ones] / [unks]; a lane
    clear in both planes holds 0), evaluated with word-wide logic ops.
    Lanes fill the native int ([Sys.int_size] = 63 bits on 64-bit
    hosts) so no per-gate boxing or masking occurs. Semantics are
    lane-wise identical to the scalar evaluator above, which remains
    the differential oracle. *)
module Packed : sig
  val lanes : int

  type w = { ones : int; unks : int }
  (** Invariant: [ones land unks = 0]. *)

  val zero : w
  (** All lanes 0. *)

  val splat : v -> w
  (** The same value in every lane. *)

  val get : w -> int -> v
  val set : w -> int -> v -> w

  val of_fun : (int -> v) -> w
  (** [of_fun f] has lane [i] holding [f i]. *)

  val eval_gate : Rfn_circuit.Gate.kind -> (int -> w) -> int array -> w
  (** Lane-wise {!Sim3v.eval_gate}. *)

  type vec = { vones : int array; vunks : int array }
  (** Per-signal planes of one combinational evaluation. *)

  val read : vec -> int -> w
  val read_lane : vec -> int -> lane:int -> v

  val eval :
    Rfn_circuit.Sview.t -> free:(int -> w) -> state:(int -> w) -> vec
  (** Packed {!Sim3v.eval}: signals outside the view read as X in all
      lanes. Bumps the [sim.packed_words] telemetry counter by the
      number of word evaluations. *)

  val step :
    Rfn_circuit.Sview.t ->
    free:(int -> w) ->
    state:(int -> w) ->
    vec * (int -> w)

  val run :
    Rfn_circuit.Sview.t ->
    init:(int -> w) ->
    inputs:(cycle:int -> int -> w) ->
    cycles:int ->
    vec array
end

(** Replaying traces on a design. *)

val run :
  Rfn_circuit.Sview.t ->
  init:(int -> v) ->
  inputs:(cycle:int -> int -> v) ->
  cycles:int ->
  v array array
(** [run view ~init ~inputs ~cycles] simulates [cycles] transitions and
    returns the per-cycle combinational values ([cycles + 1] arrays). *)

val replay_concrete :
  Rfn_circuit.Circuit.t -> Rfn_circuit.Trace.t -> bad:int -> bool
(** Deterministic replay of a (possibly partial) trace on the whole
    design: primary inputs take their trace value, defaulting to 0;
    registers start from their declared initial values, with [`Free]
    registers taking the value the trace's first state assigns (default
    0). Returns whether the [bad] signal is 1 at some cycle ≤ the
    trace length — i.e. whether the trace, completed with defaults,
    is a genuine counterexample. *)
