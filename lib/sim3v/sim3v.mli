(** Three-valued (0/1/X) gate-level simulation.

    RFN uses 3-valued simulation in Step 4: the abstract error trace is
    replayed step-by-step on the original design with every signal the
    trace does not pin set to the unknown value X, and registers whose
    simulated value *conflicts* with the trace (concrete 0 vs concrete
    1 — X conflicts with nothing) become crucial-register candidates.

    The same machinery validates concrete counterexamples (replay with
    unassigned inputs defaulted) and backs the ATPG engine's forward
    implication. *)

type v = V0 | V1 | VX

val of_bool : bool -> v
val to_bool : v -> bool option
val conflicts : v -> v -> bool
(** Both concrete and different; X never conflicts. *)

val pp : Format.formatter -> v -> unit

val eval_gate : Rfn_circuit.Gate.kind -> (int -> v) -> int array -> v
(** Ternary gate semantics: the output is concrete whenever it is
    determined by the concrete fanins (e.g. one 0 on an AND). *)

val eval :
  Rfn_circuit.Sview.t -> free:(int -> v) -> state:(int -> v) -> v array
(** Values of all signals of the view (signals outside are reported X).
    [free] values the view's free inputs, [state] its registers. *)

val step :
  Rfn_circuit.Sview.t ->
  free:(int -> v) ->
  state:(int -> v) ->
  v array * (int -> v)
(** One clock cycle: combinational values plus next state. The next
    state of a register is the value of its next-state input. *)

(** Replaying traces on a design. *)

val run :
  Rfn_circuit.Sview.t ->
  init:(int -> v) ->
  inputs:(cycle:int -> int -> v) ->
  cycles:int ->
  v array array
(** [run view ~init ~inputs ~cycles] simulates [cycles] transitions and
    returns the per-cycle combinational values ([cycles + 1] arrays). *)

val replay_concrete :
  Rfn_circuit.Circuit.t -> Rfn_circuit.Trace.t -> bad:int -> bool
(** Deterministic replay of a (possibly partial) trace on the whole
    design: primary inputs take their trace value, defaulting to 0;
    registers start from their declared initial values, with [`Free]
    registers taking the value the trace's first state assigns (default
    0). Returns whether the [bad] signal is 1 at some cycle ≤ the
    trace length — i.e. whether the trace, completed with defaults,
    is a genuine counterexample. *)
