(** Structured engine-failure reasons.

    Every engine of the multi-engine loop (the paper's central design:
    BDD model checking, BDD–ATPG hybrid trace extraction, sequential
    ATPG, bounded falsification) can hit a resource wall. The driver's
    supervisor decides per failure whether to retry with different
    resources, fall back to another engine, or give up — a decision that
    needs the {e kind} of failure, not a message string. This module is
    the shared taxonomy: which engine failed, in which phase of the
    CEGAR loop, on which resource, at which iteration, and after how
    many recovery attempts.

    The library sits below every engine ([Rfn_mc.Reach] aborts with a
    {!resource}, [Rfn_atpg.Atpg] aborts with a {!resource}, the hybrid
    engine raises one) and below the driver (whose [Aborted] outcome
    carries a full {!t}), so no layer ever matches on strings. *)

type engine =
  | Bdd_mc  (** symbolic fixpoint on the abstract model *)
  | Hybrid  (** BDD–ATPG trace extraction *)
  | Seq_atpg  (** sequential ATPG (concretization, refinement checks) *)
  | Bmc  (** bounded falsification fallback *)
  | Sat  (** incremental SAT bounded model checking *)
  | Cegar  (** the abstraction-refinement driver itself *)

type phase =
  | Abstract_mc  (** Step 2: prove or reach on the abstract model *)
  | Trace_extraction  (** Step 2: abstract error-trace extraction *)
  | Concretization  (** Step 3: guided search on the original design *)
  | Refinement  (** Step 4: crucial-register selection *)
  | Loop  (** the iteration/budget bookkeeping around the steps *)

type resource =
  | Nodes  (** BDD node budget *)
  | Steps  (** fixpoint step bound *)
  | Time  (** wall-clock budget *)
  | Backtracks  (** ATPG backtrack budget *)
  | Conflicts  (** SAT solver conflict budget *)
  | Cube_tries  (** hybrid cube-extension attempts exhausted *)
  | Iterations  (** CEGAR iteration bound *)
  | No_refinement  (** no crucial registers found — the loop is stuck *)
  | Injected  (** a fault-injection hook forced this failure *)
  | Worker_crashed
      (** an isolated engine worker process died (signal or nonzero
          exit) before producing a result *)
  | Worker_timeout
      (** the watchdog killed a worker that missed its hard wall-clock
          deadline or stopped heartbeating *)
  | Worker_oom
      (** the watchdog killed a worker whose resident set exceeded the
          configured cap *)
  | Worker_garbage
      (** a worker's output violated the wire protocol (unparseable or
          failed re-validation) — treated as a crash, never trusted *)
  | Invariant of string
      (** an internal invariant slipped; degraded to a reported failure
          instead of a crash (the message is diagnostic only — nothing
          may match on it) *)

type t = {
  engine : engine;
  phase : phase;
  resource : resource;
  iteration : int;  (** CEGAR iteration (1-based); 0 when not in a loop *)
  retries : int;  (** recovery attempts made before giving up *)
}

val make :
  ?iteration:int -> ?retries:int -> engine:engine -> phase:phase ->
  resource -> t
(** [iteration] and [retries] default to 0. *)

val retryable_resource : resource -> bool
(** Whether a failure on this resource is worth a retry or fallback
    with different resources: node, backtrack and cube budgets can be
    raised, an empty refinement admits a coarser fallback heuristic, an
    injected fault simulates one of those, and an invariant slip may be
    avoided by a different engine. Every [Worker_*] failure is
    retryable by construction — a dead, hung, bloated or babbling
    worker says nothing about the query itself, so the supervisor falls
    back to the in-process rungs. [Time], [Steps] and [Iterations] are
    terminal: more of the same will not help. *)

val retryable : t -> bool
(** [retryable_resource] of the failure's resource. *)

val engine_to_string : engine -> string
val phase_to_string : phase -> string
val resource_to_string : resource -> string

val to_string : t -> string
(** One human-readable line, e.g.
    ["BDD node limit in abstract model checking (BDD fixpoint engine, iteration 3, 2 recovery attempts)"]. *)

val pp : Format.formatter -> t -> unit
val pp_resource : Format.formatter -> resource -> unit

val to_attrs : t -> (string * Rfn_obs.Json.t) list
(** Telemetry span/event attributes:
    [engine], [phase], [resource], [iteration], [retries]. *)

val resource_tag : resource -> string
(** Stable machine-friendly tag (no spaces), e.g. ["worker_timeout"];
    also the wire encoding of a resource in the worker protocol.
    [Invariant _] tags as ["invariant"], dropping its message. *)

val resource_of_tag : string -> resource option
(** Inverse of {!resource_tag} for every message-free constructor;
    [None] for unknown tags and for ["invariant"] (whose message cannot
    be recovered from the tag alone). *)
