type engine = Bdd_mc | Hybrid | Seq_atpg | Bmc | Sat | Cegar

type phase =
  | Abstract_mc
  | Trace_extraction
  | Concretization
  | Refinement
  | Loop

type resource =
  | Nodes
  | Steps
  | Time
  | Backtracks
  | Conflicts
  | Cube_tries
  | Iterations
  | No_refinement
  | Injected
  | Worker_crashed
  | Worker_timeout
  | Worker_oom
  | Worker_garbage
  | Invariant of string

type t = {
  engine : engine;
  phase : phase;
  resource : resource;
  iteration : int;
  retries : int;
}

let make ?(iteration = 0) ?(retries = 0) ~engine ~phase resource =
  { engine; phase; resource; iteration; retries }

let retryable_resource = function
  | Nodes | Backtracks | Conflicts | Cube_tries | No_refinement | Injected
  | Worker_crashed | Worker_timeout | Worker_oom | Worker_garbage
  | Invariant _ ->
    true
  | Time | Steps | Iterations -> false

let retryable f = retryable_resource f.resource

let engine_to_string = function
  | Bdd_mc -> "BDD fixpoint engine"
  | Hybrid -> "hybrid engine"
  | Seq_atpg -> "sequential ATPG engine"
  | Bmc -> "BMC engine"
  | Sat -> "SAT engine"
  | Cegar -> "CEGAR driver"

let phase_to_string = function
  | Abstract_mc -> "abstract model checking"
  | Trace_extraction -> "trace extraction"
  | Concretization -> "concretization"
  | Refinement -> "refinement"
  | Loop -> "the refinement loop"

let resource_to_string = function
  | Nodes -> "BDD node limit"
  | Steps -> "fixpoint step limit"
  | Time -> "time limit"
  | Backtracks -> "backtrack limit"
  | Conflicts -> "conflict limit"
  | Cube_tries -> "cube-extension limit"
  | Iterations -> "iteration limit"
  | No_refinement -> "no crucial registers to add"
  | Injected -> "injected fault"
  | Worker_crashed -> "engine worker died"
  | Worker_timeout -> "engine worker deadline"
  | Worker_oom -> "engine worker memory cap"
  | Worker_garbage -> "engine worker protocol violation"
  | Invariant msg -> "internal: " ^ msg

let to_string f =
  let extras =
    (if f.iteration > 0 then [ Printf.sprintf "iteration %d" f.iteration ]
     else [])
    @
    if f.retries > 0 then
      [ Printf.sprintf "%d recovery attempt%s" f.retries
          (if f.retries = 1 then "" else "s") ]
    else []
  in
  Printf.sprintf "%s in %s (%s)"
    (resource_to_string f.resource)
    (phase_to_string f.phase)
    (String.concat ", " (engine_to_string f.engine :: extras))

let pp ppf f = Format.pp_print_string ppf (to_string f)
let pp_resource ppf r = Format.pp_print_string ppf (resource_to_string r)

(* Short machine-friendly tags for telemetry attributes (stable names,
   no spaces — dashboards key on them). *)
let engine_tag = function
  | Bdd_mc -> "bdd_mc"
  | Hybrid -> "hybrid"
  | Seq_atpg -> "seq_atpg"
  | Bmc -> "bmc"
  | Sat -> "sat"
  | Cegar -> "cegar"

let phase_tag = function
  | Abstract_mc -> "abstract_mc"
  | Trace_extraction -> "trace_extraction"
  | Concretization -> "concretization"
  | Refinement -> "refinement"
  | Loop -> "loop"

let resource_tag = function
  | Nodes -> "nodes"
  | Steps -> "steps"
  | Time -> "time"
  | Backtracks -> "backtracks"
  | Conflicts -> "conflicts"
  | Cube_tries -> "cube_tries"
  | Iterations -> "iterations"
  | No_refinement -> "no_refinement"
  | Injected -> "injected"
  | Worker_crashed -> "worker_crashed"
  | Worker_timeout -> "worker_timeout"
  | Worker_oom -> "worker_oom"
  | Worker_garbage -> "worker_garbage"
  | Invariant _ -> "invariant"

(* Inverse of [resource_tag] for the worker-protocol wire format.
   [Invariant] carries a message, so its tag round-trips through the
   separate error payload instead. *)
let resource_of_tag = function
  | "nodes" -> Some Nodes
  | "steps" -> Some Steps
  | "time" -> Some Time
  | "backtracks" -> Some Backtracks
  | "conflicts" -> Some Conflicts
  | "cube_tries" -> Some Cube_tries
  | "iterations" -> Some Iterations
  | "no_refinement" -> Some No_refinement
  | "injected" -> Some Injected
  | "worker_crashed" -> Some Worker_crashed
  | "worker_timeout" -> Some Worker_timeout
  | "worker_oom" -> Some Worker_oom
  | "worker_garbage" -> Some Worker_garbage
  | _ -> None

let to_attrs f =
  let open Rfn_obs.Json in
  [
    ("engine", Str (engine_tag f.engine));
    ("phase", Str (phase_tag f.phase));
    ("resource", Str (resource_tag f.resource));
    ("iteration", Int f.iteration);
    ("retries", Int f.retries);
  ]
