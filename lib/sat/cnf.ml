open Rfn_circuit
module Telemetry = Rfn_obs.Telemetry

let c_frames = Telemetry.counter "sat.frames_encoded"
let c_frames_reused = Telemetry.counter "sat.frames_reused"

type t = {
  solver : Solver.t;
  view : Sview.t;
  free_init : bool;
  tt : Solver.lit;  (* the constant-true literal *)
  mutable maps : int array array;  (* maps.(frame).(signal) = lit, -1 absent *)
  mutable nframes : int;
}

let create ?log_learnts ?(free_init = false) view =
  let solver = Solver.create ?log_learnts () in
  let tt = Solver.lit (Solver.new_var solver) true in
  Solver.add_clause solver [ tt ];
  { solver; view; free_init; tt; maps = [||]; nframes = 0 }

let solver t = t.solver
let view t = t.view
let frames t = t.nframes

(* ---- Tseitin gate encodings ------------------------------------------ *)

let fresh t = Solver.lit (Solver.new_var t.solver) true

(* [g <-> /\ lits], collapsing trivial arities. *)
let and_lits t lits =
  match lits with
  | [] -> t.tt
  | [ l ] -> l
  | lits ->
    let g = fresh t in
    List.iter (fun l -> Solver.add_clause t.solver [ Solver.neg g; l ]) lits;
    Solver.add_clause t.solver (g :: List.map Solver.neg lits);
    g

let or_lits t lits = Solver.neg (and_lits t (List.map Solver.neg lits))

(* [g <-> a xor b]. *)
let xor2 t a b =
  let g = fresh t in
  let s = t.solver in
  let n = Solver.neg in
  Solver.add_clause s [ n g; a; b ];
  Solver.add_clause s [ n g; n a; n b ];
  Solver.add_clause s [ g; n a; b ];
  Solver.add_clause s [ g; a; n b ];
  g

let xor_lits t lits =
  match lits with
  | [] -> Solver.neg t.tt
  | l :: rest -> List.fold_left (xor2 t) l rest

(* [g <-> if sel then a else b] (the Mux fanin order is
   [| sel; else; then |], as in [Gate.eval]). *)
let mux t sel b a =
  let g = fresh t in
  let s = t.solver in
  let n = Solver.neg in
  Solver.add_clause s [ n sel; n a; g ];
  Solver.add_clause s [ n sel; a; n g ];
  Solver.add_clause s [ sel; n b; g ];
  Solver.add_clause s [ sel; b; n g ];
  g

let gate_lit t kind args =
  match (kind : Gate.kind) with
  | Gate.Not -> Solver.neg args.(0)
  | Gate.Buf -> args.(0)
  | Gate.And -> and_lits t (Array.to_list args)
  | Gate.Nand -> Solver.neg (and_lits t (Array.to_list args))
  | Gate.Or -> or_lits t (Array.to_list args)
  | Gate.Nor -> Solver.neg (or_lits t (Array.to_list args))
  | Gate.Xor -> xor_lits t (Array.to_list args)
  | Gate.Xnor -> Solver.neg (xor_lits t (Array.to_list args))
  | Gate.Mux -> mux t args.(0) args.(1) args.(2)

(* ---- frame encoding --------------------------------------------------- *)

let encode_frame t frame =
  let c = t.view.Sview.circuit in
  let map = Array.make (Circuit.num_signals c) (-1) in
  Array.iter
    (fun s ->
      if Sview.mem t.view s then
        let l =
          if Sview.is_free t.view s then fresh t
          else
            match Circuit.node c s with
            | Circuit.Const b -> if b then t.tt else Solver.neg t.tt
            | Circuit.Reg { init; next } ->
              if frame = 0 then begin
                let v = fresh t in
                (if not t.free_init then
                   match init with
                   | `Zero -> Solver.add_clause t.solver [ Solver.neg v ]
                   | `One -> Solver.add_clause t.solver [ v ]
                   | `Free -> ());
                v
              end
              else
                (* the register output at frame [t] is the next-state
                   input at frame [t - 1], verbatim *)
                t.maps.(frame - 1).(next)
            | Circuit.Gate (kind, fanins) ->
              gate_lit t kind (Array.map (fun x -> map.(x)) fanins)
            | Circuit.Input ->
              (* inputs inside a view are free by construction *)
              assert false
        in
        map.(s) <- l)
    c.Circuit.topo;
  map

let extend t ~frames =
  if frames > t.nframes then begin
    Telemetry.add c_frames_reused t.nframes;
    let maps = Array.make frames [||] in
    Array.blit t.maps 0 maps 0 t.nframes;
    t.maps <- maps;
    for f = t.nframes to frames - 1 do
      t.maps.(f) <- encode_frame t f;
      Telemetry.incr c_frames
    done;
    t.nframes <- frames
  end
  else Telemetry.add c_frames_reused frames

let lit_of t ~frame s =
  if frame < 0 || frame >= t.nframes then
    invalid_arg
      (Printf.sprintf "Rfn_sat.Cnf.lit_of: frame %d not encoded (have %d)"
         frame t.nframes);
  let l = t.maps.(frame).(s) in
  if l < 0 then
    invalid_arg
      (Printf.sprintf "Rfn_sat.Cnf.lit_of: signal %d (%s) outside the view" s
         (Circuit.name t.view.Sview.circuit s));
  l

let lit_of_opt t ~frame s =
  if frame < 0 || frame >= t.nframes then None
  else
    let m = t.maps.(frame) in
    if s < 0 || s >= Array.length m then None
    else match m.(s) with l when l < 0 -> None | l -> Some l

let assumptions_of_pins t pins =
  List.map
    (fun (frame, s, v) ->
      let l = lit_of t ~frame s in
      if v then l else Solver.neg l)
    pins

let trace t ~frames =
  let cube signals frame =
    Cube.of_list
      (Array.to_list
         (Array.map
            (fun s ->
              (s, Solver.value_lit t.solver (lit_of t ~frame s)))
            signals))
  in
  let states =
    Array.init frames (fun j -> cube t.view.Sview.regs j)
  in
  let inputs =
    Array.init frames (fun j -> cube t.view.Sview.free_inputs j)
  in
  Trace.make ~states ~inputs
