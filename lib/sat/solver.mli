(** Incremental CDCL SAT solver.

    A small conflict-driven clause-learning solver in the MiniSat
    lineage (Eén & Sörensson), built for the bounded-model-checking
    backend: two-watched-literal propagation, first-UIP conflict
    analysis with clause learning, VSIDS-style variable activities with
    phase saving, Luby-sequence restarts, and activity-driven learned
    clause deletion.

    The solver is {e incremental}: clauses and variables may be added
    between [solve] calls, and each call takes a list of {e assumption}
    literals that hold for that call only. This is the single-instance
    formulation of Eén, Mishchenko & Amla: a BMC unrolling adds frame
    [k+1]'s clauses on top of the instance that already solved depth
    [k], keeps every learned clause, and re-targets the bad state with
    one assumption literal — nothing is ever re-encoded. *)

type t

type lit = int
(** A literal: variable [v] with sign, encoded as [2v] (positive) or
    [2v+1] (negated). Exposed as an [int] so encoders can store
    literals in dense arrays; construct them with {!lit} and {!neg}
    only. *)

val create : ?log_learnts:bool -> unit -> t
(** A solver with no variables and no clauses. With [log_learnts] every
    learned clause is also recorded for {!learnt_clauses} — used by the
    DRAT-style self-check in the test suite, off by default. *)

val new_var : t -> int
(** Allocate the next variable index (0-based). *)

val nvars : t -> int

val lit : int -> bool -> lit
(** [lit v sign] is [v] when [sign], [¬v] otherwise. *)

val neg : lit -> lit
val var_of : lit -> int
val sign_of : lit -> bool

val add_clause : t -> lit list -> unit
(** Add a clause over existing variables. Clauses are simplified
    against the top-level assignment (satisfied clauses dropped, false
    literals removed); an empty clause just marks the instance
    unsatisfiable. Raises [Invalid_argument] on a literal whose
    variable was never allocated. *)

type limits = { max_conflicts : int; max_seconds : float option }

val no_limits : limits
(** [max_int] conflicts, no time budget. *)

type result =
  | Sat  (** a model is available through {!value} *)
  | Unsat  (** unsatisfiable under the given assumptions *)
  | Unknown of Rfn_failure.resource
      (** a budget ran out first: [Conflicts] or [Time] *)

val solve : ?limits:limits -> ?assumptions:lit list -> t -> result
(** Solve the current clause set under the assumptions. The solver
    remains usable after any result; learned clauses are kept. *)

val value : t -> int -> bool
(** Model value of a variable after {!solve} returned [Sat]; undefined
    contents otherwise. *)

val value_lit : t -> lit -> bool

type stats = {
  conflicts : int;
  propagations : int;
  decisions : int;
  learned : int;  (** clauses learned (lifetime, including deleted) *)
  restarts : int;
  max_vars : int;
}

val stats : t -> stats
(** Lifetime totals for this instance. *)

val iter_clauses : t -> (lit array -> unit) -> unit
(** Iterate every clause currently attached to the instance — original
    and live learned clauses — each exactly once. The array is the
    solver's own storage: do not mutate or retain it. Top-level unit
    clauses are not included (they live in the trail, not the clause
    database). Exposed for the [RFN_CHECK] invariant checker. *)

val learnt_clauses : t -> lit list list
(** Every clause learned so far, oldest first — empty unless the solver
    was created with [~log_learnts:true]. *)
