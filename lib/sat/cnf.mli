(** Tseitin CNF encoding of time-frame-expanded subcircuit views.

    An unrolling owns one {!Solver.t} and encodes a {!Rfn_circuit.Sview}
    frame by frame: every signal of the view gets one literal per frame
    (gates via Tseitin variables, [Not]/[Buf]/constants as literal
    aliases, a register at frame [t > 0] as an alias of its next-state
    input's literal at frame [t - 1]), and frame-0 registers are clamped
    to their declared initial values by unit clauses (unless
    [~free_init:true]). The encoding is {e monotone}: deepening only
    appends clauses, so one instance serves every BMC depth and every
    guided-concretization query, keeping its learned clauses — the
    incremental formulation of Eén, Mishchenko & Amla. *)

type t

val create : ?log_learnts:bool -> ?free_init:bool -> Rfn_circuit.Sview.t -> t
(** An empty unrolling (no frames yet). [free_init] leaves frame-0
    registers unconstrained (default [false]: clamp to initial
    values). *)

val solver : t -> Solver.t
val view : t -> Rfn_circuit.Sview.t
val frames : t -> int
(** Number of frames encoded so far. *)

val extend : t -> frames:int -> unit
(** Encode up to [frames] frames (numbered [0 .. frames - 1]); frames
    already encoded are reused as-is (counted by the
    [sat.frames_reused] telemetry counter). *)

val lit_of : t -> frame:int -> int -> Solver.lit
(** The literal holding signal [s]'s value at [frame]. Raises
    [Invalid_argument] if the frame is not yet encoded or the signal is
    outside the view. *)

val lit_of_opt : t -> frame:int -> int -> Solver.lit option
(** Non-raising probe for {!lit_of}: [None] when the frame is not yet
    encoded or the signal carries no literal there. *)

val assumptions_of_pins : t -> (int * int * bool) list -> Solver.lit list
(** Translate ATPG-style pins [(frame, signal, value)] into assumption
    literals. *)

val trace : t -> frames:int -> Rfn_circuit.Trace.t
(** Read the solver's model back as an error trace over the view's
    registers and free inputs: [frames] state cubes and [frames] input
    cubes (the last one the final-cycle witness), mirroring the shape
    of [Rfn_atpg.Atpg.Sat] traces. Only meaningful right after
    {!Solver.solve} returned [Sat]. *)
