(* A MiniSat-style CDCL solver (Eén & Sörensson, SAT 2003), kept small
   but honest: two-watched-literal propagation, first-UIP learning,
   VSIDS activities with phase saving, Luby restarts, activity-driven
   learned-clause deletion, and incremental solving under assumptions
   (Eén–Mishchenko–Amla's single-instance formulation). *)

module Telemetry = Rfn_obs.Telemetry
module F = Rfn_failure

let c_conflicts = Telemetry.counter "sat.conflicts"
let c_propagations = Telemetry.counter "sat.propagations"
let c_learned = Telemetry.counter "sat.learned"
let c_restarts = Telemetry.counter "sat.restarts"
let c_solves = Telemetry.counter "sat.solves"

(* per-solve conflict burst: the distribution tells bursty guided
   queries apart from a steadily hard instance *)
let h_burst = Telemetry.histogram "sat.conflict_burst"

(* problem + live learned clauses; sampled by the resource sampler at
   phase boundaries *)
let g_clause_db = Telemetry.gauge "sat.clause_db"

type lit = int

let lit v sign = (v lsl 1) lor (if sign then 0 else 1)
let neg l = l lxor 1
let var_of l = l lsr 1
let sign_of l = l land 1 = 0

type clause = {
  lits : int array;
  mutable act : float;
  learnt : bool;
  mutable removed : bool;
}

(* Growable clause vectors for the watch lists and the learnt DB. *)
module Cvec = struct
  type t = { mutable data : clause array; mutable sz : int }

  let dummy =
    { lits = [||]; act = 0.0; learnt = false; removed = true }

  let create () = { data = Array.make 4 dummy; sz = 0 }

  let push v c =
    if v.sz = Array.length v.data then begin
      let data = Array.make (2 * v.sz) dummy in
      Array.blit v.data 0 data 0 v.sz;
      v.data <- data
    end;
    v.data.(v.sz) <- c;
    v.sz <- v.sz + 1
end

type t = {
  (* per-variable state, grown by doubling *)
  mutable assigns : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;
  mutable model : int array;
  mutable watches : Cvec.t array;  (* indexed by literal *)
  mutable heap : int array;  (* max-activity heap of variables *)
  mutable hsz : int;
  mutable hindex : int array;  (* heap position per var, -1 if absent *)
  mutable nvars : int;
  (* trail *)
  mutable trail : int array;
  mutable trail_sz : int;
  mutable trail_lim : int array;
  mutable trail_lim_sz : int;
  mutable qhead : int;
  (* clause DB *)
  learnts : Cvec.t;
  mutable nclauses : int;
  mutable max_learnts : float;
  mutable ok : bool;
  (* activities *)
  mutable var_inc : float;
  mutable cla_inc : float;
  (* stats *)
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable n_decisions : int;
  mutable n_learned : int;
  mutable n_restarts : int;
  (* DRAT-style learnt log (tests only) *)
  log_learnts : bool;
  mutable learnt_log : int array list;
}

type limits = { max_conflicts : int; max_seconds : float option }

let no_limits = { max_conflicts = max_int; max_seconds = None }

type result = Sat | Unsat | Unknown of F.resource

type stats = {
  conflicts : int;
  propagations : int;
  decisions : int;
  learned : int;
  restarts : int;
  max_vars : int;
}

let var_decay = 1.0 /. 0.95
let cla_decay = 1.0 /. 0.999

let create ?(log_learnts = false) () =
  {
    assigns = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 None;
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    seen = Array.make 16 false;
    model = Array.make 16 (-1);
    watches = Array.init 32 (fun _ -> Cvec.create ());
    heap = Array.make 16 0;
    hsz = 0;
    hindex = Array.make 16 (-1);
    nvars = 0;
    trail = Array.make 16 0;
    trail_sz = 0;
    trail_lim = Array.make 16 0;
    trail_lim_sz = 0;
    qhead = 0;
    learnts = Cvec.create ();
    nclauses = 0;
    max_learnts = 2000.0;
    ok = true;
    var_inc = 1.0;
    cla_inc = 1.0;
    n_conflicts = 0;
    n_propagations = 0;
    n_decisions = 0;
    n_learned = 0;
    n_restarts = 0;
    log_learnts;
    learnt_log = [];
  }

let nvars t = t.nvars

(* ---- heap (max-activity order) --------------------------------------- *)

let heap_lt t a b = t.activity.(a) > t.activity.(b)

let percolate_up t i0 =
  let x = t.heap.(i0) in
  let i = ref i0 in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    heap_lt t x t.heap.(p)
  do
    let p = (!i - 1) / 2 in
    t.heap.(!i) <- t.heap.(p);
    t.hindex.(t.heap.(p)) <- !i;
    i := p
  done;
  t.heap.(!i) <- x;
  t.hindex.(x) <- !i

let percolate_down t i0 =
  let x = t.heap.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue && (2 * !i) + 1 < t.hsz do
    let l = (2 * !i) + 1 in
    let c =
      if l + 1 < t.hsz && heap_lt t t.heap.(l + 1) t.heap.(l) then l + 1
      else l
    in
    if heap_lt t t.heap.(c) x then begin
      t.heap.(!i) <- t.heap.(c);
      t.hindex.(t.heap.(!i)) <- !i;
      i := c
    end
    else continue := false
  done;
  t.heap.(!i) <- x;
  t.hindex.(x) <- !i

let heap_insert t v =
  if t.hindex.(v) < 0 then begin
    t.heap.(t.hsz) <- v;
    t.hindex.(v) <- t.hsz;
    t.hsz <- t.hsz + 1;
    percolate_up t (t.hsz - 1)
  end

let heap_pop t =
  let x = t.heap.(0) in
  t.hindex.(x) <- -1;
  t.hsz <- t.hsz - 1;
  if t.hsz > 0 then begin
    t.heap.(0) <- t.heap.(t.hsz);
    t.hindex.(t.heap.(0)) <- 0;
    percolate_down t 0
  end;
  x

(* ---- variables -------------------------------------------------------- *)

let grow_var_arrays t =
  let cap = Array.length t.assigns in
  if t.nvars = cap then begin
    let ncap = 2 * cap in
    let grow a fill =
      let a' = Array.make ncap fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.assigns <- grow t.assigns (-1);
    t.level <- grow t.level 0;
    t.reason <- grow t.reason None;
    t.activity <- grow t.activity 0.0;
    t.polarity <- grow t.polarity false;
    t.seen <- grow t.seen false;
    t.model <- grow t.model (-1);
    t.heap <- grow t.heap 0;
    t.hindex <- grow t.hindex (-1);
    t.trail <- grow t.trail 0;
    t.trail_lim <- grow t.trail_lim 0;
    let w = Array.init (2 * ncap) (fun _ -> Cvec.create ()) in
    Array.blit t.watches 0 w 0 (2 * cap);
    t.watches <- w
  end

let new_var t =
  grow_var_arrays t;
  let v = t.nvars in
  t.nvars <- v + 1;
  heap_insert t v;
  v

let check_var t l =
  if var_of l >= t.nvars then
    invalid_arg
      (Printf.sprintf "Rfn_sat.Solver: literal %d names unallocated variable %d"
         l (var_of l))

(* ---- assignment ------------------------------------------------------- *)

(* 1 = true, 0 = false, -1 = unassigned *)
let lit_value t l =
  let a = t.assigns.(l lsr 1) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level t = t.trail_lim_sz

let enqueue t l reason =
  t.assigns.(l lsr 1) <- 1 - (l land 1);
  t.level.(l lsr 1) <- decision_level t;
  t.reason.(l lsr 1) <- reason;
  t.trail.(t.trail_sz) <- l;
  t.trail_sz <- t.trail_sz + 1

let new_decision_level t =
  t.trail_lim.(t.trail_lim_sz) <- t.trail_sz;
  t.trail_lim_sz <- t.trail_lim_sz + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    for c = t.trail_sz - 1 downto t.trail_lim.(lvl) do
      let l = t.trail.(c) in
      let v = l lsr 1 in
      t.polarity.(v) <- t.assigns.(v) = 1;
      t.assigns.(v) <- -1;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_sz <- t.trail_lim.(lvl);
    t.qhead <- t.trail_sz;
    t.trail_lim_sz <- lvl
  end

(* ---- activities ------------------------------------------------------- *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.hindex.(v) >= 0 then percolate_up t t.hindex.(v)

let cla_bump t c =
  c.act <- c.act +. t.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to t.learnts.Cvec.sz - 1 do
      let d = t.learnts.Cvec.data.(i) in
      d.act <- d.act *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

(* ---- clauses ---------------------------------------------------------- *)

let attach t c =
  Cvec.push t.watches.(neg c.lits.(0)) c;
  Cvec.push t.watches.(neg c.lits.(1)) c

let add_clause t lits =
  List.iter (check_var t) lits;
  if t.ok then begin
    assert (decision_level t = 0);
    (* simplify against the top-level assignment *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (neg l) lits) lits
      || List.exists (fun l -> lit_value t l = 1) lits
    in
    if not tautology then begin
      match List.filter (fun l -> lit_value t l <> 0) lits with
      | [] -> t.ok <- false
      | [ l ] -> enqueue t l None
      | lits ->
        let c =
          {
            lits = Array.of_list lits;
            act = 0.0;
            learnt = false;
            removed = false;
          }
        in
        t.nclauses <- t.nclauses + 1;
        attach t c
    end
  end

(* Every attached clause sits in exactly two watch lists,
   [watches.(neg lits.(0))] and [watches.(neg lits.(1))]; emitting on
   the first makes each clause appear once. *)
let iter_clauses t f =
  for p = 0 to Array.length t.watches - 1 do
    let ws = t.watches.(p) in
    for i = 0 to ws.Cvec.sz - 1 do
      let c = ws.Cvec.data.(i) in
      if (not c.removed) && neg c.lits.(0) = p then f c.lits
    done
  done

(* ---- propagation ------------------------------------------------------ *)

let propagate t =
  let confl = ref None in
  while !confl = None && t.qhead < t.trail_sz do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    let ws = t.watches.(p) in
    let n = ws.Cvec.sz in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = ws.Cvec.data.(!i) in
      incr i;
      if not c.removed then begin
        let lits = c.lits in
        (* put the falsified watch at position 1 *)
        if lits.(0) = neg p then begin
          lits.(0) <- lits.(1);
          lits.(1) <- neg p
        end;
        if lit_value t lits.(0) = 1 then begin
          (* satisfied by the other watch; keep watching *)
          ws.Cvec.data.(!j) <- c;
          incr j
        end
        else begin
          let len = Array.length lits in
          let k = ref 2 in
          while !k < len && lit_value t lits.(!k) = 0 do
            incr k
          done;
          if !k < len then begin
            (* found a replacement watch *)
            lits.(1) <- lits.(!k);
            lits.(!k) <- neg p;
            Cvec.push t.watches.(neg lits.(1)) c
          end
          else begin
            (* unit or conflicting *)
            ws.Cvec.data.(!j) <- c;
            incr j;
            if lit_value t lits.(0) = 0 then begin
              (* conflict: keep the remaining watchers and stop *)
              while !i < n do
                ws.Cvec.data.(!j) <- ws.Cvec.data.(!i);
                incr j;
                incr i
              done;
              t.qhead <- t.trail_sz;
              confl := Some c
            end
            else enqueue t lits.(0) (Some c)
          end
        end
      end
    done;
    ws.Cvec.sz <- !j
  done;
  !confl

(* ---- conflict analysis (first UIP) ------------------------------------ *)

let analyze t confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (t.trail_sz - 1) in
  let confl = ref (Some confl) in
  let stop = ref false in
  while not !stop do
    let c = match !confl with Some c -> c | None -> assert false in
    if c.learnt then cla_bump t c;
    for k = (if !p < 0 then 0 else 1) to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = q lsr 1 in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        var_bump t v;
        t.seen.(v) <- true;
        if t.level.(v) >= decision_level t then incr path
        else learnt := q :: !learnt
      end
    done;
    while not t.seen.(t.trail.(!index) lsr 1) do
      decr index
    done;
    p := t.trail.(!index);
    decr index;
    confl := t.reason.(!p lsr 1);
    t.seen.(!p lsr 1) <- false;
    decr path;
    if !path <= 0 then stop := true
  done;
  let learnt = Array.of_list (neg !p :: !learnt) in
  Array.iter (fun q -> t.seen.(q lsr 1) <- false) learnt;
  (* backtrack level: highest level below the asserting literal's *)
  let blevel = ref 0 in
  for k = 1 to Array.length learnt - 1 do
    let lv = t.level.(learnt.(k) lsr 1) in
    if lv > !blevel then begin
      blevel := lv;
      let tmp = learnt.(1) in
      learnt.(1) <- learnt.(k);
      learnt.(k) <- tmp
    end
  done;
  (learnt, !blevel)

let record_learnt t learnt =
  t.n_learned <- t.n_learned + 1;
  if t.log_learnts then t.learnt_log <- Array.copy learnt :: t.learnt_log;
  if Array.length learnt = 1 then begin
    cancel_until t 0;
    if lit_value t learnt.(0) = -1 then enqueue t learnt.(0) None
    else if lit_value t learnt.(0) = 0 then t.ok <- false
  end
  else begin
    let c = { lits = learnt; act = 0.0; learnt = true; removed = false } in
    cla_bump t c;
    attach t c;
    Cvec.push t.learnts c;
    enqueue t learnt.(0) (Some c)
  end

(* ---- learned-clause DB reduction -------------------------------------- *)

let is_reason t c =
  let v = c.lits.(0) lsr 1 in
  t.assigns.(v) >= 0
  && match t.reason.(v) with Some r -> r == c | None -> false

let reduce_db t =
  let l = t.learnts in
  let live = Array.sub l.Cvec.data 0 l.Cvec.sz in
  Array.sort (fun a b -> compare a.act b.act) live;
  let limit = Array.length live / 2 in
  l.Cvec.sz <- 0;
  Array.iteri
    (fun i c ->
      if i >= limit || Array.length c.lits <= 2 || is_reason t c then
        Cvec.push l c
      else c.removed <- true)
    live

(* ---- Luby restart sequence -------------------------------------------- *)

let luby i =
  (* the i-th term (1-based) of 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* ---- search ----------------------------------------------------------- *)

let solve ?(limits = no_limits) ?(assumptions = []) t =
  List.iter (check_var t) assumptions;
  Telemetry.incr c_solves;
  let started = Telemetry.now () in
  let c0 = t.n_conflicts
  and p0 = t.n_propagations
  and l0 = t.n_learned
  and r0 = t.n_restarts in
  let finish result =
    cancel_until t 0;
    Telemetry.add c_conflicts (t.n_conflicts - c0);
    Telemetry.add c_propagations (t.n_propagations - p0);
    Telemetry.add c_learned (t.n_learned - l0);
    Telemetry.add c_restarts (t.n_restarts - r0);
    Telemetry.observe h_burst (float_of_int (t.n_conflicts - c0));
    Telemetry.record g_clause_db (t.nclauses + t.learnts.Cvec.sz);
    result
  in
  if not t.ok then finish Unsat
  else begin
    let assumptions = Array.of_list assumptions in
    let out_of_time () =
      match limits.max_seconds with
      | None -> false
      | Some s -> Telemetry.now () -. started >= s
    in
    let conflict_c = ref 0 in
    let restart_limit = ref (100 * luby 0) in
    let result = ref None in
    while !result = None do
      match propagate t with
      | Some confl ->
        t.n_conflicts <- t.n_conflicts + 1;
        incr conflict_c;
        if decision_level t = 0 then begin
          t.ok <- false;
          result := Some Unsat
        end
        else begin
          let learnt, blevel = analyze t confl in
          cancel_until t blevel;
          record_learnt t learnt;
          t.var_inc <- t.var_inc *. var_decay;
          t.cla_inc <- t.cla_inc *. cla_decay;
          if t.n_conflicts - c0 >= limits.max_conflicts then
            result := Some (Unknown F.Conflicts)
          else if !conflict_c land 127 = 0 && out_of_time () then
            result := Some (Unknown F.Time)
        end
      | None ->
        if !conflict_c >= !restart_limit then begin
          t.n_restarts <- t.n_restarts + 1;
          conflict_c := 0;
          restart_limit := 100 * luby (t.n_restarts - r0);
          cancel_until t 0
        end
        else if
          float (t.learnts.Cvec.sz - (t.trail_sz - t.qhead))
          >= t.max_learnts
        then begin
          reduce_db t;
          t.max_learnts <- t.max_learnts *. 1.1
        end
        else if decision_level t < Array.length assumptions then begin
          (* place the next assumption as a decision *)
          let p = assumptions.(decision_level t) in
          match lit_value t p with
          | 1 -> new_decision_level t (* already holds: dummy level *)
          | 0 -> result := Some Unsat
          | _ ->
            new_decision_level t;
            enqueue t p None
        end
        else begin
          t.n_decisions <- t.n_decisions + 1;
          if t.n_decisions land 255 = 0 && out_of_time () then
            result := Some (Unknown F.Time)
          else begin
            (* VSIDS decision with saved phase *)
            let v = ref (-1) in
            while !v < 0 && t.hsz > 0 do
              let x = heap_pop t in
              if t.assigns.(x) < 0 then v := x
            done;
            if !v < 0 then begin
              (* full model *)
              Array.blit t.assigns 0 t.model 0 t.nvars;
              result := Some Sat
            end
            else begin
              new_decision_level t;
              enqueue t (lit !v t.polarity.(!v)) None
            end
          end
        end
    done;
    finish (match !result with Some r -> r | None -> assert false)
  end

let value t v = t.model.(v) = 1
let value_lit t l = t.model.(l lsr 1) lxor (l land 1) = 1

let stats t =
  {
    conflicts = t.n_conflicts;
    propagations = t.n_propagations;
    decisions = t.n_decisions;
    learned = t.n_learned;
    restarts = t.n_restarts;
    max_vars = t.nvars;
  }

let learnt_clauses t =
  List.rev_map Array.to_list t.learnt_log
