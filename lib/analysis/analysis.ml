module Circuit = Rfn_circuit.Circuit
module Sview = Rfn_circuit.Sview
module Bitset = Rfn_circuit.Bitset
module Sim3v = Rfn_sim3v.Sim3v
module Solver = Rfn_sat.Solver
module Cnf = Rfn_sat.Cnf
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Telemetry = Rfn_obs.Telemetry
module Json = Rfn_obs.Json

let c_candidates = Telemetry.counter "analysis.candidates"
let c_proved = Telemetry.counter "analysis.proved"
let c_refuted = Telemetry.counter "analysis.refuted"
let c_unknown = Telemetry.counter "analysis.unknown"
let c_clauses = Telemetry.counter "analysis.clauses_added"
let c_pruned = Telemetry.counter "analysis.pruned_queries"

type invariant =
  | Const_reg of { reg : int; value : bool }
  | Implication of { a : int; a_val : bool; b : int; b_val : bool }
  | Mutex of int array
  | One_hot of int array
  | Equiv of { keep : int; drop : int; phase : bool }

type config = {
  patterns : int;
  cycles : int;
  max_pair_regs : int;
  max_group : int;
  max_equiv : int;
  limits : Solver.limits;
  max_seconds : float option;
  seed : int;
}

let default_config =
  {
    patterns = 4;
    cycles = 24;
    max_pair_regs = 64;
    max_group = 8;
    max_equiv = 128;
    limits = { Solver.max_conflicts = 20_000; max_seconds = None };
    max_seconds = None;
    seed = 0;
  }

let quick_config =
  {
    default_config with
    patterns = 2;
    cycles = 12;
    max_equiv = 64;
    limits = { Solver.max_conflicts = 4_000; max_seconds = None };
  }

type stats = { candidates : int; proved : int; refuted : int; unknown : int }
type t = { invariants : invariant list; stats : stats; seconds : float }

let empty =
  {
    invariants = [];
    stats = { candidates = 0; proved = 0; refuted = 0; unknown = 0 };
    seconds = 0.;
  }

(* ------------------------------------------------------------------ *)
(* Invariant structure                                                 *)
(* ------------------------------------------------------------------ *)

let mutex_clauses rs =
  let cls = ref [] in
  let n = Array.length rs in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      cls := [ (rs.(i), false); (rs.(j), false) ] :: !cls
    done
  done;
  List.rev !cls

let clauses_of = function
  | Const_reg { reg; value } -> [ [ (reg, value) ] ]
  | Implication { a; a_val; b; b_val } -> [ [ (a, not a_val); (b, b_val) ] ]
  | Mutex rs -> mutex_clauses rs
  | One_hot rs ->
    mutex_clauses rs @ [ Array.to_list (Array.map (fun r -> (r, true)) rs) ]
  | Equiv { keep; drop; phase } ->
    (* drop = keep xor phase *)
    [ [ (keep, not phase); (drop, false) ]; [ (keep, phase); (drop, true) ] ]

let signals_of = function
  | Const_reg { reg; _ } -> [ reg ]
  | Implication { a; b; _ } -> if a <= b then [ a; b ] else [ b; a ]
  | Mutex rs | One_hot rs -> Array.to_list rs
  | Equiv { keep; drop; _ } ->
    if keep <= drop then [ keep; drop ] else [ drop; keep ]

let describe c inv =
  let name s = Circuit.name c s in
  match inv with
  | Const_reg { reg; value } ->
    Printf.sprintf "register %S is constant %d" (name reg)
      (if value then 1 else 0)
  | Implication { a; a_val; b; b_val } ->
    Printf.sprintf "%S=%d implies %S=%d" (name a)
      (if a_val then 1 else 0)
      (name b)
      (if b_val then 1 else 0)
  | Mutex rs ->
    Printf.sprintf "mutex {%s}"
      (String.concat ", " (Array.to_list (Array.map name rs)))
  | One_hot rs ->
    Printf.sprintf "one-hot {%s}"
      (String.concat ", " (Array.to_list (Array.map name rs)))
  | Equiv { keep; drop; phase } ->
    Printf.sprintf "%S always equals %s%S" (name drop)
      (if phase then "the complement of " else "")
      (name keep)

let holds t ~state ~values =
  let value inv s =
    match inv with
    | Equiv _ -> values s
    | _ -> state s
  in
  List.for_all
    (fun inv ->
      List.for_all
        (fun clause ->
          List.exists (fun (s, p) -> value inv s = p) clause)
        (clauses_of inv))
    t.invariants

(* ------------------------------------------------------------------ *)
(* Ternary constant fixpoint (abstract interpretation, constant       *)
(* domain): start from every register with a concrete initial value    *)
(* and drop any whose next-state function, evaluated with candidates   *)
(* at their initial values and everything else X, can move.            *)
(* ------------------------------------------------------------------ *)

let ternary_constants c =
  let n = Circuit.num_signals c in
  let candidate = Bitset.create n in
  Array.iter
    (fun r ->
      match Circuit.node c r with
      | Circuit.Reg { init = `Zero | `One; _ } -> Bitset.add candidate r
      | _ -> ())
    c.Circuit.registers;
  let init_value r = Circuit.initial_state c ~free:(fun _ -> false) r in
  let values = Array.make n Sim3v.VX in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun s ->
        values.(s) <-
          (match Circuit.node c s with
          | Circuit.Input -> Sim3v.VX
          | Circuit.Const b -> Sim3v.of_bool b
          | Circuit.Reg _ ->
            if Bitset.mem candidate s then Sim3v.of_bool (init_value s)
            else Sim3v.VX
          | Circuit.Gate (kind, fanins) ->
            Sim3v.eval_gate kind (fun x -> values.(x)) fanins))
      c.Circuit.topo;
    Bitset.iter
      (fun r ->
        match Circuit.node c r with
        | Circuit.Reg { next; _ } ->
          if values.(next) <> Sim3v.of_bool (init_value r) then begin
            Bitset.remove candidate r;
            changed := true
          end
        | _ -> ())
      candidate
  done;
  candidate

(* ------------------------------------------------------------------ *)
(* Packed random simulation: signatures and register value words       *)
(* ------------------------------------------------------------------ *)

let lane_mask =
  if Sim3v.Packed.lanes >= Sys.int_size then -1
  else (1 lsl Sim3v.Packed.lanes) - 1

(* [patterns * (cycles + 1)] concrete words per signal; all lanes are
   concrete (free-initial registers and inputs take random values), so
   the [unks] plane is identically 0 and signatures read [vones]. *)
let simulate cfg c =
  let st = Random.State.make [| cfg.seed; Circuit.num_signals c |] in
  let random_word () =
    let a = Random.State.bits st in
    let b = Random.State.bits st in
    let c = Random.State.bits st in
    ((a lsl 40) lxor (b lsl 20) lxor c) land lane_mask
  in
  let view = Sview.whole c ~roots:(List.map snd c.Circuit.outputs) in
  let runs =
    Array.init cfg.patterns (fun _ ->
        let init s =
          match Circuit.node c s with
          | Circuit.Reg { init = `Zero; _ } -> Sim3v.Packed.zero
          | Circuit.Reg { init = `One; _ } -> Sim3v.Packed.splat Sim3v.V1
          | _ -> { Sim3v.Packed.ones = random_word (); unks = 0 }
        in
        let inputs ~cycle:_ _ =
          { Sim3v.Packed.ones = random_word (); unks = 0 }
        in
        Sim3v.Packed.run view ~init ~inputs ~cycles:cfg.cycles)
  in
  (* words.(p).(cy).vones.(s) is signal s's 63 lanes in run p, cycle cy *)
  runs

(* ------------------------------------------------------------------ *)
(* Candidate mining                                                    *)
(* ------------------------------------------------------------------ *)

(* Equivalence candidates by simulation signature: signals whose value
   words agree in every lane of every cycle of every run (or disagree
   everywhere: complement). Hash-consed per canonical phase; collisions
   only waste a SAT query. *)
let mine_equivs cfg c (runs : Sim3v.Packed.vec array array) =
  let mix h w = (h * 0x10_0000_01b3) lxor w in
  let sig_of s =
    Array.fold_left
      (fun h run ->
        Array.fold_left (fun h vec -> mix h vec.Sim3v.Packed.vones.(s)) h run)
      0x8112_9732 runs
  and cosig_of s =
    Array.fold_left
      (fun h run ->
        Array.fold_left
          (fun h vec -> mix h (lnot vec.Sim3v.Packed.vones.(s) land lane_mask))
          h run)
      0x8112_9732 runs
  in
  let classes = Hashtbl.create 997 in
  let pairs = ref [] and count = ref 0 in
  Array.iter
    (fun s ->
      match Circuit.node c s with
      | Circuit.Input | Circuit.Const _ -> ()
      | Circuit.Gate _ | Circuit.Reg _ ->
        if !count < cfg.max_equiv then begin
          let h = sig_of s and ch = cosig_of s in
          let key = min h ch and phase_of_key = h > ch in
          match Hashtbl.find_opt classes key with
          | None -> Hashtbl.add classes key (s, phase_of_key)
          | Some (keep, keep_phase) ->
            (* same canonical class: drop = keep xor (phase_keep <> phase_s) *)
            incr count;
            pairs :=
              Equiv { keep; drop = s; phase = keep_phase <> phase_of_key }
              :: !pairs
        end)
    c.Circuit.topo;
  List.rev !pairs

(* Pairwise register domain: which of the four value combinations each
   register pair exhibits under simulation. One missing combination is
   an implication candidate; a never-both-1 graph seeds mutex / one-hot
   groups. *)
let mine_pairs cfg c (runs : Sim3v.Packed.vec array array) ~skip =
  let regs =
    Array.of_list
      (List.filteri
         (fun i _ -> i < cfg.max_pair_regs)
         (List.filter
            (fun r -> not (Bitset.mem skip r))
            (Array.to_list c.Circuit.registers)))
  in
  let n = Array.length regs in
  if n < 2 then []
  else begin
    (* state words of register k, flattened over runs and cycles *)
    let words =
      Array.map
        (fun r ->
          Array.concat
            (Array.to_list
               (Array.map
                  (fun run ->
                    Array.map (fun vec -> vec.Sim3v.Packed.vones.(r)) run)
                  runs)))
        regs
    in
    let seen = Array.make_matrix n n 0 in
    let nwords = Array.length words.(0) in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let m = ref 0 in
        let wi = words.(i) and wj = words.(j) in
        (let k = ref 0 in
         while !m <> 0b1111 && !k < nwords do
           let a = wi.(!k) and b = wj.(!k) in
           if a land b <> 0 then m := !m lor 0b1000;
           if a land (lnot b) land lane_mask <> 0 then m := !m lor 0b0100;
           if lnot a land b land lane_mask <> 0 then m := !m lor 0b0010;
           if lnot a land lnot b land lane_mask <> 0 then m := !m lor 0b0001;
           incr k
         done);
        seen.(i).(j) <- !m
      done
    done;
    (* greedy mutex groups over the never-both-1 graph *)
    let never11 i j = seen.(min i j).(max i j) land 0b1000 = 0 in
    let grouped = Array.make n false in
    let groups = ref [] in
    for i = 0 to n - 1 do
      if not grouped.(i) then begin
        let members = ref [ i ] in
        for j = i + 1 to n - 1 do
          if
            (not grouped.(j))
            && List.length !members < cfg.max_group
            && List.for_all (fun k -> never11 k j) !members
          then members := j :: !members
        done;
        if List.length !members >= 2 then begin
          List.iter (fun k -> grouped.(k) <- true) !members;
          groups := List.rev !members :: !groups
        end
      end
    done;
    let group_invs =
      List.rev_map
        (fun members ->
          let rs = Array.of_list (List.map (fun k -> regs.(k)) members) in
          Array.sort compare rs;
          (* one-hot if additionally some member is 1 in every observed
             state: the all-0 lanes are those clear in every member *)
          let all_zero_somewhere =
            let some = ref false in
            for w = 0 to nwords - 1 do
              let ors =
                List.fold_left (fun acc k -> acc lor words.(k).(w)) 0 members
              in
              if lnot ors land lane_mask <> 0 then some := true
            done;
            !some
          in
          if all_zero_somewhere then Mutex rs else One_hot rs)
        !groups
    in
    (* implication candidates: exactly one combination missing, and the
       pair not already inside a mutex group (its clause would repeat) *)
    let imps = ref [] in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        if not (grouped.(i) && grouped.(j)) then begin
          let a = regs.(i) and b = regs.(j) in
          match seen.(i).(j) with
          | 0b0111 ->
            imps := Implication { a; a_val = true; b; b_val = false } :: !imps
          | 0b1011 ->
            imps := Implication { a; a_val = true; b; b_val = true } :: !imps
          | 0b1101 ->
            imps := Implication { a; a_val = false; b; b_val = false } :: !imps
          | 0b1110 ->
            imps := Implication { a; a_val = false; b; b_val = true } :: !imps
          | _ -> ()
        end
      done
    done;
    group_invs @ List.rev !imps
  end

(* ------------------------------------------------------------------ *)
(* Inductive checking                                                  *)
(* ------------------------------------------------------------------ *)

(* Assumption literals forcing clause [cls] false at [frame]; None when
   some literal is not encoded there (candidate is then dropped). *)
let negate_clause cnf ~frame cls =
  let rec go acc = function
    | [] -> Some acc
    | (s, p) :: rest -> (
      match Cnf.lit_of_opt cnf ~frame s with
      | None -> None
      | Some l -> go ((if p then Solver.neg l else l) :: acc) rest)
  in
  go [] cls

(* Base case: on a one-frame unrolling clamped to the initial states,
   no assignment may falsify any clause of the candidate. *)
let base_holds limits cnf0 inv =
  let solver = Cnf.solver cnf0 in
  let rec check = function
    | [] -> `Proved
    | cls :: rest -> (
      match negate_clause cnf0 ~frame:0 cls with
      | None -> `Refuted
      | Some assumptions -> (
        match Solver.solve ~limits ~assumptions solver with
        | Solver.Unsat -> check rest
        | Solver.Sat -> `Refuted
        | Solver.Unknown _ -> `Unknown))
  in
  check (clauses_of inv)

(* Mutual induction on a two-frame free-initial unrolling: one guard
   literal activates each surviving candidate's clauses at frame 0;
   candidate [i] fails if some model of the guarded hypotheses
   falsifies one of its clauses at frame 1. A counter-model refutes
   every candidate it violates (van Eijk), then the survivors re-check
   until a full pass holds. *)
let induction_step limits cnf2 candidates =
  let solver = Cnf.solver cnf2 in
  let n = Array.length candidates in
  let guards =
    Array.map
      (fun inv ->
        let g = Solver.lit (Solver.new_var solver) true in
        List.iter
          (fun cls ->
            match negate_clause cnf2 ~frame:0 cls with
            | None -> ()
            | Some negs ->
              (* negs are the clause's literals negated: negate back *)
              Solver.add_clause solver
                (Solver.neg g :: List.map Solver.neg negs))
          (clauses_of inv);
        g)
      candidates
  in
  let status = Array.make n `Active in
  let refute_under_model () =
    (* the model falsifies the hypotheses of nothing at frame 0 and
       may falsify several candidates at frame 1: drop them all *)
    Array.iteri
      (fun j inv ->
        if status.(j) = `Active then
          let violated =
            List.exists
              (fun cls ->
                match negate_clause cnf2 ~frame:1 cls with
                | None -> true
                | Some negs ->
                  List.for_all (fun l -> Solver.value_lit solver l) negs)
              (clauses_of inv)
          in
          if violated then status.(j) <- `Refuted)
      candidates
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let assumptions () =
      let acc = ref [] in
      Array.iteri
        (fun j g -> if status.(j) = `Active then acc := g :: !acc)
        guards;
      !acc
    in
    Array.iteri
      (fun j inv ->
        if status.(j) = `Active then
          let rec check = function
            | [] -> ()
            | cls :: rest -> (
              match negate_clause cnf2 ~frame:1 cls with
              | None ->
                status.(j) <- `Refuted;
                changed := true
              | Some negs -> (
                match
                  Solver.solve ~limits
                    ~assumptions:(negs @ assumptions ())
                    solver
                with
                | Solver.Unsat -> check rest
                | Solver.Sat ->
                  status.(j) <- `Refuted;
                  refute_under_model ();
                  changed := true
                | Solver.Unknown _ ->
                  status.(j) <- `Unknown;
                  changed := true))
          in
          check (clauses_of inv))
      candidates
  done;
  status

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) c =
  Telemetry.with_span "analysis.run" (fun () ->
      let started = Telemetry.now () in
      let out_of_time () =
        match config.max_seconds with
        | Some b -> Telemetry.now () -. started > b
        | None -> false
      in
      let const_regs = ternary_constants c in
      let runs = simulate config c in
      let const_candidates =
        List.filter_map
          (fun r ->
            match Circuit.node c r with
            | Circuit.Reg { init = (`Zero | `One) as i; _ } ->
              if Bitset.mem const_regs r then
                Some (Const_reg { reg = r; value = i = `One })
              else begin
                (* simulation-stuck register the ternary fixpoint could
                   not decide: still worth an inductive attempt *)
                let stuck v =
                  Array.for_all
                    (fun run ->
                      Array.for_all
                        (fun vec ->
                          vec.Sim3v.Packed.vones.(r)
                          = (if v then lane_mask else 0))
                        run)
                    runs
                in
                if stuck true then Some (Const_reg { reg = r; value = true })
                else if stuck false then
                  Some (Const_reg { reg = r; value = false })
                else None
              end
            | _ -> None)
          (Array.to_list c.Circuit.registers)
      in
      let const_set = Bitset.create (Circuit.num_signals c) in
      List.iter
        (function
          | Const_reg { reg; _ } -> Bitset.add const_set reg
          | _ -> ())
        const_candidates;
      let pair_candidates = mine_pairs config c runs ~skip:const_set in
      let equiv_candidates =
        List.filter
          (function
            | Equiv { keep; drop; _ } ->
              not (Bitset.mem const_set keep || Bitset.mem const_set drop)
            | _ -> true)
          (mine_equivs config c runs)
      in
      let candidates =
        Array.of_list (const_candidates @ equiv_candidates @ pair_candidates)
      in
      Telemetry.add c_candidates (Array.length candidates);
      let view = Sview.whole c ~roots:(List.map snd c.Circuit.outputs) in
      let refuted = ref 0 and unknown = ref 0 in
      let proven =
        if Array.length candidates = 0 then []
        else begin
          (* base case *)
          let cnf0 = Cnf.create view in
          Cnf.extend cnf0 ~frames:1;
          let base = Array.make (Array.length candidates) `Proved in
          Array.iteri
            (fun i inv ->
              if out_of_time () then base.(i) <- `Unknown
              else base.(i) <- base_holds config.limits cnf0 inv)
            candidates;
          let survivors = ref [] in
          Array.iteri
            (fun i inv ->
              match base.(i) with
              | `Proved -> survivors := inv :: !survivors
              | `Refuted -> incr refuted
              | `Unknown -> incr unknown)
            candidates;
          let survivors = Array.of_list (List.rev !survivors) in
          if Array.length survivors = 0 || out_of_time () then begin
            unknown := !unknown + Array.length survivors;
            []
          end
          else begin
            (* inductive step *)
            let cnf2 = Cnf.create ~free_init:true view in
            Cnf.extend cnf2 ~frames:2;
            let status = induction_step config.limits cnf2 survivors in
            let proven = ref [] in
            Array.iteri
              (fun i inv ->
                match status.(i) with
                | `Active -> proven := inv :: !proven
                | `Refuted -> incr refuted
                | `Unknown -> incr unknown)
              survivors;
            List.rev !proven
          end
        end
      in
      Telemetry.add c_proved (List.length proven);
      Telemetry.add c_refuted !refuted;
      Telemetry.add c_unknown !unknown;
      {
        invariants = proven;
        stats =
          {
            candidates = Array.length candidates;
            proved = List.length proven;
            refuted = !refuted;
            unknown = !unknown;
          };
        seconds = Telemetry.now () -. started;
      })

(* ------------------------------------------------------------------ *)
(* Consumers                                                           *)
(* ------------------------------------------------------------------ *)

let constraint_bdd t vm =
  let man = Varmap.man vm in
  let lit_bdd (s, p) =
    match Varmap.cur_var_opt vm s with
    | None -> None
    | Some v -> Some (if p then Bdd.var man v else Bdd.nvar man v)
  in
  List.fold_left
    (fun acc inv ->
      let in_view =
        List.for_all
          (fun s -> Varmap.cur_var_opt vm s <> None)
          (signals_of inv)
      in
      if not in_view then acc
      else
        List.fold_left
          (fun acc cls ->
            let disj =
              List.fold_left
                (fun d l ->
                  match lit_bdd l with
                  | Some b -> Bdd.dor man d b
                  | None -> d)
                (Bdd.zero man) cls
            in
            Bdd.dand man acc disj)
          acc (clauses_of inv))
    (Bdd.one man) t.invariants

let assume_frame t cnf ~frame =
  let solver = Cnf.solver cnf in
  let added = ref 0 in
  List.iter
    (fun inv ->
      List.iter
        (fun cls ->
          let lits =
            List.map
              (fun (s, p) ->
                match Cnf.lit_of_opt cnf ~frame s with
                | Some l -> Some (if p then l else Solver.neg l)
                | None -> None)
              cls
          in
          if List.for_all Option.is_some lits then begin
            Solver.add_clause solver (List.map Option.get lits);
            incr added
          end)
        (clauses_of inv))
    t.invariants;
  Telemetry.add c_clauses !added;
  !added

let refutes_pins t pins =
  (* group register pins by frame, then ask whether the pinned values
     alone falsify some clause-set of an invariant: every clause of the
     invariant needs at least one literal that is pinned opposite in
     that frame... a single falsified clause suffices (the invariant is
     a conjunction). *)
  let by_frame = Hashtbl.create 7 in
  List.iter
    (fun (f, s, v) ->
      let tbl =
        match Hashtbl.find_opt by_frame f with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 17 in
          Hashtbl.add by_frame f tbl;
          tbl
      in
      Hashtbl.replace tbl s v)
    pins;
  let doomed =
    Hashtbl.fold
      (fun _ tbl acc ->
        acc
        || List.exists
             (fun inv ->
               List.exists
                 (fun cls ->
                   List.for_all
                     (fun (s, p) ->
                       match Hashtbl.find_opt tbl s with
                       | Some v -> v = not p
                       | None -> false)
                     cls)
                 (clauses_of inv))
             t.invariants)
      by_frame false
  in
  if doomed then Telemetry.incr c_pruned;
  doomed

let equiv_pairs t =
  List.filter_map
    (function
      | Equiv { keep; drop; phase } -> Some (keep, drop, phase)
      | _ -> None)
    t.invariants

let to_json t =
  let inv_json inv =
    let kind, fields =
      match inv with
      | Const_reg { reg; value } ->
        ("const-reg", [ ("reg", Json.Int reg); ("value", Json.Bool value) ])
      | Implication { a; a_val; b; b_val } ->
        ( "implication",
          [
            ("a", Json.Int a);
            ("a_val", Json.Bool a_val);
            ("b", Json.Int b);
            ("b_val", Json.Bool b_val);
          ] )
      | Mutex rs ->
        ( "mutex",
          [
            ( "regs",
              Json.List (Array.to_list (Array.map (fun r -> Json.Int r) rs))
            );
          ] )
      | One_hot rs ->
        ( "one-hot",
          [
            ( "regs",
              Json.List (Array.to_list (Array.map (fun r -> Json.Int r) rs))
            );
          ] )
      | Equiv { keep; drop; phase } ->
        ( "equiv",
          [
            ("keep", Json.Int keep);
            ("drop", Json.Int drop);
            ("phase", Json.Bool phase);
          ] )
    in
    Json.Obj (("kind", Json.Str kind) :: fields)
  in
  Json.Obj
    [
      ("candidates", Json.Int t.stats.candidates);
      ("proved", Json.Int t.stats.proved);
      ("refuted", Json.Int t.stats.refuted);
      ("unknown", Json.Int t.stats.unknown);
      ("seconds", Json.Float t.seconds);
      ("invariants", Json.List (List.map inv_json t.invariants));
    ]
