(** Static invariant inference over the concrete netlist.

    Runs before CEGAR starts and hands every downstream engine a set of
    {e proven} facts about the design's reachable states:

    - an abstract-interpretation fixpoint over a per-register product
      domain — ternary constants (generalizing the lint [const-reg]
      prop), Boolean implication pairs, and one-hot / mutex register
      groups,
    - a SAT-sweeping pass: structural signatures from
      {!Rfn_sim3v.Sim3v.Packed} random-pattern simulation propose gate
      and register equivalence candidates.

    Simulation and the ternary fixpoint only {e propose}. Every
    candidate is then checked {e inductively} on the concrete design
    with the in-house {!Rfn_sat.Solver} — base case on a one-frame
    unrolling clamped to the initial states, inductive step by mutual
    induction on a two-frame free-initial unrolling, iterated van
    Eijk-style (refuted candidates drop out of the hypothesis set and
    the survivors are re-checked until a full pass holds). Candidates
    that do not survive — including solver time-outs — are dropped,
    never trusted: {!invariants} holds proven facts only.

    Proven invariants are consumed as constraint BDDs conjoined into
    the abstract reachability computation ({!constraint_bdd}), as
    persistent per-frame clauses in incremental CNF unrollings
    ({!assume_frame}), as a don't-care filter for guided-ATPG pin cubes
    ({!refutes_pins}), and as netlist rewrites
    ({!Rfn_circuit.Opt.merge_equivalences} via {!equiv_pairs}). *)

type invariant =
  | Const_reg of { reg : int; value : bool }
      (** register [reg] holds [value] in every reachable state *)
  | Implication of { a : int; a_val : bool; b : int; b_val : bool }
      (** in every reachable state, [a = a_val] implies [b = b_val];
          [a < b] or different polarity — normalized so the clause form
          is canonical *)
  | Mutex of int array
      (** at most one of the registers is 1 in any reachable state
          (sorted, length >= 2) *)
  | One_hot of int array
      (** exactly one of the registers is 1 in any reachable state
          (sorted, length >= 2) *)
  | Equiv of { keep : int; drop : int; phase : bool }
      (** signal [drop] always equals [keep] (xor [phase]); [keep]
          precedes [drop] in topological order *)

type config = {
  patterns : int;  (** words of packed random patterns (63 lanes each) *)
  cycles : int;  (** simulated cycles per pattern word *)
  max_pair_regs : int;  (** cap on registers entering pairwise mining *)
  max_group : int;  (** cap on a mutex / one-hot group size *)
  max_equiv : int;  (** cap on equivalence candidates kept *)
  limits : Rfn_sat.Solver.limits;  (** per-query solver budget *)
  max_seconds : float option;  (** whole-analysis wall-clock budget *)
  seed : int;  (** PRNG seed for the random patterns *)
}

val default_config : config
(** 4 pattern words, 24 cycles, 64 pair registers, groups of 8, 128
    equivalence candidates, 20k conflicts per query, no wall-clock
    budget, seed 0. *)

val quick_config : config
(** Scaled-down budgets for pre-flight use (lint passes, [--analyze]
    on small designs): 2 words, 12 cycles, 4k conflicts. *)

type stats = {
  candidates : int;  (** candidates submitted to the inductive check *)
  proved : int;
  refuted : int;  (** killed by a SAT counter-model *)
  unknown : int;  (** dropped because a solver budget ran out *)
}

type t = {
  invariants : invariant list;  (** proven facts only, mining order *)
  stats : stats;
  seconds : float;
}

val run : ?config:config -> Rfn_circuit.Circuit.t -> t
(** Mine and inductively check invariants of the design. Bumps the
    [analysis.*] telemetry counters ([candidates], [proved], [refuted],
    [unknown]) inside an [analysis.run] span. *)

val empty : t
(** No invariants (the [--analyze]-off stand-in). *)

(** {2 Invariant structure} *)

val clauses_of : invariant -> (int * bool) list list
(** The invariant as a conjunction of clauses; each clause is a
    disjunction of [(signal, polarity)] literals over one time frame. *)

val signals_of : invariant -> int list
(** Signals mentioned, ascending. *)

val describe : Rfn_circuit.Circuit.t -> invariant -> string
(** One-line human-readable rendering using signal names. *)

val holds : t -> state:(int -> bool) -> values:(int -> bool) -> bool
(** Do all proven invariants hold in a state? [state] values register
    signals, [values] any signal (gate equivalences read combinational
    values). Exposed for the soundness test-suite and the [RFN_CHECK]
    invariant checker. *)

(** {2 Consumers} *)

val constraint_bdd : t -> Rfn_mc.Varmap.t -> Rfn_bdd.Bdd.t
(** Conjunction of the invariant constraints over the varmap's
    current-state variables. Invariants mentioning any signal without a
    [Cur] variable in the view are skipped (the care set is a sound
    weakening). *)

val assume_frame : t -> Rfn_sat.Cnf.t -> frame:int -> int
(** Add every invariant's clauses at [frame] to the unrolling as
    persistent clauses (skipping clauses with a literal outside the
    encoded view), returning the number added. Sound whenever frame
    states of the unrolling are reachable states of the design — i.e.
    the unrolling starts from the initial states. Bumps
    [analysis.clauses_added]. *)

val refutes_pins : t -> (int * int * bool) list -> bool
(** Do the [(frame, signal, value)] pins contradict a proven invariant
    within some frame? If so, no trace of the design that starts from
    the initial states satisfies them — a guided concretization query
    carrying such pins is doomed and may answer [Unsat] without
    searching. Bumps [analysis.pruned_queries] when true. *)

val equiv_pairs : t -> (int * int * bool) list
(** The proven equivalences as [(keep, drop, phase)] merge directives
    for {!Rfn_circuit.Opt.merge_equivalences}. *)

val to_json : t -> Rfn_obs.Json.t
(** The report as JSON: [stats], [seconds] and the invariant list. *)
