module Circuit = Rfn_circuit.Circuit
module Sview = Rfn_circuit.Sview
module Bitset = Rfn_circuit.Bitset
module Trace = Rfn_circuit.Trace
module Cube = Rfn_circuit.Cube
module Varmap = Rfn_mc.Varmap
module Bdd = Rfn_bdd.Bdd
module Solver = Rfn_sat.Solver
module Cnf = Rfn_sat.Cnf
module Telemetry = Rfn_obs.Telemetry

let env_enabled () =
  match Sys.getenv_opt "RFN_CHECK" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

exception Violation of string * Lint.finding list

let violation_message what findings =
  match findings with
  | [] -> what
  | f :: rest ->
    let more =
      match List.length rest with
      | 0 -> ""
      | n -> Printf.sprintf " (+%d more)" n
    in
    Printf.sprintf "%s: %s%s" what f.Lint.message more

let c_passes = Telemetry.counter "check.invariant_passes"
let c_failures = Telemetry.counter "check.invariant_failures"

let ensure ~what findings =
  match findings with
  | [] -> Telemetry.incr c_passes
  | f :: _ ->
    Telemetry.incr c_failures;
    Telemetry.event "check.violation"
      [
        ("what", Rfn_obs.Json.Str what);
        ("message", Rfn_obs.Json.Str f.Lint.message);
      ];
    raise (Violation (what, findings))

let check ~pass ?signals fmt =
  Printf.ksprintf (fun msg -> Lint.finding ~pass ~severity:Lint.Error ?signals msg) fmt

(* ---- varmap ---------------------------------------------------------- *)

let varmap vm =
  let view = Varmap.view vm in
  let c = view.Sview.circuit in
  let nv = Bdd.nvars (Varmap.man vm) in
  let name s = Circuit.name c s in
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  (* one slot per variable: catches two roles mapped to one level *)
  let owner = Hashtbl.create 197 in
  let claim ~what s v expected_role =
    if v < 0 || v >= nv then
      emit
        (check ~pass:"varmap" ~signals:[ s ]
           "%s variable %d of signal %S outside manager range (nvars=%d)" what
           v (name s) nv)
    else begin
      (match Hashtbl.find_opt owner v with
      | Some prev ->
        emit
          (check ~pass:"varmap" ~signals:[ s ]
             "variable %d carries both %s and %s of signal %S" v prev what
             (name s))
      | None -> Hashtbl.add owner v (Printf.sprintf "%s of %S" what (name s)));
      match Varmap.role vm v with
      | role when role = expected_role -> ()
      | _ ->
        emit
          (check ~pass:"varmap" ~signals:[ s ]
             "role table disagrees on variable %d (%s of signal %S)" v what
             (name s))
      | exception Invalid_argument _ ->
        emit
          (check ~pass:"varmap" ~signals:[ s ]
             "variable %d (%s of signal %S) has no role entry" v what (name s))
    end
  in
  Array.iter
    (fun r ->
      (match Varmap.cur_var_opt vm r with
      | Some v -> claim ~what:"current-state" r v (Varmap.Cur r)
      | None ->
        emit
          (check ~pass:"varmap" ~signals:[ r ]
             "register %S has no current-state variable" (name r)));
      match Varmap.nxt_var_opt vm r with
      | Some v -> claim ~what:"next-state" r v (Varmap.Nxt r)
      | None ->
        emit
          (check ~pass:"varmap" ~signals:[ r ]
             "register %S has no next-state variable" (name r)))
    view.Sview.regs;
  Array.iter
    (fun i ->
      match Varmap.inp_var_opt vm i with
      | Some v -> claim ~what:"input" i v (Varmap.Inp i)
      | None ->
        emit
          (check ~pass:"varmap" ~signals:[ i ]
             "free input %S has no input variable" (name i)))
    view.Sview.free_inputs;
  List.rev !acc

(* ---- session cone cache ---------------------------------------------- *)

let cone_cache vm ~signals =
  let view = Varmap.view vm in
  let c = view.Sview.circuit in
  let n = Circuit.num_signals c in
  let have = Bitset.create n in
  let acc = ref [] in
  List.iter
    (fun s ->
      if s < 0 || s >= n || not (Sview.mem view s) then
        acc :=
          check ~pass:"cone-cache"
            ~signals:(if s >= 0 && s < n then [ s ] else [])
            "stale cone for signal %d%s (outside the view)" s
            (if s >= 0 && s < n then Printf.sprintf " (%s)" (Circuit.name c s)
             else "")
          :: !acc
      else Bitset.add have s)
    signals;
  Bitset.iter
    (fun s ->
      if not (Bitset.mem have s) then
        acc :=
          check ~pass:"cone-cache" ~signals:[ s ]
            "signal %S of the view has no compiled cone" (Circuit.name c s)
          :: !acc)
    view.Sview.inside;
  List.rev !acc

(* ---- traces ---------------------------------------------------------- *)

let trace ?input_ok view ~depth t =
  let c = view.Sview.circuit in
  let input_ok =
    match input_ok with Some f -> f | None -> Sview.is_free view
  in
  let acc = ref [] in
  let k = Trace.length t in
  if k <> depth then
    acc :=
      [ check ~pass:"trace" "trace has %d states, expected depth %d" k depth ];
  for i = 0 to k - 1 do
    List.iter
      (fun (s, _) ->
        if not (Sview.is_state view s) then
          acc :=
            check ~pass:"trace" ~signals:[ s ]
              "state cube %d pins %S, not a register of the view" i
              (Circuit.name c s)
            :: !acc)
      (Cube.to_list (Trace.state t i));
    List.iter
      (fun (s, _) ->
        if not (input_ok s) then
          acc :=
            check ~pass:"trace" ~signals:[ s ]
              "input cube %d pins %S, not an input of the view" i
              (Circuit.name c s)
            :: !acc)
      (Cube.to_list (Trace.input t i))
  done;
  List.rev !acc

(* ---- CNF ------------------------------------------------------------- *)

let cnf u =
  let s = Cnf.solver u in
  let nv = Solver.nvars s in
  let acc = ref [] in
  let nbad = ref 0 in
  Solver.iter_clauses s (fun lits ->
      let seen = Hashtbl.create 7 in
      Array.iter
        (fun l ->
          let v = Solver.var_of l in
          let bad fmt = Printf.ksprintf (fun m -> Some m) fmt in
          let problem =
            if v < 0 || v >= nv then
              bad "literal over unallocated variable %d (nvars=%d)" v nv
            else
              match Hashtbl.find_opt seen v with
              | Some l' when l' = l -> bad "duplicate literal on variable %d" v
              | Some _ -> bad "complementary literals on variable %d" v
              | None ->
                Hashtbl.add seen v l;
                None
          in
          match problem with
          | None -> ()
          | Some msg ->
            incr nbad;
            (* cap the rendered findings; a corrupted instance can have
               thousands of bad clauses and one is enough to abort *)
            if !nbad <= 5 then acc := check ~pass:"cnf" "clause %s" msg :: !acc)
        lits);
  if !nbad > 5 then
    acc := check ~pass:"cnf" "(%d further clause violations)" (!nbad - 5) :: !acc;
  List.rev !acc

let pins u pl =
  let nframes = Cnf.frames u in
  let c = (Cnf.view u).Sview.circuit in
  let known s = s >= 0 && s < Circuit.num_signals c in
  let name s = if known s then Circuit.name c s else Printf.sprintf "#%d" s in
  List.filter_map
    (fun (frame, signal, _) ->
      let signals = if known signal then [ signal ] else [] in
      if frame < 0 || frame >= nframes then
        Some
          (check ~pass:"pins" ~signals
             "pin on %S targets frame %d, but only %d frame(s) are encoded"
             (name signal) frame nframes)
      else
        match Cnf.lit_of_opt u ~frame signal with
        | Some _ -> None
        | None ->
          Some
            (check ~pass:"pins" ~signals
               "pin on %S has no literal at frame %d" (name signal) frame))
    pl
