(** Cross-artifact invariant checks.

    The CEGAR engines share mutable artifacts — a {!Rfn_mc.Varmap}
    grown in place, a session cone cache, incremental CNF unrollings,
    traces handed between engines — whose invariants are otherwise only
    enforced by scattered [Invalid_argument]s at crash time. Each
    checker here validates one artifact {e independently of the engine
    that produced it} and returns structured {!Lint.finding}s; the core
    loop runs them at phase boundaries when [RFN_CHECK=1] (or
    [Rfn.config.check_invariants]) is set and converts any violation
    into a structured [Invariant] abort via {!ensure}. *)

val env_enabled : unit -> bool
(** Whether [RFN_CHECK] is set to [1], [true], [yes] or [on]. *)

exception Violation of string * Lint.finding list
(** Raised by {!ensure}: the phase-boundary label and the findings. *)

val violation_message : string -> Lint.finding list -> string
(** One-line rendering of a violation (first finding's message, plus a
    count of the rest) for structured failure payloads. *)

val ensure : what:string -> Lint.finding list -> unit
(** No findings: bump [check.invariant_passes]. Findings: bump
    [check.invariant_failures] and raise {!Violation}. *)

val varmap : Rfn_mc.Varmap.t -> Lint.finding list
(** Varmap ↔ Sview totality and sanity: every register of the view
    carries current- and next-state variables, every free input an
    input variable; every variable is within the manager's range; no
    two roles share a variable; the [role] table round-trips each
    allocation. Catches stale indices after {!Rfn_mc.Varmap.grow} or a
    bad {!Rfn_mc.Varmap.remap}. *)

val cone_cache : Rfn_mc.Varmap.t -> signals:int list -> Lint.finding list
(** Session cone-cache consistency: [signals] (the memo's keys) must be
    exactly the view's inside set — no stale entry for a signal that
    left the view, no inside signal missing its compiled cone. Run
    after [Session.prepare] (which makes the memo total). *)

val trace :
  ?input_ok:(int -> bool) ->
  Rfn_circuit.Sview.t ->
  depth:int ->
  Rfn_circuit.Trace.t ->
  Lint.finding list
(** Trace well-formedness against a view: [depth] states, state cubes
    only over the view's registers, input cubes only over signals
    satisfying [input_ok] (default: the view's free inputs — pass a
    wider predicate for hybrid traces whose input cubes pin min-cut
    signals). For a concrete trace use [Sview.whole]. *)

val cnf : Rfn_sat.Cnf.t -> Lint.finding list
(** CNF sanity over every clause attached to the unrolling's solver
    (original and learned): no duplicate or complementary literals
    within a clause, every literal over an allocated variable. *)

val pins : Rfn_sat.Cnf.t -> (int * int * bool) list -> Lint.finding list
(** Assumption pins [(frame, signal, value)] must target encoded
    frames and signals the frame map carries a literal for. *)
