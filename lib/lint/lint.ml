module Circuit = Rfn_circuit.Circuit
module Property = Rfn_circuit.Property
module Gate = Rfn_circuit.Gate
module Coi = Rfn_circuit.Coi
module Sview = Rfn_circuit.Sview
module Bitset = Rfn_circuit.Bitset
module Sim3v = Rfn_sim3v.Sim3v
module Cnf = Rfn_sat.Cnf
module Solver = Rfn_sat.Solver
module Analysis = Rfn_analysis.Analysis
module Json = Rfn_obs.Json
module Telemetry = Rfn_obs.Telemetry

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type finding = {
  pass : string;
  severity : severity;
  signals : int list;
  message : string;
}

let finding ~pass ~severity ?(signals = []) message =
  { pass; severity; signals; message }

type report = { findings : finding list; passes_run : string list }
type ctx = { circuit : Circuit.t; props : Property.t list }
type pass = { name : string; doc : string; run : ctx -> finding list }

(* ---- registry -------------------------------------------------------- *)

let registry : pass list ref = ref []

let register p =
  if List.exists (fun q -> q.name = p.name) !registry then
    registry := List.map (fun q -> if q.name = p.name then p else q) !registry
  else registry := !registry @ [ p ]

let passes () = !registry

(* ---- helpers --------------------------------------------------------- *)

(* Cap rendered name lists so a pathological design does not produce a
   pathological diagnostic. *)
let name_list ?(cap = 8) c signals =
  let n = List.length signals in
  let shown =
    List.filteri (fun i _ -> i < cap) signals |> List.map (Circuit.name c)
  in
  let body = String.concat ", " shown in
  if n > cap then Printf.sprintf "%s, ... (%d more)" body (n - cap) else body

let declared_output c s = List.exists (fun (_, x) -> x = s) c.Circuit.outputs
let prop_root props s = List.exists (fun p -> p.Property.bad = s) props

(* Ternary constant propagation over the whole design: registers start
   from their declared initial values ([`Free] as X), primary inputs
   stay X, and a register's accumulated value widens to X as soon as
   any step disagrees with it. The result over-approximates the set of
   reachable states, so a concrete entry is a true structural
   constant. Terminates in at most [num_registers + 1] sweeps: each
   sweep either changes nothing or widens at least one register, and
   widening is one-way. *)
let ternary_fixpoint c =
  let view = Sview.whole c ~roots:[] in
  let state = Array.make (Circuit.num_signals c) Sim3v.VX in
  Array.iter
    (fun r ->
      match Circuit.node c r with
      | Circuit.Reg { init = `Zero; _ } -> state.(r) <- Sim3v.V0
      | Circuit.Reg { init = `One; _ } -> state.(r) <- Sim3v.V1
      | _ -> ())
    c.Circuit.registers;
  let values = ref [||] in
  let changed = ref true in
  while !changed do
    changed := false;
    let vs = Sim3v.eval view ~free:(fun _ -> Sim3v.VX) ~state:(fun r -> state.(r)) in
    values := vs;
    Array.iter
      (fun r ->
        match Circuit.node c r with
        | Circuit.Reg { next; _ } ->
          if state.(r) <> Sim3v.VX && vs.(next) <> state.(r) then begin
            state.(r) <- Sim3v.VX;
            changed := true
          end
        | _ -> ())
      c.Circuit.registers
  done;
  (!values, state)

let v_to_string = function
  | Sim3v.V0 -> "0"
  | Sim3v.V1 -> "1"
  | Sim3v.VX -> "X"

(* ---- design passes --------------------------------------------------- *)

let pass_const_reg =
  {
    name = "const-reg";
    doc = "registers whose next-state input is structurally constant";
    run =
      (fun { circuit = c; _ } ->
        let values, _ = ternary_fixpoint c in
        Array.to_list c.Circuit.registers
        |> List.filter_map (fun r ->
               match Circuit.node c r with
               | Circuit.Reg { init; next } -> (
                 match values.(next) with
                 | Sim3v.VX -> None
                 | v ->
                   let init_s =
                     match init with
                     | `Zero -> "0"
                     | `One -> "1"
                     | `Free -> "free"
                   in
                   Some
                     (finding ~pass:"const-reg" ~severity:Warning ~signals:[ r ]
                        (Printf.sprintf
                           "register %S next-state is constant %s (init %s)"
                           (Circuit.name c r) (v_to_string v) init_s)))
               | _ -> None));
  }

let pass_self_loop_reg =
  {
    name = "self-loop-reg";
    doc = "registers clocked from their own output";
    run =
      (fun { circuit = c; _ } ->
        Array.to_list c.Circuit.registers
        |> List.filter_map (fun r ->
               match Circuit.node c r with
               | Circuit.Reg { next; _ } when next = r ->
                 Some
                   (finding ~pass:"self-loop-reg" ~severity:Warning
                      ~signals:[ r ]
                      (Printf.sprintf
                         "register %S next-state is its own output (it holds \
                          its initial value forever)"
                         (Circuit.name c r)))
               | _ -> None));
  }

let pass_dead_input =
  {
    name = "dead-input";
    doc = "primary inputs that drive no logic";
    run =
      (fun { circuit = c; _ } ->
        Array.to_list c.Circuit.inputs
        |> List.filter_map (fun i ->
               if Array.length c.Circuit.fanouts.(i) = 0 && not (declared_output c i)
               then
                 Some
                   (finding ~pass:"dead-input" ~severity:Warning ~signals:[ i ]
                      (Printf.sprintf "primary input %S drives no logic"
                         (Circuit.name c i)))
               else None));
  }

let pass_floating_gate =
  {
    name = "floating-gate";
    doc = "gates whose output is read by nothing and declared by nothing";
    run =
      (fun { circuit = c; props } ->
        let acc = ref [] in
        for s = Circuit.num_signals c - 1 downto 0 do
          match Circuit.node c s with
          | Circuit.Gate _
            when Array.length c.Circuit.fanouts.(s) = 0
                 && (not (declared_output c s))
                 && not (prop_root props s) ->
            acc :=
              finding ~pass:"floating-gate" ~severity:Warning ~signals:[ s ]
                (Printf.sprintf "gate %S output is never read"
                   (Circuit.name c s))
              :: !acc
          | _ -> ()
        done;
        !acc);
  }

let pass_unreachable =
  {
    name = "unreachable-logic";
    doc = "logic outside the cone of influence of every output and property";
    run =
      (fun { circuit = c; props } ->
        let roots =
          List.map snd c.Circuit.outputs
          @ List.concat_map Property.roots props
        in
        if roots = [] then []
        else begin
          let coi = Coi.compute c ~roots in
          let dead = ref [] in
          for s = Circuit.num_signals c - 1 downto 0 do
            let reachable =
              Bitset.mem coi.Coi.regs s || Bitset.mem coi.Coi.gates s
              || Bitset.mem coi.Coi.inputs s
              || List.mem s roots
              || match Circuit.node c s with Circuit.Const _ -> true | _ -> false
            in
            if not reachable then dead := s :: !dead
          done;
          match !dead with
          | [] -> []
          | dead ->
            [
              finding ~pass:"unreachable-logic" ~severity:Info ~signals:dead
                (Printf.sprintf
                   "%d signal(s) outside every output/property cone: %s"
                   (List.length dead) (name_list c dead));
            ]
        end);
  }

let pass_duplicate_gate =
  {
    name = "duplicate-gate";
    doc = "structurally identical gates (same kind and fanins)";
    run =
      (fun { circuit = c; _ } ->
        let groups : (string, int list) Hashtbl.t = Hashtbl.create 97 in
        for s = 0 to Circuit.num_signals c - 1 do
          match Circuit.node c s with
          | Circuit.Gate (kind, fanins) ->
            let key =
              Gate.to_string kind ^ ":"
              ^ String.concat ","
                  (Array.to_list (Array.map string_of_int fanins))
            in
            let prev = try Hashtbl.find groups key with Not_found -> [] in
            Hashtbl.replace groups key (s :: prev)
          | _ -> ()
        done;
        Hashtbl.fold
          (fun _ signals acc ->
            match signals with
            | _ :: _ :: _ ->
              let signals = List.rev signals in
              finding ~pass:"duplicate-gate" ~severity:Info ~signals
                (Printf.sprintf "%d structurally identical gates: %s"
                   (List.length signals) (name_list c signals))
              :: acc
            | _ -> acc)
          groups []
        |> List.sort (fun a b -> compare a.signals b.signals));
  }

(* ---- invariant-backed passes ----------------------------------------- *)

(* Both passes below consume Rfn_analysis invariants, which are
   inductively *proved* before they are reported — no finding here
   rests on a simulation guess. The quick configuration keeps the
   mining/proving budget at lint latencies. *)

let is_reg c s =
  match Circuit.node c s with Circuit.Reg _ -> true | _ -> false

let pass_equiv_reg =
  {
    name = "equiv-reg";
    doc = "registers inductively proved equivalent to an earlier signal";
    run =
      (fun { circuit = c; _ } ->
        if Array.length c.Circuit.registers = 0 then []
        else
          let a = Analysis.run ~config:Analysis.quick_config c in
          List.filter_map
            (fun inv ->
              match inv with
              | Analysis.Equiv { keep; drop; phase } when is_reg c drop ->
                Some
                  (finding ~pass:"equiv-reg" ~severity:Warning
                     ~signals:[ drop; keep ]
                     (Printf.sprintf
                        "register %S is redundant: in every reachable state \
                         it equals %s%S"
                        (Circuit.name c drop)
                        (if phase then "the complement of " else "")
                        (Circuit.name c keep)))
              | _ -> None)
            a.Analysis.invariants);
  }

let pass_onehot_violation =
  {
    name = "onehot-violation";
    doc =
      "properties that can only fire by violating a proven one-hot/mutex \
       register group";
    run =
      (fun { circuit = c; props } ->
        if props = [] || Array.length c.Circuit.registers = 0 then []
        else begin
          let a = Analysis.run ~config:Analysis.quick_config c in
          let groups =
            List.filter
              (function
                | Analysis.Mutex _ | Analysis.One_hot _ -> true
                | _ -> false)
              a.Analysis.invariants
          in
          if groups = [] then []
          else begin
            (* One free-init frame: frame 0 ranges over arbitrary
               states, so adding the proven group clauses restricts it
               to the proven encoding — an over-approximation of the
               reachable states. Unsat for a bad signal that was
               satisfiable without the clauses means the property can
               only fire by violating the encoding, which no reachable
               state does: the check is vacuous. *)
            let view =
              Sview.whole c ~roots:(List.map (fun p -> p.Property.bad) props)
            in
            let unr = Cnf.create ~free_init:true view in
            Cnf.extend unr ~frames:1;
            let solver = Cnf.solver unr in
            let limits = Analysis.quick_config.Analysis.limits in
            let solve_bad p =
              Solver.solve ~limits
                ~assumptions:[ Cnf.lit_of unr ~frame:0 p.Property.bad ]
                solver
            in
            (* Constant-0 bad signals are prop-const findings, not ours:
               only keep the properties that can fire at all. *)
            let fireable =
              List.filter (fun p -> solve_bad p = Solver.Sat) props
            in
            List.iter
              (fun g ->
                List.iter
                  (fun cls ->
                    let lits =
                      List.map
                        (fun (s, v) ->
                          match Cnf.lit_of_opt unr ~frame:0 s with
                          | Some l -> Some (if v then l else Solver.neg l)
                          | None -> None)
                        cls
                    in
                    if List.for_all Option.is_some lits then
                      Solver.add_clause solver (List.map Option.get lits))
                  (Analysis.clauses_of g))
              groups;
            List.filter_map
              (fun p ->
                match solve_bad p with
                | Solver.Unsat ->
                  Some
                    (finding ~pass:"onehot-violation" ~severity:Error
                       ~signals:
                         (p.Property.bad
                         :: List.concat_map Analysis.signals_of groups)
                       (Printf.sprintf
                          "property %S can only fire by violating a proven \
                           register-group invariant (%s): no reachable state \
                           triggers it"
                          p.Property.name
                          (String.concat "; "
                             (List.map (Analysis.describe c) groups))))
                | Solver.Sat | Solver.Unknown _ -> None)
              fireable
          end
        end);
  }

(* ---- property passes ------------------------------------------------- *)

let pass_prop_const =
  {
    name = "prop-const";
    doc = "structurally constant property signals (vacuous verification)";
    run =
      (fun { circuit = c; props } ->
        if props = [] then []
        else begin
          let values, _ = ternary_fixpoint c in
          List.filter_map
            (fun p ->
              let bad = p.Property.bad in
              match values.(bad) with
              | Sim3v.VX -> None
              | Sim3v.V1 ->
                Some
                  (finding ~pass:"prop-const" ~severity:Error ~signals:[ bad ]
                     (Printf.sprintf
                        "property %S is structurally false: bad signal %S is \
                         stuck at 1"
                        p.Property.name (Circuit.name c bad)))
              | Sim3v.V0 ->
                Some
                  (finding ~pass:"prop-const" ~severity:Warning
                     ~signals:[ bad ]
                     (Printf.sprintf
                        "property %S is vacuously true: bad signal %S is \
                         stuck at 0"
                        p.Property.name (Circuit.name c bad))))
            props
        end);
  }

let pass_prop_free_init =
  {
    name = "prop-free-init";
    doc = "property cones depending on registers with a free initial value";
    run =
      (fun { circuit = c; props } ->
        List.filter_map
          (fun p ->
            let coi = Coi.compute c ~roots:(Property.roots p) in
            let free =
              Bitset.fold
                (fun r acc ->
                  match Circuit.node c r with
                  | Circuit.Reg { init = `Free; _ } -> r :: acc
                  | _ -> acc)
                coi.Coi.regs []
              |> List.rev
            in
            match free with
            | [] -> None
            | free ->
              Some
                (finding ~pass:"prop-free-init" ~severity:Warning ~signals:free
                   (Printf.sprintf
                      "property %S cone contains %d register(s) with a free \
                       initial value: %s"
                      p.Property.name (List.length free) (name_list c free))))
          props);
  }

let () =
  List.iter register
    [
      pass_const_reg;
      pass_self_loop_reg;
      pass_dead_input;
      pass_floating_gate;
      pass_unreachable;
      pass_duplicate_gate;
      pass_equiv_reg;
      pass_onehot_violation;
      pass_prop_const;
      pass_prop_free_init;
    ]

(* ---- driver ---------------------------------------------------------- *)

let count sev r =
  List.length (List.filter (fun f -> f.severity = sev) r.findings)

let errors = count Error
let warnings = count Warning
let infos = count Info

let c_passes_run = Telemetry.counter "lint.passes_run"
let c_findings = Telemetry.counter "lint.findings"
let c_errors = Telemetry.counter "lint.errors"
let c_warnings = Telemetry.counter "lint.warnings"
let c_info = Telemetry.counter "lint.info"

let run ?only ?(props = []) circuit =
  let all = passes () in
  let selected =
    match only with
    | None -> all
    | Some names ->
      List.iter
        (fun n ->
          if not (List.exists (fun p -> p.name = n) all) then
            invalid_arg (Printf.sprintf "Lint.run: unknown pass %S" n))
        names;
      List.filter (fun p -> List.mem p.name names) all
  in
  let ctx = { circuit; props } in
  let findings = List.concat_map (fun p -> p.run ctx) selected in
  let findings =
    List.stable_sort
      (fun a b ->
        match compare (severity_rank a.severity) (severity_rank b.severity) with
        | 0 -> compare a.pass b.pass
        | c -> c)
      findings
  in
  let report = { findings; passes_run = List.map (fun p -> p.name) selected } in
  Telemetry.add c_passes_run (List.length selected);
  Telemetry.add c_findings (List.length findings);
  Telemetry.add c_errors (errors report);
  Telemetry.add c_warnings (warnings report);
  Telemetry.add c_info (infos report);
  report

(* ---- rendering ------------------------------------------------------- *)

let pp_report ppf r =
  List.iter
    (fun f ->
      Format.fprintf ppf "%s: [%s] %s@."
        (severity_to_string f.severity)
        f.pass f.message)
    r.findings;
  Format.fprintf ppf "%d error(s), %d warning(s), %d info(s) from %d pass(es)@."
    (errors r) (warnings r) (infos r)
    (List.length r.passes_run)

let report_to_json c r =
  Json.Obj
    [
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("pass", Json.Str f.pass);
                   ("severity", Json.Str (severity_to_string f.severity));
                   ( "signals",
                     Json.List
                       (List.map
                          (fun s -> Json.Str (Circuit.name c s))
                          f.signals) );
                   ("message", Json.Str f.message);
                 ])
             r.findings) );
      ("errors", Json.Int (errors r));
      ("warnings", Json.Int (warnings r));
      ("infos", Json.Int (infos r));
      ("passes_run", Json.List (List.map (fun p -> Json.Str p) r.passes_run));
    ]
