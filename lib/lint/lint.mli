(** Netlist lint engine: a pass-based static-analysis framework over
    designs and properties.

    RFN's CEGAR loop assumes its inputs are sane — acyclic
    combinational logic, connected registers, a property cone that is
    not structurally constant. This module checks those assumptions
    {e before} an engine burns its deadline budget on them: each
    {!pass} inspects a finalized {!Rfn_circuit.Circuit.t} (and,
    for property passes, a set of {!Rfn_circuit.Property.t}) and
    reports structured {!finding}s rendered as text or JSON.

    The built-in passes:

    - [const-reg] (warning) — registers whose next-state input is
      structurally constant under ternary constant propagation
      (a {!Rfn_sim3v.Sim3v} fixpoint seeded from the declared initial
      values, every primary input X);
    - [self-loop-reg] (warning) — registers clocked from their own
      output (they hold their initial value forever);
    - [dead-input] (warning) — primary inputs driving no logic;
    - [floating-gate] (warning) — gates whose output is read by
      nothing and declared by nothing;
    - [unreachable-logic] (info) — logic outside the cone of influence
      of every declared output and property;
    - [duplicate-gate] (info) — structurally identical named gates
      (same kind, same fanins) that hash-consing could not merge;
    - [equiv-reg] (warning) — registers the invariant-inference engine
      ({!Rfn_analysis.Analysis}, quick budget) inductively {e proved}
      equal (or antivalent) to an earlier signal in every reachable
      state — redundant state that {!Rfn_circuit.Opt.merge_equivalences}
      could fold away;
    - [onehot-violation] (error) — properties whose bad signal is
      satisfiable in some state but unsatisfiable under the proven
      one-hot/mutex register-group invariants: the property can only
      fire by violating an encoding no reachable state violates, so
      the check is vacuous;
    - [prop-const] (error for constant-1, warning for constant-0) —
      property signals that are structurally false (the bad signal is
      stuck at 1) or vacuously true (stuck at 0);
    - [prop-free-init] (warning) — property cones that depend on
      registers with a [`Free] initial value (initial-state
      underconstraint).

    Cross-artifact invariant checks over the mutable engine state
    (varmaps, traces, CNF unrollings, the session cone cache) live in
    {!Check}. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

type finding = {
  pass : string;  (** name of the pass that produced the finding *)
  severity : severity;
  signals : int list;  (** implicated signal ids, if any *)
  message : string;  (** human-readable, names already resolved *)
}

val finding : pass:string -> severity:severity -> ?signals:int list ->
  string -> finding

type report = {
  findings : finding list;
      (** sorted most severe first, then by pass name *)
  passes_run : string list;
}

(** The input a pass inspects. *)
type ctx = {
  circuit : Rfn_circuit.Circuit.t;
  props : Rfn_circuit.Property.t list;
}

type pass = {
  name : string;
  doc : string;
  run : ctx -> finding list;
}

val register : pass -> unit
(** Add a pass to the registry. The built-in passes are registered at
    module initialization; registering a pass with an existing name
    replaces it. *)

val passes : unit -> pass list
(** All registered passes, in registration order. *)

val ternary_fixpoint :
  Rfn_circuit.Circuit.t -> Rfn_sim3v.Sim3v.v array * Rfn_sim3v.Sim3v.v array
(** [(values, state)] of the ternary constant-propagation fixpoint:
    registers seeded from their declared initial values ([`Free] as X),
    primary inputs X, register values widened to X whenever a step
    disagrees with the accumulated value. A concrete entry in [values]
    means the signal holds that value in {e every} reachable state (the
    fixpoint over-approximates reachability); [state] holds the
    per-register accumulated values. *)

val run :
  ?only:string list ->
  ?props:Rfn_circuit.Property.t list ->
  Rfn_circuit.Circuit.t ->
  report
(** Run the registered passes ([only] restricts to the named ones;
    unknown names raise [Invalid_argument]) and bump the [lint.*]
    telemetry counters ([lint.passes_run], [lint.findings],
    [lint.errors], [lint.warnings], [lint.info]). *)

val errors : report -> int
val warnings : report -> int
val infos : report -> int

val pp_report : Format.formatter -> report -> unit
(** One finding per line: [severity: [pass] message]; a trailing
    summary line with the severity tally. *)

val report_to_json : Rfn_circuit.Circuit.t -> report -> Rfn_obs.Json.t
(** [{"findings":[{"pass","severity","signals","message"},...],
    "errors":n,"warnings":n,"infos":n,"passes_run":[...]}]; signals
    are rendered as names. *)
