type t = int

exception Limit_exceeded

module Telemetry = Rfn_obs.Telemetry

(* Process-global engine metrics; incrementing is an unboxed integer
   write, cheap enough for the op hot paths even with telemetry off. *)
let c_alloc = Telemetry.counter "bdd.nodes_allocated"
let c_hit = Telemetry.counter "bdd.cache_hits"
let c_miss = Telemetry.counter "bdd.cache_misses"
let c_gc = Telemetry.counter "bdd.gc_runs"
let g_nodes = Telemetry.gauge "bdd.live_nodes"

type man = {
  mutable nvars : int;
  mutable limit : int;
  mutable var_ : int array;
  mutable low_ : int array;
  mutable high_ : int array;
  mutable n : int;
  mutable free : int list;  (* slots reclaimed by gc, reused by mk *)
  mutable free_n : int;
  protected : (int, int) Hashtbl.t;  (* refcounted gc roots *)
  unique : (int * int * int, int) Hashtbl.t;
  cache : (int * int * int * int, int) Hashtbl.t;
}

(* Terminals. Their [var_] is [max_int] so that every real variable
   sits above them in the order. *)
let f0 = 0
let f1 = 1

let create ?(node_limit = max_int) ~nvars () =
  let cap = 1024 in
  let m =
    {
      nvars;
      limit = node_limit;
      var_ = Array.make cap max_int;
      low_ = Array.make cap 0;
      high_ = Array.make cap 0;
      n = 2;
      free = [];
      free_n = 0;
      protected = Hashtbl.create 256;
      unique = Hashtbl.create 4096;
      cache = Hashtbl.create 4096;
    }
  in
  m.low_.(f1) <- 1;
  m.high_.(f1) <- 1;
  m

let nvars m = m.nvars

let add_vars m k =
  let first = m.nvars in
  m.nvars <- m.nvars + k;
  first

let num_nodes m = m.n - m.free_n
let node_limit m = m.limit
let set_node_limit m l = m.limit <- l
let clear_caches m = Hashtbl.reset m.cache

let zero _ = f0
let one _ = f1
let is_zero f = f = f0
let is_one f = f = f1
let is_terminal f = f <= 1

let vr m f = m.var_.(f)

let topvar m f =
  if is_terminal f then invalid_arg "Bdd.topvar: terminal" else m.var_.(f)

let low m f = m.low_.(f)
let high m f = m.high_.(f)
let equal (a : t) (b : t) = a = b

let grow m =
  let cap = Array.length m.var_ in
  if m.n >= cap then begin
    let cap' = 2 * cap in
    let extend a fill =
      let b = Array.make cap' fill in
      Array.blit a 0 b 0 cap;
      b
    in
    m.var_ <- extend m.var_ max_int;
    m.low_ <- extend m.low_ 0;
    m.high_ <- extend m.high_ 0
  end

let mk m v lo hi =
  if lo = hi then lo
  else
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      if m.n - m.free_n >= m.limit then raise Limit_exceeded;
      let id =
        match m.free with
        | slot :: rest ->
          m.free <- rest;
          m.free_n <- m.free_n - 1;
          slot
        | [] ->
          grow m;
          let id = m.n in
          m.n <- id + 1;
          id
      in
      m.var_.(id) <- v;
      m.low_.(id) <- lo;
      m.high_.(id) <- hi;
      Hashtbl.add m.unique key id;
      Telemetry.incr c_alloc;
      Telemetry.record g_nodes (m.n - m.free_n);
      id

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var: out of range";
  mk m i f0 f1

let nvar m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.nvar: out of range";
  mk m i f1 f0

(* Operation tags for the shared cache. *)
let op_and = 0
let op_not = 1
let op_ite = 2

let rec dnot m f =
  if f = f0 then f1
  else if f = f1 then f0
  else
    let key = (op_not, f, 0, 0) in
    match Hashtbl.find_opt m.cache key with
    | Some r ->
      Telemetry.incr c_hit;
      r
    | None ->
      Telemetry.incr c_miss;
      let r = mk m (vr m f) (dnot m (low m f)) (dnot m (high m f)) in
      Hashtbl.add m.cache key r;
      r

let cofactors m v f =
  if is_terminal f || vr m f > v then (f, f) else (low m f, high m f)

let rec dand m a b =
  if a = b then a
  else if a = f0 || b = f0 then f0
  else if a = f1 then b
  else if b = f1 then a
  else
    let x = min a b and y = max a b in
    let key = (op_and, x, y, 0) in
    match Hashtbl.find_opt m.cache key with
    | Some r ->
      Telemetry.incr c_hit;
      r
    | None ->
      Telemetry.incr c_miss;
      let v = min (vr m a) (vr m b) in
      let a0, a1 = cofactors m v a and b0, b1 = cofactors m v b in
      let r = mk m v (dand m a0 b0) (dand m a1 b1) in
      Hashtbl.add m.cache key r;
      r

let rec ite m f g h =
  if f = f1 then g
  else if f = f0 then h
  else if g = h then g
  else if g = f1 && h = f0 then f
  else
    let key = (op_ite, f, g, h) in
    match Hashtbl.find_opt m.cache key with
    | Some r ->
      Telemetry.incr c_hit;
      r
    | None ->
      Telemetry.incr c_miss;
      let v = min (vr m f) (min (vr m g) (vr m h)) in
      let f0c, f1c = cofactors m v f
      and g0, g1 = cofactors m v g
      and h0, h1 = cofactors m v h in
      let r = mk m v (ite m f0c g0 h0) (ite m f1c g1 h1) in
      Hashtbl.add m.cache key r;
      r

let dor m a b = dnot m (dand m (dnot m a) (dnot m b))
let dxor m a b = ite m a (dnot m b) b
let imply m a b = ite m a b f1
let diff m a b = dand m a (dnot m b)

let varset_of m vars =
  let set = Array.make m.nvars false in
  let maxv = ref (-1) in
  List.iter
    (fun v ->
      if v < 0 || v >= m.nvars then invalid_arg "Bdd: variable out of range";
      set.(v) <- true;
      if v > !maxv then maxv := v)
    vars;
  (set, !maxv)

let exists m vars f =
  let set, maxv = varset_of m vars in
  let memo = Hashtbl.create 256 in
  let rec ex f =
    if is_terminal f || vr m f > maxv then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let v = vr m f in
        let lo = ex (low m f) and hi = ex (high m f) in
        let r = if set.(v) then dor m lo hi else mk m v lo hi in
        Hashtbl.add memo f r;
        r
  in
  ex f

let and_exists m vars a b =
  let set, maxv = varset_of m vars in
  let memo = Hashtbl.create 256 in
  let rec ae a b =
    if a = f0 || b = f0 then f0
    else if is_terminal a && is_terminal b then f1
    else if (is_terminal a || vr m a > maxv) && (is_terminal b || vr m b > maxv)
    then dand m a b
    else
      let x = min a b and y = max a b in
      match Hashtbl.find_opt memo (x, y) with
      | Some r -> r
      | None ->
        let v = min (vr m a) (vr m b) in
        let a0, a1 = cofactors m v a and b0, b1 = cofactors m v b in
        let r =
          if set.(v) then begin
            (* ∃v. (a∧b) = (a0∧b0) ∨ (a1∧b1); short-circuit when the
               first disjunct is already true. *)
            let r0 = ae a0 b0 in
            if r0 = f1 then f1 else dor m r0 (ae a1 b1)
          end
          else mk m v (ae a0 b0) (ae a1 b1)
        in
        Hashtbl.add memo (x, y) r;
        r
  in
  ae a b

let vector_compose m subst f =
  let memo = Hashtbl.create 256 in
  let rec vc f =
    if is_terminal f then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let v = vr m f in
        let lo = vc (low m f) and hi = vc (high m f) in
        let g = match subst v with Some g -> g | None -> var m v in
        let r = ite m g hi lo in
        Hashtbl.add memo f r;
        r
  in
  vc f

let support m f =
  let seen = Hashtbl.create 256 in
  let vars = Hashtbl.create 64 in
  let rec walk f =
    if (not (is_terminal f)) && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Hashtbl.replace vars (vr m f) ();
      walk (low m f);
      walk (high m f)
    end
  in
  walk f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rename m map f =
  let sup = support m f in
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) -> map a < map b && check rest
      | _ -> true
    in
    check sup
  in
  if monotone then begin
    let memo = Hashtbl.create 256 in
    let rec rn f =
      if is_terminal f then f
      else
        match Hashtbl.find_opt memo f with
        | Some r -> r
        | None ->
          let r = mk m (map (vr m f)) (rn (low m f)) (rn (high m f)) in
          Hashtbl.add memo f r;
          r
    in
    rn f
  end
  else
    let subst =
      let tbl = Hashtbl.create 64 in
      List.iter (fun v -> Hashtbl.replace tbl v (var m (map v))) sup;
      fun v -> Hashtbl.find_opt tbl v
    in
    vector_compose m subst f

let cofactor m f assignment =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (v, b) -> Hashtbl.replace tbl v b) assignment;
  let memo = Hashtbl.create 256 in
  let rec cf f =
    if is_terminal f then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let v = vr m f in
        let r =
          match Hashtbl.find_opt tbl v with
          | Some true -> cf (high m f)
          | Some false -> cf (low m f)
          | None -> mk m v (cf (low m f)) (cf (high m f))
        in
        Hashtbl.add memo f r;
        r
  in
  cf f

let cube m literals =
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) literals in
  List.fold_left
    (fun acc (v, b) -> if b then mk m v f0 acc else mk m v acc f0)
    f1 sorted

let cube_of m f =
  let rec walk f acc =
    if f = f1 then List.rev acc
    else if f = f0 then invalid_arg "Bdd.cube_of: zero"
    else
      let v = vr m f in
      if low m f = f0 then walk (high m f) ((v, true) :: acc)
      else if high m f = f0 then walk (low m f) ((v, false) :: acc)
      else invalid_arg "Bdd.cube_of: not a cube"
  in
  walk f []

let any_sat m f =
  if f = f0 then raise Not_found;
  let rec walk f acc =
    if f = f1 then List.rev acc
    else
      let v = vr m f in
      if low m f <> f0 then walk (low m f) ((v, false) :: acc)
      else walk (high m f) ((v, true) :: acc)
  in
  walk f []

let fattest_cube m f =
  if f = f0 then raise Not_found;
  (* Cost of a node: fewest literals on any path to the 1-terminal. *)
  let memo = Hashtbl.create 256 in
  let rec cost f =
    if f = f1 then 0
    else if f = f0 then max_int / 2
    else
      match Hashtbl.find_opt memo f with
      | Some c -> c
      | None ->
        let c = 1 + min (cost (low m f)) (cost (high m f)) in
        Hashtbl.add memo f c;
        c
  in
  let rec walk f acc =
    if f = f1 then List.rev acc
    else
      let v = vr m f in
      if cost (low m f) <= cost (high m f) then
        walk (low m f) ((v, false) :: acc)
      else walk (high m f) ((v, true) :: acc)
  in
  walk f []

let size m f =
  let seen = Hashtbl.create 256 in
  let rec walk f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      if not (is_terminal f) then begin
        walk (low m f);
        walk (high m f)
      end
    end
  in
  walk f;
  Hashtbl.length seen

let density m f =
  let memo = Hashtbl.create 256 in
  let rec dens f =
    if f = f0 then 0.0
    else if f = f1 then 1.0
    else
      match Hashtbl.find_opt memo f with
      | Some d -> d
      | None ->
        let d = 0.5 *. (dens (low m f) +. dens (high m f)) in
        Hashtbl.add memo f d;
        d
  in
  dens f

let count_minterms m ~over f = density m f *. (2.0 ** float_of_int over)

let eval m f assignment =
  let rec walk f =
    if f = f1 then true
    else if f = f0 then false
    else if assignment (vr m f) then walk (high m f)
    else walk (low m f)
  in
  walk f

let rebuild ~src ~dst ~map f =
  let memo = Hashtbl.create 256 in
  let rec rb f =
    if f = f0 then zero dst
    else if f = f1 then one dst
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let lo = rb (low src f) and hi = rb (high src f) in
        let r = ite dst (var dst (map (vr src f))) hi lo in
        Hashtbl.add memo f r;
        r
  in
  rb f

let protect m f =
  if f > 1 then
    Hashtbl.replace m.protected f
      (1 + Option.value ~default:0 (Hashtbl.find_opt m.protected f));
  f

let unprotect m f =
  if f > 1 then
    match Hashtbl.find_opt m.protected f with
    | None -> ()
    | Some n when n <= 1 -> Hashtbl.remove m.protected f
    | Some n -> Hashtbl.replace m.protected f (n - 1)

let gc m ~roots =
  Telemetry.incr c_gc;
  let marked = Bytes.make m.n '\000' in
  Bytes.set marked 0 '\001';
  Bytes.set marked 1 '\001';
  let rec mark f =
    if Bytes.get marked f = '\000' then begin
      Bytes.set marked f '\001';
      mark m.low_.(f);
      mark m.high_.(f)
    end
  in
  List.iter mark roots;
  Hashtbl.iter (fun f _ -> mark f) m.protected;
  (* Sweep: drop dead nodes from the unique table and recycle their
     slots. The operation caches may reference dead nodes, so they are
     cleared wholesale. *)
  let already_free = Bytes.make m.n '\000' in
  List.iter (fun slot -> Bytes.set already_free slot '\001') m.free;
  for id = 2 to m.n - 1 do
    if Bytes.get marked id = '\000' && Bytes.get already_free id = '\000' then begin
      Hashtbl.remove m.unique (m.var_.(id), m.low_.(id), m.high_.(id));
      m.var_.(id) <- max_int;
      m.free <- id :: m.free;
      m.free_n <- m.free_n + 1
    end
  done;
  Hashtbl.reset m.cache;
  Telemetry.record g_nodes (m.n - m.free_n)

let subset_heavy m ~max_size f =
  if max_size < 1 then invalid_arg "Bdd.subset_heavy: max_size < 1";
  (* Keep the denser branch at every node once over budget; the lighter
     branch is dropped outright (this aggressiveness is the point: the
     paper found subsetting "too drastic to produce useful results"). *)
  let rec go f budget =
    if is_terminal f then f
    else if size m f <= budget then f
    else if budget < 3 then f0 (* can't afford any nonterminal node *)
    else
      let v = vr m f and lo = low m f and hi = high m f in
      (* budget - 2 leaves room for this node and the zero terminal *)
      if density m lo >= density m hi then mk m v (go lo (budget - 2)) f0
      else mk m v f0 (go hi (budget - 2))
  in
  go f max_size

let pp_stats ppf m =
  Format.fprintf ppf "vars=%d nodes=%d cache=%d" m.nvars m.n
    (Hashtbl.length m.cache)
