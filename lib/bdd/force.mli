(** FORCE variable-ordering heuristic (Aloul, Markov, Sakallah).

    Variables are vertices of a hypergraph; each hyperedge groups
    variables that appear together (a gate's support, a transition
    function's support). Iterative center-of-gravity relaxation pulls
    connected variables next to each other, which is exactly what BDD
    orders want. Linear-time per iteration, no BDDs involved — this is
    how the engines pick initial (and re-computed) orders. *)

val order :
  ?iterations:int ->
  ?init:int array ->
  nvars:int ->
  edges:int list list ->
  unit ->
  int array
(** [order ~nvars ~edges] returns [pos] with [pos.(v)] the level
    assigned to variable [v]; [pos] is a permutation of
    [0 .. nvars-1]. Variables in no edge keep their relative order at
    the bottom. Default 30 iterations, stopping early when total edge
    span stops improving. [init] seeds the relaxation with a previous
    order (a permutation of the same size) — how engines carry variable
    orders across refinement iterations, as the paper prescribes at the
    end of its Step 2. *)

val span : pos:int array -> edges:int list list -> int
(** Total span (max - min level) over all edges — the cost FORCE
    minimizes; exposed for tests and benchmarks. *)
