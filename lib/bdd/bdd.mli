(** Reduced ordered binary decision diagrams.

    A from-scratch, pure-OCaml ROBDD package in the style of CUDD's
    core (the paper used CUDD): hash-consed nodes with a unique table,
    memoized recursive operations, and the operations symbolic model
    checking needs — quantification, conjunctive quantification
    (relational product), functional composition, variable renaming.

    Variable indices coincide with levels: variable [i] is tested above
    variable [j] iff [i < j]. Choosing a good order is the caller's
    job ({!Force} computes one from circuit structure); "dynamic
    reordering" is provided as a rebuild into a fresh manager
    ({!rebuild}).

    Managers enforce a node budget: operations raise {!Limit_exceeded}
    once the number of live nodes exceeds it, which is how engines
    implement the paper's resource limits. *)

type man
(** A manager: node store, unique table, operation caches. *)

type t = private int
(** A node handle, valid only with the manager that created it. *)

exception Limit_exceeded
(** Raised mid-operation when the node budget is exhausted. The
    manager remains usable (all existing nodes stay valid). *)

val create : ?node_limit:int -> nvars:int -> unit -> man
(** [node_limit] defaults to [max_int]. *)

val nvars : man -> int
val add_vars : man -> int -> int
(** [add_vars man k] appends [k] fresh variables at the bottom of the
    order and returns the index of the first. *)

val num_nodes : man -> int
(** Live nodes (terminals included). *)

val node_limit : man -> int
val set_node_limit : man -> int -> unit
val clear_caches : man -> unit

(* Garbage collection. Nodes are reclaimed by explicit mark-and-sweep:
   anything not reachable from the given roots or from the protected
   set is freed and its slot reused, so stale handles must not be
   dereferenced after a collection. Long-running fixpoints call {!gc}
   between images; builders {!protect} structures with indefinite
   lifetime (transition clusters, cone tables). *)

val protect : man -> t -> t
(** Register a GC root; returns its argument. Protection is
    refcounted: protecting the same handle twice requires two
    {!unprotect} calls to release it, so independent owners (a cone
    cache, a transition cluster, a per-iteration target) can protect
    aliased handles without clobbering each other. *)

val unprotect : man -> t -> unit
(** Drop one protection count of the handle (no-op when it is not
    protected). The node itself stays valid until the next {!gc} that
    cannot reach it. *)

val gc : man -> roots:t list -> unit
(** Free every node not reachable from [roots], the protected set, or
    a terminal. Also clears the operation caches. *)

val zero : man -> t
val one : man -> t
val var : man -> int -> t
val nvar : man -> int -> t
(** Negated variable. *)

val is_zero : t -> bool
val is_one : t -> bool

(* Structure inspection (for traversals by client code). *)
val topvar : man -> t -> int
(** Raises [Invalid_argument] on terminals. *)

val low : man -> t -> t
val high : man -> t -> t
val is_terminal : t -> bool

(* Boolean connectives. *)
val dnot : man -> t -> t
val dand : man -> t -> t -> t
val dor : man -> t -> t -> t
val dxor : man -> t -> t -> t
val ite : man -> t -> t -> t -> t
val imply : man -> t -> t -> t
val diff : man -> t -> t -> t
(** [diff m a b] is [a ∧ ¬b]. *)

val equal : t -> t -> bool

(* Quantification and substitution. *)
val exists : man -> int list -> t -> t
(** Existentially quantify the listed variables. *)

val and_exists : man -> int list -> t -> t -> t
(** Relational product: [∃ vars. a ∧ b], computed without building the
    full conjunction. *)

val vector_compose : man -> (int -> t option) -> t -> t
(** [vector_compose m subst f] substitutes, simultaneously, [subst i]
    for every variable [i] with a binding. *)

val rename : man -> (int -> int) -> t -> t
(** Variable renaming. The map must be injective on the support of the
    argument. Implemented via {!vector_compose} unless the map is
    monotone on levels, in which case a fast structural relabeling is
    used. *)

val cofactor : man -> t -> (int * bool) list -> t
(** Restrict by a cube. *)

(* Cubes. *)
val cube : man -> (int * bool) list -> t
val cube_of : man -> t -> (int * bool) list
(** Inverse of {!cube}; raises [Invalid_argument] if the node is not a
    cube. *)

val any_sat : man -> t -> (int * bool) list
(** Some satisfying cube (a path to the 1-terminal). Raises
    [Not_found] on the zero BDD. *)

val fattest_cube : man -> t -> (int * bool) list
(** A satisfying cube with the fewest assigned variables — the paper's
    "fattest cube". Raises [Not_found] on the zero BDD. *)

(* Analysis. *)
val support : man -> t -> int list
val size : man -> t -> int
(** Number of distinct nodes reachable from the handle. *)

val density : man -> t -> float
(** Fraction of the 2^nvars minterms that satisfy the function. *)

val count_minterms : man -> over:int -> t -> float
(** [count_minterms m ~over f] is the number of satisfying minterms of
    [f] counted over a space of [over] variables; [f]'s support must
    not exceed [over] variables... counted as [density *. 2.0 ** over].
    Callers use it after projecting onto a small signal set. *)

val eval : man -> t -> (int -> bool) -> bool

val rebuild : src:man -> dst:man -> map:(int -> int) -> t -> t
(** Translate a BDD into another manager, applying a variable map (the
    new order need not be compatible with the old one). Used to
    implement reordering-by-rebuild. *)

val subset_heavy : man -> max_size:int -> t -> t
(** Heavy-branch under-approximation (Ravi–Somenzi style BDD
    subsetting): while the BDD exceeds [max_size] nodes, replace the
    lighter branch (fewer minterms) of the node whose removal loses the
    least density by zero. The result implies the argument. The paper
    evaluates — and rejects — subsetting as a pre-image fallback; this
    implementation exists to reproduce that comparison. *)

val pp_stats : Format.formatter -> man -> unit
