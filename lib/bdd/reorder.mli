(** Reordering by rebuild.

    The classic dynamic reordering (in-place sifting) is replaced by a
    functional equivalent suited to a hash-consed store: compute a
    better order with FORCE over the BDDs' own structure (each node
    links its variable to its children's variables), then rebuild the
    live roots into a fresh manager under that order. The old manager
    is untouched; callers switch over and drop it. *)

val improve :
  Bdd.man ->
  roots:Bdd.t list ->
  Bdd.man * Bdd.t list * (int -> int)
(** [improve man ~roots] returns the new manager, the roots translated
    into it (in order), and the variable map applied (old variable →
    new level). The translation shares one memo table, so common
    subgraphs stay shared. The new manager inherits the node limit. *)

val sift :
  ?max_passes:int ->
  Bdd.man ->
  roots:Bdd.t list ->
  Bdd.man * Bdd.t list * (int -> int)
(** Greedy sifting by rebuild: sweep adjacent variable transpositions,
    keeping each swap that shrinks the shared node count, until a full
    pass improves nothing (or [max_passes], default 4, is reached).
    Stronger than {!improve} on orders whose damage the circuit
    structure cannot reveal, at a cost of O(variables · nodes) work per
    pass. Returns the same triple as {!improve}. *)

val total_size : Bdd.man -> Bdd.t list -> int
(** Distinct nodes reachable from any of the roots — the quantity
    {!improve} and {!sift} try to shrink; exposed for tests and
    benchmarks. *)
