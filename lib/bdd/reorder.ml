module Telemetry = Rfn_obs.Telemetry

let c_invocations = Telemetry.counter "bdd.reorder.invocations"
let c_saved = Telemetry.counter "bdd.reorder.nodes_saved"

let total_size man roots =
  let seen = Hashtbl.create 1024 in
  let rec walk f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      if not (Bdd.is_terminal f) then begin
        walk (Bdd.low man f);
        walk (Bdd.high man f)
      end
    end
  in
  List.iter walk roots;
  Hashtbl.length seen

(* Hyperedges of the live graph: every node connects its variable to
   its children's variables. *)
let structure_edges man roots =
  let seen = Hashtbl.create 1024 in
  let edges = ref [] in
  let rec walk f =
    if (not (Bdd.is_terminal f)) && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      let v = Bdd.topvar man f in
      let lo = Bdd.low man f and hi = Bdd.high man f in
      let children =
        List.filter_map
          (fun c ->
            if Bdd.is_terminal c then None else Some (Bdd.topvar man c))
          [ lo; hi ]
      in
      if children <> [] then edges := (v :: children) :: !edges;
      walk lo;
      walk hi
    end
  in
  List.iter walk roots;
  !edges

(* Rebuild [roots] from [man] into a fresh manager under [map]. *)
let rebuild_under man ~roots ~map =
  let dst = Bdd.create ~node_limit:(Bdd.node_limit man) ~nvars:(Bdd.nvars man) () in
  let memo = Hashtbl.create 1024 in
  let rec rb f =
    if Bdd.is_zero f then Bdd.zero dst
    else if Bdd.is_one f then Bdd.one dst
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let lo = rb (Bdd.low man f) and hi = rb (Bdd.high man f) in
        let r = Bdd.ite dst (Bdd.var dst map.(Bdd.topvar man f)) hi lo in
        Hashtbl.add memo f r;
        r
  in
  let roots' = List.map rb roots in
  (dst, roots')

let sift ?(max_passes = 4) man ~roots =
  Telemetry.incr c_invocations;
  let nvars = Bdd.nvars man in
  (* accumulated map: old variable -> current level *)
  let perm = Array.init nvars (fun i -> i) in
  let cur_man = ref man and cur_roots = ref roots in
  let size0 = total_size man roots in
  let cur_size = ref size0 in
  let passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    incr passes;
    improved := false;
    for level = 0 to nvars - 2 do
      (* candidate: transpose the variables at [level] and [level+1] *)
      let swap = Array.init nvars (fun v ->
          if perm.(v) = level then level + 1
          else if perm.(v) = level + 1 then level
          else perm.(v))
      in
      let dst, roots' = rebuild_under man ~roots ~map:swap in
      let size' = total_size dst roots' in
      if size' < !cur_size then begin
        Array.blit swap 0 perm 0 nvars;
        cur_man := dst;
        cur_roots := roots';
        cur_size := size';
        improved := true
      end
    done
  done;
  Telemetry.add c_saved (size0 - !cur_size);
  (!cur_man, !cur_roots, fun v -> perm.(v))

let improve man ~roots =
  Telemetry.incr c_invocations;
  let nvars = Bdd.nvars man in
  let edges = structure_edges man roots in
  let init = Array.init nvars (fun i -> i) in
  let map_arr = Force.order ~init ~nvars ~edges () in
  let dst = Bdd.create ~node_limit:(Bdd.node_limit man) ~nvars () in
  (* one shared memo across all roots so sharing survives translation *)
  let memo = Hashtbl.create 1024 in
  let rec rb f =
    if Bdd.is_zero f then Bdd.zero dst
    else if Bdd.is_one f then Bdd.one dst
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let lo = rb (Bdd.low man f) and hi = rb (Bdd.high man f) in
        let r =
          Bdd.ite dst (Bdd.var dst map_arr.(Bdd.topvar man f)) hi lo
        in
        Hashtbl.add memo f r;
        r
  in
  let roots' = List.map rb roots in
  (* sizing both managers is O(live nodes) — only pay it when telemetry
     is recording *)
  if Telemetry.enabled () then
    Telemetry.add c_saved (max 0 (total_size man roots - total_size dst roots'));
  (dst, roots', fun v -> map_arr.(v))
