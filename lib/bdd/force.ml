let span ~pos ~edges =
  List.fold_left
    (fun acc edge ->
      match edge with
      | [] | [ _ ] -> acc
      | v0 :: rest ->
        let mn, mx =
          List.fold_left
            (fun (mn, mx) v -> (min mn pos.(v), max mx pos.(v)))
            (pos.(v0), pos.(v0))
            rest
        in
        acc + (mx - mn))
    0 edges

let order ?(iterations = 30) ?init ~nvars ~edges () =
  let edges = List.filter (fun e -> List.length e > 1) edges in
  let pos =
    match init with
    | Some p when Array.length p = nvars -> Array.copy p
    | Some _ -> invalid_arg "Force.order: init size mismatch"
    | None -> Array.init nvars (fun i -> i)
  in
  if edges = [] || nvars = 0 then pos
  else begin
    let best = Array.copy pos in
    let best_span = ref (span ~pos ~edges) in
    let continue_ = ref true in
    let iter = ref 0 in
    while !continue_ && !iter < iterations do
      incr iter;
      (* Center of gravity of each edge under the current positions. *)
      let sum = Array.make nvars 0.0 and cnt = Array.make nvars 0 in
      List.iter
        (fun edge ->
          let cog =
            List.fold_left (fun a v -> a +. float_of_int pos.(v)) 0.0 edge
            /. float_of_int (List.length edge)
          in
          List.iter
            (fun v ->
              sum.(v) <- sum.(v) +. cog;
              cnt.(v) <- cnt.(v) + 1)
            edge)
        edges;
      (* New position of a vertex: mean of its edges' centers; isolated
         vertices keep their position (stable sort sends them last
         among ties). *)
      let weight v =
        if cnt.(v) = 0 then float_of_int pos.(v)
        else sum.(v) /. float_of_int cnt.(v)
      in
      let by_weight = Array.init nvars (fun v -> v) in
      Array.sort
        (fun a b ->
          let c = compare (weight a) (weight b) in
          if c <> 0 then c else compare pos.(a) pos.(b))
        by_weight;
      Array.iteri (fun level v -> pos.(v) <- level) by_weight;
      let s = span ~pos ~edges in
      if s < !best_span then begin
        best_span := s;
        Array.blit pos 0 best 0 nvars
      end
      else continue_ := false
    done;
    best
  end
