open Rfn_circuit
module B = Circuit.Builder

type params = { shift_bytes : int; fifo_words : int }

let default = { shift_bytes = 8; fifo_words = 16 }
let small = { shift_bytes = 1; fifo_words = 2 }

type t = { circuit : Circuit.t; coverage_sets : (string * int list) list }

let make ?(params = default) () =
  let p = params in
  let b = B.create () in
  let rx = B.input b "rx" in
  let sync_seen = B.input b "sync_seen" in
  let bit_strobe = B.input b "bit_strobe" in
  let host_abort = B.input b "host_abort" in

  (* Receive FSM: one-hot over 8 phases. State register i is named
     after the phase it encodes. *)
  let phases = [| "sync"; "pid"; "token"; "data"; "crc"; "hsk"; "eop"; "err" |] in
  let st =
    Array.mapi
      (fun i name ->
        B.reg b ~init:(if i = 0 then `One else `Zero) ("st_" ^ name))
      phases
  in
  (* Byte counter within a field. *)
  let bytecnt = Rtl.regs b "bytecnt" 4 in
  let byte_done = Rtl.eq_const b bytecnt 7 in
  Rtl.connect b bytecnt
    (Rtl.mux b byte_done
       (Rtl.mux b bit_strobe bytecnt (Rtl.incr b bytecnt))
       (Rtl.const b ~width:4 0));

  (* Latched PID and its complement check. *)
  let pid = Rtl.regs b "pid" 4 in
  let pid_shift = B.and2 b st.(1) bit_strobe in
  Array.iteri
    (fun j r ->
      let src = if j = 0 then rx else pid.(j - 1) in
      B.connect b r (B.mux b pid_shift r src))
    pid;
  let pid_token = Rtl.eq_const b pid 0b1001 in
  let pid_data = Rtl.eq_const b pid 0b0011 in
  let pid_hsk = Rtl.eq_const b pid 0b0010 in
  let pid_bad =
    B.not_ b (B.or_l b [ pid_token; pid_data; pid_hsk ])
  in

  let sync = st.(0) and spid = st.(1) and stoken = st.(2) and sdata = st.(3)
  and scrc = st.(4) and shsk = st.(5) and seop = st.(6) and serr = st.(7) in
  let next =
    [|
      (* sync *)
      B.or2 b (B.and2 b sync (B.not_ b sync_seen)) seop;
      (* pid *)
      B.or2 b (B.and2 b sync sync_seen) (B.and2 b spid (B.not_ b byte_done));
      (* token *)
      B.or2 b
        (B.and_l b [ spid; byte_done; pid_token ])
        (B.and2 b stoken (B.not_ b byte_done));
      (* data *)
      B.or2 b
        (B.and_l b [ spid; byte_done; pid_data ])
        (B.and2 b sdata (B.not_ b byte_done));
      (* crc *)
      B.or2 b
        (B.or2 b (B.and2 b stoken byte_done) (B.and2 b sdata byte_done))
        (B.and2 b scrc (B.not_ b byte_done));
      (* hsk *)
      B.or2 b
        (B.and_l b [ spid; byte_done; pid_hsk ])
        (B.and2 b shsk (B.not_ b byte_done));
      (* eop *)
      B.or2 b (B.and2 b scrc byte_done) (B.and2 b shsk byte_done);
      (* err *)
      B.or2 b
        (B.and_l b [ spid; byte_done; pid_bad ])
        (B.and2 b serr (B.not_ b host_abort));
    |]
  in
  Array.iteri (fun i r -> B.connect b r next.(i)) st;

  (* Endpoint FSM (one-hot 3): idle / active / halted. *)
  let ep_idle = B.reg b ~init:`One "ep_idle" in
  let ep_active = B.reg b "ep_active" in
  let ep_halt = B.reg b "ep_halt" in
  B.connect b ep_idle
    (B.or2 b (B.and2 b ep_idle (B.not_ b stoken)) (B.and2 b ep_active seop));
  B.connect b ep_active
    (B.or2 b (B.and2 b ep_idle stoken)
       (B.and_l b [ ep_active; B.not_ b seop; B.not_ b serr ]));
  B.connect b ep_halt (B.or2 b ep_halt (B.and2 b ep_active serr));

  (* Status flags. flag_err is connected below once the FIFO exists:
     a data-integrity failure is an error cause, pulling the FIFO and
     the shift register into the flag's (hence USB2's) COI. *)
  let flag_err_sticky = B.reg b "flag_err" in
  let flag_rx_busy = B.reg_of b "flag_busy" (B.not_ b sync) in
  let flag_data_seen = B.reg b "flag_data" in
  B.connect b flag_data_seen (B.or2 b flag_data_seen sdata);
  let flag_tok_seen = B.reg b "flag_tok" in
  B.connect b flag_tok_seen (B.or2 b flag_tok_seen stoken);
  let flag_crc_ok = B.reg b "flag_crc_ok" in
  let flag_abort = B.reg_of b "flag_abort" host_abort in

  (* CRC registers and the data path. *)
  let crc5 = Rtl.regs b "crc5" 5 in
  let crc5_en = B.and2 b stoken bit_strobe in
  let crc5_fb = B.xor2 b rx crc5.(4) in
  Array.iteri
    (fun j r ->
      let shifted = if j = 0 then crc5_fb else if j = 2 then B.xor2 b crc5.(1) crc5_fb else crc5.(j - 1) in
      B.connect b r (B.mux b crc5_en r shifted))
    crc5;
  let crc16 = Rtl.regs b "crc16" 16 in
  let crc16_en = B.and2 b sdata bit_strobe in
  let crc16_fb = B.xor2 b rx crc16.(15) in
  Array.iteri
    (fun j r ->
      let shifted =
        if j = 0 then crc16_fb
        else if j = 2 || j = 15 then B.xor2 b crc16.(j - 1) crc16_fb
        else crc16.(j - 1)
      in
      B.connect b r (B.mux b crc16_en r shifted))
    crc16;
  B.connect b flag_crc_ok
    (B.mux b seop flag_crc_ok
       (B.and2 b (Rtl.is_zero b crc5) (Rtl.is_zero b crc16)));
  let shift =
    Rfn_circuit.Rtl.shift_reg b ~name:"shift" ~length:(8 * p.shift_bytes)
      ~din:rx ~enable:crc16_en ()
  in
  let fifo =
    Array.init p.fifo_words (fun i ->
        let w = Rtl.regs b (Printf.sprintf "fword_%d" i) 8 in
        let sel = B.and2 b seop (Rtl.eq_const b bytecnt i) in
        Rtl.connect b w
          (Rtl.mux b sel w (Array.sub shift 0 8));
        w)
  in
  let fifo_parity =
    B.gate b Gate.Xor (Array.concat (Array.to_list fifo))
  in
  let shift_parity = B.gate b Gate.Xor (Array.copy shift) in
  B.connect b flag_err_sticky
    (B.or_l b
       [ flag_err_sticky; serr; B.and_l b [ fifo_parity; shift_parity; seop ] ]);
  B.output b "err" serr;
  B.output b "fifo_parity" fifo_parity;

  let circuit = B.finalize b in
  let fsm = Array.to_list st in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let coverage_sets =
    [
      ("USB1", take 6 fsm);
      ( "USB2",
        fsm
        @ Array.to_list pid
        @ [ ep_idle; ep_active; ep_halt ]
        @ [
            flag_err_sticky;
            flag_rx_busy;
            flag_data_seen;
            flag_tok_seen;
            flag_crc_ok;
            flag_abort;
          ] );
    ]
  in
  assert (List.length (List.assoc "USB1" coverage_sets) = 6);
  assert (List.length (List.assoc "USB2" coverage_sets) = 21);
  { circuit; coverage_sets }
