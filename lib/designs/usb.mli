(** Synthetic stand-in for the USB bus controller design of the
    paper's Table 2.

    A packet-protocol engine: a one-hot receive FSM (sync / pid /
    token / data / crc / handshake / eop / error), a latched PID, an
    endpoint FSM, status flags, CRC5/CRC16 registers, a byte counter
    and a data shift register. Coverage sets: USB1 has 6 signals
    (receive-FSM bits — mostly unreachable because of the one-hot
    encoding), USB2 has 21 signals (FSM + PID + endpoint + flags). *)

type params = { shift_bytes : int; fifo_words : int }

val default : params
val small : params

type t = {
  circuit : Rfn_circuit.Circuit.t;
  coverage_sets : (string * int list) list;  (** USB1 (6), USB2 (21) *)
}

val make : ?params:params -> unit -> t
