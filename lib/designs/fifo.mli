(** Synthetic stand-in for the paper's FIFO controller design
    (Table 1: properties psh_hf, psh_af, psh_full; 135 registers in
    the COI).

    A FIFO with head/tail pointers, an occupancy counter, registered
    half-full / almost-full / full flags, a per-entry valid vector and
    a data store. The data store and valid bits are pulled into the
    properties' cone of influence through an integrity checker that
    gates the watchdogs — giving the paper's profile of a COI much
    larger than the registers any proof needs.

    Properties (all True for the default parameters):
    - [psh_hf]: an accepted push that fills the FIFO to at least the
      half-full mark must find the half-full flag already consistent,
    - [psh_af]: likewise for the almost-full flag,
    - [psh_full]: a push is never accepted when the FIFO is full. *)

type params = {
  depth_log2 : int;  (** entries = 2^depth_log2 *)
  data_width : int;
  almost_full_slack : int;  (** full - slack = almost-full threshold *)
}

val default : params
(** [depth_log2 = 4], [data_width = 6], sized to 135 registers. *)

val small : params
(** A brute-forceable instance for tests. *)

type t = {
  circuit : Rfn_circuit.Circuit.t;
  psh_hf : Rfn_circuit.Property.t;
  psh_af : Rfn_circuit.Property.t;
  psh_full : Rfn_circuit.Property.t;
}

val make : ?params:params -> unit -> t
