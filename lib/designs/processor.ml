open Rfn_circuit
module B = Circuit.Builder

type params = {
  clients : int;
  cnt_width : int;
  bug_threshold : int;
  regfile_words : int;
  regfile_width : int;
  reference_regs : int;
  lfsr_count : int;
  lfsr_width : int;
  history_chains : int;
  history_depth : int;
  perf_counters : int;
  perf_width : int;
  hash_depth : int;
  pad_regs : int;
}

let default =
  {
    clients = 4;
    cnt_width = 5;
    bug_threshold = 25;
    regfile_words = 64;
    regfile_width = 32;
    reference_regs = 16;
    lfsr_count = 4;
    lfsr_width = 128;
    history_chains = 4;
    history_depth = 128;
    perf_counters = 8;
    perf_width = 32;
    hash_depth = 25;
    pad_regs = 1090;
  }

let small =
  {
    clients = 2;
    cnt_width = 3;
    bug_threshold = 3;
    regfile_words = 4;
    regfile_width = 4;
    reference_regs = 2;
    lfsr_count = 1;
    lfsr_width = 5;
    history_chains = 1;
    history_depth = 4;
    perf_counters = 1;
    perf_width = 4;
    hash_depth = 1;
    pad_regs = 4;
  }

type t = { circuit : Circuit.t; mutex : Property.t; error_flag : Property.t }

(* Binary AND tree (explicit two-input gates, gate-count faithful to a
   synthesized netlist, unlike the builder's n-ary gates). *)
let rec and_tree b = function
  | [] -> B.const b true
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | a :: c :: rest -> B.and2 b a c :: pair rest
      | tail -> tail
    in
    and_tree b (pair xs)

let rec or_tree b = function
  | [] -> B.const b false
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | a :: c :: rest -> B.or2 b a c :: pair rest
      | tail -> tail
    in
    or_tree b (pair xs)

let rec xor_tree b = function
  | [] -> B.const b false
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | a :: c :: rest -> B.xor2 b a c :: pair rest
      | tail -> tail
    in
    xor_tree b (pair xs)

(* Wide equality with an explicit tree. *)
let eq_tree b x y =
  and_tree b (Array.to_list (Rtl.xor_ b x y) |> List.map (B.not_ b))

(* Rotating-priority arbiter bank over a one-hot pointer: client i is
   granted iff it requests and no client between the pointer and i
   (cyclically) requests. One-hot output relies on the pointer being
   one-hot — the invariant RFN must discover. *)
let arbiter_bank b ~name ~reqs ~active ~enable =
  let n = Array.length reqs in
  let ptr =
    Array.init n (fun i ->
        B.reg b
          ~init:(if i = 0 then `One else `Zero)
          (Printf.sprintf "%s_ptr_%d" name i))
  in
  let grants =
    Array.init n (fun i ->
        let terms =
          List.init n (fun j ->
              (* pointer at j, i is the first requester from j *)
              let blockers =
                let rec collect l acc =
                  if l = i then acc
                  else collect ((l + 1) mod n) (B.not_ b reqs.(l) :: acc)
                in
                collect j []
              in
              and_tree b (ptr.(j) :: reqs.(i) :: blockers))
        in
        B.and_l b [ or_tree b terms; active; enable ])
  in
  let any = or_tree b (Array.to_list grants) in
  (* Rotate past the granted client. *)
  let rotated = Array.init n (fun i -> ptr.((i + n - 1) mod n)) in
  Array.iteri (fun i p -> B.connect b p (B.mux b any p rotated.(i))) ptr;
  (grants, any)

let make ?(params = default) () =
  let p = params in
  let b = B.create () in
  let reqs = Array.init p.clients (fun i -> B.input b (Printf.sprintf "req_%d" i)) in
  let flush = B.input b "flush" in
  let fetch_en = B.input b "fetch_en" in
  let mode_switch = B.input b "mode_switch" in
  let wr_en = B.input b "wr_en" in
  let din = Rtl.input b "din" p.regfile_width in

  (* ---- datapath (the COI filler) ------------------------------- *)
  (* Everything below reaches the control core only through [stall];
     every stall term is gated by the sticky [wrote] bit so the design
     is quiescent until the first write. *)
  let wrote = B.reg b "wrote" in
  let rec lg n = if n <= 1 then 0 else 1 + lg (n / 2) in
  let wptr = Rtl.regs b "wptr" (max 1 (lg p.regfile_words)) in
  let regfile =
    Array.init p.regfile_words (fun i ->
        Rtl.regs b (Printf.sprintf "rf_%d" i) p.regfile_width)
  in
  let refs =
    Array.init p.reference_regs (fun i ->
        Rtl.regs b (Printf.sprintf "ref_%d" i) p.regfile_width)
  in
  let lfsrs =
    Array.init p.lfsr_count (fun i ->
        let l = Rtl.regs b ~init:1 (Printf.sprintf "lfsr_%d" i) p.lfsr_width in
        let w = p.lfsr_width in
        let feedback = B.xor2 b l.(w - 1) l.(if w > 3 then w - 4 else 0) in
        Array.iteri
          (fun j r -> B.connect b r (if j = 0 then feedback else l.(j - 1)))
          l;
        l)
  in
  let history =
    Array.init p.history_chains (fun i ->
        Array.init p.history_depth (fun j ->
            B.reg b (Printf.sprintf "hist_%d_%d" i j)))
  in
  let pads =
    Array.init p.pad_regs (fun i -> B.reg b (Printf.sprintf "pad_%d" i))
  in

  (* ---- control core --------------------------------------------- *)
  let m0 = B.reg b ~init:`One "mode_0" in
  let m1 = B.reg b ~init:`Zero "mode_1" in
  B.connect b m0 (B.mux b mode_switch m0 m1);
  B.connect b m1 (B.mux b mode_switch m1 m0);

  (* Stall terms. Each term is registered before reaching [stall], as
     a synthesized design would pipeline its scoreboard: the huge
     comparator logic then sits behind registers, so abstract models
     whose cones reach [stall] stop at these flag registers instead of
     swallowing the whole matrix. Each reference register is compared
     only against its own group of regfile words (bounded operand
     sharing keeps the comparators' BDDs small even if a flag register
     is ever refined into an abstract model). *)
  let cmp_hit_regs =
    Array.init p.reference_regs (fun g ->
        let hits =
          Array.to_list regfile
          |> List.filteri (fun i _ -> i mod p.reference_regs = g)
          |> List.map (fun word -> eq_tree b word refs.(g))
        in
        B.reg_of b (Printf.sprintf "cmp_hit_%d" g) (or_tree b hits))
  in
  let hist_heavy_reg =
    (* "history overflow": the oldest few bits of each chain are all
       set — reading the chain tail keeps the whole chain in the COI *)
    B.reg_of b "hist_heavy"
      (or_tree b
         (Array.to_list history
         |> List.map (fun chain ->
                let len = Array.length chain in
                let n = min 3 len in
                and_tree b (Array.to_list (Array.sub chain (len - n) n)))))
  in
  let rf_parity = xor_tree b (Array.to_list regfile |> List.concat_map Array.to_list) in
  let rf_parity_reg = B.reg_of b "rf_parity" rf_parity in
  let pad_parity_reg = B.reg_of b "pad_parity" (xor_tree b (Array.to_list pads)) in
  let lfsr_hit_reg =
    B.reg_of b "lfsr_hit"
      (or_tree b
         (Array.to_list lfsrs
         |> List.mapi (fun i l ->
                let word = regfile.((i + 1) mod p.regfile_words) in
                let n = min 8 (min (Array.length l) p.regfile_width) in
                eq_tree b (Array.sub l 0 n) (Array.sub word 0 n))))
  in
  (* A deep combinational mixing network per regfile word (the bulk of
     the design's gate count, standing in for the datapath ALUs a real
     processor synthesizes): layered rotate-xor-and hashing, observed
     through a single registered detector. The detector is 0 whenever
     the regfile is 0, so a quiescent design never raises it. *)
  let hash_hit_reg =
    let hash word =
      let n = Array.length word in
      let layer a =
        Array.init n (fun j ->
            B.xor2 b (B.and2 b a.(j) a.((j + 3) mod n)) a.((j + 7) mod n))
      in
      let rec go a d = if d = 0 then a else go (layer a) (d - 1) in
      go word p.hash_depth
    in
    let detect word =
      and_tree b (Array.to_list (Array.sub (hash word) 0 (min 8 p.regfile_width)))
    in
    B.reg_of b "hash_hit"
      (or_tree b (Array.to_list regfile |> List.map detect))
  in
  let perf_sat = ref (B.const b false) in
  (* perf counters are connected after the grants exist; perf_sat is a
     forward reference resolved through a register *)
  let perf_sat_reg = B.reg b "perf_sat" in
  let stall =
    B.and2 b wrote
      (or_tree b
         (Array.to_list cmp_hit_regs
         @ [
             hist_heavy_reg; rf_parity_reg; pad_parity_reg; lfsr_hit_reg;
             hash_hit_reg; perf_sat_reg;
           ]))
  in

  (* Pipeline valids. *)
  let v_fetch = B.reg_of b "v_fetch" fetch_en in
  let v_dec = B.reg_of b "v_dec" (B.and2 b v_fetch (B.not_ b stall)) in
  let v_exe = B.reg b "v_exe" in
  B.connect b v_exe (B.and2 b v_dec (B.not_ b stall));

  (* Two arbiter banks, one per mode; double grants require breaking
     the one-hot invariants. *)
  let enable = B.and2 b v_exe (B.not_ b stall) in
  let grants_a, _ = arbiter_bank b ~name:"bank_a" ~reqs ~active:m0 ~enable in
  let grants_b, _ = arbiter_bank b ~name:"bank_b" ~reqs ~active:m1 ~enable in
  let grants =
    Array.init p.clients (fun i ->
        B.reg_of b
          (Printf.sprintf "grant_%d" i)
          (B.or2 b grants_a.(i) grants_b.(i)))
  in
  let grant_any = or_tree b (Array.to_list grants) in

  (* Transaction counter: counts grant-0 cycles, cleared by flush. *)
  let cnt = Rtl.regs b "cnt" p.cnt_width in
  let cnt_inc = B.and2 b grants.(0) (B.not_ b flush) in
  Rtl.connect b cnt
    (Rtl.mux b flush (Rtl.mux b cnt_inc cnt (Rtl.incr b cnt))
       (Rtl.const b ~width:p.cnt_width 0));

  (* Watchdog 1: mutual exclusion of grants. *)
  let pairs = ref [] in
  for i = 0 to p.clients - 1 do
    for j = i + 1 to p.clients - 1 do
      pairs := B.and2 b grants.(i) grants.(j) :: !pairs
    done
  done;
  let mutex_wd = B.reg_of b "mutex_bad" (or_tree b !pairs) in
  B.output b "mutex" mutex_wd;

  (* Watchdog 2: the planted bug. Arming takes four flush pulses
     (retry saturates at 3, then one more flush arms); the violation
     then needs bug_threshold+1 grant-0 cycles. *)
  let retry = Rtl.regs b "retry" 3 in
  let retry_sat = Rtl.eq_const b retry 3 in
  Rtl.connect b retry
    (Rtl.mux b (B.and2 b flush (B.not_ b retry_sat)) retry (Rtl.incr b retry));
  let armed = B.reg b "armed" in
  B.connect b armed (B.or2 b armed (B.and2 b retry_sat flush));
  let violation =
    B.and_l b [ armed; Rtl.eq_const b cnt p.bug_threshold; grants.(0) ]
  in
  let error_wd = B.reg_of b "error_bad" violation in
  B.output b "error_flag" error_wd;

  (* ---- datapath next-state logic -------------------------------- *)
  let do_write = B.and2 b wr_en grant_any in
  B.connect b wrote (B.or2 b wrote do_write);
  Rtl.connect b wptr (Rtl.mux b do_write wptr (Rtl.incr b wptr));
  Array.iteri
    (fun i word ->
      let sel = B.and2 b do_write (Rtl.eq_const b wptr i) in
      Rtl.connect b word (Rtl.mux b sel word din))
    regfile;
  Array.iteri
    (fun i r ->
      (* references rotate among themselves on mode switches *)
      let srcidx = (i + 1) mod p.reference_regs in
      Rtl.connect b r (Rtl.mux b mode_switch r refs.(srcidx)))
    refs;
  let din_parity = xor_tree b (Array.to_list din) in
  Array.iter
    (fun chain ->
      Array.iteri
        (fun j r ->
          let src = if j = 0 then din_parity else chain.(j - 1) in
          B.connect b r (B.mux b do_write r src))
        chain)
    history;
  Array.iteri
    (fun i r ->
      let src = if i = 0 then B.xor2 b rf_parity lfsrs.(0).(0) else pads.(i - 1) in
      B.connect b r src)
    pads;
  let perf =
    Array.init p.perf_counters (fun i ->
        let en =
          if i = 0 then B.and2 b grant_any (Rtl.is_zero b cnt)
          else B.and2 b grant_any grants.(i mod p.clients)
        in
        Rtl.counter b ~name:(Printf.sprintf "perf_%d" i) ~width:p.perf_width
          ~enable:en ())
  in
  perf_sat :=
    or_tree b
      (Array.to_list perf
      |> List.map (fun c -> Rtl.eq_const b c ((1 lsl min p.perf_width 20) - 1)));
  B.connect b perf_sat_reg !perf_sat;

  let circuit = B.finalize b in
  {
    circuit;
    mutex = Property.of_output circuit "mutex";
    error_flag = Property.of_output circuit "error_flag";
  }
