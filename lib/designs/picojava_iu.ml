open Rfn_circuit
module B = Circuit.Builder

type params = { sc_entries : int; sc_width : int; operand_latches : int }

let default = { sc_entries = 128; sc_width = 16; operand_latches = 16 }
let small = { sc_entries = 4; sc_width = 2; operand_latches = 2 }

type t = { circuit : Circuit.t; coverage_sets : (string * int list) list }

(* One-hot FSM helper: a register per state, transition function given
   as, per state, the condition re-entering it. *)
let one_hot_fsm b ~name ~states ~next =
  let regs =
    List.mapi
      (fun i st ->
        B.reg b ~init:(if i = 0 then `One else `Zero)
          (Printf.sprintf "%s_%s" name st))
      states
  in
  let arr = Array.of_list regs in
  List.iteri (fun i r -> B.connect b r (next arr i)) regs;
  arr

let make ?(params = default) () =
  let p = params in
  let b = B.create () in
  let instr_valid = B.input b "instr_valid" in
  let op = Rtl.input b "op" 4 in
  let mem_ready = B.input b "mem_ready" in
  let trap_req = B.input b "trap_req" in
  let din = Rtl.input b "din" p.sc_width in

  (* Decoded instruction class latches. *)
  let is_load = B.reg_of b "is_load" (B.and2 b instr_valid (Rtl.eq_const b op 1)) in
  let is_store = B.reg_of b "is_store" (B.and2 b instr_valid (Rtl.eq_const b op 2)) in
  let is_branch = B.reg_of b "is_branch" (B.and2 b instr_valid (Rtl.eq_const b op 3)) in
  let is_trap = B.reg_of b "is_trap" (B.and2 b instr_valid (Rtl.eq_const b op 4)) in

  (* Stack cache occupancy and watermarks. *)
  let rec lg n = if n <= 1 then 0 else 1 + lg (n / 2) in
  let cnt_w = lg p.sc_entries + 1 in
  let sc_count = Rtl.regs b "sc_count" cnt_w in
  let low_mark = B.reg_of b "sc_low" (Rtl.lt b sc_count (Rtl.const b ~width:cnt_w (p.sc_entries / 4))) in
  let high_mark = B.reg_of b "sc_high" (Rtl.ge_const b sc_count (3 * p.sc_entries / 4)) in

  (* Dribbler FSM: idle / spill / fill / wait (one-hot). *)
  let dribble =
    one_hot_fsm b ~name:"drib" ~states:[ "idle"; "spill"; "fill"; "wait" ]
      ~next:(fun s i ->
        let idle = s.(0) and spill = s.(1) and fill = s.(2) and wait = s.(3) in
        match i with
        | 0 ->
          B.or2 b
            (B.and_l b [ idle; B.not_ b high_mark; B.not_ b low_mark ])
            (B.and2 b wait mem_ready)
        | 1 -> B.or2 b (B.and2 b idle high_mark) (B.and2 b spill (B.not_ b mem_ready))
        | 2 -> B.or2 b (B.and2 b idle low_mark) (B.and2 b fill (B.not_ b mem_ready))
        | _ ->
          B.or2 b
            (B.and2 b spill mem_ready)
            (B.and2 b fill mem_ready))
  in
  let dribbling = B.or2 b dribble.(1) dribble.(2) in

  (* Trap FSM: none / pending / flush (one-hot). The performance trap
     register (connected below, once the stack-cache datapath exists)
     is one of the trap causes — this ties the datapath into the
     control core and makes all coverage-set COIs coincide. *)
  let perf_trap = B.reg b "perf_trap" in
  let trap_cause = B.or_l b [ trap_req; is_trap; perf_trap ] in
  let trap =
    one_hot_fsm b ~name:"trap" ~states:[ "none"; "pend"; "flush" ]
      ~next:(fun s i ->
        let none = s.(0) and pend = s.(1) and fl = s.(2) in
        match i with
        | 0 -> B.or2 b (B.and2 b none (B.not_ b trap_cause)) fl
        | 1 ->
          B.or2 b (B.and2 b none trap_cause)
            (B.and2 b pend (B.not_ b mem_ready))
        | _ -> B.and2 b pend mem_ready)
  in
  let flushing = trap.(2) in

  (* Hazard / forwarding bits. *)
  let hazard_ld = B.reg_of b "haz_load" (B.and2 b is_load is_store) in
  let hazard_br = B.reg_of b "haz_branch" (B.and2 b is_branch instr_valid) in
  let fwd_a = B.reg_of b "fwd_a" (B.and2 b is_load (B.not_ b is_store)) in
  let fwd_b = B.reg_of b "fwd_b" (B.and2 b is_store (B.not_ b is_load)) in

  let stall =
    B.or2 b (B.or2 b dribbling hazard_ld)
      (B.or2 b (B.and2 b hazard_br (B.not_ b mem_ready)) trap.(1))
  in

  (* Six-stage valid chain, flushed on traps. *)
  let advance = B.not_ b stall in
  let stage names first =
    let rec build prev = function
      | [] -> []
      | n :: rest ->
        let v = B.reg b n in
        B.connect b v
          (B.and2 b (B.not_ b flushing) (B.mux b advance v prev));
        v :: build v rest
    in
    build first names
  in
  let valids = stage [ "v_f"; "v_d"; "v_r"; "v_e"; "v_c"; "v_w" ] instr_valid in
  let v_arr = Array.of_list valids in
  let commit = B.and2 b v_arr.(5) advance in

  (* Stack cache datapath: pointer, entry store, operand latches. *)
  let sc_ptr = Rtl.regs b "sc_ptr" (max 1 (lg p.sc_entries)) in
  let push = B.and2 b commit fwd_a and pop = B.and2 b commit fwd_b in
  Rtl.connect b sc_ptr
    (Rtl.mux b push
       (Rtl.mux b pop sc_ptr (Rtl.decr b sc_ptr))
       (Rtl.incr b sc_ptr));
  Rtl.connect b sc_count
    (Rtl.mux b (B.and2 b push (B.not_ b pop))
       (Rtl.mux b (B.and2 b pop (B.not_ b push)) sc_count (Rtl.decr b sc_count))
       (Rtl.incr b sc_count));
  let entries =
    Array.init p.sc_entries (fun i ->
        let w = Rtl.regs b (Printf.sprintf "sc_%d" i) p.sc_width in
        let sel = B.and2 b push (Rtl.eq_const b sc_ptr i) in
        Rtl.connect b w (Rtl.mux b sel w din);
        w)
  in
  let latches =
    Array.init p.operand_latches (fun i ->
        let w = Rtl.regs b (Printf.sprintf "opnd_%d" i) p.sc_width in
        let src = entries.(i mod p.sc_entries) in
        Rtl.connect b w (Rtl.mux b commit w src);
        w)
  in
  (* Tie the datapath back into the control core: a parity check feeds
     a performance trap, keeping everything in one COI. *)
  let dp_parity =
    B.gate b Gate.Xor
      (Array.concat (Array.to_list entries @ Array.to_list latches))
  in
  B.connect b perf_trap (B.and2 b dp_parity commit);
  B.output b "perf_trap" perf_trap;
  B.output b "commit" commit;

  let circuit = B.finalize b in
  let v = Array.to_list v_arr
  and d = Array.to_list dribble
  and t = Array.to_list trap in
  let coverage_sets =
    [
      ("IU1", v @ d);
      ("IU2", d @ t @ [ is_load; is_store; is_branch ]);
      ("IU3", v @ t @ [ hazard_ld ]);
      ( "IU4",
        [ low_mark; high_mark ] @ d @ [ is_load; is_store; is_branch; is_trap ]
      );
      ("IU5", [ hazard_ld; hazard_br; fwd_a; fwd_b; perf_trap; is_trap ] @ d);
    ]
  in
  List.iter (fun (_, set) -> assert (List.length set = 10)) coverage_sets;
  { circuit; coverage_sets }
