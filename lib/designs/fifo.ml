open Rfn_circuit
module B = Circuit.Builder

type params = { depth_log2 : int; data_width : int; almost_full_slack : int }

let default = { depth_log2 = 4; data_width = 6; almost_full_slack = 2 }
let small = { depth_log2 = 2; data_width = 2; almost_full_slack = 1 }

type t = {
  circuit : Circuit.t;
  psh_hf : Property.t;
  psh_af : Property.t;
  psh_full : Property.t;
}

let make ?(params = default) () =
  let { depth_log2; data_width; almost_full_slack } = params in
  let depth = 1 lsl depth_log2 in
  let cnt_w = depth_log2 + 1 in
  let b = B.create () in
  let push = B.input b "push" and pop = B.input b "pop" in
  let din = Rtl.input b "din" data_width in

  (* Pointers, occupancy counter and registered status flags. *)
  let head = Rtl.regs b "head" depth_log2 in
  let tail = Rtl.regs b "tail" depth_log2 in
  let count = Rtl.regs b "count" cnt_w in
  let full_now = Rtl.eq_const b count depth in
  let empty_now = Rtl.is_zero b count in
  let accept_push = B.and2 b push (B.not_ b full_now) in
  let accept_pop = B.and2 b pop (B.not_ b empty_now) in
  let count' =
    let inc = B.and2 b accept_push (B.not_ b accept_pop) in
    let dec = B.and2 b accept_pop (B.not_ b accept_push) in
    Rtl.mux b dec (Rtl.mux b inc count (Rtl.incr b count)) (Rtl.decr b count)
  in
  Rtl.connect b count count';
  Rtl.connect b head (Rtl.mux b accept_pop head (Rtl.incr b head));
  Rtl.connect b tail (Rtl.mux b accept_push tail (Rtl.incr b tail));
  let hf_flag = B.reg_of b "hf_flag" (Rtl.ge_const b count' (depth / 2)) in
  let af_flag =
    B.reg_of b "af_flag" (Rtl.ge_const b count' (depth - almost_full_slack))
  in
  let full_flag = B.reg_of b "full_flag" (Rtl.eq_const b count' depth) in
  let empty_flag = B.reg_of b "empty_flag" (Rtl.is_zero b count') in
  ignore empty_flag;

  (* Storage: per-entry valid bit and data word, plus an integrity
     tracker whose cone covers the whole store — this is what drags
     all 135 registers into the properties' COI while any proof only
     needs the counter and flag logic. *)
  let entry_sel ptr i = Rtl.eq_const b ptr i in
  let valid = Array.init depth (fun i -> B.reg b (Printf.sprintf "valid_%d" i)) in
  let data =
    Array.init depth (fun i -> Rtl.regs b (Printf.sprintf "data_%d" i) data_width)
  in
  let head_parity = ref (B.const b false) in
  for i = 0 to depth - 1 do
    let wr = B.and2 b accept_push (entry_sel tail i) in
    let rd = B.and2 b accept_pop (entry_sel head i) in
    B.connect b valid.(i)
      (B.or2 b wr (B.and2 b valid.(i) (B.not_ b rd)));
    Rtl.connect b data.(i) (Rtl.mux b wr data.(i) din);
    let parity_i = B.gate b Gate.Xor (Array.copy data.(i)) in
    head_parity :=
      B.or2 b !head_parity (B.and2 b rd parity_i)
  done;
  let din_parity = B.gate b Gate.Xor (Array.copy din) in
  let track = B.reg b "track" in
  B.connect b track
    (B.xor2 b track
       (B.xor2 b
          (B.and2 b accept_push din_parity)
          !head_parity));
  let recomputed =
    B.gate b Gate.Xor
      (Array.init depth (fun i ->
           B.and2 b valid.(i) (B.gate b Gate.Xor (Array.copy data.(i)))))
  in
  let scrub = Rtl.counter b ~name:"scrub" ~width:4 ~enable:(B.const b true) () in
  let age = Rtl.counter b ~name:"age" ~width:3 ~enable:accept_push () in
  let corrupt =
    B.or_l b
      [
        B.xor2 b track recomputed;
        B.and2 b (Rtl.eq_const b scrub 15) (B.and2 b track recomputed);
        B.and2 b (Rtl.eq_const b age 7) (B.and2 b track (B.not_ b recomputed));
      ]
  in
  let healthy = B.not_ b corrupt in

  (* Watchdogs: each property is an unreachability claim on a
     registered watchdog output, as in the paper. *)
  let watchdog name violation =
    let wd = B.reg_of b name (B.and2 b violation healthy) in
    B.output b name wd;
    wd
  in
  let _ =
    watchdog "psh_hf"
      (B.and_l b
         [ accept_push; Rtl.ge_const b count (depth / 2); B.not_ b hf_flag ])
  in
  let _ =
    watchdog "psh_af"
      (B.and_l b
         [
           accept_push;
           Rtl.ge_const b count (depth - almost_full_slack);
           B.not_ b af_flag;
         ])
  in
  let _ = watchdog "psh_full" (B.and_l b [ push; full_flag; accept_push ]) in
  let circuit = B.finalize b in
  {
    circuit;
    psh_hf = Property.of_output circuit "psh_hf";
    psh_af = Property.of_output circuit "psh_af";
    psh_full = Property.of_output circuit "psh_full";
  }
