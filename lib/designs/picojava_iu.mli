(** Synthetic stand-in for the Integer Unit (IU) of the Sun picoJava
    microprocessor used in the paper's Table 2.

    A six-stage pipeline control cluster — stage valid bits, hazard
    and forwarding logic, a trap FSM, and the stack-cache "dribbler"
    FSM with watermark flags — over a stack-cache datapath (entry
    store, operand latches, pointers). The control FSMs read each
    other, so the whole control core is one strongly connected
    component: the five coverage sets all have the same COI, exactly
    the surprise the paper reports for IU1–IU5.

    Each coverage set has 10 registers, hence 1,024 coverage states;
    unreachability comes from one-hot FSM encodings and pipeline-flow
    invariants. *)

type params = {
  sc_entries : int;  (** stack cache entries *)
  sc_width : int;  (** bits per entry *)
  operand_latches : int;
}

val default : params
val small : params

type t = {
  circuit : Rfn_circuit.Circuit.t;
  coverage_sets : (string * int list) list;
      (** IU1 … IU5, each 10 register signals *)
}

val make : ?params:params -> unit -> t
