(** Synthetic stand-in for the paper's processor module (Table 1:
    properties "mutex" — True — and "error_flag" — False with a
    30-cycle violation; ≈5,000 registers and ≈10⁵ gates in the COI).

    Structure:
    - a control core: a two-bank rotating-priority arbiter whose grant
      one-hotness depends on state invariants (one-hot bank pointers
      and a one-hot mode vector), pipeline valid bits, a transaction
      counter and a retry counter;
    - a wide datapath — register file, reference registers, comparator
      matrix, LFSRs, history shift chains, performance counters and a
      padding chain — whose only influence on the control core is a
      [stall] signal, so the entire datapath lies in the properties'
      cone of influence while no proof needs any of it;
    - watchdogs: [mutex] asserts if two grants are ever simultaneous
      (unreachable); [error_flag] asserts when the transaction counter
      reaches its threshold while granting after three retries — a
      planted protocol bug whose shortest violation is
      [bug_threshold + 5] cycles.

    The default parameters give 4,982 registers in the mutex COI and
    four more (the retry/arm logic) in the error_flag COI, matching
    the paper's Table 1 profile. *)

type params = {
  clients : int;  (** arbiter clients per bank *)
  cnt_width : int;  (** transaction counter width *)
  bug_threshold : int;  (** counter value arming the planted bug *)
  regfile_words : int;
  regfile_width : int;
  reference_regs : int;  (** comparator reference registers *)
  lfsr_count : int;
  lfsr_width : int;
  history_chains : int;
  history_depth : int;
  perf_counters : int;
  perf_width : int;
  hash_depth : int;  (** depth of the datapath mixing networks *)
  pad_regs : int;  (** filler chain, for hitting exact COI sizes *)
}

val default : params
(** Sized to the paper's Table 1 row: 4,982 registers in the mutex
    COI, 25-cycle bug threshold (30-state violation trace). *)

val small : params
(** A small instance for tests (same structure, tiny datapath). *)

type t = {
  circuit : Rfn_circuit.Circuit.t;
  mutex : Rfn_circuit.Property.t;
  error_flag : Rfn_circuit.Property.t;
}

val make : ?params:params -> unit -> t
