(** Min-cut designs (Ho et al., ICCAD 2000; used by RFN's hybrid
    engine, Section 2.2).

    Pre-image computation on an abstract model with thousands of free
    inputs is hopeless, so RFN pre-images on a *min-cut design*: a
    subcircuit of the abstract model that still contains the free-cut
    design (the registers plus every gate lying on a register-to-
    register combinational path) but has the fewest possible primary
    inputs. The inputs of the min-cut design are the signals of a
    minimum vertex cut separating the abstract model's free inputs from
    the free-cut design, found by max-flow on the node-split circuit
    graph. *)

type result = {
  mc : Rfn_circuit.Sview.t;
      (** the min-cut design: same registers as the abstract model,
          next-state cones truncated at the cut; its free inputs are
          the cut signals *)
  cut : int list;  (** the cut signals, sorted *)
  free_cut_gates : int;
      (** gates of the free-cut design (TFI ∩ TFO of the registers) *)
}

val compute : Rfn_circuit.Sview.t -> result
(** [compute n] for an abstract model [n]. The result's cut size never
    exceeds [Sview.num_free_inputs n] (taking every free input is
    always a valid cut). *)
