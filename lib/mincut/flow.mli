(** Max-flow (Dinic's algorithm) on unit/infinite-capacity graphs.

    Small generic core used by {!Mincut}; exposed for direct testing
    against brute-force min cuts. *)

type graph

val create : int -> graph
(** [create n] with vertices [0 .. n-1]. *)

val add_edge : graph -> int -> int -> int -> unit
(** [add_edge g u v cap] (directed). *)

val max_flow : graph -> source:int -> sink:int -> int
(** Runs Dinic to completion and returns the flow value. The graph
    retains the residual state for {!min_cut_reachable}. *)

val min_cut_reachable : graph -> source:int -> bool array
(** After {!max_flow}: vertices reachable from the source in the
    residual graph (the source side of a minimum cut). *)
