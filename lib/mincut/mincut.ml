open Rfn_circuit

type result = { mc : Sview.t; cut : int list; free_cut_gates : int }

(* Effectively infinite capacity: larger than any possible cut. *)
let inf = max_int / 4

(* Gates of the view on register-to-register paths: transitive fanin of
   the registers' next-state inputs intersected with transitive fanout
   of the register outputs, all within the view. *)
let free_cut_design view =
  let c = view.Sview.circuit in
  let n = Circuit.num_signals c in
  let tfi = Bitset.create n and tfo = Bitset.create n in
  (* Backward from next-state inputs, through non-free gates. *)
  let stack =
    ref (Array.to_list view.Sview.regs
        |> List.map (fun r ->
               match Circuit.node c r with
               | Circuit.Reg { next; _ } -> next
               | _ -> assert false))
  in
  let rec back () =
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      if Sview.mem view s && (not (Sview.is_free view s))
         && not (Bitset.mem tfi s)
      then begin
        match Circuit.node c s with
        | Circuit.Gate (_, fanins) ->
          Bitset.add tfi s;
          Array.iter (fun f -> stack := f :: !stack) fanins
        | Circuit.Input | Circuit.Const _ | Circuit.Reg _ -> ()
      end;
      back ()
  in
  back ();
  (* Forward from register outputs, through non-free gates of the view. *)
  let fstack = ref (Array.to_list view.Sview.regs) in
  let seen = Bitset.create n in
  let rec fwd () =
    match !fstack with
    | [] -> ()
    | s :: rest ->
      fstack := rest;
      if not (Bitset.mem seen s) then begin
        Bitset.add seen s;
        Array.iter
          (fun reader ->
            if
              Sview.mem view reader
              && (not (Sview.is_free view reader))
              && not (Bitset.mem seen reader)
            then begin
              (match Circuit.node c reader with
              | Circuit.Gate _ -> Bitset.add tfo reader
              | _ -> ());
              fstack := reader :: !fstack
            end)
          c.Circuit.fanouts.(s)
      end;
      fwd ()
  in
  fwd ();
  let fc = Bitset.create n in
  Bitset.iter (fun s -> if Bitset.mem tfo s then Bitset.add fc s) tfi;
  fc

let compute view =
  let c = view.Sview.circuit in
  let n = Circuit.num_signals c in
  let fc = free_cut_design view in
  (* Node-split flow graph: signal s -> vertices 2s (in) and 2s+1
     (out); source = 2n, sink = 2n+1. Free inputs and plain gates get
     unit through-capacity (they may be cut); registers and free-cut
     gates are uncuttable. *)
  let g = Flow.create ((2 * n) + 2) in
  let source = 2 * n and sink = (2 * n) + 1 in
  let vin s = 2 * s and vout s = (2 * s) + 1 in
  let protected s = Sview.is_state view s || Bitset.mem fc s in
  Bitset.iter
    (fun s ->
      let capacity = if protected s then inf else 1 in
      Flow.add_edge g (vin s) (vout s) capacity;
      if Sview.is_free view s then Flow.add_edge g source (vin s) inf;
      if protected s then Flow.add_edge g (vout s) sink inf;
      (match Circuit.node c s with
      | Circuit.Gate (_, fanins) when not (Sview.is_free view s) ->
        Array.iter
          (fun f -> if Sview.mem view f then Flow.add_edge g (vout f) (vin s) inf)
          fanins
      | Circuit.Reg { next; _ } when not (Sview.is_free view s) ->
        if Sview.mem view next then Flow.add_edge g (vout next) (vin s) inf
      | _ -> ()))
    view.Sview.inside;
  ignore (Flow.max_flow g ~source ~sink);
  let reach = Flow.min_cut_reachable g ~source in
  let in_cut s = reach.(vin s) && not (reach.(vout s)) in
  (* Min-cut design: registers plus their next-state cones truncated at
     the cut signals. *)
  let inside = Bitset.create n and free = Bitset.create n in
  let stack = ref [] in
  Array.iter
    (fun r ->
      Bitset.add inside r;
      match Circuit.node c r with
      | Circuit.Reg { next; _ } -> stack := next :: !stack
      | _ -> assert false)
    view.Sview.regs;
  let rec walk () =
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      if not (Bitset.mem inside s) then begin
        Bitset.add inside s;
        if in_cut s then Bitset.add free s
        else
          match Circuit.node c s with
          | Circuit.Gate (_, fanins) ->
            Array.iter (fun f -> stack := f :: !stack) fanins
          | Circuit.Const _ -> ()
          | Circuit.Reg _ ->
            (* A register output below no cut must be a state register
               of the view (free pseudo-inputs are separated by the
               cut, by max-flow/min-cut duality). *)
            assert (Sview.is_state view s)
          | Circuit.Input -> assert false
      end;
      walk ()
  in
  walk ();
  let mc = Sview.make c ~inside ~free ~roots:[] in
  { mc; cut = Bitset.to_list free; free_cut_gates = Bitset.cardinal fc }
