(* Adjacency as paired edge arrays: edge 2k and 2k+1 are a forward edge
   and its residual twin. *)
type graph = {
  n : int;
  mutable to_ : int array;
  mutable cap : int array;
  mutable m : int;  (* number of edge slots used *)
  adj : int list array;  (* edge indices out of each vertex, reversed *)
}

let create n = { n; to_ = Array.make 16 0; cap = Array.make 16 0; m = 0; adj = Array.make n [] }

let grow g =
  if g.m + 2 > Array.length g.to_ then begin
    let len = 2 * Array.length g.to_ in
    let extend a =
      let b = Array.make len 0 in
      Array.blit a 0 b 0 g.m;
      b
    in
    g.to_ <- extend g.to_;
    g.cap <- extend g.cap
  end

let add_edge g u v c =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then
    invalid_arg "Flow.add_edge: vertex out of range";
  grow g;
  let e = g.m in
  g.to_.(e) <- v;
  g.cap.(e) <- c;
  g.to_.(e + 1) <- u;
  g.cap.(e + 1) <- 0;
  g.adj.(u) <- e :: g.adj.(u);
  g.adj.(v) <- (e + 1) :: g.adj.(v);
  g.m <- e + 2

let max_flow g ~source ~sink =
  let level = Array.make g.n (-1) in
  let iter = Array.make g.n [] in
  let bfs () =
    Array.fill level 0 g.n (-1);
    level.(source) <- 0;
    let q = Queue.create () in
    Queue.add source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          let v = g.to_.(e) in
          if g.cap.(e) > 0 && level.(v) < 0 then begin
            level.(v) <- level.(u) + 1;
            Queue.add v q
          end)
        g.adj.(u)
    done;
    level.(sink) >= 0
  in
  let rec dfs u pushed =
    if u = sink then pushed
    else begin
      let rec try_edges () =
        match iter.(u) with
        | [] -> 0
        | e :: rest ->
          let v = g.to_.(e) in
          if g.cap.(e) > 0 && level.(v) = level.(u) + 1 then begin
            let d = dfs v (min pushed g.cap.(e)) in
            if d > 0 then begin
              g.cap.(e) <- g.cap.(e) - d;
              g.cap.(e lxor 1) <- g.cap.(e lxor 1) + d;
              d
            end
            else begin
              iter.(u) <- rest;
              try_edges ()
            end
          end
          else begin
            iter.(u) <- rest;
            try_edges ()
          end
      in
      try_edges ()
    end
  in
  let flow = ref 0 in
  while bfs () do
    Array.blit g.adj 0 iter 0 g.n;
    let rec push () =
      let d = dfs source max_int in
      if d > 0 then begin
        flow := !flow + d;
        push ()
      end
    in
    push ()
  done;
  !flow

let min_cut_reachable g ~source =
  let reach = Array.make g.n false in
  reach.(source) <- true;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun e ->
        let v = g.to_.(e) in
        if g.cap.(e) > 0 && not reach.(v) then begin
          reach.(v) <- true;
          Queue.add v q
        end)
      g.adj.(u)
  done;
  reach
