(** Bounded falsification by plain sequential ATPG.

    The paper builds on earlier work using ATPG alone as a model
    checker (Boppana et al., CAV 1999 — its reference [3]); this module
    provides that engine as a standalone baseline: iterative-deepening
    sequential ATPG with the bad signal as the only objective, no
    abstraction and no guidance. Useful for shallow bugs, hopeless for
    deep ones — which is the comparison RFN's guided Step 3 wins. *)

type outcome =
  | Found of Rfn_circuit.Trace.t
      (** validated counterexample (its length gives the depth) *)
  | Exhausted
      (** every depth up to the bound is proved free of violations *)
  | Gave_up of int  (** resource limit at this depth *)

val falsify :
  ?limits:Rfn_atpg.Atpg.limits ->
  Rfn_circuit.Circuit.t ->
  bad:int ->
  max_depth:int ->
  outcome * Rfn_atpg.Atpg.stats
(** Depths are tried in increasing order, so a [Found] trace is a
    shortest counterexample (up to the per-depth resource limits).
    Statistics are summed over all depths tried. *)
