open Rfn_circuit
module Atpg = Rfn_atpg.Atpg
module Sim3v = Rfn_sim3v.Sim3v
module Telemetry = Rfn_obs.Telemetry

let c_attempts = Telemetry.counter "concretize.attempts"
let c_found = Telemetry.counter "concretize.found"
let h_backtracks = Telemetry.histogram "concretize.backtracks"

type outcome =
  | Found of Trace.t
  | Not_found_here
  | Gave_up of Rfn_failure.resource

let trace_pins trace =
  let pins = ref [] in
  for j = 0 to Trace.length trace - 1 do
    let add cube =
      List.iter
        (fun (s, v) -> pins := (j, s, v) :: !pins)
        (Cube.to_list cube)
    in
    add (Trace.state trace j);
    add (Trace.input trace j)
  done;
  !pins

let run ~limits circuit ~bad ~frames ~pins =
  Telemetry.incr c_attempts;
  Telemetry.with_span "concretize.atpg"
    ~attrs:[ ("frames", Rfn_obs.Json.Int frames) ]
    (fun () ->
      let view = Sview.whole circuit ~roots:[ bad ] in
      let pins = (frames - 1, bad, true) :: pins in
      let solved = Atpg.solve ~limits view ~frames ~pins () in
      Telemetry.observe h_backtracks
        (float_of_int (snd solved).Atpg.backtracks);
      match solved with
      | Atpg.Sat t, stats ->
        if Sim3v.replay_concrete circuit t ~bad then begin
          Telemetry.incr c_found;
          (Found t, stats)
        end
        else
          (* engine bug guard: never report unvalidated *)
          (Gave_up (Rfn_failure.Invariant "unvalidated counterexample"), stats)
      | Atpg.Unsat, stats -> (Not_found_here, stats)
      | Atpg.Abort r, stats -> (Gave_up r, stats))

let guided ?(limits = Atpg.default_limits) ?analysis circuit ~bad
    ~abstract_trace =
  let pins = trace_pins abstract_trace in
  (* Don't-care pre-filter: the concrete search runs from the initial
     states, so its every cycle is a reachable state; guidance pins
     that contradict a proven invariant cannot be met by any such
     trace — answer Unsat without searching. *)
  let doomed =
    match analysis with
    | Some a -> Rfn_analysis.Analysis.refutes_pins a pins
    | None -> false
  in
  if doomed then (Not_found_here, { Atpg.decisions = 0; backtracks = 0 })
  else run ~limits circuit ~bad ~frames:(Trace.length abstract_trace) ~pins

let guided_any ?(limits = Atpg.default_limits) ?analysis circuit ~bad
    ~abstract_traces =
  let sum a b =
    {
      Atpg.decisions = a.Atpg.decisions + b.Atpg.decisions;
      backtracks = a.Atpg.backtracks + b.Atpg.backtracks;
    }
  in
  let zero = { Atpg.decisions = 0; backtracks = 0 } in
  let rec go acc gave_up = function
    | [] -> (
      ( (match gave_up with None -> Not_found_here | Some r -> Gave_up r),
        acc ))
    | t :: rest -> (
      match guided ~limits ?analysis circuit ~bad ~abstract_trace:t with
      | Found trace, stats -> (Found trace, sum acc stats)
      | Not_found_here, stats -> go (sum acc stats) gave_up rest
      | Gave_up r, stats -> go (sum acc stats) (Some r) rest)
  in
  if abstract_traces = [] then
    invalid_arg "Concretize.guided_any: no abstract traces"
  else go zero None abstract_traces

let guided_to_trace ?(limits = Atpg.default_limits) circuit ~abstract_trace =
  let view = Sview.whole circuit ~roots:[] in
  match
    Atpg.solve ~limits view
      ~frames:(Trace.length abstract_trace)
      ~pins:(trace_pins abstract_trace) ()
  with
  | Atpg.Sat t, stats -> (Found t, stats)
  | Atpg.Unsat, stats -> (Not_found_here, stats)
  | Atpg.Abort r, stats -> (Gave_up r, stats)

let unguided ?(limits = Atpg.default_limits) circuit ~bad ~depth =
  run ~limits circuit ~bad ~frames:depth ~pins:[]
