(** Unreachable-coverage-state analysis (Section 3, Table 2).

    Given a set of coverage signals (registers encoding control state
    machines), identify as many coverage states — valuations of the
    coverage signals — as possible that are unreachable on the
    original design.

    {!rfn_analysis} runs the RFN loop with the still-unknown coverage
    states as the target set: when the abstract fixpoint closes without
    touching them, every remaining unknown state is unreachable (the
    abstract model over-approximates); when it reaches some, the
    abstract trace is concretized and the coverage states visited by
    the concrete trace are marked reachable, otherwise the model is
    refined.

    {!bfs_analysis} is the baseline of Ho et al. [ICCAD 2000]: take the
    k registers topologically closest to the coverage signals, compute
    the fixpoint on that fixed abstraction, and declare unreachable
    whatever its projection misses. *)

type status = Unknown | Unreachable | Reachable

type report = {
  total : int;  (** 2^(number of coverage signals) *)
  unreachable : int;
  reachable : int;  (** proven reachable by a concrete trace *)
  unknown : int;
  abstract_regs : int;  (** registers in the final abstract model *)
  iterations : int;
  seconds : float;
  status : status array;  (** indexed by coverage-state code *)
  failure : Rfn_failure.t option;
      (** why the analysis stopped early, when an engine did: a BDD
          node blow-up, an aborted fixpoint or a failed trace
          extraction. [None] for a normal completion (including budget
          exhaustion with states left unknown). The remaining [unknown]
          counts are sound either way — a failure only means fewer
          states were classified. *)
}

val state_code : coverage:int list -> (int -> bool) -> int
(** Encode a valuation of the coverage signals (bit i = value of the
    i-th signal in [coverage]). *)

val rfn_analysis :
  ?config:Rfn.config ->
  Rfn_circuit.Circuit.t ->
  coverage:int list ->
  report
(** All coverage signals must be registers. [config.max_seconds] is
    the analysis time budget (the paper used 1,800 s). *)

val bfs_analysis :
  ?k:int ->
  ?node_limit:int ->
  ?max_steps:int ->
  ?max_seconds:float ->
  Rfn_circuit.Circuit.t ->
  coverage:int list ->
  report
(** [k] defaults to 60, the paper's BFS abstract-model size. *)

val closest_registers_for_test :
  Rfn_circuit.Circuit.t -> coverage:int list -> k:int -> int list
(** The BFS baseline's register selection (exposed for tests and
    diagnostics): registers within the smallest dependency distance of
    the coverage signals, capped at [k]. *)
