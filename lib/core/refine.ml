open Rfn_circuit
module Atpg = Rfn_atpg.Atpg
module Sim3v = Rfn_sim3v.Sim3v
module Telemetry = Rfn_obs.Telemetry

let c_checks = Telemetry.counter "refine.trace_checks"
let c_candidates = Telemetry.counter "refine.candidates"
let c_kept = Telemetry.counter "refine.registers_added"

type result = { candidates : int list; kept : int list; invalidated : bool }

(* Phase 1: 3-valued replay of the abstract trace on the original
   design. Trace values are forced back into the state after each
   step ("the value from the error trace will be used for the next
   step"); disagreeing registers outside the model are candidates. *)
let simulation_candidates abstraction ~abstract_trace =
  let c = abstraction.Abstraction.circuit in
  let view = Sview.whole c ~roots:[] in
  let k = Trace.length abstract_trace in
  let trace_value j s =
    match Cube.value (Trace.state abstract_trace j) s with
    | Some _ as v -> v
    | None -> Cube.value (Trace.input abstract_trace j) s
  in
  let in_model r = Rfn_circuit.Bitset.mem abstraction.Abstraction.regs r in
  let candidates = ref [] in
  let seen = Hashtbl.create 17 in
  let record r =
    if (not (Hashtbl.mem seen r)) && not (in_model r) then begin
      Hashtbl.add seen r ();
      candidates := r :: !candidates
    end
  in
  (* The replay runs single-pattern through the packed evaluator
     (lane 0): on whole-design views this loop dominates refinement
     time and the word-wide kernel is branch-free per gate. *)
  let state_of j fallback r =
    match trace_value j r with
    | Some b -> Sim3v.Packed.splat (Sim3v.of_bool b)
    | None -> fallback r
  in
  let state = ref (state_of 0 (fun _ -> Sim3v.Packed.splat Sim3v.VX)) in
  for j = 0 to k - 2 do
    let free s =
      Sim3v.Packed.splat
        (if Circuit.is_input c s then
           match Cube.value (Trace.input abstract_trace j) s with
           | Some b -> Sim3v.of_bool b
           | None -> Sim3v.VX
         else Sim3v.VX)
    in
    let _, next = Sim3v.Packed.step view ~free ~state:!state in
    (* Compare the simulated next state against cycle j+1 of the trace. *)
    Array.iter
      (fun r ->
        match trace_value (j + 1) r with
        | Some b ->
          if Sim3v.conflicts (Sim3v.Packed.get (next r) 0) (Sim3v.of_bool b)
          then record r
        | None -> ())
      c.Circuit.registers;
    state := state_of (j + 1) next
  done;
  List.rev !candidates

(* Fallback when nothing conflicts: pseudo-inputs mentioned most often
   in the trace. *)
let frequency_candidates abstraction ~abstract_trace ~max_fallback =
  let counts = Hashtbl.create 97 in
  let k = Trace.length abstract_trace in
  for j = 0 to k - 1 do
    List.iter
      (fun (s, _) ->
        if Abstraction.is_pseudo_input abstraction s then
          Hashtbl.replace counts s
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
      (Cube.to_list (Trace.input abstract_trace j))
  done;
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) counts []
  |> List.sort (fun (s1, n1) (s2, n2) ->
         if n1 <> n2 then compare n2 n1 else compare s1 s2)
  |> List.filteri (fun i _ -> i < max_fallback)
  |> List.map fst

(* Is the abstract error trace still satisfiable on a refined model?
   Pins: every trace literal that falls inside the model (the solver
   sorts out free vs derived), plus the bad objective at the end. *)
let trace_satisfiable ~atpg_limits abstraction ~abstract_trace ~bad =
  let view = abstraction.Abstraction.view in
  let k = Trace.length abstract_trace in
  let pins =
    ref (match bad with Some b -> [ (k - 1, b, true) ] | None -> [])
  in
  for j = 0 to k - 1 do
    let add cube =
      List.iter
        (fun (s, v) -> if Sview.mem view s then pins := (j, s, v) :: !pins)
        (Cube.to_list cube)
    in
    add (Trace.state abstract_trace j);
    add (Trace.input abstract_trace j)
  done;
  match Atpg.solve ~limits:atpg_limits view ~frames:k ~pins:!pins () with
  | Atpg.Sat _, _ -> `Sat
  | Atpg.Unsat, _ -> `Unsat
  | Atpg.Abort _, _ -> `Abort

let crucial_registers ?(atpg_limits = Atpg.default_limits) ?(max_fallback = 8)
    ?bad abstraction ~abstract_trace () =
  let candidates =
    match simulation_candidates abstraction ~abstract_trace with
    | [] -> frequency_candidates abstraction ~abstract_trace ~max_fallback
    | cs -> cs
  in
  let check added =
    Telemetry.incr c_checks;
    Telemetry.with_span "refine.trace_check" (fun () ->
        trace_satisfiable ~atpg_limits
          (Abstraction.refine abstraction ~add:added)
          ~abstract_trace ~bad)
  in
  (* Phase 2a: add candidates until the trace is refuted. *)
  let rec grow added = function
    | [] -> (List.rev added, false, false)
    | c :: rest -> (
      let added = c :: added in
      match check (List.rev added) with
      | `Unsat -> (List.rev added, true, false)
      | `Sat -> grow added rest
      | `Abort -> (candidates, false, true))
  in
  let kept, invalidated, aborted = grow [] candidates in
  (* Phase 2b: try removing earlier additions (never the last, which
     tipped the model into refuting the trace). *)
  let kept =
    if (not invalidated) || aborted || List.length kept < 2 then kept
    else begin
      let last = List.nth kept (List.length kept - 1) in
      let rec shrink confirmed = function
        | [] -> List.rev confirmed
        | d :: rest when d = last && rest = [] -> List.rev (d :: confirmed)
        | d :: rest -> (
          let trial = List.rev_append confirmed rest in
          match check trial with
          | `Unsat -> shrink confirmed rest
          | `Sat | `Abort -> shrink (d :: confirmed) rest)
      in
      shrink [] kept
    end
  in
  Telemetry.add c_candidates (List.length candidates);
  Telemetry.add c_kept (List.length kept);
  { candidates; kept; invalidated }
