open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Reorder = Rfn_bdd.Reorder
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Telemetry = Rfn_obs.Telemetry

let src = Logs.Src.create "session" ~doc:"RFN verification session"

module Log = (val Logs.src_log src : Logs.LOG)

let c_cones_reused = Telemetry.counter "session.cones_reused"
let c_cones_recompiled = Telemetry.counter "session.cones_recompiled"
let c_clusters_reused = Telemetry.counter "session.clusters_reused"
let c_clusters_rebuilt = Telemetry.counter "session.clusters_rebuilt"
let c_grow_in_place = Telemetry.counter "session.grow_in_place"
let c_grow_sifted = Telemetry.counter "session.grow_sifted"
let c_grow_rebuilds = Telemetry.counter "session.grow_rebuilds"
let c_resets = Telemetry.counter "session.resets"
let c_retargets = Telemetry.counter "session.retargets"
let c_retargets_warm = Telemetry.counter "session.retargets_warm"
let g_nodes_carried = Telemetry.gauge "session.nodes_carried"

type policy = {
  reuse : bool;
  grow_blowup : float;
  min_nodes : int;
  sift_passes : int;
}

let default_policy =
  { reuse = true; grow_blowup = 8.0; min_nodes = 100_000; sift_passes = 1 }

type prepared = {
  vm : Varmap.t;
  fn : int -> Bdd.t;
  img : Image.t;
}

type t = {
  policy : policy;
  mutable node_limit : int;
  mutable abstraction : Abstraction.t;
  mutable vm : Varmap.t option;
  mutable seed : Varmap.t option;
      (* order seed for the next from-scratch varmap, kept across a
         non-fresh-order reset *)
  mutable memo : (int, Bdd.t) Hashtbl.t;
  cache : Image.cache;
  mutable prepared : prepared option;
  mutable grew : bool;  (* an in-place grow since the last prepare *)
  mutable baseline_nodes : int;
      (* node count after the last accepted prepare — what the
         grow-blowup threshold is relative to *)
  mutable analysis : Rfn_analysis.Analysis.t option;
      (* concrete-design invariants, computed once per session and
         reused across properties (they are facts about the circuit,
         not about any abstraction) *)
}

let create ?(node_limit = max_int) ?(policy = default_policy) circuit ~roots =
  {
    policy;
    node_limit;
    abstraction = Abstraction.initial circuit ~roots;
    vm = None;
    seed = None;
    memo = Hashtbl.create 997;
    cache = Image.cache ();
    prepared = None;
    grew = false;
    baseline_nodes = 0;
    analysis = None;
  }

let abstraction t = t.abstraction
let analysis t = t.analysis
let set_analysis t a = t.analysis <- Some a
let circuit t = t.abstraction.Abstraction.circuit
let policy t = t.policy
let varmap t = t.vm
let cone_signals t = Hashtbl.fold (fun s _ acc -> s :: acc) t.memo []

(* Drop every per-manager structure. The old manager (if any) is
   released wholesale, so nothing needs unprotecting. *)
let forget_manager t =
  t.vm <- None;
  t.memo <- Hashtbl.create 997;
  Image.clear_cache t.cache;
  t.prepared <- None;
  t.grew <- false;
  t.baseline_nodes <- 0

let reset ?(fresh_order = false) ?node_limit t =
  Telemetry.incr c_resets;
  (* a reset is a resource cliff (the manager is dropped wholesale) —
     snapshot memory and engine gauges on both sides of it *)
  Rfn_obs.Sampler.tick "session.reset";
  (match node_limit with Some l -> t.node_limit <- l | None -> ());
  t.seed <- (if fresh_order then None else t.vm);
  forget_manager t

(* Point the session at a different property of the same circuit. With
   reuse on and a live manager, the varmap is rebased to the new
   property's initial view (every carried value-now variable is
   preserved, so the memoized cones of signals the views share stay
   valid verbatim); memo entries for signals outside the new view are
   dropped — the cone-cache invariant demands exact coverage — and the
   cluster cache is rebuilt from scratch (a retarget rarely preserves
   an entry prefix, and stale clusters would pin dead nodes). In
   reference mode the session forgets everything including the order
   seed, so a retargeted run is bit-identical to a cold one. *)
let retarget t ~roots =
  Telemetry.incr c_retargets;
  let abstraction = Abstraction.initial (circuit t) ~roots in
  t.abstraction <- abstraction;
  match t.vm with
  | None -> t.prepared <- None
  | Some vm when t.policy.reuse ->
    Telemetry.incr c_retargets_warm;
    let view = abstraction.Abstraction.view in
    let vm = Varmap.rebase vm ~view in
    t.vm <- Some vm;
    let man = Varmap.man vm in
    let stale =
      Hashtbl.fold
        (fun s f acc -> if Sview.mem view s then acc else (s, f) :: acc)
        t.memo []
    in
    List.iter
      (fun (s, f) ->
        Bdd.unprotect man f;
        Hashtbl.remove t.memo s)
      stale;
    Array.iter (Bdd.unprotect man) t.cache.Image.clusters;
    Image.clear_cache t.cache;
    (* the next prepare collects the previous property's garbage (the
       protected carried cones survive) and applies the blow-up policy *)
    t.grew <- true;
    t.prepared <- None
  | Some _ ->
    t.seed <- None;
    forget_manager t

let refine t ~add =
  let abstraction, delta = Abstraction.refine_delta t.abstraction ~add in
  t.abstraction <- abstraction;
  let view = abstraction.Abstraction.view in
  (match t.vm with
  | None -> () (* next prepare builds from scratch anyway *)
  | Some vm when t.policy.reuse ->
    t.vm <- Some (Varmap.grow vm ~view delta);
    t.grew <- true
  | Some vm ->
    (* From-scratch reference mode: a fresh manager, but the replica
       keeps the exact variable assignment, so growth allocates the
       same indices the in-place path would — behaviour stays
       bit-identical while nothing is reused. *)
    t.vm <- Some (Varmap.grow (Varmap.replica vm) ~view delta);
    t.memo <- Hashtbl.create 997;
    Image.clear_cache t.cache);
  t.prepared <- None;
  delta

(* Compile the missing cones and (re)cluster the relation over the
   current manager; returns the prepared triple. *)
let compile t vm =
  let view = t.abstraction.Abstraction.view in
  let compiled = Symbolic.compile_view vm view ~memo:t.memo in
  let in_view = Bitset.cardinal view.Sview.inside in
  Telemetry.add c_cones_recompiled compiled;
  Telemetry.add c_cones_reused (in_view - compiled);
  let fn s =
    match Hashtbl.find_opt t.memo s with
    | Some f -> f
    | None -> invalid_arg "Session: signal outside the view"
  in
  let img, stats = Image.build ~fn ~cache:t.cache vm in
  Telemetry.add c_clusters_reused stats.Image.clusters_reused;
  Telemetry.add c_clusters_rebuilt stats.Image.clusters_rebuilt;
  { vm; fn; img }

(* From-scratch (re)build: fresh manager, FORCE order seeded with
   [t.seed]'s order when present. *)
let rebuild t =
  let view = t.abstraction.Abstraction.view in
  let vm = Varmap.make ~node_limit:t.node_limit ?previous:t.seed view in
  t.vm <- Some vm;
  t.seed <- None;
  t.memo <- Hashtbl.create 997;
  Image.clear_cache t.cache;
  compile t vm

(* Rebuild the session's protected structures in the manager produced
   by a reordering pass: [roots'] are the translations of
   [memo values @ clusters] in that order, [map] the variable
   permutation. The new manager starts with an empty protected set, so
   every carried handle is re-protected. *)
let translate_root tr ~what f =
  match Hashtbl.find_opt tr f with
  | Some f' -> f'
  | None ->
    invalid_arg
      (Printf.sprintf
         "Session.adopt_sifted: %s missing from the sift translation" what)

let adopt_sifted t vm ~man' ~old_roots ~roots' ~map =
  let tr = Hashtbl.create 997 in
  List.iter2 (fun o n -> Hashtbl.replace tr o n) old_roots roots';
  let memo' = Hashtbl.create (Hashtbl.length t.memo) in
  Hashtbl.iter
    (fun s f ->
      let what =
        Printf.sprintf "cone of signal %d (%S)" s (Circuit.name (circuit t) s)
      in
      Hashtbl.replace memo' s (Bdd.protect man' (translate_root tr ~what f)))
    t.memo;
  t.memo <- memo';
  t.cache.Image.entries <-
    Array.mapi
      (fun i (r, v, f) ->
        let what = Printf.sprintf "relation entry %d" i in
        (r, map v, translate_root tr ~what f))
      t.cache.Image.entries;
  t.cache.Image.clusters <-
    Array.mapi
      (fun i c ->
        let what = Printf.sprintf "transition cluster %d" i in
        Bdd.protect man' (translate_root tr ~what c))
      t.cache.Image.clusters;
  let vm' = Varmap.remap vm ~man:man' ~map in
  t.vm <- Some vm';
  vm'

let prepare t =
  match t.prepared with
  | Some p -> p
  | None ->
    let p =
      match t.vm with
      | None -> rebuild t
      | Some vm when not t.grew -> compile t vm
      | Some vm ->
        (* In-place growth happened: collect the previous iteration's
           garbage (the protected memo and clusters survive), measure
           what is carried, then apply the grow-vs-rebuild policy. *)
        let man = Varmap.man vm in
        Bdd.gc man ~roots:[];
        Telemetry.record g_nodes_carried (Bdd.num_nodes man);
        let p = compile t vm in
        let threshold =
          max t.policy.min_nodes
            (int_of_float
               (t.policy.grow_blowup *. float_of_int t.baseline_nodes))
        in
        if t.baseline_nodes = 0 || Bdd.num_nodes man <= threshold then begin
          Telemetry.incr c_grow_in_place;
          p
        end
        else begin
          (* Appending variables at the bottom of the order hurt: try
             to recover by sifting, and if the sifted size is still
             past the threshold give up on the carried order entirely
             and rebuild under a fresh FORCE order seeded by it. *)
          Log.info (fun m ->
              m "grow blow-up: %d nodes > threshold %d; sifting"
                (Bdd.num_nodes man) threshold);
          let old_roots =
            Hashtbl.fold (fun _ f acc -> f :: acc) t.memo []
            @ Array.to_list t.cache.Image.clusters
          in
          let man', roots', map =
            Reorder.sift ~max_passes:t.policy.sift_passes man ~roots:old_roots
          in
          let p =
            if man' == man then p
            else begin
              let vm' = adopt_sifted t vm ~man' ~old_roots ~roots' ~map in
              compile t vm'
            end
          in
          if Bdd.num_nodes (Varmap.man p.vm) <= threshold then begin
            Telemetry.incr c_grow_sifted;
            p
          end
          else begin
            Telemetry.incr c_grow_rebuilds;
            Log.info (fun m ->
                m "sifting left %d nodes; rebuilding with a fresh order"
                  (Bdd.num_nodes (Varmap.man p.vm)));
            t.seed <- Some p.vm;
            rebuild t
          end
        end
    in
    t.baseline_nodes <- Bdd.num_nodes (Varmap.man p.vm);
    t.grew <- false;
    t.prepared <- Some p;
    p
