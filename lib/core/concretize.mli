(** Error-trace search on the original design (Section 2.3).

    RFN never runs symbolic image computation on the original design;
    instead sequential ATPG searches for a concrete error trace, with
    the abstract error trace as cycle-by-cycle guidance: the abstract
    trace's length bounds the search depth, its state and pseudo-input
    literals become per-cycle objectives, and its primary-input
    literals become root assignments. *)

type outcome =
  | Found of Rfn_circuit.Trace.t
      (** concrete counterexample (validated by 3-valued replay) *)
  | Not_found_here  (** ATPG proved the guided search space empty *)
  | Gave_up of Rfn_failure.resource
      (** resource limit ([Backtracks] is worth escalating, [Time] is
          terminal) or an invariant slip (an unvalidated trace) *)

val guided :
  ?limits:Rfn_atpg.Atpg.limits ->
  ?analysis:Rfn_analysis.Analysis.t ->
  Rfn_circuit.Circuit.t ->
  bad:int ->
  abstract_trace:Rfn_circuit.Trace.t ->
  outcome * Rfn_atpg.Atpg.stats
(** [analysis] supplies proven reachable-state invariants as a
    don't-care filter: a guidance cube pinning registers to a
    combination that contradicts a proven invariant cannot concretize
    (every cycle of the concrete search is a reachable state), so the
    query answers [Not_found_here] without searching — counted as
    [analysis.pruned_queries]. *)

val guided_any :
  ?limits:Rfn_atpg.Atpg.limits ->
  ?analysis:Rfn_analysis.Analysis.t ->
  Rfn_circuit.Circuit.t ->
  bad:int ->
  abstract_traces:Rfn_circuit.Trace.t list ->
  outcome * Rfn_atpg.Atpg.stats
(** Guided search over a *set* of abstract error traces (the paper's
    future-work extension): each trace is tried in turn under the given
    per-trace limits. [Found] as soon as one concretizes;
    [Not_found_here] only if every trace's search space was proved
    empty; statistics are summed. *)

val guided_to_trace :
  ?limits:Rfn_atpg.Atpg.limits ->
  Rfn_circuit.Circuit.t ->
  abstract_trace:Rfn_circuit.Trace.t ->
  outcome * Rfn_atpg.Atpg.stats
(** Guided search whose target is the abstract trace itself (its final
    state cube in particular) rather than a bad signal — the form the
    coverage analysis uses to concretize a path to a coverage state. *)

val unguided :
  ?limits:Rfn_atpg.Atpg.limits ->
  Rfn_circuit.Circuit.t ->
  bad:int ->
  depth:int ->
  outcome * Rfn_atpg.Atpg.stats
(** Plain bounded search (only the bad objective at the last frame) —
    the baseline for the guidance ablation. *)
