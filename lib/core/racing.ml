module Json = Rfn_obs.Json
module Proc = Rfn_proc.Proc
module Codec = Rfn_proc.Codec
module Sim3v = Rfn_sim3v.Sim3v
module F = Rfn_failure

(* ---- resource wire format ---------------------------------------------- *)

(* [Invariant] carries a message the tag alone cannot round-trip, so
   the payload carries the detail alongside the tag. *)
let resource_fields r =
  [ ("resource", Json.Str (F.resource_tag r)) ]
  @ match r with F.Invariant msg -> [ ("detail", Json.Str msg) ] | _ -> []

let resource_of_payload j =
  match Option.bind (Json.member "resource" j) Json.to_str with
  | Some "invariant" ->
    let msg =
      match Option.bind (Json.member "detail" j) Json.to_str with
      | Some m -> m
      | None -> "worker-reported invariant"
    in
    Some (F.Invariant msg)
  | Some tag -> F.resource_of_tag tag
  | None -> None

(* ---- Concretize.outcome over the wire ---------------------------------- *)

let concretize_to_payload = function
  | Concretize.Found t ->
    Json.Obj
      [ ("outcome", Json.Str "found"); ("trace", Codec.trace_to_json t) ]
  | Concretize.Not_found_here -> Json.Obj [ ("outcome", Json.Str "not-found") ]
  | Concretize.Gave_up r ->
    Json.Obj (("outcome", Json.Str "gave-up") :: resource_fields r)

let concretize_of_payload j =
  match Option.bind (Json.member "outcome" j) Json.to_str with
  | Some "found" ->
    Option.map
      (fun t -> Concretize.Found t)
      (Option.bind (Json.member "trace" j) Codec.trace_of_json)
  | Some "not-found" -> Some Concretize.Not_found_here
  | Some "gave-up" ->
    Option.map (fun r -> Concretize.Gave_up r) (resource_of_payload j)
  | Some _ | None -> None

(* Workers are not trusted: a Found trace must replay to the bad
   signal on the parent's own copy of the design before it wins. *)
let classify_concretize circuit ~bad payload =
  match concretize_of_payload payload with
  | None -> Proc.Reject "undecodable concretize outcome"
  | Some (Concretize.Found t) ->
    if Sim3v.replay_concrete circuit t ~bad then Proc.Win
    else Proc.Reject "counterexample failed concrete replay"
  | Some Concretize.Not_found_here -> Proc.Win
  | Some (Concretize.Gave_up _) -> Proc.Hold

(* ---- Bmc.outcome over the wire ----------------------------------------- *)

let bmc_to_payload = function
  | Bmc.Found t ->
    Json.Obj
      [ ("outcome", Json.Str "found"); ("trace", Codec.trace_to_json t) ]
  | Bmc.Exhausted -> Json.Obj [ ("outcome", Json.Str "exhausted") ]
  | Bmc.Gave_up depth ->
    Json.Obj [ ("outcome", Json.Str "gave-up"); ("depth", Json.Int depth) ]

let bmc_of_payload j =
  match Option.bind (Json.member "outcome" j) Json.to_str with
  | Some "found" ->
    Option.map
      (fun t -> Bmc.Found t)
      (Option.bind (Json.member "trace" j) Codec.trace_of_json)
  | Some "exhausted" -> Some Bmc.Exhausted
  | Some "gave-up" ->
    Some
      (Bmc.Gave_up
         (match Option.bind (Json.member "depth" j) Json.to_int with
         | Some d -> d
         | None -> 0))
  | Some _ | None -> None

let classify_bmc circuit ~bad payload =
  match bmc_of_payload payload with
  | None -> Proc.Reject "undecodable falsify outcome"
  | Some (Bmc.Found t) ->
    if Sim3v.replay_concrete circuit t ~bad then Proc.Win
    else Proc.Reject "counterexample failed concrete replay"
  | Some Bmc.Exhausted -> Proc.Win
  | Some (Bmc.Gave_up _) -> Proc.Hold

(* ---- the races ---------------------------------------------------------- *)

let first_failure_resource = function
  | { Proc.resource; _ } :: _ -> resource
  | [] -> F.Worker_crashed

let settle ~decode = function
  | Proc.Winner (_, payload) | Proc.Held (_, payload) -> (
    match decode payload with
    | Some outcome -> Ok outcome
    | None ->
      (* cannot happen: classify already decoded this payload — but a
         structured failure beats an assert if it somehow does *)
      Error F.Worker_garbage)
  | Proc.All_failed failures -> Error (first_failure_resource failures)

let concretize ?deadline ~policy ~engines ~limits circuit ~bad
    ~abstract_traces =
  let entrant = function
    | `Atpg ->
      {
        Proc.name = "atpg";
        run =
          (fun () ->
            let outcome, _stats =
              Concretize.guided_any ~limits circuit ~bad ~abstract_traces
            in
            concretize_to_payload outcome);
      }
    | `Sat ->
      {
        Proc.name = "sat";
        run =
          (fun () ->
            let outcome, _stats =
              Sat_bmc.concretize ~limits circuit ~bad ~abstract_traces
            in
            concretize_to_payload outcome);
      }
  in
  settle ~decode:concretize_of_payload
    (Proc.race ?deadline ~policy
       ~classify:(classify_concretize circuit ~bad)
       (List.map entrant engines))

let falsify ?deadline ~policy ~engines ~limits circuit ~bad ~max_depth =
  let entrant = function
    | `Bmc ->
      {
        Proc.name = "bmc";
        run =
          (fun () ->
            let outcome, _stats = Bmc.falsify ~limits circuit ~bad ~max_depth in
            bmc_to_payload outcome);
      }
    | `Sat ->
      {
        Proc.name = "sat";
        run =
          (fun () ->
            let outcome, _stats =
              Sat_bmc.falsify ~limits circuit ~bad ~max_depth
            in
            bmc_to_payload outcome);
      }
  in
  settle ~decode:bmc_of_payload
    (Proc.race ?deadline ~policy
       ~classify:(classify_bmc circuit ~bad)
       (List.map entrant engines))
