open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Atpg = Rfn_atpg.Atpg
module Mincut = Rfn_mincut.Mincut
module Telemetry = Rfn_obs.Telemetry

let c_no_cut = Telemetry.counter "hybrid.no_cut_steps"
let c_min_cut = Telemetry.counter "hybrid.min_cut_steps"
let c_retries = Telemetry.counter "hybrid.cube_retries"

exception Extraction_failed of Rfn_failure.resource

type result = {
  trace : Trace.t;
  cut_size : int;
  model_inputs : int;
  no_cut_steps : int;
  min_cut_steps : int;
}

(* Split a signal-space cube into (registers, free inputs, internal).
   Internal literals are the mark of a min-cut cube. *)
let split view cube_lits =
  let regs = ref [] and inps = ref [] and internal = ref [] in
  List.iter
    (fun ((s, _) as lit) ->
      if Sview.is_state view s then regs := lit :: !regs
      else if Sview.is_free view s then inps := lit :: !inps
      else internal := lit :: !internal)
    cube_lits;
  (List.rev !regs, List.rev !inps, List.rev !internal)

let rec extract_multi ?atpg_limits ?max_cube_tries ?use_mincut ?fn ~count vm
    ~rings ~target ~k =
  let first =
    extract ?atpg_limits ?max_cube_tries ?use_mincut ?fn vm ~rings ~target ~k
  in
  if count <= 1 then [ first ]
  else begin
    (* Exclude this trace's final state/input cube and pull another
       trace, until the target set is exhausted. *)
    let man = Varmap.man vm in
    let t = first.trace in
    let final = Trace.length t - 1 in
    let lits =
      Cube.to_list (Trace.state t final) @ Cube.to_list (Trace.input t final)
    in
    let as_vars =
      List.map
        (fun (s, b) ->
          match Varmap.cur_var_opt vm s with
          | Some v -> (v, b)
          | None -> (Varmap.inp_var vm s, b))
        lits
    in
    let remaining = Bdd.diff man target (Bdd.cube man as_vars) in
    if Bdd.is_zero (Bdd.dand man rings.(k) remaining) then [ first ]
    else
      first
      :: extract_multi ?atpg_limits ?max_cube_tries ?use_mincut ?fn
           ~count:(count - 1) vm ~rings ~target:remaining ~k
  end

and extract ?(atpg_limits = Atpg.default_limits) ?(max_cube_tries = 64)
    ?(use_mincut = true) ?fn vm ~rings ~target ~k =
  let man = Varmap.man vm in
  let view = Varmap.view vm in
  let target = Bdd.protect man target in
  (* The manager may outlive this extraction (it belongs to the
     verification session), so every protection taken here is released
     on the way out — protections are refcounted, so releasing a handle
     that aliases a session cone leaves the session's own pin alone. *)
  let local_memo : (int, Bdd.t) Hashtbl.t = Hashtbl.create 997 in
  let release () =
    Bdd.unprotect man target;
    Hashtbl.iter (fun _ f -> Bdd.unprotect man f) local_memo
  in
  Fun.protect ~finally:release @@ fun () ->
  (* Min-cut design of the abstract model; its cut signals get input
     variables so pre-image cubes can mention them. With
     [use_mincut:false] (the supervisor's fallback when the min-cut
     path fails) pre-images run directly on the abstract model: every
     cube is then a no-cut cube and ATPG extension is never needed, at
     the cost of pre-imaging over all free inputs. *)
  let cut_size, fn_mc =
    if use_mincut then begin
      let mc = Mincut.compute view in
      Varmap.add_input_vars vm mc.Mincut.cut;
      ignore (Symbolic.compile_view vm mc.Mincut.mc ~memo:local_memo);
      (List.length mc.Mincut.cut, fun s -> Hashtbl.find local_memo s)
    end
    else
      ( Sview.num_free_inputs view,
        match fn with
        | Some fn -> fn (* the session's cone cache, compiled already *)
        | None ->
          ignore (Symbolic.compile_view vm view ~memo:local_memo);
          fun s -> Hashtbl.find local_memo s )
  in
  let no_cut_steps = ref 0 and min_cut_steps = ref 0 in
  (* Final cycle: fattest cube of ring k ∧ bad-function, giving the
     last state cube and the final-cycle input witness. *)
  let final = Bdd.dand man rings.(k) target in
  if Bdd.is_zero final then
    invalid_arg "Hybrid.extract: ring k does not touch the bad states";
  let final_lits = Varmap.cube_of_bdd_cube vm (Bdd.fattest_cube man final) in
  let final_regs, final_inps, final_internal = split view final_lits in
  assert (final_internal = []);
  let states = Array.make (k + 1) Cube.empty in
  let inputs = Array.make (k + 1) Cube.empty in
  states.(k) <- Cube.of_list final_regs;
  inputs.(k) <- Cube.of_list final_inps;
  (* Extend a min-cut cube into a no-cut cube by combinational ATPG on
     the abstract model: pin every literal (register and free-input
     literals are root assignments, internal literals objectives). *)
  let extend_cube lits =
    let pins = List.map (fun (s, b) -> (0, s, b)) lits in
    (* ~random_phase:false: the extracted cube's partial assignment
       guides concretization; a fully-random satisfying lane would
       overconstrain the guided pins downstream. *)
    match
      Atpg.solve ~free_init:true ~random_phase:false ~limits:atpg_limits view
        ~frames:1 ~pins ()
    with
    | Atpg.Sat t, _ -> Some (Trace.state t 0, Trace.input t 0)
    | (Atpg.Unsat | Atpg.Abort _), _ -> None
  in
  for j = k downto 1 do
    if
      Bdd.node_limit man < max_int
      && 4 * Bdd.num_nodes man > 3 * Bdd.node_limit man
    then Bdd.gc man ~roots:(Array.to_list rings);
    let target = Symbolic.state_cube vm states.(j) in
    let pre =
      Telemetry.with_span "hybrid.preimage" (fun () ->
          Image.pre_via_compose vm ~fn:fn_mc target)
    in
    let r = Bdd.dand man rings.(j - 1) pre in
    if Bdd.is_zero r then
      raise
        (Extraction_failed
           (Rfn_failure.Invariant "empty pre-image (ring invariant broken)"));
    (* Enumerate cubes of r fattest-first until one yields a no-cut
       cube, as the paper prescribes. *)
    let rec attempt remaining tries =
      if tries > max_cube_tries || Bdd.is_zero remaining then
        raise (Extraction_failed Rfn_failure.Cube_tries)
      else
        let bdd_cube = Bdd.fattest_cube man remaining in
        let lits = Varmap.cube_of_bdd_cube vm bdd_cube in
        let regs, inps, internal = split view lits in
        if internal = [] then begin
          incr no_cut_steps;
          Telemetry.incr c_no_cut;
          (Cube.of_list regs, Cube.of_list inps)
        end
        else begin
          match extend_cube lits with
          | Some (state, input) ->
            incr min_cut_steps;
            Telemetry.incr c_min_cut;
            state, input
          | None ->
            Telemetry.incr c_retries;
            attempt
              (Bdd.diff man remaining (Bdd.cube man bdd_cube))
              (tries + 1)
        end
    in
    let state, input = attempt r 1 in
    states.(j - 1) <- state;
    inputs.(j - 1) <- input
  done;
  {
    trace = Trace.make ~states ~inputs;
    cut_size;
    model_inputs = Sview.num_free_inputs view;
    no_cut_steps = !no_cut_steps;
    min_cut_steps = !min_cut_steps;
  }
