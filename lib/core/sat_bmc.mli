(** Bounded falsification by incremental SAT (the second engine family).

    A drop-in twin of {!Bmc} built on {!Rfn_sat}: iterative-deepening
    bounded model checking where every depth extends a single
    incremental CNF instance (Eén, Mishchenko & Amla's single-instance
    formulation) instead of re-running sequential ATPG from scratch.
    The per-depth target is one assumption literal, so learned clauses
    survive across depths and across guided queries.

    Two modes are wired into the CEGAR loop:
    - {!falsify} mirrors [Bmc.falsify] exactly (same outcome type, same
      shortest-counterexample guarantee) and serves as the SAT twin of
      the empty-refinement BMC re-check;
    - {!concretize} is the guided mode: the abstract error trace's
      constraint cubes are conjoined cycle by cycle as assumptions, so
      it can replace (or back up) guided ATPG as the Step-3
      concretizer. *)

val limits_of_atpg : Rfn_atpg.Atpg.limits -> Rfn_sat.Solver.limits
(** Map an ATPG resource budget onto the SAT solver: backtracks become
    conflicts one-for-one, the wall-clock budget carries over. Keeps
    the supervisor's deadline budgeting uniform across both engine
    families. *)

val falsify :
  ?limits:Rfn_atpg.Atpg.limits ->
  ?analysis:Rfn_analysis.Analysis.t ->
  Rfn_circuit.Circuit.t ->
  bad:int ->
  max_depth:int ->
  Bmc.outcome * Rfn_sat.Solver.stats
(** Same contract as {!Bmc.falsify}: depths are tried in increasing
    order on one incremental instance, a [Found] trace is a shortest
    counterexample and is validated by concrete replay before being
    reported. Statistics are the solver's lifetime totals for this
    instance.

    [analysis] asserts the proven invariants as persistent clauses at
    every encoded frame ({!Rfn_analysis.Analysis.assume_frame}) —
    sound because the unrolling starts from the initial states, so
    every frame holds a reachable state. The clauses prune the search
    without removing any genuine counterexample. *)

val concretize :
  ?limits:Rfn_atpg.Atpg.limits ->
  ?analysis:Rfn_analysis.Analysis.t ->
  Rfn_circuit.Circuit.t ->
  bad:int ->
  abstract_traces:Rfn_circuit.Trace.t list ->
  Concretize.outcome * Rfn_sat.Solver.stats
(** SAT-guided concretization: for each abstract trace, solve the
    whole design unrolled to the trace's length under assumptions
    pinning every state/input literal of the trace's constraint cubes
    plus the bad signal at the last frame. Traces are tried in order on
    the shared instance; a satisfying assignment is validated by replay
    like [Concretize.guided_any]. Raises [Invalid_argument] on an empty
    trace list. *)
