open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Reach = Rfn_mc.Reach
module Atpg = Rfn_atpg.Atpg
module Telemetry = Rfn_obs.Telemetry
module F = Rfn_failure

let src = Logs.Src.create "rfn" ~doc:"RFN abstraction refinement"

module Log = (val Logs.src_log src : Logs.LOG)

(* Handles to counters owned by the engines: the loop snapshots them at
   the top of each iteration and attributes the deltas to that
   iteration's provenance record. *)
let c_sup_retries = Telemetry.counter "supervisor.retries"
let c_sup_fallbacks = Telemetry.counter "supervisor.fallbacks"
let c_sup_injected = Telemetry.counter "supervisor.injected_faults"
let c_sat_learned = Telemetry.counter "sat.learned"
let c_atpg_backtracks = Telemetry.counter "atpg.backtracks"
let c_worker_failures = Telemetry.counter "proc.worker_failures"
let g_bdd_nodes = Telemetry.gauge "bdd.live_nodes"

type engines = Atpg_only | Sat_only | Portfolio

let engines_to_string = function
  | Atpg_only -> "atpg"
  | Sat_only -> "sat"
  | Portfolio -> "portfolio"

let engines_of_string = function
  | "atpg" -> Atpg_only
  | "sat" -> Sat_only
  | "portfolio" -> Portfolio
  | s ->
    invalid_arg
      (Printf.sprintf
         "unknown engine selection %S (expected atpg, sat or portfolio)" s)

let engines_of_env () =
  match Sys.getenv_opt "RFN_ENGINE" with
  | None -> Atpg_only
  | Some s -> (
    try engines_of_string (String.trim s)
    with Invalid_argument msg ->
      Printf.eprintf "RFN_ENGINE ignored: %s\n%!" msg;
      Atpg_only)

type config = {
  max_iterations : int;
  node_limit : int;
  mc_max_steps : int;
  max_seconds : float option;
  abstract_atpg : Atpg.limits;
  concrete_atpg : Atpg.limits;
  guidance_traces : int;
  engines : engines;
  analyze : bool;
      (* run the static invariant-inference pre-flight
         (Rfn_analysis.Analysis) once per session and feed the proven
         invariants to every engine: a care set for the abstract
         fixpoint, persistent clauses for the SAT unrollings, a
         don't-care filter for guided ATPG *)
  supervisor : Supervisor.policy;
  inject : (Supervisor.site -> Supervisor.fault option) option;
  session : Session.policy;
  check_invariants : bool;
      (* validate cross-artifact invariants (varmap totality, trace
         shape, cone-cache consistency) at every phase boundary;
         defaults to the RFN_CHECK environment flag *)
  proc : Rfn_proc.Proc.policy;
  checkpoint : string option;
  resume : bool;
  job_id : string;
      (* server job identifier, woven into the checkpoint key so two
         queued jobs on the same (design, property) cannot adopt each
         other's loop state; "" for stand-alone runs *)
}

let default_config =
  {
    max_iterations = 64;
    node_limit = 2_000_000;
    mc_max_steps = 2_000;
    max_seconds = None;
    abstract_atpg = { Atpg.max_backtracks = 50_000; max_seconds = Some 20.0 };
    concrete_atpg = { Atpg.max_backtracks = 200_000; max_seconds = Some 60.0 };
    guidance_traces = 1;
    engines = engines_of_env ();
    analyze = false;
    supervisor = Supervisor.default_policy;
    inject = None;
    session = Session.default_policy;
    check_invariants = Rfn_lint.Check.env_enabled ();
    proc = Rfn_proc.Proc.policy_of_env ();
    checkpoint = None;
    resume = false;
    job_id = "";
  }

type iteration = {
  abstract_regs : int;
  model_inputs : int;
  cut_size : int option;
  no_cut_steps : int;
  min_cut_steps : int;
  fixpoint_steps : int;
  trace_length : int option;
  candidates : int;
  added : int;
}

type stats = {
  iterations : iteration list;
  provenance : Rfn_obs.Provenance.t list;
  coi_regs : int;
  coi_gates : int;
  final_abstract_regs : int;
  last_abstract_trace : Trace.t option;
  seconds : float;
  resumed_iterations : int;
}

type outcome = Proved | Falsified of Trace.t | Aborted of F.t

let prepare ?(config = default_config) circuit ~roots =
  Session.create ~node_limit:config.node_limit ~policy:config.session circuit
    ~roots

let verify_in_session ?(config = default_config) session prop =
  let started = Telemetry.now () in
  let circuit = Session.circuit session in
  (* (Re)point the session at this property. On a warm session of the
     same design, carried cone BDDs the two properties share survive
     verbatim; a fresh session just initializes its abstraction. *)
  Session.retarget session ~roots:(Property.roots prop);
  (* Static pre-flight: infer and inductively prove reachable-state
     invariants on the concrete netlist, once per session (a warm
     session reuses the previous property's result — the invariants are
     facts about the design, not the property). Every consumer below
     only sees *proved* invariants, so analysis can only prune work,
     never change a verdict. *)
  let analysis =
    if not config.analyze then None
    else
      match Session.analysis session with
      | Some a -> Some a
      | None ->
        let a =
          Telemetry.with_span "rfn.analyze" (fun () ->
              Rfn_analysis.Analysis.run circuit)
        in
        Session.set_analysis session a;
        Log.info (fun m ->
            m "analysis: %d invariant(s) proved (%d candidates) in %.2fs"
              a.Rfn_analysis.Analysis.stats.Rfn_analysis.Analysis.proved
              a.Rfn_analysis.Analysis.stats.Rfn_analysis.Analysis.candidates
              a.Rfn_analysis.Analysis.seconds);
        Some a
  in
  let sup =
    Supervisor.start ?inject:config.inject config.supervisor
      ~max_seconds:config.max_seconds
  in
  let bad = prop.Property.bad in
  let coi = Coi.compute circuit ~roots:(Property.roots prop) in
  let iterations = ref [] in
  let provenance = ref [] in
  let last_trace = ref None in
  (* ---- crash-safe checkpointing --------------------------------------
     The loop state (abstraction register set, iteration counter,
     escalation factor, provenance tail) is persisted atomically at
     each iteration boundary, keyed by a digest of the netlist: a
     killed run resumes from its last completed refinement, and a
     checkpoint written for a different design or property is ignored
     with a warning rather than trusted. *)
  let netlist_hash =
    match config.checkpoint with
    | None -> ""
    | Some _ -> Rfn_proc.Checkpoint.hash_circuit circuit
  in
  let resumed_iterations = ref 0 in
  let start_iter = ref 1 in
  (if config.resume then
     match config.checkpoint with
     | None -> ()
     | Some file when not (Sys.file_exists file) -> ()
     | Some file -> (
       let fresh msg =
         Log.warn (fun m ->
             m "ignoring checkpoint %s (%s); starting fresh" file msg)
       in
       match Rfn_proc.Checkpoint.load file with
       | Error msg -> fresh msg
       | Ok ck -> (
         match
           Rfn_proc.Checkpoint.validate ck ~job_id:config.job_id ~netlist_hash
             ~property:prop.Property.name
         with
         | Error msg -> fresh msg
         | Ok () -> (
           match
             List.map (Circuit.find circuit) ck.Rfn_proc.Checkpoint.regs
           with
           | exception Not_found ->
             fresh "a checkpointed register is not in this design"
           | ids ->
             let current =
               (Session.abstraction session).Abstraction.regs
             in
             let add =
               List.filter (fun s -> not (Bitset.mem current s)) ids
             in
             if add <> [] then ignore (Session.refine session ~add);
             Supervisor.set_escalation sup ck.Rfn_proc.Checkpoint.escalation;
             provenance := List.rev ck.Rfn_proc.Checkpoint.provenance;
             start_iter := max 1 ck.Rfn_proc.Checkpoint.iteration;
             resumed_iterations := max 0 (!start_iter - 1);
             Telemetry.event "rfn.resume"
               [
                 ("file", Rfn_obs.Json.Str file);
                 ("iteration", Rfn_obs.Json.Int !start_iter);
                 ( "regs",
                   Rfn_obs.Json.Int
                     (Abstraction.num_regs (Session.abstraction session)) );
               ];
             Log.info (fun m ->
                 m "resumed from %s: continuing at iteration %d with %d \
                    registers"
                   file !start_iter
                   (Abstraction.num_regs (Session.abstraction session)))))));
  let save_checkpoint iter =
    match config.checkpoint with
    | None -> ()
    | Some file -> (
      let abstraction = Session.abstraction session in
      let regs =
        List.map (Circuit.name circuit)
          (Bitset.to_list abstraction.Abstraction.regs)
      in
      let ck =
        Rfn_proc.Checkpoint.make ~job_id:config.job_id ~netlist_hash
          ~property:prop.Property.name ~iteration:iter
          ~seconds_used:(Telemetry.now () -. started)
          ~escalation:(Supervisor.escalation sup)
          ~regs
          ~provenance:(List.rev !provenance)
          ()
      in
      try Rfn_proc.Checkpoint.save file ck
      with Sys_error msg ->
        Log.warn (fun m -> m "checkpoint save failed: %s" msg))
  in
  let finish abstraction outcome =
    (* a conclusive verdict retires the checkpoint; an abort keeps it
       so the run can be resumed *)
    (match (outcome, config.checkpoint) with
    | (Proved | Falsified _), Some file when Sys.file_exists file -> (
      try Sys.remove file with Sys_error _ -> ())
    | _ -> ());
    ( outcome,
      {
        iterations = List.rev !iterations;
        provenance = List.rev !provenance;
        coi_regs = Coi.num_regs coi;
        coi_gates = Coi.num_gates coi;
        final_abstract_regs = Abstraction.num_regs abstraction;
        last_abstract_trace = !last_trace;
        seconds = Telemetry.now () -. started;
        resumed_iterations = !resumed_iterations;
      } )
  in
  let time_left () = Supervisor.time_left sup in
  let loop_failure iter resource =
    F.make ~iteration:iter ~engine:F.Cegar ~phase:F.Loop resource
  in
  (* Cross-artifact invariant checks at phase boundaries (RFN_CHECK=1 /
     [config.check_invariants]): a violation unwinds the loop into a
     structured [Invariant] abort instead of corrupting later phases. *)
  let exception Check_violation of F.t in
  let check ~iter ~engine ~phase ~what thunk =
    if config.check_invariants then
      try Rfn_lint.Check.ensure ~what (thunk ())
      with Rfn_lint.Check.Violation (w, fs) ->
        raise
          (Check_violation
             (F.make ~iteration:iter ~engine ~phase
                (F.Invariant (Rfn_lint.Check.violation_message w fs))))
  in
  let rec iterate iter =
    let abstraction = Session.abstraction session in
    save_checkpoint iter;
    if iter > config.max_iterations then
      finish abstraction (Aborted (loop_failure iter F.Iterations))
    else if Supervisor.out_of_time sup then
      finish abstraction (Aborted (loop_failure iter F.Time))
    else begin
      let view = abstraction.Abstraction.view in
      Log.info (fun m ->
          m "iteration %d: abstract model %a" iter Sview.pp_stats view);
      (* Counter snapshots: everything the engines bump during this
         iteration is attributed to it by delta. *)
      let iter_started = Telemetry.now () in
      let retries0 = Telemetry.counter_value c_sup_retries in
      let fallbacks0 = Telemetry.counter_value c_sup_fallbacks in
      let injected0 = Telemetry.counter_value c_sup_injected in
      let learned0 = Telemetry.counter_value c_sat_learned in
      let backtracks0 = Telemetry.counter_value c_atpg_backtracks in
      let worker_failures0 = Telemetry.counter_value c_worker_failures in
      let record ?cut_size ?(no_cut = 0) ?(min_cut = 0) ?trace_length
          ?(candidates = 0) ?(added = 0) ?(cubes = 0) ?(guidance = 0)
          ?(engine = "") ?(concretize = "none") ?(promoted = []) ?regs_after
          ~outcome steps =
        iterations :=
          {
            abstract_regs = Abstraction.num_regs abstraction;
            model_inputs = Sview.num_free_inputs view;
            cut_size;
            no_cut_steps = no_cut;
            min_cut_steps = min_cut;
            fixpoint_steps = steps;
            trace_length;
            candidates;
            added;
          }
          :: !iterations;
        let regs_before = Abstraction.num_regs abstraction in
        let p =
          {
            Rfn_obs.Provenance.iter;
            regs_before;
            regs_after =
              (match regs_after with Some n -> n | None -> regs_before);
            model_inputs = Sview.num_free_inputs view;
            fixpoint_steps = steps;
            trace_depth = trace_length;
            cut_size;
            cubes;
            guidance;
            engine;
            concretize;
            promoted;
            candidates;
            retries = Telemetry.counter_value c_sup_retries - retries0;
            fallbacks = Telemetry.counter_value c_sup_fallbacks - fallbacks0;
            injected = Telemetry.counter_value c_sup_injected - injected0;
            worker_failures =
              Telemetry.counter_value c_worker_failures - worker_failures0;
            bdd_nodes = Telemetry.gauge_value g_bdd_nodes;
            bdd_peak = Telemetry.gauge_peak g_bdd_nodes;
            sat_learned = Telemetry.counter_value c_sat_learned - learned0;
            backtracks =
              Telemetry.counter_value c_atpg_backtracks - backtracks0;
            seconds = Telemetry.now () -. iter_started;
            outcome;
          }
        in
        provenance := p :: !provenance;
        Telemetry.event "rfn.iteration" (Rfn_obs.Provenance.to_fields p)
      in
      let attrs =
        [
          ("iter", Rfn_obs.Json.Int iter);
          ( "abstract_regs",
            Rfn_obs.Json.Int (Abstraction.num_regs abstraction) );
        ]
      in
      (* Step 2: prove or find an abstract error trace. Ladder: the
         session's carried state as-is, then (on a BDD node blow-up) a
         session reset — a rebuild with a fresh FORCE variable order —
         then one more with a grown node budget. [Session.prepare] runs
         inside the rung, so its blow-ups map to [Error Nodes] like the
         fixpoint's own. *)
      let mc_attempt ~prep () =
        match
          let { Session.vm; fn; img } = prep () in
          let init = Symbolic.initial_states vm in
          let bad_states = Reach.bad_predicate vm ~fn ~bad in
          (* Proven invariants as a care set: concretely reachable
             states all satisfy them, so restricting the abstract
             exploration to the invariant region is sound for Proved
             verdicts (and a Reached trace is still concretization-
             validated before it can become Falsified). *)
          let care =
            match analysis with
            | None -> None
            | Some a -> Some (Rfn_analysis.Analysis.constraint_bdd a vm)
          in
          let res =
            Reach.run ~max_steps:config.mc_max_steps
              ?max_seconds:(time_left ()) ?care img ~vm ~init ~bad_states
          in
          (vm, fn, res)
        with
        | exception Bdd.Limit_exceeded -> Error F.Nodes
        | (_, _, res) as v -> (
          match res.Reach.outcome with
          | Reach.Aborted r when F.retryable_resource r -> Error r
          | _ -> Ok v)
      in
      let mc =
        Telemetry.with_span "rfn.abstract_mc" ~attrs (fun () ->
            Supervisor.run sup ~site:Supervisor.Abstract_mc ~engine:F.Bdd_mc
              ~phase:F.Abstract_mc ~iteration:iter
              [
                ( Supervisor.Primary,
                  "fixpoint",
                  mc_attempt ~prep:(fun () -> Session.prepare session) );
                ( Supervisor.Retry,
                  "fixpoint+fresh-order",
                  mc_attempt ~prep:(fun () ->
                      Session.reset session ~fresh_order:true
                        ~node_limit:config.node_limit;
                      Session.prepare session) );
                ( Supervisor.Retry,
                  "fixpoint+node-budget",
                  mc_attempt ~prep:(fun () ->
                      Session.reset session ~fresh_order:true
                        ~node_limit:
                          (config.node_limit
                          * (Supervisor.policy sup).Supervisor.node_limit_growth);
                      Session.prepare session) );
              ])
      in
      Rfn_obs.Sampler.tick "rfn.abstract_mc";
      match mc with
      | Error failure ->
        record ~outcome:("aborted:" ^ F.resource_to_string failure.F.resource)
          0;
        finish abstraction (Aborted failure)
      | Ok (vm, fn, res) -> (
        check ~iter ~engine:F.Bdd_mc ~phase:F.Abstract_mc
          ~what:"abstract-mc artifacts" (fun () ->
            Rfn_lint.Check.varmap vm
            @ Rfn_lint.Check.cone_cache vm
                ~signals:(Session.cone_signals session));
        match res.Reach.outcome with
        | Reach.Proved ->
          record ~outcome:"proved" res.Reach.steps;
          Log.info (fun m -> m "property proved on the abstract model");
          finish abstraction Proved
        | Reach.Closed _ ->
          (* not produced when stop_at_bad is true (the default); an
             engine invariant slip degrades into a reported abort
             rather than a crash *)
          record ~outcome:"aborted:invariant" res.Reach.steps;
          finish abstraction
            (Aborted
               (F.make ~iteration:iter ~engine:F.Bdd_mc ~phase:F.Abstract_mc
                  (F.Invariant
                     "reachability closed with a bad intersection despite \
                      stop_at_bad")))
        | Reach.Aborted r ->
          (* terminal resource (time or step bound) — the ladder does
             not retry those *)
          record ~outcome:("aborted:" ^ F.resource_to_string r)
            res.Reach.steps;
          finish abstraction
            (Aborted
               (F.make ~iteration:iter ~engine:F.Bdd_mc ~phase:F.Abstract_mc r))
        | Reach.Reached k -> (
          (* Step 2b: abstract error trace. Ladder: the paper's min-cut
             pre-image path, then pure pre-image on the abstract model
             (no cut, no ATPG cube extension). *)
          let hybrid_attempt ~use_mincut () =
            match
              Hybrid.extract_multi
                ~atpg_limits:
                  (Supervisor.clamp_limits sup Supervisor.Hybrid_extract
                     config.abstract_atpg)
                ~use_mincut ~fn
                ~count:(max 1 config.guidance_traces)
                vm ~rings:res.Reach.rings ~target:(fn bad) ~k
            with
            | exception Hybrid.Extraction_failed r -> Error r
            | exception Bdd.Limit_exceeded -> Error F.Nodes
            | [] ->
              (* extract_multi promises at least one trace *)
              Error (F.Invariant "hybrid engine returned no abstract traces")
            | hybrids -> Ok hybrids
          in
          let extraction =
            Telemetry.with_span "rfn.hybrid" ~attrs (fun () ->
                Supervisor.run sup ~site:Supervisor.Hybrid_extract
                  ~engine:F.Hybrid ~phase:F.Trace_extraction ~iteration:iter
                  [
                    ( Supervisor.Primary,
                      "min-cut",
                      hybrid_attempt ~use_mincut:true );
                    ( Supervisor.Fallback,
                      "pure-preimage",
                      hybrid_attempt ~use_mincut:false );
                  ])
          in
          Rfn_obs.Sampler.tick "rfn.hybrid";
          match extraction with
          | Error failure ->
            record
              ~outcome:("aborted:" ^ F.resource_to_string failure.F.resource)
              res.Reach.steps;
            finish abstraction (Aborted failure)
          | Ok (hybrid :: _ as hybrids) -> (
            check ~iter ~engine:F.Hybrid ~phase:F.Trace_extraction
              ~what:"abstract error traces" (fun () ->
                (* input cubes may also pin min-cut signals, which carry
                   an input variable in the varmap *)
                let input_ok s =
                  Sview.is_free view s || Varmap.has_inp_var vm s
                in
                List.concat_map
                  (fun h ->
                    Rfn_lint.Check.trace ~input_ok view ~depth:(k + 1)
                      h.Hybrid.trace)
                  hybrids);
            let abstract_trace = hybrid.Hybrid.trace in
            last_trace := Some abstract_trace;
            Log.info (fun m ->
                m "%d abstract error trace(s) of length %d (cut %d of %d inputs)"
                  (List.length hybrids)
                  (Trace.length abstract_trace)
                  hybrid.Hybrid.cut_size hybrid.Hybrid.model_inputs);
            let record_hybrid ?(candidates = 0) ?(added = 0) ?(promoted = [])
                ?regs_after ~concretize ~outcome () =
              record ~cut_size:hybrid.Hybrid.cut_size
                ~no_cut:hybrid.Hybrid.no_cut_steps
                ~min_cut:hybrid.Hybrid.min_cut_steps
                ~trace_length:(Trace.length abstract_trace)
                ~cubes:
                  (2
                  * List.fold_left
                      (fun acc h -> acc + Trace.length h.Hybrid.trace)
                      0 hybrids)
                ~guidance:(List.length hybrids)
                ~engine:(engines_to_string config.engines)
                ~concretize ~candidates ~added ~promoted ?regs_after ~outcome
                res.Reach.steps
            in
            (* Step 3: search on the original design. A failure here is
               never fatal — an injected or resource failure degrades to
               a give-up, which escalates the backtrack budget for the
               next iteration and refines. Ladder per [config.engines]:
               a give-up is an [Error], so in portfolio mode an ATPG
               give-up escalates to SAT-guided BMC at the same depth
               before the loop settles for refinement. *)
            let guidance = List.map (fun h -> h.Hybrid.trace) hybrids in
            let as_rung outcome =
              match outcome with
              | Concretize.Gave_up r -> Error r
              | outcome -> Ok outcome
            in
            let atpg_rung () =
              let outcome, _stats =
                Concretize.guided_any
                  ~limits:(Supervisor.concrete_limits sup config.concrete_atpg)
                  ?analysis circuit ~bad ~abstract_traces:guidance
              in
              as_rung outcome
            in
            let sat_rung () =
              let outcome, _stats =
                Sat_bmc.concretize
                  ~limits:(Supervisor.concrete_limits sup config.concrete_atpg)
                  ?analysis circuit ~bad ~abstract_traces:guidance
              in
              as_rung outcome
            in
            let concretize_engine, concretize_rungs =
              match config.engines with
              | Atpg_only ->
                (F.Seq_atpg, [ (Supervisor.Primary, "guided-atpg", atpg_rung) ])
              | Sat_only ->
                (F.Sat, [ (Supervisor.Primary, "guided-sat", sat_rung) ])
              | Portfolio ->
                ( F.Seq_atpg,
                  [
                    (Supervisor.Primary, "guided-atpg", atpg_rung);
                    (Supervisor.Fallback, "guided-sat", sat_rung);
                  ] )
            in
            (* With the worker pool enabled the portfolio becomes a
               genuine race: both engines run concurrently in isolated
               processes and the first conclusive answer wins. The
               in-process rungs stay on the ladder as fallbacks, so a
               crashed, hung or babbling worker degrades to the
               sequential portfolio instead of changing the verdict. *)
            let concretize_rungs =
              if not config.proc.Rfn_proc.Proc.enabled then concretize_rungs
              else begin
                let race_rung () =
                  let limits =
                    Supervisor.concrete_limits sup config.concrete_atpg
                  in
                  let engines =
                    match config.engines with
                    | Atpg_only -> [ `Atpg ]
                    | Sat_only -> [ `Sat ]
                    | Portfolio -> [ `Atpg; `Sat ]
                  in
                  match
                    Racing.concretize ?deadline:limits.Atpg.max_seconds
                      ~policy:config.proc ~engines ~limits circuit ~bad
                      ~abstract_traces:guidance
                  with
                  | Ok outcome -> as_rung outcome
                  | Error r -> Error r
                in
                (Supervisor.Primary, "race", race_rung)
                :: List.map
                     (fun (_, label, thunk) ->
                       (Supervisor.Fallback, label, thunk))
                     concretize_rungs
              end
            in
            let concrete =
              Telemetry.with_span "rfn.concretize" ~attrs (fun () ->
                  match
                    Supervisor.run sup ~site:Supervisor.Concretize
                      ~engine:concretize_engine ~phase:F.Concretization
                      ~iteration:iter concretize_rungs
                  with
                  | Ok outcome -> outcome
                  | Error failure ->
                    Concretize.Gave_up failure.F.resource)
            in
            Rfn_obs.Sampler.tick "rfn.concretize";
            let concretize_desc =
              match concrete with
              | Concretize.Found _ -> "found"
              | Concretize.Not_found_here -> "not-found"
              | Concretize.Gave_up r -> "gave-up:" ^ F.resource_to_string r
            in
            let check_concrete_trace ~engine t =
              check ~iter ~engine ~phase:F.Concretization
                ~what:"concrete counterexample" (fun () ->
                  Rfn_lint.Check.trace
                    (Sview.whole circuit ~roots:[])
                    ~depth:(Trace.length t) t)
            in
            match concrete with
            | Concretize.Found t ->
              check_concrete_trace ~engine:concretize_engine t;
              record_hybrid ~concretize:concretize_desc ~outcome:"falsified"
                ();
              Log.info (fun m -> m "concrete counterexample found");
              finish abstraction (Falsified t)
            | Concretize.Not_found_here | Concretize.Gave_up _ -> (
              (match concrete with
              | Concretize.Gave_up r ->
                Log.info (fun m ->
                    m "concretization gave up (%a); escalating backtrack \
                       budget"
                      F.pp_resource r);
                Supervisor.escalate sup
              | _ -> ());
              (* Step 4: refine. Ladder: crucial registers, then (on an
                 empty refinement) the highest-fanout pseudo-input, then
                 a BMC re-check at the abstract trace's depth. *)
              let crucial () =
                let r =
                  Refine.crucial_registers
                    ~atpg_limits:
                      (Supervisor.clamp_limits sup Supervisor.Refine
                         config.abstract_atpg)
                    ~bad abstraction ~abstract_trace ()
                in
                if r.Refine.kept = [] then Error F.No_refinement
                else Ok (`Add (r.Refine.kept, List.length r.Refine.candidates))
              in
              let highest_fanout () =
                match Abstraction.pseudo_inputs abstraction with
                | [] ->
                  (* no pseudo-inputs means the model is closed: the
                     abstract trace should have concretized — let the
                     BMC rung arbitrate *)
                  Error (F.Invariant "closed abstract model, spurious trace")
                | ps ->
                  let fanout s = Array.length circuit.Circuit.fanouts.(s) in
                  let best =
                    List.fold_left
                      (fun a s -> if fanout s > fanout a then s else a)
                      (List.hd ps) (List.tl ps)
                  in
                  Ok (`Add ([ best ], List.length ps))
              in
              let bmc_recheck () =
                match
                  Bmc.falsify
                    ~limits:(Supervisor.concrete_limits sup config.concrete_atpg)
                    circuit ~bad ~max_depth:(Trace.length abstract_trace)
                with
                | Bmc.Found t, _ -> Ok (`Cex t)
                | Bmc.Exhausted, _ -> Error F.No_refinement
                | Bmc.Gave_up _, _ -> Error F.Backtracks
              in
              let sat_recheck () =
                match
                  Sat_bmc.falsify
                    ~limits:(Supervisor.concrete_limits sup config.concrete_atpg)
                    ?analysis circuit ~bad
                    ~max_depth:(Trace.length abstract_trace)
                with
                | Bmc.Found t, _ -> Ok (`Cex t)
                | Bmc.Exhausted, _ -> Error F.No_refinement
                | Bmc.Gave_up _, _ -> Error F.Conflicts
              in
              let recheck_rungs =
                match config.engines with
                | Atpg_only ->
                  [ (Supervisor.Fallback, "bmc-recheck", bmc_recheck) ]
                | Sat_only ->
                  [ (Supervisor.Fallback, "sat-bmc-recheck", sat_recheck) ]
                | Portfolio ->
                  [
                    (Supervisor.Fallback, "bmc-recheck", bmc_recheck);
                    (Supervisor.Fallback, "sat-bmc-recheck", sat_recheck);
                  ]
              in
              (* the raced re-check runs first; the in-process twins
                 remain below it as the no-worker fallback *)
              let recheck_rungs =
                if not config.proc.Rfn_proc.Proc.enabled then recheck_rungs
                else begin
                  let race_recheck () =
                    let limits =
                      Supervisor.concrete_limits sup config.concrete_atpg
                    in
                    let engines =
                      match config.engines with
                      | Atpg_only -> [ `Bmc ]
                      | Sat_only -> [ `Sat ]
                      | Portfolio -> [ `Bmc; `Sat ]
                    in
                    match
                      Racing.falsify ?deadline:limits.Atpg.max_seconds
                        ~policy:config.proc ~engines ~limits circuit ~bad
                        ~max_depth:(Trace.length abstract_trace)
                    with
                    | Ok (Bmc.Found t) -> Ok (`Cex t)
                    | Ok Bmc.Exhausted -> Error F.No_refinement
                    | Ok (Bmc.Gave_up _) -> Error F.Backtracks
                    | Error r -> Error r
                  in
                  (Supervisor.Fallback, "race-recheck", race_recheck)
                  :: recheck_rungs
                end
              in
              let refine_rungs =
                (Supervisor.Primary, "crucial-registers", crucial)
                :: (Supervisor.Fallback, "highest-fanout", highest_fanout)
                :: recheck_rungs
              in
              let refinement =
                Telemetry.with_span "rfn.refine" ~attrs (fun () ->
                    Supervisor.run sup ~site:Supervisor.Refine
                      ~engine:F.Seq_atpg ~phase:F.Refinement ~iteration:iter
                      refine_rungs)
              in
              Rfn_obs.Sampler.tick "rfn.refine";
              match refinement with
              | Ok (`Add (regs, candidates)) ->
                Log.info (fun m ->
                    m "refining with %d register(s) (%d candidates)"
                      (List.length regs) candidates);
                let delta = Session.refine session ~add:regs in
                Log.debug (fun m ->
                    m "delta: %d promoted, %d fresh, %d new signals"
                      (List.length delta.Abstraction.promoted)
                      (List.length delta.Abstraction.fresh_regs)
                      delta.Abstraction.new_signals);
                record_hybrid ~candidates ~added:(List.length regs)
                  ~promoted:(List.map (Circuit.name circuit) regs)
                  ~regs_after:
                    (Abstraction.num_regs (Session.abstraction session))
                  ~concretize:concretize_desc ~outcome:"refined" ();
                check ~iter ~engine:F.Cegar ~phase:F.Refinement
                  ~what:"post-refine varmap" (fun () ->
                    match Session.varmap session with
                    | None -> []
                    | Some vm -> Rfn_lint.Check.varmap vm);
                iterate (iter + 1)
              | Ok (`Cex t) ->
                check_concrete_trace ~engine:F.Seq_atpg t;
                record_hybrid ~concretize:concretize_desc
                  ~outcome:"falsified" ();
                Log.info (fun m ->
                    m "BMC re-check found a concrete counterexample");
                finish abstraction (Falsified t)
              | Error failure ->
                record_hybrid ~concretize:concretize_desc
                  ~outcome:
                    ("aborted:" ^ F.resource_to_string failure.F.resource)
                  ();
                finish abstraction (Aborted failure)))
          | Ok [] ->
            (* unreachable: the ladder maps [] to an Error *)
            record ~outcome:"aborted:invariant" res.Reach.steps;
            finish abstraction
              (Aborted
                 (F.make ~iteration:iter ~engine:F.Hybrid
                    ~phase:F.Trace_extraction
                    (F.Invariant "hybrid engine returned no abstract traces")))))
    end
  in
  try iterate !start_iter
  with Check_violation failure ->
    finish (Session.abstraction session) (Aborted failure)

let verify ?(config = default_config) circuit prop =
  let session = prepare ~config circuit ~roots:(Property.roots prop) in
  verify_in_session ~config session prop

let check_coi_model_checking ?(node_limit = 2_000_000) ?(max_steps = 10_000)
    ?max_seconds circuit prop =
  let started = Telemetry.now () in
  let bad = prop.Property.bad in
  let coi = Coi.compute circuit ~roots:(Property.roots prop) in
  let view = Coi.restrict_view circuit coi ~roots:(Property.roots prop) in
  let result =
    match
      let vm = Varmap.make ~node_limit view in
      let fn = Symbolic.functions vm in
      let img = Image.make vm in
      let init = Symbolic.initial_states vm in
      let bad_states = Reach.bad_predicate vm ~fn ~bad in
      Reach.run ~max_steps ?max_seconds img ~vm ~init ~bad_states
    with
    | exception Bdd.Limit_exceeded -> `Aborted F.Nodes
    | res -> (
      match res.Reach.outcome with
      | Reach.Proved -> `Proved
      | Reach.Reached k | Reach.Closed k -> `Reached k
      | Reach.Aborted r -> `Aborted r)
  in
  (result, Telemetry.now () -. started)
