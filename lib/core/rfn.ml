open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Reach = Rfn_mc.Reach
module Atpg = Rfn_atpg.Atpg
module Telemetry = Rfn_obs.Telemetry

let src = Logs.Src.create "rfn" ~doc:"RFN abstraction refinement"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  max_iterations : int;
  node_limit : int;
  mc_max_steps : int;
  max_seconds : float option;
  abstract_atpg : Atpg.limits;
  concrete_atpg : Atpg.limits;
  guidance_traces : int;
}

let default_config =
  {
    max_iterations = 64;
    node_limit = 2_000_000;
    mc_max_steps = 2_000;
    max_seconds = None;
    abstract_atpg = { Atpg.max_backtracks = 50_000; max_seconds = Some 20.0 };
    concrete_atpg = { Atpg.max_backtracks = 200_000; max_seconds = Some 60.0 };
    guidance_traces = 1;
  }

type iteration = {
  abstract_regs : int;
  model_inputs : int;
  cut_size : int option;
  no_cut_steps : int;
  min_cut_steps : int;
  fixpoint_steps : int;
  trace_length : int option;
  candidates : int;
  added : int;
}

type stats = {
  iterations : iteration list;
  coi_regs : int;
  coi_gates : int;
  final_abstract_regs : int;
  last_abstract_trace : Trace.t option;
  seconds : float;
}

type outcome = Proved | Falsified of Trace.t | Aborted of string

let verify ?(config = default_config) circuit prop =
  let started = Telemetry.now () in
  let bad = prop.Property.bad in
  let coi = Coi.compute circuit ~roots:(Property.roots prop) in
  let iterations = ref [] in
  let last_trace = ref None in
  let finish abstraction outcome =
    ( outcome,
      {
        iterations = List.rev !iterations;
        coi_regs = Coi.num_regs coi;
        coi_gates = Coi.num_gates coi;
        final_abstract_regs = Abstraction.num_regs abstraction;
        last_abstract_trace = !last_trace;
        seconds = Telemetry.now () -. started;
      } )
  in
  (* Remaining wall-clock budget, clamped at zero so a blown budget is
     never handed to Reach.run or the ATPG engines as a negative
     limit. *)
  let time_left () =
    match config.max_seconds with
    | None -> None
    | Some budget ->
      Some (Float.max 0.0 (budget -. (Telemetry.now () -. started)))
  in
  let out_of_time () =
    match time_left () with Some r -> r <= 0.0 | None -> false
  in
  let rec iterate ?previous abstraction iter =
    if iter > config.max_iterations then
      finish abstraction (Aborted "iteration limit")
    else if out_of_time () then finish abstraction (Aborted "time limit")
    else begin
      let view = abstraction.Abstraction.view in
      Log.info (fun m ->
          m "iteration %d: abstract model %a" iter Sview.pp_stats view);
      let record ?cut_size ?(no_cut = 0) ?(min_cut = 0) ?trace_length
          ?(candidates = 0) ?(added = 0) steps =
        iterations :=
          {
            abstract_regs = Abstraction.num_regs abstraction;
            model_inputs = Sview.num_free_inputs view;
            cut_size;
            no_cut_steps = no_cut;
            min_cut_steps = min_cut;
            fixpoint_steps = steps;
            trace_length;
            candidates;
            added;
          }
          :: !iterations
      in
      let attrs =
        [
          ("iter", Rfn_obs.Json.Int iter);
          ( "abstract_regs",
            Rfn_obs.Json.Int (Abstraction.num_regs abstraction) );
        ]
      in
      (* Step 2: prove or find an abstract error trace. *)
      match
        Telemetry.with_span "rfn.abstract_mc" ~attrs (fun () ->
            let vm = Varmap.make ~node_limit:config.node_limit ?previous view in
            let fn = Symbolic.functions vm in
            let img = Image.make vm in
            let init = Symbolic.initial_states vm in
            let bad_states = Reach.bad_predicate vm ~fn ~bad in
            let res =
              Reach.run ~max_steps:config.mc_max_steps
                ?max_seconds:(time_left ()) img ~vm ~init ~bad_states
            in
            (vm, fn, res))
      with
      | exception Bdd.Limit_exceeded ->
        record 0;
        finish abstraction (Aborted "BDD node limit while building model")
      | vm, fn, res -> (
        match res.Reach.outcome with
        | Reach.Proved ->
          record res.Reach.steps;
          Log.info (fun m -> m "property proved on the abstract model");
          finish abstraction Proved
        | Reach.Closed _ ->
          (* not produced when stop_at_bad is true (the default); an
             engine invariant slip degrades into a reported abort
             rather than a crash *)
          record res.Reach.steps;
          finish abstraction
            (Aborted
               "internal: reachability closed with a bad intersection \
                despite stop_at_bad")
        | Reach.Aborted why ->
          record res.Reach.steps;
          finish abstraction (Aborted ("fixpoint: " ^ why))
        | Reach.Reached k -> (
          match
            Telemetry.with_span "rfn.hybrid" ~attrs (fun () ->
                Hybrid.extract_multi ~atpg_limits:config.abstract_atpg
                  ~count:(max 1 config.guidance_traces) vm
                  ~rings:res.Reach.rings ~target:(fn bad) ~k)
          with
          | exception (Failure _ as e) ->
            record res.Reach.steps;
            finish abstraction (Aborted (Printexc.to_string e))
          | exception Bdd.Limit_exceeded ->
            record res.Reach.steps;
            finish abstraction (Aborted "BDD node limit in hybrid engine")
          | [] ->
            (* extract_multi promises at least one trace; degrade an
               invariant slip into a reported abort *)
            record res.Reach.steps;
            finish abstraction
              (Aborted "internal: hybrid engine returned no abstract traces")
          | (hybrid :: _ as hybrids) -> (
            let abstract_trace = hybrid.Hybrid.trace in
            last_trace := Some abstract_trace;
            Log.info (fun m ->
                m "%d abstract error trace(s) of length %d (cut %d of %d inputs)"
                  (List.length hybrids)
                  (Trace.length abstract_trace)
                  hybrid.Hybrid.cut_size hybrid.Hybrid.model_inputs);
            (* Step 3: search on the original design. *)
            let concrete, _ =
              Telemetry.with_span "rfn.concretize" ~attrs (fun () ->
                  Concretize.guided_any ~limits:config.concrete_atpg circuit
                    ~bad
                    ~abstract_traces:
                      (List.map (fun h -> h.Hybrid.trace) hybrids))
            in
            match concrete with
            | Concretize.Found t ->
              record ~cut_size:hybrid.Hybrid.cut_size
                ~no_cut:hybrid.Hybrid.no_cut_steps
                ~min_cut:hybrid.Hybrid.min_cut_steps
                ~trace_length:(Trace.length abstract_trace) res.Reach.steps;
              Log.info (fun m -> m "concrete counterexample found");
              finish abstraction (Falsified t)
            | Concretize.Not_found_here | Concretize.Gave_up ->
              (* Step 4: refine. *)
              let r =
                Telemetry.with_span "rfn.refine" ~attrs (fun () ->
                    Refine.crucial_registers ~atpg_limits:config.abstract_atpg
                      ~bad abstraction ~abstract_trace ())
              in
              record ~cut_size:hybrid.Hybrid.cut_size
                ~no_cut:hybrid.Hybrid.no_cut_steps
                ~min_cut:hybrid.Hybrid.min_cut_steps
                ~trace_length:(Trace.length abstract_trace)
                ~candidates:(List.length r.Refine.candidates)
                ~added:(List.length r.Refine.kept) res.Reach.steps;
              if r.Refine.kept = [] then
                finish abstraction (Aborted "no crucial registers to add")
              else begin
                Log.info (fun m ->
                    m "refining with %d of %d candidate registers"
                      (List.length r.Refine.kept)
                      (List.length r.Refine.candidates));
                iterate ~previous:vm
                  (Abstraction.refine abstraction ~add:r.Refine.kept)
                  (iter + 1)
              end)))
    end
  in
  iterate (Abstraction.initial circuit ~roots:(Property.roots prop)) 1

let check_coi_model_checking ?(node_limit = 2_000_000) ?(max_steps = 10_000)
    ?max_seconds circuit prop =
  let started = Telemetry.now () in
  let bad = prop.Property.bad in
  let coi = Coi.compute circuit ~roots:(Property.roots prop) in
  let view = Coi.restrict_view circuit coi ~roots:(Property.roots prop) in
  let result =
    match
      let vm = Varmap.make ~node_limit view in
      let fn = Symbolic.functions vm in
      let img = Image.make vm in
      let init = Symbolic.initial_states vm in
      let bad_states = Reach.bad_predicate vm ~fn ~bad in
      Reach.run ~max_steps ?max_seconds img ~vm ~init ~bad_states
    with
    | exception Bdd.Limit_exceeded -> `Aborted "BDD node limit"
    | res -> (
      match res.Reach.outcome with
      | Reach.Proved -> `Proved
      | Reach.Reached k | Reach.Closed k -> `Reached k
      | Reach.Aborted why -> `Aborted why)
  in
  (result, Telemetry.now () -. started)
