(** BDD–ATPG hybrid error-trace extraction on the abstract model
    (Section 2.2).

    When the forward fixpoint touches the target states at ring k, a
    trace is pulled back ring by ring. Pre-image is computed not on
    the abstract model N (whose thousands of free inputs would sink
    BDD pre-image) but on its min-cut design MC; the resulting cubes
    mention the cut signals. A cube whose non-state literals are all
    free inputs of N is a *no-cut cube* and extends the trace directly;
    otherwise it is a *min-cut cube* and combinational ATPG finds a
    consistent no-cut cube on N. Cube containment in the ring
    conjunction guarantees any ATPG completion stays inside the ring,
    so the walk never leaves the reachable onion. *)

type result = {
  trace : Rfn_circuit.Trace.t;
      (** abstract error trace: k+1 state cubes over N's registers and
          k+1 input cubes over N's free inputs (the last is the
          final-cycle witness for the bad signal) *)
  cut_size : int;
      (** primary inputs of the min-cut design (with [use_mincut:false],
          the free-input count of the abstract model — the trivial cut) *)
  model_inputs : int;  (** free inputs of the abstract model *)
  no_cut_steps : int;  (** pre-image steps solved without ATPG *)
  min_cut_steps : int;  (** steps needing ATPG cube extension *)
}

exception Extraction_failed of Rfn_failure.resource
(** Raised when no cube can be extended within the per-step attempt
    budget ([Cube_tries]) or when a ring invariant is broken
    ([Invariant _]) — structured so the supervisor can pick a fallback
    without string matching. *)

val extract :
  ?atpg_limits:Rfn_atpg.Atpg.limits ->
  ?max_cube_tries:int ->
  ?use_mincut:bool ->
  ?fn:(int -> Rfn_bdd.Bdd.t) ->
  Rfn_mc.Varmap.t ->
  rings:Rfn_bdd.Bdd.t array ->
  target:Rfn_bdd.Bdd.t ->
  k:int ->
  result
(** [extract vm ~rings ~target ~k] requires ring [k] to intersect
    [target], a predicate over the view's current-state and input
    variables (for an unreachability property: the bad signal's
    function; for coverage analysis: the unknown coverage states).
    Raises {!Extraction_failed} if no cube can be extended within
    [max_cube_tries] ATPG attempts per step (default 64), and may
    propagate [Rfn_bdd.Bdd.Limit_exceeded].

    [use_mincut] (default [true]) selects the paper's min-cut pre-image
    path; [false] is the degraded pure pre-image mode — pre-images run
    directly on the abstract model, every cube is a no-cut cube and the
    combinational-ATPG extension is never needed. Slower on models with
    many free inputs, but immune to min-cut-path failures; the engine
    supervisor uses it as the fallback.

    [fn] is the verification session's cone cache, used directly on
    the pure pre-image path instead of recompiling the view's cones
    (the min-cut path always compiles its own, into a memo released on
    exit — the manager may outlive the extraction). *)

val extract_multi :
  ?atpg_limits:Rfn_atpg.Atpg.limits ->
  ?max_cube_tries:int ->
  ?use_mincut:bool ->
  ?fn:(int -> Rfn_bdd.Bdd.t) ->
  count:int ->
  Rfn_mc.Varmap.t ->
  rings:Rfn_bdd.Bdd.t array ->
  target:Rfn_bdd.Bdd.t ->
  k:int ->
  result list
(** Up to [count] abstract error traces with pairwise-distinct final
    cubes, fattest first — the paper's future-work proposal of guiding
    the concrete search with a *set* of traces instead of one. Always
    returns at least one result (or raises as {!extract} does). *)
