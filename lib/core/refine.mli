(** Two-phase crucial-register identification (Section 2.4).

    Phase 1 replays the abstract error trace on the original design
    with 3-valued simulation: signals the trace does not pin are X,
    trace values are forced back after each step, and every
    pseudo-input register whose simulated value concretely disagrees
    with the trace becomes a crucial-register candidate. If nothing
    conflicts (rare), the pseudo-inputs mentioned most often in the
    trace are taken instead.

    Phase 2 greedily minimizes the candidate list with sequential
    ATPG: candidates are added one at a time to the abstract model
    until the error trace becomes unsatisfiable on it, the unused tail
    is dropped, and a removal pass then tries to discard each earlier
    addition (keeping the model trace-refuting throughout). If ATPG
    cannot give a definitive answer within its limits, all candidates
    are kept, as in the paper. *)

type result = {
  candidates : int list;  (** phase-1 candidate registers, in order *)
  kept : int list;  (** registers actually added to the model *)
  invalidated : bool;
      (** the refined model provably refutes the abstract trace *)
}

val crucial_registers :
  ?atpg_limits:Rfn_atpg.Atpg.limits ->
  ?max_fallback:int ->
  ?bad:int ->
  Rfn_circuit.Abstraction.t ->
  abstract_trace:Rfn_circuit.Trace.t ->
  unit ->
  result
(** [max_fallback] (default 8) bounds how many most-frequent
    pseudo-inputs are taken when simulation finds no conflict.
    [result.kept] is empty only if the abstract model has no
    pseudo-inputs left to add. *)
