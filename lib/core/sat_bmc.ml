open Rfn_circuit
module Atpg = Rfn_atpg.Atpg
module Solver = Rfn_sat.Solver
module Cnf = Rfn_sat.Cnf
module Sim3v = Rfn_sim3v.Sim3v
module Telemetry = Rfn_obs.Telemetry

module Check = Rfn_lint.Check

let c_falsify = Telemetry.counter "sat_bmc.falsify_calls"
let c_concretize = Telemetry.counter "sat_bmc.concretize_calls"
let c_found = Telemetry.counter "sat_bmc.found"

let limits_of_atpg (l : Atpg.limits) =
  { Solver.max_conflicts = l.Atpg.max_backtracks;
    max_seconds = l.Atpg.max_seconds }

(* Persistent invariant clauses: both unrollings here start from the
   initial states (frame-0 registers clamped), so every frame holds a
   reachable state and the proven invariants may be asserted at each
   newly encoded frame. *)
let assume_invariants analysis unr ~from =
  match analysis with
  | None -> ()
  | Some a ->
    for f = from to Cnf.frames unr - 1 do
      ignore (Rfn_analysis.Analysis.assume_frame a unr ~frame:f)
    done

(* Pins of an abstract trace, cycle by cycle (the cubes only constrain
   registers and inputs, both of which have frame literals on the whole
   design). *)
let trace_pins trace =
  let pins = ref [] in
  for j = 0 to Trace.length trace - 1 do
    let add cube =
      List.iter
        (fun (s, v) -> pins := (j, s, v) :: !pins)
        (Cube.to_list cube)
    in
    add (Trace.state trace j);
    add (Trace.input trace j)
  done;
  !pins

(* CNF sanity + assumption-pin totality under RFN_CHECK: returns the
   violation message instead of raising, so the BMC loops can degrade
   into their give-up outcomes. *)
let unrolling_violation ~what unr ~pins =
  if not (Check.env_enabled ()) then None
  else
    match Check.ensure ~what (Check.cnf unr @ Check.pins unr pins) with
    | () -> None
    | exception Check.Violation (w, fs) ->
      Some (Check.violation_message w fs)

let falsify ?(limits = Atpg.default_limits) ?analysis circuit ~bad ~max_depth =
  Telemetry.incr c_falsify;
  let view = Sview.whole circuit ~roots:[ bad ] in
  let unr = Cnf.create view in
  let solver = Cnf.solver unr in
  let solver_limits = limits_of_atpg limits in
  let rec deepen depth =
    if depth > max_depth then (Bmc.Exhausted, Solver.stats solver)
    else begin
      let encoded = Cnf.frames unr in
      Cnf.extend unr ~frames:depth;
      assume_invariants analysis unr ~from:encoded;
      match unrolling_violation ~what:"sat_bmc.falsify unrolling" unr ~pins:[]
      with
      | Some _ ->
        (* the violation is on the check.* counters and the sink *)
        (Bmc.Gave_up depth, Solver.stats solver)
      | None -> (
      let target = Cnf.lit_of unr ~frame:(depth - 1) bad in
      match
        Telemetry.with_span "sat_bmc.solve"
          ~attrs:[ ("depth", Rfn_obs.Json.Int depth) ]
          (fun () ->
            Solver.solve ~limits:solver_limits ~assumptions:[ target ] solver)
      with
      | Solver.Sat ->
        let t = Cnf.trace unr ~frames:depth in
        if Sim3v.replay_concrete circuit t ~bad then begin
          Telemetry.incr c_found;
          (Bmc.Found t, Solver.stats solver)
        end
        else (Bmc.Gave_up depth, Solver.stats solver) (* engine bug guard *)
      | Solver.Unsat -> deepen (depth + 1)
      | Solver.Unknown _ -> (Bmc.Gave_up depth, Solver.stats solver))
    end
  in
  deepen 1

let concretize ?(limits = Atpg.default_limits) ?analysis circuit ~bad
    ~abstract_traces =
  if abstract_traces = [] then
    invalid_arg "Sat_bmc.concretize: no abstract traces";
  Telemetry.incr c_concretize;
  let view = Sview.whole circuit ~roots:[ bad ] in
  let unr = Cnf.create view in
  let solver = Cnf.solver unr in
  let solver_limits = limits_of_atpg limits in
  let rec go gave_up = function
    | [] ->
      ( (match gave_up with
        | None -> Concretize.Not_found_here
        | Some r -> Concretize.Gave_up r),
        Solver.stats solver )
    | tr :: rest -> (
      let frames = Trace.length tr in
      let encoded = Cnf.frames unr in
      Cnf.extend unr ~frames;
      assume_invariants analysis unr ~from:encoded;
      let pins = trace_pins tr in
      match
        unrolling_violation ~what:"sat_bmc.concretize unrolling" unr ~pins
      with
      | Some msg ->
        (Concretize.Gave_up (Rfn_failure.Invariant msg), Solver.stats solver)
      | None -> (
      let assumptions =
        Cnf.lit_of unr ~frame:(frames - 1) bad
        :: Cnf.assumptions_of_pins unr pins
      in
      match
        Telemetry.with_span "sat_bmc.concretize"
          ~attrs:[ ("frames", Rfn_obs.Json.Int frames) ]
          (fun () -> Solver.solve ~limits:solver_limits ~assumptions solver)
      with
      | Solver.Sat ->
        let t = Cnf.trace unr ~frames in
        if Sim3v.replay_concrete circuit t ~bad then begin
          Telemetry.incr c_found;
          (Concretize.Found t, Solver.stats solver)
        end
        else
          (* engine bug guard: never report unvalidated *)
          ( Concretize.Gave_up
              (Rfn_failure.Invariant "unvalidated SAT counterexample"),
            Solver.stats solver )
      | Solver.Unsat -> go gave_up rest
      | Solver.Unknown r -> go (Some r) rest))
  in
  go None abstract_traces
