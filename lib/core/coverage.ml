open Rfn_circuit
module Bdd = Rfn_bdd.Bdd
module Varmap = Rfn_mc.Varmap
module Symbolic = Rfn_mc.Symbolic
module Image = Rfn_mc.Image
module Reach = Rfn_mc.Reach
module Sim3v = Rfn_sim3v.Sim3v
module Telemetry = Rfn_obs.Telemetry
module F = Rfn_failure

type status = Unknown | Unreachable | Reachable

type report = {
  total : int;
  unreachable : int;
  reachable : int;
  unknown : int;
  abstract_regs : int;
  iterations : int;
  seconds : float;
  status : status array;
  failure : F.t option;
}

let state_code ~coverage value =
  List.fold_left
    (fun (code, bit) s -> ((code lor if value s then 1 lsl bit else 0), bit + 1))
    (0, 0) coverage
  |> fst

let check_coverage circuit coverage =
  if coverage = [] then invalid_arg "Coverage: empty coverage set";
  if List.length coverage > 24 then
    invalid_arg "Coverage: more than 24 coverage signals";
  List.iter
    (fun s ->
      if not (Circuit.is_reg circuit s) then
        invalid_arg "Coverage: coverage signals must be registers")
    coverage

(* BDD (over current-state variables) of the coverage states whose
   status satisfies [keep]: one recursive descent per signal, sharing
   through the manager's unique table. *)
let states_bdd vm ~coverage ~status ~keep =
  let man = Varmap.man vm in
  (* Recurse over coverage signals sorted by BDD level so the result is
     built in order. *)
  let by_level =
    List.mapi (fun i s -> (Varmap.cur_var vm s, i)) coverage
    |> List.sort compare
  in
  let rec build code = function
    | [] -> if keep status.(code) then Bdd.one man else Bdd.zero man
    | (v, bit) :: rest ->
      Bdd.ite man (Bdd.var man v)
        (build (code lor (1 lsl bit)) rest)
        (build code rest)
  in
  build 0 by_level

(* Update [status]: minterms of [unknown ∧ ¬proj] become [Unreachable]
   (only called when the fixpoint is complete, i.e. proj is a sound
   over-approximation of the reachable coverage states). *)
let mark_unreachable vm ~coverage ~status proj =
  let man = Varmap.man vm in
  let n = List.length coverage in
  let vars = List.map (fun s -> Varmap.cur_var vm s) coverage in
  for code = 0 to (1 lsl n) - 1 do
    if status.(code) = Unknown then begin
      let assignment =
        let tbl = Hashtbl.create 31 in
        List.iteri
          (fun bit v -> Hashtbl.replace tbl v (code land (1 lsl bit) <> 0))
          vars;
        fun v -> try Hashtbl.find tbl v with Not_found -> false
      in
      if not (Bdd.eval man proj assignment) then status.(code) <- Unreachable
    end
  done

(* Concrete replay of a found trace, marking every coverage state the
   design visits along the way as reachable. *)
let mark_reachable circuit ~coverage ~status trace =
  let view = Sview.whole circuit ~roots:[] in
  let k = Trace.length trace in
  let init r =
    Sim3v.Packed.splat
      (match Circuit.node circuit r with
      | Circuit.Reg { init = `Zero; _ } -> Sim3v.V0
      | Circuit.Reg { init = `One; _ } -> Sim3v.V1
      | Circuit.Reg { init = `Free; _ } -> (
        match Cube.value (Trace.state trace 0) r with
        | Some b -> Sim3v.of_bool b
        | None -> Sim3v.V0)
      | _ -> Sim3v.VX)
  in
  let inputs ~cycle s =
    Sim3v.Packed.splat
      (if cycle < k then
         match Cube.value (Trace.input trace cycle) s with
         | Some b -> Sim3v.of_bool b
         | None -> Sim3v.V0
       else Sim3v.V0)
  in
  let frames = Sim3v.Packed.run view ~init ~inputs ~cycles:(k - 1) in
  let marked = ref 0 in
  Array.iter
    (fun vec ->
      let value s = Sim3v.Packed.read_lane vec s ~lane:0 in
      let concrete = List.for_all (fun s -> value s <> Sim3v.VX) coverage in
      if concrete then begin
        let code = state_code ~coverage (fun s -> value s = Sim3v.V1) in
        if status.(code) = Unknown then begin
          status.(code) <- Reachable;
          incr marked
        end
      end)
    frames;
  !marked

let count status v = Array.fold_left (fun n s -> if s = v then n + 1 else n) 0 status

let report_of ?failure ~status ~abstract_regs ~iterations ~seconds () =
  {
    total = Array.length status;
    unreachable = count status Unreachable;
    reachable = count status Reachable;
    unknown = count status Unknown;
    abstract_regs;
    iterations;
    seconds;
    status;
    failure;
  }

let rfn_analysis ?(config = Rfn.default_config) circuit ~coverage =
  check_coverage circuit coverage;
  let started = Telemetry.now () in
  let n = List.length coverage in
  let status = Array.make (1 lsl n) Unknown in
  let out_of_time () =
    match config.Rfn.max_seconds with
    | Some budget -> Telemetry.now () -. started > budget
    | None -> false
  in
  (* wall-clock remainder, clamped so Reach.run never sees a negative
     budget *)
  let time_left () =
    match config.Rfn.max_seconds with
    | None -> None
    | Some budget ->
      Some (Float.max 0.0 (budget -. (Telemetry.now () -. started)))
  in
  let session =
    Session.create ~node_limit:config.Rfn.node_limit
      ~policy:config.Rfn.session circuit ~roots:coverage
  in
  let rec iterate iter =
    let abstraction = Session.abstraction session in
    let done_ ?failure last_regs =
      report_of ?failure ~status ~abstract_regs:last_regs ~iterations:iter
        ~seconds:(Telemetry.now () -. started) ()
    in
    let regs_now = Abstraction.num_regs abstraction in
    if
      iter > config.Rfn.max_iterations
      || out_of_time ()
      || count status Unknown = 0
    then done_ regs_now
    else
      match
        let { Session.vm; img; _ } = Session.prepare session in
        let init = Symbolic.initial_states vm in
        let unknown_states =
          states_bdd vm ~coverage ~status ~keep:(fun s -> s = Unknown)
        in
        (* The fixpoint runs to closure even after touching unknown
           states: the projection of the complete reachable set is what
           identifies unreachable coverage states (paper, Section 3). *)
        let res =
          Reach.run ~max_steps:config.Rfn.mc_max_steps ~stop_at_bad:false
            ?max_seconds:(time_left ()) img ~vm ~init
            ~bad_states:unknown_states
        in
        (vm, res, unknown_states)
      with
      | exception Bdd.Limit_exceeded ->
        done_
          ~failure:
            (F.make ~iteration:iter ~engine:F.Bdd_mc ~phase:F.Abstract_mc
               F.Nodes)
          regs_now
      | vm, res, unknown_states -> (
        let project reached =
          Bdd.exists (Varmap.man vm)
            (List.filter
               (fun v ->
                 not (List.exists (fun s -> Varmap.cur_var vm s = v) coverage))
               (Varmap.cur_vars vm))
            reached
        in
        (* Chase one abstract-reachable unknown state: extract an
           abstract error trace at the first ring touching the unknown
           set, concretize it, and either mark the visited coverage
           states reachable or refine the model. *)
        let chase k =
          match
            Hybrid.extract ~atpg_limits:config.Rfn.abstract_atpg vm
              ~rings:res.Reach.rings ~target:unknown_states ~k
          with
          | exception Hybrid.Extraction_failed r ->
            done_
              ~failure:
                (F.make ~iteration:iter ~engine:F.Hybrid
                   ~phase:F.Trace_extraction r)
              regs_now
          | exception Bdd.Limit_exceeded ->
            done_
              ~failure:
                (F.make ~iteration:iter ~engine:F.Hybrid
                   ~phase:F.Trace_extraction F.Nodes)
              regs_now
          | hybrid -> (
            let abstract_trace = hybrid.Hybrid.trace in
            let refine_and_continue () =
              let r =
                Refine.crucial_registers ~atpg_limits:config.Rfn.abstract_atpg
                  abstraction ~abstract_trace ()
              in
              if r.Refine.kept = [] then done_ regs_now
              else begin
                ignore (Session.refine session ~add:r.Refine.kept);
                iterate (iter + 1)
              end
            in
            match
              Concretize.guided_to_trace ~limits:config.Rfn.concrete_atpg
                circuit ~abstract_trace
            with
            | Concretize.Found t, _ ->
              let marked = mark_reachable circuit ~coverage ~status t in
              if marked = 0 then refine_and_continue ()
              else iterate (iter + 1)
            | (Concretize.Not_found_here | Concretize.Gave_up _), _ ->
              refine_and_continue ())
        in
        match res.Reach.outcome with
        | Reach.Proved ->
          (* Closed fixpoint never touching an unknown state: all of
             them are unreachable (the abstraction over-approximates). *)
          Array.iteri
            (fun i s -> if s = Unknown then status.(i) <- Unreachable)
            status;
          done_ regs_now
        | Reach.Closed k ->
          mark_unreachable vm ~coverage ~status (project res.Reach.reached);
          chase k
        | Reach.Reached k -> chase k (* not taken with stop_at_bad:false *)
        | Reach.Aborted _ -> (
          (* Partial reach: no unreachability conclusions, but a ring
             touching the unknown set can still be concretized. *)
          let man = Varmap.man vm in
          let hit = ref None in
          Array.iteri
            (fun i ring ->
              if
                !hit = None
                && not (Bdd.is_zero (Bdd.dand man ring unknown_states))
              then hit := Some i)
            res.Reach.rings;
          match !hit with Some k -> chase k | None -> done_ regs_now))
  in
  iterate 1

(* Registers at BFS distance <= d from the coverage signals through the
   register-dependency graph (r depends on the registers in the
   combinational support of its next-state input). *)
let closest_registers circuit ~coverage ~k =
  let supports = Hashtbl.create 997 in
  let reg_support r =
    match Hashtbl.find_opt supports r with
    | Some l -> l
    | None ->
      let next =
        match Circuit.node circuit r with
        | Circuit.Reg { next; _ } -> next
        | _ -> invalid_arg "Coverage.closest_registers: not a register"
      in
      (* One combinational step only: registers read directly by the
         cone of [next], i.e. registers whose output the backward walk
         reaches before crossing any register. *)
      let seen = Bitset.create (Circuit.num_signals circuit) in
      let acc = ref [] in
      let rec walk s =
        if not (Bitset.mem seen s) then begin
          Bitset.add seen s;
          match Circuit.node circuit s with
          | Circuit.Reg _ -> acc := s :: !acc
          | Circuit.Gate (_, fanins) -> Array.iter walk fanins
          | Circuit.Input | Circuit.Const _ -> ()
        end
      in
      walk next;
      let l = !acc in
      Hashtbl.replace supports r l;
      l
  in
  let chosen = Hashtbl.create 97 in
  let order = ref [] in
  let q = Queue.create () in
  List.iter
    (fun s ->
      Hashtbl.replace chosen s ();
      order := s :: !order;
      Queue.add s q)
    coverage;
  let continue_ = ref true in
  while !continue_ && not (Queue.is_empty q) do
    let r = Queue.pop q in
    List.iter
      (fun dep ->
        if Hashtbl.length chosen < k && not (Hashtbl.mem chosen dep) then begin
          Hashtbl.replace chosen dep ();
          order := dep :: !order;
          Queue.add dep q
        end)
      (reg_support r);
    if Hashtbl.length chosen >= k then continue_ := false
  done;
  List.rev !order

let bfs_analysis ?(k = 60) ?(node_limit = 2_000_000) ?(max_steps = 2_000)
    ?max_seconds circuit ~coverage =
  check_coverage circuit coverage;
  let started = Telemetry.now () in
  let n = List.length coverage in
  let status = Array.make (1 lsl n) Unknown in
  let regs = closest_registers circuit ~coverage ~k in
  let abstraction = Abstraction.with_regs circuit ~roots:coverage ~regs in
  let abstract_regs = Abstraction.num_regs abstraction in
  let bfs_failure resource =
    F.make ~iteration:1 ~engine:F.Bdd_mc ~phase:F.Abstract_mc resource
  in
  let failure =
    match
      let vm = Varmap.make ~node_limit abstraction.Abstraction.view in
      let img = Image.make vm in
      let init = Symbolic.initial_states vm in
      let res =
        Reach.run ~max_steps ?max_seconds img ~vm ~init
          ~bad_states:(Bdd.zero (Varmap.man vm))
      in
      (vm, res)
    with
    | exception Bdd.Limit_exceeded ->
      (* the fixpoint blew the node budget: no conclusion about any
         coverage state — surfaced, not swallowed *)
      Some (bfs_failure F.Nodes)
    | vm, res -> (
      match res.Reach.outcome with
      | Reach.Proved ->
        let proj =
          Bdd.exists (Varmap.man vm)
            (List.filter
               (fun v ->
                 not (List.exists (fun s -> Varmap.cur_var vm s = v) coverage))
               (Varmap.cur_vars vm))
            res.Reach.reached
        in
        mark_unreachable vm ~coverage ~status proj;
        None
      | Reach.Aborted r ->
        (* partial reach (step or time budget): the projection argument
           needs the complete reachable set, so nothing can be marked *)
        Some (bfs_failure r)
      | Reach.Closed _ | Reach.Reached _ ->
        (* not produced with an empty target and stop_at_bad's default *)
        Some
          (bfs_failure
             (F.Invariant "reachability touched an empty target set")))
  in
  report_of ?failure ~status ~abstract_regs ~iterations:1
    ~seconds:(Telemetry.now () -. started) ()

let closest_registers_for_test = closest_registers
