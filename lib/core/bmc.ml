open Rfn_circuit
module Atpg = Rfn_atpg.Atpg
module Sim3v = Rfn_sim3v.Sim3v

type outcome = Found of Trace.t | Exhausted | Gave_up of int

let falsify ?(limits = Atpg.default_limits) circuit ~bad ~max_depth =
  let view = Sview.whole circuit ~roots:[ bad ] in
  let total = ref { Atpg.decisions = 0; backtracks = 0 } in
  let add s =
    total :=
      {
        Atpg.decisions = !total.Atpg.decisions + s.Atpg.decisions;
        backtracks = !total.Atpg.backtracks + s.Atpg.backtracks;
      }
  in
  let rec deepen depth =
    if depth > max_depth then (Exhausted, !total)
    else
      let answer, stats =
        Atpg.solve ~limits view ~frames:depth ~pins:[ (depth - 1, bad, true) ] ()
      in
      add stats;
      match answer with
      | Atpg.Sat t ->
        if Sim3v.replay_concrete circuit t ~bad then (Found t, !total)
        else (Gave_up depth, !total) (* engine bug guard *)
      | Atpg.Unsat -> deepen (depth + 1)
      | Atpg.Abort _ -> (Gave_up depth, !total)
  in
  deepen 1
