(** Persistent verification session: one BDD manager for a whole CEGAR
    run.

    The paper's refinement loop is monotone — every iteration's
    abstract model contains the previous one — so the expensive
    symbolic state (cone BDDs, the clustered transition relation, the
    variable order) is mostly {e carried} rather than rebuilt. The
    session owns that state:

    - the abstraction, refined in place through
      {!Rfn_circuit.Abstraction.refine_delta};
    - one {!Rfn_mc.Varmap} grown in place ({!Rfn_mc.Varmap.grow}): a
      promoted pseudo-input's variable is re-rolled as its
      current-state variable, so every cone BDD compiled over the old
      view stays valid verbatim;
    - a persistent cone memo, extended incrementally with
      {!Rfn_mc.Symbolic.compile_view} — only the refinement delta's
      cones are compiled;
    - a cluster cache ({!Rfn_mc.Image.build}): carried registers form a
      verbatim-reusable prefix of the relation, so only the dirty
      suffix is re-clustered.

    Appending variables at the bottom of the order degrades it, so
    {!prepare} applies a grow-vs-rebuild policy: accept the grown
    manager while its (post-GC) node count stays within
    [grow_blowup × baseline]; past that, sift
    ({!Rfn_bdd.Reorder.sift}); if sifting cannot recover, rebuild from
    scratch under a fresh FORCE order seeded by the carried one.

    Everything observable is counted under [session.*] telemetry
    names: [cones_reused]/[cones_recompiled],
    [clusters_reused]/[clusters_rebuilt],
    [grow_in_place]/[grow_sifted]/[grow_rebuilds], [resets], and the
    [nodes_carried] gauge. *)

type policy = {
  reuse : bool;
      (** [false] switches to the from-scratch reference mode: every
          refinement replaces the manager with an empty replica under
          the {e identical} variable assignment
          ({!Rfn_mc.Varmap.replica}), so behaviour is bit-identical to
          the incremental mode while nothing is reused — the
          differential tests' baseline. *)
  grow_blowup : float;
      (** accepted post-grow node-count multiple of the previous
          iteration's baseline *)
  min_nodes : int;
      (** blow-up checks only start past this absolute node count *)
  sift_passes : int;  (** [max_passes] for the recovery sifting *)
}

val default_policy : policy
(** [{reuse = true; grow_blowup = 8.0; min_nodes = 100_000;
    sift_passes = 1}] *)

type prepared = {
  vm : Rfn_mc.Varmap.t;
  fn : int -> Rfn_bdd.Bdd.t;
      (** cone lookup over the session memo; raises [Invalid_argument]
          outside the view *)
  img : Rfn_mc.Image.t;
}

type t

val create :
  ?node_limit:int ->
  ?policy:policy ->
  Rfn_circuit.Circuit.t ->
  roots:int list ->
  t
(** A session starting from {!Rfn_circuit.Abstraction.initial} of the
    roots. No BDD work happens until {!prepare}. *)

val abstraction : t -> Rfn_circuit.Abstraction.t

val circuit : t -> Rfn_circuit.Circuit.t
(** The concrete circuit the session's abstractions are views of. *)

val policy : t -> policy

val varmap : t -> Rfn_mc.Varmap.t option
(** The session's current varmap, if one has been built — the
    [RFN_CHECK] invariant checker's view into the shared state. *)

val analysis : t -> Rfn_analysis.Analysis.t option
(** The concrete-design invariants cached on the session, if the
    [--analyze] pre-flight has run. Invariants are facts about the
    circuit, not about any abstraction, so a warm session reuses them
    across retargets. *)

val set_analysis : t -> Rfn_analysis.Analysis.t -> unit

val translate_root :
  (Rfn_bdd.Bdd.t, Rfn_bdd.Bdd.t) Hashtbl.t ->
  what:string ->
  Rfn_bdd.Bdd.t ->
  Rfn_bdd.Bdd.t
(** Total lookup used when adopting a reordered manager: the
    translation table maps every root handed to
    {!Rfn_bdd.Reorder.sift}; a miss — impossible unless the reorderer
    broke its contract — raises [Invalid_argument] naming the
    structure ([what]) instead of escaping as a bare [Not_found].
    Exposed for the regression suite. *)

val cone_signals : t -> int list
(** Signals holding a compiled cone in the session memo (the
    [Rfn_lint.Check.cone_cache] input). Total over the view's inside
    set right after {!prepare}. *)

val prepare : t -> prepared
(** Make the symbolic state match the current abstraction: compile the
    missing cones, re-cluster the dirty suffix of the relation, apply
    the grow-vs-rebuild policy. Idempotent between refinements (the
    second call returns the same triple). May raise
    [Rfn_bdd.Bdd.Limit_exceeded] — call it inside the supervised rung
    so a blow-up maps to a structured failure; the rung's reset then
    rebuilds cleanly. *)

val refine :
  t -> add:int list -> Rfn_circuit.Abstraction.delta
(** Refine the abstraction and grow (or, with [reuse = false],
    replicate) the varmap accordingly. Allocates no BDD nodes — safe
    to call outside the supervised rungs. *)

val reset : ?fresh_order:bool -> ?node_limit:int -> t -> unit
(** Drop the manager and every per-manager structure; the next
    {!prepare} rebuilds from scratch. With [fresh_order:false] (the
    default) the carried variable order seeds the rebuild's FORCE
    ordering; [fresh_order:true] discards it — the supervisor's
    fresh-order retry rung. [node_limit] replaces the session's node
    budget — the node-budget retry rung. *)

val retarget : t -> roots:int list -> unit
(** Point the session at a different property of the same circuit: the
    abstraction restarts from {!Rfn_circuit.Abstraction.initial} of the
    new roots. With [reuse = true] and a live manager, the varmap is
    rebased ({!Rfn_mc.Varmap.rebase}) so every carried signal keeps its
    value-now variable and the memoized cones the two views share stay
    valid verbatim — the cross-property warm-start of the serve layer;
    memo entries outside the new view and the whole cluster cache are
    dropped, and the next {!prepare} collects the previous property's
    garbage under the blow-up policy. With [reuse = false] the session
    forgets everything including the order seed, making the retargeted
    run bit-identical to a cold one. Counted as [session.retargets] and
    (warm path only) [session.retargets_warm]. *)
