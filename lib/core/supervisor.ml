module Atpg = Rfn_atpg.Atpg
module Telemetry = Rfn_obs.Telemetry
module F = Rfn_failure

let c_retries = Telemetry.counter "supervisor.retries"
let c_fallbacks = Telemetry.counter "supervisor.fallbacks"
let c_escalations = Telemetry.counter "supervisor.escalations"
let c_injected = Telemetry.counter "supervisor.injected_faults"
let c_recoveries = Telemetry.counter "supervisor.recoveries"

type site = Abstract_mc | Hybrid_extract | Concretize | Refine

let site_to_string = function
  | Abstract_mc -> "abstract-mc"
  | Hybrid_extract -> "hybrid"
  | Concretize -> "concretize"
  | Refine -> "refine"

let site_of_string = function
  | "abstract-mc" | "mc" -> Abstract_mc
  | "hybrid" -> Hybrid_extract
  | "concretize" -> Concretize
  | "refine" -> Refine
  | s ->
    invalid_arg
      (Printf.sprintf
         "unknown fault-injection site %S (expected abstract-mc, hybrid, \
          concretize or refine)"
         s)

type fault = Fail | Delay of float | Worker of Rfn_proc.Proc.worker_fault
type kind = Primary | Retry | Fallback

type policy = {
  node_limit_growth : int;
  backtrack_growth : int;
  backtrack_cap : int;
  hybrid_share : float;
  concretize_share : float;
  refine_share : float;
  grace_seconds : float;
}

let default_policy =
  {
    node_limit_growth = 4;
    backtrack_growth = 2;
    backtrack_cap = 8;
    hybrid_share = 0.25;
    concretize_share = 0.5;
    refine_share = 0.25;
    grace_seconds = 1.0;
  }

type t = {
  policy : policy;
  max_seconds : float option;
  started : float;
  inject : (site -> fault option) option;
  mutable escalation : int;
}

(* ---- fault-injection hooks ------------------------------------------- *)

let inject_of_spec spec =
  let spec = String.trim spec in
  if spec = "" || spec = "off" then None
  else begin
    let entries =
      if spec = "all" then
        List.map
          (fun s -> (s, Fail))
          [ Abstract_mc; Hybrid_extract; Concretize; Refine ]
      else
        String.split_on_char ',' spec
        |> List.map (fun tok ->
               let tok = String.trim tok in
               (* worker faults target the racing site: the next worker
                  spawned by a concretization race suffers the fault *)
               match Rfn_proc.Proc.worker_fault_of_string tok with
               | Some f -> (Concretize, Worker f)
               | None -> (site_of_string tok, Fail))
    in
    (* Once per entry per hook: the first consultation at the entry's
       site faults, every later one (the retry/fallback rungs of the
       same ladder, and later iterations) passes — so a supervised run
       must recover. *)
    let fired = Hashtbl.create 4 in
    Some
      (fun site ->
        let rec first i = function
          | [] -> None
          | (s, f) :: rest ->
            if s = site && not (Hashtbl.mem fired i) then begin
              Hashtbl.add fired i ();
              Some f
            end
            else first (i + 1) rest
        in
        first 0 entries)
  end

let inject_of_env () =
  match Sys.getenv_opt "RFN_INJECT_FAULTS" with
  | None -> None
  | Some spec -> (
    try inject_of_spec spec
    with Invalid_argument msg ->
      Printf.eprintf "RFN_INJECT_FAULTS ignored: %s\n%!" msg;
      None)

let start ?inject policy ~max_seconds =
  let inject = match inject with Some _ as i -> i | None -> inject_of_env () in
  { policy; max_seconds; started = Telemetry.now (); inject; escalation = 1 }

let policy t = t.policy

(* ---- deadline budgeting ---------------------------------------------- *)

let time_left t =
  match t.max_seconds with
  | None -> None
  | Some budget ->
    Some (Float.max 0.0 (budget -. (Telemetry.now () -. t.started)))

let out_of_time t = match time_left t with Some r -> r <= 0.0 | None -> false

let share policy = function
  | Abstract_mc -> 1.0 (* Reach.run takes the remaining budget directly *)
  | Hybrid_extract -> policy.hybrid_share
  | Concretize -> policy.concretize_share
  | Refine -> policy.refine_share

let clamp_limits t site (base : Atpg.limits) =
  match time_left t with
  | None -> base
  | Some remaining ->
    let slice = Float.max 0.0 (remaining *. share t.policy site) in
    let max_seconds =
      match base.Atpg.max_seconds with
      | None -> Some slice
      | Some s -> Some (Float.min s slice)
    in
    { base with Atpg.max_seconds }

let concrete_limits t (base : Atpg.limits) =
  clamp_limits t Concretize
    { base with Atpg.max_backtracks = base.Atpg.max_backtracks * t.escalation }

let escalation t = t.escalation

(* Restoring a checkpointed escalation factor on resume: clamp into
   the policy's legal range rather than trusting the file. *)
let set_escalation t factor =
  t.escalation <- max 1 (min t.policy.backtrack_cap factor)

let escalate t =
  if t.escalation < t.policy.backtrack_cap then begin
    t.escalation <-
      min t.policy.backtrack_cap (t.escalation * t.policy.backtrack_growth);
    Telemetry.incr c_escalations;
    Telemetry.event "supervisor_escalation"
      [ ("factor", Rfn_obs.Json.Int t.escalation) ]
  end

(* ---- the ladder executor --------------------------------------------- *)

(* An injected delay must respect the deadline, or the grace-period
   guarantee would be voided by the harness itself. [Unix.sleepf] can
   return early when a signal lands (the worker pool's SIGCHLD, a
   profiler's SIGALRM), so loop until the intended wake-up time. *)
let sleep_within t s =
  let s = match time_left t with None -> s | Some r -> Float.min s r in
  let wake = Telemetry.now () +. s in
  let rec nap () =
    let remaining = wake -. Telemetry.now () in
    if remaining > 0.0 then begin
      (try Unix.sleepf remaining
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      nap ()
    end
  in
  if s > 0.0 then nap ()

let run t ~site ~engine ~phase ~iteration rungs =
  let fail ~attempts resource =
    F.make ~iteration ~retries:attempts ~engine ~phase resource
  in
  let site_attr = ("site", Rfn_obs.Json.Str (site_to_string site)) in
  let rec go attempts last = function
    | [] -> Error (fail ~attempts:(attempts - 1) last)
    | (kind, label, thunk) :: rest ->
      if out_of_time t then Error (fail ~attempts F.Time)
      else begin
        (match kind with
        | Primary -> ()
        | Retry -> Telemetry.incr c_retries
        | Fallback -> Telemetry.incr c_fallbacks);
        let injected =
          match (kind, t.inject) with
          | Primary, Some hook -> hook site
          | _ -> None
        in
        let result =
          match injected with
          | Some Fail ->
            Telemetry.incr c_injected;
            Error F.Injected
          | Some (Delay s) ->
            Telemetry.incr c_injected;
            sleep_within t s;
            thunk ()
          | Some (Worker f) ->
            (* arm the pool's one-shot slot: the next worker spawned
               inside the rung suffers the fault; a rung that spawns no
               worker is unaffected (the slot is cleared on exit) *)
            Telemetry.incr c_injected;
            Rfn_proc.Proc.with_injected f thunk
          | None -> thunk ()
        in
        match result with
        | Ok v ->
          if attempts > 0 then begin
            Telemetry.incr c_recoveries;
            Telemetry.event "supervisor_recovery"
              [
                site_attr;
                ("rung", Rfn_obs.Json.Str label);
                ("attempts", Rfn_obs.Json.Int attempts);
              ]
          end;
          Ok v
        | Error r ->
          Telemetry.event "supervisor_failure"
            (site_attr
            :: ("rung", Rfn_obs.Json.Str label)
            :: F.to_attrs (fail ~attempts r));
          if F.retryable_resource r then go (attempts + 1) r rest
          else Error (fail ~attempts r)
      end
  in
  match rungs with
  | [] -> invalid_arg "Supervisor.run: empty ladder"
  | rungs -> go 0 (F.Invariant "empty ladder") rungs
