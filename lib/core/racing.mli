(** Engine races over the isolated worker pool: the portfolio as a
    genuine competition rather than a fallback ladder.

    The sequential portfolio runs guided ATPG, waits for it to give
    up, then runs SAT — the loser's whole budget is spent before the
    winner starts. These wrappers run both engines {e concurrently} in
    {!Rfn_proc.Proc} workers: the first conclusive answer (a validated
    counterexample, or a proof that the guided space is empty) wins
    and the loser is cancelled; give-ups are held as the answer of
    last resort.

    Everything a worker reports is re-validated on the parent side —
    a [Found] trace is replayed concretely
    ({!Rfn_sim3v.Sim3v.replay_concrete}) before it is believed, and a
    payload that fails decoding or replay is treated as
    {!Rfn_failure.Worker_garbage}. A race can therefore never turn a
    worker malfunction into a wrong verdict: at worst it degrades to
    [Error], and the supervisor ladder falls back to the in-process
    rungs. *)

val concretize :
  ?deadline:float ->
  policy:Rfn_proc.Proc.policy ->
  engines:[ `Atpg | `Sat ] list ->
  limits:Rfn_atpg.Atpg.limits ->
  Rfn_circuit.Circuit.t ->
  bad:int ->
  abstract_traces:Rfn_circuit.Trace.t list ->
  (Concretize.outcome, Rfn_failure.resource) result
(** Race guided concretization (Step 3). [Found] and [Not_found_here]
    are conclusive and win; a race where every entrant gave up yields
    [Ok (Gave_up _)] (the first give-up received) so the caller's
    escalation logic sees the same shape as the in-process engines;
    [Error] means no entrant produced a credible payload (a [Worker_*]
    resource — retryable, so the ladder falls back in-process).
    @raise Invalid_argument on an empty engine list. *)

val falsify :
  ?deadline:float ->
  policy:Rfn_proc.Proc.policy ->
  engines:[ `Bmc | `Sat ] list ->
  limits:Rfn_atpg.Atpg.limits ->
  Rfn_circuit.Circuit.t ->
  bad:int ->
  max_depth:int ->
  (Bmc.outcome, Rfn_failure.resource) result
(** Race bounded falsification (the empty-refinement re-check):
    ATPG-based {!Bmc.falsify} against {!Sat_bmc.falsify}. [Found]
    (revalidated) and [Exhausted] win; all-gave-up yields
    [Ok (Gave_up _)]; [Error] as in {!concretize}. *)
