(** Engine supervisor: retry / escalation / fallback around every
    engine invocation of the CEGAR loop, plus the deadline budget
    allocator and the fault-injection hook.

    The paper's central claim is that no single engine is robust enough
    alone — formal, simulation and hybrid engines must cover for each
    other. The supervisor is that idea applied to {e failures}: each
    loop step runs as a {e ladder} of rungs (a primary strategy, then
    retries with different resources, then fallbacks onto a different
    engine), and a rung's structured failure decides whether the next
    rung is tried ({!Rfn_failure.retryable_resource}) or the ladder
    aborts with a full {!Rfn_failure.t}.

    Recovery actions are counted under stable telemetry names:
    [supervisor.retries], [supervisor.fallbacks],
    [supervisor.escalations], [supervisor.injected_faults],
    [supervisor.recoveries]. *)

(** The four supervised invocation sites of {!Rfn.verify}. *)
type site =
  | Abstract_mc  (** BDD fixpoint on the abstract model *)
  | Hybrid_extract  (** BDD–ATPG abstract-trace extraction *)
  | Concretize  (** guided sequential ATPG on the original design *)
  | Refine  (** crucial-register selection *)

val site_to_string : site -> string
(** Stable CLI/telemetry tag: ["abstract-mc"], ["hybrid"],
    ["concretize"], ["refine"]. *)

(** A fault the injection hook may force on a site's primary rung. *)
type fault =
  | Fail  (** the rung fails with {!Rfn_failure.Injected} (not run) *)
  | Delay of float  (** sleep that many seconds, then run the rung *)
  | Worker of Rfn_proc.Proc.worker_fault
      (** arm the worker pool's one-shot injection slot and run the
          rung: the next worker it spawns is killed / hung / made to
          babble (see {!Rfn_proc.Proc.with_injected}); a rung that
          spawns no worker is unaffected *)

type kind =
  | Primary  (** the normal strategy; the only rung faults inject into *)
  | Retry  (** same engine, different resources *)
  | Fallback  (** a different engine or a degraded mode *)

type policy = {
  node_limit_growth : int;
      (** BDD node-budget multiplier for the last abstract-MC retry *)
  backtrack_growth : int;
      (** concrete-ATPG backtrack multiplier applied per escalation *)
  backtrack_cap : int;
      (** largest cumulative backtrack multiplier (geometric growth
          stops here) *)
  hybrid_share : float;
      (** fraction of the remaining wall budget a hybrid extraction may
          spend *)
  concretize_share : float;  (** same, for the guided concrete search *)
  refine_share : float;  (** same, for refinement trace checks *)
  grace_seconds : float;
      (** documented slack past [max_seconds]: a budget check happens
          between rungs, never inside an engine, so a run can overshoot
          by at most one clamped engine slice — bounded by this *)
}

val default_policy : policy
(** [{node_limit_growth = 4; backtrack_growth = 2; backtrack_cap = 8;
    hybrid_share = 0.25; concretize_share = 0.5; refine_share = 0.25;
    grace_seconds = 1.0}] *)

type t
(** Supervisor state for one [verify] run: the policy, the deadline,
    the injection hook and the current escalation factor. *)

val start :
  ?inject:(site -> fault option) -> policy -> max_seconds:float option -> t
(** [start policy ~max_seconds] begins the run's deadline clock. When
    [inject] is omitted the hook is taken from the [RFN_INJECT_FAULTS]
    environment variable (see {!inject_of_spec}); pass
    [~inject:(fun _ -> None)] to force injection off. *)

val policy : t -> policy

val time_left : t -> float option
(** Remaining wall budget, clamped at zero; [None] when unlimited. *)

val out_of_time : t -> bool

val clamp_limits : t -> site -> Rfn_atpg.Atpg.limits -> Rfn_atpg.Atpg.limits
(** Deadline budgeting: the base limits with [max_seconds] lowered to
    the site's share of the remaining wall budget ([hybrid_share],
    [concretize_share] or [refine_share]); never raises a limit. With
    no global budget the base limits pass through unchanged. *)

val concrete_limits : t -> Rfn_atpg.Atpg.limits -> Rfn_atpg.Atpg.limits
(** {!clamp_limits} for the {!Concretize} site with [max_backtracks]
    multiplied by the current escalation factor. *)

val escalation : t -> int
(** Current backtrack multiplier (1 until the first {!escalate}). *)

val set_escalation : t -> int -> unit
(** Restore a checkpointed escalation factor on resume, clamped into
    [[1, backtrack_cap]] — the file is not trusted to be in range. *)

val escalate : t -> unit
(** Grow the backtrack multiplier geometrically ([backtrack_growth]×)
    up to [backtrack_cap] — called when concretization gives up, so the
    next iteration searches harder. *)

val inject_of_spec : string -> (site -> fault option) option
(** Parse a fault-injection spec: [""] or ["off"] → [None] (no
    injection); ["all"] → every site; otherwise a comma-separated list
    of site tags (see {!site_to_string}) and/or worker-fault tokens
    (["worker-kill"], ["worker-hang"], ["worker-garbage"] — these
    target the {!Concretize} site's racing rung). Each entry faults
    {e once} per returned hook — the retry/fallback rung (or the
    surviving race entrant) must then succeed, which is exactly what
    the chaos tests assert. Raises [Invalid_argument] on an unknown
    tag. *)

val inject_of_env : unit -> (site -> fault option) option
(** {!inject_of_spec} of [RFN_INJECT_FAULTS], or [None] when unset
    (a malformed value is reported on stderr and ignored). *)

val run :
  t ->
  site:site ->
  engine:Rfn_failure.engine ->
  phase:Rfn_failure.phase ->
  iteration:int ->
  (kind * string * (unit -> ('a, Rfn_failure.resource) result)) list ->
  ('a, Rfn_failure.t) result
(** Execute a ladder: each rung in order until one returns [Ok].
    Between rungs the deadline is checked (a blown budget aborts with
    [Time]). The injection hook is consulted for {!Primary} rungs only:
    [Fail] replaces the rung's result with [Error Injected] without
    running it, [Delay] sleeps (clamped to the remaining budget) and
    then runs it. A rung failing on a terminal resource
    (not {!Rfn_failure.retryable_resource}) stops the ladder
    immediately. On exhaustion the last failure is returned as a full
    {!Rfn_failure.t} carrying [iteration] and the number of rungs
    attempted after the first. Counters: executing a [Retry] rung bumps
    [supervisor.retries], a [Fallback] rung [supervisor.fallbacks], an
    injected fault [supervisor.injected_faults], and an [Ok] after at
    least one failed rung [supervisor.recoveries]; each rung failure
    emits a ["supervisor_failure"] telemetry event and each recovery a
    ["supervisor_recovery"] one. *)
