(** RFN: the abstraction-refinement property verifier (Section 2).

    The four-step loop of the paper:

    + generate the abstract model (a subcircuit; {!Rfn_circuit.Abstraction}),
    + prove the property or find an abstract error trace
      (BDD fixpoint {!Rfn_mc.Reach} + BDD–ATPG hybrid {!Hybrid}),
    + search for a concrete error trace on the original design
      (guided sequential ATPG, {!Concretize}),
    + refine with crucial registers
      (3-valued simulation + greedy ATPG minimization, {!Refine}),

    repeated until the property is proved on an abstract model (then it
    holds for the design), a concrete counterexample is found, or a
    resource limit is exceeded. Symbolic image computation is never
    performed on the original design.

    Every engine invocation runs under the {!Supervisor}: a BDD node
    blow-up retries the fixpoint with a fresh variable order and then a
    grown node budget, a min-cut extraction failure falls back to pure
    pre-image, a concretization give-up escalates the ATPG backtrack
    budget for later iterations, and an empty refinement falls back to
    the highest-fanout pseudo-input and finally a BMC re-check. Failures
    that survive the ladders surface as [Aborted] with a structured
    {!Rfn_failure.t}. *)

type engines =
  | Atpg_only  (** the paper's engines only: guided sequential ATPG *)
  | Sat_only
      (** replace guided ATPG and the BMC re-check with their
          incremental-SAT twins ({!Sat_bmc}) *)
  | Portfolio
      (** ATPG first, SAT as an extra supervisor rung: a concretization
          give-up escalates to SAT-guided BMC at the same depth, and the
          empty-refinement BMC re-check gains a SAT twin *)

val engines_to_string : engines -> string

val engines_of_string : string -> engines
(** Inverse of {!engines_to_string} ([atpg] / [sat] / [portfolio]).
    Raises [Invalid_argument] on anything else. *)

val engines_of_env : unit -> engines
(** Reads the [RFN_ENGINE] environment variable; unset means
    {!Atpg_only}, an unknown value warns on stderr and falls back to
    {!Atpg_only}. *)

type config = {
  max_iterations : int;
  node_limit : int;  (** BDD node budget per iteration *)
  mc_max_steps : int;  (** fixpoint step bound *)
  max_seconds : float option;
      (** overall wall-clock budget ({!Rfn_obs.Telemetry.now}); the
          remaining budget handed to the engines is clamped at zero,
          and each supervised ATPG call gets at most its phase's share
          of what remains ({!Supervisor.clamp_limits}) — so a run
          overshoots the budget by at most one engine slice, bounded by
          [supervisor.grace_seconds] in the tests *)
  abstract_atpg : Rfn_atpg.Atpg.limits;
      (** budget for hybrid cube extension and refinement checks *)
  concrete_atpg : Rfn_atpg.Atpg.limits;
      (** budget for the guided search on the original design *)
  guidance_traces : int;
      (** how many abstract error traces to extract and try as guidance
          for the concrete search (default 1; values above 1 implement
          the paper's future-work multi-trace guidance) *)
  engines : engines;
      (** which Step-3/Step-4 falsification engines run, and in what
          order (default {!engines_of_env}, i.e. [RFN_ENGINE] or
          {!Atpg_only}) *)
  analyze : bool;
      (** run the static invariant-inference pre-flight
          ({!Rfn_analysis.Analysis.run}) on the concrete netlist before
          the loop, once per session (a warm session reuses the result
          across properties — invariants are facts about the design).
          The inductively *proved* invariants then feed every engine:
          a care-set restriction of the abstract fixpoint, persistent
          clauses in both SAT unrollings, and a reachability don't-care
          filter for guided ATPG. Unproven candidates are never
          consumed, so the verdict cannot change — only the work to
          reach it. Default [false] *)
  supervisor : Supervisor.policy;
      (** retry/escalation/fallback and deadline-sharing knobs *)
  inject : (Supervisor.site -> Supervisor.fault option) option;
      (** fault-injection hook for chaos testing; [None] (the default)
          defers to the [RFN_INJECT_FAULTS] environment variable *)
  session : Session.policy;
      (** persistent-session knobs: incremental reuse on/off and the
          grow-vs-rebuild thresholds ({!Session.default_policy}) *)
  check_invariants : bool;
      (** validate cross-artifact invariants ({!Rfn_lint.Check}) at
          every CEGAR phase boundary — varmap↔view totality and the
          session cone cache after each prepare, trace shape after
          extraction and concretization, the grown varmap after each
          refinement; a violation aborts with a structured
          [Invariant] failure. Defaults to the [RFN_CHECK]
          environment flag ({!Rfn_lint.Check.env_enabled}) *)
  proc : Rfn_proc.Proc.policy;
      (** worker-pool policy: when [enabled], Step 3 and the
          empty-refinement re-check run as races over isolated worker
          processes ({!Racing}), with the in-process engines demoted
          to fallback rungs — a worker crash, hang, memory blow-up or
          protocol violation degrades to the sequential portfolio and
          can never change the verdict. Defaults to
          {!Rfn_proc.Proc.policy_of_env} ([RFN_RACE] etc.) *)
  checkpoint : string option;
      (** when set, serialize the loop state to this file at every
          iteration boundary (atomic write, keyed by a netlist
          digest); removed again on a conclusive verdict, kept on
          abort so the run can be resumed *)
  resume : bool;
      (** load [checkpoint] before starting (if the file exists and
          matches this design and property — otherwise warn and start
          fresh): the abstraction is re-seeded with the checkpointed
          registers, the escalation factor is restored, and iteration
          numbering continues where the killed run stopped *)
  job_id : string;
      (** server job identifier, woven into the checkpoint key
          ({!Rfn_proc.Checkpoint.make}/[validate]) so two queued jobs
          on the same (design, property) cannot adopt each other's
          loop state; [""] (the default) for stand-alone runs *)
}

val default_config : config

type iteration = {
  abstract_regs : int;  (** registers in this iteration's model *)
  model_inputs : int;  (** free inputs of the model *)
  cut_size : int option;  (** min-cut inputs, when the hybrid ran *)
  no_cut_steps : int;  (** hybrid pre-image steps needing no ATPG *)
  min_cut_steps : int;  (** hybrid steps needing ATPG cube extension *)
  fixpoint_steps : int;
  trace_length : int option;  (** abstract trace length, if any *)
  candidates : int;  (** phase-1 candidates, when refining *)
  added : int;  (** registers actually added, when refining *)
}

type stats = {
  iterations : iteration list;  (** chronological *)
  provenance : Rfn_obs.Provenance.t list;
      (** chronological; one record per iteration with engine choices,
          refinement deltas and resource gauges — the same records the
          loop emits as ["rfn.iteration"] telemetry events *)
  coi_regs : int;
  coi_gates : int;
  final_abstract_regs : int;
  last_abstract_trace : Rfn_circuit.Trace.t option;
      (** the abstract error trace of the last iteration that produced
          one — what guided the final concretization (for ablations) *)
  seconds : float;
  resumed_iterations : int;
      (** iterations skipped because a checkpoint was resumed (0 for a
          fresh run); [provenance] still covers them — the
          checkpointed tail is prepended — but [iterations] only
          covers the iterations this process actually ran *)
}

type outcome =
  | Proved
  | Falsified of Rfn_circuit.Trace.t  (** validated concrete trace *)
  | Aborted of Rfn_failure.t
      (** which engine gave up, in which phase, on which resource, at
          which iteration, after how many recovery attempts — render
          with {!Rfn_failure.to_string} *)

val prepare :
  ?config:config -> Rfn_circuit.Circuit.t -> roots:int list -> Session.t
(** A persistent session for [circuit], sized by the config's
    [node_limit] and [session] policy. No BDD work happens yet. The
    session-scoped half of the API split: create once per design, then
    run {!verify_in_session} for each property. *)

val verify_in_session :
  ?config:config ->
  Session.t ->
  Rfn_circuit.Property.t ->
  outcome * stats
(** Run the four-step loop for one property on an existing session.
    The session is first retargeted ({!Session.retarget}) to the
    property's roots: on a warm session of the same design the cone
    BDDs shared between the previous property's views and this one's
    initial abstraction are reused verbatim, which is how the serve
    layer amortizes compilation across a batch. Verdicts never depend
    on session temperature — only the work to reach them does. *)

val verify :
  ?config:config ->
  Rfn_circuit.Circuit.t ->
  Rfn_circuit.Property.t ->
  outcome * stats
(** [prepare] + {!verify_in_session} on a fresh session: the original
    run-once entry point. *)

val check_coi_model_checking :
  ?node_limit:int ->
  ?max_steps:int ->
  ?max_seconds:float ->
  Rfn_circuit.Circuit.t ->
  Rfn_circuit.Property.t ->
  [ `Proved | `Reached of int | `Aborted of Rfn_failure.resource ] * float
(** The baseline the paper compares against: plain symbolic model
    checking of the property on the COI-reduced design (no
    abstraction). Returns the outcome and the wall-clock seconds
    spent. *)
